/**
 * @file
 * Isolation demo: a compromised guest attacks the three sharing
 * schemes. Direct mapping falls; ELISA holds.
 *
 * The attacker tries, in order:
 *   1. stomping on a direct-mapped (ivshmem) region a victim uses;
 *   2. reading the ELISA shared object from its default context;
 *   3. VMFUNC-ing to guessed EPTP indices it was never granted;
 *   4. jumping straight into the sub context, skipping the gate;
 *   5. replaying a revoked attachment.
 */

#include <cstdio>

#include "base/units.hh"
#include "elisa/gate.hh"
#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "elisa/negotiation.hh"
#include "hv/hypervisor.hh"
#include "hv/ivshmem.hh"

using namespace elisa;

namespace
{

int failures = 0;

void
report(const char *attack, bool contained, const char *detail,
       bool expect_contained = true)
{
    std::printf("  %-52s %s (%s)\n", attack,
                contained ? "CONTAINED" : "BREACHED!", detail);
    if (contained != expect_contained)
        ++failures;
}

} // namespace

int
main()
{
    setQuiet(true);
    hv::Hypervisor hv(512 * MiB);
    core::ElisaService service(hv);
    hv::Vm &manager_vm = hv.createVm("manager", 32 * MiB);
    hv::Vm &victim_vm = hv.createVm("victim", 32 * MiB);
    hv::Vm &attacker_vm = hv.createVm("attacker", 32 * MiB);
    core::ElisaManager manager(manager_vm, service);
    core::ElisaGuest victim(victim_vm, service);
    core::ElisaGuest attacker(attacker_vm, service);

    std::printf("attack 0: the direct-mapping baseline\n");
    {
        hv::IvshmemRegion shm(hv, "legacy-shared", 64 * KiB);
        const Gpa w = 0x40000000;
        shm.attach(victim_vm, w);
        shm.attach(attacker_vm, w);
        cpu::GuestView vv(victim_vm.vcpu(0)), av(attacker_vm.vcpu(0));
        vv.write<std::uint64_t>(w, 0xfee1600d);
        av.write<std::uint64_t>(w, 0x0bad0bad); // nothing stops this
        report("overwrite victim data in ivshmem region",
               vv.read<std::uint64_t>(w) == 0xfee1600d,
               "direct mapping has no isolation",
               /*expect_contained=*/false);
        shm.detach(victim_vm, w);
        shm.detach(attacker_vm, w);
    }

    std::printf("\nELISA: manager exports a secret-bearing object; "
                "only the victim is approved\n");
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &ctx) {
        return ctx.view.read<std::uint64_t>(ctx.obj);
    });
    auto exported =
        manager.exportObject(core::ExportKey("secrets"), pageSize, std::move(fns));
    manager.view().write<std::uint64_t>(exported->objectGpa,
                                        0x5ec2e7);
    manager.setApprover([&](VmId vm, const std::string &) {
        return vm == victim_vm.id();
    });
    core::AttachResult victim_attach =
        victim.tryAttach(core::ExportKey("secrets"), manager);
    core::Gate gate = victim_attach.take();
    std::printf("  victim attached, reads secret through gate: %llx\n",
                (unsigned long long)gate.call(0));

    // 1. Attacker's attach is denied by policy; the AttachResult
    //    carries the verdict and the reason.
    core::AttachResult evil = attacker.tryAttach(core::ExportKey("secrets"), manager);
    report("attach without manager approval",
           evil.status() == core::AttachStatus::Denied,
           evil.reason().c_str());

    // 2. Read the object window from the default context.
    auto probe = attacker_vm.run(0, [&] {
        cpu::GuestView view(attacker_vm.vcpu(0));
        view.read<std::uint64_t>(core::objectGpa);
    });
    report("read object GPA from default context", !probe.ok,
           "not mapped in the attacker's EPT");

    // 3. VMFUNC to the victim's indices (EPTP lists are per-vCPU).
    auto guess = attacker_vm.run(0, [&] {
        attacker_vm.vcpu(0).vmfunc(0, gate.info().subIndex);
    });
    report("VMFUNC to guessed EPTP index", !guess.ok,
           "invalid EPTP-list entry exits");

    // 4. Even the victim cannot skip the gate: its own code pages are
    //    unmapped inside the sub context.
    auto skip = victim_vm.run(0, [&] {
        cpu::Vcpu &cpu = victim_vm.vcpu(0);
        cpu.vmfunc(0, gate.info().subIndex);
        cpu::GuestView view(cpu);
        view.fetchCheck(0x1000); // next instruction of its own code
    });
    report("enter sub context without the gate", !skip.ok,
           "own code unmapped there -> fetch faults");

    // 5. Replay after revocation.
    const EptpIndex stale = gate.info().subIndex;
    service.revokeExport("secrets");
    auto replay = victim_vm.run(0, [&] {
        victim_vm.vcpu(0).vmfunc(0, stale);
    });
    report("replay revoked EPTP index", !replay.ok,
           "hypervisor cleared the list entry");

    std::printf("\n%s\n",
                failures == 0
                    ? "all ELISA attacks contained (and the "
                      "direct-mapping baseline breached, as expected)."
                    : "UNEXPECTED ISOLATION OUTCOME");
    return failures == 0 ? 0 : 1;
}
