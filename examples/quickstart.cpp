/**
 * @file
 * Quickstart: share one in-memory object between a manager VM and a
 * guest VM with ELISA, in ~60 lines.
 *
 *  1. bring up the machine (hypervisor + ELISA service);
 *  2. the manager VM exports a counter object plus the code allowed
 *     to touch it;
 *  3. a guest VM attaches through the negotiation slow path;
 *  4. the guest bumps the counter exit-lessly via gate calls;
 *  5. both sides observe the same state — isolated AND shared.
 *
 * A sim::Tracer records the whole run; the resulting Chrome-trace JSON
 * (quickstart_trace.json, or argv[1]) loads in Perfetto/about:tracing
 * and is byte-identical across runs of the same binary.
 */

#include <cstdio>
#include <string>

#include "base/units.hh"
#include "elisa/gate.hh"
#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "elisa/negotiation.hh"
#include "hv/hypervisor.hh"

using namespace elisa;

int
main(int argc, char **argv)
{
    // 1. The machine: 256 MiB of simulated physical memory, with a
    //    trace collector watching every layer.
    hv::Hypervisor hv(256 * MiB);
    sim::Tracer tracer;
    hv.setTracer(&tracer);
    core::ElisaService service(hv);

    hv::Vm &manager_vm = hv.createVm("manager", 32 * MiB);
    hv::Vm &guest_vm = hv.createVm("guest", 32 * MiB);
    core::ElisaManager manager(manager_vm, service);
    core::ElisaGuest guest(guest_vm, service);

    // 2. Export a page-sized counter object with two functions:
    //    0 = increment-and-return, 1 = read.
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &ctx) {
        const auto v = ctx.view.read<std::uint64_t>(ctx.obj) + ctx.arg0;
        ctx.view.write<std::uint64_t>(ctx.obj, v);
        return v;
    });
    fns.push_back([](core::SubCallCtx &ctx) {
        return ctx.view.read<std::uint64_t>(ctx.obj);
    });
    auto exported =
        manager.exportObject(core::ExportKey("counter"), pageSize, std::move(fns));
    if (!exported) {
        std::fprintf(stderr, "export failed\n");
        return 1;
    }

    // 3. Attach: request -> manager approval -> gate + sub context.
    //    The whole outcome travels in the AttachResult.
    core::AttachResult attached = guest.tryAttach(core::ExportKey("counter"), manager);
    if (!attached) {
        std::fprintf(stderr, "attach failed: %s\n",
                     attached.reason().c_str());
        return 1;
    }
    core::Gate gate = attached.take();
    std::printf("attached: gate EPTP index %u, sub EPTP index %u\n",
                gate.info().gateIndex, gate.info().subIndex);

    // 4. Exit-less calls: each costs 196 simulated ns of transition,
    //    no VM exit.
    const SimNs t0 = guest.vcpu().clock().now();
    for (int i = 0; i < 1000; ++i)
        gate.call(0, 7);
    const SimNs per_call =
        (guest.vcpu().clock().now() - t0) / 1000;
    std::printf("1000 increments, %llu ns per call; VMCALLs used: "
                "%llu (setup only), faulting exits: %llu\n",
                (unsigned long long)per_call,
                (unsigned long long)guest.vcpu().stats().get("vmcall"),
                (unsigned long long)hv.stats().get(
                    "exit_ept-violation"));

    // 5. Both parties see the same object.
    const std::uint64_t from_guest = gate.call(1);
    const std::uint64_t from_manager =
        manager.view().read<std::uint64_t>(exported->objectGpa);
    std::printf("counter: guest sees %llu, manager sees %llu\n",
                (unsigned long long)from_guest,
                (unsigned long long)from_manager);

    // ...and the guest cannot reach the object outside the gate.
    auto result = guest_vm.run(0, [&] {
        cpu::GuestView view(guest_vm.vcpu(0));
        view.read<std::uint64_t>(core::objectGpa);
    });
    std::printf("direct access from guest default context: %s\n",
                result.ok ? "SUCCEEDED (bug!)" : "faulted, as it must");

    // Explicit detach (the Gate would also auto-detach at scope exit).
    gate.detach();

    // 6. Export the trace: hypercall, gate (with its eptp-switch /
    //    stack-swap / payload / return sub-phases), and negotiation
    //    categories, all on the simulated clock.
    const std::string trace_path =
        argc > 1 ? argv[1] : "quickstart_trace.json";
    if (FILE *f = std::fopen(trace_path.c_str(), "w")) {
        const std::string json = tracer.chromeJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("trace: %zu events -> %s (open in Perfetto)\n",
                    tracer.size(), trace_path.c_str());
    }
    std::fputs(tracer.latencyReport().c_str(), stdout);

    return from_guest == from_manager && !result.ok ? 0 : 1;
}
