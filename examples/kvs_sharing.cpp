/**
 * @file
 * Cross-VM data sharing (the paper's second use case): three guest
 * VMs share one key-value store owned by a manager VM, comparing the
 * same workload over all three sharing schemes.
 */

#include <cstdio>
#include <memory>

#include "base/strutil.hh"
#include "base/units.hh"
#include "kvs/workload.hh"

using namespace elisa;

int
main()
{
    setQuiet(true);
    hv::Hypervisor hv(1 * GiB);
    core::ElisaService service(hv);
    hv::Vm &manager_vm = hv.createVm("manager", 64 * MiB);
    core::ElisaManager manager(manager_vm, service);

    std::vector<hv::Vm *> vms;
    for (int i = 0; i < 3; ++i)
        vms.push_back(&hv.createVm("tenant" + std::to_string(i),
                                   16 * MiB));

    const std::uint64_t buckets = 1 << 14;
    const std::uint64_t key_space = 1 << 14;
    const std::uint64_t ops = 20000;

    TextTable table;
    table.header({"Scheme", "3-VM GET [Mops/s]", "Isolated?"});

    // --- ivshmem: fast, but any tenant can trash the table -------
    {
        kvs::DirectKvsTable t(hv, buckets);
        kvs::prepopulate(t.hostIo(), key_space);
        std::vector<std::unique_ptr<kvs::DirectKvsClient>> clients;
        std::vector<kvs::KvsClient *> ptrs;
        for (auto *vm : vms) {
            clients.push_back(
                std::make_unique<kvs::DirectKvsClient>(t, *vm));
            ptrs.push_back(clients.back().get());
        }
        auto r = kvs::runKvsWorkload(ptrs, kvs::Mix::GetOnly,
                                     key_space, ops);
        table.row({"ivshmem", detail::format("%.2f", r.totalMops),
                   "no (tenants see the raw table)"});
    }

    // --- VMCALL host interposition: isolated but slow ---------------
    {
        kvs::VmcallKvsTable t(hv, buckets);
        kvs::prepopulate(t.hostIo(), key_space);
        std::vector<std::unique_ptr<kvs::VmcallKvsClient>> clients;
        std::vector<kvs::KvsClient *> ptrs;
        for (auto *vm : vms) {
            clients.push_back(
                std::make_unique<kvs::VmcallKvsClient>(t, *vm));
            ptrs.push_back(clients.back().get());
        }
        auto r = kvs::runKvsWorkload(ptrs, kvs::Mix::GetOnly,
                                     key_space, ops);
        table.row({"VMCALL", detail::format("%.2f", r.totalMops),
                   "yes (host-mediated)"});
    }

    // --- ELISA: isolated AND fast ------------------------------------
    {
        kvs::ElisaKvsTable t(hv, manager, "tenant-kv", buckets);
        kvs::prepopulate(t.hostIo(), key_space);
        std::vector<std::unique_ptr<core::ElisaGuest>> guests;
        std::vector<std::unique_ptr<kvs::ElisaKvsClient>> clients;
        std::vector<kvs::KvsClient *> ptrs;
        for (auto *vm : vms) {
            guests.push_back(
                std::make_unique<core::ElisaGuest>(*vm, service));
            clients.push_back(std::make_unique<kvs::ElisaKvsClient>(
                t, manager, *guests.back()));
            ptrs.push_back(clients.back().get());
        }
        auto r = kvs::runKvsWorkload(ptrs, kvs::Mix::GetOnly,
                                     key_space, ops);
        table.row({"ELISA", detail::format("%.2f", r.totalMops),
                   "yes (EPT-separated, exit-less)"});

        // Demonstrate the isolation: tenant 0 cannot read the table
        // region outside its gate.
        auto probe = vms[0]->run(0, [&] {
            cpu::GuestView view(vms[0]->vcpu(0));
            view.read<std::uint64_t>(core::objectGpa);
        });
        std::printf("tenant probe of ELISA table outside the gate: "
                    "%s\n\n",
                    probe.ok ? "SUCCEEDED (bug!)" : "EPT violation");
    }

    std::printf("%s", table.render().c_str());
    return 0;
}
