/**
 * @file
 * Virtual I/O (the paper's first use case): a guest VM receives and
 * forwards packets through a NIC whose rings are owned by a manager
 * VM, comparing the ELISA datapath against host interposition.
 */

#include <cstdio>

#include "base/strutil.hh"
#include "base/units.hh"
#include "net/workloads.hh"

using namespace elisa;

int
main()
{
    setQuiet(true);
    hv::Hypervisor hv(1 * GiB);
    core::ElisaService service(hv);
    hv::Vm &manager_vm = hv.createVm("net-manager", 64 * MiB);
    hv::Vm &nf_vm = hv.createVm("nf-guest", 64 * MiB);
    core::ElisaManager manager(manager_vm, service);
    core::ElisaGuest guest(nf_vm, service);
    net::PhysNic nic(hv.cost());

    const std::uint32_t sizes[] = {64, 512, 1472};
    const std::uint64_t packets = 30000;

    TextTable table;
    table.header({"Datapath", "64B RX", "512B RX", "1472B RX",
                  "(Mpps)"});

    auto series = [&](net::NetPath &path) {
        std::vector<std::string> cells{path.name()};
        for (std::uint32_t size : sizes) {
            nic.reset();
            auto r = net::runRx(path, nic, size, packets);
            if (r.corrupt) {
                std::fprintf(stderr, "payload corruption on %s!\n",
                             path.name());
                exit(1);
            }
            cells.push_back(detail::format("%.2f", r.mpps()));
        }
        cells.push_back("");
        table.row(cells);
    };

    // Host interposition: every packet costs a 699 ns VM exit.
    net::VmcallPath vmcall(hv, nf_vm);
    series(vmcall);

    // ELISA: the NF's per-packet work runs in the manager's sub EPT
    // context, reached by 196 ns gate calls — exit-less and the NIC
    // rings stay invisible to the guest's default context.
    net::ElisaPath elisa(hv, manager, guest, "fwd-rings");
    series(elisa);

    std::printf("%s\n", table.render().c_str());

    std::printf("guest vmcalls: %llu (VMCALL path) | "
                "guest vmfuncs: %llu (ELISA path)\n",
                (unsigned long long)nf_vm.vcpu(0).stats().get("vmcall"),
                (unsigned long long)nf_vm.vcpu(0).stats().get(
                    "vmfunc"));
    std::printf("NIC ring region is NOT mapped in the guest default "
                "context:\n");
    auto probe = nf_vm.run(0, [&] {
        cpu::GuestView view(nf_vm.vcpu(0));
        view.read<std::uint64_t>(core::objectGpa);
    });
    std::printf("  probe -> %s\n",
                probe.ok ? "readable (bug!)" : "EPT violation");
    return probe.ok ? 1 : 0;
}
