/**
 * @file
 * Live object migration: move a shared object to new backing memory
 * while a guest keeps writing to it, using EPT dirty-page tracking —
 * the standard pre-copy loop of VM live migration, applied to an
 * ELISA export.
 *
 *  round 0   copy every page, then clear the dirty flags;
 *  round i   the guest keeps mutating through its gate; copy only
 *            the pages its writes dirtied since the last round;
 *  cutover   when the dirty set is small, pause new calls, copy the
 *            remainder, and verify the replica is bit-identical.
 */

#include <cstdio>
#include <cstring>

#include "base/strutil.hh"
#include "base/units.hh"
#include "elisa/gate.hh"
#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "elisa/negotiation.hh"
#include "hv/hypervisor.hh"
#include "sim/rng.hh"

using namespace elisa;

int
main()
{
    setQuiet(true);
    hv::Hypervisor hv(512 * MiB);
    core::ElisaService service(hv);
    hv::Vm &manager_vm = hv.createVm("manager", 128 * MiB);
    hv::Vm &guest_vm = hv.createVm("guest", 32 * MiB);
    core::ElisaManager manager(manager_vm, service);
    core::ElisaGuest guest(guest_vm, service);

    // A 1 MiB object the guest scribbles into through its gate.
    // (Kept under 2 MiB so the sub context maps it with 4 KiB pages:
    // dirty tracking at large-page granularity would mark 2 MiB per
    // stray write — the classic huge-page/live-migration tension.)
    const std::uint64_t obj_bytes = 1 * MiB;
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &ctx) { // write64(arg0) = arg1
        ctx.view.write<std::uint64_t>(ctx.obj + ctx.arg0, ctx.arg1);
        return std::uint64_t{0};
    });
    auto exported =
        manager.exportObject(core::ExportKey("dataset"), obj_bytes, std::move(fns));
    if (!exported) {
        std::fprintf(stderr, "export failed\n");
        return 1;
    }
    core::AttachResult attached = guest.tryAttach(core::ExportKey("dataset"), manager);
    if (!attached) {
        std::fprintf(stderr, "attach failed: %s\n",
                     attached.reason().c_str());
        return 1;
    }
    core::Gate gate = attached.take();

    // Seed the object with a pattern (the manager owns it).
    auto mview = manager.view();
    for (std::uint64_t off = 0; off < obj_bytes; off += 8)
        mview.write<std::uint64_t>(exported->objectGpa + off,
                                   off * 0x9e37ull);

    // The migration target: fresh manager memory.
    auto target = manager_vm.allocGuestMem(obj_bytes,
                                           ept::largePageSize);
    if (!target) {
        std::fprintf(stderr, "target allocation failed\n");
        return 1;
    }

    // The attachment's sub context is where the guest's writes land;
    // its dirty flags are our change log.
    core::Attachment *attach =
        service.attachment(gate.info().attachment);
    ept::Ept &sub = attach->subEpt();

    sim::Rng rng(99);
    auto mutate = [&](int writes) {
        for (int i = 0; i < writes; ++i) {
            const std::uint64_t off =
                (rng.below(obj_bytes) / 8) * 8;
            gate.call(0, off, rng.next());
        }
    };

    auto copy_range = [&](Gpa base, std::uint64_t len) {
        // Host-side copy (the migration engine), manager RAM to
        // manager RAM.
        const Hpa src =
            manager_vm.ramGpaToHpa(exported->objectGpa + base);
        const Hpa dst = manager_vm.ramGpaToHpa(*target + base);
        std::memcpy(hv.memory().raw(dst, len),
                    hv.memory().raw(src, len), len);
    };

    std::printf("pre-copy rounds over a %s object:\n",
                humanBytes(obj_bytes).c_str());

    // Round 0: full copy; reset the change log.
    mutate(4000);
    copy_range(0, obj_bytes);
    sub.dirtyRanges(core::objectGpa, obj_bytes, /*clear=*/true);
    hv.inveptAll(sub.eptp());
    std::printf("  round 0: copied %s (full), dirty log armed\n",
                humanBytes(obj_bytes).c_str());

    // Iterative rounds: guest keeps writing, we copy the delta.
    std::uint64_t round = 1;
    std::uint64_t dirty_bytes = obj_bytes;
    while (dirty_bytes > 64 * KiB && round < 8) {
        mutate(1000 >> round); // workload cools down over time
        auto dirty =
            sub.dirtyRanges(core::objectGpa, obj_bytes, true);
        hv.inveptAll(sub.eptp());
        dirty_bytes = 0;
        for (auto [gpa, len] : dirty) {
            copy_range(gpa - core::objectGpa, len);
            dirty_bytes += len;
        }
        std::printf("  round %llu: %zu dirty ranges, %s re-copied\n",
                    (unsigned long long)round, dirty.size(),
                    humanBytes(dirty_bytes).c_str());
        ++round;
    }

    // Cutover: no further guest calls; copy the final delta.
    auto final_dirty =
        sub.dirtyRanges(core::objectGpa, obj_bytes, true);
    std::uint64_t final_bytes = 0;
    for (auto [gpa, len] : final_dirty) {
        copy_range(gpa - core::objectGpa, len);
        final_bytes += len;
    }
    std::printf("  cutover: %s final copy while paused\n",
                humanBytes(final_bytes).c_str());

    // Verify: replica must be bit-identical to the live object.
    const Hpa src = manager_vm.ramGpaToHpa(exported->objectGpa);
    const Hpa dst = manager_vm.ramGpaToHpa(*target);
    const bool identical =
        std::memcmp(hv.memory().raw(src, obj_bytes),
                    hv.memory().raw(dst, obj_bytes), obj_bytes) == 0;
    std::printf("replica identical: %s\n", identical ? "yes" : "NO");
    return identical ? 0 : 1;
}
