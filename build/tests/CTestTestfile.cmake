# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_base "/root/repo/build/tests/test_base")
set_tests_properties(test_base PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem "/root/repo/build/tests/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ept "/root/repo/build/tests/test_ept")
set_tests_properties(test_ept PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ept_features "/root/repo/build/tests/test_ept_features")
set_tests_properties(test_ept_features PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cpu "/root/repo/build/tests/test_cpu")
set_tests_properties(test_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hv "/root/repo/build/tests/test_hv")
set_tests_properties(test_hv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_elisa "/root/repo/build/tests/test_elisa")
set_tests_properties(test_elisa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_isolation "/root/repo/build/tests/test_isolation")
set_tests_properties(test_isolation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_kvs "/root/repo/build/tests/test_kvs")
set_tests_properties(test_kvs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memcached "/root/repo/build/tests/test_memcached")
set_tests_properties(test_memcached PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_props "/root/repo/build/tests/test_props")
set_tests_properties(test_props PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_guest "/root/repo/build/tests/test_guest")
set_tests_properties(test_guest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;23;elisa_add_test;/root/repo/tests/CMakeLists.txt;0;")
