
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_determinism.cc" "tests/CMakeFiles/test_determinism.dir/test_determinism.cc.o" "gcc" "tests/CMakeFiles/test_determinism.dir/test_determinism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elisa_kvs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_ept.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
