file(REMOVE_RECURSE
  "CMakeFiles/test_elisa.dir/test_elisa.cc.o"
  "CMakeFiles/test_elisa.dir/test_elisa.cc.o.d"
  "test_elisa"
  "test_elisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
