# Empty dependencies file for test_elisa.
# This may be replaced when dependencies are built.
