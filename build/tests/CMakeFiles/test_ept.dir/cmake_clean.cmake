file(REMOVE_RECURSE
  "CMakeFiles/test_ept.dir/test_ept.cc.o"
  "CMakeFiles/test_ept.dir/test_ept.cc.o.d"
  "test_ept"
  "test_ept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
