# Empty compiler generated dependencies file for test_memcached.
# This may be replaced when dependencies are built.
