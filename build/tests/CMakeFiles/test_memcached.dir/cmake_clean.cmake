file(REMOVE_RECURSE
  "CMakeFiles/test_memcached.dir/test_memcached.cc.o"
  "CMakeFiles/test_memcached.dir/test_memcached.cc.o.d"
  "test_memcached"
  "test_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
