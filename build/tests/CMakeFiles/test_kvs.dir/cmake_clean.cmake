file(REMOVE_RECURSE
  "CMakeFiles/test_kvs.dir/test_kvs.cc.o"
  "CMakeFiles/test_kvs.dir/test_kvs.cc.o.d"
  "test_kvs"
  "test_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
