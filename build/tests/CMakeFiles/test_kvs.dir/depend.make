# Empty dependencies file for test_kvs.
# This may be replaced when dependencies are built.
