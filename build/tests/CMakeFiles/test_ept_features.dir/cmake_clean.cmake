file(REMOVE_RECURSE
  "CMakeFiles/test_ept_features.dir/test_ept_features.cc.o"
  "CMakeFiles/test_ept_features.dir/test_ept_features.cc.o.d"
  "test_ept_features"
  "test_ept_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ept_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
