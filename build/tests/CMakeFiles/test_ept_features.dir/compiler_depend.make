# Empty compiler generated dependencies file for test_ept_features.
# This may be replaced when dependencies are built.
