file(REMOVE_RECURSE
  "libelisa_sim_core.a"
)
