# Empty dependencies file for elisa_sim_core.
# This may be replaced when dependencies are built.
