
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clock.cc" "src/CMakeFiles/elisa_sim_core.dir/sim/clock.cc.o" "gcc" "src/CMakeFiles/elisa_sim_core.dir/sim/clock.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/elisa_sim_core.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/elisa_sim_core.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/elisa_sim_core.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/elisa_sim_core.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/histogram.cc" "src/CMakeFiles/elisa_sim_core.dir/sim/histogram.cc.o" "gcc" "src/CMakeFiles/elisa_sim_core.dir/sim/histogram.cc.o.d"
  "/root/repo/src/sim/resource.cc" "src/CMakeFiles/elisa_sim_core.dir/sim/resource.cc.o" "gcc" "src/CMakeFiles/elisa_sim_core.dir/sim/resource.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/elisa_sim_core.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/elisa_sim_core.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/elisa_sim_core.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/elisa_sim_core.dir/sim/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elisa_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
