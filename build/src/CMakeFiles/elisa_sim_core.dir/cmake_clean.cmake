file(REMOVE_RECURSE
  "CMakeFiles/elisa_sim_core.dir/sim/clock.cc.o"
  "CMakeFiles/elisa_sim_core.dir/sim/clock.cc.o.d"
  "CMakeFiles/elisa_sim_core.dir/sim/cost_model.cc.o"
  "CMakeFiles/elisa_sim_core.dir/sim/cost_model.cc.o.d"
  "CMakeFiles/elisa_sim_core.dir/sim/engine.cc.o"
  "CMakeFiles/elisa_sim_core.dir/sim/engine.cc.o.d"
  "CMakeFiles/elisa_sim_core.dir/sim/histogram.cc.o"
  "CMakeFiles/elisa_sim_core.dir/sim/histogram.cc.o.d"
  "CMakeFiles/elisa_sim_core.dir/sim/resource.cc.o"
  "CMakeFiles/elisa_sim_core.dir/sim/resource.cc.o.d"
  "CMakeFiles/elisa_sim_core.dir/sim/rng.cc.o"
  "CMakeFiles/elisa_sim_core.dir/sim/rng.cc.o.d"
  "CMakeFiles/elisa_sim_core.dir/sim/stats.cc.o"
  "CMakeFiles/elisa_sim_core.dir/sim/stats.cc.o.d"
  "libelisa_sim_core.a"
  "libelisa_sim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_sim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
