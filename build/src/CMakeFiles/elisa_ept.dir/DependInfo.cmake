
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ept/ept.cc" "src/CMakeFiles/elisa_ept.dir/ept/ept.cc.o" "gcc" "src/CMakeFiles/elisa_ept.dir/ept/ept.cc.o.d"
  "/root/repo/src/ept/ept_entry.cc" "src/CMakeFiles/elisa_ept.dir/ept/ept_entry.cc.o" "gcc" "src/CMakeFiles/elisa_ept.dir/ept/ept_entry.cc.o.d"
  "/root/repo/src/ept/eptp_list.cc" "src/CMakeFiles/elisa_ept.dir/ept/eptp_list.cc.o" "gcc" "src/CMakeFiles/elisa_ept.dir/ept/eptp_list.cc.o.d"
  "/root/repo/src/ept/tlb.cc" "src/CMakeFiles/elisa_ept.dir/ept/tlb.cc.o" "gcc" "src/CMakeFiles/elisa_ept.dir/ept/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elisa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
