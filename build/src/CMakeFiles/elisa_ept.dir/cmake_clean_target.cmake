file(REMOVE_RECURSE
  "libelisa_ept.a"
)
