# Empty dependencies file for elisa_ept.
# This may be replaced when dependencies are built.
