file(REMOVE_RECURSE
  "CMakeFiles/elisa_ept.dir/ept/ept.cc.o"
  "CMakeFiles/elisa_ept.dir/ept/ept.cc.o.d"
  "CMakeFiles/elisa_ept.dir/ept/ept_entry.cc.o"
  "CMakeFiles/elisa_ept.dir/ept/ept_entry.cc.o.d"
  "CMakeFiles/elisa_ept.dir/ept/eptp_list.cc.o"
  "CMakeFiles/elisa_ept.dir/ept/eptp_list.cc.o.d"
  "CMakeFiles/elisa_ept.dir/ept/tlb.cc.o"
  "CMakeFiles/elisa_ept.dir/ept/tlb.cc.o.d"
  "libelisa_ept.a"
  "libelisa_ept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_ept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
