file(REMOVE_RECURSE
  "libelisa_kvs.a"
)
