file(REMOVE_RECURSE
  "CMakeFiles/elisa_kvs.dir/kvs/clients.cc.o"
  "CMakeFiles/elisa_kvs.dir/kvs/clients.cc.o.d"
  "CMakeFiles/elisa_kvs.dir/kvs/shm_kvs.cc.o"
  "CMakeFiles/elisa_kvs.dir/kvs/shm_kvs.cc.o.d"
  "CMakeFiles/elisa_kvs.dir/kvs/workload.cc.o"
  "CMakeFiles/elisa_kvs.dir/kvs/workload.cc.o.d"
  "libelisa_kvs.a"
  "libelisa_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
