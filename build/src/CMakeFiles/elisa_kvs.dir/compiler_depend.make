# Empty compiler generated dependencies file for elisa_kvs.
# This may be replaced when dependencies are built.
