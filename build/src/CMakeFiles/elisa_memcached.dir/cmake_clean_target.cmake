file(REMOVE_RECURSE
  "libelisa_memcached.a"
)
