file(REMOVE_RECURSE
  "CMakeFiles/elisa_memcached.dir/memcached/loadgen.cc.o"
  "CMakeFiles/elisa_memcached.dir/memcached/loadgen.cc.o.d"
  "CMakeFiles/elisa_memcached.dir/memcached/server.cc.o"
  "CMakeFiles/elisa_memcached.dir/memcached/server.cc.o.d"
  "libelisa_memcached.a"
  "libelisa_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
