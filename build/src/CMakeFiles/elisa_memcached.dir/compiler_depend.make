# Empty compiler generated dependencies file for elisa_memcached.
# This may be replaced when dependencies are built.
