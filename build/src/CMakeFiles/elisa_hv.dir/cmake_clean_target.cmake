file(REMOVE_RECURSE
  "libelisa_hv.a"
)
