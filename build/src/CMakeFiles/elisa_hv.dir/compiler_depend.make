# Empty compiler generated dependencies file for elisa_hv.
# This may be replaced when dependencies are built.
