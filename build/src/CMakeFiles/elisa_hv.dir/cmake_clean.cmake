file(REMOVE_RECURSE
  "CMakeFiles/elisa_hv.dir/hv/hypervisor.cc.o"
  "CMakeFiles/elisa_hv.dir/hv/hypervisor.cc.o.d"
  "CMakeFiles/elisa_hv.dir/hv/ivshmem.cc.o"
  "CMakeFiles/elisa_hv.dir/hv/ivshmem.cc.o.d"
  "CMakeFiles/elisa_hv.dir/hv/vm.cc.o"
  "CMakeFiles/elisa_hv.dir/hv/vm.cc.o.d"
  "libelisa_hv.a"
  "libelisa_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
