# Empty compiler generated dependencies file for elisa_net.
# This may be replaced when dependencies are built.
