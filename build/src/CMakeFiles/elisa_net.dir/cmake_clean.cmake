file(REMOVE_RECURSE
  "CMakeFiles/elisa_net.dir/net/desc_ring.cc.o"
  "CMakeFiles/elisa_net.dir/net/desc_ring.cc.o.d"
  "CMakeFiles/elisa_net.dir/net/nf.cc.o"
  "CMakeFiles/elisa_net.dir/net/nf.cc.o.d"
  "CMakeFiles/elisa_net.dir/net/packet.cc.o"
  "CMakeFiles/elisa_net.dir/net/packet.cc.o.d"
  "CMakeFiles/elisa_net.dir/net/paths.cc.o"
  "CMakeFiles/elisa_net.dir/net/paths.cc.o.d"
  "CMakeFiles/elisa_net.dir/net/phys_nic.cc.o"
  "CMakeFiles/elisa_net.dir/net/phys_nic.cc.o.d"
  "CMakeFiles/elisa_net.dir/net/workloads.cc.o"
  "CMakeFiles/elisa_net.dir/net/workloads.cc.o.d"
  "libelisa_net.a"
  "libelisa_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
