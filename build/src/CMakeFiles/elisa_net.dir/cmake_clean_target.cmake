file(REMOVE_RECURSE
  "libelisa_net.a"
)
