# Empty compiler generated dependencies file for elisa_cpu.
# This may be replaced when dependencies are built.
