file(REMOVE_RECURSE
  "CMakeFiles/elisa_cpu.dir/cpu/exit.cc.o"
  "CMakeFiles/elisa_cpu.dir/cpu/exit.cc.o.d"
  "CMakeFiles/elisa_cpu.dir/cpu/guest_view.cc.o"
  "CMakeFiles/elisa_cpu.dir/cpu/guest_view.cc.o.d"
  "CMakeFiles/elisa_cpu.dir/cpu/vcpu.cc.o"
  "CMakeFiles/elisa_cpu.dir/cpu/vcpu.cc.o.d"
  "libelisa_cpu.a"
  "libelisa_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
