file(REMOVE_RECURSE
  "libelisa_cpu.a"
)
