# Empty dependencies file for elisa_mem.
# This may be replaced when dependencies are built.
