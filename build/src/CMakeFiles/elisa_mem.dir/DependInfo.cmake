
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/frame_allocator.cc" "src/CMakeFiles/elisa_mem.dir/mem/frame_allocator.cc.o" "gcc" "src/CMakeFiles/elisa_mem.dir/mem/frame_allocator.cc.o.d"
  "/root/repo/src/mem/host_memory.cc" "src/CMakeFiles/elisa_mem.dir/mem/host_memory.cc.o" "gcc" "src/CMakeFiles/elisa_mem.dir/mem/host_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elisa_sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
