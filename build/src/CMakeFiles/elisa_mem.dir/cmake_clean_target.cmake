file(REMOVE_RECURSE
  "libelisa_mem.a"
)
