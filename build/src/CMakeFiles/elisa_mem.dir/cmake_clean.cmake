file(REMOVE_RECURSE
  "CMakeFiles/elisa_mem.dir/mem/frame_allocator.cc.o"
  "CMakeFiles/elisa_mem.dir/mem/frame_allocator.cc.o.d"
  "CMakeFiles/elisa_mem.dir/mem/host_memory.cc.o"
  "CMakeFiles/elisa_mem.dir/mem/host_memory.cc.o.d"
  "libelisa_mem.a"
  "libelisa_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
