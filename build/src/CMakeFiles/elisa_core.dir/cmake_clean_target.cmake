file(REMOVE_RECURSE
  "libelisa_core.a"
)
