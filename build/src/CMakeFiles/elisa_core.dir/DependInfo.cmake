
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elisa/gate.cc" "src/CMakeFiles/elisa_core.dir/elisa/gate.cc.o" "gcc" "src/CMakeFiles/elisa_core.dir/elisa/gate.cc.o.d"
  "/root/repo/src/elisa/guest_api.cc" "src/CMakeFiles/elisa_core.dir/elisa/guest_api.cc.o" "gcc" "src/CMakeFiles/elisa_core.dir/elisa/guest_api.cc.o.d"
  "/root/repo/src/elisa/manager.cc" "src/CMakeFiles/elisa_core.dir/elisa/manager.cc.o" "gcc" "src/CMakeFiles/elisa_core.dir/elisa/manager.cc.o.d"
  "/root/repo/src/elisa/negotiation.cc" "src/CMakeFiles/elisa_core.dir/elisa/negotiation.cc.o" "gcc" "src/CMakeFiles/elisa_core.dir/elisa/negotiation.cc.o.d"
  "/root/repo/src/elisa/shm_allocator.cc" "src/CMakeFiles/elisa_core.dir/elisa/shm_allocator.cc.o" "gcc" "src/CMakeFiles/elisa_core.dir/elisa/shm_allocator.cc.o.d"
  "/root/repo/src/elisa/sub_context.cc" "src/CMakeFiles/elisa_core.dir/elisa/sub_context.cc.o" "gcc" "src/CMakeFiles/elisa_core.dir/elisa/sub_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elisa_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_ept.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
