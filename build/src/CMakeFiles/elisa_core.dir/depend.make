# Empty dependencies file for elisa_core.
# This may be replaced when dependencies are built.
