file(REMOVE_RECURSE
  "CMakeFiles/elisa_core.dir/elisa/gate.cc.o"
  "CMakeFiles/elisa_core.dir/elisa/gate.cc.o.d"
  "CMakeFiles/elisa_core.dir/elisa/guest_api.cc.o"
  "CMakeFiles/elisa_core.dir/elisa/guest_api.cc.o.d"
  "CMakeFiles/elisa_core.dir/elisa/manager.cc.o"
  "CMakeFiles/elisa_core.dir/elisa/manager.cc.o.d"
  "CMakeFiles/elisa_core.dir/elisa/negotiation.cc.o"
  "CMakeFiles/elisa_core.dir/elisa/negotiation.cc.o.d"
  "CMakeFiles/elisa_core.dir/elisa/shm_allocator.cc.o"
  "CMakeFiles/elisa_core.dir/elisa/shm_allocator.cc.o.d"
  "CMakeFiles/elisa_core.dir/elisa/sub_context.cc.o"
  "CMakeFiles/elisa_core.dir/elisa/sub_context.cc.o.d"
  "libelisa_core.a"
  "libelisa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
