file(REMOVE_RECURSE
  "CMakeFiles/elisa_guest.dir/guest/address_space.cc.o"
  "CMakeFiles/elisa_guest.dir/guest/address_space.cc.o.d"
  "CMakeFiles/elisa_guest.dir/guest/page_table.cc.o"
  "CMakeFiles/elisa_guest.dir/guest/page_table.cc.o.d"
  "libelisa_guest.a"
  "libelisa_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
