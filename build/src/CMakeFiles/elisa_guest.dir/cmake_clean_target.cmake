file(REMOVE_RECURSE
  "libelisa_guest.a"
)
