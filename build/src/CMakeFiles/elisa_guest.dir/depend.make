# Empty dependencies file for elisa_guest.
# This may be replaced when dependencies are built.
