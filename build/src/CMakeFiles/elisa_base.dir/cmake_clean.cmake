file(REMOVE_RECURSE
  "CMakeFiles/elisa_base.dir/base/logging.cc.o"
  "CMakeFiles/elisa_base.dir/base/logging.cc.o.d"
  "CMakeFiles/elisa_base.dir/base/strutil.cc.o"
  "CMakeFiles/elisa_base.dir/base/strutil.cc.o.d"
  "CMakeFiles/elisa_base.dir/base/trace.cc.o"
  "CMakeFiles/elisa_base.dir/base/trace.cc.o.d"
  "libelisa_base.a"
  "libelisa_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elisa_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
