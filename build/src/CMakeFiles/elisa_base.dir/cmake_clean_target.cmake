file(REMOVE_RECURSE
  "libelisa_base.a"
)
