# Empty compiler generated dependencies file for elisa_base.
# This may be replaced when dependencies are built.
