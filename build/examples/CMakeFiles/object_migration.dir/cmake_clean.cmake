file(REMOVE_RECURSE
  "CMakeFiles/object_migration.dir/object_migration.cpp.o"
  "CMakeFiles/object_migration.dir/object_migration.cpp.o.d"
  "object_migration"
  "object_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
