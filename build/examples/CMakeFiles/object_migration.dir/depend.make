# Empty dependencies file for object_migration.
# This may be replaced when dependencies are built.
