file(REMOVE_RECURSE
  "CMakeFiles/kvs_sharing.dir/kvs_sharing.cpp.o"
  "CMakeFiles/kvs_sharing.dir/kvs_sharing.cpp.o.d"
  "kvs_sharing"
  "kvs_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvs_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
