# Empty compiler generated dependencies file for kvs_sharing.
# This may be replaced when dependencies are built.
