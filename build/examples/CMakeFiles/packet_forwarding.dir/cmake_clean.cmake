file(REMOVE_RECURSE
  "CMakeFiles/packet_forwarding.dir/packet_forwarding.cpp.o"
  "CMakeFiles/packet_forwarding.dir/packet_forwarding.cpp.o.d"
  "packet_forwarding"
  "packet_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
