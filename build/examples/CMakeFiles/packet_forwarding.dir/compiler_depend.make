# Empty compiler generated dependencies file for packet_forwarding.
# This may be replaced when dependencies are built.
