file(REMOVE_RECURSE
  "CMakeFiles/bench_net_tx.dir/bench/bench_net_tx.cc.o"
  "CMakeFiles/bench_net_tx.dir/bench/bench_net_tx.cc.o.d"
  "bench/bench_net_tx"
  "bench/bench_net_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
