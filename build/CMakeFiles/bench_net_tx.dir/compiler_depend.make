# Empty compiler generated dependencies file for bench_net_tx.
# This may be replaced when dependencies are built.
