# Empty dependencies file for bench_kvs_put.
# This may be replaced when dependencies are built.
