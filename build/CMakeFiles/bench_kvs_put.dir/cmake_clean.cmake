file(REMOVE_RECURSE
  "CMakeFiles/bench_kvs_put.dir/bench/bench_kvs_put.cc.o"
  "CMakeFiles/bench_kvs_put.dir/bench/bench_kvs_put.cc.o.d"
  "bench/bench_kvs_put"
  "bench/bench_kvs_put.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kvs_put.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
