# Empty dependencies file for bench_ablation_wake.
# This may be replaced when dependencies are built.
