file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wake.dir/bench/bench_ablation_wake.cc.o"
  "CMakeFiles/bench_ablation_wake.dir/bench/bench_ablation_wake.cc.o.d"
  "bench/bench_ablation_wake"
  "bench/bench_ablation_wake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
