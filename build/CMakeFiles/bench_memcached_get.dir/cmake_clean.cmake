file(REMOVE_RECURSE
  "CMakeFiles/bench_memcached_get.dir/bench/bench_memcached_get.cc.o"
  "CMakeFiles/bench_memcached_get.dir/bench/bench_memcached_get.cc.o.d"
  "bench/bench_memcached_get"
  "bench/bench_memcached_get.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memcached_get.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
