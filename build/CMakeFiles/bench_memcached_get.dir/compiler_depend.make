# Empty compiler generated dependencies file for bench_memcached_get.
# This may be replaced when dependencies are built.
