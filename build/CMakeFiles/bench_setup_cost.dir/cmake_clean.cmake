file(REMOVE_RECURSE
  "CMakeFiles/bench_setup_cost.dir/bench/bench_setup_cost.cc.o"
  "CMakeFiles/bench_setup_cost.dir/bench/bench_setup_cost.cc.o.d"
  "bench/bench_setup_cost"
  "bench/bench_setup_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setup_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
