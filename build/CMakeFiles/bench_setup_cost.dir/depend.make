# Empty dependencies file for bench_setup_cost.
# This may be replaced when dependencies are built.
