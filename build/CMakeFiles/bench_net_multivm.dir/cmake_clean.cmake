file(REMOVE_RECURSE
  "CMakeFiles/bench_net_multivm.dir/bench/bench_net_multivm.cc.o"
  "CMakeFiles/bench_net_multivm.dir/bench/bench_net_multivm.cc.o.d"
  "bench/bench_net_multivm"
  "bench/bench_net_multivm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net_multivm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
