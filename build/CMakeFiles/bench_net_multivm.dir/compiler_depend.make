# Empty compiler generated dependencies file for bench_net_multivm.
# This may be replaced when dependencies are built.
