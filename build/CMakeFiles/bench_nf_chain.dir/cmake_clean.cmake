file(REMOVE_RECURSE
  "CMakeFiles/bench_nf_chain.dir/bench/bench_nf_chain.cc.o"
  "CMakeFiles/bench_nf_chain.dir/bench/bench_nf_chain.cc.o.d"
  "bench/bench_nf_chain"
  "bench/bench_nf_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nf_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
