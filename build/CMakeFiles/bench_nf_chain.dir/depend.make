# Empty dependencies file for bench_nf_chain.
# This may be replaced when dependencies are built.
