file(REMOVE_RECURSE
  "CMakeFiles/bench_net_vm2vm.dir/bench/bench_net_vm2vm.cc.o"
  "CMakeFiles/bench_net_vm2vm.dir/bench/bench_net_vm2vm.cc.o.d"
  "bench/bench_net_vm2vm"
  "bench/bench_net_vm2vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net_vm2vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
