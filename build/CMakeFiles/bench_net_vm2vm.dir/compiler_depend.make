# Empty compiler generated dependencies file for bench_net_vm2vm.
# This may be replaced when dependencies are built.
