# Empty dependencies file for bench_net_rx.
# This may be replaced when dependencies are built.
