file(REMOVE_RECURSE
  "CMakeFiles/bench_net_rx.dir/bench/bench_net_rx.cc.o"
  "CMakeFiles/bench_net_rx.dir/bench/bench_net_rx.cc.o.d"
  "bench/bench_net_rx"
  "bench/bench_net_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
