file(REMOVE_RECURSE
  "CMakeFiles/bench_context_rtt.dir/bench/bench_context_rtt.cc.o"
  "CMakeFiles/bench_context_rtt.dir/bench/bench_context_rtt.cc.o.d"
  "bench/bench_context_rtt"
  "bench/bench_context_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_context_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
