# Empty compiler generated dependencies file for bench_context_rtt.
# This may be replaced when dependencies are built.
