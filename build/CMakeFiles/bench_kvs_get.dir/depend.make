# Empty dependencies file for bench_kvs_get.
# This may be replaced when dependencies are built.
