file(REMOVE_RECURSE
  "CMakeFiles/bench_kvs_get.dir/bench/bench_kvs_get.cc.o"
  "CMakeFiles/bench_kvs_get.dir/bench/bench_kvs_get.cc.o.d"
  "bench/bench_kvs_get"
  "bench/bench_kvs_get.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kvs_get.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
