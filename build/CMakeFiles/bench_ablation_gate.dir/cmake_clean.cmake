file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gate.dir/bench/bench_ablation_gate.cc.o"
  "CMakeFiles/bench_ablation_gate.dir/bench/bench_ablation_gate.cc.o.d"
  "bench/bench_ablation_gate"
  "bench/bench_ablation_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
