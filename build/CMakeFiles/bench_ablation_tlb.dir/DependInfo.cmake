
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_tlb.cc" "CMakeFiles/bench_ablation_tlb.dir/bench/bench_ablation_tlb.cc.o" "gcc" "CMakeFiles/bench_ablation_tlb.dir/bench/bench_ablation_tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elisa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_ept.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elisa_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
