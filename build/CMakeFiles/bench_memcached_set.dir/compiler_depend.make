# Empty compiler generated dependencies file for bench_memcached_set.
# This may be replaced when dependencies are built.
