file(REMOVE_RECURSE
  "CMakeFiles/bench_memcached_set.dir/bench/bench_memcached_set.cc.o"
  "CMakeFiles/bench_memcached_set.dir/bench/bench_memcached_set.cc.o.d"
  "bench/bench_memcached_set"
  "bench/bench_memcached_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memcached_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
