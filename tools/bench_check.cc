/**
 * @file
 * bench_check — the bench-regression gate.
 *
 * Benches emit deterministic `BENCH_<name>.json` reports (see
 * bench::BenchReport). This tool compares every report in a baseline
 * directory against the freshly generated ones and fails when any
 * metric deviates beyond the noise threshold — in EITHER direction:
 * the simulator is deterministic, so an unexplained "improvement" is
 * just as much a model change as a regression, and both mean the
 * committed baselines need a deliberate re-bless.
 *
 *   bench_check [--baselines DIR] [--current DIR] [--tolerance PCT]
 *               [--quick-tolerance PCT] [--wall-tolerance PCT]
 *
 * Defaults: baselines bench_results/baselines, current bench_results,
 * tolerance 2 %, quick-tolerance 5 % (applied when one side ran with
 * ELISA_BENCH_QUICK and the other did not — trimmed iteration counts
 * shift amortized warmup slightly).
 *
 * Metrics whose key starts with "wall_" are host wall-clock derived
 * (sim/wall ratios, parallel speedups): inherently noisy and
 * machine-dependent, so they get their own generous tolerance
 * (--wall-tolerance, default 60 %) and are gated one-sided — only a
 * drop below baseline fails; running on a faster or wider box passes.
 *
 * Exit codes: 0 all metrics within tolerance; 1 regression (or a
 * baseline bench that was not run); 2 usage or I/O error.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

/** One parsed BENCH_<name>.json report. */
struct Report
{
    std::string bench;
    bool quick = false;
    std::map<std::string, double> metrics;
};

/**
 * Minimal parser for the restricted BenchReport grammar: one object
 * with a "bench" string, a "quick" bool and a flat "metrics" object
 * of numbers. Anything else is a malformed report.
 */
class Parser
{
  public:
    explicit Parser(std::string text) : text(std::move(text)) {}

    std::optional<Report>
    parse()
    {
        Report report;
        if (!expect('{'))
            return std::nullopt;
        bool first = true;
        while (true) {
            skipWs();
            if (peek() == '}') {
                ++pos;
                break;
            }
            if (!first && !expect(','))
                return std::nullopt;
            first = false;
            auto key = parseString();
            if (!key || !expect(':'))
                return std::nullopt;
            if (*key == "bench") {
                auto value = parseString();
                if (!value)
                    return std::nullopt;
                report.bench = *value;
            } else if (*key == "quick") {
                auto value = parseBool();
                if (!value)
                    return std::nullopt;
                report.quick = *value;
            } else if (*key == "metrics") {
                if (!parseMetrics(report.metrics))
                    return std::nullopt;
            } else {
                return std::nullopt;
            }
        }
        skipWs();
        return pos == text.size() ? std::optional(report) : std::nullopt;
    }

  private:
    void
    skipWs()
    {
        while (pos < text.size() && std::isspace((unsigned char)text[pos]))
            ++pos;
    }

    char
    peek()
    {
        return pos < text.size() ? text[pos] : '\0';
    }

    bool
    expect(char c)
    {
        skipWs();
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    std::optional<std::string>
    parseString()
    {
        if (!expect('"'))
            return std::nullopt;
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\' && pos + 1 < text.size())
                ++pos;
            out += text[pos++];
        }
        if (pos == text.size())
            return std::nullopt;
        ++pos; // closing quote
        return out;
    }

    std::optional<bool>
    parseBool()
    {
        skipWs();
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            return false;
        }
        return std::nullopt;
    }

    std::optional<double>
    parseNumber()
    {
        skipWs();
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start)
            return std::nullopt;
        pos += (std::size_t)(end - start);
        return value;
    }

    bool
    parseMetrics(std::map<std::string, double> &out)
    {
        if (!expect('{'))
            return false;
        bool first = true;
        while (true) {
            skipWs();
            if (peek() == '}') {
                ++pos;
                return true;
            }
            if (!first && !expect(','))
                return false;
            first = false;
            auto key = parseString();
            if (!key || !expect(':'))
                return false;
            auto value = parseNumber();
            if (!value)
                return false;
            out[*key] = *value;
        }
    }

    std::string text;
    std::size_t pos = 0;
};

std::optional<Report>
loadReport(const fs::path &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return Parser(buf.str()).parse();
}

bool
isBenchJson(const fs::path &path)
{
    const std::string name = path.filename().string();
    return name.rfind("BENCH_", 0) == 0 &&
           path.extension() == ".json";
}

double
parsePct(const char *arg)
{
    char *end = nullptr;
    const double value = std::strtod(arg, &end);
    if (end == arg || *end != '\0' || value < 0.0) {
        std::fprintf(stderr, "bench_check: bad percentage '%s'\n", arg);
        std::exit(2);
    }
    return value;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string baseline_dir = "bench_results/baselines";
    std::string current_dir = "bench_results";
    double tolerance_pct = 2.0;
    double quick_tolerance_pct = 5.0;
    double wall_tolerance_pct = 60.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "bench_check: %s needs an argument\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--baselines") {
            baseline_dir = next();
        } else if (arg == "--current") {
            current_dir = next();
        } else if (arg == "--tolerance") {
            tolerance_pct = parsePct(next());
        } else if (arg == "--quick-tolerance") {
            quick_tolerance_pct = parsePct(next());
        } else if (arg == "--wall-tolerance") {
            wall_tolerance_pct = parsePct(next());
        } else {
            std::fprintf(
                stderr,
                "usage: bench_check [--baselines DIR] [--current DIR]"
                " [--tolerance PCT] [--quick-tolerance PCT]"
                " [--wall-tolerance PCT]\n");
            return 2;
        }
    }

    std::error_code ec;
    if (!fs::is_directory(baseline_dir, ec)) {
        std::fprintf(stderr,
                     "bench_check: baseline directory '%s' missing\n",
                     baseline_dir.c_str());
        return 2;
    }

    std::vector<fs::path> baselines;
    for (const auto &entry : fs::directory_iterator(baseline_dir)) {
        if (entry.is_regular_file() && isBenchJson(entry.path()))
            baselines.push_back(entry.path());
    }
    std::sort(baselines.begin(), baselines.end());
    if (baselines.empty()) {
        std::fprintf(stderr, "bench_check: no BENCH_*.json in '%s'\n",
                     baseline_dir.c_str());
        return 2;
    }

    unsigned checked = 0;
    unsigned failures = 0;
    for (const fs::path &base_path : baselines) {
        const auto base = loadReport(base_path);
        if (!base) {
            std::fprintf(stderr, "bench_check: malformed baseline %s\n",
                         base_path.string().c_str());
            return 2;
        }
        const fs::path cur_path =
            fs::path(current_dir) / base_path.filename();
        const auto cur = loadReport(cur_path);
        if (!cur) {
            std::printf("FAIL %-16s missing or malformed current report"
                        " (%s)\n",
                        base->bench.c_str(),
                        cur_path.string().c_str());
            ++failures;
            continue;
        }
        const double tol = base->quick != cur->quick
                               ? std::max(tolerance_pct,
                                          quick_tolerance_pct)
                               : tolerance_pct;
        for (const auto &[key, want] : base->metrics) {
            ++checked;
            const auto it = cur->metrics.find(key);
            if (it == cur->metrics.end()) {
                std::printf("FAIL %-16s %-32s missing from current "
                            "report\n",
                            base->bench.c_str(), key.c_str());
                ++failures;
                continue;
            }
            const double got = it->second;
            const double dev_pct =
                want == 0.0 ? (got == 0.0 ? 0.0 : 100.0)
                            : (got - want) / std::fabs(want) * 100.0;
            const bool wall = key.rfind("wall_", 0) == 0;
            const bool bad = wall
                                 ? -dev_pct > wall_tolerance_pct
                                 : std::fabs(dev_pct) > tol;
            if (bad) {
                std::printf("FAIL %-16s %-32s baseline=%.6g got=%.6g "
                            "(%+.2f%% > %s%.1f%%)\n",
                            base->bench.c_str(), key.c_str(), want, got,
                            dev_pct, wall ? "-" : "±",
                            wall ? wall_tolerance_pct : tol);
                ++failures;
            } else {
                std::printf("  ok %-16s %-32s baseline=%.6g got=%.6g "
                            "(%+.2f%%%s)\n",
                            base->bench.c_str(), key.c_str(), want, got,
                            dev_pct, wall ? ", wall" : "");
            }
        }
        for (const auto &[key, value] : cur->metrics) {
            if (!base->metrics.count(key)) {
                std::printf("WARN %-16s %-32s new metric (%.6g) has no "
                            "baseline — re-bless baselines\n",
                            cur->bench.c_str(), key.c_str(), value);
            }
        }
    }

    std::printf("bench_check: %u metric(s) checked, %u failure(s)\n",
                checked, failures);
    return failures == 0 ? 0 : 1;
}
