/**
 * @file
 * elisa_report — the paper's accounting claims as one command.
 *
 * Modes (combinable; --ledger is the default when none given):
 *
 *   --ledger      Install a sim::ExitLedger, run the headline
 *                 workloads, and print the per-{vm, vcpu, kind, code}
 *                 cost table. Reproduces the two decompositions the
 *                 paper argues from:
 *                   - one gate round trip = six legs summing to
 *                     ~196 ns (4 VMFUNC switches + 2 gate-code
 *                     segments), each leg with its duration histogram;
 *                   - with HyperNF-class per-packet work, VM
 *                     exit/entry cycles consume ~49 % of the VMCALL
 *                     path's runtime — the ledger share, not a
 *                     throughput subtraction.
 *   --prometheus  Attach a sim::Metrics registry to the machine, run
 *                 the gate/VMCALL workload, and dump the Prometheus
 *                 text exposition.
 *   --csv [NS]    Run the KVS workload with a periodic simulated-time
 *                 sampler (default every 100000 ns) and print the
 *                 metrics time-series CSV.
 *   --scrape      Publish telemetry through hv::TelemetryPublisher,
 *                 scrape it from a monitor guest over all three
 *                 schemes (ELISA gate / VMCALL / ivshmem), and verify
 *                 each guest-side Prometheus re-export is
 *                 byte-identical to the host-side export. Exits
 *                 non-zero on any byte difference (the CI parity job).
 *   --postmortem  Kill a VM mid-workload via the fault plan and print
 *                 its flight-recorder post-mortem JSON, verifying the
 *                 ledger-delta conservation verdict.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "cpu/exit.hh"
#include "cpu/guest_view.hh"
#include "elisa/gate.hh"
#include "guest/monitor.hh"
#include "hv/ivshmem.hh"
#include "hv/paging.hh"
#include "hv/telemetry_publisher.hh"
#include "kvs/clients.hh"
#include "kvs/workload.hh"
#include "net/paths.hh"
#include "net/phys_nic.hh"
#include "net/workloads.hh"
#include "sim/exit_ledger.hh"
#include "sim/metrics.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

/** Mean ns of one ledger row (0 when it never fired). */
double
meanNs(const sim::ExitLedger::Row &row)
{
    return row.events == 0 ? 0.0
                           : (double)row.ns / (double)row.events;
}

/**
 * The gate-vs-VMCALL decomposition: a no-op export called in a tight
 * loop with the ledger installed, then the per-leg table.
 */
void
ledgerGateSection()
{
    std::printf("--- ledger: gate round-trip decomposition ---------"
                "-----------\n");
    Testbed bed;
    sim::ExitLedger ledger;
    bed.hv.setLedger(&ledger);

    hv::Vm &vm = bed.addGuest("guest");
    core::ElisaGuest guest(vm, bed.svc);
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &) { return std::uint64_t{0}; });
    auto exported = bed.manager.exportObject(core::ExportKey("noop"), pageSize,
                                             std::move(fns));
    fatal_if(!exported, "export failed");
    core::Gate gate = mustAttach(guest, core::ExportKey("noop"), bed.manager);
    cpu::Vcpu &cpu = guest.vcpu();

    const std::uint64_t iterations = scaledCount(100000);
    gate.call(0); // warm translation caches
    ledger.clear(); // drop setup-time negotiation hypercalls
    for (std::uint64_t i = 0; i < iterations; ++i)
        gate.call(0);
    for (std::uint64_t i = 0; i < iterations; ++i)
        cpu.vmcall(hv::hcArgs(hv::Hc::Nop));

    std::printf("%s\n", ledger.report().c_str());

    double gate_rtt = 0.0;
    for (const auto &row : ledger.rows()) {
        if (row.kind == sim::CostKind::GateLeg)
            gate_rtt += meanNs(row);
    }
    double vmcall_rtt = 0.0;
    for (const auto &row : ledger.rows()) {
        if (row.kind == sim::CostKind::Hypercall &&
            row.code == (std::uint32_t)hv::Hc::Nop) {
            vmcall_rtt = meanNs(row);
        }
    }
    paperCheck("gate legs sum (ledger)", gate_rtt, 196.0, "ns");
    paperCheck("VMCALL mechanism (ledger)", vmcall_rtt, 699.0, "ns");
}

/**
 * The HyperNF 49 % claim, derived from the ledger share: with heavy
 * per-packet NF work, (exit + hypercall mechanism ns) / elapsed of
 * the VMCALL RX run is the fraction of runtime the exits consumed —
 * and matches the throughput loss vs direct mapping.
 */
void
ledgerHypernfSection()
{
    std::printf("--- ledger: HyperNF exit-cost share ---------------"
                "-----------\n");
    sim::CostModel heavy = sim::CostModel::fromEnv();
    heavy.netPerPacketNs += 615; // NF chain processing per packet
    Testbed bed(1536 * MiB, heavy);
    sim::ExitLedger ledger;
    bed.hv.setLedger(&ledger);

    hv::Vm &vm = bed.addGuest("rx-heavy", 64 * MiB);
    net::DirectPath direct(bed.hv, vm);
    net::VmcallPath vmcall(bed.hv, vm);
    net::PhysNic nic(heavy);
    const std::uint64_t packets = scaledCount(60000);

    nic.reset();
    const auto r_direct = net::runRx(direct, nic, 64, packets);

    ledger.clear(); // count the VMCALL run only
    nic.reset();
    const auto r_vmcall = net::runRx(vmcall, nic, 64, packets);

    std::printf("%s\n", ledger.report().c_str());

    const SimNs mech =
        ledger.kindNs(sim::CostKind::Hypercall) +
        ledger.kindNs(sim::CostKind::Exit);
    const double share =
        r_vmcall.elapsed == 0
            ? 0.0
            : (double)mech / (double)r_vmcall.elapsed * 100.0;
    const double loss =
        (r_direct.mpps() - r_vmcall.mpps()) / r_direct.mpps() * 100.0;

    std::printf("  direct  %.2f Mpps, VMCALL %.2f Mpps over %llu "
                "packets\n",
                r_direct.mpps(), r_vmcall.mpps(),
                (unsigned long long)r_vmcall.packets);
    paperCheck("exit cycles / VMCALL runtime (ledger)", share, 49.0,
               "%");
    paperCheck("throughput loss vs direct", loss, 49.0, "%");
}

/**
 * The demand-paging decomposition: a shared object squeezed below its
 * working set, touched through the gate. Every non-resident touch is
 * an Exit/ept-violation row (the exit+entry mechanism, billed to the
 * faulting guest) plus a Page/page-in row (handler + swap device) —
 * and the kinds still partition the total.
 */
void
ledgerPagingSection()
{
    std::printf("--- ledger: demand-paging fault charging ----------"
                "-----------\n");
    Testbed bed;
    sim::ExitLedger ledger;
    bed.hv.setLedger(&ledger);
    hv::Pager &pager = bed.hv.enablePaging({0, 256});

    constexpr std::uint64_t objectBytes = 64 * KiB;
    constexpr std::uint64_t objectPages = objectBytes / pageSize;
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &ctx) { // 0: read64
        return ctx.view.read<std::uint64_t>(ctx.obj + ctx.arg0);
    });
    auto exported = bed.manager.exportObject(core::ExportKey("obj"),
                                             objectBytes,
                                             std::move(fns));
    fatal_if(!exported, "export failed");
    pager.manageObject(bed.managerVm,
                       bed.managerVm.ramGpaToHpa(exported->objectGpa),
                       objectBytes, true);

    hv::Vm &vm = bed.addGuest("guest");
    core::ElisaGuest guest(vm, bed.svc);
    core::Gate gate = mustAttach(guest, core::ExportKey("obj"), bed.manager);

    // Warm all pages from the manager, then squeeze the residency so
    // most of the object sits on the swap device.
    pager.setResidentLimit(4);
    cpu::GuestView mview(bed.managerVm.vcpu(0));
    for (std::uint64_t page = 0; page < objectPages; ++page)
        mview.write<std::uint64_t>(exported->objectGpa +
                                       page * pageSize,
                                   0x900d0000 + page);

    ledger.clear(); // count the guest's faulting gate calls only
    for (std::uint64_t page = 0; page < objectPages; ++page) {
        const std::uint64_t got = gate.call(0, page * pageSize);
        fatal_if(got != 0x900d0000 + page, "paged read corrupted");
    }

    std::printf("%s\n", ledger.report().c_str());

    const sim::CostModel model = sim::CostModel::fromEnv();
    double exit_mean = 0.0;
    double pagein_mean = 0.0;
    for (const auto &row : ledger.rows()) {
        if (row.kind == sim::CostKind::Exit &&
            row.code ==
                (std::uint32_t)cpu::ExitReason::EptViolation) {
            exit_mean = meanNs(row);
        }
        if (row.kind == sim::CostKind::Page &&
            row.code == (std::uint32_t)sim::PageCost::PageIn)
            pagein_mean = meanNs(row);
    }
    paperCheck("EPT-violation exit mechanism (ledger)", exit_mean,
               (double)(model.vmexitNs + model.vmentryNs), "ns");
    paperCheck("page-in service (ledger)", pagein_mean,
               (double)(model.pageFaultHandleNs + model.swapInNs),
               "ns");

    SimNs kinds = 0;
    for (std::uint32_t k = 0; k < sim::costKindCount; ++k)
        kinds += ledger.kindNs((sim::CostKind)k);
    std::printf("  [check] cost kinds partition the total: %s\n",
                kinds == ledger.totalNs() ? "yes" : "NO — LEAK");
    fatal_if(kinds != ledger.totalNs(),
             "ledger kinds do not sum to total");
}

/** Gate/VMCALL workload with a Metrics registry; Prometheus dump. */
void
prometheusSection()
{
    Testbed bed;
    hv::Vm &vm = bed.addGuest("guest");
    core::ElisaGuest guest(vm, bed.svc);
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &) { return std::uint64_t{0}; });
    auto exported = bed.manager.exportObject(core::ExportKey("noop"), pageSize,
                                             std::move(fns));
    fatal_if(!exported, "export failed");
    core::Gate gate = mustAttach(guest, core::ExportKey("noop"), bed.manager);
    cpu::Vcpu &cpu = guest.vcpu();

    const std::uint64_t iterations = scaledCount(10000);
    for (std::uint64_t i = 0; i < iterations; ++i)
        gate.call(0);
    for (std::uint64_t i = 0; i < iterations; ++i)
        cpu.vmcall(hv::hcArgs(hv::Hc::Nop));

    sim::Metrics metrics;
    bed.hv.attachMetrics(metrics);
    std::fputs(metrics.prometheus().c_str(), stdout);
}

/** KVS workload sampled on a simulated-time period; CSV dump. */
void
csvSection(SimNs period)
{
    Testbed bed(3 * GiB / 2);
    std::vector<hv::Vm *> vms;
    for (unsigned i = 0; i < 2; ++i)
        vms.push_back(&bed.addGuest("client" + std::to_string(i),
                                    16 * MiB));

    constexpr std::uint64_t buckets = 1 << 12;
    kvs::DirectKvsTable table(bed.hv, buckets);
    kvs::prepopulate(table.hostIo(), buckets);
    std::vector<std::unique_ptr<kvs::DirectKvsClient>> clients;
    std::vector<kvs::KvsClient *> ptrs;
    for (hv::Vm *vm : vms) {
        clients.push_back(
            std::make_unique<kvs::DirectKvsClient>(table, *vm));
        ptrs.push_back(clients.back().get());
    }

    sim::Metrics metrics;
    bed.hv.attachMetrics(metrics);
    sim::MetricsCsvSampler sampler(metrics);
    const auto r = kvs::runKvsWorkload(
        ptrs, kvs::Mix::Mixed9010, buckets, scaledCount(20000), 42,
        period, [&](SimNs now) { sampler.sample(now); });
    fatal_if(r.corrupt || r.failed, "KVS workload misbehaved");
    std::fputs(sampler.csv().c_str(), stdout);
    std::fprintf(stderr, "elisa_report: %zu sample row(s) at %llu ns\n",
                 sampler.rows(), (unsigned long long)period);
}

/**
 * Telemetry-scrape parity: the monitor guest's re-export must equal
 * the host-side export byte-for-byte, over every access scheme.
 */
bool
scrapeSection()
{
    Testbed bed;
    sim::ExitLedger ledger;
    sim::Tracer tracer(4096);
    bed.hv.setLedger(&ledger);
    bed.hv.setTracer(&tracer);

    // A worked guest so the snapshot carries real counters, ledger
    // rows and spans.
    hv::Vm &vm = bed.addGuest("worker");
    core::ElisaGuest worker(vm, bed.svc);
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &) { return std::uint64_t{0}; });
    auto exported = bed.manager.exportObject(core::ExportKey("noop"),
                                             pageSize, std::move(fns));
    fatal_if(!exported, "export failed");
    core::Gate noop =
        mustAttach(worker, core::ExportKey("noop"), bed.manager);

    hv::Vm &monVm = bed.addGuest("monitor");
    elisa::guest::MonitorGuest monitor(monVm, bed.svc);

    sim::Metrics metrics;
    hv::TelemetryPublisher publisher(bed.hv, metrics);

    // Sink 1: the ELISA shared object (exit-less scheme).
    constexpr std::uint32_t slotBytes = 192 * KiB;
    auto texp = elisa::guest::exportTelemetryRegion(
        bed.manager, publisher, core::ExportKey("telemetry"),
        slotBytes);
    fatal_if(!texp, "telemetry export failed");
    fatal_if(!monitor.attach(core::ExportKey("telemetry"), bed.manager),
             "monitor attach failed");

    // Sink 2: the direct-mapped ivshmem mirror.
    hv::IvshmemRegion mirror(
        bed.hv, "telemetry-mirror",
        sim::TelemetryRegionLayout::regionBytes(slotBytes));
    publisher.addSink(mirror.base(), mirror.size(), "ivshmem");
    constexpr Gpa mirrorGpa = 0x5000000000ull;
    fatal_if(!mirror.attach(monVm, mirrorGpa, ept::Perms::Read),
             "ivshmem attach failed");

    // Scheme 3: the VMCALL marshalling service.
    const std::uint64_t scrapeNr = publisher.registerScrapeHypercall();

    bed.hv.attachMetrics(metrics);

    const std::uint64_t iterations = scaledCount(20000);
    cpu::Vcpu &cpu = worker.vcpu();
    for (std::uint64_t i = 0; i < iterations; ++i)
        noop.call(0);
    for (std::uint64_t i = 0; i < iterations; ++i)
        cpu.vmcall(hv::hcArgs(hv::Hc::Nop));

    // Freeze host truth immediately before the publish that snapshots
    // the same state; the scrapes below mutate vCPU counters and must
    // not be visible in this comparison.
    const std::string host = metrics.prometheus();
    publisher.publish(cpu.clock().now());

    bool all_same = true;
    const auto check = [&](const char *scheme, bool scraped) {
        fatal_if(!scraped, "%s scrape failed", scheme);
        const std::string re = monitor.prometheus();
        const bool same = re == host;
        all_same = all_same && same;
        std::printf("  [scrape] %-8s seq=%llu %6zu bytes re-exported, "
                    "byte-identical: %s\n",
                    scheme,
                    (unsigned long long)monitor.snapshot().seq(),
                    re.size(), same ? "yes" : "NO");
    };
    check("elisa", monitor.scrape());
    check("vmcall", monitor.scrapeVmcall(scrapeNr));
    check("ivshmem", monitor.scrapeIvshmem(mirrorGpa));

    std::printf("  [scrape] host export %zu bytes, retries %llu, "
                "failures %llu\n",
                host.size(), (unsigned long long)monitor.retries(),
                (unsigned long long)monitor.failures());
    std::printf("[scrape] byte-identical across all schemes: %s\n",
                all_same ? "yes" : "NO");
    mirror.detach(monVm, mirrorGpa);
    return all_same;
}

/**
 * Flight-recorder walkthrough: kill a VM mid-workload through the
 * fault plan, print its post-mortem, and verify conservation.
 */
bool
postmortemSection()
{
    Testbed bed;
    sim::Tracer tracer(8192);
    sim::ExitLedger ledger;
    sim::FlightRecorder recorder(128);
    bed.hv.setTracer(&tracer);
    bed.hv.setLedger(&ledger);
    bed.hv.setFlightRecorder(&recorder);

    hv::Vm &victimVm = bed.addGuest("victim");
    hv::Vm &workerVm = bed.addGuest("worker");
    core::ElisaGuest victim(victimVm, bed.svc);
    core::ElisaGuest worker(workerVm, bed.svc);
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &) { return std::uint64_t{0}; });
    auto exported = bed.manager.exportObject(core::ExportKey("noop"),
                                             pageSize, std::move(fns));
    fatal_if(!exported, "export failed");
    core::Gate vgate =
        mustAttach(victim, core::ExportKey("noop"), bed.manager);
    core::Gate wgate =
        mustAttach(worker, core::ExportKey("noop"), bed.manager);

    // The 40th Nop from the worker kills the victim (third-party
    // kill: teardown — and the post-mortem dump — happen right away).
    const VmId id = victimVm.id();
    sim::FaultPlan plan(7);
    sim::FaultRule rule;
    rule.site = (std::uint64_t)sim::FaultSite::Hypercall;
    rule.hcNr = (std::uint64_t)hv::Hc::Nop;
    rule.vm = workerVm.id();
    rule.occurrence = 40;
    rule.action = sim::FaultAction::KillVm;
    rule.param = id;
    plan.addRule(rule);
    bed.hv.setFaultPlan(&plan);

    for (unsigned i = 0; i < 64; ++i) {
        // The victim VM (and the vCPU behind its gate) vanishes
        // mid-loop; touch it only while it still exists.
        if (bed.hv.hasVm(id)) {
            vgate.call(0);
            victim.vcpu().vmcall(hv::hcArgs(hv::Hc::Nop));
        }
        wgate.call(0);
        worker.vcpu().vmcall(hv::hcArgs(hv::Hc::Nop));
    }
    fatal_if(bed.hv.hasVm(id), "victim survived the plan");
    fatal_if(!recorder.hasPostMortem(id), "no post-mortem dumped");
    std::fputs(recorder.postMortem(id).c_str(), stdout);
    const bool conserved = recorder.postMortemConserved(id);
    std::printf("[postmortem] vm %u spans=%zu dropped=%llu "
                "conserved: %s\n",
                id, recorder.heldFor(id),
                (unsigned long long)recorder.droppedFor(id),
                conserved ? "yes" : "NO");
    return conserved;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    bool do_ledger = false;
    bool do_prometheus = false;
    bool do_csv = false;
    bool do_scrape = false;
    bool do_postmortem = false;
    SimNs csv_period = 100000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--ledger") {
            do_ledger = true;
        } else if (arg == "--prometheus") {
            do_prometheus = true;
        } else if (arg == "--csv") {
            do_csv = true;
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                csv_period = std::strtoull(argv[++i], nullptr, 10);
                if (csv_period == 0) {
                    std::fprintf(stderr,
                                 "elisa_report: bad --csv period\n");
                    return 2;
                }
            }
        } else if (arg == "--scrape") {
            do_scrape = true;
        } else if (arg == "--postmortem") {
            do_postmortem = true;
        } else {
            std::fprintf(stderr,
                         "usage: elisa_report [--ledger] "
                         "[--prometheus] [--csv [PERIOD_NS]] "
                         "[--scrape] [--postmortem]\n");
            return 2;
        }
    }
    if (!do_ledger && !do_prometheus && !do_csv && !do_scrape &&
        !do_postmortem)
        do_ledger = true;

    if (do_ledger) {
        ledgerGateSection();
        ledgerHypernfSection();
        ledgerPagingSection();
    }
    if (do_prometheus)
        prometheusSection();
    if (do_csv)
        csvSection(csv_period);
    if (do_scrape && !scrapeSection())
        return 1;
    if (do_postmortem && !postmortemSection())
        return 1;
    return 0;
}
