/**
 * @file
 * Experiment P1 — shared-object access under memory overcommit: the
 * same zipfian touch stream over a manager-exported object, served by
 * the three sharing schemes (ELISA gate call, VMCALL host
 * interposition, ivshmem-style direct mapping), swept across
 * overcommit ratios. The object is demand-paged against a resident
 * budget of objectPages/ratio frames, so ratio 1.0 never swaps after
 * warmup while ratio 3.0 thrashes; per-op p50 stays near the scheme's
 * base cost (the hot zipf head stays resident) while p99 absorbs the
 * EPT-violation + swap-in path and must degrade monotonically with
 * the ratio.
 */

#include <cstdio>
#include <optional>
#include <vector>

#include "bench/common.hh"
#include "cpu/guest_view.hh"
#include "elisa/gate.hh"
#include "hv/paging.hh"
#include "sim/histogram.hh"
#include "sim/zipf.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

constexpr std::uint64_t objectBytes = 256 * KiB;
constexpr std::uint64_t objectPages = objectBytes / pageSize;
const std::uint64_t opsPerCell = scaledCount(20000);
constexpr double zipfSkew = 0.99;
constexpr std::uint64_t vmcallReadNr = 0x900;

/** Overcommit ratios swept (managed pages / resident budget). */
const std::vector<double> ratios = {1.0, 1.5, 2.0, 3.0};

enum class Scheme
{
    Elisa,   ///< exit-less gate call into the shared object
    Vmcall,  ///< VMCALL; the host touches and reads on behalf
    Ivshmem, ///< object pages mapped straight into the guest
};

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Elisa:
        return "elisa";
      case Scheme::Vmcall:
        return "vmcall";
      case Scheme::Ivshmem:
        return "ivshmem";
    }
    return "?";
}

/** Result of one (scheme, ratio) cell. */
struct CellResult
{
    double meanNs = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t faults = 0;
    std::uint64_t swapIns = 0;
    double swapInsPerKop = 0; ///< scale-invariant, gate-checked form
};

/**
 * Run one cell: a fresh machine, the object demand-paged under a
 * budget of objectPages/ratio frames, opsPerCell zipfian touches.
 */
CellResult
runCell(Scheme scheme, double ratio)
{
    Testbed bed;
    const std::uint64_t budget = static_cast<std::uint64_t>(
        static_cast<double>(objectPages) / ratio);
    hv::Pager &pager = bed.hv.enablePaging(
        {/*residentLimitFrames=*/budget,
         /*swapSlots=*/objectPages * 2});

    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &ctx) { // 0: read64
        return ctx.view.read<std::uint64_t>(ctx.obj + ctx.arg0);
    });
    auto exported = bed.manager.exportObject(core::ExportKey("obj"),
                                             objectBytes,
                                             std::move(fns));
    fatal_if(!exported, "export failed");
    const Hpa objHpa = bed.managerVm.ramGpaToHpa(exported->objectGpa);
    pager.manageObject(bed.managerVm, objHpa, objectBytes, true);

    // Warm: the manager populates every page (faulting them in and,
    // once the budget binds, swapping the cold tail back out).
    cpu::GuestView mview(bed.managerVm.vcpu(0));
    for (std::uint64_t page = 0; page < objectPages; ++page)
        mview.write<std::uint64_t>(exported->objectGpa +
                                       page * pageSize,
                                   0x0bec0000 + page);

    hv::Vm &guest_vm = bed.addGuest("guest");
    core::ElisaGuest guest(guest_vm, bed.svc);
    cpu::Vcpu &cpu = guest_vm.vcpu(0);

    // Per-scheme access setup.
    std::optional<core::Gate> gate;
    constexpr Gpa winGpa = 1 * GiB; // direct window, above guest RAM
    if (scheme == Scheme::Elisa) {
        gate = mustAttach(guest, core::ExportKey("obj"), bed.manager);
    } else if (scheme == Scheme::Vmcall) {
        bed.hv.registerHypercall(
            vmcallReadNr,
            [&pager, &bed, objHpa](cpu::Vcpu &caller,
                                   const cpu::HypercallArgs &args) {
                // Host interposition: page the target in (service
                // billed to the caller; the exit itself is charged by
                // the VMCALL) and read on its behalf.
                if (!pager.hostTouch(caller, objHpa + args.arg0, 8))
                    return hv::hcError;
                return bed.hv.memory().read64(objHpa + args.arg0);
            });
    } else {
        const bool mapped = guest_vm.defaultEpt().mapRange(
            winGpa, objHpa, objectBytes, ept::Perms::Read);
        fatal_if(!mapped, "direct window collided");
        pager.addMirror(guest_vm.defaultEpt(), winGpa, objHpa,
                        objectBytes);
    }

    sim::Rng rng(0x0cc0 + static_cast<std::uint64_t>(ratio * 10));
    sim::Zipf zipf(objectPages, zipfSkew);
    sim::Histogram latency(6, 1ull << 32);
    cpu::GuestView gview(cpu);
    double total_ns = 0;

    const auto touch = [&](std::uint64_t page) {
        const std::uint64_t off = page * pageSize;
        std::uint64_t value = 0;
        switch (scheme) {
          case Scheme::Elisa:
            value = gate->call(0, off);
            break;
          case Scheme::Vmcall: {
            cpu::HypercallArgs args;
            args.nr = vmcallReadNr;
            args.arg0 = off;
            value = cpu.vmcall(args);
            break;
          }
          case Scheme::Ivshmem:
            value = gview.read<std::uint64_t>(winGpa + off);
            break;
        }
        fatal_if(value != 0x0bec0000 + page,
                 "scheme %s read garbage at page %llu",
                 schemeName(scheme), (unsigned long long)page);
    };

    // Unmeasured warm-up: touch every page once so the L0 micro-cache
    // and the resident set reach steady state; without it the cold
    // first-touch tail distorts the percentiles at small op counts
    // (ELISA_BENCH_QUICK) and the quick run would not reproduce the
    // committed baseline.
    for (std::uint64_t page = 0; page < objectPages; ++page)
        touch(page);

    const std::uint64_t faults0 = bed.hv.stats().get("pager_faults");
    const std::uint64_t ins0 =
        bed.hv.stats().get("pager_pages_swapped_in");

    for (std::uint64_t op = 0; op < opsPerCell; ++op) {
        const std::uint64_t page =
            sim::Zipf::spreadRank(zipf.sample(rng), objectPages);
        const SimNs t0 = cpu.clock().now();
        touch(page);
        const SimNs dt = cpu.clock().now() - t0;
        latency.record(dt);
        total_ns += static_cast<double>(dt);
    }

    CellResult result;
    result.meanNs = total_ns / static_cast<double>(opsPerCell);
    result.p50 = latency.p50();
    result.p99 = latency.p99();
    result.faults = bed.hv.stats().get("pager_faults") - faults0;
    result.swapIns =
        bed.hv.stats().get("pager_pages_swapped_in") - ins0;
    result.swapInsPerKop = static_cast<double>(result.swapIns) *
                           1000.0 /
                           static_cast<double>(opsPerCell);
    return result;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("P1", "shared-object access under overcommit "
                 "(ELISA vs VMCALL vs ivshmem)");

    BenchReport report("overcommit");
    TextTable table;
    table.header({"Scheme", "Ratio", "Mean [ns]", "p50 [ns]",
                  "p99 [ns]", "Faults", "Swap-ins"});

    bool monotonic = true;
    for (const Scheme scheme :
         {Scheme::Elisa, Scheme::Vmcall, Scheme::Ivshmem}) {
        std::uint64_t prev_p99 = 0;
        for (const double ratio : ratios) {
            const CellResult cell = runCell(scheme, ratio);
            table.row({schemeName(scheme),
                       detail::format("%.1f", ratio),
                       detail::format("%.1f", cell.meanNs),
                       detail::format("%llu",
                                      (unsigned long long)cell.p50),
                       detail::format("%llu",
                                      (unsigned long long)cell.p99),
                       detail::format("%llu",
                                      (unsigned long long)cell.faults),
                       detail::format(
                           "%llu",
                           (unsigned long long)cell.swapIns)});

            const std::string prefix =
                std::string(schemeName(scheme)) + "_r" +
                detail::format("%02d", (int)(ratio * 10));
            // The mean and the swap rate are sensitive to the
            // op-count prefix (quick mode runs 1/10th of the
            // stream), so only the stable percentiles are
            // gate-checked; the raw columns stay in the table/CSV.
            report.set(prefix + "_p50_ns",
                       static_cast<double>(cell.p50));
            report.set(prefix + "_p99_ns",
                       static_cast<double>(cell.p99));

            if (cell.p99 < prev_p99)
                monotonic = false;
            prev_p99 = cell.p99;
        }
    }
    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "P1_overcommit");

    // The paging tax must grow with the overcommit ratio under every
    // scheme — the gate that bench_overcommit exists to hold.
    std::printf("  [check] p99 monotone in overcommit ratio: %s\n",
                monotonic ? "yes" : "NO — REGRESSION");
    report.set("p99_monotonic", monotonic ? 1.0 : 0.0);
    fatal_if(!monotonic, "p99 did not degrade monotonically");
    return 0;
}
