/**
 * @file
 * Experiment F8 (extension) — how many VMs does each scheme need to
 * saturate one 10 GbE port at 64 B?
 *
 * The paper's motivation: exit costs burn CPU, so host-interposed
 * virtual I/O cannot "fully utilize the potential of high-speed
 * physical I/O devices". This figure quantifies that: aggregate RX
 * throughput over VM count, one shared port. ELISA reaches line rate
 * with a fraction of the vCPUs VMCALL needs.
 */

#include <memory>

#include "bench/common.hh"
#include "net/workloads.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

const std::uint64_t packetsPerVm = scaledCount(40000);
constexpr unsigned maxVms = 12;

} // namespace

int
main()
{
    setQuiet(true);
    banner("F8", "aggregate 64B RX vs number of VMs sharing one port "
                 "(extension)");

    TextTable table;
    table.header({"VMs", "ivshmem", "VMCALL", "ELISA", "(Mpps, line "
                                                       "rate 14.2)"});
    double vmcall_at_max = 0, elisa_at_max = 0;
    unsigned elisa_saturated_at = 0;

    for (unsigned n = 1; n <= maxVms; n += (n < 4 ? 1 : 2)) {
        std::vector<double> agg;
        for (int scheme = 0; scheme < 3; ++scheme) {
            Testbed bed(768 * MiB);
            net::PhysNic nic(bed.hv.cost());
            std::vector<std::unique_ptr<hv::Vm *>> dummy;
            std::vector<std::unique_ptr<net::NetPath>> paths;
            std::vector<std::unique_ptr<core::ElisaGuest>> guests;
            std::vector<net::NetPath *> ptrs;
            for (unsigned i = 0; i < n; ++i) {
                hv::Vm &vm = bed.addGuest(
                    "vm" + std::to_string(i), 16 * MiB);
                switch (scheme) {
                  case 0:
                    paths.push_back(std::make_unique<net::DirectPath>(
                        bed.hv, vm));
                    break;
                  case 1:
                    paths.push_back(std::make_unique<net::VmcallPath>(
                        bed.hv, vm));
                    break;
                  case 2:
                    guests.push_back(
                        std::make_unique<core::ElisaGuest>(vm,
                                                           bed.svc));
                    paths.push_back(std::make_unique<net::ElisaPath>(
                        bed.hv, bed.manager, *guests.back(),
                        "nic-q" + std::to_string(i)));
                    break;
                }
                ptrs.push_back(paths.back().get());
            }
            auto r = net::runRxShared(ptrs, nic, 64, packetsPerVm);
            fatal_if(r.corrupt != 0, "corrupt packets");
            agg.push_back(r.mpps());
        }
        table.row({std::to_string(n),
                   detail::format("%.2f", agg[0]),
                   detail::format("%.2f", agg[1]),
                   detail::format("%.2f", agg[2]), ""});
        if (agg[2] >= 14.0 && elisa_saturated_at == 0)
            elisa_saturated_at = n;
        vmcall_at_max = agg[1];
        elisa_at_max = agg[2];
    }
    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "F8_net_multivm");

    paperCheck("ELISA aggregate @12 VMs", elisa_at_max, 14.2, "Mpps");
    std::printf("  ELISA saturates the port with %u VMs; VMCALL needs "
                "12 (%.1f Mpps there) —\n"
                "  the intro's 'exit cost wastes the device' point, "
                "quantified in vCPUs.\n",
                elisa_saturated_at, vmcall_at_max);
    return 0;
}
