/**
 * @file
 * Experiment F7 — memcached, SET-heavy (50/50): p99 latency vs
 * achieved throughput. Writes carry the heavier store cost, so every
 * scheme's knee sits at roughly half the GET-heavy load — the paper's
 * second memcached panel.
 */

#include "bench/mc_common.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

} // namespace

int
main()
{
    setQuiet(true);
    banner("F7", "memcached SET-heavy: p99 latency vs throughput");

    Testbed bed(2 * GiB);
    const std::vector<double> loads = {25, 50, 75, 100, 150,
                                       200, 250, 300};
    const double set_ratio = 0.5;

    TextTable table;
    table.header({"Scheme", "Offered [Krps]", "Achieved [Krps]",
                  "p50 [us]", "p99 [us]"});

    hv::Vm &vm_sriov = bed.addGuest("mc-sriov", 64 * MiB);
    net::SriovPath sriov(bed.hv, vm_sriov);
    runMcCurve("SR-IOV", sriov, bed.hv, vm_sriov, set_ratio, loads,
               table);

    hv::Vm &vm_direct = bed.addGuest("mc-ivshmem", 64 * MiB);
    net::DirectPath direct(bed.hv, vm_direct);
    auto p_direct = runMcCurve("ivshmem", direct, bed.hv, vm_direct,
                               set_ratio, loads, table);

    hv::Vm &vm_elisa = bed.addGuest("mc-elisa", 64 * MiB);
    core::ElisaGuest guest(vm_elisa, bed.svc);
    net::ElisaPath elisa(bed.hv, bed.manager, guest, "mc-set");
    auto p_elisa = runMcCurve("ELISA", elisa, bed.hv, vm_elisa,
                              set_ratio, loads, table);

    hv::Vm &vm_vmcall = bed.addGuest("mc-vmcall", 64 * MiB);
    net::VmcallPath vmcall(bed.hv, vm_vmcall);
    auto p_vmcall = runMcCurve("VMCALL", vmcall, bed.hv, vm_vmcall,
                               set_ratio, loads, table);

    hv::Vm &vm_vhost = bed.addGuest("mc-vhost", 64 * MiB);
    net::VhostPath vhost(bed.hv, vm_vhost);
    runMcCurve("vhost-net", vhost, bed.hv, vm_vhost, set_ratio, loads,
               table);

    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "F7_memcached_set");
    paperCheck("ELISA sustainable Krps vs VMCALL (p99<=300us)",
               (p_elisa.achievedKrps() - p_vmcall.achievedKrps()) /
                   p_vmcall.achievedKrps() * 100.0,
               39.0, "%");
    paperCheck("SET-heavy knee vs GET-heavy knee (ivshmem)",
               p_direct.achievedKrps(), 250.0, "Krps");
    return 0;
}
