/**
 * @file
 * Shared driver for the VM networking figures (F3 RX / F4 TX /
 * F5 VM-to-VM): builds the five datapaths and prints the Mpps series
 * over the paper's packet-size axis.
 */

#ifndef ELISA_BENCH_NET_COMMON_HH
#define ELISA_BENCH_NET_COMMON_HH

#include <array>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/common.hh"
#include "net/workloads.hh"

namespace elisa::bench
{

/** The paper's packet-size axis. */
inline constexpr std::uint32_t netSizes[] = {64,  128,  256,
                                             512, 1024, 1472};

/** Packets per figure point. */
inline const std::uint64_t netPackets = scaledCount(60000);

/** The five schemes on one guest VM. */
struct PathSet
{
    PathSet(Testbed &bed, hv::Vm &vm, core::ElisaGuest &guest,
            const std::string &tag)
        : sriov(bed.hv, vm), direct(bed.hv, vm),
          elisa(bed.hv, bed.manager, guest, "nic-" + tag),
          vmcall(bed.hv, vm), vhost(bed.hv, vm)
    {
    }

    std::vector<net::NetPath *>
    all()
    {
        return {&sriov, &direct, &elisa, &vmcall, &vhost};
    }

    net::SriovPath sriov;
    net::DirectPath direct;
    net::ElisaPath elisa;
    net::VmcallPath vmcall;
    net::VhostPath vhost;
};

/**
 * Print one figure: rows = packet sizes, columns = schemes.
 * @param run (path, size) -> Mpps for one point.
 * @return (elisa, vmcall, direct) Mpps at 64 B for the check lines.
 */
inline std::array<double, 3>
printNetFigure(PathSet &paths,
               const std::function<double(net::NetPath &,
                                          std::uint32_t)> &run,
               const char *exp_id)
{
    TextTable table;
    table.header({"Size [B]", "ivshmem", "VMCALL", "ELISA",
                  "vhost-net", "SR-IOV", "(Mpps)"});
    std::array<double, 3> at64{};
    for (std::uint32_t size : netSizes) {
        const double m_direct = run(paths.direct, size);
        const double m_vmcall = run(paths.vmcall, size);
        const double m_elisa = run(paths.elisa, size);
        const double m_vhost = run(paths.vhost, size);
        const double m_sriov = run(paths.sriov, size);
        table.row({std::to_string(size),
                   detail::format("%.2f", m_direct),
                   detail::format("%.2f", m_vmcall),
                   detail::format("%.2f", m_elisa),
                   detail::format("%.2f", m_vhost),
                   detail::format("%.2f", m_sriov), ""});
        if (size == 64)
            at64 = {m_elisa, m_vmcall, m_direct};
    }
    std::printf("%s\n", table.render().c_str());
    saveCsv(table, exp_id);
    return at64;
}

} // namespace elisa::bench

#endif // ELISA_BENCH_NET_COMMON_HH
