/**
 * @file
 * Experiment F6 — memcached, GET-heavy (90/10): 99th-percentile
 * latency vs achieved throughput for the five networking schemes
 * (paper: ELISA sustains markedly more load than VMCALL before the
 * latency knee, with ~44 % lower p99 in the contested region).
 */

#include "bench/mc_common.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

} // namespace

int
main()
{
    setQuiet(true);
    banner("F6", "memcached GET-heavy: p99 latency vs throughput");

    Testbed bed(2 * GiB);
    const std::vector<double> loads = {50, 100, 150, 200, 250,
                                       300, 350, 400, 450};
    const double set_ratio = 0.1;

    TextTable table;
    table.header({"Scheme", "Offered [Krps]", "Achieved [Krps]",
                  "p50 [us]", "p99 [us]"});

    // One server VM per scheme.
    hv::Vm &vm_sriov = bed.addGuest("mc-sriov", 64 * MiB);
    net::SriovPath sriov(bed.hv, vm_sriov);
    auto p_sriov = runMcCurve("SR-IOV", sriov, bed.hv, vm_sriov,
                              set_ratio, loads, table);

    hv::Vm &vm_direct = bed.addGuest("mc-ivshmem", 64 * MiB);
    net::DirectPath direct(bed.hv, vm_direct);
    auto p_direct = runMcCurve("ivshmem", direct, bed.hv, vm_direct,
                               set_ratio, loads, table);

    hv::Vm &vm_elisa = bed.addGuest("mc-elisa", 64 * MiB);
    core::ElisaGuest guest(vm_elisa, bed.svc);
    net::ElisaPath elisa(bed.hv, bed.manager, guest, "mc-get");
    auto p_elisa = runMcCurve("ELISA", elisa, bed.hv, vm_elisa,
                              set_ratio, loads, table);

    hv::Vm &vm_vmcall = bed.addGuest("mc-vmcall", 64 * MiB);
    net::VmcallPath vmcall(bed.hv, vm_vmcall);
    auto p_vmcall = runMcCurve("VMCALL", vmcall, bed.hv, vm_vmcall,
                               set_ratio, loads, table);

    hv::Vm &vm_vhost = bed.addGuest("mc-vhost", 64 * MiB);
    net::VhostPath vhost(bed.hv, vm_vhost);
    auto p_vhost = runMcCurve("vhost-net", vhost, bed.hv, vm_vhost,
                              set_ratio, loads, table);
    (void)p_sriov;
    (void)p_direct;
    (void)p_vhost;

    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "F6_memcached_get");
    paperCheck("ELISA sustainable Krps vs VMCALL (p99<=300us)",
               (p_elisa.achievedKrps() - p_vmcall.achievedKrps()) /
                   p_vmcall.achievedKrps() * 100.0,
               54.0, "%");

    // p99 at a common contested load (the largest load VMCALL still
    // sustains): rerun both at that point for an apples-to-apples
    // latency comparison.
    {
        hv::Vm &vm_e2 = bed.addGuest("mc-elisa2", 64 * MiB);
        core::ElisaGuest guest2(vm_e2, bed.svc);
        net::ElisaPath elisa2(bed.hv, bed.manager, guest2, "mc-get2");
        memcached::Server se(bed.hv, vm_e2, elisa2);
        hv::Vm &vm_v2 = bed.addGuest("mc-vmcall2", 64 * MiB);
        net::VmcallPath vmcall2(bed.hv, vm_v2);
        memcached::Server sv(bed.hv, vm_v2, vmcall2);
        net::PhysNic nic_e(bed.hv.cost()), nic_v(bed.hv.cost());
        const double contested = p_vmcall.achievedKrps() * 0.95 * 1e3;
        auto pe = memcached::runLoadPoint(se, nic_e, contested,
                                          mcRequests, set_ratio,
                                          mcKeySpace);
        auto pv = memcached::runLoadPoint(sv, nic_v, contested,
                                          mcRequests, set_ratio,
                                          mcKeySpace);
        paperCheck("ELISA p99 reduction vs VMCALL @contested load",
                   (1.0 - (double)pe.p99 / (double)pv.p99) * 100.0,
                   44.0, "%");
    }
    return 0;
}
