/**
 * @file
 * Shared scaffolding for the figure/table benches: a standard testbed
 * (machine + ELISA service + manager VM) and uniform report printing,
 * so every experiment output looks the same and always states the
 * cost-model calibration it ran under.
 */

#ifndef ELISA_BENCH_COMMON_HH
#define ELISA_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "base/units.hh"
#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "elisa/negotiation.hh"
#include "hv/hypervisor.hh"

namespace elisa::bench
{

/** A machine with an ELISA service and a manager VM, ready to go. */
struct Testbed
{
    explicit Testbed(std::uint64_t phys_bytes = 1536 * MiB,
                     const sim::CostModel &cost =
                         sim::CostModel::fromEnv())
        : hv(phys_bytes, cost), svc(hv),
          managerVm(hv.createVm("manager", 128 * MiB)),
          manager(managerVm, svc)
    {
    }

    /** Add a guest VM with the standard size. */
    hv::Vm &
    addGuest(const std::string &name, std::uint64_t ram = 32 * MiB)
    {
        return hv.createVm(name, ram);
    }

    hv::Hypervisor hv;
    core::ElisaService svc;
    hv::Vm &managerVm;
    core::ElisaManager manager;
};

/**
 * Attach or die: the bench equivalent of the old attach()+fatal_if
 * pair; the failure message carries the AttachResult's status and
 * reason instead of a bare "attach failed".
 */
inline core::Gate
mustAttach(core::ElisaGuest &guest, const core::ExportKey &key,
           core::ElisaManager &manager)
{
    core::AttachResult attached = guest.tryAttach(key, manager);
    fatal_if(!attached, "attach to '%s' failed (%s): %s",
             key.name().c_str(),
             core::attachStatusToString(attached.status()),
             attached.reason().c_str());
    return attached.take();
}

/** mustAttach, also handing back the capability behind the gate. */
inline std::pair<core::Gate, core::Capability>
mustAttachWithCapability(core::ElisaGuest &guest,
                         const core::ExportKey &key,
                         core::ElisaManager &manager)
{
    core::AttachResult attached = guest.tryAttach(key, manager);
    fatal_if(!attached, "attach to '%s' failed (%s): %s",
             key.name().c_str(),
             core::attachStatusToString(attached.status()),
             attached.reason().c_str());
    core::Capability cap = attached.capability();
    return {attached.take(), cap};
}

/**
 * Scale an iteration/packet/op count down when ELISA_BENCH_QUICK is
 * set in the environment (smoke runs, CI): one tenth of the full
 * count, floored at 2000 so percentiles stay meaningful.
 */
inline std::uint64_t
scaledCount(std::uint64_t full)
{
    if (std::getenv("ELISA_BENCH_QUICK") == nullptr)
        return full;
    const std::uint64_t reduced = full / 10;
    return reduced < 2000 ? std::min<std::uint64_t>(full, 2000)
                          : reduced;
}

/** Print the standard experiment banner. */
inline void
banner(const char *exp_id, const char *title)
{
    const char *rule = "==================================================="
                       "===========";
    std::printf("%s\n%s: %s\n%s\n%s\n", rule, exp_id, title,
                sim::CostModel::fromEnv().summary().c_str(), rule);
}

/**
 * Save a figure's data as CSV under bench_results/ (next to the
 * working directory), so the series can be re-plotted without
 * scraping stdout. Failures to write are reported but non-fatal.
 */
inline void
saveCsv(const TextTable &table, const char *exp_id)
{
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    const std::string path =
        std::string("bench_results/") + exp_id + ".csv";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("could not write %s", path.c_str());
        return;
    }
    const std::string csv = table.renderCsv();
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("  [csv] series saved to %s\n", path.c_str());
}

/**
 * Machine-readable bench result for the regression gate.
 *
 * Each bench records its headline scalars under stable key names and
 * writes them as `bench_results/BENCH_<name>.json` on destruction (or
 * an explicit save()). The JSON is deterministic — keys are sorted,
 * integral values print with no fraction, everything else as %.6g —
 * so identical runs produce byte-identical files and
 * tools/bench_check can diff them against the committed baselines in
 * bench_results/baselines/. A "quick" flag records whether
 * ELISA_BENCH_QUICK trimmed the iteration counts, so the gate never
 * silently compares a smoke run against a full-count baseline.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string bench_name)
        : benchName(std::move(bench_name)),
          quick(std::getenv("ELISA_BENCH_QUICK") != nullptr)
    {
    }

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    ~BenchReport() { save(); }

    /** Record one scalar; re-recording a key overwrites it. */
    void
    set(const std::string &key, double value)
    {
        values[key] = value;
    }

    /** Render the deterministic JSON document. */
    std::string
    json() const
    {
        std::string out = "{\n";
        out += "  \"bench\": \"" + benchName + "\",\n";
        out += std::string("  \"quick\": ") +
               (quick ? "true" : "false") + ",\n";
        out += "  \"metrics\": {";
        bool first = true;
        for (const auto &[key, value] : values) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    \"" + key + "\": " + formatValue(value);
        }
        out += values.empty() ? "}\n" : "\n  }\n";
        out += "}\n";
        return out;
    }

    /** Write bench_results/BENCH_<name>.json (idempotent). */
    void
    save()
    {
        if (saved)
            return;
        saved = true;
        std::error_code ec;
        std::filesystem::create_directories("bench_results", ec);
        const std::string path =
            "bench_results/BENCH_" + benchName + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            warn("could not write %s", path.c_str());
            return;
        }
        const std::string doc = json();
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::printf("  [json] bench report saved to %s\n", path.c_str());
    }

  private:
    static std::string
    formatValue(double value)
    {
        if (std::isfinite(value) && value == std::floor(value) &&
            std::fabs(value) < 9.007199254740992e15) {
            return detail::format("%lld", (long long)value);
        }
        return detail::format("%.6g", value);
    }

    std::string benchName;
    bool quick;
    bool saved = false;
    std::map<std::string, double> values;
};

/** Print one paper-vs-measured check line. */
inline void
paperCheck(const char *what, double measured, double paper,
           const char *unit)
{
    const double dev =
        paper == 0.0 ? 0.0 : (measured - paper) / paper * 100.0;
    std::printf("  [paper-check] %-44s measured=%.2f %s  paper=%.2f %s"
                "  (%+.1f%%)\n",
                what, measured, unit, paper, unit, dev);
}

} // namespace elisa::bench

#endif // ELISA_BENCH_COMMON_HH
