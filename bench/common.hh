/**
 * @file
 * Shared scaffolding for the figure/table benches: a standard testbed
 * (machine + ELISA service + manager VM) and uniform report printing,
 * so every experiment output looks the same and always states the
 * cost-model calibration it ran under.
 */

#ifndef ELISA_BENCH_COMMON_HH
#define ELISA_BENCH_COMMON_HH

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "base/units.hh"
#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "elisa/negotiation.hh"
#include "hv/hypervisor.hh"

namespace elisa::bench
{

/** A machine with an ELISA service and a manager VM, ready to go. */
struct Testbed
{
    explicit Testbed(std::uint64_t phys_bytes = 1536 * MiB,
                     const sim::CostModel &cost =
                         sim::CostModel::fromEnv())
        : hv(phys_bytes, cost), svc(hv),
          managerVm(hv.createVm("manager", 128 * MiB)),
          manager(managerVm, svc)
    {
    }

    /** Add a guest VM with the standard size. */
    hv::Vm &
    addGuest(const std::string &name, std::uint64_t ram = 32 * MiB)
    {
        return hv.createVm(name, ram);
    }

    hv::Hypervisor hv;
    core::ElisaService svc;
    hv::Vm &managerVm;
    core::ElisaManager manager;
};

/**
 * Attach or die: the bench equivalent of the old attach()+fatal_if
 * pair; the failure message carries the AttachResult's status and
 * reason instead of a bare "attach failed".
 */
inline core::Gate
mustAttach(core::ElisaGuest &guest, const std::string &name,
           core::ElisaManager &manager)
{
    core::AttachResult attached = guest.tryAttach(name, manager);
    fatal_if(!attached, "attach to '%s' failed (%s): %s", name.c_str(),
             core::attachStatusToString(attached.status()),
             attached.reason().c_str());
    return attached.take();
}

/**
 * Scale an iteration/packet/op count down when ELISA_BENCH_QUICK is
 * set in the environment (smoke runs, CI): one tenth of the full
 * count, floored at 2000 so percentiles stay meaningful.
 */
inline std::uint64_t
scaledCount(std::uint64_t full)
{
    if (std::getenv("ELISA_BENCH_QUICK") == nullptr)
        return full;
    const std::uint64_t reduced = full / 10;
    return reduced < 2000 ? std::min<std::uint64_t>(full, 2000)
                          : reduced;
}

/** Print the standard experiment banner. */
inline void
banner(const char *exp_id, const char *title)
{
    const char *rule = "==================================================="
                       "===========";
    std::printf("%s\n%s: %s\n%s\n%s\n", rule, exp_id, title,
                sim::CostModel::fromEnv().summary().c_str(), rule);
}

/**
 * Save a figure's data as CSV under bench_results/ (next to the
 * working directory), so the series can be re-plotted without
 * scraping stdout. Failures to write are reported but non-fatal.
 */
inline void
saveCsv(const TextTable &table, const char *exp_id)
{
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    const std::string path =
        std::string("bench_results/") + exp_id + ".csv";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("could not write %s", path.c_str());
        return;
    }
    const std::string csv = table.renderCsv();
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("  [csv] series saved to %s\n", path.c_str());
}

/** Print one paper-vs-measured check line. */
inline void
paperCheck(const char *what, double measured, double paper,
           const char *unit)
{
    const double dev =
        paper == 0.0 ? 0.0 : (measured - paper) / paper * 100.0;
    std::printf("  [paper-check] %-44s measured=%.2f %s  paper=%.2f %s"
                "  (%+.1f%%)\n",
                what, measured, unit, paper, unit, dev);
}

} // namespace elisa::bench

#endif // ELISA_BENCH_COMMON_HH
