/**
 * @file
 * Host-side microbenchmarks (google-benchmark) of the simulator's hot
 * paths: not a paper experiment, but the performance budget that
 * makes the figure harnesses (millions of simulated packets/ops per
 * point) tractable.
 *
 * Besides the microbenches, this binary runs a hundreds-of-VMs
 * multi-machine *scale scenario* through the sharded engine at one
 * and at --threads=N host threads, asserts both produce identical
 * simulated results, and reports sim-time/wall-time ratios into
 * BENCH_sim_perf.json for the tools/bench_check regression gate
 * (wall_* metrics are gated one-sided with a generous tolerance —
 * wall clocks are noisy; the simulated metrics are exact).
 *
 *   bench_sim_perf [--threads=N] [--vms=N] [google-benchmark flags]
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/units.hh"
#include "bench/common.hh"
#include "cpu/guest_view.hh"
#include "elisa/gate.hh"
#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "elisa/negotiation.hh"
#include "hv/hypervisor.hh"
#include "sim/engine.hh"

namespace
{

using namespace elisa;

/** Shared machine for all benchmarks (built once). */
struct Machine
{
    Machine()
        : hv(512 * MiB), svc(hv),
          managerVm(hv.createVm("manager", 64 * MiB)),
          guestVm(hv.createVm("guest", 64 * MiB)),
          manager(managerVm, svc), guest(guestVm, svc)
    {
        setQuiet(true);
        core::SharedFnTable fns;
        fns.push_back(
            [](core::SubCallCtx &) { return std::uint64_t{0}; });
        manager.exportObject(core::ExportKey("perf"), pageSize, std::move(fns));
        gate = guest.tryAttach(core::ExportKey("perf"), manager).take();
    }

    hv::Hypervisor hv;
    core::ElisaService svc;
    hv::Vm &managerVm;
    hv::Vm &guestVm;
    core::ElisaManager manager;
    core::ElisaGuest guest;
    core::Gate gate;
};

Machine &
machine()
{
    static Machine m;
    return m;
}

void
BM_EptHardwareWalk(benchmark::State &state)
{
    Machine &m = machine();
    const std::uint64_t eptp =
        m.guestVm.defaultEpt().eptp();
    for (auto _ : state) {
        auto t = ept::hardwareWalk(m.hv.memory(), eptp, 0x1000);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_EptHardwareWalk);

void
BM_TlbHitAccess(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    view.read<std::uint64_t>(0x1000);
    for (auto _ : state) {
        auto v = view.read<std::uint64_t>(0x1000);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_TlbHitAccess);

void
BM_GateCall(benchmark::State &state)
{
    Machine &m = machine();
    for (auto _ : state) {
        auto v = m.gate.call(0);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_GateCall);

/**
 * The same gate call with a Tracer installed: every call emits 8
 * span events (gate_call + 4 eptp_switch + stack_swap + payload +
 * return begin/end pairs) into the ring. The delta vs BM_GateCall is
 * the enabled-tracing cost; the disabled cost is asserted <= 2% in
 * test_trace.
 */
void
BM_GateCallTraced(benchmark::State &state)
{
    Machine &m = machine();
    sim::Tracer tracer(1u << 16);
    m.hv.setTracer(&tracer);
    for (auto _ : state) {
        auto v = m.gate.call(0);
        benchmark::DoNotOptimize(v);
    }
    m.hv.setTracer(nullptr);
}
BENCHMARK(BM_GateCallTraced);

void
BM_Vmcall(benchmark::State &state)
{
    Machine &m = machine();
    cpu::Vcpu &cpu = m.guestVm.vcpu(0);
    for (auto _ : state) {
        auto v = cpu.vmcall(hv::hcArgs(hv::Hc::Nop));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_Vmcall);

void
BM_GuestBulkCopy4K(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    std::vector<std::uint8_t> buf(4096, 0xab);
    for (auto _ : state) {
        view.writeBytes(0x10000, buf.data(), buf.size());
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_GuestBulkCopy4K);

/** Raw 8-byte read/write pair on one hot page (the L0 fast path). */
void
BM_GuestReadWrite(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    view.write<std::uint64_t>(0x2000, 1);
    for (auto _ : state) {
        auto v = view.read<std::uint64_t>(0x2000);
        view.write<std::uint64_t>(0x2000, v + 1);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_GuestReadWrite);

/**
 * Stride over more distinct pages than the direct-mapped Tlb has
 * slots, so every access misses both the L0 line and the shared Tlb
 * and pays the full simulated walk.
 */
void
BM_TlbMissAccess(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    // 2048 pages (8 MiB of the 64 MiB guest) > the 1024-entry Tlb.
    constexpr std::uint64_t pages = 2048;
    std::uint64_t page = 0;
    for (auto _ : state) {
        auto v = view.read<std::uint64_t>(0x100000 + page * pageSize);
        benchmark::DoNotOptimize(v);
        page = (page + 1) % pages;
    }
}
BENCHMARK(BM_TlbMissAccess);

/** Guest-to-guest 4 KiB copy (frame-to-frame, no bounce). */
void
BM_GuestCopyBytes4K(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    std::vector<std::uint8_t> buf(4096, 0xcd);
    view.writeBytes(0x20000, buf.data(), buf.size());
    for (auto _ : state) {
        view.copyBytes(0x30000, 0x20000, 4096);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_GuestCopyBytes4K);

/** Interned-id counter increment (the hot-path idiom). */
void
BM_StatIncInterned(benchmark::State &state)
{
    sim::StatSet stats;
    const sim::StatId id = stats.id("bench_counter");
    for (auto _ : state) {
        stats.inc(id);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_StatIncInterned);

/** String-keyed counter increment (the legacy slow path, for scale). */
void
BM_StatIncString(benchmark::State &state)
{
    sim::StatSet stats;
    stats.id("bench_counter");
    for (auto _ : state) {
        stats.inc("bench_counter");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_StatIncString);

// ---- hundreds-of-VMs scale scenario --------------------------------

/**
 * One simulated machine of the scale scenario: a hypervisor pinned to
 * its own engine shard, hosting single-vCPU guest VMs. Machines only
 * interact through cross-shard replication pings, so each may run on
 * its own host thread.
 */
struct ScaleMachine
{
    ScaleMachine(elisa::ShardId shard, unsigned vms)
        : hv((vms * 2 + 32) * MiB)
    {
        setQuiet(true);
        hv.setShard(shard);
        for (unsigned v = 0; v < vms; ++v)
            hv.createVm("vm" + std::to_string(v), 2 * MiB);
    }

    hv::Hypervisor hv;
};

/**
 * Per-VM actor: every step is one VMCALL round trip on the VM's vCPU;
 * every 16th step additionally sends a replication ping to the next
 * machine, arriving one network propagation later.
 */
class VmWorker : public sim::Actor
{
  public:
    VmWorker(sim::Engine &engine, cpu::Vcpu &vcpu, elisa::ShardId peer,
             std::uint64_t *peer_pings, std::uint64_t steps)
        : engine(engine), vcpu(vcpu), peer(peer),
          peerPings(peer_pings), total(steps)
    {
    }

    SimNs actorNow() const override { return vcpu.clock().now(); }

    bool
    step() override
    {
        const SimNs t = vcpu.clock().now();
        vcpu.vmcall(hv::hcArgs(hv::Hc::Nop));
        if (++count % 16 == 0) {
            engine.post(peer,
                        t + vcpu.costModel().netPropagationNs,
                        [this](SimNs) { ++*peerPings; });
        }
        return count < total;
    }

  private:
    sim::Engine &engine;
    cpu::Vcpu &vcpu;
    elisa::ShardId peer;
    std::uint64_t *peerPings;
    std::uint64_t total;
    std::uint64_t count = 0;
};

/** Everything one scale run observes (wall time aside, all of it
 *  must be identical for any thread count). */
struct ScaleResult
{
    std::uint64_t steps = 0;
    std::uint64_t delivered = 0;
    std::uint64_t pings = 0;
    SimNs simNs = 0;          ///< slowest vCPU's final clock
    std::uint64_t clockSum = 0; ///< sum of all final vCPU clocks
    double wallMs = 0.0;
};

ScaleResult
runScale(unsigned threads, unsigned machine_count, unsigned vms_per,
         std::uint64_t steps_per)
{
    std::vector<std::unique_ptr<ScaleMachine>> machines;
    for (unsigned m = 0; m < machine_count; ++m)
        machines.push_back(
            std::make_unique<ScaleMachine>(m, vms_per));

    sim::Engine engine;
    engine.setThreads(threads);
    // The machines of this scenario interact only through the
    // inter-machine network, so its propagation delay — not the
    // global worst-case transport bound — is the scenario lookahead.
    engine.setLookahead(sim::CostModel::fromEnv().netPropagationNs);

    std::vector<std::uint64_t> pings(machine_count, 0);
    std::vector<std::unique_ptr<VmWorker>> workers;
    for (unsigned m = 0; m < machine_count; ++m) {
        const elisa::ShardId peer = (m + 1) % machine_count;
        for (unsigned v = 0; v < vms_per; ++v) {
            workers.push_back(std::make_unique<VmWorker>(
                engine, machines[m]->hv.vm(v).vcpu(0), peer,
                &pings[peer], steps_per));
            engine.add(workers.back().get(),
                       machines[m]->hv.shard());
        }
    }

    ScaleResult result;
    const auto wall0 = std::chrono::steady_clock::now();
    result.steps = engine.run();
    result.wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    result.delivered = engine.delivered();
    for (std::uint64_t p : pings)
        result.pings += p;
    for (auto &machine : machines) {
        for (unsigned v = 0; v < vms_per; ++v) {
            const SimNs now =
                machine->hv.vm(v).vcpu(0).clock().now();
            result.clockSum += now;
            if (now > result.simNs)
                result.simNs = now;
        }
    }
    return result;
}

void
runScaleScenario(unsigned threads, unsigned vms)
{
    constexpr unsigned machine_count = 8;
    const unsigned vms_per =
        vms < machine_count ? 1 : vms / machine_count;
    // Multiple of 16 so the ping fraction is exact at any scale.
    const std::uint64_t steps_per =
        (bench::scaledCount(3200) / 16) * 16;
    const unsigned total_vms = vms_per * machine_count;

    std::printf("\nscale scenario: %u machines x %u VMs, %llu "
                "VMCALL-steps each\n",
                machine_count, vms_per,
                (unsigned long long)steps_per);

    const ScaleResult serial =
        runScale(1, machine_count, vms_per, steps_per);
    const ScaleResult parallel =
        runScale(threads, machine_count, vms_per, steps_per);

    // The whole point of the conservative protocol: the parallel run
    // is the same simulation, bit for bit.
    fatal_if(serial.steps != parallel.steps ||
                 serial.delivered != parallel.delivered ||
                 serial.pings != parallel.pings ||
                 serial.simNs != parallel.simNs ||
                 serial.clockSum != parallel.clockSum,
             "scale scenario diverged between 1 and %u threads",
             threads);

    const double ratio_t1 =
        (double)serial.simNs / (serial.wallMs * 1e6);
    const double ratio_tn =
        (double)parallel.simNs / (parallel.wallMs * 1e6);
    std::printf("  threads=1: %8.2f ms wall, sim/wall ratio %.3f\n",
                serial.wallMs, ratio_t1);
    std::printf("  threads=%u: %8.2f ms wall, sim/wall ratio %.3f "
                "(speedup %.2fx)\n",
                threads, parallel.wallMs, ratio_tn,
                serial.wallMs / parallel.wallMs);
    std::printf("  %u VMs, %llu steps, %llu cross-shard pings "
                "delivered\n",
                total_vms, (unsigned long long)serial.steps,
                (unsigned long long)serial.delivered);

    bench::BenchReport report("sim_perf");
    // Simulated metrics: exact, gated two-sided by bench_check.
    report.set("scale_ns_per_op",
               (double)serial.simNs / (double)steps_per);
    report.set("scale_events_per_kop",
               (double)serial.delivered * 1000.0 /
                   (double)serial.steps);
    // Wall metrics: noisy, gated one-sided (see --wall-tolerance).
    report.set("wall_sim_ratio_t1", ratio_t1);
    report.set("wall_sim_ratio_t4", ratio_tn);
    report.set("wall_speedup_t4",
               serial.wallMs / parallel.wallMs);
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = 4;
    unsigned vms = 256;

    // Strip our flags; everything else goes to google-benchmark.
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            threads = (unsigned)std::strtoul(argv[i] + 10, nullptr, 10);
        } else if (std::strncmp(argv[i], "--vms=", 6) == 0) {
            vms = (unsigned)std::strtoul(argv[i] + 6, nullptr, 10);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    fatal_if(threads == 0 || vms == 0, "--threads/--vms must be >= 1");

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    runScaleScenario(threads, vms);
    benchmark::Shutdown();
    return 0;
}
