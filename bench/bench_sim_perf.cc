/**
 * @file
 * Host-side microbenchmarks (google-benchmark) of the simulator's hot
 * paths: not a paper experiment, but the performance budget that
 * makes the figure harnesses (millions of simulated packets/ops per
 * point) tractable.
 */

#include <benchmark/benchmark.h>

#include "base/units.hh"
#include "cpu/guest_view.hh"
#include "elisa/gate.hh"
#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "elisa/negotiation.hh"
#include "hv/hypervisor.hh"

namespace
{

using namespace elisa;

/** Shared machine for all benchmarks (built once). */
struct Machine
{
    Machine()
        : hv(512 * MiB), svc(hv),
          managerVm(hv.createVm("manager", 64 * MiB)),
          guestVm(hv.createVm("guest", 64 * MiB)),
          manager(managerVm, svc), guest(guestVm, svc)
    {
        setQuiet(true);
        core::SharedFnTable fns;
        fns.push_back(
            [](core::SubCallCtx &) { return std::uint64_t{0}; });
        manager.exportObject("perf", pageSize, std::move(fns));
        gate = guest.tryAttach("perf", manager).take();
    }

    hv::Hypervisor hv;
    core::ElisaService svc;
    hv::Vm &managerVm;
    hv::Vm &guestVm;
    core::ElisaManager manager;
    core::ElisaGuest guest;
    core::Gate gate;
};

Machine &
machine()
{
    static Machine m;
    return m;
}

void
BM_EptHardwareWalk(benchmark::State &state)
{
    Machine &m = machine();
    const std::uint64_t eptp =
        m.guestVm.defaultEpt().eptp();
    for (auto _ : state) {
        auto t = ept::hardwareWalk(m.hv.memory(), eptp, 0x1000);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_EptHardwareWalk);

void
BM_TlbHitAccess(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    view.read<std::uint64_t>(0x1000);
    for (auto _ : state) {
        auto v = view.read<std::uint64_t>(0x1000);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_TlbHitAccess);

void
BM_GateCall(benchmark::State &state)
{
    Machine &m = machine();
    for (auto _ : state) {
        auto v = m.gate.call(0);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_GateCall);

/**
 * The same gate call with a Tracer installed: every call emits 8
 * span events (gate_call + 4 eptp_switch + stack_swap + payload +
 * return begin/end pairs) into the ring. The delta vs BM_GateCall is
 * the enabled-tracing cost; the disabled cost is asserted <= 2% in
 * test_trace.
 */
void
BM_GateCallTraced(benchmark::State &state)
{
    Machine &m = machine();
    sim::Tracer tracer(1u << 16);
    m.hv.setTracer(&tracer);
    for (auto _ : state) {
        auto v = m.gate.call(0);
        benchmark::DoNotOptimize(v);
    }
    m.hv.setTracer(nullptr);
}
BENCHMARK(BM_GateCallTraced);

void
BM_Vmcall(benchmark::State &state)
{
    Machine &m = machine();
    cpu::Vcpu &cpu = m.guestVm.vcpu(0);
    for (auto _ : state) {
        auto v = cpu.vmcall(hv::hcArgs(hv::Hc::Nop));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_Vmcall);

void
BM_GuestBulkCopy4K(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    std::vector<std::uint8_t> buf(4096, 0xab);
    for (auto _ : state) {
        view.writeBytes(0x10000, buf.data(), buf.size());
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_GuestBulkCopy4K);

/** Raw 8-byte read/write pair on one hot page (the L0 fast path). */
void
BM_GuestReadWrite(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    view.write<std::uint64_t>(0x2000, 1);
    for (auto _ : state) {
        auto v = view.read<std::uint64_t>(0x2000);
        view.write<std::uint64_t>(0x2000, v + 1);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_GuestReadWrite);

/**
 * Stride over more distinct pages than the direct-mapped Tlb has
 * slots, so every access misses both the L0 line and the shared Tlb
 * and pays the full simulated walk.
 */
void
BM_TlbMissAccess(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    // 2048 pages (8 MiB of the 64 MiB guest) > the 1024-entry Tlb.
    constexpr std::uint64_t pages = 2048;
    std::uint64_t page = 0;
    for (auto _ : state) {
        auto v = view.read<std::uint64_t>(0x100000 + page * pageSize);
        benchmark::DoNotOptimize(v);
        page = (page + 1) % pages;
    }
}
BENCHMARK(BM_TlbMissAccess);

/** Guest-to-guest 4 KiB copy (frame-to-frame, no bounce). */
void
BM_GuestCopyBytes4K(benchmark::State &state)
{
    Machine &m = machine();
    cpu::GuestView view(m.guestVm.vcpu(0));
    std::vector<std::uint8_t> buf(4096, 0xcd);
    view.writeBytes(0x20000, buf.data(), buf.size());
    for (auto _ : state) {
        view.copyBytes(0x30000, 0x20000, 4096);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_GuestCopyBytes4K);

/** Interned-id counter increment (the hot-path idiom). */
void
BM_StatIncInterned(benchmark::State &state)
{
    sim::StatSet stats;
    const sim::StatId id = stats.id("bench_counter");
    for (auto _ : state) {
        stats.inc(id);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_StatIncInterned);

/** String-keyed counter increment (the legacy slow path, for scale). */
void
BM_StatIncString(benchmark::State &state)
{
    sim::StatSet stats;
    stats.id("bench_counter");
    for (auto _ : state) {
        stats.inc("bench_counter");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_StatIncString);

} // namespace

BENCHMARK_MAIN();
