/**
 * @file
 * Experiment C1 — sharded KVS cluster: p99 latency vs achieved
 * throughput for the three sharing schemes (ELISA sub-EPT gates,
 * VMCALL hypercalls, direct ivshmem mapping), cluster-scale.
 *
 * Three server machines behind a seeded consistent-hash ring serve a
 * zipfian (s = 0.99) open-loop load from their log-structured shm
 * stores; each PUT replicates synchronously to a replica store before
 * it acks. The per-op scheme cost — two gate transitions vs two
 * hypercalls vs none — multiplies across the replication fan-out, so
 * the cluster curves separate harder than the single-table ones (F1).
 */

#include "bench/common.hh"
#include "kvs/cluster.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

kvs::KvsCluster
makeCluster(kvs::ClusterScheme scheme)
{
    kvs::ClusterConfig cfg;
    cfg.servers = 3;
    cfg.scheme = scheme;
    cfg.buckets = 2048;
    cfg.logSlots = 32768;
    return kvs::KvsCluster(cfg);
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("C1", "sharded KVS cluster: p99 latency vs throughput");

    constexpr std::uint64_t key_space = 4000;
    const std::uint64_t requests = scaledCount(6000);
    const std::vector<double> loads_rps = {100e3, 300e3, 500e3,
                                           700e3, 900e3};

    TextTable table;
    table.header({"Scheme", "Offered [Krps]", "Achieved [Krps]",
                  "p50 [us]", "p99 [us]", "Remote [%]"});

    BenchReport report("kvs_cluster");
    double elisa_p50 = 0, vmcall_p50 = 0;
    for (const auto scheme :
         {kvs::ClusterScheme::Elisa, kvs::ClusterScheme::Vmcall,
          kvs::ClusterScheme::Direct}) {
        kvs::KvsCluster cluster = makeCluster(scheme);
        cluster.prepopulate(key_space);
        bool first_point = true;
        for (const double rps : loads_rps) {
            const kvs::ClusterLoadResult r = cluster.runLoad(
                /*clients_per_server=*/1,
                /*offered_rps_per_client=*/rps,
                /*requests_per_client=*/requests,
                /*put_ratio=*/0.1, key_space, /*zipf_s=*/0.99,
                /*seed=*/17);
            fatal_if(r.corrupt != 0 || r.failed != 0,
                     "cluster served wrong data under load");
            const double total_offered =
                rps * cluster.serverCount() / 1e3;
            table.row({clusterSchemeToString(scheme),
                       detail::format("%.0f", total_offered),
                       detail::format("%.1f", r.achievedRps / 1e3),
                       detail::format("%.2f",
                                      (double)r.latency.percentile(0.5) /
                                          1e3),
                       detail::format("%.2f",
                                      (double)r.latency.percentile(0.99) /
                                          1e3),
                       detail::format("%.1f",
                                      100.0 * (double)r.remote /
                                          (double)r.ops)});
            if (first_point) {
                // Uncontested-load metrics are count-stable: the p50
                // is the deterministic per-op cost stack, the remote
                // fraction is the ring split — both safe to gate.
                first_point = false;
                const std::string prefix =
                    scheme == kvs::ClusterScheme::Elisa ? "elisa"
                    : scheme == kvs::ClusterScheme::Vmcall
                        ? "vmcall"
                        : "direct";
                const double p50 =
                    (double)r.latency.percentile(0.5);
                report.set(prefix + "_uncontested_p50_ns", p50);
                report.set(prefix + "_remote_frac",
                           (double)r.remote / (double)r.ops);
                if (scheme == kvs::ClusterScheme::Elisa)
                    elisa_p50 = p50;
                if (scheme == kvs::ClusterScheme::Vmcall)
                    vmcall_p50 = p50;
            }
        }
    }
    report.set("vmcall_over_elisa_uncontested_p50",
               vmcall_p50 / elisa_p50);

    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "C1_kvs_cluster");
    // One KVS op crosses its scheme's boundary once, so the cluster
    // p50 gap must reproduce the calibrated RTT gap (699 - 196 ns).
    paperCheck("cluster p50 gap vs RTT gap (VMCALL-ELISA)",
               vmcall_p50 - elisa_p50, 503.0, "ns");
    return 0;
}
