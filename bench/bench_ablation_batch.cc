/**
 * @file
 * Experiment A3 — ablation: amortizing the transition by batching.
 *
 * Both the 196 ns gate call and the 699 ns VMCALL are per-crossing
 * costs; batching N operations per crossing amortizes them. This
 * ablation sweeps the batch size for a KVS-GET-class operation
 * (590 ns of core work per op) and shows (a) ELISA's advantage is
 * largest at batch 1 — the regime the paper's per-packet/per-op use
 * cases live in — and (b) with deep batching the schemes converge,
 * which is why exit cost only matters for fine-grained sharing.
 */

#include <cstdio>
#include <vector>

#include "bench/common.hh"
#include "elisa/gate.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

const std::uint64_t opsPerPoint = scaledCount(200000);

} // namespace

int
main()
{
    setQuiet(true);
    banner("A3", "ablation: batching the crossing (gate call vs "
                 "VMCALL)");

    Testbed bed;
    hv::Vm &vm = bed.addGuest("guest", 64 * MiB);
    core::ElisaGuest guest(vm, bed.svc);
    const sim::CostModel &cost = bed.hv.cost();

    // The shared function: one GET-class unit of work on the object.
    core::SharedFnTable fns;
    fns.push_back([&cost](core::SubCallCtx &ctx) {
        ctx.view.vcpu().clock().advance(cost.kvsGetCoreNs);
        return ctx.view.read<std::uint64_t>(ctx.obj);
    });
    fatal_if(!bed.manager.exportObject(core::ExportKey("batch"), pageSize,
                                       std::move(fns)),
             "export failed");
    core::Gate gate = mustAttach(guest, core::ExportKey("batch"), bed.manager);
    cpu::Vcpu &cpu = guest.vcpu();

    // Host-side handler for the batched VMCALL equivalent.
    const std::uint64_t hc_batch = bed.hv.allocServiceNr();
    bed.hv.registerHypercall(
        hc_batch, [&cost](cpu::Vcpu &vcpu,
                          const cpu::HypercallArgs &args) {
            vcpu.clock().advance(args.arg0 * cost.kvsGetCoreNs);
            return std::uint64_t{0};
        });

    TextTable table;
    table.header({"Batch", "ELISA [Mops/s]", "VMCALL [Mops/s]",
                  "ELISA gain", "crossing ns/op (E vs V)"});
    for (std::uint64_t batch : {1ull, 2ull, 4ull, 8ull, 16ull, 32ull,
                                64ull}) {
        std::vector<core::Gate::BatchEntry> entries(batch);

        // ELISA batched.
        gate.callBatch(entries); // warm
        SimNs t0 = cpu.clock().now();
        for (std::uint64_t i = 0; i < opsPerPoint / batch; ++i)
            gate.callBatch(entries);
        SimNs elapsed = cpu.clock().now() - t0;
        const double elisa_mops =
            (double)((opsPerPoint / batch) * batch) * 1e3 /
            (double)elapsed;

        // VMCALL batched.
        t0 = cpu.clock().now();
        for (std::uint64_t i = 0; i < opsPerPoint / batch; ++i) {
            cpu.vmcall(hv::hcArgs(static_cast<hv::Hc>(hc_batch),
                                  batch));
        }
        elapsed = cpu.clock().now() - t0;
        const double vmcall_mops =
            (double)((opsPerPoint / batch) * batch) * 1e3 /
            (double)elapsed;

        table.row({std::to_string(batch),
                   detail::format("%.2f", elisa_mops),
                   detail::format("%.2f", vmcall_mops),
                   detail::format("%+.0f%%",
                                  (elisa_mops - vmcall_mops) /
                                      vmcall_mops * 100),
                   detail::format("%.0f vs %.0f",
                                  (double)cost.elisaRttNs() /
                                      (double)batch,
                                  (double)cost.vmcallRttNs() /
                                      (double)batch)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("  fine-grained sharing (batch 1) is where the exit "
                "cost decides the outcome —\n"
                "  exactly the regime of per-packet I/O and per-op "
                "KVS access in F1-F5.\n");
    return 0;
}
