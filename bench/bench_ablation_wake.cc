/**
 * @file
 * Experiment A4 — ablation: polling vs interrupt-driven server
 * wake-up (memcached over the ELISA datapath).
 *
 * The paper's datapaths poll; a deployment may prefer to halt the
 * server vCPU when idle and wake it by doorbell. This quantifies the
 * trade: at low load, interrupts add ~one IPI latency to the median
 * but release almost the whole core; near saturation the two modes
 * converge (the server never sleeps).
 */

#include <cstdio>

#include "bench/common.hh"
#include "memcached/loadgen.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

} // namespace

int
main()
{
    setQuiet(true);
    banner("A4", "ablation: polling vs doorbell wake-up (memcached "
                 "over ELISA)");

    Testbed bed(2 * GiB);
    hv::Vm &vm_poll = bed.addGuest("mc-poll", 64 * MiB);
    core::ElisaGuest guest_poll(vm_poll, bed.svc);
    net::ElisaPath path_poll(bed.hv, bed.manager, guest_poll,
                             "mc-wake-poll");
    memcached::Server server_poll(bed.hv, vm_poll, path_poll);

    hv::Vm &vm_irq = bed.addGuest("mc-irq", 64 * MiB);
    core::ElisaGuest guest_irq(vm_irq, bed.svc);
    net::ElisaPath path_irq(bed.hv, bed.manager, guest_irq,
                            "mc-wake-irq");
    memcached::Server server_irq(bed.hv, vm_irq, path_irq);

    net::PhysNic nic_poll(bed.hv.cost()), nic_irq(bed.hv.cost());

    TextTable table;
    table.header({"Offered [Krps]", "poll p50 [us]", "irq p50 [us]",
                  "poll CPU", "irq CPU"});
    for (double krps : {10.0, 50.0, 100.0, 200.0, 300.0}) {
        auto poll = memcached::runLoadPoint(
            server_poll, nic_poll, krps * 1e3, 8000, 0.1, 1024, 7,
            memcached::WakeMode::Polling);
        auto irq = memcached::runLoadPoint(
            server_irq, nic_irq, krps * 1e3, 8000, 0.1, 1024, 7,
            memcached::WakeMode::Interrupt);
        table.row({detail::format("%.0f", krps),
                   detail::format("%.1f", (double)poll.p50 / 1e3),
                   detail::format("%.1f", (double)irq.p50 / 1e3),
                   detail::format("%.0f%%",
                                  poll.cpuUtilization * 100),
                   detail::format("%.0f%%",
                                  irq.cpuUtilization * 100)});
    }
    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "A4_wake_mode");

    std::printf("  interrupts trade ~%.1f us of median latency at "
                "low load for an almost-idle\n"
                "  core; the gap closes as load keeps the server "
                "awake.\n",
                (double)bed.hv.cost().ipiDeliverNs / 1e3);
    return 0;
}
