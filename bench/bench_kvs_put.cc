/**
 * @file
 * Experiment F2 — in-memory KVS PUT throughput vs number of VMs
 * (paper: ELISA +54 % over VMCALL; bucket-lock writes make PUT
 * heavier than GET across all schemes).
 */

#include "bench/kvs_common.hh"

int
main()
{
    using namespace elisa;
    using namespace elisa::bench;

    setQuiet(true);
    banner("F2", "KVS PUT throughput vs number of VMs");
    const KvsPoint p = runKvsFigure(kvs::Mix::PutOnly, "F2_kvs_put");
    paperCheck("ELISA PUT gain over VMCALL @8 VMs",
               (p.elisa - p.vmcall) / p.vmcall * 100.0, 54.0, "%");
    return 0;
}
