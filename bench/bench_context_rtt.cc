/**
 * @file
 * Experiment T2 — the headline table: context round-trip time of the
 * ELISA gate call vs a VMCALL-based host interposition (paper: 196 ns
 * vs 699 ns, "3.5 times smaller").
 */

#include <cstdio>

#include "bench/common.hh"
#include "elisa/gate.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

const std::uint64_t iterations = scaledCount(1000000);

} // namespace

int
main()
{
    setQuiet(true);
    banner("T2", "context round-trip time (ELISA vs VMCALL)");

    Testbed bed;
    hv::Vm &guest_vm = bed.addGuest("guest");
    core::ElisaGuest guest(guest_vm, bed.svc);

    // Export a no-op function: the pure context round trip.
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &) { return std::uint64_t{0}; });
    auto exported = bed.manager.exportObject("noop", pageSize,
                                             std::move(fns));
    fatal_if(!exported, "export failed");
    core::Gate gate = mustAttach(guest, "noop", bed.manager);

    cpu::Vcpu &cpu = guest.vcpu();

    // ELISA gate call.
    gate.call(0); // warm the translation caches
    SimNs t0 = cpu.clock().now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        gate.call(0);
    const double elisa_ns =
        (double)(cpu.clock().now() - t0) / (double)iterations;

    // VMCALL (Nop hypercall).
    t0 = cpu.clock().now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        cpu.vmcall(hv::hcArgs(hv::Hc::Nop));
    const double vmcall_ns =
        (double)(cpu.clock().now() - t0) / (double)iterations;

    TextTable table;
    table.header({"Description", "Time [ns]", "Paper [ns]"});
    table.row({"ELISA", detail::format("%.0f", elisa_ns), "196"});
    table.row({"VMCALL", detail::format("%.0f", vmcall_ns), "699"});
    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "T2_context_rtt");

    paperCheck("ELISA context RTT", elisa_ns, 196.0, "ns");
    paperCheck("VMCALL context RTT", vmcall_ns, 699.0, "ns");
    paperCheck("VMCALL/ELISA ratio", vmcall_ns / elisa_ns, 3.5, "x");

    BenchReport report("context_rtt");
    report.set("elisa_rtt_ns", elisa_ns);
    report.set("vmcall_rtt_ns", vmcall_ns);
    report.set("vmcall_over_elisa_ratio", vmcall_ns / elisa_ns);
    return 0;
}
