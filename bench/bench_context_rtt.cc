/**
 * @file
 * Experiment T2 — the headline table: context round-trip time of the
 * ELISA gate call vs a VMCALL-based host interposition (paper: 196 ns
 * vs 699 ns, "3.5 times smaller").
 */

#include <cstdio>

#include "bench/common.hh"
#include "elisa/gate.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

const std::uint64_t iterations = scaledCount(1000000);

} // namespace

int
main()
{
    setQuiet(true);
    banner("T2", "context round-trip time (ELISA vs VMCALL)");

    Testbed bed;
    hv::Vm &guest_vm = bed.addGuest("guest");
    core::ElisaGuest guest(guest_vm, bed.svc);

    // Export a no-op function: the pure context round trip.
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &) { return std::uint64_t{0}; });
    auto exported = bed.manager.exportObject(core::ExportKey("noop"), pageSize,
                                             std::move(fns));
    fatal_if(!exported, "export failed");
    auto [gate, capability] =
        mustAttachWithCapability(guest, core::ExportKey("noop"),
                                 bed.manager);

    cpu::Vcpu &cpu = guest.vcpu();

    // ELISA gate call.
    gate.call(0); // warm the translation caches
    SimNs t0 = cpu.clock().now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        gate.call(0);
    const double elisa_ns =
        (double)(cpu.clock().now() - t0) / (double)iterations;

    // VMCALL (Nop hypercall).
    t0 = cpu.clock().now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        cpu.vmcall(hv::hcArgs(hv::Hc::Nop));
    const double vmcall_ns =
        (double)(cpu.clock().now() - t0) / (double)iterations;

    TextTable table;
    table.header({"Description", "Time [ns]", "Paper [ns]"});
    table.row({"ELISA", detail::format("%.0f", elisa_ns), "196"});
    table.row({"VMCALL", detail::format("%.0f", vmcall_ns), "699"});
    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "T2_context_rtt");

    paperCheck("ELISA context RTT", elisa_ns, 196.0, "ns");
    paperCheck("VMCALL context RTT", vmcall_ns, 699.0, "ns");
    paperCheck("VMCALL/ELISA ratio", vmcall_ns / elisa_ns, 3.5, "x");

    // Delegated gate: a second guest redeems a capability delegated by
    // the first — without a manager round trip — and its per-call cost
    // must match the directly attached gate exactly (the fast path is
    // the same VMFUNC sequence; delegation adds no exits).
    hv::Vm &peer_vm = bed.addGuest("peer");
    core::ElisaGuest peer(peer_vm, bed.svc);
    auto child = capability.delegate(peer_vm.id());
    fatal_if(!child, "delegation failed");
    core::AttachResult redeemed = peer.redeem(*child);
    fatal_if(!redeemed.ok(), "redeem failed: %s",
             redeemed.reason().c_str());
    core::Gate delegated = redeemed.take();
    cpu::Vcpu &peer_cpu = peer.vcpu();

    delegated.call(0); // warm the translation caches
    t0 = peer_cpu.clock().now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        delegated.call(0);
    const double delegated_ns =
        (double)(peer_cpu.clock().now() - t0) / (double)iterations;

    paperCheck("Delegated-gate context RTT", delegated_ns, 196.0, "ns");
    std::printf("  delegated/direct ratio: %.4f (a redeemed "
                "capability rides the identical fast path)\n",
                delegated_ns / elisa_ns);

    BenchReport report("context_rtt");
    report.set("elisa_rtt_ns", elisa_ns);
    report.set("vmcall_rtt_ns", vmcall_ns);
    report.set("vmcall_over_elisa_ratio", vmcall_ns / elisa_ns);
    report.set("delegated_rtt_ns", delegated_ns);
    report.set("delegated_over_direct_ratio", delegated_ns / elisa_ns);
    return 0;
}
