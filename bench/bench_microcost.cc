/**
 * @file
 * Experiment T3 — §6.1-style microbenchmark: the cost of every
 * transition primitive underlying the schemes (VMFUNC EPTP switch,
 * gate code segments, VM exit/entry, VMCALL and CPUID round trips,
 * EPT walk and TLB-hit access).
 */

#include <cstdio>

#include "bench/common.hh"
#include "cpu/guest_view.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

const std::uint64_t iterations = scaledCount(1000000);

/** Average simulated ns of @p op over the iteration count. */
template <typename Fn>
double
avgNs(cpu::Vcpu &cpu, Fn &&op)
{
    const SimNs t0 = cpu.clock().now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        op();
    return (double)(cpu.clock().now() - t0) / (double)iterations;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("T3", "transition-primitive microcosts");

    Testbed bed;
    hv::Vm &vm = bed.addGuest("guest");
    cpu::Vcpu &cpu = vm.vcpu(0);
    const sim::CostModel &cost = bed.hv.cost();

    // A second EPT context to ping-pong VMFUNC against.
    ept::Ept other(bed.hv.memory(), bed.hv.allocator());
    auto frame = bed.hv.allocator().alloc();
    other.map(0, *frame, ept::Perms::RWX);
    auto idx = bed.hv.installEptp(cpu, other.eptp());
    fatal_if(!idx, "EPTP install failed");

    const double vmfunc_ns = avgNs(cpu, [&] {
        cpu.vmfunc(0, *idx);
        cpu.vmfunc(0, 0);
    }) / 2.0;

    const double vmcall_ns =
        avgNs(cpu, [&] { cpu.vmcall(hv::hcArgs(hv::Hc::Nop)); });

    const double cpuid_ns = avgNs(cpu, [&] { cpu.cpuid(0); });

    cpu::GuestView view(cpu);
    view.read<std::uint64_t>(0x1000); // prime the TLB
    const double hit_ns =
        avgNs(cpu, [&] { view.read<std::uint64_t>(0x1000); });

    // TLB-miss walk: touch a fresh page each time (flush per access).
    const double walk_ns = avgNs(cpu, [&] {
        cpu.tlb().flushAll();
        view.read<std::uint64_t>(0x2000);
    });

    TextTable table;
    table.header({"Primitive", "Time [ns]", "Model parameter"});
    auto row = [&table](const char *name, double ns,
                        const std::string &param) {
        table.row({name, detail::format("%.1f", ns), param});
    };
    row("VMFUNC EPTP switch (no exit)", vmfunc_ns,
        detail::format("vmfuncNs=%llu",
                       (unsigned long long)cost.vmfuncNs));
    row("gate code segment", (double)cost.gateCodeNs,
        detail::format("gateCodeNs=%llu",
                       (unsigned long long)cost.gateCodeNs));
    row("VMCALL round trip", vmcall_ns,
        detail::format("exit %llu + dispatch %llu + entry %llu",
                       (unsigned long long)cost.vmexitNs,
                       (unsigned long long)cost.hypercallDispatchNs,
                       (unsigned long long)cost.vmentryNs));
    row("CPUID forced exit round trip", cpuid_ns,
        detail::format("exit %llu + handle %llu + entry %llu",
                       (unsigned long long)cost.vmexitNs,
                       (unsigned long long)cost.cpuidHandleNs,
                       (unsigned long long)cost.vmentryNs));
    row("8B guest access, TLB hit", hit_ns,
        detail::format("memAccessNs=%llu",
                       (unsigned long long)cost.memAccessNs));
    row("8B guest access, EPT walk", walk_ns,
        detail::format("eptWalkNs=%llu",
                       (unsigned long long)cost.eptWalkNs));
    std::printf("%s\n", table.render().c_str());

    paperCheck("VMCALL RTT vs VMFUNC switch ratio",
               vmcall_ns / vmfunc_ns, 699.0 / 42.0, "x");
    std::printf("  note: 4 VMFUNC + 2 gate segments = %.0f ns, the "
                "ELISA RTT of T2.\n",
                4 * vmfunc_ns + 2.0 * (double)cost.gateCodeNs);

    BenchReport report("microcost");
    report.set("vmfunc_ns", vmfunc_ns);
    report.set("gate_code_ns", (double)cost.gateCodeNs);
    report.set("vmcall_rtt_ns", vmcall_ns);
    report.set("cpuid_rtt_ns", cpuid_ns);
    report.set("tlb_hit_ns", hit_ns);
    report.set("ept_walk_ns", walk_ns);

    bed.hv.allocator().free(*frame);
    return 0;
}
