/**
 * @file
 * Experiment A2 — ablation: EPTP-tagged TLB vs flush-on-switch.
 *
 * Part of why VMFUNC is cheap is microarchitectural: translations are
 * tagged with the EPTP, so an EPTP switch does not flush the TLB.
 * This bench emulates an untagged design by flushing the vCPU's
 * translation cache around every gate call and sweeps the per-call
 * working set, showing how the re-walk cost would erode the 196 ns
 * advantage.
 */

#include <cstdio>

#include "bench/common.hh"
#include "elisa/gate.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

const std::uint64_t iterations = scaledCount(50000);

} // namespace

int
main()
{
    setQuiet(true);
    banner("A2", "ablation: tagged TLB vs flush-on-switch");

    Testbed bed;
    hv::Vm &vm = bed.addGuest("guest", 64 * MiB);
    core::ElisaGuest guest(vm, bed.svc);

    // Shared function: touch arg0 pages of the object.
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &ctx) {
        for (std::uint64_t p = 0; p < ctx.arg0; ++p)
            ctx.view.read<std::uint64_t>(ctx.obj + p * pageSize);
        return std::uint64_t{0};
    });
    const std::uint64_t obj_pages = 64;
    fatal_if(!bed.manager.exportObject(core::ExportKey("tlb"), obj_pages * pageSize,
                                       std::move(fns)),
             "export failed");
    core::Gate gate = mustAttach(guest, core::ExportKey("tlb"), bed.manager);
    cpu::Vcpu &cpu = guest.vcpu();

    TextTable table;
    table.header({"Pages/call", "tagged [ns/call]",
                  "flush-on-switch [ns/call]", "penalty"});
    for (std::uint64_t pages : {0ull, 1ull, 4ull, 16ull, 64ull}) {
        gate.call(0, pages); // warm
        SimNs t0 = cpu.clock().now();
        for (std::uint64_t i = 0; i < iterations; ++i)
            gate.call(0, pages);
        const double tagged =
            (double)(cpu.clock().now() - t0) / (double)iterations;

        t0 = cpu.clock().now();
        for (std::uint64_t i = 0; i < iterations; ++i) {
            // Untagged hardware: the switch wipes the cache.
            cpu.tlb().flushAll();
            gate.call(0, pages);
        }
        const double flushed =
            (double)(cpu.clock().now() - t0) / (double)iterations;

        table.row({std::to_string(pages),
                   detail::format("%.0f", tagged),
                   detail::format("%.0f", flushed),
                   detail::format("%+.0f ns", flushed - tagged)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("  without tagging, every call re-walks its working "
                "set (%llu ns per page);\n"
                "  at 64 pages/call the penalty dwarfs the 196 ns "
                "round trip itself.\n",
                (unsigned long long)bed.hv.cost().eptWalkNs);
    return 0;
}
