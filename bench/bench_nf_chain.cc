/**
 * @file
 * Experiment F9 (extension) — NF-chain throughput vs chain length,
 * three sharing schemes.
 *
 * The paper's motivating HyperNF observation ("exits cost 49 % of the
 * direct-mapping performance") emerges here rather than being dialed
 * in: every packet runs through a real chain of stateful NFs whose
 * tables live in the shared region, and the only difference between
 * schemes is how the per-packet work reaches that region (direct map,
 * 196 ns gate call, or 699 ns VMCALL). Around a 4-NF chain, VMCALL
 * sits at ~51 % of direct — the intro's number.
 */

#include <cstdio>

#include "bench/common.hh"
#include "elisa/gate.hh"
#include "hv/ivshmem.hh"
#include "net/nf.hh"
#include "net/paths.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

const std::uint64_t packetsPerPoint = scaledCount(100000);
constexpr std::uint32_t pktLen = 64;
constexpr Gpa stateWindowGpa = 0x530000000000ull;

std::vector<net::NfKind>
chainOf(unsigned length)
{
    static const net::NfKind rotation[] = {
        net::NfKind::Firewall, net::NfKind::Nat,
        net::NfKind::LoadBalancer, net::NfKind::Counter};
    std::vector<net::NfKind> kinds;
    for (unsigned i = 0; i < length; ++i)
        kinds.push_back(rotation[i % 4]);
    return kinds;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("F9", "NF-chain RX processing vs chain length (extension)");

    Testbed bed;
    const sim::CostModel &cost = bed.hv.cost();
    hv::Vm &guest_vm = bed.addGuest("nf-guest", 64 * MiB);
    core::ElisaGuest guest(guest_vm, bed.svc);

    TextTable table;
    table.header({"NFs", "ivshmem", "VMCALL", "ELISA", "VMCALL vs "
                                                       "ivshmem",
                  "(Mpps @64B)"});
    double at4_direct = 0, at4_vmcall = 0;

    for (unsigned nfs = 0; nfs <= 6; ++nfs) {
        const auto kinds = chainOf(nfs);

        // --- direct mapping -------------------------------------
        double m_direct;
        {
            hv::IvshmemRegion state(bed.hv, "nf-state-d", pageSize);
            state.attach(guest_vm, stateWindowGpa);
            net::HostRegionIo host_io(bed.hv.memory(), state.base());
            if (nfs)
                net::NfChain::build(host_io, 0, kinds);
            net::GuestRegionIo io(guest_vm.vcpu(0), stateWindowGpa);
            cpu::Vcpu &cpu = guest_vm.vcpu(0);
            const SimNs t0 = cpu.clock().now();
            for (std::uint64_t i = 0; i < packetsPerPoint; ++i) {
                cpu.clock().advance(net::NetPath::perPacketNs(
                    cost, pktLen, true));
                if (nfs) {
                    net::NfChain::process(
                        cpu, io, 0, static_cast<std::uint32_t>(i),
                        pktLen);
                }
            }
            m_direct = (double)packetsPerPoint * 1e3 /
                       (double)(cpu.clock().now() - t0);
            state.detach(guest_vm, stateWindowGpa);
        }

        // --- VMCALL host interposition ------------------------------
        double m_vmcall;
        {
            auto frames = bed.hv.allocator().alloc(1);
            fatal_if(!frames, "oom");
            net::HostRegionIo host_io(bed.hv.memory(), *frames);
            if (nfs)
                net::NfChain::build(host_io, 0, kinds);
            const std::uint64_t nr = bed.hv.allocServiceNr();
            bed.hv.registerHypercall(
                nr, [&host_io, &cost, nfs](
                        cpu::Vcpu &vcpu,
                        const cpu::HypercallArgs &args) {
                    vcpu.clock().advance(
                        net::NetPath::perPacketNs(cost, pktLen,
                                                        true));
                    if (nfs) {
                        net::NfChain::process(
                            vcpu, host_io, 0,
                            static_cast<std::uint32_t>(args.arg0),
                            pktLen);
                    }
                    return std::uint64_t{1};
                });
            cpu::Vcpu &cpu = guest_vm.vcpu(0);
            const SimNs t0 = cpu.clock().now();
            for (std::uint64_t i = 0; i < packetsPerPoint; ++i)
                cpu.vmcall(hv::hcArgs(static_cast<hv::Hc>(nr), i));
            m_vmcall = (double)packetsPerPoint * 1e3 /
                       (double)(cpu.clock().now() - t0);
            bed.hv.allocator().free(*frames);
        }

        // --- ELISA ----------------------------------------------------
        double m_elisa;
        {
            core::SharedFnTable fns;
            fns.push_back([&cost, nfs](core::SubCallCtx &ctx) {
                cpu::Vcpu &vcpu = ctx.view.vcpu();
                vcpu.clock().advance(net::NetPath::perPacketNs(
                    cost, pktLen, true));
                if (nfs) {
                    net::GuestRegionIo io(vcpu, ctx.obj);
                    net::NfChain::process(
                        vcpu, io, 0,
                        static_cast<std::uint32_t>(ctx.arg0), pktLen);
                }
                return std::uint64_t{1};
            });
            const core::ExportKey name("nf-" + std::to_string(nfs));
            auto exported =
                bed.manager.exportObject(name, pageSize,
                                         std::move(fns));
            fatal_if(!exported, "export failed");
            if (nfs) {
                net::HostRegionIo host_io(
                    bed.hv.memory(),
                    bed.managerVm.ramGpaToHpa(exported->objectGpa));
                net::NfChain::build(host_io, 0, kinds);
            }
            core::Gate gate = mustAttach(guest, name, bed.manager);
            cpu::Vcpu &cpu = guest.vcpu();
            gate.call(0, 0); // warm
            const SimNs t0 = cpu.clock().now();
            for (std::uint64_t i = 0; i < packetsPerPoint; ++i)
                gate.call(0, i);
            m_elisa = (double)packetsPerPoint * 1e3 /
                      (double)(cpu.clock().now() - t0);
            gate.detach();
        }

        table.row({std::to_string(nfs),
                   detail::format("%.2f", m_direct),
                   detail::format("%.2f", m_vmcall),
                   detail::format("%.2f", m_elisa),
                   detail::format("%.0f%%",
                                  m_vmcall / m_direct * 100.0),
                   ""});
        if (nfs == 4) {
            at4_direct = m_direct;
            at4_vmcall = m_vmcall;
        }
    }
    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "F9_nf_chain");

    paperCheck("HyperNF point: VMCALL loss vs direct @4-NF chain",
               (at4_direct - at4_vmcall) / at4_direct * 100.0, 49.0,
               "%");
    std::printf("  the -49%% emerges from a real 4-NF chain (%llu ns "
                "of NF work per packet),\n"
                "  not from a tuned constant.\n",
                (unsigned long long)(4 * bed.hv.cost().nfWorkNs));
    return 0;
}
