/**
 * @file
 * Experiment T4 — slow-path setup costs: export cost vs object size,
 * attach/detach negotiation cost, and EPTP-list headroom when one
 * guest attaches to many exports.
 */

#include <cstdio>

#include "bench/common.hh"
#include "elisa/gate.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

core::SharedFnTable
noopFns()
{
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &) { return std::uint64_t{0}; });
    return fns;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("T4", "negotiation / setup cost scaling");

    // --- export cost vs object size --------------------------------
    {
        Testbed bed;
        TextTable table;
        table.header({"Object size", "Export cost", "Attach cost",
                      "Detach cost"});
        hv::Vm &guest_vm = bed.addGuest("guest", 64 * MiB);
        core::ElisaGuest guest(guest_vm, bed.svc);

        for (std::uint64_t bytes :
             {4 * KiB, 64 * KiB, 1 * MiB, 16 * MiB}) {
            const core::ExportKey name(
                "obj-" + std::to_string(bytes));

            cpu::Vcpu &mgr_cpu = bed.manager.vcpu();
            const SimNs m0 = mgr_cpu.clock().now();
            auto exported =
                bed.manager.exportObject(name, bytes, noopFns());
            fatal_if(!exported, "export failed");
            const SimNs export_ns = mgr_cpu.clock().now() - m0;

            cpu::Vcpu &g_cpu = guest.vcpu();
            const SimNs g0 = g_cpu.clock().now();
            const SimNs mgr_before = mgr_cpu.clock().now();
            core::Gate gate = mustAttach(guest, name, bed.manager);
            const SimNs attach_ns = (g_cpu.clock().now() - g0) +
                                    (mgr_cpu.clock().now() - mgr_before);

            const SimNs d0 = g_cpu.clock().now();
            gate.detach();
            const SimNs detach_ns = g_cpu.clock().now() - d0;

            table.row({humanBytes(bytes),
                       humanNs((double)export_ns),
                       humanNs((double)attach_ns),
                       humanNs((double)detach_ns)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("  attach cost scales with the number of sub-EPT "
                    "leaves (one PTE write each;\n"
                    "  large pages flatten it for big objects, next "
                    "table); the data path is\n"
                    "  unaffected: calls stay at the T2 round trip "
                    "regardless of size.\n\n");
    }

    // --- large pages: attach-cost acceleration for big objects ------
    {
        Testbed bed;
        hv::Vm &guest_vm = bed.addGuest("guest", 64 * MiB);
        core::ElisaGuest guest(bed.hv.vm(guest_vm.id()), bed.svc);

        TextTable table;
        table.header({"16 MiB object backing", "sub-EPT leaves",
                      "attach cost"});
        // Aligned: exportObject aligns objects >= 2 MiB automatically.
        {
            auto exported = bed.manager.exportObject(core::ExportKey("big-aligned"),
                                                     16 * MiB,
                                                     noopFns());
            fatal_if(!exported, "export failed");
            cpu::Vcpu &g = guest.vcpu();
            cpu::Vcpu &m = bed.manager.vcpu();
            const SimNs t0 = g.clock().now() + m.clock().now();
            core::Gate gate = mustAttach(guest, core::ExportKey("big-aligned"), bed.manager);
            const SimNs cost_ns =
                g.clock().now() + m.clock().now() - t0;
            core::Attachment *a =
                bed.svc.attachment(gate.info().attachment);
            table.row({"2 MiB-aligned (large pages)",
                       std::to_string(a->subEpt().mappedPages()),
                       humanNs((double)cost_ns)});
        }
        // Force 4 KiB: misalign the object by allocating a page first.
        {
            bed.managerVm.allocGuestMem(pageSize);
            auto obj = bed.managerVm.allocGuestMem(16 * MiB + pageSize);
            fatal_if(!obj, "alloc failed");
            // Hand-roll an export at the odd GPA via the service path.
            bed.svc.stageFunctions(bed.managerVm.id(), noopFns());
            cpu::GuestView mview(bed.manager.vcpu());
            const char *name = "big-4k";
            mview.writeBytes(0x200, name, 6);
            cpu::HypercallArgs args;
            args.nr = static_cast<std::uint64_t>(
                core::ElisaHc::Export);
            args.arg0 = 0x200;
            args.arg1 = 6;
            args.arg2 = *obj + pageSize; // deliberately misaligned
            args.arg3 = 16 * MiB;
            fatal_if(bed.manager.vcpu().vmcall(args) == hv::hcError,
                     "export failed");
            cpu::Vcpu &g = guest.vcpu();
            cpu::Vcpu &m = bed.manager.vcpu();
            const SimNs t0 = g.clock().now() + m.clock().now();
            core::Gate gate = mustAttach(guest, core::ExportKey("big-4k"), bed.manager);
            const SimNs cost_ns =
                g.clock().now() + m.clock().now() - t0;
            core::Attachment *a =
                bed.svc.attachment(gate.info().attachment);
            table.row({"page-aligned only (4 KiB)",
                       std::to_string(a->subEpt().mappedPages()),
                       humanNs((double)cost_ns)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("  2 MiB EPT leaves cut the PTE writes for big "
                    "objects by ~512x, shrinking\n"
                    "  attach latency accordingly (an extension over "
                    "the paper's 4 KiB-only setup).\n\n");
    }

    // --- EPTP-list headroom: many attachments on one vCPU -------------
    {
        Testbed bed(3 * GiB / 2);
        hv::Vm &guest_vm = bed.addGuest("guest", 64 * MiB);
        core::ElisaGuest guest(guest_vm, bed.svc);

        TextTable table;
        table.header({"Attachments", "EPTP entries used",
                      "attach total", "call RTT"});
        std::vector<core::Gate> gates;
        const unsigned steps[] = {1, 8, 32, 64};
        unsigned created = 0;
        SimNs attach_total = 0;
        for (unsigned target : steps) {
            while (created < target) {
                const core::ExportKey name(
                    "multi-" + std::to_string(created));
                fatal_if(!bed.manager.exportObject(name, pageSize,
                                                   noopFns()),
                         "export failed");
                const SimNs g0 = guest.vcpu().clock().now();
                core::Gate gate =
                    mustAttach(guest, name, bed.manager);
                attach_total += guest.vcpu().clock().now() - g0;
                gates.push_back(std::move(gate));
                ++created;
            }
            // RTT through the newest gate stays flat.
            gates.back().call(0);
            const SimNs t0 = guest.vcpu().clock().now();
            for (int i = 0; i < 1000; ++i)
                gates.back().call(0);
            const double rtt =
                (double)(guest.vcpu().clock().now() - t0) / 1000.0;

            table.row({std::to_string(target),
                       std::to_string(
                           guest.vcpu().eptpList().validCount()),
                       humanNs((double)attach_total),
                       detail::format("%.0f ns", rtt)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("  each attachment consumes 2 of the 512 EPTP-list "
                    "slots (gate + sub context),\n"
                    "  bounding one vCPU to ~255 concurrent "
                    "attachments; call cost is independent.\n");
    }
    return 0;
}
