/**
 * @file
 * Experiment F4 — VM networking TX over the physical NIC vs packet
 * size, five schemes. Same cost structure as RX (the figures mirror
 * each other in the paper); ring-slot backpressure from the line-rate
 * wire caps large packets.
 */

#include "bench/net_common.hh"

int
main()
{
    using namespace elisa;
    using namespace elisa::bench;

    setQuiet(true);
    banner("F4", "TX over NIC throughput vs packet size");

    Testbed bed;
    hv::Vm &vm = bed.addGuest("tx-guest", 64 * MiB);
    core::ElisaGuest guest(vm, bed.svc);
    PathSet paths(bed, vm, guest, "tx");
    net::PhysNic nic(bed.hv.cost());

    auto run = [&nic](net::NetPath &p, std::uint32_t size) {
        nic.reset();
        auto r = net::runTx(p, nic, size, netPackets);
        fatal_if(r.corrupt != 0, "corrupt packets on %s", p.name());
        return r.mpps();
    };
    auto [elisa64, vmcall64, direct64] =
        printNetFigure(paths, run, "F4_net_tx");
    (void)direct64;

    paperCheck("ELISA TX gain over VMCALL @64B",
               (elisa64 - vmcall64) / vmcall64 * 100.0, 163.0, "%");
    return 0;
}
