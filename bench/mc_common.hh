/**
 * @file
 * Shared driver for the memcached latency figures (F6 / F7): sweeps
 * the offered load per scheme and prints the p99-vs-throughput series
 * (the hockey-stick curves of the paper's application benchmark).
 */

#ifndef ELISA_BENCH_MC_COMMON_HH
#define ELISA_BENCH_MC_COMMON_HH

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hh"
#include "memcached/loadgen.hh"

namespace elisa::bench
{

/** Requests per load point (plus warm-up). */
inline const std::uint64_t mcRequests = scaledCount(12000);

/** Key space of the memcached store. */
inline constexpr std::uint64_t mcKeySpace = 4096;

/**
 * Run one scheme's latency/throughput curve.
 * @return the last point before saturation blow-up (p99 <= 300 us),
 *         used for cross-scheme checks.
 */
inline memcached::LoadPoint
runMcCurve(const char *scheme, net::NetPath &path, hv::Hypervisor &hv,
           hv::Vm &server_vm, double set_ratio,
           const std::vector<double> &loads_krps, TextTable &table)
{
    memcached::Server server(hv, server_vm, path);
    net::PhysNic nic(hv.cost());
    // Populate the store so GETs hit.
    {
        net::PhysNic warm_nic(hv.cost());
        memcached::runLoadPoint(server, warm_nic, 100e3, mcKeySpace,
                                1.0, mcKeySpace, 3);
    }

    memcached::LoadPoint best;
    for (double krps : loads_krps) {
        auto p = memcached::runLoadPoint(server, nic, krps * 1e3,
                                         mcRequests, set_ratio,
                                         mcKeySpace);
        table.row({scheme, detail::format("%.0f", krps),
                   detail::format("%.1f", p.achievedKrps()),
                   detail::format("%.1f", (double)p.p50 / 1e3),
                   detail::format("%.1f", p.p99Us())});
        if (p.p99Us() <= 300.0)
            best = p;
    }
    return best;
}

} // namespace elisa::bench

#endif // ELISA_BENCH_MC_COMMON_HH
