/**
 * @file
 * Experiment A1 — ablation of the gate-context design.
 *
 * ELISA routes every call through a dedicated gate EPT context
 * (4 VMFUNCs + 2 trampoline segments). A hypothetical "no gate"
 * design would VMFUNC straight into the sub context (2 VMFUNCs, no
 * trampoline) — cheaper, but the callee would then run on the
 * *caller's* stack, which the sub context would have to map,
 * destroying the isolation of guest memory from shared code. This
 * bench quantifies what the gate costs: the price of isolation on
 * the fast path, per call and at the KVS application level.
 */

#include <cstdio>

#include "bench/common.hh"
#include "elisa/gate.hh"
#include "kvs/clients.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

const std::uint64_t iterations = scaledCount(200000);

} // namespace

int
main()
{
    setQuiet(true);
    banner("A1", "ablation: gate context vs direct 2-VMFUNC entry");

    Testbed bed;
    hv::Vm &vm = bed.addGuest("guest", 64 * MiB);
    core::ElisaGuest guest(vm, bed.svc);

    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &) { return std::uint64_t{0}; });
    fatal_if(!bed.manager.exportObject(core::ExportKey("abl"), pageSize, std::move(fns)),
             "export failed");
    core::Gate gate = mustAttach(guest, core::ExportKey("abl"), bed.manager);
    cpu::Vcpu &cpu = guest.vcpu();

    // (a) the real gated path.
    gate.call(0);
    SimNs t0 = cpu.clock().now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        gate.call(0);
    const double gated =
        (double)(cpu.clock().now() - t0) / (double)iterations;

    // (b) hypothetical no-gate entry: VMFUNC to the sub context and
    // back, invoking the shared function directly (unsafe: caller
    // stack would need to be mapped in the sub context).
    core::Attachment *attach =
        bed.svc.attachment(gate.info().attachment);
    fatal_if(!attach, "attachment lookup failed");
    const auto &table = attach->exportRecord().functions();
    t0 = cpu.clock().now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
        cpu.vmfunc(0, gate.info().subIndex);
        cpu::GuestView sub_view(cpu);
        core::SubCallCtx ctx{sub_view, core::objectGpa, pageSize,
                             core::exchangeGpa, 0, 0, 0, 0};
        table[0](ctx);
        cpu.vmfunc(0, 0);
    }
    const double ungated =
        (double)(cpu.clock().now() - t0) / (double)iterations;

    // (c) VMCALL, for scale.
    t0 = cpu.clock().now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        cpu.vmcall(hv::hcArgs(hv::Hc::Nop));
    const double vmcall =
        (double)(cpu.clock().now() - t0) / (double)iterations;

    TextTable tbl;
    tbl.header({"Design", "RTT [ns]", "Isolated stack?"});
    tbl.row({"gated (ELISA)", detail::format("%.0f", gated), "yes"});
    tbl.row({"no gate (2 VMFUNC)", detail::format("%.0f", ungated),
             "no  <- caller stack leaks into sub ctx"});
    tbl.row({"VMCALL", detail::format("%.0f", vmcall), "yes (host)"});
    std::printf("%s\n", tbl.render().c_str());

    std::printf("  gate-context premium: %.0f ns/call (%.0f%% of the "
                "gated RTT) buys per-client\n"
                "  stack + exchange isolation; still %.1fx cheaper "
                "than host interposition.\n\n",
                gated - ungated, (gated - ungated) / gated * 100.0,
                vmcall / gated);

    // Application-level impact: KVS GET with each design's RTT.
    const sim::CostModel &cost = bed.hv.cost();
    const double get_core = (double)cost.kvsGetCoreNs;
    TextTable app;
    app.header({"Design", "KVS GET est. [Mops/s/VM]"});
    app.row({"gated (ELISA)",
             detail::format("%.2f", 1e3 / (get_core + gated))});
    app.row({"no gate",
             detail::format("%.2f", 1e3 / (get_core + ungated))});
    app.row({"VMCALL",
             detail::format("%.2f", 1e3 / (get_core + vmcall))});
    std::printf("%s\n", app.render().c_str());
    std::printf("  the unsafe design would gain only ~%.0f%% GET "
                "throughput: the gate is cheap\n"
                "  relative to the work it protects.\n",
                (gated - ungated) / (get_core + gated) * 100.0);
    return 0;
}
