/**
 * @file
 * Experiment F3 — VM networking RX over the physical NIC vs packet
 * size, five schemes (paper: ELISA +163 % over VMCALL at 64 B; all
 * CPU-bound schemes converge to the 10 GbE line rate at 1472 B).
 *
 * A second table reproduces the §7.1 observation that motivated the
 * paper: with HyperNF-class per-packet NF work, VMCALL-based host
 * interposition loses ~49 % against direct mapping.
 */

#include "bench/net_common.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

} // namespace

int
main()
{
    setQuiet(true);
    banner("F3", "RX over NIC throughput vs packet size");

    Testbed bed;
    hv::Vm &vm = bed.addGuest("rx-guest", 64 * MiB);
    core::ElisaGuest guest(vm, bed.svc);
    PathSet paths(bed, vm, guest, "rx");
    net::PhysNic nic(bed.hv.cost());

    auto run = [&nic](net::NetPath &p, std::uint32_t size) {
        nic.reset();
        auto r = net::runRx(p, nic, size, netPackets);
        fatal_if(r.corrupt != 0, "corrupt packets on %s", p.name());
        return r.mpps();
    };
    auto [elisa64, vmcall64, direct64] =
        printNetFigure(paths, run, "F3_net_rx");

    paperCheck("ELISA RX gain over VMCALL @64B",
               (elisa64 - vmcall64) / vmcall64 * 100.0, 163.0, "%");
    const double line1472 = 1e3 / 1196.8;
    nic.reset();
    auto big = net::runRx(paths.vmcall, nic, 1472, 20000);
    paperCheck("all schemes line-rate bound @1472B", big.mpps(),
               line1472, "Mpps");

    // --- the HyperNF observation (intro / §7.1) ---------------------
    std::printf("\nHyperNF-class NF work (heavier per-packet "
                "processing):\n");
    sim::CostModel heavy = sim::CostModel::fromEnv();
    heavy.netPerPacketNs += 615; // NF chain processing per packet
    Testbed bed2(1536 * MiB, heavy);
    hv::Vm &vm2 = bed2.addGuest("rx-heavy", 64 * MiB);
    core::ElisaGuest guest2(vm2, bed2.svc);
    net::DirectPath direct2(bed2.hv, vm2);
    net::VmcallPath vmcall2(bed2.hv, vm2);
    net::ElisaPath elisa2(bed2.hv, bed2.manager, guest2, "nic-heavy");
    net::PhysNic nic2(heavy);

    auto run2 = [&nic2](net::NetPath &p) {
        nic2.reset();
        return net::runRx(p, nic2, 64, netPackets).mpps();
    };
    const double h_direct = run2(direct2);
    const double h_vmcall = run2(vmcall2);
    const double h_elisa = run2(elisa2);

    TextTable t2;
    t2.header({"Scheme", "64B RX [Mpps]", "vs direct-mapping"});
    t2.row({"ivshmem", detail::format("%.2f", h_direct), "--"});
    t2.row({"VMCALL", detail::format("%.2f", h_vmcall),
            detail::format("%+.0f%%",
                           (h_vmcall - h_direct) / h_direct * 100)});
    t2.row({"ELISA", detail::format("%.2f", h_elisa),
            detail::format("%+.0f%%",
                           (h_elisa - h_direct) / h_direct * 100)});
    std::printf("%s\n", t2.render().c_str());
    paperCheck("HyperNF VMCALL reduction vs direct",
               (h_direct - h_vmcall) / h_direct * 100.0, 49.0, "%");

    BenchReport report("net_rx");
    report.set("elisa_64b_mpps", elisa64);
    report.set("vmcall_64b_mpps", vmcall64);
    report.set("direct_64b_mpps", direct64);
    report.set("hypernf_direct_mpps", h_direct);
    report.set("hypernf_vmcall_mpps", h_vmcall);
    report.set("hypernf_elisa_mpps", h_elisa);
    report.set("hypernf_vmcall_reduction_pct",
               (h_direct - h_vmcall) / h_direct * 100.0);
    return 0;
}
