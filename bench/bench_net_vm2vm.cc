/**
 * @file
 * Experiment F5 — VM-to-VM throughput vs packet size. Software paths
 * cross the virtual switch memory-to-memory (no line-rate ceiling);
 * SR-IOV must hairpin through the NIC's hardware switch and stays
 * wire-bound, which is why direct-mapped software paths overtake it
 * at large packet sizes in the paper's figure.
 */

#include "bench/net_common.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

} // namespace

int
main()
{
    setQuiet(true);
    banner("F5", "VM-to-VM throughput vs packet size");

    Testbed bed(2 * GiB);
    hv::Vm &vm_a = bed.addGuest("vm-a", 64 * MiB);
    hv::Vm &vm_b = bed.addGuest("vm-b", 64 * MiB);
    core::ElisaGuest guest_a(vm_a, bed.svc);
    core::ElisaGuest guest_b(vm_b, bed.svc);
    PathSet tx_paths(bed, vm_a, guest_a, "a");
    PathSet rx_paths(bed, vm_b, guest_b, "b");
    net::PhysNic nic(bed.hv.cost());

    auto tx_all = tx_paths.all();
    auto rx_all = rx_paths.all();

    TextTable table;
    table.header({"Size [B]", "ivshmem", "VMCALL", "ELISA",
                  "vhost-net", "SR-IOV", "(Mpps)"});
    double elisa64 = 0, vmcall64 = 0;
    for (std::uint32_t size : netSizes) {
        std::vector<double> mpps;
        for (std::size_t i = 0; i < tx_all.size(); ++i) {
            nic.reset();
            const bool wire = std::string(tx_all[i]->name()) == "SR-IOV";
            auto r = net::runVm2Vm(*tx_all[i], *rx_all[i], nic, wire,
                                   size, netPackets);
            fatal_if(r.corrupt != 0, "corrupt packets on %s",
                     tx_all[i]->name());
            mpps.push_back(r.mpps());
        }
        // PathSet order: sriov, direct, elisa, vmcall, vhost.
        table.row({std::to_string(size),
                   detail::format("%.2f", mpps[1]),
                   detail::format("%.2f", mpps[3]),
                   detail::format("%.2f", mpps[2]),
                   detail::format("%.2f", mpps[4]),
                   detail::format("%.2f", mpps[0]), ""});
        if (size == 64) {
            elisa64 = mpps[2];
            vmcall64 = mpps[3];
        }
    }
    std::printf("%s\n", table.render().c_str());
    saveCsv(table, "F5_net_vm2vm");

    paperCheck("ELISA VM-to-VM gain over VMCALL @64B",
               (elisa64 - vmcall64) / vmcall64 * 100.0, 163.0, "%");
    return 0;
}
