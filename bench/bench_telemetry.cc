/**
 * @file
 * Experiment O1 — the telemetry plane's scrape cost: round-trip time
 * of one monitor scrape per access scheme (ELISA gate vs VMCALL
 * marshalling vs direct-mapped ivshmem), plus the wall-clock cost of
 * the hot gate path with the publisher wired but idle — the
 * "observability is free until you scrape" claim.
 *
 * The scrape RTTs are simulated time (deterministic, tightly gated by
 * tools/bench_check); the gate-path figure is host wall clock and is
 * recorded as a wall_ throughput metric so the gate is one-sided.
 */

#include <chrono>
#include <cstdio>

#include "bench/common.hh"
#include "elisa/gate.hh"
#include "guest/monitor.hh"
#include "hv/ivshmem.hh"
#include "hv/telemetry_publisher.hh"
#include "sim/exit_ledger.hh"
#include "sim/metrics.hh"
#include "sim/telemetry.hh"
#include "sim/tracer.hh"

namespace
{

using namespace elisa;
using namespace elisa::bench;

using Layout = sim::TelemetryRegionLayout;

const std::uint64_t scrapeIters = scaledCount(5000);
const std::uint64_t gateIters = scaledCount(200000);

constexpr std::uint32_t slotBytes = 128 * KiB;
constexpr Gpa mirrorGpa = 0x5000000000ull;

/** Wall-clock ns/call of @p iters gate calls, best of five rounds. */
double
wallNsPerGateCall(core::Gate &gate, std::uint64_t iters)
{
    double best = 1e18;
    for (int round = 0; round < 5; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < iters; ++i)
            gate.call(0);
        const auto t1 = std::chrono::steady_clock::now();
        const double ns =
            (double)std::chrono::duration_cast<std::chrono::nanoseconds>(
                t1 - t0)
                .count() /
            (double)iters;
        best = std::min(best, ns);
    }
    return best;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("O1", "telemetry scrape RTT per access scheme");

    Testbed bed;
    sim::Tracer tracer(4096);
    sim::ExitLedger ledger;
    bed.hv.setTracer(&tracer);
    bed.hv.setLedger(&ledger);

    // A worker guest generates gate and hypercall activity so the
    // published snapshots carry a realistic metric/ledger/trace load.
    hv::Vm &worker_vm = bed.addGuest("worker");
    core::ElisaGuest worker(worker_vm, bed.svc);
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &) { return std::uint64_t{0}; });
    fatal_if(!bed.manager.exportObject(core::ExportKey("noop"), pageSize,
                                       std::move(fns)),
             "noop export failed");
    core::Gate gate =
        mustAttach(worker, core::ExportKey("noop"), bed.manager);

    // The telemetry plane: publisher, ELISA-exported region, monitor.
    sim::Metrics metrics;
    hv::TelemetryPublisher publisher(bed.hv, metrics);
    hv::Vm &monitor_vm = bed.addGuest("monitor");
    guest::MonitorGuest monitor(monitor_vm, bed.svc);
    fatal_if(!guest::exportTelemetryRegion(bed.manager, publisher,
                                           core::ExportKey("telemetry"),
                                           slotBytes),
             "telemetry region export failed");
    fatal_if(!monitor.attach(core::ExportKey("telemetry"), bed.manager),
             "monitor attach failed");

    // Baseline schemes: a direct-mapped ivshmem mirror of the region
    // and the VMCALL marshalling service.
    hv::IvshmemRegion mirror(bed.hv, "telemetry-mirror",
                             Layout::regionBytes(slotBytes));
    publisher.addSink(mirror.base(), mirror.size(), "mirror");
    fatal_if(!mirror.attach(monitor_vm, mirrorGpa, ept::Perms::Read),
             "mirror attach failed");
    const std::uint64_t scrapeNr = publisher.registerScrapeHypercall();
    fatal_if(scrapeNr == 0, "scrape hypercall registration failed");

    bed.hv.attachMetrics(metrics);

    cpu::Vcpu &wcpu = worker_vm.vcpu(0);
    for (int i = 0; i < 1000; ++i) {
        gate.call(0);
        wcpu.vmcall(hv::hcArgs(hv::Hc::Nop));
    }
    fatal_if(publisher.publish(wcpu.clock().now()) == 0,
             "first publication failed");
    const double snapBytes = (double)publisher.lastSnapshot().size();

    // Scrape RTT per scheme, on the monitor vCPU's simulated clock.
    // Every scrape re-reads the full active slot; re-publishing per
    // iteration would only move host-side state, not the guest cost.
    cpu::Vcpu &mcpu = monitor_vm.vcpu(0);

    const auto gateLegTotals = [&ledger]() {
        std::uint64_t events = 0;
        SimNs ns = 0;
        for (const auto &row : ledger.rows()) {
            if (row.kind == sim::CostKind::GateLeg) {
                events += row.events;
                ns += row.ns;
            }
        }
        return std::make_pair(events, ns);
    };

    fatal_if(!monitor.scrape(), "warm ELISA scrape failed");
    const auto [legEvents0, legNs0] = gateLegTotals();
    SimNs t0 = mcpu.clock().now();
    for (std::uint64_t i = 0; i < scrapeIters; ++i)
        fatal_if(!monitor.scrape(), "ELISA scrape failed");
    const double elisa_ns =
        (double)(mcpu.clock().now() - t0) / (double)scrapeIters;
    const auto [legEvents1, legNs1] = gateLegTotals();
    // A complete gate call charges one event per GateLeg value; only
    // the monitor makes gate calls during the loop above.
    const double gate_calls =
        (double)(legEvents1 - legEvents0) / (double)core::gateLegCount;
    const double per_call_ns =
        gate_calls == 0.0 ? 0.0
                          : (double)(legNs1 - legNs0) / gate_calls;
    const double calls_per_scrape = gate_calls / (double)scrapeIters;

    fatal_if(!monitor.scrapeVmcall(scrapeNr), "warm VMCALL scrape failed");
    t0 = mcpu.clock().now();
    for (std::uint64_t i = 0; i < scrapeIters; ++i)
        fatal_if(!monitor.scrapeVmcall(scrapeNr), "VMCALL scrape failed");
    const double vmcall_ns =
        (double)(mcpu.clock().now() - t0) / (double)scrapeIters;

    fatal_if(!monitor.scrapeIvshmem(mirrorGpa),
             "warm ivshmem scrape failed");
    t0 = mcpu.clock().now();
    for (std::uint64_t i = 0; i < scrapeIters; ++i)
        fatal_if(!monitor.scrapeIvshmem(mirrorGpa),
                 "ivshmem scrape failed");
    const double ivshmem_ns =
        (double)(mcpu.clock().now() - t0) / (double)scrapeIters;

    TextTable table;
    table.header({"Scheme", "Scrape RTT [ns]", "Isolated", "Exit-less"});
    table.row({"ELISA gate", detail::format("%.0f", elisa_ns), "yes",
               "yes"});
    table.row({"VMCALL marshalling", detail::format("%.0f", vmcall_ns),
               "yes", "no"});
    table.row({"ivshmem direct map", detail::format("%.0f", ivshmem_ns),
               "no", "yes"});
    std::printf("%s\n", table.render().c_str());
    std::printf("  snapshot size: %.0f bytes, %.1f gate calls per "
                "ELISA scrape\n\n",
                snapBytes, calls_per_scrape);
    saveCsv(table, "O1_telemetry_scrape");

    // The scrape decomposes into plain gate calls: their per-call RTT
    // must be the paper's headline figure.
    paperCheck("Gate RTT inside ELISA scrape", per_call_ns, 196.0, "ns");

    // The gate hot path with the publisher wired but idle: publication
    // is pull-based, so a quiescent telemetry plane must not tax the
    // 196 ns path. Compare against a bare machine.
    const double wired_ns = wallNsPerGateCall(gate, gateIters);

    // The bare machine keeps the tracer and ledger (their hot-path
    // cost is PR 8's, budgeted in its own bench) so the delta below is
    // the telemetry plane's alone.
    Testbed bare;
    sim::Tracer bare_tracer(4096);
    sim::ExitLedger bare_ledger;
    bare.hv.setTracer(&bare_tracer);
    bare.hv.setLedger(&bare_ledger);
    hv::Vm &bare_vm = bare.addGuest("worker");
    core::ElisaGuest bare_guest(bare_vm, bare.svc);
    core::SharedFnTable bare_fns;
    bare_fns.push_back(
        [](core::SubCallCtx &) { return std::uint64_t{0}; });
    fatal_if(!bare.manager.exportObject(core::ExportKey("noop"), pageSize,
                                        std::move(bare_fns)),
             "bare export failed");
    core::Gate bare_gate =
        mustAttach(bare_guest, core::ExportKey("noop"), bare.manager);
    const double bare_ns = wallNsPerGateCall(bare_gate, gateIters);

    const double overhead_pct = (wired_ns - bare_ns) / bare_ns * 100.0;
    std::printf("  [telemetry-overhead] bare=%.1fns wired=%.1fns "
                "overhead=%.2f%% budget=2%%\n",
                bare_ns, wired_ns, overhead_pct);

    BenchReport report("telemetry");
    report.set("elisa_scrape_rtt_ns", elisa_ns);
    report.set("vmcall_scrape_rtt_ns", vmcall_ns);
    report.set("ivshmem_scrape_rtt_ns", ivshmem_ns);
    report.set("vmcall_over_elisa_ratio", vmcall_ns / elisa_ns);
    report.set("gate_calls_per_scrape", calls_per_scrape);
    report.set("snapshot_bytes", snapBytes);
    // Wall throughput (Mcalls/s) so the wall_ gate is one-sided in the
    // slower-is-bad direction.
    report.set("wall_gate_mops_telemetry", 1e3 / wired_ns);

    mirror.detach(monitor_vm, mirrorGpa);
    return 0;
}
