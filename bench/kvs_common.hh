/**
 * @file
 * Shared driver for the KVS scaling figures (F1 GET / F2 PUT):
 * builds per-scheme tables and clients for 1..8 VMs and prints the
 * Mops/s series the paper plots.
 *
 * Every VM-count point gets a fresh machine, tables, and clients:
 * simulated-time lock state must not leak between points (a stripe
 * marked busy at a previous round's far-future timestamp would stall
 * a fresh client).
 */

#ifndef ELISA_BENCH_KVS_COMMON_HH
#define ELISA_BENCH_KVS_COMMON_HH

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hh"
#include "kvs/workload.hh"

namespace elisa::bench
{

/** Table geometry shared by every scheme. */
inline constexpr std::uint64_t kvsBuckets = 1 << 15;
inline constexpr std::uint64_t kvsKeySpace = 1 << 15;
inline constexpr unsigned kvsMaxVms = 8;
inline const std::uint64_t kvsOpsPerClient = scaledCount(30000);

/** Per-scheme aggregate Mops at one VM count. */
struct KvsPoint
{
    double direct = 0;
    double vmcall = 0;
    double elisa = 0;
};

/** Run all three schemes at @p n VMs on a fresh machine. */
inline KvsPoint
runKvsPoint(kvs::Mix mix, unsigned n)
{
    Testbed bed(3 * GiB / 2);
    std::vector<hv::Vm *> vms;
    for (unsigned i = 0; i < n; ++i)
        vms.push_back(&bed.addGuest("client" + std::to_string(i),
                                    16 * MiB));

    KvsPoint point;
    {
        kvs::DirectKvsTable table(bed.hv, kvsBuckets);
        kvs::prepopulate(table.hostIo(), kvsKeySpace);
        std::vector<std::unique_ptr<kvs::DirectKvsClient>> clients;
        std::vector<kvs::KvsClient *> ptrs;
        for (unsigned i = 0; i < n; ++i) {
            clients.push_back(std::make_unique<kvs::DirectKvsClient>(
                table, *vms[i]));
            ptrs.push_back(clients.back().get());
        }
        auto r = kvs::runKvsWorkload(ptrs, mix, kvsKeySpace,
                                     kvsOpsPerClient);
        fatal_if(r.corrupt || r.failed, "direct scheme misbehaved");
        point.direct = r.totalMops;
    }
    {
        kvs::VmcallKvsTable table(bed.hv, kvsBuckets);
        kvs::prepopulate(table.hostIo(), kvsKeySpace);
        std::vector<std::unique_ptr<kvs::VmcallKvsClient>> clients;
        std::vector<kvs::KvsClient *> ptrs;
        for (unsigned i = 0; i < n; ++i) {
            clients.push_back(std::make_unique<kvs::VmcallKvsClient>(
                table, *vms[i]));
            ptrs.push_back(clients.back().get());
        }
        auto r = kvs::runKvsWorkload(ptrs, mix, kvsKeySpace,
                                     kvsOpsPerClient);
        fatal_if(r.corrupt || r.failed, "vmcall scheme misbehaved");
        point.vmcall = r.totalMops;
    }
    {
        kvs::ElisaKvsTable table(bed.hv, bed.manager, "kv-fig",
                                 kvsBuckets);
        kvs::prepopulate(table.hostIo(), kvsKeySpace);
        std::vector<std::unique_ptr<core::ElisaGuest>> guests;
        std::vector<std::unique_ptr<kvs::ElisaKvsClient>> clients;
        std::vector<kvs::KvsClient *> ptrs;
        for (unsigned i = 0; i < n; ++i) {
            guests.push_back(
                std::make_unique<core::ElisaGuest>(*vms[i], bed.svc));
            clients.push_back(std::make_unique<kvs::ElisaKvsClient>(
                table, bed.manager, *guests.back()));
            ptrs.push_back(clients.back().get());
        }
        auto r = kvs::runKvsWorkload(ptrs, mix, kvsKeySpace,
                                     kvsOpsPerClient);
        fatal_if(r.corrupt || r.failed, "elisa scheme misbehaved");
        point.elisa = r.totalMops;
    }
    return point;
}

/**
 * Run the scaling sweep for one operation mix and print the figure.
 * @return the point at the max VM count, for the paper-check line.
 */
inline KvsPoint
runKvsFigure(kvs::Mix mix, const char *exp_id)
{
    TextTable table;
    table.header({"VMs", "ivshmem [Mops/s]", "VMCALL [Mops/s]",
                  "ELISA [Mops/s]", "ELISA vs VMCALL"});
    KvsPoint last;
    for (unsigned n = 1; n <= kvsMaxVms; ++n) {
        const KvsPoint p = runKvsPoint(mix, n);
        table.row({std::to_string(n),
                   detail::format("%.2f", p.direct),
                   detail::format("%.2f", p.vmcall),
                   detail::format("%.2f", p.elisa),
                   detail::format("%+.0f%%", (p.elisa - p.vmcall) /
                                                 p.vmcall * 100)});
        last = p;
    }
    std::printf("%s\n", table.render().c_str());
    saveCsv(table, exp_id);
    return last;
}

} // namespace elisa::bench

#endif // ELISA_BENCH_KVS_COMMON_HH
