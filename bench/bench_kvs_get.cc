/**
 * @file
 * Experiment F1 — in-memory KVS GET throughput vs number of VMs
 * (paper: ELISA +64 % over VMCALL; ivshmem fastest, near-linear
 * scaling to ~14 Mops/s at 8 VMs).
 */

#include "bench/kvs_common.hh"

int
main()
{
    using namespace elisa;
    using namespace elisa::bench;

    setQuiet(true);
    banner("F1", "KVS GET throughput vs number of VMs");
    const KvsPoint p = runKvsFigure(kvs::Mix::GetOnly, "F1_kvs_get");
    paperCheck("ELISA GET gain over VMCALL @8 VMs",
               (p.elisa - p.vmcall) / p.vmcall * 100.0, 64.0, "%");
    paperCheck("ivshmem GET @8 VMs", p.direct, 13.6, "Mops/s");
    return 0;
}
