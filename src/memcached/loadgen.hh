/**
 * @file
 * Open-loop (mutilate-style) load generator for the memcached server.
 *
 * Requests arrive as a Poisson process at a configured offered rate;
 * each flows: client -> propagation -> ingress wire -> datapath ->
 * server (queueing happens naturally on the server vCPU clock) ->
 * datapath -> egress wire -> propagation -> client. End-to-end
 * latency is recorded per request; sweeping the offered rate produces
 * the paper's p99-vs-throughput hockey sticks.
 */

#ifndef ELISA_MEMCACHED_LOADGEN_HH
#define ELISA_MEMCACHED_LOADGEN_HH

#include <cstdint>

#include "memcached/server.hh"
#include "sim/histogram.hh"
#include "sim/rng.hh"

namespace elisa::memcached
{

/** Server wake-up discipline. */
enum class WakeMode
{
    /** Busy-poll the RX ring: lowest latency, a core burned. */
    Polling,

    /**
     * Sleep until a doorbell rings (posted-interrupt latency added
     * to each idle-arriving request): slightly slower, but the vCPU
     * is free while idle.
     */
    Interrupt,
};

/** Result of one load point. */
struct LoadPoint
{
    /** Offered load in requests/second. */
    double offeredRps = 0.0;

    /** Achieved throughput in requests/second. */
    double achievedRps = 0.0;

    /** Latency percentiles (ns). */
    SimNs p50 = 0;
    SimNs p99 = 0;
    SimNs p999 = 0;
    double meanNs = 0.0;

    /** Requests measured. */
    std::uint64_t requests = 0;

    /**
     * Fraction of the measurement span the server vCPU was occupied.
     * Polling mode reports 1.0 (the poll loop burns the core);
     * interrupt mode reports actual service time / span.
     */
    double cpuUtilization = 1.0;

    /** Offered / achieved in Krps (the figures' unit). */
    double offeredKrps() const { return offeredRps / 1e3; }
    double achievedKrps() const { return achievedRps / 1e3; }

    /** p99 in microseconds (the figures' unit). */
    double p99Us() const { return (double)p99 / 1e3; }
};

/**
 * Drive @p server at @p offered_rps for @p requests requests.
 *
 * @param server the server under test.
 * @param nic the NIC whose wires the requests/responses cross.
 * @param offered_rps offered load (Poisson).
 * @param requests number of requests (plus 5 % warm-up, discarded).
 * @param set_ratio fraction of SETs (0.1 = GET-heavy, 0.5 = SET-heavy).
 * @param key_space key ids drawn over [0, key_space).
 * @param seed RNG seed.
 * @param wake polling (default) or doorbell-driven wake-up.
 * @param zipf_s hot-key skew: 0 (default) keeps the uniform draw;
 *        s > 0 draws zipfian ranks (s = 0.99 is the YCSB hot-key
 *        curve) scattered over the key space via Zipf::spreadRank.
 */
LoadPoint runLoadPoint(Server &server, net::PhysNic &nic,
                       double offered_rps, std::uint64_t requests,
                       double set_ratio, std::uint64_t key_space,
                       std::uint64_t seed = 7,
                       WakeMode wake = WakeMode::Polling,
                       double zipf_s = 0.0);

} // namespace elisa::memcached

#endif // ELISA_MEMCACHED_LOADGEN_HH
