/**
 * @file
 * A memcached-like server VM whose network I/O runs over one of the
 * five datapaths.
 *
 * The paper's application benchmark varies only the virtual
 * networking scheme under an unmodified memcached; accordingly the
 * server model is: receive a request frame through the path, do the
 * protocol + hash-table work (memcachedCoreNs, plus the KVS core cost
 * of the operation against an in-VM ShmKvs store), and transmit the
 * response frame back through the path.
 */

#ifndef ELISA_MEMCACHED_SERVER_HH
#define ELISA_MEMCACHED_SERVER_HH

#include <cstdint>
#include <memory>

#include "kvs/shm_kvs.hh"
#include "net/paths.hh"
#include "net/phys_nic.hh"

namespace elisa::memcached
{

/** Request frame sizes (mutilate-style small GET/SET traffic). */
inline constexpr std::uint32_t getRequestBytes = 64;
inline constexpr std::uint32_t getResponseBytes = 128;
inline constexpr std::uint32_t setRequestBytes = 128;
inline constexpr std::uint32_t setResponseBytes = 64;

/**
 * The server: owns an in-VM store and serves one request at a time
 * (single worker thread, as the paper's single-vCPU server VMs).
 */
class Server
{
  public:
    /**
     * @param hv the machine.
     * @param vm the server VM (its RAM hosts the store).
     * @param path the networking datapath the server uses.
     * @param store_buckets hash-table size.
     */
    Server(hv::Hypervisor &hv, hv::Vm &vm, net::NetPath &path,
           std::uint64_t store_buckets = 1 << 16);

    /**
     * Serve one request that became visible to the guest at @p ready.
     *
     * @param seq request sequence number.
     * @param is_set SET (write) or GET (read).
     * @param key_id key identifier.
     * @return the time the response frame is ready for the TX wire.
     */
    SimNs serve(std::uint32_t seq, bool is_set, std::uint64_t key_id,
                SimNs ready);

    /** The path (load generator needs its host-side hooks). */
    net::NetPath &path() { return netPath; }

    /** Server vCPU (clock inspection). */
    cpu::Vcpu &vcpu() { return netPath.vcpu(); }

    /**
     * Engine shard the server schedules on — its vCPU's (= its VM's
     * machine's). A load generator driving this server from another
     * machine's shard must route requests via Engine::post().
     */
    ShardId shard() { return netPath.vcpu().shard(); }

    /** GETs that missed (diagnostics; 0 after warm-up). */
    std::uint64_t misses() const { return missCount; }

  private:
    hv::Hypervisor &hyper;
    net::NetPath &netPath;
    std::unique_ptr<net::HostRegionIo> storeIo;
    std::uint64_t buckets;
    std::uint64_t missCount = 0;
};

} // namespace elisa::memcached

#endif // ELISA_MEMCACHED_SERVER_HH
