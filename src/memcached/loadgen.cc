#include "memcached/loadgen.hh"

#include <algorithm>
#include <memory>

#include "base/logging.hh"
#include "sim/zipf.hh"

namespace elisa::memcached
{

LoadPoint
runLoadPoint(Server &server, net::PhysNic &nic, double offered_rps,
             std::uint64_t requests, double set_ratio,
             std::uint64_t key_space, std::uint64_t seed,
             WakeMode wake, double zipf_s)
{
    panic_if(offered_rps <= 0.0, "offered load must be positive");
    panic_if(requests == 0, "empty load point");

    const sim::CostModel &cost = server.vcpu().costModel();
    const double mean_gap_ns = 1e9 / offered_rps;
    sim::Rng rng(seed);
    std::unique_ptr<sim::Zipf> zipf;
    if (zipf_s > 0.0)
        zipf = std::make_unique<sim::Zipf>(key_space, zipf_s);

    const std::uint64_t warmup = requests / 20;
    const std::uint64_t total = requests + warmup;

    sim::Histogram latency(6, 1ull << 40);
    net::NetPath &path = server.path();

    // Start the arrival process at the server's current time so
    // consecutive load points on one server compose correctly.
    double arrival = (double)server.vcpu().clock().now();
    SimNs first_done = 0, last_done = 0;
    std::uint64_t measured = 0;
    SimNs busy_total = 0;

    for (std::uint64_t i = 0; i < total; ++i) {
        arrival += rng.exponential(mean_gap_ns);
        const auto a = static_cast<SimNs>(arrival);

        const bool is_set = rng.chance(set_ratio);
        const std::uint64_t key_id =
            zipf ? sim::Zipf::spreadRank(zipf->sample(rng), key_space)
                 : rng.below(key_space);
        const std::uint32_t req_len =
            is_set ? setRequestBytes : getRequestBytes;
        const std::uint32_t resp_len =
            is_set ? setResponseBytes : getResponseBytes;

        // Client -> server: propagation, then the ingress wire, then
        // the path's delivery machinery.
        const SimNs at_nic = a + cost.netPropagationNs;
        const SimNs wire_done = nic.rxArrive(at_nic, req_len);
        SimNs ready = path.hostDeliverRx(
            static_cast<std::uint32_t>(i), req_len, wire_done);

        // Interrupt mode: a server that is idle when the request
        // lands must first be woken (one posted-interrupt latency).
        if (wake == WakeMode::Interrupt &&
            server.vcpu().clock().now() < ready) {
            ready += cost.ipiDeliverNs;
        }

        // Server (queueing on its vCPU clock) + response egress.
        const SimNs before = server.vcpu().clock().now();
        const SimNs tx_ready = server.serve(
            static_cast<std::uint32_t>(i), is_set, key_id, ready);
        const SimNs started = before > ready ? before : ready;
        busy_total += server.vcpu().clock().now() - started;
        const SimNs wire_out = nic.txDepart(tx_ready, resp_len);
        const SimNs done = wire_out + cost.netPropagationNs;

        if (i >= warmup) {
            latency.record(done - a);
            if (measured == 0)
                first_done = done;
            last_done = done;
            ++measured;
        }
    }

    LoadPoint point;
    point.offeredRps = offered_rps;
    point.requests = measured;
    point.p50 = latency.percentile(0.50);
    point.p99 = latency.percentile(0.99);
    point.p999 = latency.percentile(0.999);
    point.meanNs = latency.mean();
    const SimNs span = last_done > first_done ? last_done - first_done : 1;
    point.achievedRps = (double)(measured - 1) * 1e9 / (double)span;
    point.cpuUtilization =
        wake == WakeMode::Polling
            ? 1.0
            : std::min(1.0, (double)busy_total / (double)span);
    return point;
}

} // namespace elisa::memcached
