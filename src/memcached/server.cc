#include "memcached/server.hh"

#include "base/logging.hh"

namespace elisa::memcached
{

Server::Server(hv::Hypervisor &hv, hv::Vm &vm, net::NetPath &path,
               std::uint64_t store_buckets)
    : hyper(hv), netPath(path), buckets(store_buckets)
{
    const std::uint64_t bytes =
        pageAlignUp(kvs::ShmKvs::regionBytesFor(store_buckets));
    auto gpa = vm.allocGuestMem(bytes);
    fatal_if(!gpa, "server VM '%s' out of RAM for the store",
             vm.name().c_str());
    storeIo = std::make_unique<net::HostRegionIo>(
        hv.memory(), vm.ramGpaToHpa(*gpa));
    kvs::ShmKvs::format(*storeIo, store_buckets);
}

SimNs
Server::serve(std::uint32_t seq, bool is_set, std::uint64_t key_id,
              SimNs ready)
{
    cpu::Vcpu &cpu = netPath.vcpu();
    const sim::CostModel &cost = hyper.cost();

    // Pick the packet up once both it and the server are free.
    cpu.clock().syncTo(ready);
    const auto [got_seq, got_len] = netPath.guestRx();
    panic_if(got_seq != seq, "server received out-of-order frame");
    (void)got_len;

    // Protocol parse + hash + response build.
    cpu.clock().advance(cost.memcachedCoreNs);

    // The store operation (in-VM memory; core cost only — the lookup
    // is part of memcached's own work, priced like the KVS cores).
    if (is_set) {
        cpu.clock().advance(cost.kvsPutCoreNs);
        const bool ok = kvs::ShmKvs::put(*storeIo, kvs::makeKey(key_id),
                                         kvs::makeValue(key_id));
        if (!ok)
            ++missCount; // bucket overflow counted as a miss
    } else {
        cpu.clock().advance(cost.kvsGetCoreNs);
        if (!kvs::ShmKvs::get(*storeIo, kvs::makeKey(key_id)))
            ++missCount;
    }

    // Transmit the response.
    const std::uint32_t resp_len =
        is_set ? setResponseBytes : getResponseBytes;
    const SimNs handoff = netPath.guestTx(seq, resp_len);
    auto [pkt, tx_ready] = netPath.hostCollectTx(handoff);
    panic_if(pkt.seq != seq, "server response misordered");
    return tx_ready;
}

} // namespace elisa::memcached
