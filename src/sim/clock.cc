#include "sim/clock.hh"

// SimClock is header-only; this translation unit exists so the library
// always has at least one object for the module and to anchor potential
// future out-of-line members.
