/**
 * @file
 * Lightweight statistics: named counters and running scalar statistics.
 */

#ifndef ELISA_SIM_STATS_HH
#define ELISA_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace elisa::sim
{

/**
 * Running statistics over a stream of samples (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples seen. */
    std::uint64_t count() const { return n; }

    /** Mean of samples (0 if empty). */
    double mean() const { return n ? m : 0.0; }

    /** Population variance (0 if fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample (+inf if empty). */
    double min() const { return minV; }

    /** Largest sample (-inf if empty). */
    double max() const { return maxV; }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Merge another RunningStats into this one. */
    void merge(const RunningStats &other);

  private:
    std::uint64_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minV = std::numeric_limits<double>::infinity();
    double maxV = -std::numeric_limits<double>::infinity();
};

/**
 * A named bag of integer counters, used by subsystems to export event
 * counts (VM exits, EPT violations, TLB misses, packets dropped, ...).
 */
class StatSet
{
  public:
    /** Increment @p name by @p delta (creating it at 0 if absent). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Read a counter (0 if it was never incremented). */
    std::uint64_t get(const std::string &name) const;

    /** Reset every counter to zero. */
    void clear();

    /** Render all counters, sorted by name, one per line. */
    std::string dump() const;

    /** Access to the underlying map (for iteration in tests). */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters;
    }

  private:
    std::map<std::string, std::uint64_t> counters;
};

} // namespace elisa::sim

#endif // ELISA_SIM_STATS_HH
