/**
 * @file
 * Lightweight statistics: named counters and running scalar statistics.
 *
 * Counters are *interned*: a name is resolved to a dense StatId once
 * (at subsystem construction), and hot paths increment by array index.
 * The name-keyed API (get/dump/all) is kept for tests and reporting;
 * only registration pays the string lookup.
 */

#ifndef ELISA_SIM_STATS_HH
#define ELISA_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace elisa::sim
{

/**
 * Running statistics over a stream of samples (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples seen. */
    std::uint64_t count() const { return n; }

    /** Mean of samples (0 if empty). */
    double mean() const { return n ? m : 0.0; }

    /** Population variance (0 if fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample (+inf if empty). */
    double min() const { return minV; }

    /** Largest sample (-inf if empty). */
    double max() const { return maxV; }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Merge another RunningStats into this one. */
    void merge(const RunningStats &other);

  private:
    std::uint64_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minV = std::numeric_limits<double>::infinity();
    double maxV = -std::numeric_limits<double>::infinity();
};

/**
 * Dense handle of one counter within a StatSet. Obtained once via
 * StatSet::id(); incrementing through it is an array index, no string
 * lookup. Only meaningful for the StatSet that issued it.
 */
using StatId = std::uint32_t;

/**
 * A named bag of integer counters, used by subsystems to export event
 * counts (VM exits, EPT violations, TLB misses, packets dropped, ...).
 */
class StatSet
{
  public:
    /**
     * Resolve @p name to its StatId, registering it at zero when new.
     * This is the only string-keyed lookup; call it once at
     * construction time, never per event.
     */
    StatId id(const std::string &name);

    /** Increment the interned counter @p sid (hot path). */
    void
    inc(StatId sid, std::uint64_t delta = 1)
    {
        values[sid] += delta;
    }

    /**
     * Increment @p name by @p delta (creating it at 0 if absent).
     * Compatibility/slow-path form: pays a map lookup per call — keep
     * it off per-access and per-call paths (use id() + inc(StatId)).
     */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        values[id(name)] += delta;
    }

    /** Read an interned counter. */
    std::uint64_t get(StatId sid) const { return values[sid]; }

    /** Read a counter by name (0 if it was never registered). */
    std::uint64_t get(const std::string &name) const;

    /** Reset every counter to zero (registrations are kept). */
    void clear();

    /** Number of registered counters. */
    std::size_t size() const { return values.size(); }

    /** Materialize all counters, name-keyed (iteration in tests). */
    std::map<std::string, std::uint64_t> all() const;

  private:
    std::map<std::string, StatId> index;
    std::vector<std::uint64_t> values;
};

} // namespace elisa::sim

#endif // ELISA_SIM_STATS_HH
