/**
 * @file
 * Per-VM flight recorder: a bounded ring of each VM's most recent
 * trace events plus ledger-delta accounting, dumped as a deterministic
 * post-mortem JSON when the VM dies.
 *
 * The tracer's ring is machine-global — by the time a VM killed by the
 * fault battery is torn down, its last spans may already be overwritten
 * by survivor traffic. The recorder demultiplexes the global stream
 * into small per-VM rings (track → vm via a resolver the hypervisor
 * installs), so every VM keeps its own last-N window regardless of how
 * chatty its neighbours are. On kill/teardown the hypervisor drains
 * the tracer one final time and dumps: the VM's span window, its
 * ledger rows as deltas since the recorder's baseline, per-kind
 * totals, and a conservation verdict (row deltas non-negative and
 * partitioning the VM's total) — the same double-entry invariant the
 * chaos tests enforce, now checked at every death.
 *
 * Everything is simulated-time data; dumps are byte-deterministic for
 * a given machine history (and therefore across engine thread counts).
 */

#ifndef ELISA_SIM_FLIGHT_RECORDER_HH
#define ELISA_SIM_FLIGHT_RECORDER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "base/types.hh"
#include "sim/exit_ledger.hh"
#include "sim/tracer.hh"

namespace elisa::sim
{

class FlightRecorder
{
  public:
    /** Resolver verdict for "this track belongs to no VM". */
    static constexpr std::uint32_t noVm = 0xffffffffu;

    /** @param per_vm_capacity ring size (events) kept per VM. */
    explicit FlightRecorder(std::size_t per_vm_capacity = 256);

    /**
     * Install the track → vm resolver (by convention tracks are vCPU
     * ids; the hypervisor knows which VM each belongs to). Events
     * whose track resolves to noVm are counted unattributed.
     */
    void setTrackResolver(
        std::function<std::uint32_t(std::uint32_t)> resolver);

    /**
     * Drain events emitted since the last observe() from @p tracer
     * into the per-VM rings. Call at publication boundaries and —
     * crucially — right before dumping a dying VM.
     */
    void observe(const Tracer &tracer);

    /**
     * Capture the ledger baseline deltas are measured from. Typically
     * called once at install time (an all-zero ledger) — but a test
     * can re-baseline mid-run to scope a dump to one phase.
     */
    void baseline(const ExitLedger &ledger);

    /** Annotate the next dump of @p vm with a kill site/cause. */
    void noteKill(std::uint32_t vm, std::string site);

    /**
     * Build (and retain) the post-mortem JSON for @p vm at simulated
     * time @p now. @p ledger may be null (spans only). The reason is
     * the pending noteKill() annotation when one exists, else
     * "vm_destroy". Returns the JSON document.
     */
    const std::string &dump(std::uint32_t vm, SimNs now,
                            const ExitLedger *ledger);

    // ---- post-mortem access ----------------------------------------
    bool hasPostMortem(std::uint32_t vm) const;
    const std::string &postMortem(std::uint32_t vm) const;

    /** VMs with a retained post-mortem, ascending. */
    std::vector<std::uint32_t> postMortemVms() const;

    /** Conservation verdict of the last dump of @p vm. */
    bool postMortemConserved(std::uint32_t vm) const;

    /**
     * When set, every dump is also written to
     * "<dir>/postmortem_vm<id>.json" (gitignored output).
     */
    void setOutputDir(std::string dir) { outputDir = std::move(dir); }

    // ---- introspection (tests) -------------------------------------
    /** Events currently held for @p vm. */
    std::size_t heldFor(std::uint32_t vm) const;

    /** Events of @p vm overwritten by ring wraparound. */
    std::uint64_t droppedFor(std::uint32_t vm) const;

    /** Events whose track resolved to no VM. */
    std::uint64_t unattributed() const { return unresolved; }

    /** Events lost because observe() lagged the tracer ring. */
    std::uint64_t missed() const { return missedEvents; }

  private:
    struct VmRing
    {
        std::vector<TraceEvent> ring;
        std::size_t head = 0;
        std::size_t held = 0;
        std::uint64_t total = 0;
    };

    struct PostMortem
    {
        std::string json;
        bool conserved = true;
    };

    /** Ledger row identity for the baseline map. */
    using RowKey =
        std::tuple<std::uint32_t, std::uint32_t, std::uint8_t,
                   std::uint32_t>; ///< (vm, vcpu, kind, code)

    VmRing &ringFor(std::uint32_t vm);
    void push(VmRing &ring, const TraceEvent &event);

    std::size_t capacity;
    std::function<std::uint32_t(std::uint32_t)> trackResolver;
    std::map<std::uint32_t, VmRing> rings;
    std::uint64_t cursor = 0;      ///< tracer emitted() high-water
    std::uint64_t tracerSerial = 0;
    std::uint64_t unresolved = 0;
    std::uint64_t missedEvents = 0;
    std::map<TraceNameId, std::string> nameTable;
    std::map<RowKey, std::pair<std::uint64_t, std::uint64_t>>
        ledgerBaseline; ///< (events, ns) at baseline time
    std::map<std::uint32_t, std::string> killReasons;
    std::map<std::uint32_t, PostMortem> postMortems;
    std::string outputDir;
};

} // namespace elisa::sim

#endif // ELISA_SIM_FLIGHT_RECORDER_HH
