/**
 * @file
 * Per-actor simulated clock.
 *
 * Every vCPU (and a few infrastructure actors such as load generators)
 * owns a SimClock counting simulated nanoseconds. Clocks only move
 * forward; cross-actor ordering is arbitrated by sim::Engine and the
 * SimLock/SimResource primitives.
 */

#ifndef ELISA_SIM_CLOCK_HH
#define ELISA_SIM_CLOCK_HH

#include "base/logging.hh"
#include "base/types.hh"

namespace elisa::sim
{

/**
 * A monotonically increasing nanosecond clock local to one actor.
 */
class SimClock
{
  public:
    SimClock() = default;

    /** Current simulated time in nanoseconds. */
    SimNs now() const { return nowNs; }

    /** Advance the clock by @p ns nanoseconds. */
    void advance(SimNs ns) { nowNs += ns; }

    /**
     * Move the clock forward to @p t if @p t is later than now.
     * Used when an actor blocks on a resource that frees at time t.
     * @return the amount of time waited.
     */
    SimNs
    syncTo(SimNs t)
    {
        if (t <= nowNs)
            return 0;
        SimNs waited = t - nowNs;
        nowNs = t;
        return waited;
    }

    /** Reset to time zero (tests only). */
    void reset() { nowNs = 0; }

  private:
    SimNs nowNs = 0;
};

} // namespace elisa::sim

#endif // ELISA_SIM_CLOCK_HH
