#include "sim/histogram.hh"

#include "base/bitops.hh"
#include "base/logging.hh"
#include "base/strutil.hh"

namespace elisa::sim
{

Histogram::Histogram(unsigned sub_bucket_bits, std::uint64_t max_value)
    : subBits(sub_bucket_bits), maxValue(max_value)
{
    panic_if(subBits == 0 || subBits > 16, "bad sub_bucket_bits %u",
             subBits);
    panic_if(maxValue < (std::uint64_t{1} << subBits),
             "max_value too small");
    const unsigned max_exp = log2Floor(maxValue);
    const std::size_t octaves = max_exp - subBits + 1;
    const std::size_t sub_count = std::size_t{1} << subBits;
    buckets.assign(sub_count * (octaves + 1), 0);
}

std::size_t
Histogram::bucketIndex(std::uint64_t value) const
{
    const std::uint64_t sub_count = std::uint64_t{1} << subBits;
    if (value < sub_count)
        return static_cast<std::size_t>(value);
    const unsigned octave = log2Floor(value);
    const unsigned shift = octave - subBits;
    const std::uint64_t sub = (value >> shift) - sub_count;
    return static_cast<std::size_t>(
        sub_count + std::uint64_t{shift} * sub_count + sub);
}

std::uint64_t
Histogram::bucketUpperBound(std::size_t index) const
{
    const std::uint64_t sub_count = std::uint64_t{1} << subBits;
    if (index < sub_count)
        return index;
    const std::uint64_t rel = index - sub_count;
    const unsigned shift = static_cast<unsigned>(rel >> subBits);
    const std::uint64_t sub = rel & (sub_count - 1);
    return ((sub_count + sub + 1) << shift) - 1;
}

void
Histogram::record(std::uint64_t value)
{
    recordN(value, 1);
}

void
Histogram::recordN(std::uint64_t value, std::uint64_t count)
{
    if (count == 0)
        return;
    if (value > maxValue) {
        saturatedCount += count;
        value = maxValue;
    }
    const std::size_t idx = bucketIndex(value);
    panic_if(idx >= buckets.size(), "histogram index out of range");
    buckets[idx] += count;
    total += count;
    sumSeen += value * count;
    if (value < minSeen)
        minSeen = value;
    if (value > maxSeen)
        maxSeen = value;
}

double
Histogram::mean() const
{
    if (total == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i])
            sum += static_cast<double>(buckets[i]) *
                   static_cast<double>(bucketUpperBound(i));
    }
    return sum / static_cast<double>(total);
}

std::uint64_t
Histogram::valueAtRank(std::uint64_t rank) const
{
    if (rank == 0)
        rank = 1;
    if (rank > total)
        rank = total;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    return maxSeen;
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (total == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target sample, 1-based, ceil semantics. The epsilon
    // keeps exact products (0.5 * 300 == 150.0) from ceiling to 151
    // when the double rounds a hair above the true value.
    const double scaled = q * static_cast<double>(total);
    auto rank = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(rank) < scaled - 1e-9)
        ++rank;
    return valueAtRank(rank);
}

std::uint64_t
Histogram::percentileRatio(std::uint64_t num, std::uint64_t den) const
{
    if (total == 0 || den == 0)
        return 0;
    // ceil(total * num / den) in integers; total and num are small
    // enough in practice (ns-scale counts, num <= 999) not to overflow.
    const std::uint64_t rank = (total * num + den - 1) / den;
    return valueAtRank(rank);
}

void
Histogram::merge(const Histogram &other)
{
    panic_if(other.subBits != subBits || other.maxValue != maxValue,
             "merging histograms with different geometry");
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    total += other.total;
    sumSeen += other.sumSeen;
    saturatedCount += other.saturatedCount;
    if (other.total) {
        if (other.minSeen < minSeen)
            minSeen = other.minSeen;
        if (other.maxSeen > maxSeen)
            maxSeen = other.maxSeen;
    }
}

void
Histogram::clear()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
    sumSeen = 0;
    saturatedCount = 0;
    minSeen = ~std::uint64_t{0};
    maxSeen = 0;
}

std::string
Histogram::summary() const
{
    return detail::format(
        "n=%llu mean=%s p50=%s p99=%s p999=%s max=%s",
        (unsigned long long)total, humanNs(mean()).c_str(),
        humanNs((double)percentile(0.50)).c_str(),
        humanNs((double)percentile(0.99)).c_str(),
        humanNs((double)percentile(0.999)).c_str(),
        humanNs((double)max()).c_str());
}

} // namespace elisa::sim
