#include "sim/fault.hh"

#include "base/logging.hh"

namespace elisa::sim
{

const char *
faultActionToString(FaultAction action)
{
    switch (action) {
      case FaultAction::None:
        return "none";
      case FaultAction::Drop:
        return "drop";
      case FaultAction::Delay:
        return "delay";
      case FaultAction::Duplicate:
        return "duplicate";
      case FaultAction::Error:
        return "error";
      case FaultAction::KillVm:
        return "kill_vm";
      case FaultAction::GateStale:
        return "gate_stale";
      case FaultAction::ShmExhaust:
        return "shm_exhaust";
      case FaultAction::ShmCorrupt:
        return "shm_corrupt";
      case FaultAction::GrantExhaust:
        return "grant_exhaust";
    }
    return "?";
}

namespace
{

const char *
siteToString(FaultSite site)
{
    switch (site) {
      case FaultSite::Hypercall:
        return "hc";
      case FaultSite::Gate:
        return "gate";
      case FaultSite::ShmAlloc:
        return "shm_alloc";
      case FaultSite::AttachBuild:
        return "attach_build";
      case FaultSite::Capability:
        return "capability";
      case FaultSite::PageIn:
        return "page_in";
    }
    return "?";
}

/** Which actions are meaningful at which hook site. */
bool
siteAccepts(FaultSite site, FaultAction action)
{
    switch (action) {
      case FaultAction::Drop:
      case FaultAction::Duplicate:
        return site == FaultSite::Hypercall;
      case FaultAction::Delay:
      case FaultAction::KillVm:
        return site == FaultSite::Hypercall ||
               site == FaultSite::PageIn;
      case FaultAction::Error:
        return site == FaultSite::Hypercall ||
               site == FaultSite::AttachBuild ||
               site == FaultSite::PageIn;
      case FaultAction::GateStale:
        return site == FaultSite::Gate;
      case FaultAction::ShmExhaust:
        return site == FaultSite::ShmAlloc ||
               site == FaultSite::AttachBuild;
      case FaultAction::ShmCorrupt:
        return site == FaultSite::ShmAlloc;
      case FaultAction::GrantExhaust:
        return site == FaultSite::Capability;
      case FaultAction::None:
        break;
    }
    return false;
}

} // anonymous namespace

void
FaultPlan::addRule(const FaultRule &rule)
{
    panic_if(rule.action == FaultAction::None,
             "fault rule without an action");
    panic_if(rule.occurrence == 0, "fault rule occurrence is 1-based");
    rules.push_back(CountedRule{rule, 0, false});
}

void
FaultPlan::killVmAt(std::uint64_t hc_nr, std::uint64_t victim,
                    std::uint64_t occurrence)
{
    FaultRule rule;
    rule.hcNr = hc_nr;
    rule.occurrence = occurrence;
    rule.action = FaultAction::KillVm;
    rule.param = victim;
    addRule(rule);
}

void
FaultPlan::failCapabilityAt(std::uint64_t vm, std::uint64_t occurrence)
{
    FaultRule rule;
    rule.vm = vm;
    rule.occurrence = occurrence;
    rule.action = FaultAction::GrantExhaust;
    addRule(rule);
}

void
FaultPlan::failPageInAt(std::uint64_t vm, std::uint64_t occurrence)
{
    FaultRule rule;
    rule.site = static_cast<std::uint64_t>(FaultSite::PageIn);
    rule.vm = vm;
    rule.occurrence = occurrence;
    rule.action = FaultAction::Error;
    addRule(rule);
}

void
FaultPlan::killDuringPageIn(std::uint64_t victim,
                            std::uint64_t occurrence)
{
    FaultRule rule;
    rule.site = static_cast<std::uint64_t>(FaultSite::PageIn);
    rule.vm = victim;
    rule.occurrence = occurrence;
    rule.action = FaultAction::KillVm;
    rule.param = victim;
    addRule(rule);
}

FaultDecision
FaultPlan::decide(FaultSite site, std::uint64_t vm, std::uint64_t nr,
                  bool allow_chance)
{
    for (CountedRule &counted : rules) {
        const FaultRule &rule = counted.rule;
        if (counted.spent)
            continue;
        if (rule.site != faultAny &&
            rule.site != static_cast<std::uint64_t>(site)) {
            continue;
        }
        if (!siteAccepts(site, rule.action))
            continue;
        if (rule.hcNr != faultAny && rule.hcNr != nr)
            continue;
        if (rule.vm != faultAny && rule.vm != vm)
            continue;
        ++counted.matches;
        if (counted.matches < rule.occurrence)
            continue;
        if (!rule.repeat)
            counted.spent = true;
        const FaultDecision decision{rule.action, rule.param};
        record(site, vm, nr, decision);
        return decision;
    }

    // Probabilistic chaos, only at sites where it makes sense and only
    // when a chance is configured: an all-zero plan never draws.
    if (allow_chance) {
        if (dropChance > 0.0 && rng.chance(dropChance)) {
            const FaultDecision decision{FaultAction::Drop, 0};
            record(site, vm, nr, decision);
            return decision;
        }
        if (delayChance > 0.0 && rng.chance(delayChance)) {
            const auto ns = static_cast<std::uint64_t>(
                rng.exponential(static_cast<double>(delayMeanNs)));
            const FaultDecision decision{FaultAction::Delay, ns};
            record(site, vm, nr, decision);
            return decision;
        }
        if (duplicateChance > 0.0 && rng.chance(duplicateChance)) {
            const FaultDecision decision{FaultAction::Duplicate, 0};
            record(site, vm, nr, decision);
            return decision;
        }
    }
    return FaultDecision{};
}

FaultDecision
FaultPlan::onHypercall(std::uint64_t vm, std::uint64_t nr)
{
    return decide(FaultSite::Hypercall, vm, nr, /*allow_chance=*/true);
}

FaultDecision
FaultPlan::onGateCall(std::uint64_t vm)
{
    // Gate calls are the exit-less data path: only scripted faults
    // (GateStale) apply; the hypercall chaos knobs do not.
    return decide(FaultSite::Gate, vm, faultAny, /*allow_chance=*/false);
}

FaultDecision
FaultPlan::onShmAlloc(std::uint64_t bytes)
{
    return decide(FaultSite::ShmAlloc, faultAny, bytes,
                  /*allow_chance=*/false);
}

FaultDecision
FaultPlan::onAttachBuild(std::uint64_t vm)
{
    return decide(FaultSite::AttachBuild, vm, faultAny,
                  /*allow_chance=*/false);
}

FaultDecision
FaultPlan::onCapability(std::uint64_t vm)
{
    return decide(FaultSite::Capability, vm, faultAny,
                  /*allow_chance=*/false);
}

FaultDecision
FaultPlan::onPageIn(std::uint64_t vm)
{
    // The hypercall chaos knobs do not apply here; the swap device has
    // its own error/latency distribution.
    FaultDecision decision =
        decide(FaultSite::PageIn, vm, faultAny, /*allow_chance=*/false);
    if (decision.action != FaultAction::None)
        return decision;
    if (pageInErrorChance > 0.0 && rng.chance(pageInErrorChance)) {
        decision = FaultDecision{FaultAction::Error, 0};
        record(FaultSite::PageIn, vm, faultAny, decision);
        return decision;
    }
    if (pageInDelayChance > 0.0 && rng.chance(pageInDelayChance)) {
        const auto ns = static_cast<std::uint64_t>(rng.exponential(
            static_cast<double>(pageInDelayMeanNs)));
        decision = FaultDecision{FaultAction::Delay, ns};
        record(FaultSite::PageIn, vm, faultAny, decision);
        return decision;
    }
    return FaultDecision{};
}

void
FaultPlan::record(FaultSite site, std::uint64_t vm, std::uint64_t nr,
                  const FaultDecision &decision)
{
    ++injected;
    log += detail::format(
        "#%llu %s vm=%llu nr=0x%llx -> %s param=%llu\n",
        (unsigned long long)injected, siteToString(site),
        (unsigned long long)vm, (unsigned long long)nr,
        faultActionToString(decision.action),
        (unsigned long long)decision.param);
}

} // namespace elisa::sim
