/**
 * @file
 * Central timing cost model of the simulated machine.
 *
 * Every nanosecond constant used anywhere in the simulator lives here so
 * experiments can state exactly which machine they modelled, and ablation
 * benches can vary one knob at a time. Defaults are calibrated so the two
 * paper-headline primitives come out exactly as published (ELISA context
 * round-trip 196 ns, VMCALL round-trip 699 ns; see DESIGN.md §6).
 */

#ifndef ELISA_SIM_COST_MODEL_HH
#define ELISA_SIM_COST_MODEL_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace elisa::sim
{

/**
 * Timing parameters of the simulated machine (all in nanoseconds unless
 * stated otherwise). The struct is trivially copyable; subsystems keep a
 * const reference to the instance owned by the Machine.
 */
struct CostModel
{
    // ---- CPU core -------------------------------------------------
    /** Core frequency in GHz (2.6 GHz Xeon-class, for cycle math). */
    double cpuGhz = 2.6;

    // ---- VT-x transition primitives -------------------------------
    /** VMFUNC leaf-0 EPTP switch (no VM exit): ~109 cycles. */
    SimNs vmfuncNs = 42;

    /** One gate-code segment (stack swap + register save/restore). */
    SimNs gateCodeNs = 14;

    /** VM exit (VMCS guest-state save + host context load). */
    SimNs vmexitNs = 480;

    /** VM entry (VMRESUME). */
    SimNs vmentryNs = 180;

    /** Host-side hypercall decode + dispatch-table indirection. */
    SimNs hypercallDispatchNs = 39;

    /** Host-side handling of a CPUID exit (cheaper: no argument ABI). */
    SimNs cpuidHandleNs = 10;

    // ---- Memory system --------------------------------------------
    /** One guest memory access that hits the (EPT-)TLB, per 8 bytes. */
    SimNs memAccessNs = 1;

    /** One EPT page walk on a TLB miss (4 levels). */
    SimNs eptWalkNs = 22;

    // ---- Demand paging / swap ---------------------------------------
    /** Hypervisor software cost to resolve one EPT-violation fault. */
    SimNs pageFaultHandleNs = 650;

    /** Swap-device read of one 4 KiB page (NVMe-class page-in). */
    SimNs swapInNs = 6000;

    /** Swap-device write of one 4 KiB page (page-out on eviction). */
    SimNs swapOutNs = 6000;

    /** Zero-filling one 4 KiB frame (demand-zero / balloon return). */
    SimNs zeroFillNs = 250;

    // ---- ELISA slow path (negotiation / setup) ---------------------
    /** Manager-side bookkeeping to create one sub EPT context. */
    SimNs subContextCreateNs = 2200;

    /** Hypervisor work to map one 4 KiB page into an EPT context. */
    SimNs eptMapPageNs = 310;

    /** One hop of the guest<->hypervisor<->manager negotiation. */
    SimNs negotiationHopNs = 1400;

    /**
     * How long an attach request may sit Pending (manager unresponsive
     * or dead) before Query reports it timed out and reaps it. Far
     * above any legitimate manager turnaround, so the happy path never
     * observes it.
     */
    SimNs negotiationTimeoutNs = 10'000'000;

    // ---- KVS workload ----------------------------------------------
    /** Core of one GET (hash + probe + read) inside the shared region. */
    SimNs kvsGetCoreNs = 590;

    /** Core of one PUT (hash + lock + write) inside the shared region. */
    SimNs kvsPutCoreNs = 735;

    /** Bucket lock hold time during a PUT. */
    SimNs kvsLockHoldNs = 120;

    // ---- Networking ------------------------------------------------
    /** NIC line rate in bits per second (10 GbE). */
    double nicLineRateBps = 10e9;

    /** Per-frame wire overhead: preamble + IFG + CRC, in bytes. */
    std::uint32_t nicFrameOverhead = 24;

    /**
     * Driver per-packet base work (descriptor handling). Calibrated
     * together with vswitchNs so that at 64 B the ELISA networking
     * path beats the VMCALL path by the paper's +163 %:
     * (113+699)/(113+196) = 2.63.
     */
    SimNs netPerPacketNs = 60;

    /** Per-byte cost of host-side payload copies (backend paths). */
    double netPerByteNs = 0.03;

    /** Extra per-packet guest work on the virtio (vhost-net) path. */
    SimNs virtioGuestNs = 260;

    /** Amortized notification (kick/irq) cost per packet, vhost-net. */
    SimNs virtioKickNs = 180;

    /** vhost backend-thread service time per packet (second copy incl). */
    SimNs vhostBackendNs = 950;

    /** Software switch per-packet forwarding decision. */
    SimNs vswitchNs = 45;

    /** One network function's per-packet match/lookup compute. */
    SimNs nfWorkNs = 150;

    // ---- memcached application --------------------------------------
    /** Request parsing + hashing + response build in the server. */
    SimNs memcachedCoreNs = 1800;

    /** Client<->server base network propagation (one way). */
    SimNs netPropagationNs = 11000;

    // ---- notification -----------------------------------------------
    /** Posted-interrupt / virtual IPI delivery latency. */
    SimNs ipiDeliverNs = 1100;

    // ---- Derived quantities -----------------------------------------
    /**
     * ELISA gate-call round trip: VMFUNC default->gate, gate prologue,
     * VMFUNC gate->sub, (callee), VMFUNC sub->gate, epilogue,
     * VMFUNC gate->default. 4x42 + 2x14 = 196 ns by default.
     */
    SimNs elisaRttNs() const { return 4 * vmfuncNs + 2 * gateCodeNs; }

    /** VMCALL round trip: exit + dispatch + entry = 699 ns by default. */
    SimNs
    vmcallRttNs() const
    {
        return vmexitNs + hypercallDispatchNs + vmentryNs;
    }

    /** CPUID-exit round trip (no hypercall ABI decode). */
    SimNs
    cpuidRttNs() const
    {
        return vmexitNs + cpuidHandleNs + vmentryNs;
    }

    /** Nanoseconds to put one @p frame_bytes frame on the wire. */
    double
    wireTimeNs(std::uint32_t frame_bytes) const
    {
        const double bits =
            8.0 * (double)(frame_bytes + nicFrameOverhead);
        return bits / nicLineRateBps * 1e9;
    }

    /**
     * Minimum simulated latency of any interaction that may cross an
     * engine shard boundary — the conservative-parallel-DES lookahead
     * (Engine::setLookahead). Cross-shard interactions in this model
     * are physical transports: an IPI / posted interrupt, network
     * propagation between machines, or a frame crossing the wire; the
     * cheapest is a minimum-size (64 B) frame's wire time, floored so
     * the bound stays conservative under any cost overlay.
     */
    SimNs
    minCrossShardLatencyNs() const
    {
        const SimNs wire = (SimNs)wireTimeNs(minFrameBytes);
        SimNs least = wire < ipiDeliverNs ? wire : ipiDeliverNs;
        if (netPropagationNs < least)
            least = netPropagationNs;
        return least > 1 ? least : 1;
    }

    /** Minimum Ethernet frame size used by the lookahead bound. */
    static constexpr std::uint32_t minFrameBytes = 64;

    /** Render the calibration summary printed by every bench. */
    std::string summary() const;

    /**
     * Defaults overlaid with ELISA_COST_* environment variables, so
     * experiments can re-run under a different machine model without
     * recompiling:
     *
     *   ELISA_COST_VMFUNC_NS, ELISA_COST_GATE_NS,
     *   ELISA_COST_VMEXIT_NS, ELISA_COST_VMENTRY_NS,
     *   ELISA_COST_DISPATCH_NS, ELISA_COST_KVS_GET_NS,
     *   ELISA_COST_KVS_PUT_NS, ELISA_COST_NET_PKT_NS,
     *   ELISA_COST_VSWITCH_NS, ELISA_COST_NIC_GBPS,
     *   ELISA_COST_PF_HANDLE_NS, ELISA_COST_SWAP_IN_NS,
     *   ELISA_COST_SWAP_OUT_NS, ELISA_COST_ZERO_FILL_NS
     */
    static CostModel fromEnv();
};

} // namespace elisa::sim

#endif // ELISA_SIM_COST_MODEL_HH
