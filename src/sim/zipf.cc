#include "sim/zipf.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace elisa::sim
{

Zipf::Zipf(std::uint64_t n, double s)
{
    panic_if(n == 0, "zipf over an empty item set");
    panic_if(s < 0, "zipf skew must be non-negative");
    cdf.resize(n);
    double total = 0;
    for (std::uint64_t r = 0; r < n; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), s);
        cdf[r] = total;
    }
    for (std::uint64_t r = 0; r < n; ++r)
        cdf[r] /= total;
    cdf[n - 1] = 1.0; // exact, despite rounding
}

std::uint64_t
Zipf::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::uint64_t>(it - cdf.begin());
}

double
Zipf::massOf(std::uint64_t r) const
{
    panic_if(r >= cdf.size(), "zipf rank out of range");
    return r == 0 ? cdf[0] : cdf[r] - cdf[r - 1];
}

std::uint64_t
Zipf::spreadRank(std::uint64_t rank, std::uint64_t n)
{
    // A fixed odd multiplier is coprime with any modulus when the
    // modulus is a power of two, and close enough to bijective for
    // the workloads' modest key spaces otherwise: collisions only
    // fold a negligible tail mass together.
    return (rank * 0x9e3779b97f4a7c15ull) % n;
}

} // namespace elisa::sim
