/**
 * @file
 * A deterministic bounded zipfian rank sampler for hot-key skew.
 *
 * Rank r in [0, n) is drawn with probability proportional to
 * 1 / (r+1)^s — the memcached-style popularity curve (s = 0.99 is the
 * YCSB default). The CDF is precomputed once and sampled by binary
 * search on a uniform draw from the caller's Rng, so the sequence is
 * a pure function of (n, s, seed) and stays bit-identical across
 * hosts, like everything else fed into determinism fingerprints.
 *
 * Rank 0 is the hottest item. Workloads that want hot *keys* spread
 * uniformly across a hashed key space should map ranks through
 * spreadRank() so consecutive hot ranks do not collide in one bucket
 * or cluster shard.
 */

#ifndef ELISA_SIM_ZIPF_HH
#define ELISA_SIM_ZIPF_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace elisa::sim
{

/** Bounded zipfian sampler over ranks [0, n). */
class Zipf
{
  public:
    /**
     * @param n number of items (> 0)
     * @param s skew exponent (s = 0 degenerates to uniform)
     */
    Zipf(std::uint64_t n, double s);

    /** Draw one rank using @p rng; 0 is the hottest. */
    std::uint64_t sample(Rng &rng) const;

    /** Item count. */
    std::uint64_t
    items() const
    {
        return static_cast<std::uint64_t>(cdf.size());
    }

    /** Probability mass of rank @p r. */
    double massOf(std::uint64_t r) const;

    /**
     * Bijectively scatter a rank over [0, n) (odd-multiplier modular
     * map) so neighboring hot ranks land far apart — in distinct
     * buckets and, at cluster scale, on distinct shards.
     */
    static std::uint64_t spreadRank(std::uint64_t rank,
                                    std::uint64_t n);

  private:
    std::vector<double> cdf; ///< cdf[r] = P(rank <= r), cdf.back() == 1
};

} // namespace elisa::sim

#endif // ELISA_SIM_ZIPF_HH
