#include "sim/exit_ledger.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace elisa::sim
{

const char *
costKindToString(CostKind kind)
{
    switch (kind) {
      case CostKind::Exit:
        return "exit";
      case CostKind::Hypercall:
        return "hypercall";
      case CostKind::GateLeg:
        return "gate-leg";
      case CostKind::Page:
        return "page";
    }
    return "?";
}

ExitLedger::ExitLedger()
{
    // Serial 0 is reserved as LedgerSlotCache's "no owner yet".
    static std::uint64_t nextSerial = 0;
    serialNum = ++nextSerial;
}

std::uint64_t
ExitLedger::key(std::uint32_t vm, std::uint32_t vcpu, CostKind kind,
                std::uint32_t code)
{
    // 16-bit vm | 16-bit vcpu | 8-bit kind | 24-bit code.
    panic_if(vm >= (1u << 16) || vcpu >= (1u << 16) ||
                 code >= (1u << 24),
             "ledger identity out of packing range (vm=%u vcpu=%u "
             "code=%u)",
             vm, vcpu, code);
    return (std::uint64_t{vm} << 48) | (std::uint64_t{vcpu} << 32) |
           (std::uint64_t{static_cast<std::uint8_t>(kind)} << 24) |
           std::uint64_t{code};
}

LedgerSlot
ExitLedger::slot(std::uint32_t vm, std::uint32_t vcpu, CostKind kind,
                 std::uint32_t code)
{
    const std::uint64_t k = key(vm, vcpu, kind, code);
    auto it = index.find(k);
    if (it != index.end())
        return it->second;
    const auto id = static_cast<LedgerSlot>(rowTable.size());
    Row row;
    row.vm = vm;
    row.vcpu = vcpu;
    row.kind = kind;
    row.code = code;
    rowTable.push_back(std::move(row));
    index.emplace(k, id);
    return id;
}

void
ExitLedger::setCodeName(CostKind kind, std::uint32_t code,
                        std::string name)
{
    codeNames[(std::uint64_t{static_cast<std::uint8_t>(kind)} << 32) |
              code] = std::move(name);
}

const std::string &
ExitLedger::codeName(CostKind kind, std::uint32_t code) const
{
    static const std::string empty;
    auto it = codeNames.find(
        (std::uint64_t{static_cast<std::uint8_t>(kind)} << 32) | code);
    return it == codeNames.end() ? empty : it->second;
}

SimNs
ExitLedger::totalNs() const
{
    SimNs sum = 0;
    for (const Row &row : rowTable)
        sum += row.ns;
    return sum;
}

SimNs
ExitLedger::kindNs(CostKind kind) const
{
    SimNs sum = 0;
    for (const Row &row : rowTable)
        if (row.kind == kind)
            sum += row.ns;
    return sum;
}

SimNs
ExitLedger::vmNs(std::uint32_t vm) const
{
    SimNs sum = 0;
    for (const Row &row : rowTable)
        if (row.vm == vm)
            sum += row.ns;
    return sum;
}

std::uint64_t
ExitLedger::totalEvents() const
{
    std::uint64_t sum = 0;
    for (const Row &row : rowTable)
        sum += row.events;
    return sum;
}

std::string
ExitLedger::report() const
{
    std::vector<const Row *> sorted;
    sorted.reserve(rowTable.size());
    for (const Row &row : rowTable)
        sorted.push_back(&row);
    std::sort(sorted.begin(), sorted.end(),
              [](const Row *a, const Row *b) {
                  if (a->vm != b->vm)
                      return a->vm < b->vm;
                  if (a->vcpu != b->vcpu)
                      return a->vcpu < b->vcpu;
                  if (a->kind != b->kind)
                      return a->kind < b->kind;
                  return a->code < b->code;
              });

    const SimNs total = totalNs();
    TextTable table;
    table.header({"vm", "vcpu", "kind", "code", "events", "ns",
                  "share", "durations"});
    for (const Row *row : sorted) {
        const std::string &name = codeName(row->kind, row->code);
        const std::string code_str =
            name.empty() ? detail::format("%u", row->code) : name;
        // Integer permille -> "xx.x%" keeps the report byte-
        // deterministic (no double formatting).
        const std::uint64_t permille =
            total ? row->ns * 1000 / total : 0;
        table.row({detail::format("%u", row->vm),
                   detail::format("%u", row->vcpu),
                   costKindToString(row->kind), code_str,
                   detail::format("%llu",
                                  (unsigned long long)row->events),
                   detail::format("%llu", (unsigned long long)row->ns),
                   detail::format("%llu.%llu%%",
                                  (unsigned long long)(permille / 10),
                                  (unsigned long long)(permille % 10)),
                   row->durations.count()
                       ? row->durations.summary()
                       : std::string("-")});
    }

    std::ostringstream out;
    out << "=== exit ledger ===\n" << table.render();
    for (unsigned k = 0; k < costKindCount; ++k) {
        const auto kind = static_cast<CostKind>(k);
        const SimNs ns = kindNs(kind);
        if (!ns)
            continue;
        const std::uint64_t permille = total ? ns * 1000 / total : 0;
        out << detail::format(
            "total[%s] = %llu ns (%llu.%llu%%)\n",
            costKindToString(kind), (unsigned long long)ns,
            (unsigned long long)(permille / 10),
            (unsigned long long)(permille % 10));
    }
    out << detail::format("total = %llu ns over %llu events\n",
                          (unsigned long long)total,
                          (unsigned long long)totalEvents());
    return out.str();
}

void
ExitLedger::clear()
{
    for (Row &row : rowTable) {
        row.events = 0;
        row.ns = 0;
        row.durations.clear();
    }
}

} // namespace elisa::sim
