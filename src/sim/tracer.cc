#include "sim/tracer.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "sim/histogram.hh"

namespace elisa::sim
{

const char *
spanCatToString(SpanCat cat)
{
    switch (cat) {
      case SpanCat::Hypercall:
        return "hypercall";
      case SpanCat::Gate:
        return "gate";
      case SpanCat::Negotiation:
        return "negotiation";
      case SpanCat::Net:
        return "net";
      case SpanCat::Kvs:
        return "kvs";
      case SpanCat::Fault:
        return "fault";
      case SpanCat::Cpu:
        return "cpu";
      case SpanCat::Page:
        return "page";
      case SpanCat::Telemetry:
        return "telemetry";
    }
    return "?";
}

Tracer::Tracer(std::size_t capacity)
{
    // Serial 0 is reserved as TraceNameCache's "no owner yet".
    static std::uint64_t nextSerial = 0;
    serialNum = ++nextSerial;
    fatal_if(capacity == 0, "tracer ring capacity must be positive");
    ring.resize(capacity);
    // Id 0 renders as "?" so an uninitialized name field is visibly
    // wrong instead of aliasing a real event name.
    names.push_back("?");
}

TraceNameId
Tracer::intern(std::string_view name)
{
    auto it = index.find(name);
    if (it != index.end())
        return it->second;
    fatal_if(names.size() > std::numeric_limits<TraceNameId>::max(),
             "trace name table overflow");
    const auto id = static_cast<TraceNameId>(names.size());
    names.emplace_back(name);
    index.emplace(std::string(name), id);
    return id;
}

const std::string &
Tracer::nameOf(TraceNameId id) const
{
    panic_if(id >= names.size(), "bad trace name id %u", id);
    return names[id];
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(held);
    // Oldest event: `head` when the ring has wrapped, slot 0 otherwise.
    const std::size_t start = held == ring.size() ? head : 0;
    for (std::size_t i = 0; i < held; ++i)
        out.push_back(ring[(start + i) % ring.size()]);
    return out;
}

void
Tracer::clear()
{
    head = 0;
    held = 0;
    total = 0;
}

namespace
{

/** Chrome "ph" letter for an event phase. */
char
phaseLetter(TracePhase phase)
{
    switch (phase) {
      case TracePhase::Begin:
        return 'B';
      case TracePhase::End:
        return 'E';
      case TracePhase::Instant:
        return 'i';
      case TracePhase::AsyncBegin:
        return 'b';
      case TracePhase::AsyncInstant:
        return 'n';
      case TracePhase::AsyncEnd:
        return 'e';
    }
    return '?';
}

bool
isAsync(TracePhase phase)
{
    return phase == TracePhase::AsyncBegin ||
           phase == TracePhase::AsyncInstant ||
           phase == TracePhase::AsyncEnd;
}

} // anonymous namespace

std::string
Tracer::chromeJson() const
{
    // All formatting is integer math: same events => same bytes.
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &ev : snapshot()) {
        if (!first)
            out += ',';
        first = false;
        // Chrome timestamps are microseconds; keep the nanosecond
        // fraction as three fixed decimals.
        out += detail::format(
            "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
            "\"ts\":%llu.%03llu,\"pid\":0,\"tid\":%u",
            nameOf(ev.name).c_str(), spanCatToString(ev.cat),
            phaseLetter(ev.phase),
            (unsigned long long)(ev.ts / 1000),
            (unsigned long long)(ev.ts % 1000), ev.track);
        if (isAsync(ev.phase)) {
            out += detail::format(",\"id\":\"0x%llx\"",
                                  (unsigned long long)ev.flowId);
        }
        if (ev.phase == TracePhase::Instant)
            out += ",\"s\":\"t\"";
        out += detail::format(
            ",\"args\":{\"a0\":%llu,\"a1\":%llu}}",
            (unsigned long long)ev.arg0, (unsigned long long)ev.arg1);
    }
    out += "\n]}\n";
    return out;
}

std::string
Tracer::latencyReport() const
{
    // Key: (category, name id) -> histogram of span durations.
    std::map<std::pair<unsigned, TraceNameId>, Histogram> spans;
    // Open synchronous spans, one LIFO stack per (track, name).
    std::map<std::pair<std::uint32_t, TraceNameId>, std::vector<SimNs>>
        open;
    // Open async spans by (flowId, name).
    std::map<std::pair<std::uint64_t, TraceNameId>, SimNs> openAsync;
    std::uint64_t unmatched = 0;

    for (const TraceEvent &ev : snapshot()) {
        const auto key = std::make_pair(
            static_cast<unsigned>(ev.cat), ev.name);
        switch (ev.phase) {
          case TracePhase::Begin:
            open[{ev.track, ev.name}].push_back(ev.ts);
            break;
          case TracePhase::End: {
            auto it = open.find({ev.track, ev.name});
            if (it == open.end() || it->second.empty()) {
                // Its Begin fell off the ring (or never happened).
                ++unmatched;
                break;
            }
            spans[key].record(ev.ts - it->second.back());
            it->second.pop_back();
            break;
          }
          case TracePhase::AsyncBegin:
            openAsync[{ev.flowId, ev.name}] = ev.ts;
            break;
          case TracePhase::AsyncEnd: {
            auto it = openAsync.find({ev.flowId, ev.name});
            if (it == openAsync.end()) {
                ++unmatched;
                break;
            }
            spans[key].record(ev.ts - it->second);
            openAsync.erase(it);
            break;
          }
          case TracePhase::Instant:
          case TracePhase::AsyncInstant:
            break;
        }
    }

    std::uint64_t still_open = unmatched;
    for (const auto &[key, stack] : open)
        still_open += stack.size();
    still_open += openAsync.size();

    // Sort rows by (category name, span name) for a stable report.
    std::vector<std::string> rows;
    for (const auto &[key, hist] : spans) {
        rows.push_back(detail::format(
            "[%-11s] %-24s %s",
            spanCatToString(static_cast<SpanCat>(key.first)),
            nameOf(key.second).c_str(), hist.summary().c_str()));
    }
    std::sort(rows.begin(), rows.end());

    std::string out = "=== trace latency report ===\n";
    out += detail::format(
        "events=%llu held=%zu dropped=%llu unmatched_or_open=%llu\n",
        (unsigned long long)total, held, (unsigned long long)dropped(),
        (unsigned long long)still_open);
    for (const std::string &line : rows) {
        out += line;
        out += '\n';
    }
    return out;
}

} // namespace elisa::sim
