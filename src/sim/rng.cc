#include "sim/rng.hh"

#include <cmath>

namespace elisa::sim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    // A zero state would be absorbing; splitmix64 cannot emit four zero
    // outputs in a row, so this expansion is always safe.
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = (__uint128_t)next() * bound;
    std::uint64_t lo = (std::uint64_t)m;
    if (lo < bound) {
        std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            m = (__uint128_t)next() * bound;
            lo = (std::uint64_t)m;
        }
    }
    return (std::uint64_t)(m >> 64);
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace elisa::sim
