#include "sim/engine.hh"

#include "base/logging.hh"

namespace elisa::sim
{

void
Engine::add(Actor *actor)
{
    panic_if(actor == nullptr, "null actor");
    active.push_back(actor);
}

void
Engine::clear()
{
    active.clear();
}

void
Engine::setSampler(SimNs period_ns, std::function<void(SimNs)> fn)
{
    if (period_ns == 0 || !fn) {
        samplePeriod = 0;
        nextSample = 0;
        sampler = nullptr;
        return;
    }
    samplePeriod = period_ns;
    nextSample = period_ns;
    sampler = std::move(fn);
}

std::uint64_t
Engine::run(SimNs horizon_ns)
{
    std::uint64_t steps = 0;
    while (!active.empty()) {
        // Pick the actor with the smallest local clock. The population
        // is small (tens of vCPUs at most), so a linear scan beats the
        // bookkeeping of a priority queue with mutable keys.
        std::size_t best = 0;
        SimNs best_now = active[0]->actorNow();
        for (std::size_t i = 1; i < active.size(); ++i) {
            const SimNs now = active[i]->actorNow();
            if (now < best_now) {
                best = i;
                best_now = now;
            }
        }

        if (best_now >= horizon_ns)
            break;

        // The minimum clock is the causal frontier: every sample
        // boundary at or below it is final (no actor can still add
        // work before it), so fire those now, in order.
        while (samplePeriod && best_now >= nextSample) {
            sampler(nextSample);
            nextSample += samplePeriod;
        }

        Actor *actor = active[best];
        const bool more = actor->step();
        panic_if(actor->actorNow() < best_now,
                 "actor ran backwards in time");
        ++steps;

        if (!more) {
            active[best] = active.back();
            active.pop_back();
        }
    }
    return steps;
}

} // namespace elisa::sim
