#include "sim/engine.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <utility>

#include "base/logging.hh"

namespace elisa::sim
{

namespace
{

/**
 * Identity of the engine item executing on this host thread, so
 * Engine::post() can learn the posting shard and the scheduled time
 * of the posting item without threading them through every actor.
 * Saved/restored around batches, so engines nested inside a step
 * (none today) would not corrupt the outer context.
 */
struct ExecCtx
{
    const void *engine = nullptr;
    ShardId shard = 0;
    SimNs itemTime = 0;
};

thread_local ExecCtx *tlsExecCtx = nullptr;

} // anonymous namespace

Engine::Engine()
{
    if (const char *env = std::getenv("ELISA_SIM_THREADS")) {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed <= 1024) {
            threadCount = static_cast<unsigned>(parsed);
        } else {
            warn("ignoring malformed ELISA_SIM_THREADS='%s'", env);
        }
    }
}

RegId
Engine::add(Actor *actor, ShardId shard)
{
    panic_if(actor == nullptr, "null actor");
    panic_if(running, "Engine::add during run()");
    panic_if(shard >= 65536, "shard id %u out of range", shard);
    while (shards.size() <= shard)
        shards.push_back(std::make_unique<Shard>());
    const RegId reg = static_cast<RegId>(entries.size());
    entries.push_back(
        Entry{actor, shard, actor->actorNow(), 0, true});
    ++shards[shard]->alive;
    return reg;
}

void
Engine::clear()
{
    panic_if(running, "Engine::clear during run()");
    entries.clear();
    shards.clear();
    // Restart the sampler series: a reused Engine must fire its first
    // sample one period into the new run, not wherever the previous
    // population left nextSample.
    nextSample = samplePeriod;
}

void
Engine::setThreads(unsigned n)
{
    panic_if(running, "Engine::setThreads during run()");
    threadCount = n;
}

void
Engine::setLookahead(SimNs lookahead_ns)
{
    panic_if(running, "Engine::setLookahead during run()");
    panic_if(lookahead_ns == 0,
             "lookahead must be >= 1 ns (a zero-latency cross-shard "
             "interaction can land in the destination's present)");
    lookaheadNs = lookahead_ns;
}

void
Engine::setSampler(SimNs period_ns, std::function<void(SimNs)> fn)
{
    panic_if(running, "Engine::setSampler during run()");
    if (period_ns == 0 || !fn) {
        samplePeriod = 0;
        nextSample = 0;
        sampler = nullptr;
        return;
    }
    samplePeriod = period_ns;
    nextSample = period_ns;
    sampler = std::move(fn);
}

std::size_t
Engine::runnable() const
{
    std::size_t alive = 0;
    for (const auto &sh : shards)
        alive += sh->alive;
    return alive;
}

std::uint64_t
Engine::delivered() const
{
    std::uint64_t events = 0;
    for (const auto &sh : shards)
        events += sh->deliveredEvents;
    return events;
}

// ---- shard heap: min by (cachedNow, registration id) ---------------

bool
Engine::heapBefore(RegId a, RegId b) const
{
    const SimNs ta = entries[a].cachedNow;
    const SimNs tb = entries[b].cachedNow;
    if (ta != tb)
        return ta < tb;
    return a < b;
}

void
Engine::siftUp(Shard &sh, std::uint32_t pos)
{
    const RegId moving = sh.heap[pos];
    while (pos > 0) {
        const std::uint32_t parent = (pos - 1) / 2;
        if (!heapBefore(moving, sh.heap[parent]))
            break;
        sh.heap[pos] = sh.heap[parent];
        entries[sh.heap[pos]].heapPos = pos;
        pos = parent;
    }
    sh.heap[pos] = moving;
    entries[moving].heapPos = pos;
}

void
Engine::siftDown(Shard &sh, std::uint32_t pos)
{
    const std::uint32_t size = static_cast<std::uint32_t>(sh.heap.size());
    const RegId moving = sh.heap[pos];
    for (;;) {
        std::uint32_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size &&
            heapBefore(sh.heap[child + 1], sh.heap[child])) {
            ++child;
        }
        if (!heapBefore(sh.heap[child], moving))
            break;
        sh.heap[pos] = sh.heap[child];
        entries[sh.heap[pos]].heapPos = pos;
        pos = child;
    }
    sh.heap[pos] = moving;
    entries[moving].heapPos = pos;
}

void
Engine::heapRemoveTop(Shard &sh)
{
    const RegId last = sh.heap.back();
    sh.heap.pop_back();
    if (!sh.heap.empty()) {
        sh.heap[0] = last;
        entries[last].heapPos = 0;
        siftDown(sh, 0);
    }
}

SimNs
Engine::shardNext(Shard &sh)
{
    SimNs next = noWork;
    while (!sh.heap.empty()) {
        Entry &top = entries[sh.heap[0]];
        const SimNs now = top.actor->actorNow();
        if (now != top.cachedNow) {
            // A delivered event advanced this actor; re-key lazily.
            panic_if(now < top.cachedNow, "actor clock ran backwards");
            top.cachedNow = now;
            siftDown(sh, 0);
            continue;
        }
        if (now < runHorizon)
            next = now;
        break;
    }
    if (!sh.events.empty()) {
        const SimNs at = sh.events.top().at;
        if (at < runHorizon && at < next)
            next = at;
    }
    return next;
}

void
Engine::drainInbox(Shard &sh)
{
    if (sh.inbox.empty())
        return;
    for (Event &ev : sh.inbox)
        sh.events.push(std::move(ev));
    sh.inbox.clear();
    // A poster may be blocked on the channel bound.
    cv.notify_all();
}

void
Engine::post(ShardId dest, SimNs deliver_at, EventFn fn)
{
    ExecCtx *ctx = tlsExecCtx;
    panic_if(ctx == nullptr || ctx->engine != this,
             "Engine::post called outside a running step of this engine");
    panic_if(!fn, "null cross-shard event");
    panic_if(dest >= shards.size(), "post to unknown shard %u", dest);
    panic_if(deliver_at < ctx->itemTime + lookaheadNs,
             "post violates lookahead: deliver_at=%llu < item_time=%llu"
             " + lookahead=%llu",
             (unsigned long long)deliver_at,
             (unsigned long long)ctx->itemTime,
             (unsigned long long)lookaheadNs);

    Shard &src = *shards[ctx->shard];
    Event ev{deliver_at, ctx->shard, src.postSeq++, std::move(fn)};
    Shard &dst = *shards[dest];

    std::unique_lock<std::mutex> lock(mu);
    if (dst.owner == src.owner) {
        // Same worker owns both shards: the destination queue cannot
        // be drained concurrently (it is this thread's), so deliver
        // directly — blocking on the bound would deadlock.
        dst.events.push(std::move(ev));
    } else {
        cv.wait(lock,
                [&] { return dst.inbox.size() < channelCapacity; });
        dst.inbox.push_back(std::move(ev));
    }
    // Authoritative frontier update: anyone computing the global
    // minimum after this sees the destination's new obligation.
    if (deliver_at < runHorizon && deliver_at < dst.nextTime)
        dst.nextTime = deliver_at;
    cv.notify_all();
}

void
Engine::executeBatch(ShardId sid, SimNs safe)
{
    Shard &sh = *shards[sid];
    ExecCtx ctx{this, sid, 0};
    ExecCtx *previous = tlsExecCtx;
    tlsExecCtx = &ctx;

    for (;;) {
        // Earliest pending event.
        const SimNs eventAt =
            sh.events.empty() ? noWork : sh.events.top().at;

        // Earliest actor, lazily re-keyed (an event just delivered
        // may have advanced an actor's clock past its cached key).
        SimNs actorAt = noWork;
        while (!sh.heap.empty()) {
            Entry &top = entries[sh.heap[0]];
            const SimNs now = top.actor->actorNow();
            if (now != top.cachedNow) {
                panic_if(now < top.cachedNow,
                         "actor clock ran backwards");
                top.cachedNow = now;
                siftDown(sh, 0);
                continue;
            }
            actorAt = now;
            break;
        }

        // Events deliver before steps at the same simulated time: an
        // arrival at t is observable by the actor scheduled at t.
        const bool eventFirst = eventAt <= actorAt;
        const SimNs t = eventFirst ? eventAt : actorAt;
        if (t >= safe)
            break;

        if (eventFirst) {
            // priority_queue::top() is const; moving out right before
            // pop() is safe (the queue never reads the moved-from fn).
            Event ev = std::move(const_cast<Event &>(sh.events.top()));
            sh.events.pop();
            ctx.itemTime = ev.at;
            ev.fn(ev.at);
            ++sh.deliveredEvents;
        } else {
            Entry &top = entries[sh.heap[0]];
            ctx.itemTime = t;
            const bool more = top.actor->step();
            panic_if(top.actor->actorNow() < t,
                     "actor ran backwards in time");
            ++sh.steps;
            if (!more) {
                top.alive = false;
                --sh.alive;
                heapRemoveTop(sh);
            } else {
                top.cachedNow = top.actor->actorNow();
                siftDown(sh, 0);
            }
        }
    }

    tlsExecCtx = previous;
}

void
Engine::workerLoop(unsigned w)
{
    std::vector<ShardId> mine;
    for (ShardId s = 0; s < shards.size(); ++s) {
        if (shards[s]->owner == w)
            mine.push_back(s);
    }

    std::unique_lock<std::mutex> lock(mu);
    std::vector<ShardId> work;
    while (!done) {
        // Refresh this worker's authoritative frontiers.
        for (ShardId s : mine) {
            drainInbox(*shards[s]);
            shards[s]->nextTime = shardNext(*shards[s]);
        }

        // Global causal frontier: the earliest pending work anywhere.
        SimNs gmin = noWork;
        for (const auto &sh : shards) {
            if (sh->nextTime < gmin)
                gmin = sh->nextTime;
        }
        if (gmin == noWork) {
            // Frontier updates are authoritative (posts update the
            // destination under the mutex, executing shards keep
            // their batch-start time), so "everything at/past the
            // horizon" here is global and final.
            done = true;
            cv.notify_all();
            break;
        }

        // Sample boundaries at or below the frontier are final: no
        // shard holds unexecuted work below gmin, and none will
        // execute work at or past the boundary until the cap below
        // is raised — the machine is quiescent around the callback.
        while (samplePeriod && sampler && nextSample <= gmin) {
            sampler(nextSample);
            nextSample += samplePeriod;
        }
        SimNs cap = runHorizon;
        if (samplePeriod && sampler && nextSample < cap)
            cap = nextSample;

        // Conservative window: work strictly below the frontier plus
        // lookahead can never be invalidated by a cross-shard event
        // (posts deliver at >= sender item time + lookahead, and the
        // sender's item time is >= the frontier it contributed).
        SimNs safe = lookaheadNs > noWork - gmin ? noWork
                                                 : gmin + lookaheadNs;
        if (cap < safe)
            safe = cap;

        work.clear();
        for (ShardId s : mine) {
            if (shards[s]->nextTime < safe)
                work.push_back(s);
        }
        if (work.empty()) {
            // The frontier-minimum shard's owner always has work, so
            // someone is executing and will advance gmin and notify.
            cv.wait(lock);
            continue;
        }

        lock.unlock();
        for (ShardId s : work)
            executeBatch(s, safe);
        lock.lock();
        for (ShardId s : work) {
            drainInbox(*shards[s]);
            shards[s]->nextTime = shardNext(*shards[s]);
        }
        cv.notify_all();
    }
}

std::uint64_t
Engine::run(SimNs horizon_ns)
{
    panic_if(running, "Engine::run is not reentrant");
    running = true;
    runHorizon = horizon_ns;
    done = false;

    // Rebuild the shard heaps: clocks may have advanced between
    // runs, and finished actors must not resurface.
    for (auto &sh : shards) {
        sh->heap.clear();
        sh->steps = 0;
    }
    for (RegId reg = 0; reg < entries.size(); ++reg) {
        Entry &e = entries[reg];
        if (!e.alive)
            continue;
        e.cachedNow = e.actor->actorNow();
        Shard &sh = *shards[e.shard];
        e.heapPos = static_cast<std::uint32_t>(sh.heap.size());
        sh.heap.push_back(reg);
    }
    for (auto &sh : shards) {
        if (sh->heap.size() > 1) {
            for (std::uint32_t pos =
                     static_cast<std::uint32_t>(sh->heap.size()) / 2;
                 pos-- > 0;) {
                siftDown(*sh, pos);
            }
        }
        sh->nextTime = shardNext(*sh);
    }

    unsigned want = threadCount;
    if (want == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        want = hw ? hw : 1;
    }
    workerCount = static_cast<unsigned>(
        std::min<std::size_t>(want, shards.empty() ? 1
                                                   : shards.size()));
    if (workerCount == 0)
        workerCount = 1;
    for (ShardId s = 0; s < shards.size(); ++s)
        shards[s]->owner = s % workerCount;

    std::vector<std::thread> pool;
    pool.reserve(workerCount - 1);
    for (unsigned w = 1; w < workerCount; ++w)
        pool.emplace_back(&Engine::workerLoop, this, w);
    workerLoop(0);
    for (std::thread &t : pool)
        t.join();

    running = false;
    std::uint64_t steps = 0;
    for (const auto &sh : shards)
        steps += sh->steps;
    return steps;
}

} // namespace elisa::sim
