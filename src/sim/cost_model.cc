#include "sim/cost_model.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace elisa::sim
{

namespace
{

/** Apply an integer-nanosecond env override, warning on garbage. */
void
envNs(const char *name, SimNs &field)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') {
        warn("ignoring malformed %s='%s'", name, value);
        return;
    }
    field = static_cast<SimNs>(parsed);
}

} // anonymous namespace

CostModel
CostModel::fromEnv()
{
    CostModel cost;
    envNs("ELISA_COST_VMFUNC_NS", cost.vmfuncNs);
    envNs("ELISA_COST_GATE_NS", cost.gateCodeNs);
    envNs("ELISA_COST_VMEXIT_NS", cost.vmexitNs);
    envNs("ELISA_COST_VMENTRY_NS", cost.vmentryNs);
    envNs("ELISA_COST_DISPATCH_NS", cost.hypercallDispatchNs);
    envNs("ELISA_COST_KVS_GET_NS", cost.kvsGetCoreNs);
    envNs("ELISA_COST_KVS_PUT_NS", cost.kvsPutCoreNs);
    envNs("ELISA_COST_NET_PKT_NS", cost.netPerPacketNs);
    envNs("ELISA_COST_VSWITCH_NS", cost.vswitchNs);
    envNs("ELISA_COST_PF_HANDLE_NS", cost.pageFaultHandleNs);
    envNs("ELISA_COST_SWAP_IN_NS", cost.swapInNs);
    envNs("ELISA_COST_SWAP_OUT_NS", cost.swapOutNs);
    envNs("ELISA_COST_ZERO_FILL_NS", cost.zeroFillNs);
    if (const char *gbps = std::getenv("ELISA_COST_NIC_GBPS")) {
        char *end = nullptr;
        const double parsed = std::strtod(gbps, &end);
        if (end != gbps && *end == '\0' && parsed > 0) {
            cost.nicLineRateBps = parsed * 1e9;
        } else {
            warn("ignoring malformed ELISA_COST_NIC_GBPS='%s'", gbps);
        }
    }
    return cost;
}

std::string
CostModel::summary() const
{
    return detail::format(
        "cost model: cpu=%.1fGHz vmfunc=%llu gate=%llu vmexit=%llu "
        "vmentry=%llu dispatch=%llu => elisa_rtt=%llu vmcall_rtt=%llu "
        "(ratio %.2fx), nic=%.0fGbE",
        cpuGhz,
        (unsigned long long)vmfuncNs,
        (unsigned long long)gateCodeNs,
        (unsigned long long)vmexitNs,
        (unsigned long long)vmentryNs,
        (unsigned long long)hypercallDispatchNs,
        (unsigned long long)elisaRttNs(),
        (unsigned long long)vmcallRttNs(),
        (double)vmcallRttNs() / (double)elisaRttNs(),
        nicLineRateBps / 1e9);
}

} // namespace elisa::sim
