/**
 * @file
 * SLO watchdog: deterministic burn-rate rules evaluated against
 * scraped telemetry snapshots in simulated time.
 *
 * The watchdog consumes SnapshotViews (typically the monitor guest's
 * scrape stream) and fires alerts when a rule's condition holds for
 * `burnWindow` consecutive snapshots — the classic short-window /
 * long-window burn-rate shape collapsed onto the snapshot cadence:
 * the cadence is the short window, burnWindow × cadence the long one.
 * Everything is integer/compare math over already-deterministic
 * snapshot bytes, so alert instants are byte-reproducible across runs
 * and engine thread counts; each firing emits a SpanCat::Telemetry
 * instant into the trace (arg0 = rule index, arg1 = observed value).
 *
 * Rule kinds:
 *  - CounterRateAbove: d(counter)/d(sim seconds) between consecutive
 *    snapshots exceeds threshold (page-in rate, replication lag ops).
 *  - GaugeAbove: gauge sample exceeds threshold (queue depth, frames).
 *  - HistP99Above: a histogram sample's materialized p99 exceeds
 *    threshold ns (gate-call p99).
 */

#ifndef ELISA_SIM_SLO_HH
#define ELISA_SIM_SLO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/telemetry.hh"
#include "sim/tracer.hh"

namespace elisa::sim
{

/** What a rule compares. */
enum class SloKind : std::uint8_t
{
    CounterRateAbove, ///< events per simulated second
    GaugeAbove,       ///< raw gauge value
    HistP99Above,     ///< histogram p99 (ns)
};

/** One burn-rate rule. */
struct SloRule
{
    std::string name;     ///< alert name (report/trace annotation)
    SloKind kind = SloKind::GaugeAbove;
    std::string family;   ///< sample family to match (sanitized form)
    std::string labelStr; ///< rendered label string ("" = unlabeled)
    double threshold = 0; ///< breach when observed > threshold
    unsigned burnWindow = 1; ///< consecutive breaches before firing
};

class SloWatchdog
{
  public:
    /**
     * @param tracer optional alert-instant sink; @p track the lane
     *        alerts are emitted on (by convention the monitor vCPU).
     */
    explicit SloWatchdog(Tracer *tracer = nullptr,
                         std::uint32_t track = 0);

    /** Add a rule; returns its index (arg0 of its alert instants). */
    std::size_t addRule(SloRule rule);

    /**
     * Evaluate every rule against @p snap. Snapshots must arrive in
     * nondecreasing sim_ns order. Returns how many alerts fired at
     * this snapshot. A rule re-arms after any non-breaching snapshot.
     */
    unsigned evaluate(const SnapshotView &snap);

    /** One fired alert. */
    struct Alert
    {
        std::string rule;
        SimNs ns = 0;
        double value = 0;
    };

    const std::vector<Alert> &alerts() const { return firedAlerts; }

    /** Snapshots evaluated so far. */
    std::uint64_t evaluations() const { return evalCount; }

    /** Deterministic text summary (one line per alert). */
    std::string report() const;

  private:
    struct RuleState
    {
        SloRule rule;
        bool havePrev = false;
        std::uint64_t prevCounter = 0;
        SimNs prevNs = 0;
        unsigned breaches = 0; ///< consecutive breaching snapshots
        bool firing = false;   ///< fired and not yet re-armed
    };

    Tracer *tracerPtr;
    std::uint32_t alertTrack;
    TraceNameId alertName = 0;
    std::uint64_t tracerSerial = 0;
    std::vector<RuleState> rules;
    std::vector<Alert> firedAlerts;
    std::uint64_t evalCount = 0;
};

} // namespace elisa::sim

#endif // ELISA_SIM_SLO_HH
