/**
 * @file
 * Conservative multi-actor discrete-event engine.
 *
 * Each actor owns a SimClock and performs one bounded unit of work per
 * step() call (e.g., one KVS operation, one packet). The engine always
 * steps the actor with the smallest clock, so any interaction through
 * SimLock / SimResource observes a causally consistent simulated
 * timeline: nobody can retroactively occupy a resource in another
 * actor's past.
 */

#ifndef ELISA_SIM_ENGINE_HH
#define ELISA_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.hh"

namespace elisa::sim
{

/**
 * Interface of an entity driven by the Engine.
 */
class Actor
{
  public:
    virtual ~Actor() = default;

    /** Current local simulated time. */
    virtual SimNs actorNow() const = 0;

    /**
     * Perform one unit of work, advancing the local clock.
     * @return false when the actor has no more work (it is then
     *         removed from scheduling for the rest of the run).
     */
    virtual bool step() = 0;
};

/**
 * The scheduler. Actors are registered (not owned), then run() drives
 * them until everyone finishes or the horizon is reached.
 */
class Engine
{
  public:
    /** Register an actor; the caller keeps ownership. */
    void add(Actor *actor);

    /** Drop all registered actors. */
    void clear();

    /**
     * Run until every actor finished or all remaining actors' clocks
     * passed @p horizon_ns. Actors whose clock exceeds the horizon stop
     * being stepped but are not asked to finish.
     *
     * @return total number of step() calls issued.
     */
    std::uint64_t run(SimNs horizon_ns = ~SimNs{0});

    /** Number of actors still runnable after the last run(). */
    std::size_t runnable() const { return active.size(); }

    /**
     * Install a periodic simulated-time sampler: before stepping an
     * actor whose clock has crossed the next multiple of @p period_ns,
     * run() invokes @p fn with that boundary. The callback fires once
     * per boundary in strictly increasing order (boundaries the whole
     * population skipped over are each still fired — a time series
     * never has holes), and because the minimum clock drives it, no
     * actor can later perform work at a simulated time before a sample
     * that already fired. A null @p fn (or period 0) uninstalls.
     * Pair it with MetricsCsvSampler for metrics snapshots.
     */
    void setSampler(SimNs period_ns, std::function<void(SimNs)> fn);

  private:
    std::vector<Actor *> active;
    SimNs samplePeriod = 0;
    SimNs nextSample = 0;
    std::function<void(SimNs)> sampler;
};

} // namespace elisa::sim

#endif // ELISA_SIM_ENGINE_HH
