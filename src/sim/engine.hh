/**
 * @file
 * Conservative multi-actor discrete-event engine, sharded and
 * (optionally) parallel.
 *
 * Each actor owns a SimClock and performs one bounded unit of work per
 * step() call (e.g., one KVS operation, one packet). Actors are
 * partitioned into *shards*: everything that interacts through shared
 * mutable state (SimLock, SimResource, a common hypervisor) must live
 * in one shard. Within a shard the engine always steps the actor with
 * the smallest (clock, registration-id) key, so any interaction
 * through SimLock / SimResource observes a causally consistent
 * simulated timeline: nobody can retroactively occupy a resource in
 * another actor's past, and equal-clock ties always resolve in
 * registration order regardless of which actors finished earlier.
 *
 * Across shards the engine is a conservative parallel DES in the
 * Chandy–Misra–Bryant tradition: shards only communicate through a
 * bounded inter-shard event channel (post()) whose minimum latency is
 * the engine *lookahead* (derive it from the cost model's minimum
 * cross-shard event latency, CostModel::minCrossShardLatencyNs()).
 * A shard may therefore run ahead of the global causal frontier by up
 * to the lookahead without ever observing an event from its past.
 * Cross-shard events merge in a fixed (time, source-shard, source
 * sequence) order, so the simulated timeline — and every exporter
 * byte derived from it — is identical for any thread count,
 * including one.
 */

#ifndef ELISA_SIM_ENGINE_HH
#define ELISA_SIM_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "base/types.hh"

namespace elisa::sim
{

/** Registration id of an actor within an Engine (add() order). */
using RegId = std::uint32_t;

/**
 * Interface of an entity driven by the Engine.
 */
class Actor
{
  public:
    virtual ~Actor() = default;

    /** Current local simulated time. */
    virtual SimNs actorNow() const = 0;

    /**
     * Perform one unit of work, advancing the local clock.
     *
     * During a parallel run, step() executes on the host thread that
     * owns the actor's shard; it may freely touch state shared with
     * other actors of the *same* shard, and may reach other shards
     * only through Engine::post().
     *
     * @return false when the actor has no more work (it is then
     *         removed from scheduling for the rest of the run).
     */
    virtual bool step() = 0;
};

/**
 * The scheduler. Actors are registered (not owned) into shards, then
 * run() drives them until everyone finishes or the horizon is
 * reached, on up to setThreads() host threads (one per shard at
 * most). Results are byte-deterministic in the thread count.
 */
class Engine
{
  public:
    /** Delivered cross-shard event: fn(deliver_time). */
    using EventFn = std::function<void(SimNs)>;

    /** Inter-shard channel capacity (pending events per shard). */
    static constexpr std::size_t channelCapacity = 4096;

    /**
     * Thread count defaults to the ELISA_SIM_THREADS environment
     * variable when set (0 means "hardware concurrency"), else 1.
     */
    Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Register an actor into @p shard; the caller keeps ownership.
     * Actors that interact through shared state (SimLock,
     * SimResource, one hypervisor's VMs) must share a shard.
     * @return the actor's registration id (the scheduling tie-break).
     */
    RegId add(Actor *actor, ShardId shard = 0);

    /**
     * Drop all registered actors and undelivered cross-shard events,
     * and rewind the sampler bookkeeping to the start of its series
     * (the next boundary is one full period after time zero again),
     * so a reused Engine never back-dates or skips samples.
     */
    void clear();

    /**
     * Number of worker threads run() may use. The effective count is
     * capped by the number of shards; @p n == 0 selects the host's
     * hardware concurrency. Thread count never changes results.
     */
    void setThreads(unsigned n);

    /** Configured worker-thread count (0 = hardware concurrency). */
    unsigned threads() const { return threadCount; }

    /**
     * Minimum simulated latency of any cross-shard interaction, in
     * nanoseconds (>= 1). Every post() must deliver at least this far
     * after the sending step's scheduled time; in exchange, shards
     * may safely run ahead of the global frontier by this amount.
     * Derive it from CostModel::minCrossShardLatencyNs().
     */
    void setLookahead(SimNs lookahead_ns);

    /** Current lookahead in nanoseconds. */
    SimNs lookahead() const { return lookaheadNs; }

    /**
     * Send a cross-shard event: @p fn runs on shard @p dest's owning
     * thread once that shard's execution reaches @p deliver_at, after
     * all of the shard's work strictly before @p deliver_at and
     * before its work at or after it. Events with equal delivery time
     * merge in (source shard, source sequence) order — fixed at
     * registration/post time, never by host-thread timing.
     *
     * Only callable from within a step() or a delivered event, with
     * deliver_at >= (current item's scheduled time + lookahead); any
     * earlier delivery could land in the destination's past and
     * panics. The channel is bounded (channelCapacity); a poster
     * blocks until the destination drains when it is full.
     *
     * The callback must touch only destination-shard state (it runs
     * concurrently with every other shard).
     */
    void post(ShardId dest, SimNs deliver_at, EventFn fn);

    /**
     * Run until every actor finished or all remaining work (actor
     * steps and pending events) lies at or past @p horizon_ns. Actors
     * whose clock exceeds the horizon stop being stepped but are not
     * asked to finish; undelivered events at or past the horizon stay
     * queued for a later run().
     *
     * @return total number of step() calls issued by this run.
     */
    std::uint64_t run(SimNs horizon_ns = ~SimNs{0});

    /** Number of actors still runnable after the last run(). */
    std::size_t runnable() const;

    /** Cross-shard events delivered over the engine's lifetime. */
    std::uint64_t delivered() const;

    /** Number of shards (highest shard id registered + 1). */
    std::size_t shardCount() const { return shards.size(); }

    /**
     * Install a periodic simulated-time sampler: once every pending
     * unit of work lies at or past the next multiple of @p period_ns
     * (and at least one such unit below the horizon remains), run()
     * invokes @p fn with that boundary before executing any of it.
     * The callback fires once per boundary in strictly increasing
     * order (boundaries the whole population skipped over are each
     * still fired — a time series never has holes), and because the
     * global causal frontier drives it, no actor in any shard can
     * later perform work at a simulated time before a sample that
     * already fired: all shards are provably quiescent below the
     * boundary while @p fn runs, so it may read cross-shard state.
     * A null @p fn (or period 0) uninstalls. Pair it with
     * MetricsCsvSampler for metrics snapshots.
     */
    void setSampler(SimNs period_ns, std::function<void(SimNs)> fn);

  private:
    /** "No pending work below the horizon" frontier sentinel. */
    static constexpr SimNs noWork = ~SimNs{0};

    /** One cross-shard event in flight or pending delivery. */
    struct Event
    {
        SimNs at = 0;       ///< delivery time
        ShardId src = 0;    ///< posting shard (merge order, 2nd key)
        std::uint64_t seq = 0; ///< post order within src (3rd key)
        EventFn fn;

        bool
        after(const Event &o) const
        {
            if (at != o.at)
                return at > o.at;
            if (src != o.src)
                return src > o.src;
            return seq > o.seq;
        }
    };

    struct EventAfter
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.after(b);
        }
    };

    /** Registered-actor bookkeeping, indexed by RegId. */
    struct Entry
    {
        Actor *actor = nullptr;
        ShardId shard = 0;
        SimNs cachedNow = 0;        ///< heap key (<= actorNow())
        std::uint32_t heapPos = 0;  ///< position in the shard heap
        bool alive = false;
    };

    /** Per-shard scheduling state. Heap/queue are owner-thread only. */
    struct Shard
    {
        std::vector<RegId> heap; ///< min-heap by (cachedNow, reg)
        std::priority_queue<Event, std::vector<Event>, EventAfter>
            events;              ///< delivery-ordered pending events
        std::vector<Event> inbox; ///< cross-worker handoff (mutex)
        SimNs nextTime = noWork; ///< authoritative frontier (mutex)
        unsigned owner = 0;      ///< owning worker index (this run)
        std::uint64_t steps = 0; ///< step() calls this run
        std::uint64_t deliveredEvents = 0; ///< lifetime deliveries
        std::uint64_t postSeq = 0; ///< outgoing event sequence
        std::size_t alive = 0;   ///< registered, unfinished actors
    };

    // Heap primitives (owner-thread only).
    bool heapBefore(RegId a, RegId b) const;
    void siftUp(Shard &sh, std::uint32_t pos);
    void siftDown(Shard &sh, std::uint32_t pos);
    void heapRemoveTop(Shard &sh);

    /**
     * Refresh the heap top's cached key against the live clock (an
     * event callback may have advanced an actor), then return the
     * shard's earliest pending work below the horizon, or noWork.
     */
    SimNs shardNext(Shard &sh);

    /** Move inbox events (mutex held) into the delivery queue. */
    void drainInbox(Shard &sh);

    /**
     * Execute every item of @p sh scheduled strictly before @p safe:
     * pending events first at equal times, then actor steps, all in
     * (time, tie-break) order. Lock-free except post() calls made by
     * the items themselves.
     */
    void executeBatch(ShardId sid, SimNs safe);

    /** Worker @p w body: drains, schedules, executes, terminates. */
    void workerLoop(unsigned w);

    std::vector<Entry> entries;
    std::vector<std::unique_ptr<Shard>> shards;

    SimNs samplePeriod = 0;
    SimNs nextSample = 0;
    std::function<void(SimNs)> sampler;

    unsigned threadCount = 1;
    SimNs lookaheadNs = 1;

    // ---- state of the run in progress ------------------------------
    std::mutex mu;
    std::condition_variable cv;
    bool running = false;
    bool done = false;
    unsigned workerCount = 1;
    SimNs runHorizon = ~SimNs{0};
};

} // namespace elisa::sim

#endif // ELISA_SIM_ENGINE_HH
