/**
 * @file
 * Per-{vm, vcpu, cost-kind, code} simulated-cycle ledger.
 *
 * The ELISA paper's headline numbers are *accounting* claims: VM exits
 * cost vmcall-path networking ~49 % of its direct-mapped throughput,
 * and one gate round-trip spends ~196 ns across four EPTP switches and
 * two gate-code legs vs VMCALL's 699 ns exit/dispatch/entry. The
 * ExitLedger turns those decompositions into single API calls: every
 * simulated nanosecond a vCPU spends on a world switch is charged to a
 * dense slot keyed by (vm, vcpu, kind, code), where code is the
 * ExitReason, hypercall number, or gate-leg index depending on kind.
 *
 * Cost discipline (mirrors sim::Tracer / sim::FaultPlan): subsystems
 * hold a nullable ExitLedger pointer; an absent ledger costs one
 * pointer test per charge point. Slot resolution is the only
 * map-keyed operation and is cached per site, guarded by serial()
 * exactly like TraceNameCache, so the enabled hot path is two array
 * additions.
 *
 * Layering: like Tracer, this file knows nothing about vCPUs or the
 * hypervisor — callers pass plain ids; pretty names for codes are
 * registered separately (setCodeName) and only used by report().
 */

#ifndef ELISA_SIM_EXIT_LEDGER_HH
#define ELISA_SIM_EXIT_LEDGER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/histogram.hh"

namespace elisa::sim
{

/** What family of world-switch cost a charge belongs to. */
enum class CostKind : std::uint8_t
{
    Exit,      ///< faulting VM exit (code = cpu::ExitReason)
    Hypercall, ///< synchronous VMCALL (code = hypercall number)
    GateLeg,   ///< one leg of an ELISA gate call (code = leg index)
    Page,      ///< demand-paging work (code = PageCost value)
};

/** Number of CostKind values (per-kind totals tables). */
inline constexpr unsigned costKindCount = 4;

/** Codes of CostKind::Page rows. */
enum class PageCost : std::uint32_t
{
    PageIn = 0,   ///< fault handler + swap-device read
    PageOut = 1,  ///< eviction: swap-device write of a victim page
    ZeroFill = 2, ///< fault handler + zero-fill of a demand-zero page
};

/** Render a cost kind. */
const char *costKindToString(CostKind kind);

/** Dense handle of one (vm, vcpu, kind, code) ledger row. */
using LedgerSlot = std::uint32_t;

/**
 * The ledger. Rows are created on first slot() resolution and live for
 * the ledger's lifetime; charge()/observe() are array operations.
 */
class ExitLedger
{
  public:
    ExitLedger();

    /**
     * Resolve (or create) the row for (@p vm, @p vcpu, @p kind,
     * @p code). Map-keyed — cache the result per site
     * (LedgerSlotCache) instead of calling per event.
     */
    LedgerSlot slot(std::uint32_t vm, std::uint32_t vcpu, CostKind kind,
                    std::uint32_t code);

    // ---- hot path (callers null-check the ExitLedger*) -------------
    /** Charge one event of @p ns simulated time to @p slot. */
    void
    charge(LedgerSlot slot, SimNs ns)
    {
        Row &row = rowTable[slot];
        row.events += 1;
        row.ns += ns;
    }

    /** Charge @p events identical events of @p ns each. */
    void
    chargeN(LedgerSlot slot, SimNs ns, std::uint64_t events)
    {
        Row &row = rowTable[slot];
        row.events += events;
        row.ns += ns * events;
    }

    /**
     * Charge one event and record @p ns into the row's duration
     * histogram (gate legs use this; the histogram backs the
     * 196 ns-round-trip report).
     */
    void
    observe(LedgerSlot slot, SimNs ns)
    {
        Row &row = rowTable[slot];
        row.events += 1;
        row.ns += ns;
        row.durations.record(ns);
    }

    /**
     * Process-unique id of this ledger instance; per-site slot caches
     * key on it instead of the object address (see Tracer::serial).
     */
    std::uint64_t serial() const { return serialNum; }

    /**
     * Register a pretty name for (@p kind, @p code), used by report();
     * unnamed codes render numerically. Idempotent (last wins).
     */
    void setCodeName(CostKind kind, std::uint32_t code,
                     std::string name);

    // ---- queries ----------------------------------------------------
    /** One materialized row (tests / reports). */
    struct Row
    {
        std::uint32_t vm = 0;
        std::uint32_t vcpu = 0;
        CostKind kind = CostKind::Exit;
        std::uint32_t code = 0;
        std::uint64_t events = 0;
        SimNs ns = 0;
        Histogram durations{6, 1ull << 32};
    };

    /** All rows, in slot order (creation order). */
    const std::vector<Row> &rows() const { return rowTable; }

    /** Total ns charged across every row. */
    SimNs totalNs() const;

    /** Total ns charged to rows of @p kind. */
    SimNs kindNs(CostKind kind) const;

    /** Total ns charged to rows of VM @p vm. */
    SimNs vmNs(std::uint32_t vm) const;

    /** Total events charged across every row. */
    std::uint64_t totalEvents() const;

    /** The registered name of (@p kind, @p code), or "" when unset. */
    const std::string &codeName(CostKind kind,
                                std::uint32_t code) const;

    /**
     * Printable per-row cost table: rows sorted by
     * (vm, vcpu, kind, code) with events, ns and share of the ledger
     * total (integer permille math — byte-deterministic), followed by
     * per-kind totals. Gate-leg rows append their duration summary.
     */
    std::string report() const;

    /** Forget all charges; rows, slots and code names are kept. */
    void clear();

  private:
    /** Pack a row identity into the interning key. */
    static std::uint64_t key(std::uint32_t vm, std::uint32_t vcpu,
                             CostKind kind, std::uint32_t code);

    std::uint64_t serialNum;
    std::map<std::uint64_t, LedgerSlot> index;
    std::vector<Row> rowTable;
    std::map<std::uint64_t, std::string> codeNames;
};

/**
 * Per-site cache of one resolved slot for a fixed (vm, vcpu, kind,
 * code) tuple, guarded by the ledger's serial. Sites whose code varies
 * per event (hypercall numbers) keep a small map beside the serial
 * guard instead.
 */
class LedgerSlotCache
{
  public:
    LedgerSlot
    get(ExitLedger &ledger, std::uint32_t vm, std::uint32_t vcpu,
        CostKind kind, std::uint32_t code)
    {
        if (owner != ledger.serial()) {
            id = ledger.slot(vm, vcpu, kind, code);
            owner = ledger.serial();
        }
        return id;
    }

  private:
    std::uint64_t owner = 0; ///< serial() of the resolving ledger
    LedgerSlot id = 0;
};

} // namespace elisa::sim

#endif // ELISA_SIM_EXIT_LEDGER_HH
