/**
 * @file
 * Telemetry publication layer: versioned, byte-deterministic snapshot
 * serialization of the observability state (Metrics registry,
 * ExitLedger rows, Tracer tail) plus the seqlock-style double-buffered
 * region layout those snapshots are published through.
 *
 * The paper's thesis applied to observability: instead of the host
 * pushing metrics out-of-band, a *monitor guest* scrapes them over the
 * same exit-less shared-memory mechanism the data plane uses
 * (hv::TelemetryPublisher writes the region; guest::MonitorGuest
 * scrapes it over an ELISA gate, a VMCALL marshalling service, or an
 * ivshmem window — three schemes, one wire format).
 *
 * Wire format (all little-endian, integer-only):
 *
 *   SnapshotHeader (32 bytes)
 *     u32 magic      'ELTS'
 *     u16 version    snapshotVersion
 *     u16 sections   section count
 *     u64 seq        publication sequence number
 *     u64 sim_ns     publication instant
 *     u32 total      whole snapshot size incl. header
 *     u32 checksum   FNV-1a over payload bytes [32, total)
 *   then per section: { u32 tag; u32 bytes; payload }
 *
 * Sections (a consumer skips tags it does not know):
 *   Metrics — flattened sim::ExportSamples (histograms already
 *     materialized to HistSummary), so SnapshotView::prometheus() /
 *     csvRow() re-render through the exact renderers the host-side
 *     Metrics exporters use: byte-identical by construction.
 *   Ledger  — (vm, vcpu, kind, code, events, ns) rows in slot order.
 *   Trace   — the most recent N tracer events with a compact local
 *     name table (first-appearance order).
 *
 * Region layout (TelemetryRegionLayout): a 64-byte header with a
 * seqlock word and two snapshot slots. The writer serializes into the
 * inactive slot, then seq++ (odd) / flip active / seq++ (even); a
 * reader snapshots seq, copies the active slot, re-reads seq and
 * retries on any change. The protocol is lock-free for the reader and
 * wait-free for the writer — no exit, no hypercall, exactly the
 * shared-access story the paper tells.
 */

#ifndef ELISA_SIM_TELEMETRY_HH
#define ELISA_SIM_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/exit_ledger.hh"
#include "sim/metrics.hh"
#include "sim/tracer.hh"

namespace elisa::sim
{

// ---- snapshot wire format ------------------------------------------

/** 'ELTS' — first word of every serialized snapshot. */
inline constexpr std::uint32_t snapshotMagic = 0x53544C45u;

/** Bumped on any incompatible layout change. */
inline constexpr std::uint16_t snapshotVersion = 1;

/** Section tags (u32 on the wire). */
enum class SnapshotSection : std::uint32_t
{
    Metrics = 1,
    Ledger = 2,
    Trace = 3,
};

/** Fixed header size in bytes. */
inline constexpr std::size_t snapshotHeaderBytes = 32;

/**
 * What a snapshot is built from. Null members simply omit their
 * section (same nullable-pointer discipline as Tracer/ExitLedger
 * installation).
 */
struct TelemetrySources
{
    const Metrics *metrics = nullptr;
    const ExitLedger *ledger = nullptr;
    const Tracer *tracer = nullptr;
};

/**
 * Serialize one snapshot. Deterministic: the same source state, @p seq
 * and @p now always produce the same bytes.
 *
 * @param trace_tail_events cap on how many of the tracer's most
 *        recent events are included (0 = omit the section even when a
 *        tracer is present).
 */
std::vector<std::uint8_t>
serializeTelemetrySnapshot(const TelemetrySources &sources,
                           std::uint64_t seq, SimNs now,
                           std::size_t trace_tail_events = 256);

/** FNV-1a 32-bit (the snapshot checksum). */
std::uint32_t telemetryChecksum(const std::uint8_t *data,
                                std::size_t len);

/**
 * Parsed snapshot. parse() validates magic, version, bounds and
 * checksum before touching any section; a failed parse leaves the
 * view empty with error() describing the rejection (a scraper that
 * raced a publication retries instead of consuming torn bytes —
 * though the seqlock already makes that unreachable in practice).
 */
class SnapshotView
{
  public:
    /** One deserialized ledger row (no histogram on the wire). */
    struct LedgerRow
    {
        std::uint32_t vm = 0;
        std::uint32_t vcpu = 0;
        CostKind kind = CostKind::Exit;
        std::uint32_t code = 0;
        std::uint64_t events = 0;
        SimNs ns = 0;
    };

    /** One deserialized trace-tail event (name resolved to text). */
    struct TraceTailEvent
    {
        SimNs ts = 0;
        std::uint64_t arg0 = 0;
        std::uint64_t arg1 = 0;
        std::uint64_t flowId = 0;
        std::uint32_t track = 0;
        std::string name;
        SpanCat cat = SpanCat::Cpu;
        TracePhase phase = TracePhase::Instant;
    };

    /** Parse @p len bytes; false (and error()) on any malformation. */
    bool parse(const std::uint8_t *data, std::size_t len);

    bool ok() const { return parsed; }
    const std::string &error() const { return parseError; }

    std::uint64_t seq() const { return seqNum; }
    SimNs simNs() const { return snapNs; }
    std::uint32_t totalBytes() const { return total; }

    bool hasMetrics() const { return sawMetrics; }
    bool hasLedger() const { return sawLedger; }
    bool hasTrace() const { return sawTrace; }

    const std::vector<ExportSample> &samples() const { return metricSamples; }
    const std::vector<LedgerRow> &ledgerRows() const { return rows; }
    const std::vector<TraceTailEvent> &traceTail() const { return tail; }

    /** Tracer lifetime counters carried for drop diagnostics. */
    std::uint64_t traceEmitted() const { return trEmitted; }
    std::uint64_t traceDropped() const { return trDropped; }

    // ---- re-export (the monitor guest's output) --------------------
    /** renderPrometheus over the deserialized samples. */
    std::string prometheus() const;

    /** renderMetricsCsvHeader over the deserialized samples. */
    std::string csvHeader() const;

    /** renderMetricsCsvRow at this snapshot's sim_ns. */
    std::string csvRow() const;

  private:
    bool fail(std::string why);

    bool parsed = false;
    std::string parseError;
    std::uint64_t seqNum = 0;
    SimNs snapNs = 0;
    std::uint32_t total = 0;
    bool sawMetrics = false;
    bool sawLedger = false;
    bool sawTrace = false;
    std::vector<ExportSample> metricSamples;
    std::vector<LedgerRow> rows;
    std::vector<TraceTailEvent> tail;
    std::uint64_t trEmitted = 0;
    std::uint64_t trDropped = 0;
};

// ---- publication region layout -------------------------------------

/**
 * Byte offsets of the seqlock-fronted double-buffered publication
 * region. Shared by the writer (hv::TelemetryPublisher, host-side
 * stores) and every reader path (gate sub-functions, the VMCALL
 * marshalling service, direct ivshmem loads) so there is exactly one
 * definition of the layout.
 */
struct TelemetryRegionLayout
{
    /** 'ELTR' — first word of an initialized region. */
    static constexpr std::uint32_t magic = 0x52544C45u;

    static constexpr std::uint64_t offMagic = 0;    ///< u32
    static constexpr std::uint64_t offVersion = 4;  ///< u16
    static constexpr std::uint64_t offSeq = 8;      ///< u64 seqlock
    static constexpr std::uint64_t offActive = 16;  ///< u32 slot 0/1
    static constexpr std::uint64_t offSlotBytes = 20; ///< u32 capacity
    static constexpr std::uint64_t offLen0 = 24;    ///< u32 slot-0 len
    static constexpr std::uint64_t offLen1 = 28;    ///< u32 slot-1 len
    static constexpr std::uint64_t offPubCount = 32;  ///< u64
    static constexpr std::uint64_t offLastPubNs = 40; ///< u64
    static constexpr std::uint64_t headerBytes = 64;

    /** Offset of snapshot slot @p index (0 or 1). */
    static constexpr std::uint64_t
    slotOffset(std::uint32_t index, std::uint32_t slot_bytes)
    {
        return headerBytes +
               static_cast<std::uint64_t>(index) * slot_bytes;
    }

    /** Whole-region size for a given per-slot capacity. */
    static constexpr std::uint64_t
    regionBytes(std::uint32_t slot_bytes)
    {
        return headerBytes + 2ull * slot_bytes;
    }
};

} // namespace elisa::sim

#endif // ELISA_SIM_TELEMETRY_HH
