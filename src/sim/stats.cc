#include "sim/stats.hh"

#include <cmath>

namespace elisa::sim
{

void
RunningStats::add(double x)
{
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    if (x < minV)
        minV = x;
    if (x > maxV)
        maxV = x;
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.m - m;
    const double combined = na + nb;
    m += delta * nb / combined;
    m2 += other.m2 + delta * delta * na * nb / combined;
    n += other.n;
    total += other.total;
    if (other.minV < minV)
        minV = other.minV;
    if (other.maxV > maxV)
        maxV = other.maxV;
}

StatId
StatSet::id(const std::string &name)
{
    auto it = index.find(name);
    if (it != index.end())
        return it->second;
    const StatId sid = static_cast<StatId>(values.size());
    index.emplace(name, sid);
    values.push_back(0);
    return sid;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = index.find(name);
    return it == index.end() ? 0 : values[it->second];
}

void
StatSet::clear()
{
    for (auto &v : values)
        v = 0;
}

std::map<std::string, std::uint64_t>
StatSet::all() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[name, sid] : index)
        out.emplace(name, values[sid]);
    return out;
}

} // namespace elisa::sim
