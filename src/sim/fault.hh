/**
 * @file
 * Deterministic fault injection for the simulated machine.
 *
 * A FaultPlan is a scripted + seeded description of everything that is
 * allowed to go wrong in one run: hypercalls can be dropped, delayed,
 * duplicated, or failed; a VM (guest or manager) can be killed at any
 * protocol step; gate calls can hit a stale EPTP-list entry; shared-
 * memory allocations can be exhausted or corrupted.
 *
 * Two sources of decisions, both bit-reproducible:
 *
 *  - rules: "on the Nth occurrence of hypercall X from VM Y, do Z" —
 *    exact, counted matching for protocol-step kill matrices;
 *  - chances: per-site probabilities drawn from a seeded sim::Rng —
 *    chaos testing that replays identically from the seed.
 *
 * The plan keeps an append-only event log of every injected fault, so
 * a failing run's fault schedule can be printed and replayed exactly.
 * Layering: this file knows nothing about vCPUs or the hypervisor —
 * hooks receive plain ids and the *caller* applies the decision — so
 * the subsystem sits at the bottom of the tree next to Rng and Clock.
 *
 * Cost discipline: an *absent* plan (the default) is one null-pointer
 * test on each hooked path, and a zero-fault plan draws no random
 * numbers and perturbs no clock — disabled fault hooks are free.
 */

#ifndef ELISA_SIM_FAULT_HH
#define ELISA_SIM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/rng.hh"

namespace elisa::sim
{

/** What an injected fault does to the hooked operation. */
enum class FaultAction : std::uint8_t
{
    /** No fault: proceed normally. */
    None,
    /** The message never arrives; the caller sees a failure. */
    Drop,
    /** The operation completes after an extra param nanoseconds. */
    Delay,
    /** The message is replayed: the operation runs twice. */
    Duplicate,
    /** The handler fails: the caller sees an error return. */
    Error,
    /** VM param dies at this point (guest or manager). */
    KillVm,
    /** A gate call finds its EPTP-list entry cleared (revoked). */
    GateStale,
    /** A shared-memory allocation finds no free block. */
    ShmExhaust,
    /** The shared region's header is corrupted before the operation. */
    ShmCorrupt,
    /** A capability registration finds the grant table exhausted. */
    GrantExhaust,
};

/** Render a fault action (event log / debugging). */
const char *faultActionToString(FaultAction action);

/**
 * Hook sites that consult the plan. A rule only fires at sites where
 * its action is meaningful (a GateStale rule never matches a hypercall
 * dispatch, a Drop rule never matches a shared-memory allocation), so
 * wildcard rules cannot be consumed by the wrong subsystem.
 */
enum class FaultSite : std::uint8_t
{
    Hypercall,
    Gate,
    ShmAlloc,
    AttachBuild,
    /** Grant-table registration inside a Delegate/Redeem step. */
    Capability,
    /** The pager is about to read a page from the swap device. */
    PageIn,
};

/** Wildcard for FaultRule match fields. */
inline constexpr std::uint64_t faultAny = ~std::uint64_t{0};

/**
 * One scripted fault: fires when a hook event matches every non-
 * wildcard field and the per-rule match counter reaches occurrence.
 */
struct FaultRule
{
    /**
     * Match: restrict to one hook site (a FaultSite value), or
     * faultAny to let siteAccepts() alone decide where the action is
     * meaningful. Actions meaningful at several sites (Error, Delay,
     * KillVm span Hypercall and PageIn) should pin the site.
     */
    std::uint64_t site = faultAny;

    /** Match: hypercall number (hypercall hook), or faultAny. */
    std::uint64_t hcNr = faultAny;

    /** Match: acting VM id, or faultAny. */
    std::uint64_t vm = faultAny;

    /** Fire on the Nth matching event (1-based). */
    std::uint64_t occurrence = 1;

    /** Keep firing on every match at or beyond occurrence. */
    bool repeat = false;

    FaultAction action = FaultAction::None;

    /** Action parameter: delay ns (Delay) or victim VM id (KillVm). */
    std::uint64_t param = 0;
};

/** Outcome of consulting the plan at one hook site. */
struct FaultDecision
{
    FaultAction action = FaultAction::None;
    std::uint64_t param = 0;
};

/**
 * The per-run fault schedule. Install on a Hypervisor (hypercall and
 * gate hooks) and/or a ShmAllocator; ownership stays with the caller.
 */
class FaultPlan
{
  public:
    /** @param seed drives every probabilistic decision. */
    explicit FaultPlan(std::uint64_t seed = 0) : rng(seed) {}

    /** Append a scripted rule (evaluated in insertion order). */
    void addRule(const FaultRule &rule);

    /** Convenience: kill @p victim on the Nth call of @p hc_nr. */
    void killVmAt(std::uint64_t hc_nr, std::uint64_t victim,
                  std::uint64_t occurrence = 1);

    /**
     * Convenience: fail the Nth capability registration attempted by
     * @p vm (grant-table exhaustion at a Delegate/Redeem step; the
     * caller observes an error return, never a partial grant).
     */
    void failCapabilityAt(std::uint64_t vm,
                          std::uint64_t occurrence = 1);

    /**
     * Convenience: the Nth page-in for @p vm fails with a swap-device
     * I/O error — the fault stays unresolved and the guest observes
     * the EPT-violation exit. The page is not lost; a later fault
     * (without a matching rule) pages it in normally.
     */
    void failPageInAt(std::uint64_t vm, std::uint64_t occurrence = 1);

    /** Convenience: @p victim dies during its Nth page-in. */
    void killDuringPageIn(std::uint64_t victim,
                          std::uint64_t occurrence = 1);

    // ---- chaos knobs (all default off) ----------------------------
    /** Probability that any hypercall is dropped. */
    void setDropChance(double p) { dropChance = p; }

    /** Probability (and mean ns) of a random hypercall delay. */
    void
    setDelayChance(double p, SimNs mean_ns)
    {
        delayChance = p;
        delayMeanNs = mean_ns;
    }

    /** Probability that any hypercall is duplicated (replayed). */
    void setDuplicateChance(double p) { duplicateChance = p; }

    /** Probability (and mean ns) of a slow swap-device page-in. */
    void
    setPageInDelayChance(double p, SimNs mean_ns)
    {
        pageInDelayChance = p;
        pageInDelayMeanNs = mean_ns;
    }

    /** Probability that any page-in fails with an I/O error. */
    void setPageInErrorChance(double p) { pageInErrorChance = p; }

    // ---- hook sites (called by the instrumented subsystems) --------
    /** A VM issued hypercall @p nr. */
    FaultDecision onHypercall(std::uint64_t vm, std::uint64_t nr);

    /** A vCPU of VM @p vm is entering the exit-less gate path. */
    FaultDecision onGateCall(std::uint64_t vm);

    /** An allocation of @p bytes from a shared region. */
    FaultDecision onShmAlloc(std::uint64_t bytes);

    /** The negotiation is about to build an attachment for @p vm. */
    FaultDecision onAttachBuild(std::uint64_t vm);

    /** VM @p vm is registering a capability grant (delegate/redeem). */
    FaultDecision onCapability(std::uint64_t vm);

    /** The pager is about to page in a frame faulted by VM @p vm. */
    FaultDecision onPageIn(std::uint64_t vm);

    // ---- observability --------------------------------------------
    /** Every injected fault, one line each, in injection order. */
    const std::string &eventLog() const { return log; }

    /** Total faults injected so far. */
    std::uint64_t injectedCount() const { return injected; }

  private:
    struct CountedRule
    {
        FaultRule rule;
        std::uint64_t matches = 0;
        bool spent = false;
    };

    /**
     * First firing rule wins; chance draws only run when the matching
     * site has a non-zero probability configured (so a rules-only or
     * empty plan consumes no randomness at all).
     */
    FaultDecision decide(FaultSite site, std::uint64_t vm,
                         std::uint64_t nr, bool allow_chance);

    void record(FaultSite site, std::uint64_t vm, std::uint64_t nr,
                const FaultDecision &decision);

    Rng rng;
    std::vector<CountedRule> rules;
    double dropChance = 0.0;
    double delayChance = 0.0;
    SimNs delayMeanNs = 0;
    double duplicateChance = 0.0;
    double pageInDelayChance = 0.0;
    SimNs pageInDelayMeanNs = 0;
    double pageInErrorChance = 0.0;
    std::uint64_t injected = 0;
    std::string log;
};

} // namespace elisa::sim

#endif // ELISA_SIM_FAULT_HH
