/**
 * @file
 * Log-bucketed latency histogram with percentile queries (HDR-style).
 *
 * Buckets are arranged as (exponent, linear sub-bucket) pairs: values up
 * to 2^subBucketBits fall into exact unit buckets; beyond that, each
 * power-of-two range is divided into 2^subBucketBits linear sub-buckets,
 * bounding relative quantization error to 1/2^subBucketBits.
 */

#ifndef ELISA_SIM_HISTOGRAM_HH
#define ELISA_SIM_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace elisa::sim
{

/**
 * Latency histogram over uint64 values (nanoseconds by convention).
 */
class Histogram
{
  public:
    /**
     * @param sub_bucket_bits log2 of linear sub-buckets per octave;
     *        6 bounds relative error to ~1.6 %.
     * @param max_value largest representable value; larger samples are
     *        clamped (and counted in saturated()).
     */
    explicit Histogram(unsigned sub_bucket_bits = 6,
                       std::uint64_t max_value = 1ull << 40);

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Record @p count identical samples. */
    void recordN(std::uint64_t value, std::uint64_t count);

    /** Total number of recorded samples. */
    std::uint64_t count() const { return total; }

    /** Exact sum of recorded samples (after clamping to maxValue). */
    std::uint64_t sum() const { return sumSeen; }

    /** Number of samples clamped to maxValue. */
    std::uint64_t saturated() const { return saturatedCount; }

    /** Mean of recorded samples (bucket-midpoint approximation). */
    double mean() const;

    /** Smallest / largest recorded sample (exact, not bucketed). */
    std::uint64_t min() const { return total ? minSeen : 0; }
    std::uint64_t max() const { return total ? maxSeen : 0; }

    /**
     * Value at quantile @p q in [0,1]; e.g. q=0.99 for the p99.
     * Returns an upper bound of the bucket containing the quantile.
     * The target rank is ceil(q * count), so q=0.99 over 300 samples
     * reads the 297th, not the 296th (the pre-fix truncation artifact
     * at exact bucket boundaries).
     */
    std::uint64_t percentile(double q) const;

    /**
     * Integer-exact quantile num/den (rank = ceil(count * num / den)),
     * immune to double rounding at bucket boundaries. Backs the named
     * accessors below, which the exporters use.
     */
    std::uint64_t percentileRatio(std::uint64_t num,
                                  std::uint64_t den) const;

    std::uint64_t p50() const { return percentileRatio(1, 2); }
    std::uint64_t p95() const { return percentileRatio(19, 20); }
    std::uint64_t p99() const { return percentileRatio(99, 100); }
    std::uint64_t p999() const { return percentileRatio(999, 1000); }

    /** Merge another histogram (same geometry required). */
    void merge(const Histogram &other);

    /** Forget all samples. */
    void clear();

    /** Human-readable summary line. */
    std::string summary() const;

  private:
    /** Index of the bucket holding @p value. */
    std::size_t bucketIndex(std::uint64_t value) const;

    /** Upper bound (inclusive) of bucket @p index. */
    std::uint64_t bucketUpperBound(std::size_t index) const;

    /** Bucket upper bound at 1-based rank @p rank (rank <= total). */
    std::uint64_t valueAtRank(std::uint64_t rank) const;

    unsigned subBits;
    std::uint64_t maxValue;
    std::uint64_t total = 0;
    std::uint64_t sumSeen = 0;
    std::uint64_t saturatedCount = 0;
    std::uint64_t minSeen = ~std::uint64_t{0};
    std::uint64_t maxSeen = 0;
    std::vector<std::uint64_t> buckets;
};

} // namespace elisa::sim

#endif // ELISA_SIM_HISTOGRAM_HH
