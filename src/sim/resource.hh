/**
 * @file
 * Simulated-time synchronization and queueing primitives.
 *
 * These arbitrate between actors that each own a SimClock. They are only
 * causally correct when actors are stepped in non-decreasing clock order,
 * which sim::Engine guarantees (conservative discrete-event execution).
 */

#ifndef ELISA_SIM_RESOURCE_HH
#define ELISA_SIM_RESOURCE_HH

#include <cstdint>

#include "base/types.hh"
#include "sim/clock.hh"

namespace elisa::sim
{

/**
 * A mutual-exclusion lock in simulated time.
 *
 * acquire() advances the caller's clock to the time the lock frees (if
 * it is held "in the simulated past/future"), then marks it held until
 * release() (or for an explicit hold window with acquireFor()).
 */
class SimLock
{
  public:
    /**
     * Acquire at the caller's current time, waiting if needed.
     * @return nanoseconds spent waiting.
     */
    SimNs
    acquire(SimClock &clock)
    {
        const SimNs waited = clock.syncTo(freeAt);
        ++acquisitions;
        waitedTotal += waited;
        return waited;
    }

    /** Release at the caller's current time. */
    void
    release(SimClock &clock)
    {
        if (clock.now() > freeAt)
            freeAt = clock.now();
    }

    /**
     * Convenience: acquire, hold for @p hold_ns, release. The caller's
     * clock ends just after its own critical section.
     * @return nanoseconds spent waiting for the lock.
     */
    SimNs
    acquireFor(SimClock &clock, SimNs hold_ns)
    {
        const SimNs waited = acquire(clock);
        clock.advance(hold_ns);
        release(clock);
        return waited;
    }

    /** Time at which the lock becomes free. */
    SimNs freeTime() const { return freeAt; }

    /** Total acquisitions (stats). */
    std::uint64_t count() const { return acquisitions; }

    /** Total simulated time actors spent waiting (stats). */
    SimNs totalWait() const { return waitedTotal; }

  private:
    SimNs freeAt = 0;
    std::uint64_t acquisitions = 0;
    SimNs waitedTotal = 0;
};

/**
 * A single FIFO server in simulated time (a host backend thread, a NIC
 * wire, a memcached worker...). Work submitted at @p arrival with a
 * given service time completes at max(arrival, busyUntil) + service.
 */
class SimResource
{
  public:
    /**
     * Submit one unit of work.
     * @param arrival time the work becomes available to the server.
     * @param service_ns time the server needs for it.
     * @return completion time of this unit.
     */
    SimNs
    submit(SimNs arrival, SimNs service_ns)
    {
        const SimNs start = arrival > busyUntilNs ? arrival : busyUntilNs;
        busyUntilNs = start + service_ns;
        busyTotal += service_ns;
        ++jobs;
        return busyUntilNs;
    }

    /** Earliest time new work could start. */
    SimNs busyUntil() const { return busyUntilNs; }

    /** Total service time accumulated (utilization numerator). */
    SimNs totalBusy() const { return busyTotal; }

    /** Number of jobs served. */
    std::uint64_t count() const { return jobs; }

    /** Reset (tests / repeated sweeps). */
    void
    reset()
    {
        busyUntilNs = 0;
        busyTotal = 0;
        jobs = 0;
    }

  private:
    SimNs busyUntilNs = 0;
    SimNs busyTotal = 0;
    std::uint64_t jobs = 0;
};

} // namespace elisa::sim

#endif // ELISA_SIM_RESOURCE_HH
