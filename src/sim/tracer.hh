/**
 * @file
 * Span-structured trace collection keyed to simulated time.
 *
 * A Tracer is a bounded ring buffer of typed events — span begin/end,
 * instants, and id-linked async spans — each stamped with the emitting
 * actor's simulated clock. It is the attribution instrument behind the
 * paper's latency story: one gate call decomposes into its four
 * EPTP switches plus prologue/payload/epilogue, one negotiation into
 * its hypercall hops, one injected fault into the exact span it hit.
 *
 * Cost discipline (mirrors sim::FaultPlan): subsystems hold a nullable
 * Tracer pointer; an absent tracer costs one pointer test per trace
 * point and nothing else. Event names are interned once (TraceNameId,
 * dense) so the enabled hot path never hashes strings.
 *
 * Determinism: events carry only simulated timestamps and interned
 * ids, never host time, so the same seeded run always produces a
 * byte-identical trace — both exporters format with integer math only.
 *
 * Exporters:
 *  - chromeJson(): Chrome trace_event JSON, loadable in Perfetto or
 *    about:tracing (spans nest per track; async spans link by id);
 *  - latencyReport(): per-category sim::Histogram text report of span
 *    durations (count / mean / p50 / p99 / max per span name).
 *
 * Layering: this file knows nothing about vCPUs or the hypervisor —
 * callers pass plain track ids (by convention the vCPU id) and
 * timestamps, so the subsystem sits at the bottom of the tree next to
 * Clock and FaultPlan.
 */

#ifndef ELISA_SIM_TRACER_HH
#define ELISA_SIM_TRACER_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/types.hh"
#include "sim/clock.hh"

namespace elisa::sim
{

/** Trace categories (one per instrumented layer). */
enum class SpanCat : std::uint8_t
{
    Hypercall,   ///< VMCALL dispatch in the hypervisor
    Gate,        ///< exit-less gate entry/exit and its sub-phases
    Negotiation, ///< attach request lifecycle (async, by RequestId)
    Net,         ///< per-packet datapath events
    Kvs,         ///< per-operation KVS events
    Fault,       ///< injected-fault annotations
    Cpu,         ///< raw instruction events (vmfunc, vmcall framing)
    Page,        ///< demand-paging events (page-in/out, reclaim)
    Telemetry,   ///< telemetry plane (publish, scrape, SLO alerts)
};

/** Number of categories (array sizing). */
inline constexpr unsigned spanCatCount = 9;

/** Render a category (exporters / debugging). */
const char *spanCatToString(SpanCat cat);

/** Dense handle of an interned event name (see Tracer::intern). */
using TraceNameId = std::uint16_t;

/** Event kinds, mapping 1:1 onto Chrome trace_event phases. */
enum class TracePhase : std::uint8_t
{
    Begin,        ///< span opens on a track ("ph":"B")
    End,          ///< span closes on a track ("ph":"E")
    Instant,      ///< point event on a track ("ph":"i")
    AsyncBegin,   ///< long-lived span opens, linked by flowId ("b")
    AsyncInstant, ///< point event within an async span ("n")
    AsyncEnd,     ///< async span closes ("e")
};

/** One recorded event (40 bytes; the ring stores these by value). */
struct TraceEvent
{
    SimNs ts = 0;              ///< emitting actor's simulated clock
    std::uint64_t arg0 = 0;    ///< event-specific annotation
    std::uint64_t arg1 = 0;    ///< event-specific annotation
    std::uint64_t flowId = 0;  ///< async link id (e.g. RequestId)
    std::uint32_t track = 0;   ///< actor lane (by convention vCPU id)
    TraceNameId name = 0;      ///< interned event name
    SpanCat cat = SpanCat::Cpu;
    TracePhase phase = TracePhase::Instant;
};

/**
 * Bounded trace collector. When the ring is full the oldest event is
 * overwritten (the trace keeps the most recent window); dropped()
 * reports how many were lost.
 */
class Tracer
{
  public:
    /** @param capacity ring size in events (must be positive). */
    explicit Tracer(std::size_t capacity = 1u << 16);

    /**
     * Resolve @p name to its dense id, registering it when new. The
     * only string-keyed operation — call once per site, never per
     * event (see TraceNameCache).
     */
    TraceNameId intern(std::string_view name);

    /** The string a TraceNameId stands for. */
    const std::string &nameOf(TraceNameId id) const;

    // ---- emission (hot path; callers null-check the Tracer*) -------
    void
    begin(SpanCat cat, TraceNameId name, std::uint32_t track, SimNs ts,
          std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        push({ts, a0, a1, 0, track, name, cat, TracePhase::Begin});
    }

    void
    end(SpanCat cat, TraceNameId name, std::uint32_t track, SimNs ts,
        std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        push({ts, a0, a1, 0, track, name, cat, TracePhase::End});
    }

    void
    instant(SpanCat cat, TraceNameId name, std::uint32_t track,
            SimNs ts, std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        push({ts, a0, a1, 0, track, name, cat, TracePhase::Instant});
    }

    void
    asyncBegin(SpanCat cat, TraceNameId name, std::uint64_t flow,
               std::uint32_t track, SimNs ts, std::uint64_t a0 = 0,
               std::uint64_t a1 = 0)
    {
        push({ts, a0, a1, flow, track, name, cat,
              TracePhase::AsyncBegin});
    }

    void
    asyncInstant(SpanCat cat, TraceNameId name, std::uint64_t flow,
                 std::uint32_t track, SimNs ts, std::uint64_t a0 = 0,
                 std::uint64_t a1 = 0)
    {
        push({ts, a0, a1, flow, track, name, cat,
              TracePhase::AsyncInstant});
    }

    void
    asyncEnd(SpanCat cat, TraceNameId name, std::uint64_t flow,
             std::uint32_t track, SimNs ts, std::uint64_t a0 = 0,
             std::uint64_t a1 = 0)
    {
        push({ts, a0, a1, flow, track, name, cat, TracePhase::AsyncEnd});
    }

    // ---- introspection --------------------------------------------
    /** Events currently held (<= capacity). */
    std::size_t size() const { return held; }

    /** Ring capacity in events. */
    std::size_t capacity() const { return ring.size(); }

    /** Total events ever emitted. */
    std::uint64_t emitted() const { return total; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return total - held; }

    /**
     * Process-unique id of this Tracer instance. Name caches key on
     * it instead of the object address, which a successor Tracer may
     * reuse (stack/heap recycling) while holding none of the names
     * the cache resolved against the original.
     */
    std::uint64_t serial() const { return serialNum; }

    /** The held events, oldest first (tests / exporters). */
    std::vector<TraceEvent> snapshot() const;

    /** Forget all events (interned names are kept). */
    void clear();

    // ---- exporters -------------------------------------------------
    /**
     * Chrome trace_event JSON (the "traceEvents" array form), byte-
     * deterministic for a given event sequence. Timestamps are
     * microseconds with the nanosecond fraction preserved.
     */
    std::string chromeJson() const;

    /**
     * Per-category latency report: durations of matched Begin/End
     * pairs (per track) and AsyncBegin/AsyncEnd pairs (per flowId)
     * aggregated into sim::Histogram lines, sorted by category then
     * name. Unmatched events (ring wraparound, spans still open) are
     * counted, never guessed at.
     */
    std::string latencyReport() const;

  private:
    void
    push(const TraceEvent &event)
    {
        ring[head] = event;
        head = head + 1 == ring.size() ? 0 : head + 1;
        if (held < ring.size())
            ++held;
        ++total;
    }

    std::vector<TraceEvent> ring;
    std::size_t head = 0; ///< next write slot
    std::size_t held = 0;
    std::uint64_t total = 0;
    std::uint64_t serialNum;
    std::map<std::string, TraceNameId, std::less<>> index;
    std::vector<std::string> names;
};

/**
 * Per-site cache of one interned name. Instrumented objects that may
 * be constructed before a Tracer is installed hold one of these; the
 * first emission against a given Tracer pays the intern, subsequent
 * ones are a pointer compare.
 */
class TraceNameCache
{
  public:
    explicit TraceNameCache(const char *name) : text(name) {}

    TraceNameId
    get(Tracer &tracer)
    {
        // Keyed by serial, not address: a fresh Tracer can reuse a
        // dead one's address while interning none of its names.
        if (owner != tracer.serial()) {
            id = tracer.intern(text);
            owner = tracer.serial();
        }
        return id;
    }

  private:
    const char *text;
    std::uint64_t owner = 0; ///< serial() of the interning Tracer
    TraceNameId id = 0;
};

/**
 * RAII span: begin on construction (when a tracer is present), end —
 * at the then-current simulated time — on destruction, including
 * exceptional unwinds (VM exits), so spans never leak open across a
 * fault. An instance built with a null tracer is inert.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer *tracer, SpanCat cat, TraceNameId name,
               std::uint32_t track, const SimClock &clock,
               std::uint64_t a0 = 0, std::uint64_t a1 = 0)
        : tr(tracer), clk(&clock), spanCat(cat), spanName(name),
          spanTrack(track)
    {
        if (tr)
            tr->begin(spanCat, spanName, spanTrack, clk->now(), a0, a1);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Annotate the closing event (e.g. with the handler's rc). */
    void
    setEndArgs(std::uint64_t a0, std::uint64_t a1 = 0)
    {
        endArg0 = a0;
        endArg1 = a1;
    }

    ~ScopedSpan()
    {
        if (tr)
            tr->end(spanCat, spanName, spanTrack, clk->now(), endArg0,
                    endArg1);
    }

  private:
    Tracer *tr;
    const SimClock *clk;
    SpanCat spanCat;
    TraceNameId spanName;
    std::uint32_t spanTrack;
    std::uint64_t endArg0 = 0;
    std::uint64_t endArg1 = 0;
};

} // namespace elisa::sim

#endif // ELISA_SIM_TRACER_HH
