#include "sim/flight_recorder.hh"

#include <algorithm>
#include <fstream>

#include "base/logging.hh"

namespace elisa::sim
{

namespace
{

/** Chrome-phase letter (matches Tracer::chromeJson). */
char
phaseLetter(TracePhase phase)
{
    switch (phase) {
      case TracePhase::Begin:
        return 'B';
      case TracePhase::End:
        return 'E';
      case TracePhase::Instant:
        return 'i';
      case TracePhase::AsyncBegin:
        return 'b';
      case TracePhase::AsyncInstant:
        return 'n';
      case TracePhase::AsyncEnd:
        return 'e';
    }
    return '?';
}

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += detail::format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // anonymous namespace

FlightRecorder::FlightRecorder(std::size_t per_vm_capacity)
    : capacity(per_vm_capacity)
{
    fatal_if(capacity == 0,
             "flight recorder per-VM capacity must be positive");
}

void
FlightRecorder::setTrackResolver(
    std::function<std::uint32_t(std::uint32_t)> resolver)
{
    trackResolver = std::move(resolver);
}

FlightRecorder::VmRing &
FlightRecorder::ringFor(std::uint32_t vm)
{
    VmRing &ring = rings[vm];
    if (ring.ring.empty())
        ring.ring.resize(capacity);
    return ring;
}

void
FlightRecorder::push(VmRing &ring, const TraceEvent &event)
{
    ring.ring[ring.head] = event;
    ring.head = ring.head + 1 == ring.ring.size() ? 0 : ring.head + 1;
    if (ring.held < ring.ring.size())
        ++ring.held;
    ++ring.total;
}

void
FlightRecorder::observe(const Tracer &tracer)
{
    // A successor Tracer restarts the stream (same serial guard as
    // TraceNameCache — addresses can be recycled, serials cannot).
    if (tracer.serial() != tracerSerial) {
        tracerSerial = tracer.serial();
        cursor = 0;
        nameTable.clear();
    }
    const std::uint64_t emitted = tracer.emitted();
    if (emitted == cursor)
        return;
    std::uint64_t fresh = emitted - cursor;
    const std::vector<TraceEvent> snap = tracer.snapshot();
    if (fresh > snap.size()) {
        // The tracer ring wrapped past our cursor: those events are
        // gone for every VM. Counted, never guessed at.
        missedEvents += fresh - snap.size();
        fresh = snap.size();
    }
    for (std::size_t i = snap.size() - fresh; i < snap.size(); ++i) {
        const TraceEvent &ev = snap[i];
        auto it = nameTable.find(ev.name);
        if (it == nameTable.end())
            nameTable.emplace(ev.name, tracer.nameOf(ev.name));
        const std::uint32_t vm =
            trackResolver ? trackResolver(ev.track) : noVm;
        if (vm == noVm) {
            ++unresolved;
            continue;
        }
        push(ringFor(vm), ev);
    }
    cursor = emitted;
}

void
FlightRecorder::baseline(const ExitLedger &ledger)
{
    ledgerBaseline.clear();
    for (const ExitLedger::Row &row : ledger.rows()) {
        ledgerBaseline[RowKey{row.vm, row.vcpu,
                              static_cast<std::uint8_t>(row.kind),
                              row.code}] = {row.events, row.ns};
    }
}

void
FlightRecorder::noteKill(std::uint32_t vm, std::string site)
{
    killReasons[vm] = std::move(site);
}

const std::string &
FlightRecorder::dump(std::uint32_t vm, SimNs now,
                     const ExitLedger *ledger)
{
    std::string reason = "vm_destroy";
    if (auto it = killReasons.find(vm); it != killReasons.end()) {
        reason = std::move(it->second);
        killReasons.erase(it);
    }

    std::string out = "{\n";
    out += "  \"schema\": \"elisa-postmortem-v1\",\n";
    out += detail::format("  \"vm\": %u,\n", vm);
    out += "  \"reason\": \"" + jsonEscape(reason) + "\",\n";
    out += detail::format("  \"sim_ns\": %llu,\n",
                          (unsigned long long)now);

    // ---- span window ------------------------------------------------
    const auto ring_it = rings.find(vm);
    const std::size_t held = ring_it == rings.end()
                                 ? 0
                                 : ring_it->second.held;
    const std::uint64_t total =
        ring_it == rings.end() ? 0 : ring_it->second.total;
    out += detail::format("  \"spans_held\": %zu,\n", held);
    out += detail::format("  \"spans_dropped\": %llu,\n",
                          (unsigned long long)(total - held));
    out += "  \"spans\": [";
    if (ring_it != rings.end()) {
        const VmRing &ring = ring_it->second;
        const std::size_t cap = ring.ring.size();
        // Oldest-first: when full the head points at the oldest slot.
        const std::size_t start =
            ring.held < cap ? 0 : ring.head;
        for (std::size_t i = 0; i < ring.held; ++i) {
            const TraceEvent &ev = ring.ring[(start + i) % cap];
            // A stale id (event recorded under a replaced tracer)
            // renders as "?" — visibly wrong beats aliasing.
            static const std::string unknown = "?";
            const auto name_it = nameTable.find(ev.name);
            const std::string &name = name_it == nameTable.end()
                                          ? unknown
                                          : name_it->second;
            out += i ? ",\n    " : "\n    ";
            out += detail::format(
                "{\"ts\": %llu, \"cat\": \"%s\", \"name\": \"%s\", "
                "\"ph\": \"%c\", \"track\": %u, \"arg0\": %llu, "
                "\"arg1\": %llu, \"flow\": %llu}",
                (unsigned long long)ev.ts, spanCatToString(ev.cat),
                jsonEscape(name).c_str(), phaseLetter(ev.phase),
                ev.track, (unsigned long long)ev.arg0,
                (unsigned long long)ev.arg1,
                (unsigned long long)ev.flowId);
        }
        if (ring.held)
            out += "\n  ";
    }
    out += "],\n";

    // ---- ledger deltas ---------------------------------------------
    out += "  \"ledger\": ";
    if (!ledger) {
        out += "null\n";
    } else {
        // Deltas since baseline, sorted by (vcpu, kind, code). The
        // conservation verdict cross-checks the row sum against the
        // ledger's independent per-VM aggregate: double-entry at
        // death, not just in the chaos tests.
        struct Delta
        {
            std::uint32_t vcpu;
            CostKind kind;
            std::uint32_t code;
            std::uint64_t events;
            std::uint64_t ns;
        };
        std::vector<Delta> deltas;
        std::uint64_t base_vm_ns = 0;
        bool nonneg = true;
        for (const ExitLedger::Row &row : ledger->rows()) {
            if (row.vm != vm)
                continue;
            std::uint64_t base_events = 0;
            std::uint64_t base_ns = 0;
            const auto it = ledgerBaseline.find(
                RowKey{row.vm, row.vcpu,
                       static_cast<std::uint8_t>(row.kind), row.code});
            if (it != ledgerBaseline.end()) {
                base_events = it->second.first;
                base_ns = it->second.second;
            }
            base_vm_ns += base_ns;
            if (row.events < base_events || row.ns < base_ns) {
                nonneg = false;
                continue;
            }
            if (row.events == base_events && row.ns == base_ns)
                continue;
            deltas.push_back(Delta{row.vcpu, row.kind, row.code,
                                   row.events - base_events,
                                   row.ns - base_ns});
        }
        std::sort(deltas.begin(), deltas.end(),
                  [](const Delta &a, const Delta &b) {
                      if (a.vcpu != b.vcpu)
                          return a.vcpu < b.vcpu;
                      if (a.kind != b.kind)
                          return a.kind < b.kind;
                      return a.code < b.code;
                  });

        std::uint64_t kind_ns[costKindCount] = {};
        std::uint64_t row_sum = 0;
        out += "{\n    \"rows\": [";
        for (std::size_t i = 0; i < deltas.size(); ++i) {
            const Delta &d = deltas[i];
            kind_ns[static_cast<unsigned>(d.kind)] += d.ns;
            row_sum += d.ns;
            const std::string &code_name =
                ledger->codeName(d.kind, d.code);
            out += i ? ",\n      " : "\n      ";
            out += detail::format(
                "{\"vcpu\": %u, \"kind\": \"%s\", \"code\": %u, "
                "\"code_name\": \"%s\", \"events\": %llu, "
                "\"ns\": %llu}",
                d.vcpu, costKindToString(d.kind), d.code,
                jsonEscape(code_name).c_str(),
                (unsigned long long)d.events,
                (unsigned long long)d.ns);
        }
        if (!deltas.empty())
            out += "\n    ";
        out += "],\n    \"kind_ns\": {";
        for (unsigned k = 0; k < costKindCount; ++k) {
            out += k ? ", " : "";
            out += detail::format(
                "\"%s\": %llu",
                costKindToString(static_cast<CostKind>(k)),
                (unsigned long long)kind_ns[k]);
        }
        const std::uint64_t vm_delta_ns = ledger->vmNs(vm) - base_vm_ns;
        const bool conserved = nonneg && row_sum == vm_delta_ns;
        out += detail::format("},\n    \"total_ns\": %llu,\n",
                              (unsigned long long)row_sum);
        out += detail::format("    \"vm_total_ns\": %llu,\n",
                              (unsigned long long)vm_delta_ns);
        out += detail::format("    \"conserved\": %s\n  }\n",
                              conserved ? "true" : "false");
        postMortems[vm].conserved = conserved;
    }
    out += "}\n";

    PostMortem &pm = postMortems[vm];
    pm.json = std::move(out);
    if (!ledger)
        pm.conserved = true;

    if (!outputDir.empty()) {
        const std::string path =
            outputDir + detail::format("/postmortem_vm%u.json", vm);
        std::ofstream file(path, std::ios::trunc);
        if (file)
            file << pm.json;
    }
    return pm.json;
}

bool
FlightRecorder::hasPostMortem(std::uint32_t vm) const
{
    return postMortems.count(vm) != 0;
}

const std::string &
FlightRecorder::postMortem(std::uint32_t vm) const
{
    const auto it = postMortems.find(vm);
    panic_if(it == postMortems.end(), "no post-mortem for vm %u", vm);
    return it->second.json;
}

std::vector<std::uint32_t>
FlightRecorder::postMortemVms() const
{
    std::vector<std::uint32_t> out;
    out.reserve(postMortems.size());
    for (const auto &[vm, pm] : postMortems)
        out.push_back(vm);
    return out;
}

bool
FlightRecorder::postMortemConserved(std::uint32_t vm) const
{
    const auto it = postMortems.find(vm);
    panic_if(it == postMortems.end(), "no post-mortem for vm %u", vm);
    return it->second.conserved;
}

std::size_t
FlightRecorder::heldFor(std::uint32_t vm) const
{
    const auto it = rings.find(vm);
    return it == rings.end() ? 0 : it->second.held;
}

std::uint64_t
FlightRecorder::droppedFor(std::uint32_t vm) const
{
    const auto it = rings.find(vm);
    return it == rings.end() ? 0 : it->second.total - it->second.held;
}

} // namespace elisa::sim
