#include "sim/metrics.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace elisa::sim
{

namespace
{

// Structured index-key separators: control characters that cannot
// appear in sane metric names or label text, so distinct
// (name, labels) identities can never serialize to the same key
// (the "label interning collision" guarantee).
constexpr char sepName = '\x1f';
constexpr char sepKv = '\x1e';
constexpr char sepPair = '\x1d';

std::string
indexKey(const std::string &name, const Labels &labels)
{
    std::string key = name;
    key += sepName;
    for (const auto &[k, v] : labels) {
        key += k;
        key += sepKv;
        key += v;
        key += sepPair;
    }
    return key;
}

/** Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. */
std::string
sanitizeFamily(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

/** Label values: escape backslash, double quote and newline. */
std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** Extra quantile labeled render (summary samples). */
std::string
renderLabelsWithQuantile(const Labels &labels, const char *q)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += sanitizeFamily(k);
        out += "=\"";
        out += escapeLabelValue(v);
        out += '"';
    }
    if (!first)
        out += ',';
    out += "quantile=\"";
    out += q;
    out += "\"}";
    return out;
}

/**
 * Deterministic scalar rendering: integral doubles print as integers
 * (the common case — counters, ns totals), everything else as %.6g.
 */
std::string
formatScalar(double value)
{
    const auto as_int = static_cast<long long>(value);
    if (value == static_cast<double>(as_int))
        return detail::format("%lld", as_int);
    return detail::format("%.6g", value);
}

/** CSV cell escaping (RFC-4180-ish, matching TextTable::renderCsv). */
std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // anonymous namespace

std::string
renderMetricLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += sanitizeFamily(k);
        out += "=\"";
        out += escapeLabelValue(v);
        out += '"';
    }
    out += '}';
    return out;
}

const char *
metricKindToString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

MetricId
Metrics::registerMetric(const std::string &name, Labels labels,
                        MetricKind kind, unsigned sub_bits,
                        std::uint64_t max_value)
{
    panic_if(name.empty(), "metric with empty name");
    std::sort(labels.begin(), labels.end());
    for (std::size_t i = 1; i < labels.size(); ++i) {
        panic_if(labels[i].first == labels[i - 1].first,
                 "duplicate label key '%s' on metric '%s'",
                 labels[i].first.c_str(), name.c_str());
    }

    const std::string key = indexKey(name, labels);
    auto it = index.find(key);
    if (it != index.end()) {
        // Idempotent re-registration: the same identity must resolve
        // to the same id AND the same kind.
        panic_if(metas[it->second].kind != kind,
                 "metric '%s' re-registered as %s (was %s)",
                 name.c_str(), metricKindToString(kind),
                 metricKindToString(metas[it->second].kind));
        return it->second;
    }

    const MetricId id = static_cast<MetricId>(metas.size());
    std::uint32_t slot = 0;
    switch (kind) {
      case MetricKind::Counter:
        slot = static_cast<std::uint32_t>(counters.size());
        counters.push_back(0);
        break;
      case MetricKind::Gauge:
        slot = static_cast<std::uint32_t>(gauges.size());
        gauges.push_back(0.0);
        break;
      case MetricKind::Histogram:
        slot = static_cast<std::uint32_t>(hists.size());
        hists.emplace_back(sub_bits, max_value);
        break;
    }
    metas.push_back(Meta{name, std::move(labels), kind, slot});
    index.emplace(key, id);
    return id;
}

MetricId
Metrics::counter(const std::string &name, Labels labels)
{
    return registerMetric(name, std::move(labels), MetricKind::Counter,
                          0, 0);
}

MetricId
Metrics::gauge(const std::string &name, Labels labels)
{
    return registerMetric(name, std::move(labels), MetricKind::Gauge, 0,
                          0);
}

MetricId
Metrics::histogram(const std::string &name, Labels labels,
                   unsigned sub_bucket_bits, std::uint64_t max_value)
{
    return registerMetric(name, std::move(labels), MetricKind::Histogram,
                          sub_bucket_bits, max_value);
}

std::uint64_t
Metrics::counterValue(MetricId id) const
{
    panic_if(id >= metas.size() || metas[id].kind != MetricKind::Counter,
             "bad counter id %u", id);
    return counters[metas[id].slot];
}

double
Metrics::gaugeValue(MetricId id) const
{
    panic_if(id >= metas.size() || metas[id].kind != MetricKind::Gauge,
             "bad gauge id %u", id);
    return gauges[metas[id].slot];
}

const Histogram &
Metrics::histogramAt(MetricId id) const
{
    panic_if(id >= metas.size() ||
                 metas[id].kind != MetricKind::Histogram,
             "bad histogram id %u", id);
    return hists[metas[id].slot];
}

void
Metrics::attachStatSet(const StatSet &set, Labels labels,
                       std::string prefix)
{
    std::sort(labels.begin(), labels.end());
    for (Source &src : sources) {
        if (src.set == &set) {
            src.labels = std::move(labels);
            src.prefix = std::move(prefix);
            return;
        }
    }
    sources.push_back(Source{&set, std::move(labels),
                             std::move(prefix)});
}

void
Metrics::detachStatSet(const StatSet &set)
{
    std::erase_if(sources,
                  [&set](const Source &src) { return src.set == &set; });
}

void
Metrics::clearValues()
{
    std::fill(counters.begin(), counters.end(), 0);
    std::fill(gauges.begin(), gauges.end(), 0.0);
    for (Histogram &h : hists)
        h.clear();
}

std::vector<Metrics::Sample>
Metrics::collect() const
{
    std::vector<Sample> out;
    out.reserve(metas.size());
    for (const Meta &meta : metas) {
        Sample s;
        s.family = sanitizeFamily(meta.name);
        s.labelStr = renderMetricLabels(meta.labels);
        s.labels = meta.labels;
        s.kind = meta.kind;
        switch (meta.kind) {
          case MetricKind::Counter:
            s.counterVal = counters[meta.slot];
            break;
          case MetricKind::Gauge:
            s.gaugeVal = gauges[meta.slot];
            break;
          case MetricKind::Histogram:
            s.hist = &hists[meta.slot];
            break;
        }
        out.push_back(std::move(s));
    }
    for (const Source &src : sources) {
        const std::string label_str = renderMetricLabels(src.labels);
        // StatSet::all() iterates its name-sorted map: deterministic.
        for (const auto &[name, value] : src.set->all()) {
            Sample s;
            s.family = sanitizeFamily(src.prefix + name);
            s.labelStr = label_str;
            s.labels = src.labels;
            s.kind = MetricKind::Counter;
            s.counterVal = value;
            out.push_back(std::move(s));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Sample &a, const Sample &b) {
                  if (a.family != b.family)
                      return a.family < b.family;
                  return a.labelStr < b.labelStr;
              });
    return out;
}

std::vector<ExportSample>
Metrics::exportSamples() const
{
    const std::vector<Sample> samples = collect();
    std::vector<ExportSample> out;
    out.reserve(samples.size());
    for (const Sample &s : samples) {
        ExportSample e;
        e.family = s.family;
        e.labelStr = s.labelStr;
        e.labels = s.labels;
        e.kind = s.kind;
        e.counterVal = s.counterVal;
        e.gaugeVal = s.gaugeVal;
        if (s.kind == MetricKind::Histogram) {
            const Histogram &h = *s.hist;
            e.hist = HistSummary{h.count(), h.sum(),   h.p50(),
                                 h.p95(),   h.p99(),   h.p999()};
        }
        out.push_back(std::move(e));
    }
    return out;
}

std::string
renderPrometheus(const std::vector<ExportSample> &samples)
{
    std::ostringstream out;
    std::string open_family;
    for (const ExportSample &s : samples) {
        if (s.family != open_family) {
            open_family = s.family;
            const char *type =
                s.kind == MetricKind::Counter  ? "counter"
                : s.kind == MetricKind::Gauge  ? "gauge"
                                               : "summary";
            out << "# TYPE " << s.family << ' ' << type << '\n';
        }
        switch (s.kind) {
          case MetricKind::Counter:
            out << s.family << "_total" << s.labelStr << ' '
                << s.counterVal << '\n';
            break;
          case MetricKind::Gauge:
            out << s.family << s.labelStr << ' '
                << formatScalar(s.gaugeVal) << '\n';
            break;
          case MetricKind::Histogram: {
            // Summary exposition: the four paper-relevant quantiles
            // plus _sum/_count, all integer math.
            const HistSummary &h = s.hist;
            out << s.family << renderLabelsWithQuantile(s.labels, "0.5")
                << ' ' << h.p50 << '\n';
            out << s.family
                << renderLabelsWithQuantile(s.labels, "0.95") << ' '
                << h.p95 << '\n';
            out << s.family
                << renderLabelsWithQuantile(s.labels, "0.99") << ' '
                << h.p99 << '\n';
            out << s.family
                << renderLabelsWithQuantile(s.labels, "0.999") << ' '
                << h.p999 << '\n';
            out << s.family << "_sum" << s.labelStr << ' ' << h.sum
                << '\n';
            out << s.family << "_count" << s.labelStr << ' '
                << h.count << '\n';
            break;
          }
        }
    }
    return out.str();
}

std::string
Metrics::prometheus() const
{
    return renderPrometheus(exportSamples());
}

std::string
Metrics::report() const
{
    const std::vector<Sample> samples = collect();
    std::ostringstream out;
    for (const Sample &s : samples) {
        out << s.family << s.labelStr << " = ";
        switch (s.kind) {
          case MetricKind::Counter:
            out << s.counterVal;
            break;
          case MetricKind::Gauge:
            out << formatScalar(s.gaugeVal);
            break;
          case MetricKind::Histogram:
            out << s.hist->summary();
            break;
        }
        out << '\n';
    }
    return out.str();
}

std::string
renderMetricsCsvHeader(const std::vector<ExportSample> &samples)
{
    std::string out = "sim_ns";
    for (const ExportSample &s : samples) {
        const std::string base = s.family + s.labelStr;
        if (s.kind == MetricKind::Histogram) {
            out += ',';
            out += csvCell(base + "_count");
            out += ',';
            out += csvCell(base + "_p50");
            out += ',';
            out += csvCell(base + "_p99");
        } else {
            out += ',';
            out += csvCell(base);
        }
    }
    out += '\n';
    return out;
}

std::string
renderMetricsCsvRow(SimNs now, const std::vector<ExportSample> &samples)
{
    std::string out = detail::format("%llu", (unsigned long long)now);
    for (const ExportSample &s : samples) {
        out += ',';
        switch (s.kind) {
          case MetricKind::Counter:
            out += detail::format("%llu",
                                  (unsigned long long)s.counterVal);
            break;
          case MetricKind::Gauge:
            out += formatScalar(s.gaugeVal);
            break;
          case MetricKind::Histogram:
            out += detail::format(
                "%llu,%llu,%llu", (unsigned long long)s.hist.count,
                (unsigned long long)s.hist.p50,
                (unsigned long long)s.hist.p99);
            break;
        }
    }
    out += '\n';
    return out;
}

std::size_t
metricsCsvColumnCount(const std::vector<ExportSample> &samples)
{
    std::size_t columns = 1; // sim_ns
    for (const ExportSample &s : samples)
        columns += s.kind == MetricKind::Histogram ? 3 : 1;
    return columns;
}

std::string
Metrics::csvHeader() const
{
    return renderMetricsCsvHeader(exportSamples());
}

std::string
Metrics::csvRow(SimNs now) const
{
    return renderMetricsCsvRow(now, exportSamples());
}

std::size_t
Metrics::csvColumnCount() const
{
    return metricsCsvColumnCount(exportSamples());
}

MetricsCsvSampler::MetricsCsvSampler(const Metrics &metrics)
    : reg(metrics), doc(metrics.csvHeader()),
      columns(metrics.csvColumnCount())
{
}

void
MetricsCsvSampler::sample(SimNs now)
{
    const std::size_t row_cols = reg.csvColumnCount();
    panic_if(row_cols != columns,
             "metrics registered after sampling started (%zu columns "
             "in header, %zu in row)",
             columns, row_cols);
    doc += reg.csvRow(now);
    ++rowCount;
}

} // namespace elisa::sim
