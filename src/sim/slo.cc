#include "sim/slo.hh"

#include "base/logging.hh"

namespace elisa::sim
{

SloWatchdog::SloWatchdog(Tracer *tracer, std::uint32_t track)
    : tracerPtr(tracer), alertTrack(track)
{
}

std::size_t
SloWatchdog::addRule(SloRule rule)
{
    panic_if(rule.name.empty(), "SLO rule with empty name");
    panic_if(rule.burnWindow == 0, "SLO burn window must be positive");
    rules.push_back(RuleState{std::move(rule), false, 0, 0, 0, false});
    return rules.size() - 1;
}

unsigned
SloWatchdog::evaluate(const SnapshotView &snap)
{
    ++evalCount;
    unsigned fired = 0;
    for (std::size_t i = 0; i < rules.size(); ++i) {
        RuleState &state = rules[i];
        const SloRule &rule = state.rule;

        // Find the sample this rule watches. Samples are sorted by
        // (family, labelStr); a linear scan is fine at snapshot rates.
        const ExportSample *sample = nullptr;
        for (const ExportSample &s : snap.samples()) {
            if (s.family == rule.family && s.labelStr == rule.labelStr) {
                sample = &s;
                break;
            }
        }

        bool have_value = false;
        double value = 0;
        if (sample) {
            switch (rule.kind) {
              case SloKind::CounterRateAbove: {
                if (sample->kind != MetricKind::Counter)
                    break;
                if (state.havePrev &&
                    snap.simNs() > state.prevNs &&
                    sample->counterVal >= state.prevCounter) {
                    const double delta = static_cast<double>(
                        sample->counterVal - state.prevCounter);
                    const double secs =
                        static_cast<double>(snap.simNs() -
                                            state.prevNs) /
                        1e9;
                    value = delta / secs;
                    have_value = true;
                }
                state.havePrev = true;
                state.prevCounter = sample->counterVal;
                state.prevNs = snap.simNs();
                break;
              }
              case SloKind::GaugeAbove:
                if (sample->kind == MetricKind::Gauge) {
                    value = sample->gaugeVal;
                    have_value = true;
                }
                break;
              case SloKind::HistP99Above:
                if (sample->kind == MetricKind::Histogram) {
                    value = static_cast<double>(sample->hist.p99);
                    have_value = true;
                }
                break;
            }
        }

        const bool breach = have_value && value > rule.threshold;
        if (!breach) {
            state.breaches = 0;
            state.firing = false; // re-arm
            continue;
        }
        ++state.breaches;
        if (state.breaches < rule.burnWindow || state.firing)
            continue;
        state.firing = true;
        ++fired;
        firedAlerts.push_back(Alert{rule.name, snap.simNs(), value});
        if (tracerPtr) {
            if (tracerPtr->serial() != tracerSerial) {
                alertName = tracerPtr->intern("slo_alert");
                tracerSerial = tracerPtr->serial();
            }
            tracerPtr->instant(
                SpanCat::Telemetry, alertName, alertTrack, snap.simNs(),
                static_cast<std::uint64_t>(i),
                static_cast<std::uint64_t>(value));
        }
    }
    return fired;
}

std::string
SloWatchdog::report() const
{
    std::string out;
    for (const Alert &alert : firedAlerts) {
        out += detail::format("[slo] %-24s fired at %llu ns (%.6g)\n",
                              alert.rule.c_str(),
                              (unsigned long long)alert.ns,
                              alert.value);
    }
    if (out.empty())
        out = "[slo] no alerts\n";
    return out;
}

} // namespace elisa::sim
