#include "sim/telemetry.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "base/logging.hh"

namespace elisa::sim
{

namespace
{

// ---- little-endian append/read helpers -----------------------------

void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    panic_if(s.size() > 0xffff, "telemetry string too long (%zu)",
             s.size());
    putU16(out, static_cast<std::uint16_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

void
patchU32(std::vector<std::uint8_t> &out, std::size_t at,
         std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/** Bounds-checked read cursor over a parsed snapshot. */
class Cursor
{
  public:
    Cursor(const std::uint8_t *data, std::size_t len)
        : base(data), size(len)
    {
    }

    bool
    readU8(std::uint8_t &v)
    {
        if (pos + 1 > size)
            return false;
        v = base[pos];
        pos += 1;
        return true;
    }

    bool
    readU16(std::uint16_t &v)
    {
        if (pos + 2 > size)
            return false;
        v = static_cast<std::uint16_t>(base[pos] |
                                       (base[pos + 1] << 8));
        pos += 2;
        return true;
    }

    bool
    readU32(std::uint32_t &v)
    {
        if (pos + 4 > size)
            return false;
        v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(base[pos + i]) << (8 * i);
        pos += 4;
        return true;
    }

    bool
    readU64(std::uint64_t &v)
    {
        if (pos + 8 > size)
            return false;
        v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(base[pos + i]) << (8 * i);
        pos += 8;
        return true;
    }

    bool
    readString(std::string &s)
    {
        std::uint16_t len = 0;
        if (!readU16(len) || pos + len > size)
            return false;
        s.assign(reinterpret_cast<const char *>(base + pos), len);
        pos += len;
        return true;
    }

    bool
    skip(std::size_t n)
    {
        if (pos + n > size)
            return false;
        pos += n;
        return true;
    }

    std::size_t at() const { return pos; }
    std::size_t remaining() const { return size - pos; }
    bool done() const { return pos == size; }

  private:
    const std::uint8_t *base;
    std::size_t size;
    std::size_t pos = 0;
};

// ---- section serializers -------------------------------------------

void
appendMetricsSection(std::vector<std::uint8_t> &out,
                     const Metrics &metrics)
{
    const std::vector<ExportSample> samples = metrics.exportSamples();
    putU32(out, static_cast<std::uint32_t>(SnapshotSection::Metrics));
    const std::size_t len_at = out.size();
    putU32(out, 0); // patched below
    const std::size_t body_at = out.size();

    putU32(out, static_cast<std::uint32_t>(samples.size()));
    for (const ExportSample &s : samples) {
        putU8(out, static_cast<std::uint8_t>(s.kind));
        putString(out, s.family);
        panic_if(s.labels.size() > 0xffff, "too many labels");
        putU16(out, static_cast<std::uint16_t>(s.labels.size()));
        for (const auto &[k, v] : s.labels) {
            putString(out, k);
            putString(out, v);
        }
        switch (s.kind) {
          case MetricKind::Counter:
            putU64(out, s.counterVal);
            break;
          case MetricKind::Gauge: {
            // Bit-exact gauge transport: doubles cross the wire as
            // their IEEE-754 pattern, never through a decimal render.
            std::uint64_t bits = 0;
            static_assert(sizeof(bits) == sizeof(s.gaugeVal));
            std::memcpy(&bits, &s.gaugeVal, sizeof(bits));
            putU64(out, bits);
            break;
          }
          case MetricKind::Histogram:
            putU64(out, s.hist.count);
            putU64(out, s.hist.sum);
            putU64(out, s.hist.p50);
            putU64(out, s.hist.p95);
            putU64(out, s.hist.p99);
            putU64(out, s.hist.p999);
            break;
        }
    }
    patchU32(out, len_at,
             static_cast<std::uint32_t>(out.size() - body_at));
}

void
appendLedgerSection(std::vector<std::uint8_t> &out,
                    const ExitLedger &ledger)
{
    putU32(out, static_cast<std::uint32_t>(SnapshotSection::Ledger));
    const std::size_t len_at = out.size();
    putU32(out, 0);
    const std::size_t body_at = out.size();

    const std::vector<ExitLedger::Row> &rows = ledger.rows();
    putU32(out, static_cast<std::uint32_t>(rows.size()));
    for (const ExitLedger::Row &row : rows) {
        putU32(out, row.vm);
        putU32(out, row.vcpu);
        putU32(out, static_cast<std::uint32_t>(row.kind));
        putU32(out, row.code);
        putU64(out, row.events);
        putU64(out, row.ns);
    }
    patchU32(out, len_at,
             static_cast<std::uint32_t>(out.size() - body_at));
}

void
appendTraceSection(std::vector<std::uint8_t> &out, const Tracer &tracer,
                   std::size_t tail_events)
{
    putU32(out, static_cast<std::uint32_t>(SnapshotSection::Trace));
    const std::size_t len_at = out.size();
    putU32(out, 0);
    const std::size_t body_at = out.size();

    const std::vector<TraceEvent> all = tracer.snapshot();
    const std::size_t keep = std::min(tail_events, all.size());
    const std::size_t first = all.size() - keep;

    // Compact local name table: ids in first-appearance order within
    // the tail (deterministic for a given event sequence).
    std::map<TraceNameId, std::uint16_t> local;
    std::vector<TraceNameId> order;
    for (std::size_t i = first; i < all.size(); ++i) {
        const TraceNameId id = all[i].name;
        if (local.emplace(id, static_cast<std::uint16_t>(order.size()))
                .second)
            order.push_back(id);
    }

    putU64(out, tracer.emitted());
    putU64(out, tracer.dropped());
    putU16(out, static_cast<std::uint16_t>(order.size()));
    for (const TraceNameId id : order)
        putString(out, tracer.nameOf(id));
    putU32(out, static_cast<std::uint32_t>(keep));
    for (std::size_t i = first; i < all.size(); ++i) {
        const TraceEvent &ev = all[i];
        putU64(out, ev.ts);
        putU64(out, ev.arg0);
        putU64(out, ev.arg1);
        putU64(out, ev.flowId);
        putU32(out, ev.track);
        putU16(out, local[ev.name]);
        putU8(out, static_cast<std::uint8_t>(ev.cat));
        putU8(out, static_cast<std::uint8_t>(ev.phase));
    }
    patchU32(out, len_at,
             static_cast<std::uint32_t>(out.size() - body_at));
}

} // anonymous namespace

std::uint32_t
telemetryChecksum(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t hash = 2166136261u;
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= 16777619u;
    }
    return hash;
}

std::vector<std::uint8_t>
serializeTelemetrySnapshot(const TelemetrySources &sources,
                           std::uint64_t seq, SimNs now,
                           std::size_t trace_tail_events)
{
    std::vector<std::uint8_t> out;
    out.reserve(4096);

    std::uint16_t sections = 0;
    putU32(out, snapshotMagic);
    putU16(out, snapshotVersion);
    const std::size_t sections_at = out.size();
    putU16(out, 0); // patched below
    putU64(out, seq);
    putU64(out, now);
    const std::size_t total_at = out.size();
    putU32(out, 0); // total, patched below
    putU32(out, 0); // checksum, patched below
    panic_if(out.size() != snapshotHeaderBytes,
             "snapshot header layout drifted");

    if (sources.metrics) {
        appendMetricsSection(out, *sources.metrics);
        ++sections;
    }
    if (sources.ledger) {
        appendLedgerSection(out, *sources.ledger);
        ++sections;
    }
    if (sources.tracer && trace_tail_events > 0) {
        appendTraceSection(out, *sources.tracer, trace_tail_events);
        ++sections;
    }

    out[sections_at] = static_cast<std::uint8_t>(sections);
    out[sections_at + 1] = static_cast<std::uint8_t>(sections >> 8);
    patchU32(out, total_at, static_cast<std::uint32_t>(out.size()));
    patchU32(out, total_at + 4,
             telemetryChecksum(out.data() + snapshotHeaderBytes,
                               out.size() - snapshotHeaderBytes));
    return out;
}

bool
SnapshotView::fail(std::string why)
{
    parsed = false;
    parseError = std::move(why);
    metricSamples.clear();
    rows.clear();
    tail.clear();
    return false;
}

bool
SnapshotView::parse(const std::uint8_t *data, std::size_t len)
{
    *this = SnapshotView{};
    if (len < snapshotHeaderBytes)
        return fail("snapshot shorter than header");

    Cursor header(data, len);
    std::uint32_t magic = 0;
    std::uint16_t version = 0;
    std::uint16_t sections = 0;
    std::uint32_t checksum = 0;
    header.readU32(magic);
    header.readU16(version);
    header.readU16(sections);
    header.readU64(seqNum);
    std::uint64_t ns = 0;
    header.readU64(ns);
    snapNs = ns;
    header.readU32(total);
    header.readU32(checksum);

    if (magic != snapshotMagic)
        return fail("bad snapshot magic");
    if (version != snapshotVersion)
        return fail(detail::format("unsupported snapshot version %u",
                                   version));
    if (total < snapshotHeaderBytes || total > len)
        return fail("snapshot truncated (total out of bounds)");
    const std::uint32_t want = telemetryChecksum(
        data + snapshotHeaderBytes, total - snapshotHeaderBytes);
    if (checksum != want)
        return fail("snapshot checksum mismatch");

    Cursor cur(data + snapshotHeaderBytes, total - snapshotHeaderBytes);
    for (std::uint16_t s = 0; s < sections; ++s) {
        std::uint32_t tag = 0;
        std::uint32_t bytes = 0;
        if (!cur.readU32(tag) || !cur.readU32(bytes) ||
            bytes > cur.remaining())
            return fail("section header truncated");
        Cursor body(data + snapshotHeaderBytes + cur.at(), bytes);
        // Advance past the section regardless of tag so unknown
        // sections are skippable (forward compatibility).
        cur.skip(bytes);
        switch (static_cast<SnapshotSection>(tag)) {
          case SnapshotSection::Metrics: {
            std::uint32_t count = 0;
            if (!body.readU32(count))
                return fail("metrics section truncated");
            metricSamples.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i) {
                ExportSample e;
                std::uint8_t kind = 0;
                std::uint16_t labels = 0;
                if (!body.readU8(kind) || kind > 2 ||
                    !body.readString(e.family) ||
                    !body.readU16(labels))
                    return fail("metric sample truncated");
                e.kind = static_cast<MetricKind>(kind);
                for (std::uint16_t l = 0; l < labels; ++l) {
                    std::string k, v;
                    if (!body.readString(k) || !body.readString(v))
                        return fail("metric label truncated");
                    e.labels.emplace_back(std::move(k), std::move(v));
                }
                e.labelStr = renderMetricLabels(e.labels);
                switch (e.kind) {
                  case MetricKind::Counter:
                    if (!body.readU64(e.counterVal))
                        return fail("counter value truncated");
                    break;
                  case MetricKind::Gauge: {
                    std::uint64_t bits = 0;
                    if (!body.readU64(bits))
                        return fail("gauge value truncated");
                    std::memcpy(&e.gaugeVal, &bits, sizeof(bits));
                    break;
                  }
                  case MetricKind::Histogram:
                    if (!body.readU64(e.hist.count) ||
                        !body.readU64(e.hist.sum) ||
                        !body.readU64(e.hist.p50) ||
                        !body.readU64(e.hist.p95) ||
                        !body.readU64(e.hist.p99) ||
                        !body.readU64(e.hist.p999))
                        return fail("histogram summary truncated");
                    break;
                }
                metricSamples.push_back(std::move(e));
            }
            sawMetrics = true;
            break;
          }
          case SnapshotSection::Ledger: {
            std::uint32_t count = 0;
            if (!body.readU32(count))
                return fail("ledger section truncated");
            rows.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i) {
                LedgerRow row;
                std::uint32_t kind = 0;
                std::uint64_t ns_val = 0;
                if (!body.readU32(row.vm) || !body.readU32(row.vcpu) ||
                    !body.readU32(kind) || kind >= costKindCount ||
                    !body.readU32(row.code) ||
                    !body.readU64(row.events) ||
                    !body.readU64(ns_val))
                    return fail("ledger row truncated");
                row.kind = static_cast<CostKind>(kind);
                row.ns = ns_val;
                rows.push_back(row);
            }
            sawLedger = true;
            break;
          }
          case SnapshotSection::Trace: {
            std::uint16_t name_count = 0;
            if (!body.readU64(trEmitted) ||
                !body.readU64(trDropped) ||
                !body.readU16(name_count))
                return fail("trace section truncated");
            std::vector<std::string> names(name_count);
            for (std::uint16_t i = 0; i < name_count; ++i) {
                if (!body.readString(names[i]))
                    return fail("trace name table truncated");
            }
            std::uint32_t count = 0;
            if (!body.readU32(count))
                return fail("trace section truncated");
            tail.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i) {
                TraceTailEvent ev;
                std::uint64_t ts = 0;
                std::uint16_t name = 0;
                std::uint8_t cat = 0;
                std::uint8_t phase = 0;
                if (!body.readU64(ts) || !body.readU64(ev.arg0) ||
                    !body.readU64(ev.arg1) ||
                    !body.readU64(ev.flowId) ||
                    !body.readU32(ev.track) || !body.readU16(name) ||
                    name >= name_count || !body.readU8(cat) ||
                    cat >= spanCatCount || !body.readU8(phase) ||
                    phase > static_cast<std::uint8_t>(
                                TracePhase::AsyncEnd))
                    return fail("trace event truncated");
                ev.ts = ts;
                ev.name = names[name];
                ev.cat = static_cast<SpanCat>(cat);
                ev.phase = static_cast<TracePhase>(phase);
                tail.push_back(std::move(ev));
            }
            sawTrace = true;
            break;
          }
          default:
            // Unknown section: skipped above, nothing to do.
            break;
        }
    }
    if (!cur.done())
        return fail("trailing bytes after last section");
    parsed = true;
    return true;
}

std::string
SnapshotView::prometheus() const
{
    return renderPrometheus(metricSamples);
}

std::string
SnapshotView::csvHeader() const
{
    return renderMetricsCsvHeader(metricSamples);
}

std::string
SnapshotView::csvRow() const
{
    return renderMetricsCsvRow(snapNs, metricSamples);
}

} // namespace elisa::sim
