/**
 * @file
 * Labeled metrics registry: typed counters, gauges and histograms with
 * a dense-id hot path, plus byte-deterministic exporters.
 *
 * Metrics is the aggregate layer above the per-subsystem StatSets that
 * PR 1 interned: every existing hot path keeps incrementing its dense
 * StatIds (zero added cost), and a Metrics registry *adopts* those
 * StatSets as labeled counter families at export time (subsuming
 * sim::Stats as its storage backend). First-class metrics — gauges,
 * histograms, and counters that belong to no StatSet — register
 * directly and are updated through dense MetricIds, never per-event
 * string lookups.
 *
 * Label interning: a metric is identified by (name, sorted label
 * pairs). Registration is idempotent — the same identity always
 * resolves to the same MetricId — and the index key is structured
 * (control-character separators), so names and label values containing
 * '=', ',' or '_' can never collide into one identity.
 *
 * Exporters (all byte-deterministic for a given registry state):
 *  - prometheus(): Prometheus text exposition — counters as
 *    "<name>_total", gauges plain, histograms as summaries with
 *    p50/p95/p99/p999 quantile samples; families sorted by name, then
 *    samples by label string.
 *  - report(): human-readable sections (replaces Stats::dump at call
 *    sites that want the whole machine, not one StatSet).
 *  - csvHeader()/csvRow(): one wide time-series row per simulated-time
 *    sample (see MetricsCsvSampler and Engine::setSampler).
 *
 * Layering: like Tracer and FaultPlan, this file knows nothing about
 * vCPUs or the hypervisor; subsystems attach their StatSets with plain
 * string labels (by convention vm="<id>", vcpu="<id>").
 */

#ifndef ELISA_SIM_METRICS_HH
#define ELISA_SIM_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "sim/histogram.hh"
#include "sim/stats.hh"

namespace elisa::sim
{

/** Metric families a registry can hold. */
enum class MetricKind : std::uint8_t
{
    Counter,   ///< monotonically increasing uint64
    Gauge,     ///< last-written double (occupancy, depth, ratio)
    Histogram, ///< sim::Histogram of uint64 samples (ns by convention)
};

/** Render a kind (report/debugging). */
const char *metricKindToString(MetricKind kind);

/**
 * Dense handle of one registered metric. Obtained once via
 * counter()/gauge()/histogram(); updating through it is an array
 * index, no string or label hashing. Only meaningful for the Metrics
 * registry that issued it.
 */
using MetricId = std::uint32_t;

/** One label dimension: (key, value). */
using Label = std::pair<std::string, std::string>;

/** A label set; sorted by key at registration. */
using Labels = std::vector<Label>;

/**
 * Materialized histogram summary: the exact values the exporters
 * render. Flattening happens at collection time so a sample can be
 * serialized (telemetry snapshots) without dragging the Histogram
 * storage along — a re-render from these six integers is byte-equal
 * to a render from the live histogram.
 */
struct HistSummary
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
};

/**
 * One flattened, self-contained export sample. The registry's
 * exportSamples() returns these sorted by (family, labelStr); the
 * free renderers below turn a sample vector into the Prometheus/CSV
 * documents. Because the renderers take samples — not the registry —
 * a telemetry consumer that deserialized the samples re-renders the
 * exact bytes the host would have produced.
 */
struct ExportSample
{
    std::string family;   ///< sanitized family name
    std::string labelStr; ///< rendered {k="v",...} or ""
    Labels labels;        ///< raw sorted pairs (quantile re-render)
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counterVal = 0;
    double gaugeVal = 0.0;
    HistSummary hist;
};

/** Render {k="v",...} (sorted pairs in, "" for empty labels). */
std::string renderMetricLabels(const Labels &labels);

/**
 * Prometheus text exposition (0.0.4) of a flattened sample vector.
 * Metrics::prometheus() delegates here; so does the monitor guest's
 * re-export — one renderer, byte-identical output by construction.
 */
std::string renderPrometheus(const std::vector<ExportSample> &samples);

/** CSV time-series header row for a sample vector ("sim_ns,..."). */
std::string
renderMetricsCsvHeader(const std::vector<ExportSample> &samples);

/** One CSV row of the samples' values at simulated time @p now. */
std::string renderMetricsCsvRow(SimNs now,
                                const std::vector<ExportSample> &samples);

/** Column count the CSV renderers emit for @p samples (incl sim_ns). */
std::size_t
metricsCsvColumnCount(const std::vector<ExportSample> &samples);

/**
 * The registry. Owns first-class metric storage; adopted StatSets stay
 * owned by their subsystems (non-owning pointers, same lifetime
 * contract as Tracer/FaultPlan installation).
 */
class Metrics
{
  public:
    /**
     * Register (or re-resolve) a counter identified by
     * (@p name, @p labels). The only string-keyed operation — call at
     * construction time, never per event.
     */
    MetricId counter(const std::string &name, Labels labels = {});

    /** Register (or re-resolve) a gauge. */
    MetricId gauge(const std::string &name, Labels labels = {});

    /**
     * Register (or re-resolve) a histogram metric.
     * @param sub_bucket_bits / @p max_value forwarded to
     *        sim::Histogram on first registration.
     */
    MetricId histogram(const std::string &name, Labels labels = {},
                       unsigned sub_bucket_bits = 6,
                       std::uint64_t max_value = 1ull << 40);

    // ---- hot path (no checks, no lookups) --------------------------
    /** Increment counter @p id. */
    void
    add(MetricId id, std::uint64_t delta = 1)
    {
        counters[metas[id].slot] += delta;
    }

    /** Set gauge @p id. */
    void
    set(MetricId id, double value)
    {
        gauges[metas[id].slot] = value;
    }

    /** Record one sample into histogram @p id. */
    void
    observe(MetricId id, std::uint64_t sample)
    {
        hists[metas[id].slot].record(sample);
    }

    // ---- reads (tests / exporters) ---------------------------------
    std::uint64_t counterValue(MetricId id) const;
    double gaugeValue(MetricId id) const;
    const Histogram &histogramAt(MetricId id) const;

    /** Number of first-class registered metrics. */
    std::size_t size() const { return metas.size(); }

    /** Kind of a registered metric. */
    MetricKind kind(MetricId id) const { return metas[id].kind; }

    /**
     * Adopt @p set as a family of labeled counters: at export time
     * every counter "x" of the set appears as counter
     * "<prefix>x" with @p labels. Non-owning — the StatSet must
     * outlive this registry or be detached first. Attaching the same
     * set again replaces its labels/prefix (idempotent).
     */
    void attachStatSet(const StatSet &set, Labels labels,
                       std::string prefix = "");

    /** Remove an adopted StatSet (no-op when not attached). */
    void detachStatSet(const StatSet &set);

    /** Number of adopted StatSets. */
    std::size_t statSetCount() const { return sources.size(); }

    /**
     * Reset every first-class value (counters to 0, gauges to 0,
     * histograms emptied). Registrations are kept; adopted StatSets
     * are NOT cleared (their subsystems own them).
     */
    void clearValues();

    // ---- exporters -------------------------------------------------
    /**
     * Flatten every first-class metric and adopted StatSet into
     * self-contained ExportSamples, sorted by (family, labelStr).
     * This is the one collection point all exporters — and the
     * telemetry snapshot serializer — share.
     */
    std::vector<ExportSample> exportSamples() const;

    /**
     * Prometheus text exposition (version 0.0.4), byte-deterministic:
     * families sorted by name, samples sorted by label string.
     * Equivalent to renderPrometheus(exportSamples()).
     */
    std::string prometheus() const;

    /** Human-readable report, one "name{labels} = value" per line. */
    std::string report() const;

    /**
     * CSV time-series header: "sim_ns" plus one column per sample
     * (histograms expand to _count/_p50/_p99). Column set is computed
     * fresh; register everything before sampling begins.
     */
    std::string csvHeader() const;

    /** One CSV row of current values at simulated time @p now. */
    std::string csvRow(SimNs now) const;

    /**
     * Number of columns csvHeader()/csvRow() emit right now (sim_ns
     * plus one per scalar sample, three per histogram). The sampler
     * compares this across ticks; counting commas would miscount
     * label cells, which are quoted and may contain commas.
     */
    std::size_t csvColumnCount() const;

  private:
    struct Meta
    {
        std::string name;
        Labels labels;
        MetricKind kind;
        std::uint32_t slot; ///< index into the kind's value array
    };

    struct Source
    {
        const StatSet *set;
        Labels labels;
        std::string prefix;
    };

    /** One flattened export sample (shared by every exporter). */
    struct Sample
    {
        std::string family;   ///< sanitized family name
        std::string labelStr; ///< rendered {k="v",...} or ""
        Labels labels;        ///< raw pairs (quantile re-rendering)
        MetricKind kind;
        std::uint64_t counterVal = 0;
        double gaugeVal = 0.0;
        const Histogram *hist = nullptr;
    };

    /** Flatten first-class metrics + adopted StatSets, sorted. */
    std::vector<Sample> collect() const;

    MetricId registerMetric(const std::string &name, Labels labels,
                            MetricKind kind, unsigned sub_bits,
                            std::uint64_t max_value);

    std::map<std::string, MetricId> index; ///< structured key -> id
    std::vector<Meta> metas;
    std::vector<std::uint64_t> counters;
    std::vector<double> gauges;
    std::vector<Histogram> hists;
    std::vector<Source> sources;
};

/**
 * Accumulates one CSV row per sample tick into a growing document.
 * Pair it with Engine::setSampler for periodic simulated-time
 * snapshots:
 *
 *   MetricsCsvSampler sampler(metrics);
 *   engine.setSampler(10_000, [&](SimNs t) { sampler.sample(t); });
 *
 * The column set is frozen at construction (the header row); a sample
 * observing a different column count panics, pointing at metrics
 * registered after sampling started.
 */
class MetricsCsvSampler
{
  public:
    explicit MetricsCsvSampler(const Metrics &metrics);

    /** Append one row at simulated time @p now. */
    void sample(SimNs now);

    /** Rows recorded so far. */
    std::size_t rows() const { return rowCount; }

    /** The full CSV document (header + rows). */
    const std::string &csv() const { return doc; }

  private:
    const Metrics &reg;
    std::string doc;
    std::size_t columns;
    std::size_t rowCount = 0;
};

} // namespace elisa::sim

#endif // ELISA_SIM_METRICS_HH
