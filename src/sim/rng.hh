/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * xoshiro256** seeded through splitmix64: fast, high quality, and — unlike
 * std::mt19937 uses across standard libraries — bit-reproducible, which
 * keeps every experiment deterministic across hosts.
 */

#ifndef ELISA_SIM_RNG_HH
#define ELISA_SIM_RNG_HH

#include <cstdint>

namespace elisa::sim
{

/**
 * Deterministic random number generator (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

  private:
    std::uint64_t s[4];
};

} // namespace elisa::sim

#endif // ELISA_SIM_RNG_HH
