#include "sim/resource.hh"

// SimLock and SimResource are header-only; see resource.hh.
