#include "cpu/vcpu.hh"

#include "base/logging.hh"
#include "cpu/exit.hh"

namespace elisa::cpu
{

Vcpu::Vcpu(VcpuId id, VmId owner, mem::HostMemory &memory,
           mem::FrameAllocator &allocator, const sim::CostModel &cost_model,
           HypercallSink *sink)
    : vcpuId(id), ownerVm(owner), mem(memory), cost(cost_model),
      hypercallSink(sink),
      list(std::make_unique<ept::EptpList>(memory, allocator))
{
    panic_if(sink == nullptr, "vcpu needs a hypercall sink");

    hotIds.vmfunc = statSet.id("vmfunc");
    hotIds.vmfuncFail = statSet.id("vmfunc_fail");
    hotIds.vmcall = statSet.id("vmcall");
    hotIds.cpuid = statSet.id("cpuid");
    hotIds.eptWalk = statSet.id("ept_walk");
    hotIds.eptAdUpdate = statSet.id("ept_ad_update");
    hotIds.eptViolation = statSet.id("ept_violation");
    hotIds.l0Hit = statSet.id("l0_hit");
    translationCache.attachStats(statSet);
}

void
Vcpu::setTracer(sim::Tracer *tracer)
{
    tracerPtr = tracer;
    if (tracerPtr) {
        vmfuncName = tracerPtr->intern("vmfunc");
        vmcallName = tracerPtr->intern("vmcall");
    }
}

void
Vcpu::traceVmfunc(std::uint64_t leaf, EptpIndex index)
{
    tracerPtr->instant(sim::SpanCat::Cpu, vmfuncName, vcpuId,
                       simClock.now(), leaf, index);
}

void
Vcpu::setLedger(sim::ExitLedger *ledger)
{
    ledgerPtr = ledger;
    hypercallSlots.clear();
    if (ledgerPtr) {
        cpuidSlot = ledgerPtr->slot(
            ownerVm, vcpuId, sim::CostKind::Exit,
            static_cast<std::uint32_t>(ExitReason::Cpuid));
    }
}

void
Vcpu::chargeHypercall(std::uint64_t nr, SimNs ns)
{
    auto [it, inserted] = hypercallSlots.try_emplace(nr, 0);
    if (inserted) {
        it->second = ledgerPtr->slot(
            ownerVm, vcpuId, sim::CostKind::Hypercall,
            static_cast<std::uint32_t>(nr));
    }
    ledgerPtr->charge(it->second, ns);
}

void
Vcpu::chargeCpuid(SimNs ns)
{
    ledgerPtr->charge(cpuidSlot, ns);
}

void
Vcpu::activateEptp(EptpIndex index)
{
    auto eptp = list->lookup(index);
    panic_if(!eptp, "activating invalid EPTP list entry %u", index);
    currentEptp = *eptp;
    currentIndex = index;
    translationCache.bumpEpoch();
}

void
Vcpu::vmfunc(std::uint64_t leaf, EptpIndex index)
{
    // The switch attempt itself consumes the instruction's time before
    // any fault is raised.
    simClock.advance(cost.vmfuncNs);
    statSet.inc(hotIds.vmfunc);
    if (tracerPtr) [[unlikely]]
        traceVmfunc(leaf, index);

    if (leaf != 0) {
        statSet.inc(hotIds.vmfuncFail);
        throw VmExitEvent(ExitReason::VmfuncFail, leaf);
    }
    auto eptp = list->lookup(index);
    if (!eptp) {
        statSet.inc(hotIds.vmfuncFail);
        throw VmExitEvent(ExitReason::VmfuncFail, index);
    }
    currentEptp = *eptp;
    currentIndex = index;
    translationCache.bumpEpoch();
}

std::uint64_t
Vcpu::vmcall(const HypercallArgs &args)
{
    statSet.inc(hotIds.vmcall);
    simClock.advance(cost.vmexitNs);
    simClock.advance(cost.hypercallDispatchNs);
    // Frame the exit/entry round trip; the hypervisor nests its own
    // dispatch span (with the hypercall's name) inside this one. The
    // RAII span closes the frame even when the handler throws a
    // VmExitEvent (e.g. an injected KillVm fault).
    sim::ScopedSpan span(tracerPtr, sim::SpanCat::Cpu, vmcallName,
                         vcpuId, simClock, args.nr);
    // Ledger double-entry, exception-safe: the exit+dispatch ns above
    // are charged even when the handler throws (the VM runner then
    // charges the faulting exit separately), the vmentry ns only when
    // the instruction actually re-enters. Local class so the unwind
    // path needs no try/catch in this hot function.
    struct LedgerGuard
    {
        Vcpu &vcpu;
        const std::uint64_t nr;
        SimNs ns;
        ~LedgerGuard()
        {
            if (vcpu.ledgerPtr) [[unlikely]]
                vcpu.chargeHypercall(nr, ns);
        }
    } guard{*this, args.nr,
            cost.vmexitNs + cost.hypercallDispatchNs};
    const std::uint64_t rax = hypercallSink->handleHypercall(*this, args);
    simClock.advance(cost.vmentryNs);
    guard.ns += cost.vmentryNs;
    span.setEndArgs(rax);
    return rax;
}

std::uint64_t
Vcpu::cpuid(std::uint64_t leaf)
{
    statSet.inc(hotIds.cpuid);
    simClock.advance(cost.cpuidRttNs());
    if (ledgerPtr) [[unlikely]]
        chargeCpuid(cost.cpuidRttNs());
    // Canned vendor response; the value is irrelevant to the model.
    return 0x656c6973ull ^ leaf;
}

} // namespace elisa::cpu
