/**
 * @file
 * GuestView: the only way guest software touches memory.
 *
 * Every access is translated through the vcpu's *active* EPT (TLB
 * first, hardware walk on miss) and permission-checked; failures throw
 * VmExitEvent(EptViolation), ripping control back to the VM runner like
 * the hardware would. Access time is charged to the vcpu clock.
 *
 * This is what makes the simulation honest: ELISA isolation is not a
 * claim, it is enforced on the access path — a guest holding a pointer
 * into another context's memory simply faults.
 */

#ifndef ELISA_CPU_GUEST_VIEW_HH
#define ELISA_CPU_GUEST_VIEW_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "base/types.hh"
#include "cpu/exit.hh"
#include "cpu/vcpu.hh"

namespace elisa::cpu
{

/**
 * Access helper bound to one vcpu's current EPT context.
 */
class GuestView
{
  public:
    /**
     * Bind to @p vcpu; the active EPTP is re-read on every access.
     *
     * @param charge_time when false, accesses are translated and
     *        permission-checked as usual but cost no simulated time.
     *        Used for code whose memory work is already folded into a
     *        calibrated lump cost (the ELISA gate trampoline), keeping
     *        the checks honest without double-charging.
     */
    explicit GuestView(Vcpu &vcpu, bool charge_time = true)
        : cpu(vcpu), charging(charge_time)
    {
    }

    /**
     * Translate @p gpa for @p access (TLB + walk + permission check),
     * charging time, throwing VmExitEvent on violation.
     * @return host-physical address of the byte.
     */
    Hpa translate(Gpa gpa, ept::Access access);

    /** Read a trivially-copyable value from guest memory. */
    template <typename T>
    T
    read(Gpa gpa)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        readBytes(gpa, &value, sizeof(T));
        return value;
    }

    /** Write a trivially-copyable value to guest memory. */
    template <typename T>
    void
    write(Gpa gpa, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytes(gpa, &value, sizeof(T));
    }

    /** Copy @p len bytes out of guest memory (may cross pages). */
    void readBytes(Gpa gpa, void *dst, std::uint64_t len);

    /** Copy @p len bytes into guest memory (may cross pages). */
    void writeBytes(Gpa gpa, const void *src, std::uint64_t len);

    /** Zero @p len bytes of guest memory. */
    void zeroBytes(Gpa gpa, std::uint64_t len);

    /** Copy @p len bytes guest-to-guest within this view. */
    void copyBytes(Gpa dst, Gpa src, std::uint64_t len);

    /**
     * Instruction-fetch check: verifies the page holding @p gpa is
     * executable in the active context. The VM runner calls this
     * before dispatching guest code mapped at @p gpa.
     */
    void fetchCheck(Gpa gpa);

    /** Read a NUL-terminated string (bounded by @p max_len). */
    std::string readCString(Gpa gpa, std::uint64_t max_len = 4096);

    /** The vCPU this view is bound to. */
    Vcpu &vcpu() { return cpu; }

  private:
    /** Translate one page-bounded chunk and charge access time. */
    Hpa translateChunk(Gpa gpa, std::uint64_t len, ept::Access access);

    Vcpu &cpu;
    bool charging;
};

} // namespace elisa::cpu

#endif // ELISA_CPU_GUEST_VIEW_HH
