/**
 * @file
 * GuestView: the only way guest software touches memory.
 *
 * Every access is translated through the vcpu's *active* EPT (TLB
 * first, hardware walk on miss) and permission-checked; failures throw
 * VmExitEvent(EptViolation), ripping control back to the VM runner like
 * the hardware would. Access time is charged to the vcpu clock.
 *
 * This is what makes the simulation honest: ELISA isolation is not a
 * claim, it is enforced on the access path — a guest holding a pointer
 * into another context's memory simply faults.
 *
 * Host-side performance: two mechanisms keep the access path cheap
 * without changing any simulated-time result (see EXPERIMENTS.md,
 * "Host-side performance budget"):
 *
 *  - An *L0 micro-cache*: the last translated page per access kind is
 *    remembered privately, stamped with the shared ept::Tlb's epoch.
 *    A repeat hit skips the Tlb hash entirely. Any event after which
 *    the remembered translation might diverge from what a Tlb lookup
 *    would return — a Tlb fill (possible eviction), an INVEPT flush,
 *    an EPTP switch — bumps the epoch and kills the L0 entry, so
 *    isolation revocations are never outlived. An L0 hit charges
 *    exactly what the Tlb-hit path would have (memAccessNs per beat).
 *
 *  - *Batched time charging*: per-chunk memAccessNs/eptWalkNs charges
 *    accumulate in a local counter and are flushed to the SimClock at
 *    the end of each public operation (and before any VmExitEvent
 *    propagates), so final timestamps are bit-identical to per-access
 *    charging while the hot loop touches the clock once.
 */

#ifndef ELISA_CPU_GUEST_VIEW_HH
#define ELISA_CPU_GUEST_VIEW_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>

#include "base/bitops.hh"
#include "base/types.hh"
#include "cpu/exit.hh"
#include "cpu/vcpu.hh"

namespace elisa::cpu
{

/**
 * Access helper bound to one vcpu's current EPT context.
 */
class GuestView
{
  public:
    /**
     * Bind to @p vcpu; the active EPTP is re-read on every access.
     *
     * @param charge_time when false, accesses are translated and
     *        permission-checked as usual but cost no simulated time.
     *        Used for code whose memory work is already folded into a
     *        calibrated lump cost (the ELISA gate trampoline), keeping
     *        the checks honest without double-charging.
     */
    explicit GuestView(Vcpu &vcpu, bool charge_time = true)
        : cpu(vcpu), charging(charge_time)
    {
    }

    GuestView(const GuestView &) = delete;
    GuestView &operator=(const GuestView &) = delete;

    /**
     * Translate @p gpa for @p access (TLB + walk + permission check),
     * charging time, throwing VmExitEvent on violation.
     * @return host-physical address of the byte.
     */
    Hpa translate(Gpa gpa, ept::Access access);

    /** Read a trivially-copyable value from guest memory. */
    template <typename T>
    T
    read(Gpa gpa)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        readBytes(gpa, &value, sizeof(T));
        return value;
    }

    /** Write a trivially-copyable value to guest memory. */
    template <typename T>
    void
    write(Gpa gpa, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytes(gpa, &value, sizeof(T));
    }

    /** Copy @p len bytes out of guest memory (may cross pages). */
    void readBytes(Gpa gpa, void *dst, std::uint64_t len);

    /** Copy @p len bytes into guest memory (may cross pages). */
    void writeBytes(Gpa gpa, const void *src, std::uint64_t len);

    /** Zero @p len bytes of guest memory. */
    void zeroBytes(Gpa gpa, std::uint64_t len);

    /**
     * Copy @p len bytes guest-to-guest within this view.
     *
     * Semantics are those of a page-chunked bounce copy (read up to
     * 4 KiB, then write it), which the implementation preserves while
     * copying frame-to-frame when the resolved host ranges do not
     * overlap within a chunk.
     */
    void copyBytes(Gpa dst, Gpa src, std::uint64_t len);

    /**
     * Instruction-fetch check: verifies the page holding @p gpa is
     * executable in the active context. The VM runner calls this
     * before dispatching guest code mapped at @p gpa.
     */
    void fetchCheck(Gpa gpa);

    /** Read a NUL-terminated string (bounded by @p max_len). */
    std::string readCString(Gpa gpa, std::uint64_t max_len = 4096);

    /** The vCPU this view is bound to. */
    Vcpu &vcpu() { return cpu; }

  private:
    /**
     * One L0 line: the last successful translation for one access
     * kind. Valid iff eptp matches the active EPTP and epoch matches
     * the Tlb's current epoch (eptp == 0 means never filled).
     */
    struct L0Entry
    {
        std::uint64_t eptp = 0;
        std::uint64_t epoch = 0;
        Gpa gpaPage = 0;
        Hpa hpaPage = 0;
    };

    /** Translate one page-bounded chunk and charge access time. */
    Hpa translateChunk(Gpa gpa, std::uint64_t len, ept::Access access);

    /**
     * Cold continuation of translateChunk: the access violated.
     * Consults the vCPU's EptFaultSink (demand paging) and either
     * returns the post-resolution translation or throws the
     * guest-visible VmExitEvent. Out of line and noinline so the
     * fault machinery adds nothing to the hot translation body.
     */
    [[gnu::noinline]] ept::Translation
    faultChunk(Gpa gpa, std::uint64_t len, ept::Access access,
               ept::Perms need, std::optional<ept::Translation> cached);

    /** Accumulate the per-beat cost of one chunk access. */
    void
    chargeAccess(std::uint64_t len)
    {
        if (charging) {
            pendingNs += cpu.costModel().memAccessNs *
                         divCeil(std::max<std::uint64_t>(len, 1), 8);
        }
    }

    /** Push accumulated charges to the vcpu clock. */
    void
    flushTime()
    {
        if (pendingNs != 0) {
            cpu.clock().advance(pendingNs);
            pendingNs = 0;
        }
    }

    Vcpu &cpu;
    bool charging;
    SimNs pendingNs = 0;
    L0Entry l0[3]; ///< indexed by ept::Access
    std::unique_ptr<std::uint8_t[]> bounceBuf; ///< lazily, copyBytes only
};

} // namespace elisa::cpu

#endif // ELISA_CPU_GUEST_VIEW_HH
