#include "cpu/guest_view.hh"

#include <algorithm>
#include <cstring>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace elisa::cpu
{

namespace
{

/**
 * Copy a small run without libc memcpy: the compiler expands a
 * dynamic-length memcpy into `rep movs`, whose startup cost dwarfs the
 * 8..64-byte descriptor/spill copies that dominate the access path.
 */
inline void
copySmall(std::uint8_t *dst, const std::uint8_t *src, std::uint64_t len)
{
    while (len >= 8) {
        std::uint64_t w;
        std::memcpy(&w, src, 8);
        std::memcpy(dst, &w, 8);
        src += 8;
        dst += 8;
        len -= 8;
    }
    while (len > 0) {
        *dst++ = *src++;
        --len;
    }
}

/** Largest length routed through copySmall(); beyond this the real
 *  memcpy's startup amortizes. */
constexpr std::uint64_t smallCopyMax = 64;

} // anonymous namespace

Hpa
GuestView::translateChunk(Gpa gpa, std::uint64_t len, ept::Access access)
{
    const std::uint64_t eptp = cpu.activeEptp();
    panic_if(eptp == 0, "guest access before EPT activation");

    ept::Tlb &tlb = cpu.tlb();
    const Gpa page = pageAlignDown(gpa);

    // L0 fast path: the line was filled after a successful permission
    // check for this access kind, and no fill / flush / EPTP switch
    // has happened since (epoch), so the shared Tlb would return the
    // same translation and charge the same time (one hit, no walk).
    L0Entry &line = l0[static_cast<unsigned>(access)];
    if (line.eptp == eptp && line.gpaPage == page &&
        line.epoch == tlb.epoch()) {
        cpu.stats().inc(cpu.statIds().l0Hit);
        chargeAccess(len);
        return line.hpaPage | (gpa & pageMask);
    }

    const auto &cost = cpu.costModel();
    ept::Perms need = ept::Perms::Read;
    switch (access) {
      case ept::Access::Read:
        need = ept::Perms::Read;
        break;
      case ept::Access::Write:
        need = ept::Perms::Write;
        break;
      case ept::Access::Exec:
        need = ept::Perms::Exec;
        break;
    }

    const bool is_write = access == ept::Access::Write;
    auto cached = tlb.lookup(eptp, gpa);
    if (!cached) {
        cached = ept::hardwareWalkAd(cpu.memory(), eptp, gpa, is_write);
        if (charging)
            pendingNs += cost.eptWalkNs;
        cpu.stats().inc(cpu.statIds().eptWalk);
        if (cached)
            tlb.fill(eptp, gpa, *cached, is_write);
    } else if (is_write && !tlb.dirtyKnown(eptp, gpa)) {
        // First write through a read-filled entry: the hardware
        // re-walks to set the leaf's dirty flag.
        ept::hardwareWalkAd(cpu.memory(), eptp, gpa, true);
        tlb.setDirtyKnown(eptp, gpa);
        if (charging)
            pendingNs += cost.eptWalkNs;
        cpu.stats().inc(cpu.statIds().eptAdUpdate);
    }
    // Charge the access itself (per 8-byte beat).
    chargeAccess(len);

    if (!cached || !ept::permits(cached->perms, need))
        cached = faultChunk(gpa, len, access, need, cached);

    line.eptp = eptp;
    line.epoch = tlb.epoch();
    line.gpaPage = page;
    line.hpaPage = pageAlignDown(cached->hpa);
    return cached->hpa;
}

ept::Translation
GuestView::faultChunk(Gpa gpa, std::uint64_t len, ept::Access access,
                      ept::Perms need,
                      std::optional<ept::Translation> cached)
{
    const std::uint64_t eptp = cpu.activeEptp();
    const auto &cost = cpu.costModel();
    const bool is_write = access == ept::Access::Write;
    ept::Tlb &tlb = cpu.tlb();

    ept::EptViolation violation;
    violation.gpa = gpa;
    violation.access = access;
    violation.present = cached ? cached->perms : ept::Perms::None;
    violation.notMapped = !cached.has_value();
    cpu.stats().inc(cpu.statIds().eptViolation);
    // The faulting access was charged (walk + beats), exactly as
    // before batching: settle the clock before unwinding.
    flushTime();
    EptFaultSink *sink = cpu.faultSink();
    if (sink && sink->resolveEptViolation(cpu, violation)) {
        // Resolved (demand paging): VMRESUME re-executes the access —
        // a fresh walk (the pager flushed the TLB) and fresh beats,
        // charged like any first touch.
        cached = ept::hardwareWalkAd(cpu.memory(), eptp, gpa, is_write);
        if (charging)
            pendingNs += cost.eptWalkNs;
        cpu.stats().inc(cpu.statIds().eptWalk);
        if (cached)
            tlb.fill(eptp, gpa, *cached, is_write);
        chargeAccess(len);
    }
    if (!cached || !ept::permits(cached->perms, need)) {
        // Unresolved, or resolved into a mapping whose restored
        // permissions still refuse this access: exit with the
        // post-resolution qualification.
        violation.present = cached ? cached->perms : ept::Perms::None;
        violation.notMapped = !cached.has_value();
        flushTime();
        throw VmExitEvent(violation);
    }
    return *cached;
}

Hpa
GuestView::translate(Gpa gpa, ept::Access access)
{
    const Hpa hpa = translateChunk(gpa, 1, access);
    flushTime();
    return hpa;
}

void
GuestView::readBytes(Gpa gpa, void *dst, std::uint64_t len)
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len, pageSize - (gpa & pageMask));
        const Hpa hpa = translateChunk(gpa, in_page, ept::Access::Read);
        if (in_page <= smallCopyMax)
            copySmall(out, cpu.memory().raw(hpa, in_page), in_page);
        else
            cpu.memory().read(hpa, out, in_page);
        gpa += in_page;
        out += in_page;
        len -= in_page;
    }
    flushTime();
}

void
GuestView::writeBytes(Gpa gpa, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len, pageSize - (gpa & pageMask));
        const Hpa hpa = translateChunk(gpa, in_page, ept::Access::Write);
        if (in_page <= smallCopyMax)
            copySmall(cpu.memory().raw(hpa, in_page), in, in_page);
        else
            cpu.memory().write(hpa, in, in_page);
        gpa += in_page;
        in += in_page;
        len -= in_page;
    }
    flushTime();
}

void
GuestView::zeroBytes(Gpa gpa, std::uint64_t len)
{
    while (len > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len, pageSize - (gpa & pageMask));
        const Hpa hpa = translateChunk(gpa, in_page, ept::Access::Write);
        cpu.memory().zero(hpa, in_page);
        gpa += in_page;
        len -= in_page;
    }
    flushTime();
}

void
GuestView::copyBytes(Gpa dst, Gpa src, std::uint64_t len)
{
    // Page-chunked copy. Translation order per chunk is the same as
    // the historical read-to-bounce-then-write implementation (all
    // source pieces, then all destination pieces), so charged time and
    // fault order are identical; the data movement is frame-to-frame
    // unless the chunk's host ranges overlap, in which case a bounce
    // buffer preserves the "snapshot source chunk first" semantics.
    struct Piece
    {
        Hpa hpa;
        std::uint64_t len;
    };
    while (len > 0) {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(len, pageSize);

        // A <= 4 KiB chunk spans at most two pages on either side.
        Piece src_p[2];
        unsigned src_n = 0;
        for (std::uint64_t done = 0; done < chunk;) {
            const Gpa g = src + done;
            const std::uint64_t in_page = std::min<std::uint64_t>(
                chunk - done, pageSize - (g & pageMask));
            src_p[src_n++] =
                {translateChunk(g, in_page, ept::Access::Read), in_page};
            done += in_page;
        }
        Piece dst_p[2];
        unsigned dst_n = 0;
        for (std::uint64_t done = 0; done < chunk;) {
            const Gpa g = dst + done;
            const std::uint64_t in_page = std::min<std::uint64_t>(
                chunk - done, pageSize - (g & pageMask));
            dst_p[dst_n++] =
                {translateChunk(g, in_page, ept::Access::Write), in_page};
            done += in_page;
        }

        bool overlap = false;
        for (unsigned i = 0; i < src_n && !overlap; ++i) {
            for (unsigned j = 0; j < dst_n; ++j) {
                if (src_p[i].hpa < dst_p[j].hpa + dst_p[j].len &&
                    dst_p[j].hpa < src_p[i].hpa + src_p[i].len) {
                    overlap = true;
                    break;
                }
            }
        }

        mem::HostMemory &memory = cpu.memory();
        if (overlap) {
            if (!bounceBuf)
                bounceBuf = std::make_unique<std::uint8_t[]>(pageSize);
            std::uint8_t *bp = bounceBuf.get();
            for (unsigned i = 0; i < src_n; ++i) {
                memory.read(src_p[i].hpa, bp, src_p[i].len);
                bp += src_p[i].len;
            }
            const std::uint8_t *rp = bounceBuf.get();
            for (unsigned j = 0; j < dst_n; ++j) {
                memory.write(dst_p[j].hpa, rp, dst_p[j].len);
                rp += dst_p[j].len;
            }
        } else {
            // Walk both piece lists in step, copying the overlap of
            // the current source and destination pieces directly.
            unsigned i = 0, j = 0;
            std::uint64_t si = 0, dj = 0;
            while (i < src_n && j < dst_n) {
                const std::uint64_t n = std::min(src_p[i].len - si,
                                                 dst_p[j].len - dj);
                std::memcpy(memory.raw(dst_p[j].hpa + dj, n),
                            memory.raw(src_p[i].hpa + si, n), n);
                si += n;
                dj += n;
                if (si == src_p[i].len) {
                    ++i;
                    si = 0;
                }
                if (dj == dst_p[j].len) {
                    ++j;
                    dj = 0;
                }
            }
        }

        src += chunk;
        dst += chunk;
        len -= chunk;
    }
    flushTime();
}

void
GuestView::fetchCheck(Gpa gpa)
{
    translateChunk(gpa, 8, ept::Access::Exec);
    flushTime();
}

std::string
GuestView::readCString(Gpa gpa, std::uint64_t max_len)
{
    std::string out;
    for (std::uint64_t i = 0; i < max_len; ++i) {
        const char c = static_cast<char>(read<std::uint8_t>(gpa + i));
        if (c == '\0')
            return out;
        out.push_back(c);
    }
    return out;
}

} // namespace elisa::cpu
