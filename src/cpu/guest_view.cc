#include "cpu/guest_view.hh"

#include <algorithm>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace elisa::cpu
{

Hpa
GuestView::translateChunk(Gpa gpa, std::uint64_t len, ept::Access access)
{
    const std::uint64_t eptp = cpu.activeEptp();
    panic_if(eptp == 0, "guest access before EPT activation");

    const auto &cost = cpu.costModel();
    ept::Perms need = ept::Perms::Read;
    switch (access) {
      case ept::Access::Read:
        need = ept::Perms::Read;
        break;
      case ept::Access::Write:
        need = ept::Perms::Write;
        break;
      case ept::Access::Exec:
        need = ept::Perms::Exec;
        break;
    }

    const bool is_write = access == ept::Access::Write;
    auto cached = cpu.tlb().lookup(eptp, gpa);
    if (!cached) {
        cached = ept::hardwareWalkAd(cpu.memory(), eptp, gpa, is_write);
        if (charging)
            cpu.clock().advance(cost.eptWalkNs);
        cpu.stats().inc("ept_walk");
        if (cached)
            cpu.tlb().fill(eptp, gpa, *cached, is_write);
    } else if (is_write && !cpu.tlb().dirtyKnown(eptp, gpa)) {
        // First write through a read-filled entry: the hardware
        // re-walks to set the leaf's dirty flag.
        ept::hardwareWalkAd(cpu.memory(), eptp, gpa, true);
        cpu.tlb().setDirtyKnown(eptp, gpa);
        if (charging)
            cpu.clock().advance(cost.eptWalkNs);
        cpu.stats().inc("ept_ad_update");
    }
    // Charge the access itself (per 8-byte beat).
    if (charging) {
        cpu.clock().advance(
            cost.memAccessNs *
            divCeil(std::max<std::uint64_t>(len, 1), 8));
    }

    if (!cached || !ept::permits(cached->perms, need)) {
        ept::EptViolation violation;
        violation.gpa = gpa;
        violation.access = access;
        violation.present =
            cached ? cached->perms : ept::Perms::None;
        violation.notMapped = !cached.has_value();
        cpu.stats().inc("ept_violation");
        throw VmExitEvent(violation);
    }
    return cached->hpa;
}

Hpa
GuestView::translate(Gpa gpa, ept::Access access)
{
    return translateChunk(gpa, 1, access);
}

void
GuestView::readBytes(Gpa gpa, void *dst, std::uint64_t len)
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len, pageSize - (gpa & pageMask));
        const Hpa hpa = translateChunk(gpa, in_page, ept::Access::Read);
        cpu.memory().read(hpa, out, in_page);
        gpa += in_page;
        out += in_page;
        len -= in_page;
    }
}

void
GuestView::writeBytes(Gpa gpa, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len, pageSize - (gpa & pageMask));
        const Hpa hpa = translateChunk(gpa, in_page, ept::Access::Write);
        cpu.memory().write(hpa, in, in_page);
        gpa += in_page;
        in += in_page;
        len -= in_page;
    }
}

void
GuestView::zeroBytes(Gpa gpa, std::uint64_t len)
{
    while (len > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len, pageSize - (gpa & pageMask));
        const Hpa hpa = translateChunk(gpa, in_page, ept::Access::Write);
        cpu.memory().zero(hpa, in_page);
        gpa += in_page;
        len -= in_page;
    }
}

void
GuestView::copyBytes(Gpa dst, Gpa src, std::uint64_t len)
{
    // Page-chunked copy through a bounce buffer: the two ranges may be
    // mapped to unrelated host frames.
    std::uint8_t bounce[pageSize];
    while (len > 0) {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(len, pageSize);
        readBytes(src, bounce, chunk);
        writeBytes(dst, bounce, chunk);
        src += chunk;
        dst += chunk;
        len -= chunk;
    }
}

void
GuestView::fetchCheck(Gpa gpa)
{
    translateChunk(gpa, 8, ept::Access::Exec);
}

std::string
GuestView::readCString(Gpa gpa, std::uint64_t max_len)
{
    std::string out;
    for (std::uint64_t i = 0; i < max_len; ++i) {
        const char c = static_cast<char>(read<std::uint8_t>(gpa + i));
        if (c == '\0')
            return out;
        out.push_back(c);
    }
    return out;
}

} // namespace elisa::cpu
