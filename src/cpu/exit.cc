#include "cpu/exit.hh"

namespace elisa::cpu
{

const char *
exitReasonToString(ExitReason reason)
{
    switch (reason) {
      case ExitReason::Hypercall:
        return "hypercall";
      case ExitReason::EptViolation:
        return "ept-violation";
      case ExitReason::VmfuncFail:
        return "vmfunc-fail";
      case ExitReason::Cpuid:
        return "cpuid";
      case ExitReason::Hlt:
        return "hlt";
      case ExitReason::VmKilled:
        return "vm-killed";
    }
    return "?";
}

VmExitEvent::VmExitEvent(ExitReason r, std::uint64_t qualification)
    : std::runtime_error(exitReasonToString(r)), exitReason(r),
      qual(qualification)
{
}

VmExitEvent::VmExitEvent(const ept::EptViolation &v)
    : std::runtime_error(v.describe()), exitReason(ExitReason::EptViolation),
      qual(v.gpa), eptViolation(v)
{
}

} // namespace elisa::cpu
