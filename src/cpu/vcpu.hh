/**
 * @file
 * The simulated VT-x virtual CPU.
 *
 * A Vcpu bundles what the VMCS + core state would provide on hardware:
 * the hypercall-ABI registers (modelled as the structured
 * HypercallArgs), the EPTP list, the currently active EPTP, a
 * translation cache, and a simulated clock.
 * The two paper-relevant instructions are implemented here:
 *
 *  - vmcall(): a full VM exit into the hypervisor and back
 *    (vmexit + dispatch + handler + vmentry nanoseconds);
 *  - vmfunc(0, idx): an EPTP switch *without* leaving guest context
 *    (vmfuncNs), faulting into a VM exit on any invalid use.
 */

#ifndef ELISA_CPU_VCPU_HH
#define ELISA_CPU_VCPU_HH

#include <cstdint>
#include <map>
#include <memory>

#include "base/types.hh"
#include "ept/ept.hh"
#include "ept/eptp_list.hh"
#include "ept/tlb.hh"
#include "mem/frame_allocator.hh"
#include "mem/host_memory.hh"
#include "sim/clock.hh"
#include "sim/cost_model.hh"
#include "sim/exit_ledger.hh"
#include "sim/stats.hh"
#include "sim/tracer.hh"

namespace elisa::cpu
{

/** Hypercall request registers (VMCALL ABI: rax = number, rdi.. args). */
struct HypercallArgs
{
    std::uint64_t nr = 0;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint64_t arg2 = 0;
    std::uint64_t arg3 = 0;
};

class Vcpu;

/**
 * Interned StatIds of the per-vCPU hot-path counters, resolved once at
 * Vcpu construction so per-access/per-call code never performs a
 * string lookup (see sim::StatSet).
 */
struct HotStatIds
{
    sim::StatId vmfunc;
    sim::StatId vmfuncFail;
    sim::StatId vmcall;
    sim::StatId cpuid;
    sim::StatId eptWalk;
    sim::StatId eptAdUpdate;
    sim::StatId eptViolation;
    sim::StatId l0Hit;
};

/**
 * Interface the hypervisor implements to receive VMCALL exits.
 */
class HypercallSink
{
  public:
    virtual ~HypercallSink() = default;

    /**
     * Handle a hypercall from @p vcpu. Runs in "host context": the
     * handler may advance the vcpu clock to account for host work.
     * @return the value placed in guest rax.
     */
    virtual std::uint64_t handleHypercall(Vcpu &vcpu,
                                          const HypercallArgs &args) = 0;
};

/**
 * Interface the hypervisor implements to resolve EPT violations
 * before they become guest-visible exits (the demand-paging path).
 */
class EptFaultSink
{
  public:
    virtual ~EptFaultSink() = default;

    /**
     * Try to resolve the EPT violation @p violation raised by @p vcpu
     * under its active EPTP. Runs in "host context": the handler
     * charges the vcpu clock for the exit, the fault service (swap
     * I/O, zero fill, any eviction) and the re-entry. On true the CPU
     * re-executes the faulting access (VMRESUME semantics: the walk
     * runs again and must now succeed or fault afresh); on false the
     * violation propagates as a VmExitEvent. May throw VmExitEvent
     * itself (e.g. the faulting VM is killed mid-page-in).
     */
    virtual bool resolveEptViolation(Vcpu &vcpu,
                                     const ept::EptViolation &violation)
        = 0;
};

/**
 * One simulated virtual CPU.
 */
class Vcpu
{
  public:
    /**
     * @param id global vcpu id.
     * @param owner id of the VM this vcpu belongs to.
     * @param memory machine physical memory.
     * @param allocator machine frame allocator (EPTP-list page).
     * @param cost machine cost model.
     * @param sink hypercall receiver (the hypervisor).
     */
    Vcpu(VcpuId id, VmId owner, mem::HostMemory &memory,
         mem::FrameAllocator &allocator, const sim::CostModel &cost,
         HypercallSink *sink);

    Vcpu(const Vcpu &) = delete;
    Vcpu &operator=(const Vcpu &) = delete;

    /** Global id of this vcpu. */
    VcpuId id() const { return vcpuId; }

    /** Owning VM. */
    VmId vm() const { return ownerVm; }

    /**
     * Engine shard this vcpu's actors schedule on (inherited from the
     * owning VM, hv::Vm::setShard). All vCPUs of one VM — and every
     * VM of one hypervisor instance, since they share its stats and
     * services — carry the same shard id.
     */
    ShardId shard() const { return shardId; }

    /** Set by hv::Vm::setShard; not for direct use. */
    void setShard(ShardId shard) { shardId = shard; }

    /** This vcpu's simulated clock. */
    sim::SimClock &clock() { return simClock; }
    const sim::SimClock &clock() const { return simClock; }

    /** The per-vcpu EPTP list (hypervisor writes it). */
    ept::EptpList &eptpList() { return *list; }
    const ept::EptpList &eptpList() const { return *list; }

    /** The translation cache. */
    ept::Tlb &tlb() { return translationCache; }

    /** Per-vcpu event counters. */
    sim::StatSet &stats() { return statSet; }

    /** Pre-resolved StatIds for this vcpu's hot-path counters. */
    const HotStatIds &statIds() const { return hotIds; }

    /** Currently active EPTP value (0 before activation). */
    std::uint64_t activeEptp() const { return currentEptp; }

    /** Index of the active EPTP within the list. */
    EptpIndex activeIndex() const { return currentIndex; }

    /**
     * Hypervisor-side: force the active context to list entry @p index
     * (used at VM launch and after handled exits). No cost is charged.
     */
    void activateEptp(EptpIndex index);

    /**
     * Guest instruction VMFUNC(leaf=@p leaf, rcx=@p index).
     * Switches the active EPT context without a VM exit when leaf==0
     * and the list entry is valid. Otherwise throws VmExitEvent
     * (VmfuncFail), exactly like the hardware would exit.
     */
    void vmfunc(std::uint64_t leaf, EptpIndex index);

    /**
     * Guest instruction VMCALL: exits to the hypervisor, dispatches the
     * hypercall, re-enters. Returns the handler's rax.
     */
    std::uint64_t vmcall(const HypercallArgs &args);

    /**
     * Guest instruction CPUID: unconditional exit + canned response.
     * Models the classic "cheapest forced exit" microbenchmark.
     */
    std::uint64_t cpuid(std::uint64_t leaf);

    /** Machine memory (for GuestView). */
    mem::HostMemory &memory() { return mem; }

    /** Machine cost model. */
    const sim::CostModel &costModel() const { return cost; }

    /**
     * Install (or with nullptr remove) the machine's trace collector.
     * Non-owning; the hypervisor propagates this to every vCPU. With
     * no tracer installed every trace point is one pointer test.
     */
    void setTracer(sim::Tracer *tracer);

    /** The installed tracer, or nullptr (instrumented callers). */
    sim::Tracer *tracer() const { return tracerPtr; }

    /**
     * Install (or with nullptr remove) the machine's exit-cost ledger
     * (same contract as setTracer: non-owning, propagated by the
     * hypervisor, one pointer test per charge point when absent).
     * World-switch ns charged here: VMCALL round trips keyed by
     * hypercall number, CPUID forced exits; faulting exits are charged
     * by the VM runner that catches them.
     */
    void setLedger(sim::ExitLedger *ledger);

    /** The installed ledger, or nullptr (instrumented callers). */
    sim::ExitLedger *ledger() const { return ledgerPtr; }

    /**
     * Install (or with nullptr remove) the machine's EPT-fault
     * resolver (the hypervisor's pager entry point). Non-owning, set
     * by hv::Vm at vCPU creation; consulted only on the translation
     * violation path, so an absent sink costs nothing on the hot path
     * and one pointer test per violation.
     */
    void setFaultSink(EptFaultSink *sink) { faultSinkPtr = sink; }

    /** The installed fault resolver, or nullptr. */
    EptFaultSink *faultSink() const { return faultSinkPtr; }

    /**
     * Charge @p ns to this vcpu's {Hypercall, @p nr} ledger row
     * (requires an installed ledger). Out of line: per-nr slot lookup
     * stays off the no-ledger hot path.
     */
    [[gnu::noinline]] void chargeHypercall(std::uint64_t nr, SimNs ns);

  private:
    /**
     * Out-of-line vmfunc trace emission: keeps the ring push out of
     * the vmfunc hot path, which runs 4x per gate call and must stay
     * a single pointer test when no tracer is installed.
     */
    [[gnu::noinline]] void traceVmfunc(std::uint64_t leaf,
                                       EptpIndex index);

    /** Out-of-line CPUID exit charge (same rationale). */
    [[gnu::noinline]] void chargeCpuid(SimNs ns);

    VcpuId vcpuId;
    VmId ownerVm;
    ShardId shardId = 0;
    mem::HostMemory &mem;
    const sim::CostModel &cost;
    HypercallSink *hypercallSink;
    std::unique_ptr<ept::EptpList> list;
    ept::Tlb translationCache;
    sim::SimClock simClock;
    sim::StatSet statSet;
    HotStatIds hotIds{};
    std::uint64_t currentEptp = 0;
    EptpIndex currentIndex = 0;

    /** Machine tracer (nullptr = tracing off). */
    sim::Tracer *tracerPtr = nullptr;
    // Interned event names, resolved once at setTracer().
    sim::TraceNameId vmfuncName = 0;
    sim::TraceNameId vmcallName = 0;

    /** EPT-fault resolver (nullptr = no paging). */
    EptFaultSink *faultSinkPtr = nullptr;

    /** Machine exit ledger (nullptr = accounting off). */
    sim::ExitLedger *ledgerPtr = nullptr;
    // Ledger slots, resolved once per (ledger, code) at first charge.
    sim::LedgerSlot cpuidSlot = 0;
    std::map<std::uint64_t, sim::LedgerSlot> hypercallSlots;
};

} // namespace elisa::cpu

#endif // ELISA_CPU_VCPU_HH
