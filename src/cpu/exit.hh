/**
 * @file
 * VM-exit vocabulary of the simulated VT-x CPU.
 *
 * Synchronous, expected transitions (VMCALL hypercalls) are plain
 * function calls into the hypervisor; *faulting* exits (EPT violations,
 * invalid VMFUNC) are modelled as a C++ exception unwinding out of the
 * guest code back to the VM runner, mirroring how the hardware rips
 * control away from the guest mid-instruction.
 */

#ifndef ELISA_CPU_EXIT_HH
#define ELISA_CPU_EXIT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "ept/ept.hh"

namespace elisa::cpu
{

/** Why the CPU left guest context. */
enum class ExitReason : std::uint8_t
{
    /** Guest executed VMCALL. */
    Hypercall,
    /** Guest memory access failed the EPT permission/translation. */
    EptViolation,
    /** VMFUNC with unsupported leaf or invalid EPTP-list entry. */
    VmfuncFail,
    /** Guest executed CPUID (unconditional exit on VT-x). */
    Cpuid,
    /** Guest executed HLT. */
    Hlt,
    /** The VM was killed (fault injection / forced teardown). */
    VmKilled,
};

/** Number of ExitReason values (for per-reason counter tables). */
inline constexpr unsigned exitReasonCount =
    static_cast<unsigned>(ExitReason::VmKilled) + 1;

/** Render an exit reason. */
const char *exitReasonToString(ExitReason reason);

/**
 * A faulting VM exit in flight. Thrown by GuestView / Vcpu, caught by
 * the VM runner (hv::Vm::run), never escapes to user code.
 */
class VmExitEvent : public std::runtime_error
{
  public:
    /** Build a non-EPT exit. */
    VmExitEvent(ExitReason r, std::uint64_t qualification);

    /** Build an EPT-violation exit. */
    explicit VmExitEvent(const ept::EptViolation &v);

    /** The exit reason. */
    ExitReason reason() const { return exitReason; }

    /** Reason-specific qualification (VMFUNC index, etc.). */
    std::uint64_t qualification() const { return qual; }

    /** Violation details (valid when reason()==EptViolation). */
    const ept::EptViolation &violation() const { return eptViolation; }

  private:
    ExitReason exitReason;
    std::uint64_t qual = 0;
    ept::EptViolation eptViolation;
};

} // namespace elisa::cpu

#endif // ELISA_CPU_EXIT_HH
