/**
 * @file
 * String helpers used by benches and reports (human-readable quantities,
 * simple table rendering).
 */

#ifndef ELISA_BASE_STRUTIL_HH
#define ELISA_BASE_STRUTIL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace elisa
{

/** Render a byte count as "4 KiB", "2.5 MiB", ... */
std::string humanBytes(std::uint64_t bytes);

/** Render a nanosecond count as "196 ns", "1.2 us", ... */
std::string humanNs(double ns);

/** Render an operations-per-second rate as "3.51 Mops/s", ... */
std::string humanRate(double per_sec, const char *unit = "ops/s");

/**
 * Minimal fixed-width text table used by the bench harness so every
 * figure/table prints with the same look.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the whole table, including a separator under the header. */
    std::string render() const;

    /** Render as CSV (RFC-4180-ish: cells quoted when needed). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> headerCells;
    std::vector<std::vector<std::string>> rows;
};

} // namespace elisa

#endif // ELISA_BASE_STRUTIL_HH
