/**
 * @file
 * Category-based trace output (gem5 DPRINTF-style).
 *
 * Categories are enabled at process start through the ELISA_TRACE
 * environment variable: a comma-separated list of category names, or
 * "all". Disabled categories cost one boolean test per trace point.
 *
 *   ELISA_TRACE=elisa,vmexit ./build/examples/quickstart
 *
 * Trace lines carry the emitting category and go to stderr:
 *
 *   trace[elisa]: attach request 3 from VM 1 for 'counter'
 */

#ifndef ELISA_BASE_TRACE_HH
#define ELISA_BASE_TRACE_HH

#include <cstdint>

namespace elisa
{

/** Trace categories (bitmask). */
enum class TraceCat : std::uint32_t
{
    None = 0,
    Hv = 1u << 0,     ///< VM lifecycle, hypercall dispatch
    VmExit = 1u << 1, ///< faulting exits
    Elisa = 1u << 2,  ///< negotiation + attachment lifecycle
    Ept = 1u << 3,    ///< mapping changes
    Net = 1u << 4,    ///< datapath setup
    All = ~0u,
};

/** True when @p cat was enabled via ELISA_TRACE. */
bool traceEnabled(TraceCat cat);

/** Force categories on/off programmatically (tests). */
void traceOverride(std::uint32_t mask);

/** Emit one trace line (printf-style) if @p cat is enabled. */
void tracePrintf(TraceCat cat, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Trace-point macro: evaluates arguments only when the category is
 * live.
 */
#define ELISA_TRACE(cat, ...)                                          \
    do {                                                               \
        if (::elisa::traceEnabled(::elisa::TraceCat::cat))             \
            ::elisa::tracePrintf(::elisa::TraceCat::cat,               \
                                 __VA_ARGS__);                         \
    } while (0)

} // namespace elisa

#endif // ELISA_BASE_TRACE_HH
