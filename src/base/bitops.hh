/**
 * @file
 * Small bit-manipulation helpers used by the page-table and ring code.
 */

#ifndef ELISA_BASE_BITOPS_HH
#define ELISA_BASE_BITOPS_HH

#include <bit>
#include <cstdint>

namespace elisa
{

/** Extract bits [first, last] (inclusive, last >= first) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned last, unsigned first)
{
    const unsigned nbits = last - first + 1;
    const std::uint64_t mask =
        nbits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nbits) - 1);
    return (value >> first) & mask;
}

/** Build a mask with bits [first, last] (inclusive) set. */
constexpr std::uint64_t
mask(unsigned last, unsigned first)
{
    return bits(~std::uint64_t{0}, last - first, 0) << first;
}

/**
 * Insert @p field into bits [first, last] of @p value, returning the
 * combined word. Bits of @p field outside the destination width are
 * discarded.
 */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned last, unsigned first,
           std::uint64_t field)
{
    const std::uint64_t m = mask(last, first);
    return (value & ~m) | ((field << first) & m);
}

/** True if @p value is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Smallest power of two >= @p value (value must be <= 2^63). */
constexpr std::uint64_t
roundUpPow2(std::uint64_t value)
{
    return value <= 1 ? 1 : std::bit_ceil(value);
}

/** floor(log2(value)); value must be non-zero. */
constexpr unsigned
log2Floor(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/** Divide rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace elisa

#endif // ELISA_BASE_BITOPS_HH
