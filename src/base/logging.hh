/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's logging.hh.
 *
 * Severity ladder:
 *  - inform(): normal operating message, no connotation of misbehaviour.
 *  - warn():   something is off but the simulation can continue.
 *  - fatal():  the simulation cannot continue due to a *user* error
 *              (bad configuration, invalid arguments); exits with code 1.
 *  - panic():  an internal invariant was violated (a simulator bug);
 *              aborts so a core dump / debugger can take over.
 */

#ifndef ELISA_BASE_LOGGING_HH
#define ELISA_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace elisa
{

namespace detail
{

/** Render a printf-style format into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** Emit one log line with the given severity label to stderr. */
void emitLog(const char *label, const std::string &msg);

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

/** Print an informative message. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning message. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Silence / restore inform() output (benches use this). */
void setQuiet(bool quiet);

/**
 * Terminate due to a user-level error (exit code 1).
 * Usage: fatal("bad ring size %zu", n);
 */
#define fatal(...)                                                         \
    ::elisa::detail::fatalImpl(__FILE__, __LINE__,                         \
                               ::elisa::detail::format(__VA_ARGS__))

/**
 * Terminate due to an internal simulator bug (abort / core dump).
 */
#define panic(...)                                                         \
    ::elisa::detail::panicImpl(__FILE__, __LINE__,                         \
                               ::elisa::detail::format(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            panic(__VA_ARGS__);                                            \
    } while (0)

/** fatal() unless @p cond is false. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            fatal(__VA_ARGS__);                                            \
    } while (0)

namespace detail
{

/** printf-style formatting into std::string (varargs front-end). */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace elisa

#endif // ELISA_BASE_LOGGING_HH
