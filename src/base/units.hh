/**
 * @file
 * Byte- and time-unit constants plus user-defined literals.
 */

#ifndef ELISA_BASE_UNITS_HH
#define ELISA_BASE_UNITS_HH

#include <cstdint>

namespace elisa
{

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

/** Nanoseconds per microsecond / millisecond / second. */
inline constexpr std::uint64_t nsPerUs = 1000;
inline constexpr std::uint64_t nsPerMs = 1000 * nsPerUs;
inline constexpr std::uint64_t nsPerSec = 1000 * nsPerMs;

namespace literals
{

constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v * KiB;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v * MiB;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v * GiB;
}

constexpr std::uint64_t operator""_us(unsigned long long v)
{
    return v * nsPerUs;
}

constexpr std::uint64_t operator""_ms(unsigned long long v)
{
    return v * nsPerMs;
}

constexpr std::uint64_t operator""_sec(unsigned long long v)
{
    return v * nsPerSec;
}

} // namespace literals

} // namespace elisa

#endif // ELISA_BASE_UNITS_HH
