#include "base/trace.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace elisa
{

namespace
{

const char *
catName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Hv:
        return "hv";
      case TraceCat::VmExit:
        return "vmexit";
      case TraceCat::Elisa:
        return "elisa";
      case TraceCat::Ept:
        return "ept";
      case TraceCat::Net:
        return "net";
      default:
        return "?";
    }
}

std::uint32_t
parseEnv()
{
    const char *env = std::getenv("ELISA_TRACE");
    if (!env || !*env)
        return 0;
    std::uint32_t mask = 0;
    std::string spec(env);
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        const std::size_t comma = spec.find(',', pos);
        const std::string name =
            spec.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (name == "all") {
            mask = static_cast<std::uint32_t>(TraceCat::All);
        } else if (name == "hv") {
            mask |= static_cast<std::uint32_t>(TraceCat::Hv);
        } else if (name == "vmexit") {
            mask |= static_cast<std::uint32_t>(TraceCat::VmExit);
        } else if (name == "elisa") {
            mask |= static_cast<std::uint32_t>(TraceCat::Elisa);
        } else if (name == "ept") {
            mask |= static_cast<std::uint32_t>(TraceCat::Ept);
        } else if (name == "net") {
            mask |= static_cast<std::uint32_t>(TraceCat::Net);
        } else if (!name.empty()) {
            std::fprintf(stderr,
                         "trace: unknown category '%s' ignored\n",
                         name.c_str());
        }
        pos = comma == std::string::npos ? comma : comma + 1;
    }
    return mask;
}

std::uint32_t &
activeMask()
{
    static std::uint32_t mask = parseEnv();
    return mask;
}

} // anonymous namespace

bool
traceEnabled(TraceCat cat)
{
    return (activeMask() & static_cast<std::uint32_t>(cat)) != 0;
}

void
traceOverride(std::uint32_t mask)
{
    activeMask() = mask;
}

void
tracePrintf(TraceCat cat, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "trace[%s]: ", catName(cat));
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
}

} // namespace elisa
