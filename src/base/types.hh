/**
 * @file
 * Fundamental type aliases shared by every subsystem of the simulator.
 *
 * The address-space vocabulary follows the Intel SDM:
 *  - a *guest physical address* (Gpa) is what guest software emits after
 *    its own paging (we do not model guest-virtual paging, see DESIGN.md);
 *  - a *host physical address* (Hpa) is the output of the EPT translation
 *    and indexes the simulated machine memory (mem::HostMemory).
 */

#ifndef ELISA_BASE_TYPES_HH
#define ELISA_BASE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace elisa
{

/** Guest physical address (input of the EPT translation). */
using Gpa = std::uint64_t;

/** Host physical address (output of the EPT translation). */
using Hpa = std::uint64_t;

/** Simulated time, in nanoseconds. */
using SimNs = std::uint64_t;

/** Identifier of a virtual machine registered with the hypervisor. */
using VmId = std::uint32_t;

/** Identifier of a vCPU within the whole machine. */
using VcpuId = std::uint32_t;

/**
 * Identifier of a sim::Engine shard (dense, small). Everything that
 * interacts through shared mutable state — the vCPUs of one VM, one
 * hypervisor's VMs, actors contending on a SimLock/SimResource —
 * must carry the same shard id; different shards may then execute on
 * different host threads (see sim/engine.hh).
 */
using ShardId = std::uint32_t;

/** Index into a per-vCPU EPTP list (0..511). */
using EptpIndex = std::uint16_t;

/**
 * Identifier of a capability grant in the hypervisor's grant table
 * (hv::GrantTable). Ids are minted once and never reused, so a stale
 * handle can always be told apart from a live one.
 */
using CapId = std::uint64_t;

/** An invalid capability id, used as a sentinel ("no grant"). */
inline constexpr CapId invalidCapId = 0;

/** Width of a page in bytes (only 4 KiB pages are modelled). */
inline constexpr std::uint64_t pageSize = 4096;

/** log2(pageSize). */
inline constexpr unsigned pageShift = 12;

/** Mask selecting the offset-in-page bits of an address. */
inline constexpr std::uint64_t pageMask = pageSize - 1;

/** An invalid VM id, used as a sentinel. */
inline constexpr VmId invalidVmId = ~VmId{0};

/** Round @p addr down to its page base. */
constexpr std::uint64_t
pageAlignDown(std::uint64_t addr)
{
    return addr & ~pageMask;
}

/** Round @p addr up to the next page boundary. */
constexpr std::uint64_t
pageAlignUp(std::uint64_t addr)
{
    return (addr + pageMask) & ~pageMask;
}

/** True if @p addr sits exactly on a page boundary. */
constexpr bool
isPageAligned(std::uint64_t addr)
{
    return (addr & pageMask) == 0;
}

} // namespace elisa

#endif // ELISA_BASE_TYPES_HH
