#include "base/strutil.hh"

#include <cstdio>
#include <sstream>

#include "base/logging.hh"
#include "base/units.hh"

namespace elisa
{

std::string
humanBytes(std::uint64_t bytes)
{
    if (bytes >= GiB && bytes % GiB == 0)
        return detail::format("%llu GiB",
                              (unsigned long long)(bytes / GiB));
    if (bytes >= MiB && bytes % MiB == 0)
        return detail::format("%llu MiB",
                              (unsigned long long)(bytes / MiB));
    if (bytes >= KiB && bytes % KiB == 0)
        return detail::format("%llu KiB",
                              (unsigned long long)(bytes / KiB));
    if (bytes >= MiB)
        return detail::format("%.1f MiB", (double)bytes / (double)MiB);
    if (bytes >= KiB)
        return detail::format("%.1f KiB", (double)bytes / (double)KiB);
    return detail::format("%llu B", (unsigned long long)bytes);
}

std::string
humanNs(double ns)
{
    if (ns >= 1e9)
        return detail::format("%.2f s", ns / 1e9);
    if (ns >= 1e6)
        return detail::format("%.2f ms", ns / 1e6);
    if (ns >= 1e3)
        return detail::format("%.2f us", ns / 1e3);
    return detail::format("%.1f ns", ns);
}

std::string
humanRate(double per_sec, const char *unit)
{
    if (per_sec >= 1e9)
        return detail::format("%.2f G%s", per_sec / 1e9, unit);
    if (per_sec >= 1e6)
        return detail::format("%.2f M%s", per_sec / 1e6, unit);
    if (per_sec >= 1e3)
        return detail::format("%.2f K%s", per_sec / 1e3, unit);
    return detail::format("%.2f %s", per_sec, unit);
}

void
TextTable::header(std::vector<std::string> cells)
{
    headerCells = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    // Compute column widths across header and all rows.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(headerCells);
    for (const auto &r : rows)
        grow(r);

    std::ostringstream out;
    auto emit = [&out, &widths](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell =
                i < cells.size() ? cells[i] : std::string();
            out << cell;
            if (i + 1 < widths.size())
                out << std::string(widths[i] - cell.size() + 2, ' ');
        }
        out << '\n';
    };

    if (!headerCells.empty()) {
        emit(headerCells);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows)
        emit(r);
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream out;
    auto emit = [&out](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const std::string &cell = cells[i];
            const bool needs_quotes =
                cell.find_first_of(",\"\n") != std::string::npos;
            if (needs_quotes) {
                out << '"';
                for (char c : cell) {
                    if (c == '"')
                        out << '"';
                    out << c;
                }
                out << '"';
            } else {
                out << cell;
            }
            if (i + 1 < cells.size())
                out << ',';
        }
        out << '\n';
    };
    if (!headerCells.empty())
        emit(headerCells);
    for (const auto &r : rows)
        emit(r);
    return out.str();
}

} // namespace elisa
