#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace elisa
{

namespace
{

bool quietInform = false;

} // anonymous namespace

namespace detail
{

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string("<format error>");

    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
emitLog(const char *label, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", label, msg.c_str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(),
                 file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(),
                 file, line);
    std::abort();
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    if (quietInform)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    detail::emitLog("info", detail::vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    detail::emitLog("warn", detail::vformat(fmt, ap));
    va_end(ap);
}

void
setQuiet(bool quiet)
{
    quietInform = quiet;
}

} // namespace elisa
