/**
 * @file
 * ELISA ABI: canonical guest-physical layout of the gate and sub EPT
 * contexts, shared-function signatures, and attach descriptors.
 *
 * Layout rationale (all addresses far above any guest's RAM window,
 * which starts at GPA 0):
 *
 *   gateCodeGpa   the gate trampoline page; mapped execute-only in the
 *                 gate AND sub contexts, at the same GPA, so execution
 *                 survives the EPTP switch mid-instruction-stream —
 *                 this is the linchpin of the VMFUNC technique.
 *   gateStackGpa  the isolated per-attachment stack the gate switches
 *                 to; mapped RW in gate+sub contexts only, never in the
 *                 guest default context.
 *   exchangeGpa   per-attachment bounce buffer for bulk arguments;
 *                 mapped RW in the sub context AND (at a different GPA,
 *                 returned by attach) in the guest's default context.
 *   objectGpa     the shared object window inside the sub context.
 *
 * A guest that VMFUNCs straight to the sub context without going
 * through the gate finds none of its own memory mapped: the next
 * instruction fetch from its own code GPA faults, causing a VM exit.
 * The isolation tests exercise exactly this.
 */

#ifndef ELISA_ELISA_ABI_HH
#define ELISA_ELISA_ABI_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "cpu/guest_view.hh"

namespace elisa::core
{

/** GPA of the gate trampoline page (gate + sub contexts). */
inline constexpr Gpa gateCodeGpa = 0x7f0000000000ull;

/** GPA of the per-attachment gate stack (gate + sub contexts). */
inline constexpr Gpa gateStackGpa = 0x7f0000100000ull;

/** GPA of the per-attachment exchange buffer in the sub context. */
inline constexpr Gpa exchangeGpa = 0x7f0000200000ull;

/** GPA of the shared object window in the sub context. */
inline constexpr Gpa objectGpa = 0x600000000000ull;

/**
 * Base GPA at which exchange buffers appear in a guest's *default*
 * context; attachment k of a vCPU lands at base + k * exchangeStride.
 */
inline constexpr Gpa exchangeGuestBase = 0x7e0000000000ull;

/** Stride between exchange windows in the guest default context. */
inline constexpr std::uint64_t exchangeStride = 0x100000ull;

/** Default gate stack size. */
inline constexpr std::uint64_t defaultStackBytes = 16 * 1024;

/** Default exchange buffer size. */
inline constexpr std::uint64_t defaultExchangeBytes = 64 * 1024;

/** Identifier of an exported shared object. */
using ExportId = std::uint32_t;

/** Identifier of an attach negotiation request. */
using RequestId = std::uint32_t;

/** Identifier of a live attachment. */
using AttachmentId = std::uint32_t;

/** Longest export name the wire format carries (WireRequest::name). */
inline constexpr std::size_t maxExportNameLen = 51;

/** ELISA hypercall numbers (within hv::Hc::ElisaBase's range). */
enum class ElisaHc : std::uint64_t
{
    RegisterManager = 0x100,
    Export = 0x101,
    NextRequest = 0x102,
    Approve = 0x103,
    Deny = 0x104,
    AttachRequest = 0x105,
    Query = 0x106,
    Detach = 0x107,
    Revoke = 0x108,
    /** Peer-to-peer: narrow-and-hand-off a held grant (no manager). */
    Delegate = 0x109,
    /** Turn a received grant into an attachment on the caller's vCPU. */
    Redeem = 0x10a,
    /** Transitively revoke one grant and its delegation subtree. */
    CapRevoke = 0x10b,
};

/**
 * Bound on delegation-chain depth (root = 0): a grant at depth
 * maxDelegationDepth - 1 can no longer be delegated. Keeps revocation
 * walks and per-hop narrowing checks O(small constant) and makes a
 * delegation loop structurally impossible.
 */
inline constexpr std::uint32_t maxDelegationDepth = 8;

/**
 * Value-typed handle naming an export in the attach API — the lookup
 * key a guest presents to start a negotiation. Replaces raw string
 * addressing: the constructor is explicit, so an arbitrary string can
 * no longer silently flow into an attach call.
 */
class ExportKey
{
  public:
    /** An invalid (empty) key. */
    ExportKey() = default;

    explicit ExportKey(std::string name) : exportName(std::move(name)) {}

    /** The export's negotiation lookup name. */
    const std::string &name() const { return exportName; }

    /** True when the key can name an export on the wire. */
    bool
    valid() const
    {
        return !exportName.empty() &&
               exportName.size() <= maxExportNameLen;
    }

    friend bool operator==(const ExportKey &,
                           const ExportKey &) = default;

  private:
    std::string exportName;
};

/**
 * Execution context handed to a shared function running inside the sub
 * EPT context. The view is bound to the *caller's* vCPU, whose active
 * EPTP is the sub context — every access the function makes is checked
 * against the sub context's mappings.
 */
struct SubCallCtx
{
    /** Access path under the sub EPT context. */
    cpu::GuestView &view;

    /** Base GPA of the shared object window. */
    Gpa obj;

    /** Size of the shared object in bytes. */
    std::uint64_t objBytes;

    /** Base GPA of this attachment's exchange buffer. */
    Gpa exch;

    /** Size of the exchange buffer in bytes. */
    std::uint64_t exchBytes;

    /** Register arguments of the call. */
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint64_t arg2 = 0;
};

/**
 * One shared function ("code loaded into the sub context" in paper
 * terms). Returns the value placed in the caller's rax.
 */
using SharedFn = std::function<std::uint64_t(SubCallCtx &)>;

/** The function table of an export. */
using SharedFnTable = std::vector<SharedFn>;

/** Outcome of an attach negotiation, as reported to the guest. */
struct AttachInfo
{
    /** Attachment handle (for detach). */
    AttachmentId attachment = 0;

    /** EPTP-list index of the gate context on the requesting vCPU. */
    EptpIndex gateIndex = 0;

    /** EPTP-list index of the sub context on the requesting vCPU. */
    EptpIndex subIndex = 0;

    /** GPA of the exchange buffer in the guest's default context. */
    Gpa exchangeGuestGpa = 0;

    /** Exchange buffer size. */
    std::uint64_t exchangeBytes = 0;

    /**
     * Size of the object *window* this attachment maps. Equal to the
     * export's full size for a manager-approved attach; a delegated
     * grant may narrow it to a sub-range.
     */
    std::uint64_t objectBytes = 0;

    /** Byte offset of the window into the export's object. */
    std::uint64_t objectOffset = 0;

    /** Grant handle of this attachment in the hypervisor grant table. */
    CapId capability = invalidCapId;

    /** Granted window permissions (raw ept::Perms bits). */
    std::uint32_t perms = 0;

    /**
     * Absolute simulated time at which the grant lapses (0 = never).
     * Evaluated lazily: the next gate entry or redeem attempt at or
     * past this instant finds the EPTP-list entries cleared.
     */
    SimNs expiresNs = 0;
};

} // namespace elisa::core

#endif // ELISA_ELISA_ABI_HH
