/**
 * @file
 * elisa::core::Capability — the value-typed grant handle of the attach
 * API.
 *
 * Every attachment is backed by a *grant* registered in the
 * hypervisor's grant table: the manager-approved attach mints the root
 * grant, and a guest holding one can hand a narrowed view to a peer
 * with Capability::delegate() — one hypercall, no manager round-trip.
 * The receiving guest redeems the handle (ElisaGuest::redeem) into an
 * ordinary Gate whose calls take the same exit-less VMFUNC path as a
 * direct attach; only the *control* operations (delegate, redeem,
 * revoke) are hypercalls.
 *
 * Narrowing discipline: a delegation may only shrink what the parent
 * grant holds — a page sub-range of its window, a subset of its
 * permissions (ept::permits checked host-side at every hop), an
 * expiry no later than the parent's. Delegations form a tree rooted
 * at the export; revoking any node (or detaching, or the holder VM
 * dying) tears down the entire subtree below it.
 *
 * The handle itself is a copyable value: copying it does not duplicate
 * the grant, and the authoritative state always lives host-side. A
 * handle returned by delegate() stays bound to the *delegator's* vCPU
 * (so the delegator can revoke); redemption binds a fresh handle to
 * the receiver.
 */

#ifndef ELISA_ELISA_CAPABILITY_HH
#define ELISA_ELISA_CAPABILITY_HH

#include <cstdint>
#include <optional>

#include "cpu/vcpu.hh"
#include "elisa/abi.hh"
#include "ept/ept_entry.hh"

namespace elisa::core
{

class Capability
{
  public:
    /** An invalid handle ("no grant"). */
    Capability() = default;

    /**
     * @param vcpu the vCPU control hypercalls are issued from.
     * @param id the grant's id in the hypervisor grant table.
     * @param window_bytes size of the granted object window.
     * @param window_offset byte offset of the window into the export.
     * @param perms granted window permissions.
     * @param expires_ns absolute lapse time in simulated ns (0 =
     *        never).
     */
    Capability(cpu::Vcpu &vcpu, CapId id, std::uint64_t window_bytes,
               std::uint64_t window_offset, ept::Perms perms,
               SimNs expires_ns);

    /** Rebuild the handle a negotiated descriptor describes. */
    Capability(cpu::Vcpu &vcpu, const AttachInfo &info);

    /** True when this handle names a grant. */
    bool valid() const { return capId != invalidCapId; }

    explicit operator bool() const { return valid(); }

    /** The grant id (what a peer redeems). */
    CapId id() const { return capId; }

    /** Size of the granted window. */
    std::uint64_t windowBytes() const { return bytes; }

    /** Byte offset of the window into the export's object. */
    std::uint64_t windowOffset() const { return offset; }

    /** Granted permissions. */
    ept::Perms perms() const { return grantedPerms; }

    /** Absolute lapse time (0 = never). */
    SimNs expiresNs() const { return expiry; }

    /** How one delegation narrows the parent grant. */
    struct DelegateSpec
    {
        /** Byte offset into *this* window (page aligned). */
        std::uint64_t offset = 0;

        /** Window size (page multiple; 0 = the rest of the window). */
        std::uint64_t bytes = 0;

        /** Granted permissions (None = inherit; never widened). */
        ept::Perms perms = ept::Perms::None;

        /**
         * Absolute expiry in simulated ns (0 = inherit). Clamped to
         * the parent's expiry — a delegation cannot outlive its
         * parent.
         */
        SimNs expiresNs = 0;
    };

    /**
     * Hand a narrowed grant to @p target — one Delegate hypercall, no
     * manager involvement, no effect on this grant. The returned
     * handle stays bound to this holder's vCPU (for revoke()); the
     * target redeems it by id via ElisaGuest::redeem().
     * @return nullopt when the hypervisor refuses (widening attempt,
     *         depth bound, bad window, expired or revoked parent,
     *         unknown target VM, injected fault).
     */
    std::optional<Capability> delegate(VmId target,
                                       const DelegateSpec &spec) const;

    /** Delegate the full window, permissions, and expiry as-is. */
    std::optional<Capability>
    delegate(VmId target) const
    {
        return delegate(target, DelegateSpec{});
    }

    /**
     * Transitively revoke this grant: its attachment (if redeemed) and
     * every delegation derived from it are torn down before the
     * hypercall returns; the subtree's next gate entries fault on
     * cleared EPTP-list entries. Idempotent host-side.
     * @return true when the hypervisor acknowledged the revoke.
     */
    bool revoke() const;

  private:
    cpu::Vcpu *cpuPtr = nullptr;
    CapId capId = invalidCapId;
    std::uint64_t bytes = 0;
    std::uint64_t offset = 0;
    ept::Perms grantedPerms = ept::Perms::None;
    SimNs expiry = 0;
};

} // namespace elisa::core

#endif // ELISA_ELISA_CAPABILITY_HH
