#include "elisa/capability.hh"

#include "hv/hypercall.hh"

namespace elisa::core
{

Capability::Capability(cpu::Vcpu &vcpu, CapId id,
                       std::uint64_t window_bytes,
                       std::uint64_t window_offset, ept::Perms perms,
                       SimNs expires_ns)
    : cpuPtr(&vcpu), capId(id), bytes(window_bytes),
      offset(window_offset), grantedPerms(perms), expiry(expires_ns)
{
}

Capability::Capability(cpu::Vcpu &vcpu, const AttachInfo &info)
    : Capability(vcpu, info.capability, info.objectBytes,
                 info.objectOffset,
                 static_cast<ept::Perms>(info.perms), info.expiresNs)
{
}

std::optional<Capability>
Capability::delegate(VmId target, const DelegateSpec &spec) const
{
    if (!valid() || cpuPtr == nullptr)
        return std::nullopt;
    // The whole narrowing spec travels in registers — no guest memory
    // round trip, no manager involvement. Page counts (not bytes) keep
    // the window fields inside 32 bits each.
    if (!isPageAligned(spec.offset) || !isPageAligned(spec.bytes))
        return std::nullopt;
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Delegate);
    args.arg0 = capId;
    args.arg1 = target |
                (static_cast<std::uint64_t>(spec.perms) << 32);
    args.arg2 = (spec.offset / pageSize) |
                ((spec.bytes / pageSize) << 32);
    args.arg3 = spec.expiresNs;
    const std::uint64_t rc = cpuPtr->vmcall(args);
    if (rc == hv::hcError || rc == hv::hcBusy)
        return std::nullopt;

    // Mirror the narrowing the host just performed, so the handle's
    // metadata matches what a redeeming peer will be granted. The host
    // stays authoritative; this cache only serves introspection.
    const std::uint64_t child_off = offset + spec.offset;
    const std::uint64_t child_bytes =
        spec.bytes != 0 ? spec.bytes : bytes - spec.offset;
    const ept::Perms child_perms =
        spec.perms == ept::Perms::None ? grantedPerms : spec.perms;
    SimNs child_expiry = spec.expiresNs != 0 ? spec.expiresNs : expiry;
    if (expiry != 0 && (child_expiry == 0 || child_expiry > expiry))
        child_expiry = expiry;
    return Capability(*cpuPtr, static_cast<CapId>(rc), child_bytes,
                      child_off, child_perms, child_expiry);
}

bool
Capability::revoke() const
{
    if (!valid() || cpuPtr == nullptr)
        return false;
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::CapRevoke);
    args.arg0 = capId;
    return cpuPtr->vmcall(args) != hv::hcError;
}

} // namespace elisa::core
