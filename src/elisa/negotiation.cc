#include "elisa/negotiation.hh"

#include <cstring>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "base/trace.hh"
#include "cpu/guest_view.hh"

namespace elisa::core
{

namespace
{

/** Clamp-copy a name into a WireRequest's fixed field. */
void
copyName(char (&dst)[52], const std::string &src)
{
    const std::size_t n = std::min(src.size(), sizeof(dst) - 1);
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

// Negotiation trace points. One async span per request, keyed by its
// RequestId, runs from AttachRequest to the Query that observes a
// terminal state; outcome instants land inside it.
sim::TraceNameCache reqSpanName("attach_request");
sim::TraceNameCache approvedName("approved");
sim::TraceNameCache deniedName("denied");
sim::TraceNameCache timedOutName("timed_out");
sim::TraceNameCache pendingName("query_pending");

// Capability trace points. One async span per *delegated* grant, keyed
// by its CapId, runs from Delegate to teardown; redeems land inside it
// as instants. Root grants piggyback on the attach_request span above
// and emit nothing of their own.
sim::TraceNameCache capSpanName("capability");
sim::TraceNameCache capRedeemedName("cap_redeemed");

} // anonymous namespace

ElisaService::ElisaService(hv::Hypervisor &hv) : hyper(hv)
{
    busyId = hv.stats().id("elisa_busy");
    timeoutsId = hv.stats().id("elisa_timeouts");
    orphanDeniedId = hv.stats().id("elisa_orphan_denied");
    idempotentDetachesId = hv.stats().id("elisa_idempotent_detaches");
    idempotentRevokesId = hv.stats().id("elisa_idempotent_revokes");
    autoRevokesId = hv.stats().id("elisa_auto_revokes");
    attachBuildFaultsId = hv.stats().id("elisa_attach_build_faults");
    delegationsId = hv.stats().id("elisa_delegations");
    redeemsId = hv.stats().id("elisa_redeems");
    capRevokesId = hv.stats().id("elisa_cap_revokes");
    capExpiriesId = hv.stats().id("elisa_cap_expiries");
    grantTeardownsId = hv.stats().id("elisa_grant_teardowns");
    widenRefusedId = hv.stats().id("elisa_cap_widen_refused");
    grantExhaustedId = hv.stats().id("elisa_grant_exhausted");
    registerHandlers();
    hv.addVmDestroyHook([this](VmId vm) { onVmDestroyed(vm); });
}

void
ElisaService::setQueueCap(std::size_t cap)
{
    panic_if(cap == 0, "request queue cap must be positive");
    maxQueuedPerManager = cap;
}

void
ElisaService::retireAttachment(
    std::map<AttachmentId, std::unique_ptr<Attachment>>::iterator it)
{
    retiredAttachments[it->first] = it->second->guestVm();
    if (retiredAttachments.size() > retiredCap)
        retiredAttachments.erase(retiredAttachments.begin());
    attachments.erase(it);
}

void
ElisaService::retireExport(ExportId id, VmId owner)
{
    retiredExports[id] = owner;
    if (retiredExports.size() > retiredCap)
        retiredExports.erase(retiredExports.begin());
}

CapId
ElisaService::mintGrant(CapId parent, ExportId export_id, VmId issuer,
                        VmId holder, std::uint64_t offset,
                        std::uint64_t bytes, ept::Perms perms,
                        SimNs expires_ns)
{
    const CapId id = hyper.grants().create(parent, holder);
    CapGrant g;
    g.id = id;
    g.parent = parent;
    g.exportId = export_id;
    g.issuer = issuer;
    g.holder = holder;
    g.offset = offset;
    g.bytes = bytes;
    g.perms = perms;
    g.expiresNs = expires_ns;
    grants.emplace(id, g);
    return id;
}

bool
ElisaService::teardownGrant(CapId id, CapTeardown reason,
                            cpu::Vcpu *actor)
{
    if (!grants.contains(id)) {
        // Idempotent: a grant that once existed reports success on a
        // replayed teardown; one that never did reports failure.
        return retiredGrants.contains(id);
    }

    // The hypervisor's table dictates the walk: children before their
    // parent, in creation order, so the teardown sequence is identical
    // no matter which of the revocation paths started it.
    const std::vector<CapId> order = hyper.grants().subtree(id);
    for (const CapId cid : order) {
        auto git = grants.find(cid);
        panic_if(git == grants.end(),
                 "grant %llu in hypervisor table but not in service",
                 (unsigned long long)cid);
        CapGrant &g = git->second;

        // Revoke reachability first: the Attachment destructor clears
        // both EPTP-list entries and flushes cached translations
        // before any frame or bookkeeping is released.
        if (g.attachment != 0) {
            auto at = attachments.find(g.attachment);
            if (at != attachments.end())
                retireAttachment(at);
            attachmentGrant.erase(g.attachment);
        }

        if (actor != nullptr && g.parent != invalidCapId) {
            if (sim::Tracer *tr = hyper.tracer()) {
                tr->asyncEnd(sim::SpanCat::Negotiation,
                             capSpanName.get(*tr), cid, actor->id(),
                             actor->clock().now(),
                             static_cast<std::uint64_t>(reason));
            }
        }

        retiredGrants[cid] = {g.holder, g.issuer};
        if (retiredGrants.size() > retiredCap)
            retiredGrants.erase(retiredGrants.begin());
        grants.erase(git);
        hyper.grants().erase(cid);
        hyper.stats().inc(grantTeardownsId);
    }

    switch (reason) {
      case CapTeardown::Revoke:
        hyper.stats().inc(capRevokesId);
        break;
      case CapTeardown::Expire:
        hyper.stats().inc(capExpiriesId);
        break;
      case CapTeardown::VmDeath:
        hyper.stats().inc(autoRevokesId);
        break;
      case CapTeardown::Detach:
      case CapTeardown::ExportGone:
        break;
    }
    return true;
}

bool
ElisaService::expireCapability(CapId id, cpu::Vcpu &actor)
{
    return teardownGrant(id, CapTeardown::Expire, &actor);
}

void
ElisaService::teardownExportGrants(ExportId id, cpu::Vcpu *actor)
{
    // Snapshot the root ids first: teardown mutates the map, and every
    // non-root grant of the export lives in some root's subtree.
    std::vector<CapId> roots;
    for (const auto &[cid, g] : grants) {
        if (g.exportId == id && g.parent == invalidCapId)
            roots.push_back(cid);
    }
    for (const CapId root : roots)
        teardownGrant(root, CapTeardown::ExportGone, actor);
}

void
ElisaService::denyPendingRequestsFor(const std::string &name)
{
    for (auto &[rid, req] : requests) {
        if (req.state == RequestState::Pending && req.name == name) {
            req.state = RequestState::Denied;
            hyper.stats().inc(orphanDeniedId);
        }
    }
}

void
ElisaService::onVmDestroyed(VmId vm)
{
    // 1. Grants held by the dying guest — each teardown is transitive,
    //    so delegations the dying VM handed onward die with it (a
    //    delegated grant never outlives its delegator). Attachments
    //    are torn down as their grants go; idempotent teardownGrant
    //    makes the snapshot order irrelevant when one held grant sits
    //    inside another's subtree.
    std::vector<CapId> held;
    for (const auto &[cid, g] : grants) {
        if (g.holder == vm)
            held.push_back(cid);
    }
    for (const CapId cid : held)
        teardownGrant(cid, CapTeardown::VmDeath);
    // 2. Exports owned by the dying manager — revoke them fully: every
    //    grant tree rooted at the export is torn down (other guests'
    //    EPTP-list entries vanish), and any request still Pending on
    //    one of the orphaned exports is denied so its guest cannot
    //    hang waiting for a manager that no longer exists.
    for (auto it = exports.begin(); it != exports.end();) {
        if (it->second->managerVm() == vm) {
            Export *exp = it->second.get();
            denyPendingRequestsFor(exp->name());
            teardownExportGrants(it->first, nullptr);
            for (auto at = attachments.begin();
                 at != attachments.end();) {
                if (&at->second->exportRecord() == exp)
                    retireAttachment(at++);
                else
                    ++at;
            }
            retireExport(it->first, vm);
            it = exports.erase(it);
            hyper.stats().inc(autoRevokesId);
        } else {
            ++it;
        }
    }
    // 3. Manager registration, staged code, and pending requests.
    managers.erase(vm);
    stagedFns.erase(vm);
    for (auto it = requests.begin(); it != requests.end();) {
        if (it->second.guestVm == vm)
            it = requests.erase(it);
        else
            ++it;
    }
    hyper.stats().inc("elisa_vm_teardowns");
}

ElisaService::~ElisaService()
{
    // Grants reference attachments, attachments reference exports;
    // unwind in that order. The grant walk also empties the
    // hypervisor's table, children before parents.
    std::vector<CapId> roots;
    for (const auto &[cid, g] : grants) {
        if (g.parent == invalidCapId)
            roots.push_back(cid);
    }
    for (const CapId root : roots)
        teardownGrant(root, CapTeardown::ExportGone);
    attachments.clear();
    exports.clear();
}

void
ElisaService::stageFunctions(VmId manager_vm, SharedFnTable fns)
{
    stagedFns[manager_vm] = std::move(fns);
}

Export *
ElisaService::findExport(const std::string &name)
{
    for (auto &[id, exp] : exports) {
        if (exp->name() == name)
            return exp.get();
    }
    return nullptr;
}

Attachment *
ElisaService::attachment(AttachmentId id)
{
    auto it = attachments.find(id);
    return it == attachments.end() ? nullptr : it->second.get();
}

bool
ElisaService::revokeExport(const std::string &name)
{
    Export *exp = findExport(name);
    if (!exp)
        return false;
    denyPendingRequestsFor(name);
    teardownExportGrants(exp->id(), nullptr);
    for (auto it = attachments.begin(); it != attachments.end();) {
        if (&it->second->exportRecord() == exp)
            retireAttachment(it++);
        else
            ++it;
    }
    retireExport(exp->id(), exp->managerVm());
    exports.erase(exp->id());
    hyper.stats().inc("elisa_revokes");
    return true;
}

std::string
ElisaService::dumpState() const
{
    std::string out = "=== ELISA service state ===\n";
    out += detail::format("managers: %zu\n", managers.size());
    for (const auto &[vm, queue] : managers) {
        out += detail::format("  VM %u (%zu queued requests)\n", vm,
                              queue.size());
    }
    out += detail::format("exports: %zu\n", exports.size());
    for (const auto &[id, exp] : exports) {
        out += detail::format(
            "  #%u '%s' manager=%u size=%s perms=%s attachments=%u\n",
            id, exp->name().c_str(), exp->managerVm(),
            humanBytes(exp->objectBytes()).c_str(),
            ept::permsToString(exp->objectPerms()).c_str(),
            exp->liveAttachments());
    }
    out += detail::format("attachments: %zu\n", attachments.size());
    for (const auto &[id, attach] : attachments) {
        out += detail::format(
            "  #%u export='%s' guest=%u vcpu=%u gate@%u sub@%u\n", id,
            attach->exportRecord().name().c_str(), attach->guestVm(),
            attach->vcpuIndex(), attach->info().gateIndex,
            attach->info().subIndex);
    }
    out += detail::format("grants: %zu\n", grants.size());
    for (const auto &[id, g] : grants) {
        const std::string origin =
            g.parent == invalidCapId
                ? "root"
                : detail::format("parent=%llu",
                                 (unsigned long long)g.parent);
        out += detail::format(
            "  #%llu %s export=%u holder=%u depth=%u "
            "window=[%llu+%llu] perms=%s%s%s\n",
            (unsigned long long)id, origin.c_str(), g.exportId,
            g.holder, hyper.grants().depthOf(id),
            (unsigned long long)g.offset, (unsigned long long)g.bytes,
            ept::permsToString(g.perms).c_str(),
            g.expiresNs != 0 ? " expiring" : "",
            g.attachment != 0 ? " redeemed" : "");
    }
    std::size_t pending = 0;
    for (const auto &[id, req] : requests)
        pending += req.state == RequestState::Pending ? 1 : 0;
    out += detail::format("requests: %zu (%zu pending)\n",
                          requests.size(), pending);
    return out;
}

void
ElisaService::registerHandlers()
{
    hyper.setHypercallName(
        static_cast<std::uint64_t>(ElisaHc::RegisterManager),
        "hc_register_manager");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Export),
                           "hc_export");
    hyper.setHypercallName(
        static_cast<std::uint64_t>(ElisaHc::NextRequest),
        "hc_next_request");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Approve),
                           "hc_approve");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Deny),
                           "hc_deny");
    hyper.setHypercallName(
        static_cast<std::uint64_t>(ElisaHc::AttachRequest),
        "hc_attach_request");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Query),
                           "hc_query");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Detach),
                           "hc_detach");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Revoke),
                           "hc_revoke");
    hyper.setHypercallName(
        static_cast<std::uint64_t>(ElisaHc::Delegate), "hc_delegate");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Redeem),
                           "hc_redeem");
    hyper.setHypercallName(
        static_cast<std::uint64_t>(ElisaHc::CapRevoke),
        "hc_cap_revoke");

    auto reg = [this](ElisaHc nr, auto member) {
        hyper.registerHypercall(
            static_cast<std::uint64_t>(nr),
            [this, member](cpu::Vcpu &vcpu,
                           const cpu::HypercallArgs &args) {
                return (this->*member)(vcpu, args);
            });
    };

    hyper.registerHypercall(
        static_cast<std::uint64_t>(ElisaHc::RegisterManager),
        [this](cpu::Vcpu &vcpu, const cpu::HypercallArgs &) {
            return hcRegisterManager(vcpu);
        });
    reg(ElisaHc::Export, &ElisaService::hcExport);
    reg(ElisaHc::NextRequest, &ElisaService::hcNextRequest);
    reg(ElisaHc::Approve, &ElisaService::hcApprove);
    reg(ElisaHc::Deny, &ElisaService::hcDeny);
    reg(ElisaHc::AttachRequest, &ElisaService::hcAttachRequest);
    reg(ElisaHc::Query, &ElisaService::hcQuery);
    reg(ElisaHc::Detach, &ElisaService::hcDetach);
    reg(ElisaHc::Revoke, &ElisaService::hcRevoke);
    reg(ElisaHc::Delegate, &ElisaService::hcDelegate);
    reg(ElisaHc::Redeem, &ElisaService::hcRedeem);
    reg(ElisaHc::CapRevoke, &ElisaService::hcCapRevoke);
}

std::uint64_t
ElisaService::hcRegisterManager(cpu::Vcpu &vcpu)
{
    managers.try_emplace(vcpu.vm());
    hyper.stats().inc("elisa_managers");
    return 0;
}

std::uint64_t
ElisaService::hcExport(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    const VmId caller = vcpu.vm();
    if (!managers.contains(caller))
        return hv::hcError;

    auto staged = stagedFns.find(caller);
    if (staged == stagedFns.end() || staged->second.empty())
        return hv::hcError;

    // args: name_gpa, name_len | perms<<32, obj_gpa, obj_bytes
    const Gpa name_gpa = args.arg0;
    const std::uint64_t name_len = args.arg1 & 0xffffffffull;
    const auto perms =
        static_cast<ept::Perms>((args.arg1 >> 32) & 0x7);
    const Gpa obj_gpa = args.arg2;
    const std::uint64_t obj_bytes = args.arg3;

    if (name_len == 0 || name_len > 51 || obj_bytes == 0 ||
        !isPageAligned(obj_bytes) || !isPageAligned(obj_gpa)) {
        return hv::hcError;
    }

    std::string name(name_len, '\0');
    cpu::GuestView view(vcpu);
    view.readBytes(name_gpa, name.data(), name_len);
    if (findExport(name))
        return hv::hcError;

    const Hpa obj_hpa = hyper.vm(caller).ramGpaToHpa(obj_gpa);

    // Host work: sub-context bookkeeping is charged to the caller.
    vcpu.clock().advance(hyper.cost().subContextCreateNs);

    const ExportId id = nextExportId++;
    exports.emplace(id, std::make_unique<Export>(
                            hyper, id, name, caller, obj_hpa, obj_bytes,
                            perms == ept::Perms::None ? ept::Perms::RW
                                                      : perms,
                            std::move(staged->second)));
    stagedFns.erase(staged);
    hyper.stats().inc("elisa_exports");
    ELISA_TRACE(Elisa, "export %u '%s' by VM %u (%llu KiB)", id,
                name.c_str(), caller,
                (unsigned long long)(obj_bytes >> 10));
    return id;
}

std::uint64_t
ElisaService::hcNextRequest(cpu::Vcpu &vcpu,
                            const cpu::HypercallArgs &args)
{
    auto mgr = managers.find(vcpu.vm());
    if (mgr == managers.end())
        return hv::hcError;
    vcpu.clock().advance(hyper.cost().negotiationHopNs);

    auto &queue = mgr->second;
    while (!queue.empty()) {
        const RequestId rid = queue.front();
        auto req = requests.find(rid);
        if (req == requests.end() ||
            req->second.state != RequestState::Pending) {
            queue.pop_front();
            continue;
        }
        WireRequest wire;
        wire.id = req->second.id;
        wire.guestVm = req->second.guestVm;
        wire.vcpuIndex = req->second.vcpuIndex;
        copyName(wire.name, req->second.name);
        cpu::GuestView view(vcpu);
        view.write(args.arg0, wire);
        queue.pop_front();
        return 1;
    }
    return 0;
}

std::uint64_t
ElisaService::hcApprove(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    if (!managers.contains(vcpu.vm()))
        return hv::hcError;
    auto req_it = requests.find(static_cast<RequestId>(args.arg0));
    if (req_it == requests.end() ||
        req_it->second.state != RequestState::Pending) {
        return hv::hcError;
    }
    Request &req = req_it->second;

    Export *exp = findExport(req.name);
    if (!exp || exp->managerVm() != vcpu.vm())
        return hv::hcError;

    // The requesting guest may have died between AttachRequest and this
    // Approve (its request is normally reaped with it, but a deferred
    // teardown can leave a window). Refuse rather than build an
    // attachment on a corpse.
    if (!hyper.hasVm(req.guestVm)) {
        req.state = RequestState::Denied;
        return hv::hcError;
    }

    // Injected attach-construction failure (frame exhaustion, EPT
    // allocation failure): the guest observes a denial, never a hang.
    if (sim::FaultPlan *plan = hyper.faultPlan()) {
        const auto fault = plan->onAttachBuild(req.guestVm);
        if (fault.action != sim::FaultAction::None) {
            hyper.stats().inc(attachBuildFaultsId);
            req.state = RequestState::Denied;
            return hv::hcError;
        }
    }

    // Optional per-client permission narrowing in arg1 (0 = the
    // export's full permissions). Escalation beyond the export's
    // rights is refused.
    ept::Perms granted = exp->objectPerms();
    if (args.arg1 != 0) {
        const auto asked = static_cast<ept::Perms>(args.arg1 & 0x7);
        if (!ept::permits(exp->objectPerms(), asked))
            return hv::hcError;
        granted = asked;
    }

    hv::Vm &guest = hyper.vm(req.guestVm);

    // A full EPTP list would abort attachment construction mid-way;
    // refuse cleanly while both contexts can still be installed.
    if (req.vcpuIndex >= guest.vcpuCount() ||
        guest.vcpu(req.vcpuIndex).eptpList().validCount() + 2 >
            ept::eptpListSize) {
        req.state = RequestState::Denied;
        return hv::hcError;
    }

    const unsigned slot = slotCounters[guest.id()]++;

    const AttachmentId aid = nextAttachmentId++;
    auto attach = std::make_unique<Attachment>(hyper, aid, *exp, guest,
                                               req.vcpuIndex, slot,
                                               granted);

    // Charge the manager for the context construction it instructed:
    // two EPT hierarchies plus one PTE write per mapped page.
    const auto &cost = hyper.cost();
    const std::uint64_t mapped_pages =
        attach->gateEpt().mappedPages() + attach->subEpt().mappedPages();
    vcpu.clock().advance(2 * cost.subContextCreateNs +
                         mapped_pages * cost.eptMapPageNs);

    // Every attachment is backed by a grant: the root of the export's
    // delegation tree for this client. The guest can delegate narrowed
    // views of it peer-to-peer without coming back here.
    const CapId root =
        mintGrant(invalidCapId, exp->id(), exp->managerVm(),
                  req.guestVm, 0, exp->objectBytes(), granted, 0);
    grants[root].attachment = aid;
    attachmentGrant[aid] = root;
    attach->bindGrant(root, 0);

    req.state = RequestState::Approved;
    req.info = attach->info();
    ELISA_TRACE(Elisa,
                "approved request %u: attachment %u, gate idx %u, "
                "sub idx %u",
                req.id, aid, req.info.gateIndex, req.info.subIndex);
    attachments.emplace(aid, std::move(attach));
    return 0;
}

std::uint64_t
ElisaService::hcDeny(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    if (!managers.contains(vcpu.vm()))
        return hv::hcError;
    auto req_it = requests.find(static_cast<RequestId>(args.arg0));
    if (req_it == requests.end() ||
        req_it->second.state != RequestState::Pending) {
        return hv::hcError;
    }
    req_it->second.state = RequestState::Denied;
    return 0;
}

std::uint64_t
ElisaService::hcAttachRequest(cpu::Vcpu &vcpu,
                              const cpu::HypercallArgs &args)
{
    const std::uint64_t name_len = args.arg1;
    if (name_len == 0 || name_len > 51)
        return hv::hcError;
    std::string name(name_len, '\0');
    cpu::GuestView view(vcpu);
    view.readBytes(args.arg0, name.data(), name_len);

    Export *exp = findExport(name);
    if (!exp)
        return hv::hcError;

    // A request for a vCPU the calling VM does not have can never be
    // served; reject it before it occupies queue space.
    const auto vcpu_index = static_cast<std::uint32_t>(args.arg2);
    if (vcpu_index >= hyper.vm(vcpu.vm()).vcpuCount())
        return hv::hcError;

    auto mgr = managers.find(exp->managerVm());
    panic_if(mgr == managers.end(), "export without manager");

    // Bounded request queue: a slow or stuck manager must not let a
    // guest grow host-side state without limit. Busy is a *refusal*,
    // distinct from an error — back off and retry.
    if (mgr->second.size() >= maxQueuedPerManager) {
        hyper.stats().inc(busyId);
        return hv::hcBusy;
    }

    vcpu.clock().advance(hyper.cost().negotiationHopNs);

    const RequestId rid = nextRequestId++;
    Request req;
    req.id = rid;
    req.guestVm = vcpu.vm();
    req.vcpuIndex = vcpu_index;
    req.name = std::move(name);
    req.createdNs = vcpu.clock().now();
    ELISA_TRACE(Elisa, "attach request %u: VM %u -> '%s'", rid,
                vcpu.vm(), req.name.c_str());
    requests.emplace(rid, std::move(req));
    mgr->second.push_back(rid);
    if (sim::Tracer *tr = hyper.tracer()) {
        tr->asyncBegin(sim::SpanCat::Negotiation, reqSpanName.get(*tr),
                       rid, vcpu.id(), vcpu.clock().now(), vcpu.vm());
    }
    return rid;
}

std::uint64_t
ElisaService::hcQuery(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    auto req_it = requests.find(static_cast<RequestId>(args.arg0));
    if (req_it == requests.end() ||
        req_it->second.guestVm != vcpu.vm()) {
        return hv::hcError;
    }
    vcpu.clock().advance(hyper.cost().negotiationHopNs);

    Request &req = req_it->second;

    // Per-request timeout: a request left Pending past the bound (its
    // manager is stuck, dead, or its reply was lost) is reaped and the
    // guest observes TimedOut — a defined error, never a hang.
    if (req.state == RequestState::Pending &&
        vcpu.clock().now() >
            req.createdNs + hyper.cost().negotiationTimeoutNs) {
        req.state = RequestState::TimedOut;
        hyper.stats().inc(timeoutsId);
    }

    WireAttachResult wire;
    wire.state = static_cast<std::uint32_t>(req.state);
    wire.info = req.info;
    cpu::GuestView view(vcpu);
    view.write(args.arg1, wire);

    if (sim::Tracer *tr = hyper.tracer()) {
        // The request's async span ends at the Query that observes a
        // terminal state, with an outcome instant inside it. (Requests
        // reaped by VM teardown are never queried; their spans stay
        // open in the trace, which is the honest rendering.)
        const SimNs now = vcpu.clock().now();
        const RequestId rid = req.id;
        switch (req.state) {
          case RequestState::Pending:
            tr->asyncInstant(sim::SpanCat::Negotiation,
                             pendingName.get(*tr), rid, vcpu.id(), now);
            break;
          case RequestState::Approved:
            tr->asyncInstant(sim::SpanCat::Negotiation,
                             approvedName.get(*tr), rid, vcpu.id(), now,
                             req.info.attachment);
            break;
          case RequestState::Denied:
            tr->asyncInstant(sim::SpanCat::Negotiation,
                             deniedName.get(*tr), rid, vcpu.id(), now);
            break;
          case RequestState::TimedOut:
            tr->asyncInstant(sim::SpanCat::Negotiation,
                             timedOutName.get(*tr), rid, vcpu.id(),
                             now);
            break;
        }
        if (req.state != RequestState::Pending) {
            tr->asyncEnd(sim::SpanCat::Negotiation,
                         reqSpanName.get(*tr), rid, vcpu.id(), now,
                         wire.state);
        }
    }

    if (req.state != RequestState::Pending)
        requests.erase(req_it);
    return static_cast<std::uint64_t>(wire.state);
}

std::uint64_t
ElisaService::hcDetach(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    const auto aid = static_cast<AttachmentId>(args.arg0);
    auto it = attachments.find(aid);
    if (it == attachments.end()) {
        // Idempotent replay: detaching an attachment this same guest
        // already detached (duplicated hypercall, retry after a lost
        // reply) succeeds without side effects.
        auto retired = retiredAttachments.find(aid);
        if (retired != retiredAttachments.end() &&
            retired->second == vcpu.vm()) {
            hyper.stats().inc(idempotentDetachesId);
            return 0;
        }
        return hv::hcError;
    }
    if (it->second->guestVm() != vcpu.vm())
        return hv::hcError;
    vcpu.clock().advance(hyper.cost().negotiationHopNs);
    ELISA_TRACE(Elisa, "detach attachment %llu by VM %u",
                (unsigned long long)args.arg0, vcpu.vm());
    // Detach is grant teardown by another name: the attachment's grant
    // subtree — including any delegation the guest handed onward — is
    // torn down in the one canonical order.
    const CapId grant = it->second->grant();
    panic_if(grant == invalidCapId, "attachment %u without a grant",
             aid);
    teardownGrant(grant, CapTeardown::Detach, &vcpu);
    hyper.stats().inc("elisa_detaches");
    return 0;
}

std::uint64_t
ElisaService::hcRevoke(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    // Only the owning manager may revoke an export; every client's
    // attachment is torn down (their next VMFUNC faults).
    const auto eid = static_cast<ExportId>(args.arg0);
    auto it = exports.find(eid);
    if (it == exports.end()) {
        // Idempotent replay of a revoke this manager already issued.
        auto retired = retiredExports.find(eid);
        if (retired != retiredExports.end() &&
            retired->second == vcpu.vm()) {
            hyper.stats().inc(idempotentRevokesId);
            return 0;
        }
        return hv::hcError;
    }
    if (it->second->managerVm() != vcpu.vm())
        return hv::hcError;
    vcpu.clock().advance(hyper.cost().negotiationHopNs);
    const std::string name = it->second->name();
    ELISA_TRACE(Elisa, "revoke export %llu '%s' by VM %u",
                (unsigned long long)args.arg0, name.c_str(),
                vcpu.vm());
    return revokeExport(name) ? 0 : hv::hcError;
}

std::uint64_t
ElisaService::hcDelegate(cpu::Vcpu &vcpu,
                         const cpu::HypercallArgs &args)
{
    // args: cap_id, target_vm | perms<<32, off_pages | len_pages<<32,
    // expiry_ns. The whole spec travels in registers — a delegation
    // never touches guest memory and never involves the manager.
    auto git = grants.find(static_cast<CapId>(args.arg0));
    if (git == grants.end())
        return hv::hcError;
    CapGrant &g = git->second;
    if (g.holder != vcpu.vm())
        return hv::hcError;

    // Lazy expiry: the first control operation past the lapse instant
    // observes the grant (and its subtree) disappear.
    if (g.expiresNs != 0 && vcpu.clock().now() >= g.expiresNs) {
        teardownGrant(g.id, CapTeardown::Expire, &vcpu);
        return hv::hcError;
    }

    if (hyper.grants().depthOf(g.id) + 1 >= maxDelegationDepth)
        return hv::hcError;

    const auto target = static_cast<VmId>(args.arg1 & 0xffffffffull);
    if (!hyper.hasVm(target))
        return hv::hcError;

    // Permissions only ever narrow, checked at every hop: a delegatee
    // re-delegating cannot win back what its own grant lost.
    const auto asked =
        static_cast<ept::Perms>((args.arg1 >> 32) & 0x7);
    const ept::Perms child_perms =
        asked == ept::Perms::None ? g.perms : asked;
    if (!ept::permits(g.perms, child_perms)) {
        hyper.stats().inc(widenRefusedId);
        return hv::hcError;
    }

    // Window: page counts relative to *this* grant's window; the
    // narrowed child window must sit entirely inside it.
    const std::uint64_t off =
        (args.arg2 & 0xffffffffull) * pageSize;
    std::uint64_t len = (args.arg2 >> 32) * pageSize;
    if (off >= g.bytes)
        return hv::hcError;
    if (len == 0)
        len = g.bytes - off;
    if (len > g.bytes - off)
        return hv::hcError;

    // Expiry only ever tightens: inherit the parent's, or lapse
    // earlier. A bound already in the past is a degenerate grant.
    SimNs expires = args.arg3 != 0 ? args.arg3 : g.expiresNs;
    if (g.expiresNs != 0 && (expires == 0 || expires > g.expiresNs))
        expires = g.expiresNs;
    if (expires != 0 && expires <= vcpu.clock().now())
        return hv::hcError;

    // Injected grant-table exhaustion at the registration point.
    if (sim::FaultPlan *plan = hyper.faultPlan()) {
        const auto fault = plan->onCapability(vcpu.vm());
        if (fault.action != sim::FaultAction::None) {
            hyper.stats().inc(grantExhaustedId);
            return hv::hcError;
        }
    }

    vcpu.clock().advance(hyper.cost().negotiationHopNs);

    const CapId child =
        mintGrant(g.id, g.exportId, vcpu.vm(), target, g.offset + off,
                  len, child_perms, expires);
    hyper.stats().inc(delegationsId);
    ELISA_TRACE(Elisa,
                "delegate grant %llu -> %llu: VM %u -> VM %u "
                "(%llu KiB @ +%llu)",
                (unsigned long long)g.id, (unsigned long long)child,
                vcpu.vm(), target, (unsigned long long)(len >> 10),
                (unsigned long long)off);
    if (sim::Tracer *tr = hyper.tracer()) {
        tr->asyncBegin(sim::SpanCat::Negotiation, capSpanName.get(*tr),
                       child, vcpu.id(), vcpu.clock().now(),
                       args.arg0, target);
    }
    return child;
}

std::uint64_t
ElisaService::hcRedeem(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    // args: cap_id, result_gpa, vcpu_index. Writes a WireAttachResult
    // exactly like Query does, so the guest-side plumbing is shared.
    auto git = grants.find(static_cast<CapId>(args.arg0));
    if (git == grants.end())
        return hv::hcError;
    CapGrant &g = git->second;
    if (g.holder != vcpu.vm())
        return hv::hcError;

    if (g.expiresNs != 0 && vcpu.clock().now() >= g.expiresNs) {
        teardownGrant(g.id, CapTeardown::Expire, &vcpu);
        return hv::hcError;
    }

    if (g.attachment != 0) {
        // Idempotent replay (duplicated hypercall, retry after a lost
        // reply): report the attachment already built.
        auto at = attachments.find(g.attachment);
        panic_if(at == attachments.end(),
                 "grant %llu redeemed by a vanished attachment",
                 (unsigned long long)g.id);
        WireAttachResult wire;
        wire.state =
            static_cast<std::uint32_t>(RequestState::Approved);
        wire.info = at->second->info();
        cpu::GuestView view(vcpu);
        view.write(args.arg1, wire);
        return 0;
    }

    auto exp_it = exports.find(g.exportId);
    panic_if(exp_it == exports.end(),
             "grant %llu outlived export %u",
             (unsigned long long)g.id, g.exportId);
    Export &exp = *exp_it->second;

    hv::Vm &guest = hyper.vm(vcpu.vm());
    const auto vcpu_index = static_cast<std::uint32_t>(args.arg2);
    if (vcpu_index >= guest.vcpuCount() ||
        guest.vcpu(vcpu_index).eptpList().validCount() + 2 >
            ept::eptpListSize) {
        return hv::hcError;
    }

    // Same construction-failure injection point as a manager-approved
    // attach: the redeemer observes an error, never a hang.
    if (sim::FaultPlan *plan = hyper.faultPlan()) {
        const auto fault = plan->onAttachBuild(vcpu.vm());
        if (fault.action != sim::FaultAction::None) {
            hyper.stats().inc(attachBuildFaultsId);
            return hv::hcError;
        }
    }

    const unsigned slot = slotCounters[guest.id()]++;
    const AttachmentId aid = nextAttachmentId++;
    auto attach = std::make_unique<Attachment>(
        hyper, aid, exp, guest, vcpu_index, slot, g.perms, g.offset,
        g.bytes);
    attach->bindGrant(g.id, g.expiresNs);

    // The redeemer pays for the context construction it asked for —
    // the same bill a manager foots on Approve.
    const auto &cost = hyper.cost();
    const std::uint64_t mapped_pages =
        attach->gateEpt().mappedPages() + attach->subEpt().mappedPages();
    vcpu.clock().advance(2 * cost.subContextCreateNs +
                         mapped_pages * cost.eptMapPageNs);

    g.attachment = aid;
    attachmentGrant[aid] = g.id;

    WireAttachResult wire;
    wire.state = static_cast<std::uint32_t>(RequestState::Approved);
    wire.info = attach->info();
    cpu::GuestView view(vcpu);
    view.write(args.arg1, wire);

    hyper.stats().inc(redeemsId);
    ELISA_TRACE(Elisa, "redeem grant %llu: attachment %u on VM %u",
                (unsigned long long)g.id, aid, vcpu.vm());
    if (sim::Tracer *tr = hyper.tracer()) {
        tr->asyncInstant(sim::SpanCat::Negotiation,
                         capRedeemedName.get(*tr), g.id, vcpu.id(),
                         vcpu.clock().now(), aid);
    }
    attachments.emplace(aid, std::move(attach));
    return 0;
}

std::uint64_t
ElisaService::hcCapRevoke(cpu::Vcpu &vcpu,
                          const cpu::HypercallArgs &args)
{
    const auto id = static_cast<CapId>(args.arg0);
    auto git = grants.find(id);
    if (git == grants.end()) {
        // Idempotent replay of a revoke a party to this grant already
        // completed.
        auto retired = retiredGrants.find(id);
        if (retired != retiredGrants.end() &&
            (retired->second.first == vcpu.vm() ||
             retired->second.second == vcpu.vm())) {
            hyper.stats().inc(idempotentRevokesId);
            return 0;
        }
        return hv::hcError;
    }
    CapGrant &g = git->second;

    // Revocation authority: the grant's holder, its issuer, the holder
    // of any ancestor grant (revoking a node tears down its subtree,
    // so an ancestor holder is entitled to reach down), or the
    // export's manager.
    bool authorized =
        g.holder == vcpu.vm() || g.issuer == vcpu.vm();
    for (CapId up = g.parent; !authorized && up != invalidCapId;) {
        auto it = grants.find(up);
        if (it == grants.end())
            break;
        authorized = it->second.holder == vcpu.vm();
        up = it->second.parent;
    }
    if (!authorized) {
        auto exp_it = exports.find(g.exportId);
        authorized = exp_it != exports.end() &&
                     exp_it->second->managerVm() == vcpu.vm();
    }
    if (!authorized)
        return hv::hcError;

    vcpu.clock().advance(hyper.cost().negotiationHopNs);
    ELISA_TRACE(Elisa, "revoke grant %llu by VM %u",
                (unsigned long long)id, vcpu.vm());
    teardownGrant(id, CapTeardown::Revoke, &vcpu);
    return 0;
}

} // namespace elisa::core
