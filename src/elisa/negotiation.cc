#include "elisa/negotiation.hh"

#include <cstring>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "base/trace.hh"
#include "cpu/guest_view.hh"

namespace elisa::core
{

namespace
{

/** Clamp-copy a name into a WireRequest's fixed field. */
void
copyName(char (&dst)[52], const std::string &src)
{
    const std::size_t n = std::min(src.size(), sizeof(dst) - 1);
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

// Negotiation trace points. One async span per request, keyed by its
// RequestId, runs from AttachRequest to the Query that observes a
// terminal state; outcome instants land inside it.
sim::TraceNameCache reqSpanName("attach_request");
sim::TraceNameCache approvedName("approved");
sim::TraceNameCache deniedName("denied");
sim::TraceNameCache timedOutName("timed_out");
sim::TraceNameCache pendingName("query_pending");

} // anonymous namespace

ElisaService::ElisaService(hv::Hypervisor &hv) : hyper(hv)
{
    busyId = hv.stats().id("elisa_busy");
    timeoutsId = hv.stats().id("elisa_timeouts");
    orphanDeniedId = hv.stats().id("elisa_orphan_denied");
    idempotentDetachesId = hv.stats().id("elisa_idempotent_detaches");
    idempotentRevokesId = hv.stats().id("elisa_idempotent_revokes");
    autoRevokesId = hv.stats().id("elisa_auto_revokes");
    attachBuildFaultsId = hv.stats().id("elisa_attach_build_faults");
    registerHandlers();
    hv.addVmDestroyHook([this](VmId vm) { onVmDestroyed(vm); });
}

void
ElisaService::setQueueCap(std::size_t cap)
{
    panic_if(cap == 0, "request queue cap must be positive");
    maxQueuedPerManager = cap;
}

void
ElisaService::retireAttachment(
    std::map<AttachmentId, std::unique_ptr<Attachment>>::iterator it)
{
    retiredAttachments[it->first] = it->second->guestVm();
    if (retiredAttachments.size() > retiredCap)
        retiredAttachments.erase(retiredAttachments.begin());
    attachments.erase(it);
}

void
ElisaService::retireExport(ExportId id, VmId owner)
{
    retiredExports[id] = owner;
    if (retiredExports.size() > retiredCap)
        retiredExports.erase(retiredExports.begin());
}

void
ElisaService::denyPendingRequestsFor(const std::string &name)
{
    for (auto &[rid, req] : requests) {
        if (req.state == RequestState::Pending && req.name == name) {
            req.state = RequestState::Denied;
            hyper.stats().inc(orphanDeniedId);
        }
    }
}

void
ElisaService::onVmDestroyed(VmId vm)
{
    // 1. Attachments held by the dying guest.
    for (auto it = attachments.begin(); it != attachments.end();) {
        if (it->second->guestVm() == vm)
            retireAttachment(it++);
        else
            ++it;
    }
    // 2. Exports owned by the dying manager — revoke them fully:
    //    other guests' attachments are torn down (their EPTP-list
    //    entries vanish), and any request still Pending on one of the
    //    orphaned exports is denied so its guest cannot hang waiting
    //    for a manager that no longer exists.
    for (auto it = exports.begin(); it != exports.end();) {
        if (it->second->managerVm() == vm) {
            Export *exp = it->second.get();
            denyPendingRequestsFor(exp->name());
            for (auto at = attachments.begin();
                 at != attachments.end();) {
                if (&at->second->exportRecord() == exp)
                    retireAttachment(at++);
                else
                    ++at;
            }
            retireExport(it->first, vm);
            it = exports.erase(it);
            hyper.stats().inc(autoRevokesId);
        } else {
            ++it;
        }
    }
    // 3. Manager registration, staged code, and pending requests.
    managers.erase(vm);
    stagedFns.erase(vm);
    for (auto it = requests.begin(); it != requests.end();) {
        if (it->second.guestVm == vm)
            it = requests.erase(it);
        else
            ++it;
    }
    hyper.stats().inc("elisa_vm_teardowns");
}

ElisaService::~ElisaService()
{
    // Attachments reference exports; destroy them first.
    attachments.clear();
    exports.clear();
}

void
ElisaService::stageFunctions(VmId manager_vm, SharedFnTable fns)
{
    stagedFns[manager_vm] = std::move(fns);
}

Export *
ElisaService::findExport(const std::string &name)
{
    for (auto &[id, exp] : exports) {
        if (exp->name() == name)
            return exp.get();
    }
    return nullptr;
}

Attachment *
ElisaService::attachment(AttachmentId id)
{
    auto it = attachments.find(id);
    return it == attachments.end() ? nullptr : it->second.get();
}

bool
ElisaService::revokeExport(const std::string &name)
{
    Export *exp = findExport(name);
    if (!exp)
        return false;
    denyPendingRequestsFor(name);
    for (auto it = attachments.begin(); it != attachments.end();) {
        if (&it->second->exportRecord() == exp)
            retireAttachment(it++);
        else
            ++it;
    }
    retireExport(exp->id(), exp->managerVm());
    exports.erase(exp->id());
    hyper.stats().inc("elisa_revokes");
    return true;
}

std::string
ElisaService::dumpState() const
{
    std::string out = "=== ELISA service state ===\n";
    out += detail::format("managers: %zu\n", managers.size());
    for (const auto &[vm, queue] : managers) {
        out += detail::format("  VM %u (%zu queued requests)\n", vm,
                              queue.size());
    }
    out += detail::format("exports: %zu\n", exports.size());
    for (const auto &[id, exp] : exports) {
        out += detail::format(
            "  #%u '%s' manager=%u size=%s perms=%s attachments=%u\n",
            id, exp->name().c_str(), exp->managerVm(),
            humanBytes(exp->objectBytes()).c_str(),
            ept::permsToString(exp->objectPerms()).c_str(),
            exp->liveAttachments());
    }
    out += detail::format("attachments: %zu\n", attachments.size());
    for (const auto &[id, attach] : attachments) {
        out += detail::format(
            "  #%u export='%s' guest=%u vcpu=%u gate@%u sub@%u\n", id,
            attach->exportRecord().name().c_str(), attach->guestVm(),
            attach->vcpuIndex(), attach->info().gateIndex,
            attach->info().subIndex);
    }
    std::size_t pending = 0;
    for (const auto &[id, req] : requests)
        pending += req.state == RequestState::Pending ? 1 : 0;
    out += detail::format("requests: %zu (%zu pending)\n",
                          requests.size(), pending);
    return out;
}

void
ElisaService::registerHandlers()
{
    hyper.setHypercallName(
        static_cast<std::uint64_t>(ElisaHc::RegisterManager),
        "hc_register_manager");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Export),
                           "hc_export");
    hyper.setHypercallName(
        static_cast<std::uint64_t>(ElisaHc::NextRequest),
        "hc_next_request");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Approve),
                           "hc_approve");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Deny),
                           "hc_deny");
    hyper.setHypercallName(
        static_cast<std::uint64_t>(ElisaHc::AttachRequest),
        "hc_attach_request");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Query),
                           "hc_query");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Detach),
                           "hc_detach");
    hyper.setHypercallName(static_cast<std::uint64_t>(ElisaHc::Revoke),
                           "hc_revoke");

    auto reg = [this](ElisaHc nr, auto member) {
        hyper.registerHypercall(
            static_cast<std::uint64_t>(nr),
            [this, member](cpu::Vcpu &vcpu,
                           const cpu::HypercallArgs &args) {
                return (this->*member)(vcpu, args);
            });
    };

    hyper.registerHypercall(
        static_cast<std::uint64_t>(ElisaHc::RegisterManager),
        [this](cpu::Vcpu &vcpu, const cpu::HypercallArgs &) {
            return hcRegisterManager(vcpu);
        });
    reg(ElisaHc::Export, &ElisaService::hcExport);
    reg(ElisaHc::NextRequest, &ElisaService::hcNextRequest);
    reg(ElisaHc::Approve, &ElisaService::hcApprove);
    reg(ElisaHc::Deny, &ElisaService::hcDeny);
    reg(ElisaHc::AttachRequest, &ElisaService::hcAttachRequest);
    reg(ElisaHc::Query, &ElisaService::hcQuery);
    reg(ElisaHc::Detach, &ElisaService::hcDetach);
    reg(ElisaHc::Revoke, &ElisaService::hcRevoke);
}

std::uint64_t
ElisaService::hcRegisterManager(cpu::Vcpu &vcpu)
{
    managers.try_emplace(vcpu.vm());
    hyper.stats().inc("elisa_managers");
    return 0;
}

std::uint64_t
ElisaService::hcExport(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    const VmId caller = vcpu.vm();
    if (!managers.contains(caller))
        return hv::hcError;

    auto staged = stagedFns.find(caller);
    if (staged == stagedFns.end() || staged->second.empty())
        return hv::hcError;

    // args: name_gpa, name_len | perms<<32, obj_gpa, obj_bytes
    const Gpa name_gpa = args.arg0;
    const std::uint64_t name_len = args.arg1 & 0xffffffffull;
    const auto perms =
        static_cast<ept::Perms>((args.arg1 >> 32) & 0x7);
    const Gpa obj_gpa = args.arg2;
    const std::uint64_t obj_bytes = args.arg3;

    if (name_len == 0 || name_len > 51 || obj_bytes == 0 ||
        !isPageAligned(obj_bytes) || !isPageAligned(obj_gpa)) {
        return hv::hcError;
    }

    std::string name(name_len, '\0');
    cpu::GuestView view(vcpu);
    view.readBytes(name_gpa, name.data(), name_len);
    if (findExport(name))
        return hv::hcError;

    const Hpa obj_hpa = hyper.vm(caller).ramGpaToHpa(obj_gpa);

    // Host work: sub-context bookkeeping is charged to the caller.
    vcpu.clock().advance(hyper.cost().subContextCreateNs);

    const ExportId id = nextExportId++;
    exports.emplace(id, std::make_unique<Export>(
                            hyper, id, name, caller, obj_hpa, obj_bytes,
                            perms == ept::Perms::None ? ept::Perms::RW
                                                      : perms,
                            std::move(staged->second)));
    stagedFns.erase(staged);
    hyper.stats().inc("elisa_exports");
    ELISA_TRACE(Elisa, "export %u '%s' by VM %u (%llu KiB)", id,
                name.c_str(), caller,
                (unsigned long long)(obj_bytes >> 10));
    return id;
}

std::uint64_t
ElisaService::hcNextRequest(cpu::Vcpu &vcpu,
                            const cpu::HypercallArgs &args)
{
    auto mgr = managers.find(vcpu.vm());
    if (mgr == managers.end())
        return hv::hcError;
    vcpu.clock().advance(hyper.cost().negotiationHopNs);

    auto &queue = mgr->second;
    while (!queue.empty()) {
        const RequestId rid = queue.front();
        auto req = requests.find(rid);
        if (req == requests.end() ||
            req->second.state != RequestState::Pending) {
            queue.pop_front();
            continue;
        }
        WireRequest wire;
        wire.id = req->second.id;
        wire.guestVm = req->second.guestVm;
        wire.vcpuIndex = req->second.vcpuIndex;
        copyName(wire.name, req->second.name);
        cpu::GuestView view(vcpu);
        view.write(args.arg0, wire);
        queue.pop_front();
        return 1;
    }
    return 0;
}

std::uint64_t
ElisaService::hcApprove(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    if (!managers.contains(vcpu.vm()))
        return hv::hcError;
    auto req_it = requests.find(static_cast<RequestId>(args.arg0));
    if (req_it == requests.end() ||
        req_it->second.state != RequestState::Pending) {
        return hv::hcError;
    }
    Request &req = req_it->second;

    Export *exp = findExport(req.name);
    if (!exp || exp->managerVm() != vcpu.vm())
        return hv::hcError;

    // The requesting guest may have died between AttachRequest and this
    // Approve (its request is normally reaped with it, but a deferred
    // teardown can leave a window). Refuse rather than build an
    // attachment on a corpse.
    if (!hyper.hasVm(req.guestVm)) {
        req.state = RequestState::Denied;
        return hv::hcError;
    }

    // Injected attach-construction failure (frame exhaustion, EPT
    // allocation failure): the guest observes a denial, never a hang.
    if (sim::FaultPlan *plan = hyper.faultPlan()) {
        const auto fault = plan->onAttachBuild(req.guestVm);
        if (fault.action != sim::FaultAction::None) {
            hyper.stats().inc(attachBuildFaultsId);
            req.state = RequestState::Denied;
            return hv::hcError;
        }
    }

    // Optional per-client permission narrowing in arg1 (0 = the
    // export's full permissions). Escalation beyond the export's
    // rights is refused.
    ept::Perms granted = exp->objectPerms();
    if (args.arg1 != 0) {
        const auto asked = static_cast<ept::Perms>(args.arg1 & 0x7);
        if (!ept::permits(exp->objectPerms(), asked))
            return hv::hcError;
        granted = asked;
    }

    hv::Vm &guest = hyper.vm(req.guestVm);

    // A full EPTP list would abort attachment construction mid-way;
    // refuse cleanly while both contexts can still be installed.
    if (req.vcpuIndex >= guest.vcpuCount() ||
        guest.vcpu(req.vcpuIndex).eptpList().validCount() + 2 >
            ept::eptpListSize) {
        req.state = RequestState::Denied;
        return hv::hcError;
    }

    const unsigned slot = slotCounters[guest.id()]++;

    const AttachmentId aid = nextAttachmentId++;
    auto attach = std::make_unique<Attachment>(hyper, aid, *exp, guest,
                                               req.vcpuIndex, slot,
                                               granted);

    // Charge the manager for the context construction it instructed:
    // two EPT hierarchies plus one PTE write per mapped page.
    const auto &cost = hyper.cost();
    const std::uint64_t mapped_pages =
        attach->gateEpt().mappedPages() + attach->subEpt().mappedPages();
    vcpu.clock().advance(2 * cost.subContextCreateNs +
                         mapped_pages * cost.eptMapPageNs);

    req.state = RequestState::Approved;
    req.info = attach->info();
    ELISA_TRACE(Elisa,
                "approved request %u: attachment %u, gate idx %u, "
                "sub idx %u",
                req.id, aid, req.info.gateIndex, req.info.subIndex);
    attachments.emplace(aid, std::move(attach));
    return 0;
}

std::uint64_t
ElisaService::hcDeny(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    if (!managers.contains(vcpu.vm()))
        return hv::hcError;
    auto req_it = requests.find(static_cast<RequestId>(args.arg0));
    if (req_it == requests.end() ||
        req_it->second.state != RequestState::Pending) {
        return hv::hcError;
    }
    req_it->second.state = RequestState::Denied;
    return 0;
}

std::uint64_t
ElisaService::hcAttachRequest(cpu::Vcpu &vcpu,
                              const cpu::HypercallArgs &args)
{
    const std::uint64_t name_len = args.arg1;
    if (name_len == 0 || name_len > 51)
        return hv::hcError;
    std::string name(name_len, '\0');
    cpu::GuestView view(vcpu);
    view.readBytes(args.arg0, name.data(), name_len);

    Export *exp = findExport(name);
    if (!exp)
        return hv::hcError;

    // A request for a vCPU the calling VM does not have can never be
    // served; reject it before it occupies queue space.
    const auto vcpu_index = static_cast<std::uint32_t>(args.arg2);
    if (vcpu_index >= hyper.vm(vcpu.vm()).vcpuCount())
        return hv::hcError;

    auto mgr = managers.find(exp->managerVm());
    panic_if(mgr == managers.end(), "export without manager");

    // Bounded request queue: a slow or stuck manager must not let a
    // guest grow host-side state without limit. Busy is a *refusal*,
    // distinct from an error — back off and retry.
    if (mgr->second.size() >= maxQueuedPerManager) {
        hyper.stats().inc(busyId);
        return hv::hcBusy;
    }

    vcpu.clock().advance(hyper.cost().negotiationHopNs);

    const RequestId rid = nextRequestId++;
    Request req;
    req.id = rid;
    req.guestVm = vcpu.vm();
    req.vcpuIndex = vcpu_index;
    req.name = std::move(name);
    req.createdNs = vcpu.clock().now();
    ELISA_TRACE(Elisa, "attach request %u: VM %u -> '%s'", rid,
                vcpu.vm(), req.name.c_str());
    requests.emplace(rid, std::move(req));
    mgr->second.push_back(rid);
    if (sim::Tracer *tr = hyper.tracer()) {
        tr->asyncBegin(sim::SpanCat::Negotiation, reqSpanName.get(*tr),
                       rid, vcpu.id(), vcpu.clock().now(), vcpu.vm());
    }
    return rid;
}

std::uint64_t
ElisaService::hcQuery(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    auto req_it = requests.find(static_cast<RequestId>(args.arg0));
    if (req_it == requests.end() ||
        req_it->second.guestVm != vcpu.vm()) {
        return hv::hcError;
    }
    vcpu.clock().advance(hyper.cost().negotiationHopNs);

    Request &req = req_it->second;

    // Per-request timeout: a request left Pending past the bound (its
    // manager is stuck, dead, or its reply was lost) is reaped and the
    // guest observes TimedOut — a defined error, never a hang.
    if (req.state == RequestState::Pending &&
        vcpu.clock().now() >
            req.createdNs + hyper.cost().negotiationTimeoutNs) {
        req.state = RequestState::TimedOut;
        hyper.stats().inc(timeoutsId);
    }

    WireAttachResult wire;
    wire.state = static_cast<std::uint32_t>(req.state);
    wire.info = req.info;
    cpu::GuestView view(vcpu);
    view.write(args.arg1, wire);

    if (sim::Tracer *tr = hyper.tracer()) {
        // The request's async span ends at the Query that observes a
        // terminal state, with an outcome instant inside it. (Requests
        // reaped by VM teardown are never queried; their spans stay
        // open in the trace, which is the honest rendering.)
        const SimNs now = vcpu.clock().now();
        const RequestId rid = req.id;
        switch (req.state) {
          case RequestState::Pending:
            tr->asyncInstant(sim::SpanCat::Negotiation,
                             pendingName.get(*tr), rid, vcpu.id(), now);
            break;
          case RequestState::Approved:
            tr->asyncInstant(sim::SpanCat::Negotiation,
                             approvedName.get(*tr), rid, vcpu.id(), now,
                             req.info.attachment);
            break;
          case RequestState::Denied:
            tr->asyncInstant(sim::SpanCat::Negotiation,
                             deniedName.get(*tr), rid, vcpu.id(), now);
            break;
          case RequestState::TimedOut:
            tr->asyncInstant(sim::SpanCat::Negotiation,
                             timedOutName.get(*tr), rid, vcpu.id(),
                             now);
            break;
        }
        if (req.state != RequestState::Pending) {
            tr->asyncEnd(sim::SpanCat::Negotiation,
                         reqSpanName.get(*tr), rid, vcpu.id(), now,
                         wire.state);
        }
    }

    if (req.state != RequestState::Pending)
        requests.erase(req_it);
    return static_cast<std::uint64_t>(wire.state);
}

std::uint64_t
ElisaService::hcDetach(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    const auto aid = static_cast<AttachmentId>(args.arg0);
    auto it = attachments.find(aid);
    if (it == attachments.end()) {
        // Idempotent replay: detaching an attachment this same guest
        // already detached (duplicated hypercall, retry after a lost
        // reply) succeeds without side effects.
        auto retired = retiredAttachments.find(aid);
        if (retired != retiredAttachments.end() &&
            retired->second == vcpu.vm()) {
            hyper.stats().inc(idempotentDetachesId);
            return 0;
        }
        return hv::hcError;
    }
    if (it->second->guestVm() != vcpu.vm())
        return hv::hcError;
    vcpu.clock().advance(hyper.cost().negotiationHopNs);
    ELISA_TRACE(Elisa, "detach attachment %llu by VM %u",
                (unsigned long long)args.arg0, vcpu.vm());
    retireAttachment(it);
    hyper.stats().inc("elisa_detaches");
    return 0;
}

std::uint64_t
ElisaService::hcRevoke(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args)
{
    // Only the owning manager may revoke an export; every client's
    // attachment is torn down (their next VMFUNC faults).
    const auto eid = static_cast<ExportId>(args.arg0);
    auto it = exports.find(eid);
    if (it == exports.end()) {
        // Idempotent replay of a revoke this manager already issued.
        auto retired = retiredExports.find(eid);
        if (retired != retiredExports.end() &&
            retired->second == vcpu.vm()) {
            hyper.stats().inc(idempotentRevokesId);
            return 0;
        }
        return hv::hcError;
    }
    if (it->second->managerVm() != vcpu.vm())
        return hv::hcError;
    vcpu.clock().advance(hyper.cost().negotiationHopNs);
    const std::string name = it->second->name();
    ELISA_TRACE(Elisa, "revoke export %llu '%s' by VM %u",
                (unsigned long long)args.arg0, name.c_str(),
                vcpu.vm());
    return revokeExport(name) ? 0 : hv::hcError;
}

} // namespace elisa::core
