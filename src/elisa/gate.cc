#include "elisa/gate.hh"

#include "base/logging.hh"
#include "cpu/exit.hh"
#include "cpu/guest_view.hh"

namespace elisa::core
{

Gate::Gate(cpu::Vcpu &vcpu, ElisaService &service, const AttachInfo &info)
    : cpuPtr(&vcpu), svc(&service), attachInfo(info)
{
    callsId = vcpu.stats().id("elisa_calls");
    batchedFnsId = vcpu.stats().id("elisa_batched_fns");
    badFnId = vcpu.stats().id("elisa_bad_fn");
}

void
Gate::maybeInjectStale() const
{
    sim::FaultPlan *plan = svc->hypervisor().faultPlan();
    if (!plan)
        return;
    const sim::FaultDecision fault = plan->onGateCall(cpuPtr->vm());
    if (fault.action != sim::FaultAction::GateStale)
        return;
    // Model a concurrent revocation racing this call: the gate's
    // EPTP-list entry is already gone, so the entry VMFUNC faults
    // into a VM exit exactly like Vcpu::vmfunc on an invalid index.
    cpu::Vcpu &cpu = *cpuPtr;
    cpu.clock().advance(cpu.costModel().vmfuncNs);
    cpu.stats().inc(cpu.statIds().vmfunc);
    cpu.stats().inc(cpu.statIds().vmfuncFail);
    throw cpu::VmExitEvent(cpu::ExitReason::VmfuncFail,
                           attachInfo.gateIndex);
}

const SharedFnTable &
Gate::resolveTable() const
{
    Attachment *attach = svc->attachment(attachInfo.attachment);
    panic_if(attach == nullptr,
             "attachment vanished while its EPTP stayed installed");
    return attach->exportRecord().functions();
}

void
Gate::badFn(unsigned fn) const
{
    // An out-of-range id is a jump to an unmapped sub-context
    // address: raise the fetch fault the MMU would.
    ept::EptViolation violation;
    violation.gpa = gateCodeGpa + pageSize + fn * 16;
    violation.access = ept::Access::Exec;
    violation.notMapped = true;
    cpuPtr->stats().inc(badFnId);
    throw cpu::VmExitEvent(violation);
}

std::uint64_t
Gate::call(unsigned fn, std::uint64_t arg0, std::uint64_t arg1,
           std::uint64_t arg2)
{
    panic_if(!valid(), "call through an invalid gate");
    cpu::Vcpu &cpu = *cpuPtr;
    const sim::CostModel &cost = cpu.costModel();
    const EptpIndex caller_index = cpu.activeIndex();
    maybeInjectStale();

    // --- enter: default -> gate ------------------------------------
    cpu.vmfunc(0, attachInfo.gateIndex);

    // Gate prologue: the trampoline must be executable here, and the
    // spill area must live on the isolated stack. Non-charging view:
    // checks real, time folded into gateCodeNs.
    cpu::GuestView gate_view(cpu, /*charge_time=*/false);
    gate_view.fetchCheck(gateCodeGpa);
    const std::uint64_t spill[4] = {caller_index, arg0, arg1, arg2};
    gate_view.writeBytes(gateStackGpa, spill, sizeof(spill));
    cpu.clock().advance(cost.gateCodeNs);

    // --- gate -> sub --------------------------------------------------
    cpu.vmfunc(0, attachInfo.subIndex);

    const SharedFnTable &table = resolveTable();
    if (fn >= table.size())
        badFn(fn);

    // Run the shared function under the sub context with a charging
    // view: every byte it touches is translated, checked, and costed.
    // A fault inside the shared function unwinds through the gate; the
    // vCPU is parked back in its default context by the VM runner's
    // fault policy, so nothing needs restoring here.
    cpu::GuestView sub_view(cpu);
    SubCallCtx ctx{sub_view,
                   objectGpa,
                   attachInfo.objectBytes,
                   exchangeGpa,
                   attachInfo.exchangeBytes,
                   arg0,
                   arg1,
                   arg2};
    const std::uint64_t ret = table[fn](ctx);

    // --- sub -> gate ----------------------------------------------
    cpu.vmfunc(0, attachInfo.gateIndex);

    // Gate epilogue: reload the spill, verify trampoline still there.
    gate_view.fetchCheck(gateCodeGpa);
    std::uint64_t restore[4];
    gate_view.readBytes(gateStackGpa, restore, sizeof(restore));
    cpu.clock().advance(cost.gateCodeNs);

    // --- gate -> default ----------------------------------------------
    cpu.vmfunc(0, static_cast<EptpIndex>(restore[0]));
    cpu.stats().inc(callsId);
    return ret;
}

std::size_t
Gate::callBatch(std::span<BatchEntry> entries)
{
    panic_if(!valid(), "batched call through an invalid gate");
    if (entries.empty())
        return 0;
    cpu::Vcpu &cpu = *cpuPtr;
    const sim::CostModel &cost = cpu.costModel();
    const EptpIndex caller_index = cpu.activeIndex();
    maybeInjectStale();

    // One transition in...
    cpu.vmfunc(0, attachInfo.gateIndex);
    cpu::GuestView gate_view(cpu, /*charge_time=*/false);
    gate_view.fetchCheck(gateCodeGpa);
    const std::uint64_t spill[2] = {caller_index, entries.size()};
    gate_view.writeBytes(gateStackGpa, spill, sizeof(spill));
    cpu.clock().advance(cost.gateCodeNs);
    cpu.vmfunc(0, attachInfo.subIndex);

    const SharedFnTable &table = resolveTable();

    // ...every entry back-to-back under the sub context...
    cpu::GuestView sub_view(cpu);
    for (BatchEntry &entry : entries) {
        if (entry.fn >= table.size())
            badFn(entry.fn);
        SubCallCtx ctx{sub_view,
                       objectGpa,
                       attachInfo.objectBytes,
                       exchangeGpa,
                       attachInfo.exchangeBytes,
                       entry.arg0,
                       entry.arg1,
                       entry.arg2};
        entry.ret = table[entry.fn](ctx);
    }

    // ...one transition out.
    cpu.vmfunc(0, attachInfo.gateIndex);
    gate_view.fetchCheck(gateCodeGpa);
    std::uint64_t restore[2];
    gate_view.readBytes(gateStackGpa, restore, sizeof(restore));
    cpu.clock().advance(cost.gateCodeNs);
    cpu.vmfunc(0, static_cast<EptpIndex>(restore[0]));
    cpu.stats().inc(callsId);
    cpu.stats().inc(batchedFnsId, entries.size());
    return entries.size();
}

void
Gate::writeExchange(std::uint64_t offset, const void *src,
                    std::uint64_t len)
{
    panic_if(!valid(), "exchange write through an invalid gate");
    panic_if(offset + len > attachInfo.exchangeBytes,
             "exchange write out of bounds");
    cpu::GuestView view(*cpuPtr);
    view.writeBytes(attachInfo.exchangeGuestGpa + offset, src, len);
}

void
Gate::readExchange(std::uint64_t offset, void *dst, std::uint64_t len)
{
    panic_if(!valid(), "exchange read through an invalid gate");
    panic_if(offset + len > attachInfo.exchangeBytes,
             "exchange read out of bounds");
    cpu::GuestView view(*cpuPtr);
    view.readBytes(attachInfo.exchangeGuestGpa + offset, dst, len);
}

} // namespace elisa::core
