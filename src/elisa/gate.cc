#include "elisa/gate.hh"

#include "base/logging.hh"
#include "cpu/exit.hh"
#include "cpu/guest_view.hh"
#include "hv/hypercall.hh"

namespace elisa::core
{

namespace
{

// Trace-point names for the gate path; interned lazily because gates
// usually exist before any tracer is installed.
sim::TraceNameCache gateCallName("gate_call");
sim::TraceNameCache gateBatchName("gate_batch");
sim::TraceNameCache eptpSwitchName("eptp_switch");
sim::TraceNameCache stackSwapName("stack_swap");
sim::TraceNameCache payloadName("payload");
sim::TraceNameCache returnPhaseName("return");

/**
 * Span for the traced gate body; the untraced instantiation uses the
 * primary template, an empty no-op, so it compiles to exactly the
 * uninstrumented code (no cleanup landing pads, no member spills).
 */
template <bool Traced>
struct GateSpan
{
    GateSpan(sim::Tracer *, sim::TraceNameCache &, std::uint32_t,
             const sim::SimClock &, std::uint64_t = 0,
             std::uint64_t = 0)
    {}

    void setEndArgs(std::uint64_t, std::uint64_t = 0) {}
};

template <>
struct GateSpan<true> : sim::ScopedSpan
{
    GateSpan(sim::Tracer *tr, sim::TraceNameCache &name,
             std::uint32_t track, const sim::SimClock &clock,
             std::uint64_t a0 = 0, std::uint64_t a1 = 0)
        : sim::ScopedSpan(tr, sim::SpanCat::Gate, name.get(*tr), track,
                          clock, a0, a1)
    {}
};

} // anonymous namespace

const char *
gateLegToString(GateLeg leg)
{
    switch (leg) {
      case GateLeg::EnterSwitch:
        return "enter_switch";
      case GateLeg::Prologue:
        return "prologue";
      case GateLeg::SubSwitch:
        return "sub_switch";
      case GateLeg::ReturnSwitch:
        return "return_switch";
      case GateLeg::Epilogue:
        return "epilogue";
      case GateLeg::ExitSwitch:
        return "exit_switch";
    }
    return "?";
}

void
registerGateLegNames(sim::ExitLedger &ledger)
{
    for (unsigned l = 0; l < gateLegCount; ++l) {
        ledger.setCodeName(sim::CostKind::GateLeg, l,
                           gateLegToString(static_cast<GateLeg>(l)));
    }
}

void
Gate::resolveLegSlots(sim::ExitLedger &ledger)
{
    if (ledgerSerial == ledger.serial())
        return;
    registerGateLegNames(ledger);
    for (unsigned l = 0; l < gateLegCount; ++l) {
        legSlots[l] = ledger.slot(ownerVm, cpuPtr->id(),
                                  sim::CostKind::GateLeg, l);
    }
    ledgerSerial = ledger.serial();
}

Gate::Gate(cpu::Vcpu &vcpu, ElisaService &service, const AttachInfo &info)
    : cpuPtr(&vcpu), svc(&service), attachInfo(info), ownerVm(vcpu.vm())
{
    callsId = vcpu.stats().id("elisa_calls");
    batchedFnsId = vcpu.stats().id("elisa_batched_fns");
    badFnId = vcpu.stats().id("elisa_bad_fn");
}

Gate::Gate(Gate &&other) noexcept
    : cpuPtr(other.cpuPtr), svc(other.svc), attachInfo(other.attachInfo),
      ownerVm(other.ownerVm), callsId(other.callsId),
      batchedFnsId(other.batchedFnsId), badFnId(other.badFnId),
      ledgerSerial(other.ledgerSerial)
{
    for (unsigned l = 0; l < gateLegCount; ++l)
        legSlots[l] = other.legSlots[l];
    other.cpuPtr = nullptr;
    other.svc = nullptr;
}

Gate &
Gate::operator=(Gate &&other) noexcept
{
    if (this != &other) {
        try {
            detach();
        } catch (...) {
            // Same contract as the destructor: the replaced handle is
            // gone either way and host-side teardown is idempotent.
        }
        cpuPtr = other.cpuPtr;
        svc = other.svc;
        attachInfo = other.attachInfo;
        ownerVm = other.ownerVm;
        callsId = other.callsId;
        batchedFnsId = other.batchedFnsId;
        badFnId = other.badFnId;
        ledgerSerial = other.ledgerSerial;
        for (unsigned l = 0; l < gateLegCount; ++l)
            legSlots[l] = other.legSlots[l];
        other.cpuPtr = nullptr;
        other.svc = nullptr;
    }
    return *this;
}

Gate::~Gate()
{
    try {
        detach();
    } catch (...) {
        // An injected fault (VM exit) raised by the detach hypercall
        // cannot propagate out of a destructor; the attachment is
        // retired host-side regardless.
    }
}

bool
Gate::detach()
{
    if (!valid())
        return false;
    // Invalidate first: whatever the hypercall below does (including
    // unwinding with a VM exit), this handle must never retry through
    // a vCPU that may be mid-teardown.
    cpu::Vcpu *cpu = cpuPtr;
    ElisaService *service = svc;
    const AttachmentId aid = attachInfo.attachment;
    cpuPtr = nullptr;
    svc = nullptr;
    // The vCPU is owned by the guest VM; when that VM already died
    // (injected KillVm, teardown order) the hypervisor's destroy hook
    // retired the attachment and there is no vCPU to hypercall from.
    if (!service->hypervisor().hasVm(ownerVm))
        return false;
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Detach);
    args.arg0 = aid;
    return cpu->vmcall(args) != hv::hcError;
}

void
Gate::maybeInjectStale() const
{
    sim::FaultPlan *plan = svc->hypervisor().faultPlan();
    if (!plan)
        return;
    const sim::FaultDecision fault = plan->onGateCall(cpuPtr->vm());
    if (fault.action != sim::FaultAction::GateStale)
        return;
    // Model a concurrent revocation racing this call: the gate's
    // EPTP-list entry is already gone, so the entry VMFUNC faults
    // into a VM exit exactly like Vcpu::vmfunc on an invalid index.
    cpu::Vcpu &cpu = *cpuPtr;
    cpu.clock().advance(cpu.costModel().vmfuncNs);
    cpu.stats().inc(cpu.statIds().vmfunc);
    cpu.stats().inc(cpu.statIds().vmfuncFail);
    throw cpu::VmExitEvent(cpu::ExitReason::VmfuncFail,
                           attachInfo.gateIndex);
}

void
Gate::maybeExpire()
{
    if (attachInfo.expiresNs == 0)
        return;
    cpu::Vcpu &cpu = *cpuPtr;
    if (cpu.clock().now() < attachInfo.expiresNs)
        return;
    // The grant lapsed. Host-side teardown first (the one canonical
    // routine: EPTP-list entries cleared and TLBs flushed before the
    // bookkeeping goes), then this handle dies and the entry VMFUNC
    // faults on the now-cleared index — the same exit a concurrent
    // revocation would produce.
    const EptpIndex gate_index = attachInfo.gateIndex;
    svc->expireCapability(attachInfo.capability, cpu);
    cpuPtr = nullptr;
    svc = nullptr;
    cpu.clock().advance(cpu.costModel().vmfuncNs);
    cpu.stats().inc(cpu.statIds().vmfunc);
    cpu.stats().inc(cpu.statIds().vmfuncFail);
    throw cpu::VmExitEvent(cpu::ExitReason::VmfuncFail, gate_index);
}

const SharedFnTable &
Gate::resolveTable() const
{
    Attachment *attach = svc->attachment(attachInfo.attachment);
    panic_if(attach == nullptr,
             "attachment vanished while its EPTP stayed installed");
    return attach->exportRecord().functions();
}

void
Gate::badFn(unsigned fn) const
{
    // An out-of-range id is a jump to an unmapped sub-context
    // address: raise the fetch fault the MMU would.
    ept::EptViolation violation;
    violation.gpa = gateCodeGpa + pageSize + fn * 16;
    violation.access = ept::Access::Exec;
    violation.notMapped = true;
    cpuPtr->stats().inc(badFnId);
    throw cpu::VmExitEvent(violation);
}

std::uint64_t
Gate::call(unsigned fn, std::uint64_t arg0, std::uint64_t arg1,
           std::uint64_t arg2)
{
    panic_if(!valid(), "call through an invalid gate");
    maybeExpire();
    // The whole instrumentation decision is these two branches (see
    // callImpl): the plain instantiation is the uninstrumented code.
    const bool ledgered = cpuPtr->ledger() != nullptr;
    if (cpuPtr->tracer()) {
        return ledgered ? callImpl<true, true>(fn, arg0, arg1, arg2)
                        : callImpl<true, false>(fn, arg0, arg1, arg2);
    }
    return ledgered ? callImpl<false, true>(fn, arg0, arg1, arg2)
                    : callImpl<false, false>(fn, arg0, arg1, arg2);
}

template <bool Traced, bool Ledgered>
std::uint64_t
Gate::callImpl(unsigned fn, std::uint64_t arg0, std::uint64_t arg1,
               std::uint64_t arg2)
{
    cpu::Vcpu &cpu = *cpuPtr;
    const sim::CostModel &cost = cpu.costModel();
    const EptpIndex caller_index = cpu.activeIndex();
    sim::Tracer *tr = Traced ? cpu.tracer() : nullptr;
    const std::uint32_t track = cpu.id();

    // Ledgered instantiation: per-leg simulated-clock deltas, charged
    // only on leg completion so a faulting leg is attributed to the
    // exit (by the VM runner), never double-counted here.
    sim::ExitLedger *led = nullptr;
    SimNs leg_start = 0;
    if constexpr (Ledgered) {
        led = cpu.ledger();
        resolveLegSlots(*led);
    }
    auto charge_leg = [&](GateLeg leg) {
        const SimNs now = cpu.clock().now();
        led->observe(legSlots[static_cast<unsigned>(leg)],
                     now - leg_start);
        leg_start = now;
    };

    // Whole-call span: opened before the stale-EPTP injection point so
    // a faulted entry is attributed to this call; the RAII end closes
    // it on every unwind path. A successful call stamps (ret, fn+1) on
    // the close; a faulted one leaves (0, 0).
    GateSpan<Traced> call_span(tr, gateCallName, track, cpu.clock(), fn);
    maybeInjectStale();

    if constexpr (Ledgered)
        leg_start = cpu.clock().now();

    // --- enter: default -> gate ------------------------------------
    {
        GateSpan<Traced> s(tr, eptpSwitchName, track, cpu.clock(),
                           attachInfo.gateIndex);
        cpu.vmfunc(0, attachInfo.gateIndex);
    }
    if constexpr (Ledgered)
        charge_leg(GateLeg::EnterSwitch);

    // Gate prologue: the trampoline must be executable here, and the
    // spill area must live on the isolated stack. Non-charging view:
    // checks real, time folded into gateCodeNs.
    cpu::GuestView gate_view(cpu, /*charge_time=*/false);
    {
        GateSpan<Traced> s(tr, stackSwapName, track, cpu.clock());
        gate_view.fetchCheck(gateCodeGpa);
        const std::uint64_t spill[4] = {caller_index, arg0, arg1, arg2};
        gate_view.writeBytes(gateStackGpa, spill, sizeof(spill));
        cpu.clock().advance(cost.gateCodeNs);
    }
    if constexpr (Ledgered)
        charge_leg(GateLeg::Prologue);

    // --- gate -> sub --------------------------------------------------
    {
        GateSpan<Traced> s(tr, eptpSwitchName, track, cpu.clock(),
                           attachInfo.subIndex);
        cpu.vmfunc(0, attachInfo.subIndex);
    }
    if constexpr (Ledgered)
        charge_leg(GateLeg::SubSwitch);

    const SharedFnTable &table = resolveTable();
    if (fn >= table.size())
        badFn(fn);

    // Run the shared function under the sub context with a charging
    // view: every byte it touches is translated, checked, and costed.
    // A fault inside the shared function unwinds through the gate; the
    // vCPU is parked back in its default context by the VM runner's
    // fault policy, so nothing needs restoring here.
    cpu::GuestView sub_view(cpu);
    SubCallCtx ctx{sub_view,
                   objectGpa,
                   attachInfo.objectBytes,
                   exchangeGpa,
                   attachInfo.exchangeBytes,
                   arg0,
                   arg1,
                   arg2};
    std::uint64_t ret;
    {
        GateSpan<Traced> s(tr, payloadName, track, cpu.clock(), fn);
        ret = table[fn](ctx);
    }

    // Payload time belongs to the shared function, not the mechanism:
    // restart the leg clock at the return phase.
    if constexpr (Ledgered)
        leg_start = cpu.clock().now();

    {
        GateSpan<Traced> s(tr, returnPhaseName, track, cpu.clock());
        // --- sub -> gate ------------------------------------------
        {
            GateSpan<Traced> sw(tr, eptpSwitchName, track, cpu.clock(),
                                attachInfo.gateIndex);
            cpu.vmfunc(0, attachInfo.gateIndex);
        }
        if constexpr (Ledgered)
            charge_leg(GateLeg::ReturnSwitch);

        // Gate epilogue: reload the spill, verify trampoline still
        // there.
        gate_view.fetchCheck(gateCodeGpa);
        std::uint64_t restore[4];
        gate_view.readBytes(gateStackGpa, restore, sizeof(restore));
        cpu.clock().advance(cost.gateCodeNs);
        if constexpr (Ledgered)
            charge_leg(GateLeg::Epilogue);

        // --- gate -> default --------------------------------------
        GateSpan<Traced> sw(tr, eptpSwitchName, track, cpu.clock(),
                            restore[0]);
        cpu.vmfunc(0, static_cast<EptpIndex>(restore[0]));
        if constexpr (Ledgered)
            charge_leg(GateLeg::ExitSwitch);
    }
    cpu.stats().inc(callsId);
    call_span.setEndArgs(ret, fn + 1);
    return ret;
}

std::size_t
Gate::callBatch(std::span<BatchEntry> entries)
{
    panic_if(!valid(), "batched call through an invalid gate");
    maybeExpire();
    if (entries.empty())
        return 0;
    // Same single-branch instrumentation decisions as call().
    const bool ledgered = cpuPtr->ledger() != nullptr;
    if (cpuPtr->tracer()) {
        return ledgered ? callBatchImpl<true, true>(entries)
                        : callBatchImpl<true, false>(entries);
    }
    return ledgered ? callBatchImpl<false, true>(entries)
                    : callBatchImpl<false, false>(entries);
}

template <bool Traced, bool Ledgered>
std::size_t
Gate::callBatchImpl(std::span<BatchEntry> entries)
{
    cpu::Vcpu &cpu = *cpuPtr;
    const sim::CostModel &cost = cpu.costModel();
    const EptpIndex caller_index = cpu.activeIndex();
    sim::Tracer *tr = Traced ? cpu.tracer() : nullptr;
    const std::uint32_t track = cpu.id();

    sim::ExitLedger *led = nullptr;
    SimNs leg_start = 0;
    if constexpr (Ledgered) {
        led = cpu.ledger();
        resolveLegSlots(*led);
    }
    auto charge_leg = [&](GateLeg leg) {
        const SimNs now = cpu.clock().now();
        led->observe(legSlots[static_cast<unsigned>(leg)],
                     now - leg_start);
        leg_start = now;
    };

    GateSpan<Traced> call_span(tr, gateBatchName, track, cpu.clock(),
                               entries.size());
    maybeInjectStale();

    if constexpr (Ledgered)
        leg_start = cpu.clock().now();

    // One transition in...
    {
        GateSpan<Traced> s(tr, stackSwapName, track, cpu.clock());
        cpu.vmfunc(0, attachInfo.gateIndex);
        if constexpr (Ledgered)
            charge_leg(GateLeg::EnterSwitch);
        cpu::GuestView gate_view(cpu, /*charge_time=*/false);
        gate_view.fetchCheck(gateCodeGpa);
        const std::uint64_t spill[2] = {caller_index, entries.size()};
        gate_view.writeBytes(gateStackGpa, spill, sizeof(spill));
        cpu.clock().advance(cost.gateCodeNs);
        if constexpr (Ledgered)
            charge_leg(GateLeg::Prologue);
        cpu.vmfunc(0, attachInfo.subIndex);
        if constexpr (Ledgered)
            charge_leg(GateLeg::SubSwitch);
    }

    const SharedFnTable &table = resolveTable();

    // ...every entry back-to-back under the sub context...
    cpu::GuestView sub_view(cpu);
    {
        GateSpan<Traced> s(tr, payloadName, track, cpu.clock(),
                           entries.size());
        for (BatchEntry &entry : entries) {
            if (entry.fn >= table.size())
                badFn(entry.fn);
            SubCallCtx ctx{sub_view,
                           objectGpa,
                           attachInfo.objectBytes,
                           exchangeGpa,
                           attachInfo.exchangeBytes,
                           entry.arg0,
                           entry.arg1,
                           entry.arg2};
            entry.ret = table[entry.fn](ctx);
        }
    }

    // ...one transition out.
    if constexpr (Ledgered)
        leg_start = cpu.clock().now();
    {
        GateSpan<Traced> s(tr, returnPhaseName, track, cpu.clock());
        cpu.vmfunc(0, attachInfo.gateIndex);
        if constexpr (Ledgered)
            charge_leg(GateLeg::ReturnSwitch);
        cpu::GuestView gate_view(cpu, /*charge_time=*/false);
        gate_view.fetchCheck(gateCodeGpa);
        std::uint64_t restore[2];
        gate_view.readBytes(gateStackGpa, restore, sizeof(restore));
        cpu.clock().advance(cost.gateCodeNs);
        if constexpr (Ledgered)
            charge_leg(GateLeg::Epilogue);
        cpu.vmfunc(0, static_cast<EptpIndex>(restore[0]));
        if constexpr (Ledgered)
            charge_leg(GateLeg::ExitSwitch);
    }
    cpu.stats().inc(callsId);
    cpu.stats().inc(batchedFnsId, entries.size());
    call_span.setEndArgs(entries.size(), 1);
    return entries.size();
}

void
Gate::writeExchange(std::uint64_t offset, const void *src,
                    std::uint64_t len)
{
    panic_if(!valid(), "exchange write through an invalid gate");
    panic_if(offset + len > attachInfo.exchangeBytes,
             "exchange write out of bounds");
    cpu::GuestView view(*cpuPtr);
    view.writeBytes(attachInfo.exchangeGuestGpa + offset, src, len);
}

void
Gate::readExchange(std::uint64_t offset, void *dst, std::uint64_t len)
{
    panic_if(!valid(), "exchange read through an invalid gate");
    panic_if(offset + len > attachInfo.exchangeBytes,
             "exchange read out of bounds");
    cpu::GuestView view(*cpuPtr);
    view.readBytes(attachInfo.exchangeGuestGpa + offset, dst, len);
}

} // namespace elisa::core
