/**
 * @file
 * The ELISA gate: the exit-less data path.
 *
 * Gate::call() is the whole point of the paper. One call performs:
 *
 *   VMFUNC(default -> gate)      42 ns   no VM exit
 *   gate prologue                14 ns   isolated-stack switch, spill
 *   VMFUNC(gate -> sub)          42 ns
 *   shared function runs               under the sub EPT context
 *   VMFUNC(sub -> gate)          42 ns
 *   gate epilogue                14 ns   restore
 *   VMFUNC(gate -> default)      42 ns
 *                               ------
 *   round trip                  196 ns   (vs 699 ns for a VMCALL)
 *
 * The trampoline's functional work (fetch check on the shared gate
 * code page, spill/restore on the isolated stack) is performed with a
 * non-charging GuestView: the checks are real, the time is the
 * calibrated gateCodeNs lump.
 */

#ifndef ELISA_ELISA_GATE_HH
#define ELISA_ELISA_GATE_HH

#include <cstdint>
#include <span>

#include "elisa/abi.hh"
#include "elisa/negotiation.hh"
#include "sim/exit_ledger.hh"
#include "sim/stats.hh"

namespace elisa::core
{

/**
 * The six overhead legs of one gate round trip (ExitLedger code values
 * under sim::CostKind::GateLeg). The payload itself is deliberately
 * not a leg: the ledger attributes *mechanism* cost, and the sum of
 * the six legs is exactly the paper's 196 ns round-trip overhead
 * (4 x vmfuncNs + 2 x gateCodeNs).
 */
enum class GateLeg : std::uint8_t
{
    EnterSwitch,  ///< VMFUNC default -> gate
    Prologue,     ///< trampoline fetch check + spill (gateCodeNs)
    SubSwitch,    ///< VMFUNC gate -> sub
    ReturnSwitch, ///< VMFUNC sub -> gate
    Epilogue,     ///< fetch check + restore (gateCodeNs)
    ExitSwitch,   ///< VMFUNC gate -> default
};

/** Number of GateLeg values (slot tables). */
inline constexpr unsigned gateLegCount = 6;

/** Render a gate leg. */
const char *gateLegToString(GateLeg leg);

/**
 * Register the GateLeg display names with @p ledger (idempotent).
 * Gates do this on their first ledgered call; tools building reports
 * from a bare ledger call it directly.
 */
void registerGateLegNames(sim::ExitLedger &ledger);

/**
 * Guest-side handle on one attachment.
 *
 * Move-only RAII: exactly one handle owns an attachment, and dropping
 * the handle detaches it (the slow-path Detach hypercall), so an
 * attachment can no longer leak or be torn down twice through two
 * copies. Detach is idempotent — explicit detach() first, destruction
 * after, and replayed hypercalls are all safe — and tolerant of the
 * manager VM having already died (PR 2's auto-revoke retired the
 * attachment; the host acknowledges the replay). A Gate must not
 * outlive the ElisaService that minted it.
 */
class Gate
{
  public:
    /** Invalid gate. */
    Gate() = default;

    /**
     * @param vcpu the attached vCPU.
     * @param service the host-side registry (function dispatch).
     * @param info the negotiated attachment descriptor.
     */
    Gate(cpu::Vcpu &vcpu, ElisaService &service, const AttachInfo &info);

    Gate(const Gate &) = delete;
    Gate &operator=(const Gate &) = delete;

    /** Moved-from gates are invalid and destruct as no-ops. */
    Gate(Gate &&other) noexcept;

    /** Detaches the currently held attachment (if any) first. */
    Gate &operator=(Gate &&other) noexcept;

    /** Auto-detach; exceptions from the hypercall are swallowed. */
    ~Gate();

    /**
     * Slow-path detach; the handle becomes invalid either way.
     * Idempotent: repeated calls (and the destructor afterwards) are
     * no-ops. When the guest VM is already gone the hypercall is
     * skipped — the hypervisor's destroy hook retired the attachment.
     * Unlike the destructor, an explicit detach() lets injected-fault
     * exceptions (VM exits) propagate to the caller.
     * @return true when the host acknowledged the detach.
     */
    bool detach();

    /** True when this handle refers to a live attachment. */
    bool valid() const { return cpuPtr != nullptr; }

    /** The negotiated descriptor. */
    const AttachInfo &info() const { return attachInfo; }

    /**
     * The exit-less call: switch default->gate->sub, run function
     * @p fn of the export's table with the given register arguments,
     * switch back. Throws cpu::VmExitEvent if the attachment was
     * revoked (stale EPTP-list index) or the function id is out of
     * range (jump to an unmapped sub-context address) — exactly the
     * faults the hardware would deliver.
     */
    std::uint64_t call(unsigned fn, std::uint64_t arg0 = 0,
                       std::uint64_t arg1 = 0, std::uint64_t arg2 = 0);

    /** One invocation within a batched gate call. */
    struct BatchEntry
    {
        unsigned fn = 0;
        std::uint64_t arg0 = 0;
        std::uint64_t arg1 = 0;
        std::uint64_t arg2 = 0;
        std::uint64_t ret = 0; ///< filled in by callBatch
    };

    /**
     * Batched exit-less call: ONE context round trip (the same
     * 4-VMFUNC/2-segment transition as call()) amortized over every
     * entry; the shared functions run back-to-back inside the sub
     * context and their results are written into the entries.
     * Faults behave like call(): the whole batch unwinds.
     * @return number of entries executed (== entries.size()).
     */
    std::size_t callBatch(std::span<BatchEntry> entries);

    /**
     * Copy bulk data into the exchange buffer through the *default*
     * context mapping (what a guest does before a call).
     */
    void writeExchange(std::uint64_t offset, const void *src,
                       std::uint64_t len);

    /** Copy bulk data out of the exchange buffer (after a call). */
    void readExchange(std::uint64_t offset, void *dst,
                      std::uint64_t len);

  private:
    /**
     * The call() body, instantiated per (traced, ledgered) decision.
     * Both decisions are single branches in call(): the plain
     * instantiation contains no span objects and no clock reads at
     * all, because even an inert ScopedSpan needs exception-cleanup
     * landing pads whose member spills cost several ns on the 196 ns
     * gate call — and the ledger's per-leg clock deltas would cost
     * the same again.
     */
    template <bool Traced, bool Ledgered>
    std::uint64_t callImpl(unsigned fn, std::uint64_t arg0,
                           std::uint64_t arg1, std::uint64_t arg2);

    /** The callBatch() body; same single-branch scheme as callImpl. */
    template <bool Traced, bool Ledgered>
    std::size_t callBatchImpl(std::span<BatchEntry> entries);

    /**
     * Resolve (once per ledger instance, serial-guarded) this gate's
     * six GateLeg slots and register the leg display names.
     */
    [[gnu::noinline]] void resolveLegSlots(sim::ExitLedger &ledger);

    /**
     * Resolve the shared-function table, faulting like the MMU would
     * on an out-of-range function id (a jump to an unmapped
     * sub-context address). Shared by call() and callBatch().
     */
    const SharedFnTable &resolveTable() const;

    /** Raise the fetch fault for an out-of-range function id. */
    [[noreturn]] void badFn(unsigned fn) const;

    /**
     * Consult the machine's FaultPlan (if any) before entering the
     * gate; a GateStale decision raises the stale-EPTP VMFUNC fault a
     * concurrent revocation would cause.
     */
    void maybeInjectStale() const;

    /**
     * Lazy grant expiry: when the attachment's grant carries a lapse
     * instant and the vCPU clock has reached it, tear the grant down
     * host-side (EPTP-list entries cleared, TLBs flushed) and raise
     * the stale-EPTP fault this entry VMFUNC now hits. One load and
     * one compare on gates whose grant never expires, so a delegated
     * gate costs exactly what a direct one does.
     */
    void maybeExpire();

    cpu::Vcpu *cpuPtr = nullptr;
    ElisaService *svc = nullptr;
    AttachInfo attachInfo;
    /** Guest VM owning cpuPtr; checked before detaching, so a handle
     *  outliving its (fault-killed) VM never touches a dead vCPU. */
    VmId ownerVm = invalidVmId;
    // Hot-path counters, interned once at construction (per-call code
    // must not do string lookups).
    sim::StatId callsId = 0;
    sim::StatId batchedFnsId = 0;
    sim::StatId badFnId = 0;
    // Ledger leg slots, resolved once per ledger instance
    // (serial-guarded, like TraceNameCache).
    std::uint64_t ledgerSerial = 0;
    sim::LedgerSlot legSlots[gateLegCount] = {};
};

} // namespace elisa::core

#endif // ELISA_ELISA_GATE_HH
