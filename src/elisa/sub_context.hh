/**
 * @file
 * Host-side building blocks of ELISA: exports and attachments.
 *
 * An Export is the manager's record of one shared object: the object's
 * host frames (carved out of the manager VM's RAM), its permissions,
 * the function table ("the code"), and a gate trampoline page.
 *
 * An Attachment materializes the two EPT contexts a guest vCPU needs to
 * reach the object:
 *   - the gate context (trampoline + isolated stack + exchange buffer);
 *   - the sub context (same, plus the object window).
 * Both contexts are per-attachment, so two clients of the same export
 * share *only* the object frames — never stacks or exchange buffers.
 */

#ifndef ELISA_ELISA_SUB_CONTEXT_HH
#define ELISA_ELISA_SUB_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/types.hh"
#include "elisa/abi.hh"
#include "ept/ept.hh"
#include "hv/hypervisor.hh"

namespace elisa::core
{

/**
 * Host-side record of one exported shared object.
 */
class Export
{
  public:
    /**
     * @param hv the machine.
     * @param id export id.
     * @param name lookup key for attach requests.
     * @param manager_vm id of the owning manager VM.
     * @param object_hpa host-physical base of the object (backed by
     *        the manager's RAM; the manager keeps direct access).
     * @param object_bytes object size (page multiple).
     * @param perms permissions clients get on the object window.
     * @param fns the function table.
     */
    Export(hv::Hypervisor &hv, ExportId id, std::string name,
           VmId manager_vm, Hpa object_hpa, std::uint64_t object_bytes,
           ept::Perms perms, SharedFnTable fns);

    ~Export();

    Export(const Export &) = delete;
    Export &operator=(const Export &) = delete;

    ExportId id() const { return exportId; }
    const std::string &name() const { return exportName; }
    VmId managerVm() const { return manager; }
    Hpa objectHpa() const { return objHpa; }
    std::uint64_t objectBytes() const { return objBytes; }
    ept::Perms objectPerms() const { return objPerms; }
    Hpa gateCodeHpa() const { return gateCode; }

    /** The function table (called by Gate::call under the sub EPT). */
    const SharedFnTable &functions() const { return fnTable; }

    /** Attachment accounting (used by revoke checks). */
    unsigned liveAttachments() const { return attachRefs; }
    void addAttachment() { ++attachRefs; }
    void dropAttachment();

  private:
    hv::Hypervisor &hyper;
    ExportId exportId;
    std::string exportName;
    VmId manager;
    Hpa objHpa;
    std::uint64_t objBytes;
    ept::Perms objPerms;
    SharedFnTable fnTable;
    /** One trampoline page per export, mapped X into every client. */
    Hpa gateCode = 0;
    unsigned attachRefs = 0;
};

/**
 * One guest vCPU's live connection to an Export.
 */
class Attachment
{
  public:
    /**
     * Build the gate and sub contexts, allocate the stack and exchange
     * buffer, install both EPTPs into the guest vCPU's list, and map
     * the exchange buffer into the guest's default context.
     *
     * @param hv the machine.
     * @param id attachment id.
     * @param exp the export being attached (must outlive this).
     * @param guest_vm the attaching VM.
     * @param vcpu_index vCPU within @p guest_vm.
     * @param slot per-VM attachment ordinal (picks the guest-side
     *        exchange window GPA).
     * @param granted permissions of this client's object window; must
     *        not exceed the export's permissions (the negotiation
     *        validates this before construction).
     * @param window_offset byte offset of the object window into the
     *        export (page aligned; 0 for a full manager-approved
     *        attach).
     * @param window_bytes window size (0 = the rest of the object).
     *        A delegated grant narrows the window: only these frames
     *        of the object are mapped into the sub context.
     */
    Attachment(hv::Hypervisor &hv, AttachmentId id, Export &exp,
               hv::Vm &guest_vm, unsigned vcpu_index, unsigned slot,
               ept::Perms granted, std::uint64_t window_offset = 0,
               std::uint64_t window_bytes = 0);

    /** Permissions this client's object window was granted. */
    ept::Perms grantedPerms() const { return granted; }

    /** Uninstalls EPTPs (flushing the TLB) and frees every frame. */
    ~Attachment();

    Attachment(const Attachment &) = delete;
    Attachment &operator=(const Attachment &) = delete;

    AttachmentId id() const { return attachId; }
    Export &exportRecord() { return exp; }
    VmId guestVm() const { return guestVmId; }
    unsigned vcpuIndex() const { return vcpu; }

    /** The descriptor returned to the guest by the negotiation. */
    const AttachInfo &info() const { return attachInfo; }

    /**
     * Record the grant this attachment redeems (set by the service
     * right after minting the grant; the descriptor carries it to the
     * guest so gates can evaluate expiry lazily).
     */
    void
    bindGrant(CapId capability, SimNs expires_ns)
    {
        attachInfo.capability = capability;
        attachInfo.expiresNs = expires_ns;
    }

    /** The grant this attachment redeems. */
    CapId grant() const { return attachInfo.capability; }

    /** The two private contexts (tests inspect their mappings). */
    ept::Ept &gateEpt() { return *gateContext; }
    ept::Ept &subEpt() { return *subContext; }

  private:
    hv::Hypervisor &hyper;
    AttachmentId attachId;
    Export &exp;
    VmId guestVmId;
    unsigned vcpu;
    Hpa stackHpa = 0;
    std::uint64_t stackBytes = defaultStackBytes;
    Hpa exchHpa = 0;
    std::uint64_t exchBytes = defaultExchangeBytes;
    ept::Perms granted;
    std::unique_ptr<ept::Ept> gateContext;
    std::unique_ptr<ept::Ept> subContext;
    AttachInfo attachInfo;
};

} // namespace elisa::core

#endif // ELISA_ELISA_SUB_CONTEXT_HH
