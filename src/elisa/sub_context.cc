#include "elisa/sub_context.hh"

#include "base/logging.hh"

namespace elisa::core
{

Export::Export(hv::Hypervisor &hv, ExportId id, std::string name,
               VmId manager_vm, Hpa object_hpa, std::uint64_t object_bytes,
               ept::Perms perms, SharedFnTable fns)
    : hyper(hv), exportId(id), exportName(std::move(name)),
      manager(manager_vm), objHpa(object_hpa), objBytes(object_bytes),
      objPerms(perms), fnTable(std::move(fns))
{
    fatal_if(!isPageAligned(objBytes) || objBytes == 0,
             "export '%s': object size must be a page multiple",
             exportName.c_str());
    fatal_if(fnTable.empty(), "export '%s': empty function table",
             exportName.c_str());

    auto code = hv.allocator().alloc();
    fatal_if(!code, "out of memory for gate code page");
    gateCode = *code;
    hv.memory().zero(gateCode, pageSize);
    // Stamp a recognizable trampoline signature so tests can verify
    // which page the fetch check hits.
    const std::uint64_t signature = 0x454c49534147ull; // "GATESILE"
    hv.memory().write64(gateCode, signature);
}

Export::~Export()
{
    panic_if(attachRefs != 0,
             "export '%s' destroyed with %u live attachments",
             exportName.c_str(), attachRefs);
    hyper.allocator().free(gateCode);
}

void
Export::dropAttachment()
{
    panic_if(attachRefs == 0, "attachment underflow on export '%s'",
             exportName.c_str());
    --attachRefs;
}

Attachment::Attachment(hv::Hypervisor &hv, AttachmentId id, Export &exp_,
                       hv::Vm &guest_vm, unsigned vcpu_index,
                       unsigned slot, ept::Perms granted_perms,
                       std::uint64_t window_offset,
                       std::uint64_t window_bytes)
    : hyper(hv), attachId(id), exp(exp_), guestVmId(guest_vm.id()),
      vcpu(vcpu_index), granted(granted_perms)
{
    panic_if(!ept::permits(exp.objectPerms(), granted),
             "granted permissions exceed the export's");
    if (window_bytes == 0)
        window_bytes = exp.objectBytes() - window_offset;
    panic_if(!isPageAligned(window_offset) ||
                 !isPageAligned(window_bytes) || window_bytes == 0 ||
                 window_offset + window_bytes > exp.objectBytes(),
             "attachment window outside export '%s'",
             exp.name().c_str());
    auto &allocator = hv.allocator();

    auto stack = allocator.alloc(stackBytes / pageSize);
    fatal_if(!stack, "out of memory for gate stack");
    stackHpa = *stack;
    hv.memory().zero(stackHpa, stackBytes);

    auto exch = allocator.alloc(exchBytes / pageSize);
    fatal_if(!exch, "out of memory for exchange buffer");
    exchHpa = *exch;
    hv.memory().zero(exchHpa, exchBytes);

    // Gate context: trampoline (X), stack (RW), exchange (RW).
    gateContext = std::make_unique<ept::Ept>(hv.memory(), allocator);
    bool ok = gateContext->map(gateCodeGpa, exp.gateCodeHpa(),
                               ept::Perms::Exec);
    ok = ok && gateContext->mapRange(gateStackGpa, stackHpa, stackBytes,
                                     ept::Perms::RW);
    ok = ok && gateContext->mapRange(exchangeGpa, exchHpa, exchBytes,
                                     ept::Perms::RW);
    panic_if(!ok, "gate context construction collided");

    // Sub context: everything the gate has, plus the object window.
    subContext = std::make_unique<ept::Ept>(hv.memory(), allocator);
    ok = subContext->map(gateCodeGpa, exp.gateCodeHpa(),
                         ept::Perms::Exec);
    ok = ok && subContext->mapRange(gateStackGpa, stackHpa, stackBytes,
                                    ept::Perms::RW);
    ok = ok && subContext->mapRange(exchangeGpa, exchHpa, exchBytes,
                                    ept::Perms::RW);
    // The object window uses 2 MiB pages wherever alignment allows;
    // objectGpa is large-aligned by construction, so a large-aligned
    // full-object window maps entirely with large pages. A narrowed
    // (delegated) window maps only its own frames — the frames beyond
    // it simply do not exist in this sub context.
    //
    // Under demand paging the window must stay 4 KiB-granular instead
    // (only 4 KiB leaves demote to Swapped/Ballooned), and every
    // window page is registered with the pager so an object page
    // faulting mid-gate-call is paged in transparently — billed to
    // the faulting guest, not the object's owner.
    hv::Pager *pager = hv.pager();
    if (pager) {
        ok = ok && subContext->mapRange(objectGpa,
                                        exp.objectHpa() + window_offset,
                                        window_bytes, granted);
    } else {
        ok = ok && subContext->mapWindow(objectGpa, exp.objectHpa(),
                                         exp.objectBytes(),
                                         window_offset, window_bytes,
                                         granted);
    }
    panic_if(!ok, "sub context construction collided");
    if (pager) {
        pager->addMirror(*subContext, objectGpa,
                         exp.objectHpa() + window_offset, window_bytes);
    }

    // Install both contexts on the guest vCPU.
    cpu::Vcpu &guest_cpu = guest_vm.vcpu(vcpu_index);
    auto gate_idx = hv.installEptp(guest_cpu, gateContext->eptp());
    auto sub_idx = hv.installEptp(guest_cpu, subContext->eptp());
    fatal_if(!gate_idx || !sub_idx,
             "EPTP list of vCPU %u is full", guest_cpu.id());

    // Expose the exchange buffer in the guest's default context.
    const Gpa exch_guest = exchangeGuestBase + slot * exchangeStride;
    const bool mapped = guest_vm.defaultEpt().mapRange(
        exch_guest, exchHpa, exchBytes, ept::Perms::RW);
    fatal_if(!mapped, "guest exchange window %llx already occupied",
             (unsigned long long)exch_guest);

    attachInfo.attachment = attachId;
    attachInfo.gateIndex = *gate_idx;
    attachInfo.subIndex = *sub_idx;
    attachInfo.exchangeGuestGpa = exch_guest;
    attachInfo.exchangeBytes = exchBytes;
    attachInfo.objectBytes = window_bytes;
    attachInfo.objectOffset = window_offset;
    attachInfo.perms = static_cast<std::uint32_t>(granted);

    exp.addAttachment();
    hv.stats().inc("elisa_attachments");
}

Attachment::~Attachment()
{
    // Revoke reachability first: clear the EPTP-list entries and flush
    // cached translations, then unmap the guest-side exchange window.
    hv::Vm &guest = hyper.vm(guestVmId);
    cpu::Vcpu &guest_cpu = guest.vcpu(vcpu);
    if (hv::Pager *pager = hyper.pager())
        pager->dropContext(subContext->eptp());
    hyper.removeEptp(guest_cpu, attachInfo.gateIndex);
    hyper.removeEptp(guest_cpu, attachInfo.subIndex);
    guest.defaultEpt().unmapRange(attachInfo.exchangeGuestGpa, exchBytes);
    hyper.inveptAll(guest.defaultEpt().eptp());

    gateContext.reset();
    subContext.reset();
    hyper.allocator().free(stackHpa, stackBytes / pageSize);
    hyper.allocator().free(exchHpa, exchBytes / pageSize);
    exp.dropAttachment();
}

} // namespace elisa::core
