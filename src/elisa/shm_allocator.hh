/**
 * @file
 * A first-fit free-list allocator living *inside* a shared region.
 *
 * All metadata (region header, block headers, free list) is stored in
 * the shared memory itself and manipulated exclusively through a
 * GuestView, so the allocator works identically from the manager's
 * default context and from a shared function running in the sub EPT
 * context — and every metadata touch is EPT-checked.
 *
 * Offsets, not pointers, are stored throughout (position-independent:
 * the region appears at different GPAs in different contexts).
 */

#ifndef ELISA_ELISA_SHM_ALLOCATOR_HH
#define ELISA_ELISA_SHM_ALLOCATOR_HH

#include <cstdint>
#include <optional>

#include "base/types.hh"
#include "cpu/guest_view.hh"
#include "sim/fault.hh"

namespace elisa::core
{

/**
 * Shared-memory allocator handle. The handle itself is stateless
 * beyond (view, base); any party with access to the region can
 * construct one.
 */
class ShmAllocator
{
  public:
    /**
     * Bind to a region at @p base (GPA in the *caller's* context).
     * Call format() once before first use.
     */
    ShmAllocator(cpu::GuestView &view, Gpa base);

    /**
     * Initialize the region structures.
     * @param region_bytes total region size, including metadata.
     */
    void format(std::uint64_t region_bytes);

    /** True when the region carries a valid header. */
    bool formatted();

    /**
     * Allocate @p bytes (16-byte aligned, first fit).
     * @return offset of the usable payload within the region, or
     *         nullopt when no block fits.
     */
    std::optional<std::uint64_t> alloc(std::uint64_t bytes);

    /** Free a previously allocated payload offset. */
    void free(std::uint64_t payload_offset);

    /**
     * Attach a fault plan: alloc() then consults it and can be made to
     * fail as if the region were exhausted, or to corrupt the region
     * header (a misbehaving sharer scribbling over metadata).
     */
    void setFaultPlan(sim::FaultPlan *plan) { faults = plan; }

    /** Bytes currently free (sums the free list). */
    std::uint64_t freeBytes();

    /** Total usable bytes (region minus region header). */
    std::uint64_t capacity();

  private:
    /** On-memory region header. */
    struct Header
    {
        std::uint64_t magic;
        std::uint64_t regionBytes;
        std::uint64_t freeHead; ///< offset of first free block, 0=none
        std::uint64_t allocCount;
    };

    /** On-memory block header (precedes each payload). */
    struct Block
    {
        std::uint64_t size; ///< payload size
        std::uint64_t next; ///< next free block offset (free list only)
    };

    static constexpr std::uint64_t magicValue = 0x454c53484d454d31ull;
    static constexpr std::uint64_t align = 16;

    Header readHeader();
    void writeHeader(const Header &h);
    Block readBlock(std::uint64_t offset);
    void writeBlock(std::uint64_t offset, const Block &b);

    cpu::GuestView &view;
    Gpa base;
    sim::FaultPlan *faults = nullptr;
};

} // namespace elisa::core

#endif // ELISA_ELISA_SHM_ALLOCATOR_HH
