/**
 * @file
 * ElisaGuest: the client-side runtime of an ordinary guest VM.
 *
 * Wraps the negotiation hypercalls (request / query / detach) and hands
 * out Gate objects for the exit-less data path.
 */

#ifndef ELISA_ELISA_GUEST_API_HH
#define ELISA_ELISA_GUEST_API_HH

#include <optional>
#include <string>

#include "elisa/gate.hh"
#include "elisa/manager.hh"
#include "hv/vm.hh"

namespace elisa::core
{

/**
 * Client runtime bound to one vCPU of a guest VM.
 */
class ElisaGuest
{
  public:
    /**
     * @param vm the guest VM.
     * @param service the host-side ELISA service.
     * @param vcpu_index which vCPU performs attachments and calls.
     */
    ElisaGuest(hv::Vm &vm, ElisaService &service,
               unsigned vcpu_index = 0);

    /**
     * Start an attach negotiation for export @p name.
     * @return the request id, or nullopt when the export is unknown.
     */
    std::optional<RequestId> requestAttach(const std::string &name);

    /**
     * Query an in-flight request.
     * @return a Gate when approved; nullopt while pending or after a
     *         denial (check lastDenied() to distinguish).
     */
    std::optional<Gate> completeAttach(RequestId request);

    /**
     * Convenience for tests/benches: request + have the manager drain
     * its queue + complete, in one call.
     */
    std::optional<Gate> attach(const std::string &name,
                               ElisaManager &manager);

    /** Detach (slow path); the gate handle becomes invalid. */
    bool detach(Gate &gate);

    /** True when the last completeAttach() saw a denial. */
    bool lastDenied() const { return denied; }

    /** The client's vCPU. */
    cpu::Vcpu &vcpu();

    /** A view of the guest's memory under its default context. */
    cpu::GuestView view();

    /** The underlying VM. */
    hv::Vm &vm() { return guestVm; }

  private:
    hv::Vm &guestVm;
    ElisaService &svc;
    unsigned vcpuIndex;
    Gpa scratchGpa = 0;
    bool denied = false;
};

} // namespace elisa::core

#endif // ELISA_ELISA_GUEST_API_HH
