/**
 * @file
 * ElisaGuest: the client-side runtime of an ordinary guest VM.
 *
 * Wraps the negotiation hypercalls (request / query / detach) and hands
 * out Gate objects for the exit-less data path.
 */

#ifndef ELISA_ELISA_GUEST_API_HH
#define ELISA_ELISA_GUEST_API_HH

#include <functional>
#include <optional>
#include <string>

#include "elisa/gate.hh"
#include "elisa/manager.hh"
#include "hv/vm.hh"

namespace elisa::core
{

/**
 * Client runtime bound to one vCPU of a guest VM.
 */
class ElisaGuest
{
  public:
    /**
     * @param vm the guest VM.
     * @param service the host-side ELISA service.
     * @param vcpu_index which vCPU performs attachments and calls.
     */
    ElisaGuest(hv::Vm &vm, ElisaService &service,
               unsigned vcpu_index = 0);

    /**
     * Start an attach negotiation for export @p name.
     * @return the request id, or nullopt when the export is unknown.
     */
    std::optional<RequestId> requestAttach(const std::string &name);

    /**
     * Query an in-flight request.
     * @return a Gate when approved; nullopt while pending or after a
     *         denial (check lastDenied() to distinguish).
     */
    std::optional<Gate> completeAttach(RequestId request);

    /**
     * Convenience for tests/benches: request + have the manager drain
     * its queue + complete, in one call.
     */
    std::optional<Gate> attach(const std::string &name,
                               ElisaManager &manager);

    /**
     * Robust attach: bounded retry with exponential backoff (simulated
     * time) around requestAttach + completeAttach. Retries while the
     * manager queue is Busy or the request stays Pending; gives up
     * after @p max_tries or on a definitive Denied/TimedOut.
     *
     * @param pump invoked between retries — the "rest of the world
     *        makes progress while we wait" hook (tests pass the
     *        manager's pollRequests; production callers that share a
     *        thread with nothing leave it empty).
     * @param max_tries total Query/request attempts before giving up.
     * @param backoff_ns first backoff; doubles per retry, capped at
     *        1024x.
     */
    std::optional<Gate> attachWithRetry(
        const std::string &name,
        const std::function<void()> &pump = {},
        unsigned max_tries = 8, SimNs backoff_ns = 2000);

    /** Detach (slow path); the gate handle becomes invalid. */
    bool detach(Gate &gate);

    /** True when the last completeAttach() saw a denial. */
    bool lastDenied() const { return denied; }

    /** True when the last completeAttach() saw a timeout. */
    bool lastTimedOut() const { return timedOut; }

    /** True when the last requestAttach() was refused with Busy. */
    bool lastBusy() const { return busy; }

    /** The client's vCPU. */
    cpu::Vcpu &vcpu();

    /** A view of the guest's memory under its default context. */
    cpu::GuestView view();

    /** The underlying VM. */
    hv::Vm &vm() { return guestVm; }

  private:
    hv::Vm &guestVm;
    ElisaService &svc;
    unsigned vcpuIndex;
    Gpa scratchGpa = 0;
    bool denied = false;
    bool timedOut = false;
    bool busy = false;
    bool queryFailed = false;
};

} // namespace elisa::core

#endif // ELISA_ELISA_GUEST_API_HH
