/**
 * @file
 * ElisaGuest: the client-side runtime of an ordinary guest VM.
 *
 * Wraps the negotiation hypercalls (request / query / detach / redeem)
 * and hands out Gate objects for the exit-less data path.
 *
 * The attach surface is capability-first: exports are addressed with a
 * value-typed ExportKey, every successful attach carries the
 * Capability backing it (delegable peer-to-peer, see
 * elisa/capability.hh), and a received capability is turned into a
 * Gate with redeem(). Raw-string addressing is in its one deprecation
 * release. The pre-AttachResult surface (attach()/completeAttach()
 * plus stateful lastDenied()-style flags) went through its release and
 * is gone.
 */

#ifndef ELISA_ELISA_GUEST_API_HH
#define ELISA_ELISA_GUEST_API_HH

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "elisa/capability.hh"
#include "elisa/gate.hh"
#include "elisa/manager.hh"
#include "hv/vm.hh"

namespace elisa::core
{

/** Outcome of one attach-negotiation step (see AttachResult). */
enum class AttachStatus : std::uint8_t
{
    Attached, ///< negotiation complete; the result carries the Gate
    Pending,  ///< still queued for the manager; poll again
    Denied,   ///< the manager (or host policy) refused; terminal
    TimedOut, ///< sat Pending past the negotiation timeout; terminal
    Busy,     ///< transient refusal (full queue, lost reply); retry
};

/** Render a status (logs / test failure messages). */
const char *attachStatusToString(AttachStatus status);

/**
 * Value-typed result of an attach step. Everything about one attempt
 * travels in the value: the status, a human-readable reason on
 * failure, the request id while one is in flight, and the Gate on
 * success. Move-only, because the Gate it may carry is.
 */
class AttachResult
{
  public:
    /** A failed or not-yet-complete result. */
    AttachResult(AttachStatus status, std::string reason,
                 std::optional<RequestId> request = std::nullopt)
        : st(status), why(std::move(reason)), rid(request)
    {
    }

    /** A successful attachment (negotiated or redeemed). */
    AttachResult(Gate gate, Capability capability,
                 std::optional<RequestId> request = std::nullopt)
        : st(AttachStatus::Attached), g(std::move(gate)),
          cap(std::move(capability)), rid(request)
    {
    }

    AttachStatus status() const { return st; }

    /** True when the negotiation completed and gate() is usable. */
    bool ok() const { return st == AttachStatus::Attached; }

    explicit operator bool() const { return ok(); }

    /** Why the attempt failed (empty on success). */
    const std::string &reason() const { return why; }

    /** The request id, when one was created (Pending and Attached). */
    std::optional<RequestId> request() const { return rid; }

    /** The attached gate, in place (panics unless ok()). */
    Gate &gate();

    /** Move the gate out of the result (panics unless ok()). */
    Gate take();

    /**
     * The capability backing the attachment (invalid unless ok()).
     * Copyable: hold on to it to delegate narrowed views of the
     * attachment to peer VMs or to revoke the whole grant subtree —
     * the Gate's RAII detach covers only the plain teardown.
     */
    const Capability &capability() const { return cap; }

    /**
     * Collapse into an optional<Gate> (status and reason dropped) —
     * for call sites that only care about success.
     */
    std::optional<Gate>
    intoOptional() &&
    {
        if (!ok())
            return std::nullopt;
        return std::move(g);
    }

  private:
    AttachStatus st;
    std::string why;
    Gate g;
    Capability cap;
    std::optional<RequestId> rid;
};

/**
 * Client runtime bound to one vCPU of a guest VM.
 */
class ElisaGuest
{
  public:
    /**
     * @param vm the guest VM.
     * @param service the host-side ELISA service.
     * @param vcpu_index which vCPU performs attachments and calls.
     */
    ElisaGuest(hv::Vm &vm, ElisaService &service,
               unsigned vcpu_index = 0);

    /**
     * Start an attach negotiation for the export @p key names.
     * @return the request id, or nullopt when the export is unknown
     *         or the manager's queue refused the request.
     */
    std::optional<RequestId> requestAttach(const ExportKey &key);

    [[deprecated("address exports with an ExportKey")]]
    std::optional<RequestId>
    requestAttach(const std::string &name)
    {
        return requestAttach(ExportKey(name));
    }

    /**
     * Query an in-flight request once (one Query hypercall).
     * @return Attached (with the Gate), Pending (poll again with the
     *         same id), Denied/TimedOut (terminal), or Busy when the
     *         request vanished host-side (lost or reaped) — issue a
     *         fresh requestAttach.
     */
    AttachResult pollAttach(RequestId request);

    /**
     * Convenience for tests/benches: request + have the manager drain
     * its queue + poll, in one call.
     */
    AttachResult tryAttach(const ExportKey &key, ElisaManager &manager);

    [[deprecated("address exports with an ExportKey")]]
    AttachResult
    tryAttach(const std::string &name, ElisaManager &manager)
    {
        return tryAttach(ExportKey(name), manager);
    }

    /**
     * Robust attach: bounded retry with exponential backoff (simulated
     * time) around requestAttach + pollAttach. Retries while the
     * manager queue is Busy or the request stays Pending; gives up
     * after @p max_tries or on a definitive Denied/TimedOut. The
     * returned result is the last attempt's outcome.
     *
     * @param pump invoked between retries — the "rest of the world
     *        makes progress while we wait" hook (tests pass the
     *        manager's pollRequests; production callers that share a
     *        thread with nothing leave it empty).
     * @param max_tries total Query/request attempts before giving up.
     * @param backoff_ns first backoff; doubles per retry, capped at
     *        1024x.
     */
    AttachResult attachWithRetry(const ExportKey &key,
                                 const std::function<void()> &pump = {},
                                 unsigned max_tries = 8,
                                 SimNs backoff_ns = 2000);

    [[deprecated("address exports with an ExportKey")]]
    AttachResult
    attachWithRetry(const std::string &name,
                    const std::function<void()> &pump = {},
                    unsigned max_tries = 8, SimNs backoff_ns = 2000)
    {
        return attachWithRetry(ExportKey(name), pump, max_tries,
                               backoff_ns);
    }

    /**
     * Redeem a capability this VM holds into an attachment on this
     * vCPU (one Redeem hypercall; the exit-less data path of the
     * resulting Gate is identical to a negotiated attach). The grant
     * id is all that crosses VMs — a peer that received a delegated
     * Capability passes it (or just its id) here.
     * @return Attached with the Gate and a Capability bound to *this*
     *         vCPU, or Denied when the grant is unknown, not ours,
     *         revoked, or expired.
     */
    AttachResult redeem(CapId grant);

    /** Redeem a received Capability handle (uses only its id). */
    AttachResult
    redeem(const Capability &capability)
    {
        return redeem(capability.id());
    }

    /** Detach (slow path); delegates to Gate::detach(). */
    bool detach(Gate &gate);

    /** The client's vCPU. */
    cpu::Vcpu &vcpu();

    /** A view of the guest's memory under its default context. */
    cpu::GuestView view();

    /** The underlying VM. */
    hv::Vm &vm() { return guestVm; }

  private:
    hv::Vm &guestVm;
    ElisaService &svc;
    unsigned vcpuIndex;
    Gpa scratchGpa = 0;
    // Whether the last requestAttach was refused with hcBusy (full
    // manager queue) rather than an outright error; tryAttach and
    // attachWithRetry map the nullopt to the right AttachStatus.
    bool busy = false;
};

} // namespace elisa::core

#endif // ELISA_ELISA_GUEST_API_HH
