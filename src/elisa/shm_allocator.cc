#include "elisa/shm_allocator.hh"

#include "base/logging.hh"

namespace elisa::core
{

ShmAllocator::ShmAllocator(cpu::GuestView &guest_view, Gpa region_base)
    : view(guest_view), base(region_base)
{
}

ShmAllocator::Header
ShmAllocator::readHeader()
{
    return view.read<Header>(base);
}

void
ShmAllocator::writeHeader(const Header &h)
{
    view.write(base, h);
}

ShmAllocator::Block
ShmAllocator::readBlock(std::uint64_t offset)
{
    return view.read<Block>(base + offset);
}

void
ShmAllocator::writeBlock(std::uint64_t offset, const Block &b)
{
    view.write(base + offset, b);
}

void
ShmAllocator::format(std::uint64_t region_bytes)
{
    panic_if(region_bytes < 4 * align + sizeof(Header) + sizeof(Block),
             "shared region too small to format");
    Header h;
    h.magic = magicValue;
    h.regionBytes = region_bytes;
    h.freeHead = sizeof(Header);
    h.allocCount = 0;
    writeHeader(h);

    Block all;
    all.size = region_bytes - sizeof(Header) - sizeof(Block);
    all.next = 0;
    writeBlock(h.freeHead, all);
}

bool
ShmAllocator::formatted()
{
    return readHeader().magic == magicValue;
}

std::optional<std::uint64_t>
ShmAllocator::alloc(std::uint64_t bytes)
{
    panic_if(!formatted(), "alloc from unformatted region");
    if (faults) {
        const sim::FaultDecision fault = faults->onShmAlloc(bytes);
        if (fault.action == sim::FaultAction::ShmExhaust)
            return std::nullopt;
        if (fault.action == sim::FaultAction::ShmCorrupt) {
            // A misbehaving sharer scribbled over the region header;
            // the magic check turns false and every later operation
            // sees an unformatted region instead of following a
            // poisoned free list.
            Header h = readHeader();
            h.magic = ~magicValue;
            writeHeader(h);
            return std::nullopt;
        }
    }
    if (bytes == 0)
        bytes = align;
    bytes = (bytes + align - 1) & ~(align - 1);

    Header h = readHeader();
    std::uint64_t prev = 0;
    std::uint64_t cur = h.freeHead;
    while (cur != 0) {
        Block blk = readBlock(cur);
        if (blk.size >= bytes) {
            const std::uint64_t remainder = blk.size - bytes;
            std::uint64_t follower = blk.next;
            if (remainder >= sizeof(Block) + align) {
                // Split: carve the tail into a new free block.
                const std::uint64_t tail =
                    cur + sizeof(Block) + bytes;
                Block tail_blk;
                tail_blk.size = remainder - sizeof(Block);
                tail_blk.next = blk.next;
                writeBlock(tail, tail_blk);
                blk.size = bytes;
                follower = tail;
            }
            // Unlink cur.
            if (prev == 0) {
                h.freeHead = follower;
            } else {
                Block prev_blk = readBlock(prev);
                prev_blk.next = follower;
                writeBlock(prev, prev_blk);
            }
            blk.next = 0;
            writeBlock(cur, blk);
            ++h.allocCount;
            writeHeader(h);
            return cur + sizeof(Block);
        }
        prev = cur;
        cur = blk.next;
    }
    return std::nullopt;
}

void
ShmAllocator::free(std::uint64_t payload_offset)
{
    panic_if(!formatted(), "free into unformatted region");
    panic_if(payload_offset < sizeof(Header) + sizeof(Block),
             "bad payload offset");
    const std::uint64_t block_off = payload_offset - sizeof(Block);

    // Address-ordered insert with coalescing of adjacent blocks.
    Header h = readHeader();
    Block blk = readBlock(block_off);

    std::uint64_t prev = 0;
    std::uint64_t cur = h.freeHead;
    while (cur != 0 && cur < block_off) {
        prev = cur;
        cur = readBlock(cur).next;
    }
    panic_if(cur == block_off, "double free at offset %llu",
             (unsigned long long)block_off);

    blk.next = cur;
    writeBlock(block_off, blk);
    if (prev == 0) {
        h.freeHead = block_off;
    } else {
        Block prev_blk = readBlock(prev);
        prev_blk.next = block_off;
        writeBlock(prev, prev_blk);
    }

    // Coalesce with successor.
    if (cur != 0 &&
        block_off + sizeof(Block) + blk.size == cur) {
        Block next_blk = readBlock(cur);
        blk.size += sizeof(Block) + next_blk.size;
        blk.next = next_blk.next;
        writeBlock(block_off, blk);
    }
    // Coalesce with predecessor.
    if (prev != 0) {
        Block prev_blk = readBlock(prev);
        if (prev + sizeof(Block) + prev_blk.size == block_off) {
            Block merged = readBlock(block_off);
            prev_blk.size += sizeof(Block) + merged.size;
            prev_blk.next = merged.next;
            writeBlock(prev, prev_blk);
        }
    }
    panic_if(h.allocCount == 0, "free without matching alloc");
    --h.allocCount;
    writeHeader(h);
}

std::uint64_t
ShmAllocator::freeBytes()
{
    panic_if(!formatted(), "inspecting unformatted region");
    std::uint64_t total = 0;
    std::uint64_t cur = readHeader().freeHead;
    while (cur != 0) {
        Block blk = readBlock(cur);
        total += blk.size;
        cur = blk.next;
    }
    return total;
}

std::uint64_t
ShmAllocator::capacity()
{
    return readHeader().regionBytes - sizeof(Header) - sizeof(Block);
}

} // namespace elisa::core
