#include "elisa/manager.hh"

#include "base/logging.hh"
#include "cpu/guest_view.hh"
#include "hv/hypercall.hh"

namespace elisa::core
{

ElisaManager::ElisaManager(hv::Vm &vm, ElisaService &service,
                           unsigned vcpu_index)
    : guestVm(vm), svc(service), vcpuIndex(vcpu_index)
{
    auto scratch = vm.allocGuestMem(pageSize);
    fatal_if(!scratch, "manager VM '%s' out of RAM for scratch page",
             vm.name().c_str());
    scratchGpa = *scratch;

    const std::uint64_t rc = vcpu().vmcall(hv::hcArgs(
        static_cast<hv::Hc>(ElisaHc::RegisterManager)));
    fatal_if(rc == hv::hcError, "manager registration failed");
}

cpu::Vcpu &
ElisaManager::vcpu()
{
    return guestVm.vcpu(vcpuIndex);
}

cpu::GuestView
ElisaManager::view()
{
    return cpu::GuestView(vcpu());
}

std::optional<ElisaManager::Exported>
ElisaManager::exportObject(const ExportKey &key, std::uint64_t bytes,
                           SharedFnTable fns, ept::Perms perms)
{
    if (!key.valid())
        return std::nullopt;
    const std::string &name = key.name();
    const std::uint64_t aligned = pageAlignUp(bytes);
    // Large objects get 2 MiB-aligned backing so the sub context can
    // map them with large pages (fewer PTE writes at attach time).
    const std::uint64_t alignment =
        aligned >= ept::largePageSize ? ept::largePageSize : pageSize;
    auto obj_gpa = guestVm.allocGuestMem(aligned, alignment);
    if (!obj_gpa)
        return std::nullopt;

    // Zero the object through the guest view (the manager "touches"
    // its own memory).
    cpu::GuestView v = view();
    v.zeroBytes(*obj_gpa, aligned);

    // Stage the code, write the name, issue the Export hypercall.
    svc.stageFunctions(guestVm.id(), std::move(fns));
    v.writeBytes(scratchGpa, name.data(), name.size());

    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Export);
    args.arg0 = scratchGpa;
    args.arg1 = name.size() |
                (static_cast<std::uint64_t>(perms) << 32);
    args.arg2 = *obj_gpa;
    args.arg3 = aligned;
    const std::uint64_t rc = vcpu().vmcall(args);
    if (rc == hv::hcError)
        return std::nullopt;
    return Exported{static_cast<ExportId>(rc), key, *obj_gpa, aligned};
}

void
ElisaManager::setApprover(Approver new_approver)
{
    approver = std::move(new_approver);
}

void
ElisaManager::setPermsPolicy(PermsPolicy policy)
{
    permsPolicy = std::move(policy);
}

bool
ElisaManager::revoke(ExportId id)
{
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Revoke);
    args.arg0 = id;
    return vcpu().vmcall(args) != hv::hcError;
}

unsigned
ElisaManager::pollRequests()
{
    unsigned processed = 0;
    cpu::GuestView v = view();
    while (true) {
        cpu::HypercallArgs poll;
        poll.nr = static_cast<std::uint64_t>(ElisaHc::NextRequest);
        poll.arg0 = scratchGpa;
        const std::uint64_t has = vcpu().vmcall(poll);
        if (has != 1)
            break;

        const auto wire = v.read<WireRequest>(scratchGpa);
        const std::string name(wire.name);

        bool ok;
        ept::Perms granted = ept::Perms::None; // None = export default
        if (permsPolicy) {
            auto decision = permsPolicy(wire.guestVm, name);
            ok = decision.has_value();
            if (decision)
                granted = *decision;
        } else {
            ok = !approver || approver(wire.guestVm, name);
        }

        cpu::HypercallArgs verdict;
        verdict.nr = static_cast<std::uint64_t>(
            ok ? ElisaHc::Approve : ElisaHc::Deny);
        verdict.arg0 = wire.id;
        verdict.arg1 = static_cast<std::uint64_t>(granted);
        const std::uint64_t rc = vcpu().vmcall(verdict);
        if (rc == hv::hcError)
            warn("manager verdict on request %u failed", wire.id);
        ++processed;
    }
    return processed;
}

} // namespace elisa::core
