/**
 * @file
 * ElisaManager: the guest-side runtime of a manager VM.
 *
 * The manager VM owns shared objects. It allocates them from its own
 * RAM (keeping direct access through its default context), exports them
 * to the hypervisor's ELISA service, and answers attach requests from
 * other guests — all through ordinary hypercalls (the slow path).
 */

#ifndef ELISA_ELISA_MANAGER_HH
#define ELISA_ELISA_MANAGER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "elisa/abi.hh"
#include "elisa/negotiation.hh"
#include "hv/vm.hh"

namespace elisa::core
{

/**
 * Manager-VM runtime. One instance per manager VM (vCPU 0 by default).
 */
class ElisaManager
{
  public:
    /** Decide whether @p guest_vm may attach to export @p name. */
    using Approver =
        std::function<bool(VmId guest_vm, const std::string &name)>;

    /**
     * Registers @p vm as a manager with the service.
     * @param vm the manager VM (must outlive this object).
     * @param service the host-side ELISA service.
     * @param vcpu_index which vCPU runs the manager loop.
     */
    ElisaManager(hv::Vm &vm, ElisaService &service,
                 unsigned vcpu_index = 0);

    /**
     * Allocate a shared object from the manager's RAM and export it.
     *
     * @param key lookup key guests present to attach.
     * @param bytes object size, rounded up to pages.
     * @param fns the function table clients may invoke.
     * @param perms client permissions on the object window.
     * @return the export id, its key, plus the object's GPA in the
     *         *manager's* address space, or nullopt on error.
     */
    struct Exported
    {
        ExportId id;
        ExportKey key;
        Gpa objectGpa;
        std::uint64_t bytes;
    };
    std::optional<Exported> exportObject(
        const ExportKey &key, std::uint64_t bytes, SharedFnTable fns,
        ept::Perms perms = ept::Perms::RW);

    [[deprecated("address exports with an ExportKey")]]
    std::optional<Exported>
    exportObject(const std::string &name, std::uint64_t bytes,
                 SharedFnTable fns, ept::Perms perms = ept::Perms::RW)
    {
        return exportObject(ExportKey(name), bytes, std::move(fns),
                            perms);
    }

    /** Set the attach-approval policy (default: approve everyone). */
    void setApprover(Approver approver);

    /**
     * Fine-grained policy: decide per request whether to approve and
     * with which object-window permissions (nullopt = deny; the
     * grant may only narrow the export's permissions). Takes
     * precedence over setApprover().
     */
    using PermsPolicy = std::function<std::optional<ept::Perms>(
        VmId guest_vm, const std::string &name)>;
    void setPermsPolicy(PermsPolicy policy);

    /**
     * Drain the pending request queue, approving or denying each
     * request per the policy.
     * @return number of requests processed.
     */
    unsigned pollRequests();

    /**
     * Revoke one of this manager's exports (slow path): every
     * client's attachment is torn down immediately; their next
     * gate call faults on the cleared EPTP-list entry.
     * @return false when the export is unknown or not ours.
     */
    bool revoke(ExportId id);

    /** A view of the manager's memory (to initialize objects). */
    cpu::GuestView view();

    /** The manager's vCPU (clock inspection in benches). */
    cpu::Vcpu &vcpu();

    /** The underlying VM. */
    hv::Vm &vm() { return guestVm; }

  private:
    hv::Vm &guestVm;
    ElisaService &svc;
    unsigned vcpuIndex;
    /** Guest scratch page for hypercall message buffers. */
    Gpa scratchGpa = 0;
    Approver approver;
    PermsPolicy permsPolicy;
};

} // namespace elisa::core

#endif // ELISA_ELISA_MANAGER_HH
