#include "elisa/guest_api.hh"

#include "base/logging.hh"
#include "hv/hypercall.hh"

namespace elisa::core
{

ElisaGuest::ElisaGuest(hv::Vm &vm, ElisaService &service,
                       unsigned vcpu_index)
    : guestVm(vm), svc(service), vcpuIndex(vcpu_index)
{
    auto scratch = vm.allocGuestMem(pageSize);
    fatal_if(!scratch, "guest VM '%s' out of RAM for scratch page",
             vm.name().c_str());
    scratchGpa = *scratch;
}

cpu::Vcpu &
ElisaGuest::vcpu()
{
    return guestVm.vcpu(vcpuIndex);
}

cpu::GuestView
ElisaGuest::view()
{
    return cpu::GuestView(vcpu());
}

std::optional<RequestId>
ElisaGuest::requestAttach(const std::string &name)
{
    if (name.empty() || name.size() > 51)
        return std::nullopt;
    cpu::GuestView v = view();
    v.writeBytes(scratchGpa, name.data(), name.size());

    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::AttachRequest);
    args.arg0 = scratchGpa;
    args.arg1 = name.size();
    args.arg2 = vcpuIndex;
    const std::uint64_t rc = vcpu().vmcall(args);
    if (rc == hv::hcError)
        return std::nullopt;
    return static_cast<RequestId>(rc);
}

std::optional<Gate>
ElisaGuest::completeAttach(RequestId request)
{
    denied = false;
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Query);
    args.arg0 = request;
    args.arg1 = scratchGpa;
    const std::uint64_t state = vcpu().vmcall(args);
    if (state == hv::hcError)
        return std::nullopt;

    switch (static_cast<RequestState>(state)) {
      case RequestState::Pending:
        return std::nullopt;
      case RequestState::Denied:
        denied = true;
        return std::nullopt;
      case RequestState::Approved:
        break;
    }

    const auto wire = view().read<WireAttachResult>(scratchGpa);
    return Gate(vcpu(), svc, wire.info);
}

std::optional<Gate>
ElisaGuest::attach(const std::string &name, ElisaManager &manager)
{
    auto request = requestAttach(name);
    if (!request)
        return std::nullopt;
    manager.pollRequests();
    return completeAttach(*request);
}

bool
ElisaGuest::detach(Gate &gate)
{
    if (!gate.valid())
        return false;
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Detach);
    args.arg0 = gate.info().attachment;
    const std::uint64_t rc = vcpu().vmcall(args);
    gate = Gate();
    return rc != hv::hcError;
}

} // namespace elisa::core
