#include "elisa/guest_api.hh"

#include "base/logging.hh"
#include "base/strutil.hh"
#include "hv/hypercall.hh"

namespace elisa::core
{

namespace
{

/** Trace point linking one retry to its in-flight request span. */
sim::TraceNameCache attachRetryName("attach_retry");

} // anonymous namespace

const char *
attachStatusToString(AttachStatus status)
{
    switch (status) {
      case AttachStatus::Attached:
        return "attached";
      case AttachStatus::Pending:
        return "pending";
      case AttachStatus::Denied:
        return "denied";
      case AttachStatus::TimedOut:
        return "timed_out";
      case AttachStatus::Busy:
        return "busy";
    }
    return "?";
}

Gate &
AttachResult::gate()
{
    panic_if(!ok(), "no gate in a %s AttachResult",
             attachStatusToString(st));
    return g;
}

Gate
AttachResult::take()
{
    panic_if(!ok(), "no gate in a %s AttachResult",
             attachStatusToString(st));
    st = AttachStatus::Busy;
    why = "gate already taken";
    return std::move(g);
}

ElisaGuest::ElisaGuest(hv::Vm &vm, ElisaService &service,
                       unsigned vcpu_index)
    : guestVm(vm), svc(service), vcpuIndex(vcpu_index)
{
    auto scratch = vm.allocGuestMem(pageSize);
    fatal_if(!scratch, "guest VM '%s' out of RAM for scratch page",
             vm.name().c_str());
    scratchGpa = *scratch;
}

cpu::Vcpu &
ElisaGuest::vcpu()
{
    return guestVm.vcpu(vcpuIndex);
}

cpu::GuestView
ElisaGuest::view()
{
    return cpu::GuestView(vcpu());
}

std::optional<RequestId>
ElisaGuest::requestAttach(const ExportKey &key)
{
    busy = false;
    if (!key.valid())
        return std::nullopt;
    const std::string &name = key.name();
    cpu::GuestView v = view();
    v.writeBytes(scratchGpa, name.data(), name.size());

    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::AttachRequest);
    args.arg0 = scratchGpa;
    args.arg1 = name.size();
    args.arg2 = vcpuIndex;
    const std::uint64_t rc = vcpu().vmcall(args);
    if (rc == hv::hcBusy) {
        busy = true;
        return std::nullopt;
    }
    if (rc == hv::hcError)
        return std::nullopt;
    return static_cast<RequestId>(rc);
}

AttachResult
ElisaGuest::pollAttach(RequestId request)
{
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Query);
    args.arg0 = request;
    args.arg1 = scratchGpa;
    const std::uint64_t state = vcpu().vmcall(args);
    if (state == hv::hcError) {
        // The request vanished host-side: reaped with a dead manager,
        // dropped by fault injection, or never ours. Transient from
        // the client's point of view — issue a fresh request.
        return AttachResult(
            AttachStatus::Busy,
            detail::format("request %u unknown host-side (lost or "
                           "reaped); re-request",
                           request));
    }

    switch (static_cast<RequestState>(state)) {
      case RequestState::Pending:
        return AttachResult(AttachStatus::Pending,
                            "request still queued for the manager",
                            request);
      case RequestState::Denied:
        return AttachResult(AttachStatus::Denied,
                            "manager or host policy denied the attach",
                            request);
      case RequestState::TimedOut:
        return AttachResult(
            AttachStatus::TimedOut,
            "request sat pending past the negotiation timeout",
            request);
      case RequestState::Approved:
        break;
    }

    const auto wire = view().read<WireAttachResult>(scratchGpa);
    return AttachResult(Gate(vcpu(), svc, wire.info),
                        Capability(vcpu(), wire.info), request);
}

AttachResult
ElisaGuest::tryAttach(const ExportKey &key, ElisaManager &manager)
{
    auto request = requestAttach(key);
    if (!request) {
        return busy ? AttachResult(AttachStatus::Busy,
                                   "manager request queue full")
                    : AttachResult(AttachStatus::Denied,
                                   "attach request refused (unknown "
                                   "export '" + key.name() + "')");
    }
    manager.pollRequests();
    return pollAttach(*request);
}

AttachResult
ElisaGuest::redeem(CapId grant)
{
    if (grant == invalidCapId) {
        return AttachResult(AttachStatus::Denied,
                            "invalid capability handle");
    }
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Redeem);
    args.arg0 = grant;
    args.arg1 = scratchGpa;
    args.arg2 = vcpuIndex;
    const std::uint64_t rc = vcpu().vmcall(args);
    if (rc != 0) {
        return AttachResult(
            AttachStatus::Denied,
            detail::format("capability %llu refused (revoked, "
                           "expired, or not held by this VM)",
                           (unsigned long long)grant));
    }
    const auto wire = view().read<WireAttachResult>(scratchGpa);
    return AttachResult(Gate(vcpu(), svc, wire.info),
                        Capability(vcpu(), wire.info));
}

AttachResult
ElisaGuest::attachWithRetry(const ExportKey &key,
                            const std::function<void()> &pump,
                            unsigned max_tries, SimNs backoff_ns)
{
    // Request ids start at 1, so 0 marks "none in flight".
    RequestId request = 0;
    AttachResult last(AttachStatus::Busy, "no attach attempt made");
    SimNs backoff = backoff_ns;
    const SimNs backoff_cap = backoff_ns << 10;
    for (unsigned attempt = 0; attempt < max_tries; ++attempt) {
        if (attempt > 0) {
            // Simulated-time wait before this retry; the rest of the
            // world (the manager, other guests) makes progress.
            vcpu().clock().advance(backoff);
            if (backoff < backoff_cap)
                backoff *= 2;
            if (pump)
                pump();
            vcpu().stats().inc("elisa_attach_retries");
            if (sim::Tracer *tr = vcpu().tracer()) {
                // Link the retry into the request's async span when
                // one is in flight; otherwise a plain instant.
                if (request != 0) {
                    tr->asyncInstant(sim::SpanCat::Negotiation,
                                     attachRetryName.get(*tr), request,
                                     vcpu().id(), vcpu().clock().now(),
                                     attempt);
                } else {
                    tr->instant(sim::SpanCat::Negotiation,
                                attachRetryName.get(*tr), vcpu().id(),
                                vcpu().clock().now(), attempt);
                }
            }
        }

        if (request == 0) {
            request = requestAttach(key).value_or(0);
            // Busy (queue full), a dropped hypercall, and a not-yet-
            // registered export are all transient under fault
            // injection: back off and retry until the budget runs out.
            if (request == 0) {
                last = AttachResult(
                    AttachStatus::Busy,
                    busy ? "manager request queue full"
                         : "attach request refused (unknown export "
                           "or dropped hypercall)");
                continue;
            }
        }

        last = pollAttach(request);
        if (last.ok())
            return last;
        if (last.status() == AttachStatus::Denied ||
            last.status() == AttachStatus::TimedOut) {
            return last;
        }
        // Busy here means the request vanished host-side (its manager
        // died and the denial was already consumed, or the request was
        // dropped); issue a fresh request next attempt. Pending keeps
        // querying the same id.
        if (last.status() == AttachStatus::Busy)
            request = 0;
    }
    return last;
}

bool
ElisaGuest::detach(Gate &gate)
{
    return gate.detach();
}

} // namespace elisa::core
