#include "elisa/guest_api.hh"

#include "base/logging.hh"
#include "hv/hypercall.hh"

namespace elisa::core
{

ElisaGuest::ElisaGuest(hv::Vm &vm, ElisaService &service,
                       unsigned vcpu_index)
    : guestVm(vm), svc(service), vcpuIndex(vcpu_index)
{
    auto scratch = vm.allocGuestMem(pageSize);
    fatal_if(!scratch, "guest VM '%s' out of RAM for scratch page",
             vm.name().c_str());
    scratchGpa = *scratch;
}

cpu::Vcpu &
ElisaGuest::vcpu()
{
    return guestVm.vcpu(vcpuIndex);
}

cpu::GuestView
ElisaGuest::view()
{
    return cpu::GuestView(vcpu());
}

std::optional<RequestId>
ElisaGuest::requestAttach(const std::string &name)
{
    busy = false;
    if (name.empty() || name.size() > 51)
        return std::nullopt;
    cpu::GuestView v = view();
    v.writeBytes(scratchGpa, name.data(), name.size());

    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::AttachRequest);
    args.arg0 = scratchGpa;
    args.arg1 = name.size();
    args.arg2 = vcpuIndex;
    const std::uint64_t rc = vcpu().vmcall(args);
    if (rc == hv::hcBusy) {
        busy = true;
        return std::nullopt;
    }
    if (rc == hv::hcError)
        return std::nullopt;
    return static_cast<RequestId>(rc);
}

std::optional<Gate>
ElisaGuest::completeAttach(RequestId request)
{
    denied = false;
    timedOut = false;
    queryFailed = false;
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Query);
    args.arg0 = request;
    args.arg1 = scratchGpa;
    const std::uint64_t state = vcpu().vmcall(args);
    if (state == hv::hcError) {
        queryFailed = true;
        return std::nullopt;
    }

    switch (static_cast<RequestState>(state)) {
      case RequestState::Pending:
        return std::nullopt;
      case RequestState::Denied:
        denied = true;
        return std::nullopt;
      case RequestState::TimedOut:
        timedOut = true;
        return std::nullopt;
      case RequestState::Approved:
        break;
    }

    const auto wire = view().read<WireAttachResult>(scratchGpa);
    return Gate(vcpu(), svc, wire.info);
}

std::optional<Gate>
ElisaGuest::attachWithRetry(const std::string &name,
                            const std::function<void()> &pump,
                            unsigned max_tries, SimNs backoff_ns)
{
    std::optional<RequestId> request;
    SimNs backoff = backoff_ns;
    const SimNs backoff_cap = backoff_ns << 10;
    for (unsigned attempt = 0; attempt < max_tries; ++attempt) {
        if (attempt > 0) {
            // Simulated-time wait before this retry; the rest of the
            // world (the manager, other guests) makes progress.
            vcpu().clock().advance(backoff);
            if (backoff < backoff_cap)
                backoff *= 2;
            if (pump)
                pump();
            vcpu().stats().inc("elisa_attach_retries");
        }

        if (!request) {
            request = requestAttach(name);
            // Busy (queue full), a dropped hypercall, and a not-yet-
            // registered export are all transient under fault
            // injection: back off and retry until the budget runs out.
            if (!request)
                continue;
        }

        auto gate = completeAttach(*request);
        if (gate)
            return gate;
        if (denied || timedOut)
            return std::nullopt;
        // A failed Query means the request vanished host-side (e.g.
        // its manager died and the denial was already consumed, or the
        // request was dropped); issue a fresh request next attempt.
        // Otherwise it is still Pending: keep querying the same id.
        if (queryFailed)
            request.reset();
    }
    return std::nullopt;
}

std::optional<Gate>
ElisaGuest::attach(const std::string &name, ElisaManager &manager)
{
    auto request = requestAttach(name);
    if (!request)
        return std::nullopt;
    manager.pollRequests();
    return completeAttach(*request);
}

bool
ElisaGuest::detach(Gate &gate)
{
    if (!gate.valid())
        return false;
    cpu::HypercallArgs args;
    args.nr = static_cast<std::uint64_t>(ElisaHc::Detach);
    args.arg0 = gate.info().attachment;
    const std::uint64_t rc = vcpu().vmcall(args);
    gate = Gate();
    return rc != hv::hcError;
}

} // namespace elisa::core
