/**
 * @file
 * ELISA negotiation: the hypercall-based slow path through which a
 * guest VM, the hypervisor, and the manager VM agree on an attachment.
 *
 * Flow (paper §"negotiation", all hops are ordinary VMCALLs — only the
 * eventual data path is exit-less):
 *
 *   manager: RegisterManager            -> becomes a manager
 *   manager: Export(name, object, fns)  -> host builds the Export
 *   guest:   AttachRequest(name)        -> request queued for manager
 *   manager: NextRequest()              -> sees {req, guest, name}
 *   manager: Approve(req) / Deny(req)   -> host builds the Attachment,
 *                                          installs gate+sub EPTPs on
 *                                          the guest vCPU
 *   guest:   Query(req)                 -> receives AttachInfo
 *   guest:   ... VMFUNC data path ...
 *   guest:   Detach(attachment)         -> host tears everything down
 *
 * ElisaService is the host-side state machine: it owns every Export and
 * Attachment and registers the hypercall handlers.
 */

#ifndef ELISA_ELISA_NEGOTIATION_HH
#define ELISA_ELISA_NEGOTIATION_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "elisa/abi.hh"
#include "elisa/sub_context.hh"
#include "hv/hypervisor.hh"

namespace elisa::core
{

/** Attach request states, as returned by Query. */
enum class RequestState : std::uint32_t
{
    Pending = 0,
    Approved = 1,
    Denied = 2,
    /** The request sat Pending past the negotiation timeout. */
    TimedOut = 3,
};

/** Wire format of a request, written into the manager's buffer. */
struct WireRequest
{
    RequestId id = 0;
    VmId guestVm = 0;
    std::uint32_t vcpuIndex = 0;
    char name[52] = {};
};

/** Wire format of a Query response, written into the guest's buffer. */
struct WireAttachResult
{
    std::uint32_t state = 0;
    AttachInfo info;
};

/**
 * Host-side ELISA negotiation service and object registry.
 */
class ElisaService
{
  public:
    /** Bind to the machine and register the hypercall handlers. */
    explicit ElisaService(hv::Hypervisor &hv);

    /** Tears down every attachment, then every export. */
    ~ElisaService();

    ElisaService(const ElisaService &) = delete;
    ElisaService &operator=(const ElisaService &) = delete;

    /**
     * Stage a function table for the next Export hypercall from
     * @p manager_vm. Models the manager loading the shared code; see
     * DESIGN.md (code cannot cross the simulation boundary as bytes).
     */
    void stageFunctions(VmId manager_vm, SharedFnTable fns);

    /** Look up an export by name (host side / tests). */
    Export *findExport(const std::string &name);

    /** Look up an attachment (host side / Gate dispatch). */
    Attachment *attachment(AttachmentId id);

    /**
     * Force-revoke one export: destroys all of its grants and
     * attachments (their EPTP-list entries vanish; in-flight guests
     * fault on their next VMFUNC) and then the export itself.
     * @return false if the name is unknown.
     */
    bool revokeExport(const std::string &name);

    /**
     * Why a grant subtree is being torn down. Every revocation path in
     * the service funnels into the same routine; the reason only picks
     * the robustness counter and trace annotation.
     */
    enum class CapTeardown : std::uint32_t
    {
        Revoke,       ///< explicit CapRevoke hypercall
        Detach,       ///< Detach hypercall / Gate RAII
        VmDeath,      ///< holder or manager VM destroyed
        Expire,       ///< lapsed grant observed lazily
        ExportGone,   ///< export revoked or service shutdown
    };

    /**
     * THE teardown routine: transitively destroy the grant subtree
     * rooted at @p id — children before parents, each node's
     * attachment torn down (EPTP-list entries cleared and TLBs flushed
     * before any bookkeeping or frame is released) — in the
     * deterministic order the hypervisor grant table dictates.
     * Idempotent: tearing down an already-retired grant returns true
     * with no side effects.
     *
     * @param actor the vCPU observing/initiating the teardown, for
     *        trace timestamps; nullptr on VM-death paths (those spans
     *        stay open in the trace, the honest rendering).
     * @return false when @p id was never a grant.
     */
    bool teardownGrant(CapId id, CapTeardown reason,
                       cpu::Vcpu *actor = nullptr);

    /**
     * Lazy-expiry entry point for the gate fast path: called when a
     * gate entry observes its grant's lapse instant has passed.
     */
    bool expireCapability(CapId id, cpu::Vcpu &actor);

    /** Number of live attachments (tests). */
    std::size_t attachmentCount() const { return attachments.size(); }

    /** Number of live grants (tests). */
    std::size_t grantCount() const { return grants.size(); }

    /** Number of live exports (tests). */
    std::size_t exportCount() const { return exports.size(); }

    /** Number of requests still tracked (tests). */
    std::size_t requestCount() const { return requests.size(); }

    /** The machine this service runs on (gate fault hooks). */
    hv::Hypervisor &hypervisor() { return hyper; }

    /**
     * Cap on queued-but-unserved requests per manager; AttachRequest
     * beyond it returns hv::hcBusy. Protects a slow or stuck manager
     * from unbounded host-side queue growth.
     */
    void setQueueCap(std::size_t cap);

    /** The current per-manager request-queue bound. */
    std::size_t queueCap() const { return maxQueuedPerManager; }

    /**
     * Human-readable dump of the service state: managers, exports,
     * attachments, and pending requests. Operational introspection —
     * the output is stable enough for tests to grep.
     */
    std::string dumpState() const;

  private:
    /**
     * Service-side payload of one grant-table node: the narrowed
     * window, permissions, expiry, and (once redeemed) the attachment.
     * The hypervisor's GrantTable owns the tree shape; this struct is
     * everything ELISA layers on top, keyed by the same CapId.
     */
    struct CapGrant
    {
        CapId id = invalidCapId;
        CapId parent = invalidCapId;
        ExportId exportId = 0;
        /** The VM that issued (delegated) this grant. */
        VmId issuer = invalidVmId;
        /** The VM entitled to redeem and use it. */
        VmId holder = invalidVmId;
        /** Absolute byte offset of the window into the export. */
        std::uint64_t offset = 0;
        /** Window size in bytes. */
        std::uint64_t bytes = 0;
        ept::Perms perms = ept::Perms::None;
        /** Absolute lapse instant (0 = never), checked lazily. */
        SimNs expiresNs = 0;
        /** The attachment redeeming this grant (0 = unredeemed). */
        AttachmentId attachment = 0;
    };

    struct Request
    {
        RequestId id = 0;
        VmId guestVm = 0;
        std::uint32_t vcpuIndex = 0;
        std::string name;
        RequestState state = RequestState::Pending;
        AttachInfo info;
        /** Requesting vCPU's clock at submission (timeout base). */
        SimNs createdNs = 0;
    };

    /** Register all ElisaHc handlers with the hypervisor. */
    void registerHandlers();

    /** VM-teardown hook: drop every piece of state tied to @p vm. */
    void onVmDestroyed(VmId vm);

    /**
     * Deny every Pending request naming export @p name: its manager
     * died or revoked it, and the waiting guests must observe a
     * defined error on their next Query instead of hanging.
     */
    void denyPendingRequestsFor(const std::string &name);

    /**
     * Destroy one attachment and remember (id -> owner) so a replayed
     * Detach of the same id succeeds idempotently.
     */
    void retireAttachment(
        std::map<AttachmentId, std::unique_ptr<Attachment>>::iterator it);

    /** Remember a destroyed export for idempotent Revoke replays. */
    void retireExport(ExportId id, VmId owner);

    /**
     * Mint a grant node (hypervisor table + service payload). Roots
     * pass parent = invalidCapId and the export's full window.
     */
    CapId mintGrant(CapId parent, ExportId export_id, VmId issuer,
                    VmId holder, std::uint64_t offset,
                    std::uint64_t bytes, ept::Perms perms,
                    SimNs expires_ns);

    /** Tear down every root grant of export @p id (ExportGone). */
    void teardownExportGrants(ExportId id, cpu::Vcpu *actor);

    // Individual handler bodies (dispatched from lambdas).
    std::uint64_t hcRegisterManager(cpu::Vcpu &vcpu);
    std::uint64_t hcExport(cpu::Vcpu &vcpu,
                           const cpu::HypercallArgs &args);
    std::uint64_t hcNextRequest(cpu::Vcpu &vcpu,
                                const cpu::HypercallArgs &args);
    std::uint64_t hcApprove(cpu::Vcpu &vcpu,
                            const cpu::HypercallArgs &args);
    std::uint64_t hcDeny(cpu::Vcpu &vcpu, const cpu::HypercallArgs &args);
    std::uint64_t hcAttachRequest(cpu::Vcpu &vcpu,
                                  const cpu::HypercallArgs &args);
    std::uint64_t hcQuery(cpu::Vcpu &vcpu,
                          const cpu::HypercallArgs &args);
    std::uint64_t hcDetach(cpu::Vcpu &vcpu,
                           const cpu::HypercallArgs &args);
    std::uint64_t hcRevoke(cpu::Vcpu &vcpu,
                           const cpu::HypercallArgs &args);
    std::uint64_t hcDelegate(cpu::Vcpu &vcpu,
                             const cpu::HypercallArgs &args);
    std::uint64_t hcRedeem(cpu::Vcpu &vcpu,
                           const cpu::HypercallArgs &args);
    std::uint64_t hcCapRevoke(cpu::Vcpu &vcpu,
                              const cpu::HypercallArgs &args);

    hv::Hypervisor &hyper;

    /** Manager VMs and their pending request queues. */
    std::map<VmId, std::deque<RequestId>> managers;

    /** Function tables staged by managers, consumed by Export. */
    std::map<VmId, SharedFnTable> stagedFns;

    std::map<ExportId, std::unique_ptr<Export>> exports;
    std::map<AttachmentId, std::unique_ptr<Attachment>> attachments;
    std::map<RequestId, Request> requests;

    /**
     * Per-VM count of attachments ever made. Picks the exchange
     * window GPA, which lives in the VM-wide default context — so
     * the counter must be per-VM, not per-vCPU (two vCPUs of one VM
     * share that address space).
     */
    std::map<VmId, unsigned> slotCounters;

    /**
     * Recently destroyed attachments/exports, keyed to their one-time
     * owner: a replayed Detach/Revoke (duplicated hypercall, guest
     * retry after a lost reply) returns success instead of an error.
     * Bounded FIFO-by-id so the maps cannot grow without limit.
     */
    std::map<AttachmentId, VmId> retiredAttachments;
    std::map<ExportId, VmId> retiredExports;
    static constexpr std::size_t retiredCap = 4096;

    /** Service payload per grant-table node. */
    std::map<CapId, CapGrant> grants;

    /** Reverse index: which grant an attachment redeems. */
    std::map<AttachmentId, CapId> attachmentGrant;

    /**
     * Recently torn-down grants: (holder, issuer) keyed by id, for
     * idempotent CapRevoke replays and a defined "gone, not never
     * existed" answer on redeem-after-revoke. Bounded like the other
     * retired maps.
     */
    std::map<CapId, std::pair<VmId, VmId>> retiredGrants;

    /** Per-manager bound on queued-but-unserved requests. */
    std::size_t maxQueuedPerManager = 64;

    // Interned robustness counters (hyper.stats()).
    sim::StatId busyId = 0;
    sim::StatId timeoutsId = 0;
    sim::StatId orphanDeniedId = 0;
    sim::StatId idempotentDetachesId = 0;
    sim::StatId idempotentRevokesId = 0;
    sim::StatId autoRevokesId = 0;
    sim::StatId attachBuildFaultsId = 0;
    sim::StatId delegationsId = 0;
    sim::StatId redeemsId = 0;
    sim::StatId capRevokesId = 0;
    sim::StatId capExpiriesId = 0;
    sim::StatId grantTeardownsId = 0;
    sim::StatId widenRefusedId = 0;
    sim::StatId grantExhaustedId = 0;

    ExportId nextExportId = 1;
    RequestId nextRequestId = 1;
    AttachmentId nextAttachmentId = 1;
};

} // namespace elisa::core

#endif // ELISA_ELISA_NEGOTIATION_HH
