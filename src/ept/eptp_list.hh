/**
 * @file
 * Per-vCPU EPTP list, the hardware structure consulted by VMFUNC leaf 0.
 *
 * Per the SDM, the VMCS points at one 4 KiB page holding up to 512 EPTP
 * values; `VMFUNC(0, idx)` switches the active EPTP to entry idx if that
 * entry is valid, and causes a VM exit otherwise. Only the hypervisor
 * may write the list — that is exactly what keeps ELISA safe: a guest
 * can only ever reach EPT contexts the hypervisor deliberately
 * installed.
 */

#ifndef ELISA_EPT_EPTP_LIST_HH
#define ELISA_EPT_EPTP_LIST_HH

#include <cstdint>
#include <optional>

#include "base/types.hh"
#include "mem/frame_allocator.hh"
#include "mem/host_memory.hh"

namespace elisa::ept
{

/** Number of entries in an EPTP list page. */
inline constexpr unsigned eptpListSize = 512;

/**
 * A 4 KiB EPTP-list page in simulated physical memory.
 */
class EptpList
{
  public:
    /** Allocate and zero the list page. */
    EptpList(mem::HostMemory &memory, mem::FrameAllocator &allocator);

    /** Frees the list page. */
    ~EptpList();

    EptpList(const EptpList &) = delete;
    EptpList &operator=(const EptpList &) = delete;

    /** HPA of the list page (what the VMCS field would hold). */
    Hpa pageAddr() const { return page; }

    /**
     * Install @p eptp at @p index (hypervisor-only operation).
     * Panics on index >= 512 — the hypervisor is trusted code.
     */
    void set(EptpIndex index, std::uint64_t eptp);

    /** Clear entry @p index (making VMFUNC to it exit). */
    void clear(EptpIndex index);

    /**
     * Read entry @p index as the VMFUNC microcode would.
     * @return the EPTP, or nullopt when the index is out of range or
     *         the entry is invalid (zero).
     */
    std::optional<std::uint64_t> lookup(EptpIndex index) const;

    /**
     * Find the first zero entry.
     * @return its index, or nullopt when the list is full.
     */
    std::optional<EptpIndex> findFree() const;

    /** Find the index holding @p eptp, if any. */
    std::optional<EptpIndex> find(std::uint64_t eptp) const;

    /** Number of valid entries. */
    unsigned validCount() const;

  private:
    mem::HostMemory &mem;
    mem::FrameAllocator &alloc;
    Hpa page;
};

} // namespace elisa::ept

#endif // ELISA_EPT_EPTP_LIST_HH
