#include "ept/eptp_list.hh"

#include "base/logging.hh"

namespace elisa::ept
{

EptpList::EptpList(mem::HostMemory &memory, mem::FrameAllocator &allocator)
    : mem(memory), alloc(allocator)
{
    auto frame = alloc.alloc();
    fatal_if(!frame, "out of physical memory allocating EPTP list");
    page = *frame;
    mem.zero(page, pageSize);
}

EptpList::~EptpList()
{
    alloc.free(page);
}

void
EptpList::set(EptpIndex index, std::uint64_t eptp)
{
    panic_if(index >= eptpListSize, "EPTP list index %u out of range",
             index);
    panic_if(eptp == 0, "installing invalid (zero) EPTP");
    mem.write64(page + index * 8ull, eptp);
}

void
EptpList::clear(EptpIndex index)
{
    panic_if(index >= eptpListSize, "EPTP list index %u out of range",
             index);
    mem.write64(page + index * 8ull, 0);
}

std::optional<std::uint64_t>
EptpList::lookup(EptpIndex index) const
{
    if (index >= eptpListSize)
        return std::nullopt;
    const std::uint64_t eptp = mem.read64(page + index * 8ull);
    if (eptp == 0)
        return std::nullopt;
    return eptp;
}

std::optional<EptpIndex>
EptpList::findFree() const
{
    for (unsigned i = 0; i < eptpListSize; ++i) {
        if (mem.read64(page + i * 8ull) == 0)
            return static_cast<EptpIndex>(i);
    }
    return std::nullopt;
}

std::optional<EptpIndex>
EptpList::find(std::uint64_t eptp) const
{
    for (unsigned i = 0; i < eptpListSize; ++i) {
        if (mem.read64(page + i * 8ull) == eptp)
            return static_cast<EptpIndex>(i);
    }
    return std::nullopt;
}

unsigned
EptpList::validCount() const
{
    unsigned count = 0;
    for (unsigned i = 0; i < eptpListSize; ++i) {
        if (mem.read64(page + i * 8ull) != 0)
            ++count;
    }
    return count;
}

} // namespace elisa::ept
