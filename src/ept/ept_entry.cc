#include "ept/ept_entry.hh"

#include "base/logging.hh"

namespace elisa::ept
{

std::string
permsToString(Perms perms)
{
    std::string s = "---";
    if (permits(perms, Perms::Read))
        s[0] = 'r';
    if (permits(perms, Perms::Write))
        s[1] = 'w';
    if (permits(perms, Perms::Exec))
        s[2] = 'x';
    return s;
}

EptEntry
EptEntry::make(Hpa hpa, Perms perms)
{
    panic_if(!isPageAligned(hpa), "EPT entry address %llx not aligned",
             (unsigned long long)hpa);
    return EptEntry(hpa | static_cast<std::uint64_t>(perms));
}

EptEntry
EptEntry::makeLarge(Hpa hpa, Perms perms)
{
    panic_if((hpa & largePageMask) != 0,
             "large EPT entry address %llx not 2 MiB aligned",
             (unsigned long long)hpa);
    return EptEntry(hpa | (1ull << 7) |
                    static_cast<std::uint64_t>(perms));
}

EptEntry
EptEntry::makeSwapped(std::uint64_t slot, Perms saved_perms)
{
    const std::uint64_t slot_addr = slot << pageShift;
    panic_if((slot_addr & ~0x000ffffffffff000ull) != 0,
             "swap slot %llu does not fit the EPT address field",
             (unsigned long long)slot);
    return EptEntry(
        slot_addr |
        (static_cast<std::uint64_t>(PresState::Swapped) << 57) |
        (static_cast<std::uint64_t>(saved_perms) << 59));
}

EptEntry
EptEntry::makeBallooned(Perms saved_perms)
{
    return EptEntry(
        (static_cast<std::uint64_t>(PresState::Ballooned) << 57) |
        (static_cast<std::uint64_t>(saved_perms) << 59));
}

const char *
presStateToString(PresState state)
{
    switch (state) {
      case PresState::Normal:
        return "normal";
      case PresState::Swapped:
        return "swapped";
      case PresState::Ballooned:
        return "ballooned";
    }
    return "?";
}

} // namespace elisa::ept
