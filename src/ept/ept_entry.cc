#include "ept/ept_entry.hh"

#include "base/logging.hh"

namespace elisa::ept
{

std::string
permsToString(Perms perms)
{
    std::string s = "---";
    if (permits(perms, Perms::Read))
        s[0] = 'r';
    if (permits(perms, Perms::Write))
        s[1] = 'w';
    if (permits(perms, Perms::Exec))
        s[2] = 'x';
    return s;
}

EptEntry
EptEntry::make(Hpa hpa, Perms perms)
{
    panic_if(!isPageAligned(hpa), "EPT entry address %llx not aligned",
             (unsigned long long)hpa);
    return EptEntry(hpa | static_cast<std::uint64_t>(perms));
}

EptEntry
EptEntry::makeLarge(Hpa hpa, Perms perms)
{
    panic_if((hpa & largePageMask) != 0,
             "large EPT entry address %llx not 2 MiB aligned",
             (unsigned long long)hpa);
    return EptEntry(hpa | (1ull << 7) |
                    static_cast<std::uint64_t>(perms));
}

} // namespace elisa::ept
