/**
 * @file
 * Extended Page Table entry encoding/decoding.
 *
 * Entries follow the Intel SDM layout for the bits we model:
 *   bit 0      read permission
 *   bit 1      write permission
 *   bit 2      execute permission
 *   bit 7      large page: this PDE maps a 2 MiB page directly
 *   bit 8      accessed (set by the walker)
 *   bit 9      dirty (set by the walker on write translations)
 *   bits 51:12 host-physical frame number of the next-level table or,
 *              at the leaf level, of the mapped page
 *
 * 4 KiB and 2 MiB pages are modelled; 1 GiB pages are not.
 *
 * Software state (ignored by hardware, bits 52+ are free per the SDM):
 *   bits 58:57 presence state — Normal / Swapped / Ballooned
 *   bits 61:59 saved leaf permissions of a non-present entry
 *
 * A Swapped or Ballooned leaf has all permission bits clear, so the
 * hardware walker faults on it exactly like an empty slot; the address
 * field of a Swapped leaf is reused to hold the backing-store slot id.
 */

#ifndef ELISA_EPT_EPT_ENTRY_HH
#define ELISA_EPT_EPT_ENTRY_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace elisa::ept
{

/** Access permissions of an EPT mapping (bitmask). */
enum class Perms : std::uint8_t
{
    None = 0,
    Read = 1 << 0,
    Write = 1 << 1,
    Exec = 1 << 2,
    RW = Read | Write,
    RX = Read | Exec,
    RWX = Read | Write | Exec,
};

constexpr Perms
operator|(Perms a, Perms b)
{
    return static_cast<Perms>(static_cast<std::uint8_t>(a) |
                              static_cast<std::uint8_t>(b));
}

constexpr Perms
operator&(Perms a, Perms b)
{
    return static_cast<Perms>(static_cast<std::uint8_t>(a) &
                              static_cast<std::uint8_t>(b));
}

/** True if @p have grants everything @p need requires. */
constexpr bool
permits(Perms have, Perms need)
{
    return (static_cast<std::uint8_t>(have) &
            static_cast<std::uint8_t>(need)) ==
           static_cast<std::uint8_t>(need);
}

/** Render permissions as "r-x" style string. */
std::string permsToString(Perms perms);

/**
 * Presence state of a leaf entry (software bits 58:57).
 *
 * Normal    — ordinary SDM semantics: present iff any perm bit is set.
 * Swapped   — page contents live in the backing store; the address
 *             field holds the swap slot id, perms are saved aside.
 * Ballooned — page has been reclaimed with no backing copy (demand
 *             zero): the next touch faults and gets a zero-filled
 *             frame.
 */
enum class PresState : std::uint8_t
{
    Normal = 0,
    Swapped = 1,
    Ballooned = 2,
};

/** Render a presence state. */
const char *presStateToString(PresState state);

/** Successful translation result (GPA -> HPA plus leaf permissions). */
struct Translation
{
    /** Host-physical address corresponding to the queried GPA. */
    Hpa hpa = 0;

    /** Leaf permissions of the mapping. */
    Perms perms = Perms::None;
};

/**
 * One 64-bit EPT entry, as stored in a table page.
 */
class EptEntry
{
  public:
    EptEntry() = default;

    /** Wrap a raw 64-bit entry value. */
    explicit EptEntry(std::uint64_t raw) : value(raw) {}

    /** Build an entry pointing at @p hpa with @p perms. */
    static EptEntry make(Hpa hpa, Perms perms);

    /** Build a 2 MiB large-page leaf entry (bit 7 set). */
    static EptEntry makeLarge(Hpa hpa, Perms perms);

    /**
     * Build a non-present Swapped leaf: the page content lives in
     * backing-store slot @p slot; @p saved_perms are restored when the
     * page is faulted back in. Keeps the large-page bit of the entry
     * shape it replaces out — swapping is 4 KiB-granular.
     */
    static EptEntry makeSwapped(std::uint64_t slot, Perms saved_perms);

    /** Build a non-present Ballooned (demand-zero) leaf. */
    static EptEntry makeBallooned(Perms saved_perms);

    /** Raw 64-bit representation. */
    std::uint64_t raw() const { return value; }

    /** An entry is present when any permission bit is set. */
    bool
    present() const
    {
        return (value & 0x7) != 0;
    }

    /** Permission bits of this entry. */
    Perms
    perms() const
    {
        return static_cast<Perms>(value & 0x7);
    }

    /** Host-physical address this entry points at (bits 51:12). */
    Hpa
    addr() const
    {
        return value & 0x000ffffffffff000ull;
    }

    /** Replace the permission bits, keeping the address. */
    void
    setPerms(Perms perms)
    {
        value = (value & ~std::uint64_t{0x7}) |
                static_cast<std::uint64_t>(perms);
    }

    /** True when bit 7 marks this entry as a 2 MiB leaf. */
    bool isLarge() const { return (value & (1ull << 7)) != 0; }

    /** Accessed flag (bit 8). */
    bool accessed() const { return (value & (1ull << 8)) != 0; }

    /** Dirty flag (bit 9). */
    bool dirty() const { return (value & (1ull << 9)) != 0; }

    /** Set/clear the accessed and dirty flags. */
    void
    setAccessed(bool on)
    {
        value = on ? value | (1ull << 8) : value & ~(1ull << 8);
    }

    void
    setDirty(bool on)
    {
        value = on ? value | (1ull << 9) : value & ~(1ull << 9);
    }

    /** Presence state (software bits 58:57). */
    PresState
    presState() const
    {
        return static_cast<PresState>((value >> presStateShift) & 0x3);
    }

    /** Saved permissions of a Swapped/Ballooned leaf (bits 61:59). */
    Perms
    savedPerms() const
    {
        return static_cast<Perms>((value >> savedPermsShift) & 0x7);
    }

    /** Backing-store slot of a Swapped leaf (stored in the address). */
    std::uint64_t swapSlot() const { return addr() >> pageShift; }

  private:
    static constexpr unsigned presStateShift = 57;
    static constexpr unsigned savedPermsShift = 59;

    std::uint64_t value = 0;
};

/** Size of a 2 MiB large page. */
inline constexpr std::uint64_t largePageSize = 2 * 1024 * 1024;

/** Mask selecting the offset within a large page. */
inline constexpr std::uint64_t largePageMask = largePageSize - 1;

/** Number of levels in the EPT hierarchy (PML4 .. PT). */
inline constexpr unsigned eptLevels = 4;

/** Entries per table page (4096 / 8). */
inline constexpr unsigned eptEntriesPerTable = 512;

/**
 * Index into the table at @p level for @p gpa.
 * Level 3 = PML4 (bits 47:39) ... level 0 = PT (bits 20:12).
 */
constexpr unsigned
eptIndex(Gpa gpa, unsigned level)
{
    return static_cast<unsigned>((gpa >> (pageShift + 9 * level)) & 0x1ff);
}

/** Maximum guest-physical address covered by 4 levels (48 bits). */
inline constexpr Gpa maxGpa = (Gpa{1} << 48) - 1;

} // namespace elisa::ept

#endif // ELISA_EPT_EPT_ENTRY_HH
