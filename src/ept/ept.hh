/**
 * @file
 * One Extended Page Table hierarchy (an "EPT context" in ELISA terms).
 *
 * Table pages are allocated from the machine's FrameAllocator and live
 * inside simulated physical memory, so walks read real entries via
 * HostMemory. An Ept owns its table pages (freed on destruction) but
 * never the data frames it maps.
 */

#ifndef ELISA_EPT_EPT_HH
#define ELISA_EPT_EPT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "ept/ept_entry.hh"
#include "mem/frame_allocator.hh"
#include "mem/host_memory.hh"

namespace elisa::ept
{

/** Kind of access being attempted (for violation reporting). */
enum class Access : std::uint8_t { Read, Write, Exec };

/** Render an access kind. */
const char *accessToString(Access access);

/**
 * Description of a failed translation: the simulated equivalent of the
 * EPT-violation exit qualification.
 */
struct EptViolation
{
    /** Faulting guest-physical address. */
    Gpa gpa = 0;

    /** The attempted access. */
    Access access = Access::Read;

    /** Permissions present at the leaf (None if not mapped). */
    Perms present = Perms::None;

    /** True if the walk ended on a non-present entry. */
    bool notMapped = false;

    /** Human-readable description. */
    std::string describe() const;
};

/**
 * The hardware page walker: translate @p gpa under the hierarchy rooted
 * at @p eptp_value, reading table entries straight out of physical
 * memory. Used by the CPU's access path (cpu::GuestView), which only
 * knows the active EPTP value, not the owning Ept object. Handles both
 * 4 KiB leaves and 2 MiB large-page leaves.
 *
 * @return the translation, or nullopt when the walk hits a non-present
 *         entry.
 */
std::optional<Translation>
hardwareWalk(const mem::HostMemory &memory, std::uint64_t eptp_value,
             Gpa gpa);

/**
 * Walk as the hardware would for a committed access: additionally set
 * the leaf's accessed flag, and its dirty flag when @p is_write.
 * (We model A/D at the leaf only, not at intermediate levels.)
 */
std::optional<Translation>
hardwareWalkAd(mem::HostMemory &memory, std::uint64_t eptp_value,
               Gpa gpa, bool is_write);

/**
 * A 4-level EPT hierarchy.
 */
class Ept
{
  public:
    /**
     * Create an empty hierarchy: allocates the root (PML4) page.
     * @param memory the machine's physical memory.
     * @param allocator frame allocator for table pages.
     */
    Ept(mem::HostMemory &memory, mem::FrameAllocator &allocator);

    /** Frees every table page of the hierarchy. */
    ~Ept();

    Ept(const Ept &) = delete;
    Ept &operator=(const Ept &) = delete;

    /**
     * The EPT pointer for this hierarchy, SDM-style: root table HPA
     * plus low configuration bits (WB memory type, 4-level walk).
     */
    std::uint64_t eptp() const;

    /** Recover the root-table HPA from an EPTP value. */
    static Hpa rootOfEptp(std::uint64_t eptp_value);

    /**
     * Map the 4 KiB page at @p gpa to @p hpa with @p perms.
     * @return false if @p gpa is already mapped (mapping unchanged).
     */
    bool map(Gpa gpa, Hpa hpa, Perms perms);

    /**
     * Map a 2 MiB large page at @p gpa (both addresses 2 MiB aligned).
     * @return false if anything already occupies the slot.
     */
    bool mapLarge(Gpa gpa, Hpa hpa, Perms perms);

    /**
     * Map a range using 2 MiB pages wherever both addresses are
     * large-aligned and at least 2 MiB remain, 4 KiB pages elsewhere.
     * Same all-or-nothing contract as mapRange().
     * @return false if any covered page is already mapped.
     */
    bool mapRangeAuto(Gpa gpa, Hpa hpa, std::uint64_t len, Perms perms);

    /**
     * Map a narrowed window of a larger object: the @p len bytes at
     * byte @p window_offset into the object based at @p obj_hpa appear
     * at @p gpa. Validates that the window is page-aligned and lies
     * entirely inside the @p obj_bytes-byte object — a delegated grant
     * must never map frames beyond what its parent could reach — then
     * maps with mapRangeAuto() (2 MiB pages wherever alignment still
     * allows).
     * @return false on a malformed window or a mapping collision.
     */
    bool mapWindow(Gpa gpa, Hpa obj_hpa, std::uint64_t obj_bytes,
                   std::uint64_t window_offset, std::uint64_t len,
                   Perms perms);

    /**
     * Map a multi-page range (both addresses page aligned, @p len a
     * multiple of the page size). Panics mid-way mappings never occur:
     * the whole range is validated as unmapped first.
     * @return false if any page of the range was already mapped.
     */
    bool mapRange(Gpa gpa, Hpa hpa, std::uint64_t len, Perms perms);

    /**
     * Remove the mapping of the page at @p gpa.
     * @return false if it was not mapped.
     */
    bool unmap(Gpa gpa);

    /** Unmap every page of a range; returns pages actually unmapped. */
    std::uint64_t unmapRange(Gpa gpa, std::uint64_t len);

    /**
     * Change the permissions of an existing mapping.
     * @return false if @p gpa is not mapped.
     */
    bool protect(Gpa gpa, Perms perms);

    /**
     * Demote the present 4 KiB leaf at @p gpa to a non-present Swapped
     * leaf recording backing-store slot @p slot_id; the current leaf
     * permissions are saved aside for markPresent(). Large-page leaves
     * are never swapped (the pager maps managed ranges 4 KiB-granular).
     * The caller must INVEPT afterwards.
     * @return false if @p gpa has no present 4 KiB leaf.
     */
    bool markSwapped(Gpa gpa, std::uint64_t slot_id);

    /**
     * Demote the present 4 KiB leaf at @p gpa to a Ballooned
     * (demand-zero) leaf. Same contract as markSwapped().
     */
    bool markBallooned(Gpa gpa);

    /**
     * Promote a Swapped/Ballooned leaf back to a present mapping of
     * @p hpa, restoring the saved permissions.
     * @return false if the leaf is not in a non-present paged state.
     */
    bool markPresent(Gpa gpa, Hpa hpa);

    /** Presence state of the leaf at @p gpa (Normal when unmapped). */
    PresState entryState(Gpa gpa) const;

    /** Raw leaf entry at @p gpa, if the walk reaches one. */
    std::optional<EptEntry> leafEntry(Gpa gpa) const;

    /**
     * Read and clear the accessed flag of the present leaf at @p gpa
     * (the clock reclaimer's second-chance test).
     * @return the previous accessed flag; false when not present.
     */
    bool accessedAndClear(Gpa gpa);

    /**
     * Walk the hierarchy for @p gpa (no permission check).
     * @return the translation, or the violation that a @p access
     *         attempt would raise.
     */
    std::optional<Translation> translate(Gpa gpa) const;

    /**
     * Full translate-and-check, as the hardware would perform for an
     * @p access at @p gpa. On failure the violation is stored in
     * @p violation (if non-null).
     */
    std::optional<Translation>
    translateFor(Gpa gpa, Access access, EptViolation *violation) const;

    /**
     * Scan @p len bytes from @p gpa for leaves with the dirty flag
     * set; returns (page base, page size) pairs. When @p clear is
     * true the dirty flags are reset (the caller must INVEPT).
     */
    std::vector<std::pair<Gpa, std::uint64_t>>
    dirtyRanges(Gpa gpa, std::uint64_t len, bool clear);

    /**
     * Number of leaf *entries* currently mapped (a 2 MiB page counts
     * as one entry; see mappedBytes() for coverage).
     */
    std::uint64_t mappedPages() const { return mappedCount; }

    /** Bytes of guest-physical space covered by leaf mappings. */
    std::uint64_t mappedBytes() const { return coveredBytes; }

    /** Number of table pages currently allocated (incl. the root). */
    std::uint64_t tablePages() const { return tableCount; }

    /** Generation counter, bumped on every unmap/protect (TLB epochs). */
    std::uint64_t generation() const { return gen; }

  private:
    /** Outcome of an internal walk: the leaf slot and its level. */
    struct LeafSlot
    {
        Hpa slot;       ///< HPA of the entry slot
        unsigned level; ///< 0 = PTE, 1 = large-page PDE
    };

    /**
     * Walk to the leaf entry slot for @p gpa. Stops at level 1 when a
     * large-page leaf is installed there.
     * @param allocate create missing intermediate tables when true.
     * @param stop_level walk no deeper than this level (1 when
     *        installing a large page, 0 otherwise).
     * @return the slot, or nullopt when a level is missing and
     *         @p allocate is false (or allocation failed).
     */
    std::optional<LeafSlot> walkToLeaf(Gpa gpa, bool allocate,
                                       unsigned stop_level = 0);

    /** Const walk (never allocates). */
    std::optional<LeafSlot> walkToLeaf(Gpa gpa) const;

    /**
     * True when the leaf slot for @p gpa holds any entry at all —
     * including non-present Swapped/Ballooned leaves, which still own
     * their GPA slot and must not be silently overwritten by map().
     */
    bool occupied(Gpa gpa) const;

    /** Recursively free table pages below @p table at @p level. */
    void freeTables(Hpa table, unsigned level);

    mem::HostMemory &mem;
    mem::FrameAllocator &alloc;
    Hpa root;
    std::uint64_t mappedCount = 0;
    std::uint64_t coveredBytes = 0;
    std::uint64_t tableCount = 0;
    std::uint64_t gen = 0;
};

} // namespace elisa::ept

#endif // ELISA_EPT_EPT_HH
