/**
 * @file
 * EPTP-tagged translation cache.
 *
 * Models the guest-physical mappings cached by the hardware TLB. Entries
 * are tagged with the EPTP they were filled under, mirroring VPID/EPTRTA
 * tagging on real CPUs: a VMFUNC EPTP switch therefore does NOT flush
 * the cache (that is part of why it is cheap), while remap/protect
 * operations require an explicit INVEPT-equivalent flush from the
 * hypervisor.
 *
 * The cache exposes an *epoch* counter to the CPU's L0 micro-cache
 * (cpu::GuestView): any event after which a privately remembered
 * translation might no longer match what a Tlb lookup would return —
 * a fill (possible eviction), a flush (INVEPT), or an EPTP context
 * switch — bumps the epoch, so L0 entries stamped with an older epoch
 * can never be served stale.
 */

#ifndef ELISA_EPT_TLB_HH
#define ELISA_EPT_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.hh"
#include "ept/ept_entry.hh"
#include "sim/stats.hh"

namespace elisa::ept
{

/**
 * Direct-mapped, EPTP-tagged translation cache.
 */
class Tlb
{
  public:
    /** @param entry_count number of entries; must be a power of two. */
    explicit Tlb(std::size_t entry_count = 1024);

    /**
     * Mirror hit/miss/flush counts into @p set as the interned
     * counters "tlb_hit" / "tlb_miss" / "tlb_flush" (the per-vCPU
     * StatSet calls this once at construction).
     */
    void attachStats(sim::StatSet &set);

    /**
     * Look up the translation of the page containing @p gpa under
     * @p eptp. Counts a hit or miss.
     */
    std::optional<Translation> lookup(std::uint64_t eptp, Gpa gpa);

    /**
     * Install a translation (called after a successful walk).
     * Bumps the epoch: the fill may have evicted another entry.
     * @param dirty_known true when the walk already set the leaf's
     *        dirty flag (a write access), so later writes through
     *        this entry need no A/D update walk.
     */
    void fill(std::uint64_t eptp, Gpa gpa, const Translation &xlat,
              bool dirty_known = false);

    /** Did the cached entry's fill already propagate the dirty flag? */
    bool dirtyKnown(std::uint64_t eptp, Gpa gpa) const;

    /** Record that the dirty flag is now set in the leaf. */
    void setDirtyKnown(std::uint64_t eptp, Gpa gpa);

    /** Drop every entry (INVEPT global equivalent). */
    void flushAll();

    /** Drop entries filled under @p eptp (INVEPT single-context). */
    void flushEptp(std::uint64_t eptp);

    /** Statistics. */
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    std::uint64_t flushes() const { return flushCount; }

    /**
     * Invalidation epoch for L0 micro-caches. A remembered
     * translation is only as fresh as the epoch it was stamped with:
     * serve it again iff the epoch still matches.
     */
    std::uint64_t epoch() const { return epochCount; }

    /**
     * Bump the epoch without touching entries. Called by the vCPU on
     * VMFUNC / EPTP activation: the Tlb itself survives the switch
     * (EPTP-tagged), but L0 caches are conservatively invalidated.
     */
    void bumpEpoch() { ++epochCount; }

    /** Number of currently valid entries (for tests). */
    std::size_t validCount() const;

  private:
    struct Entry
    {
        bool valid = false;
        bool dirtyKnown = false;
        std::uint64_t eptp = 0;
        Gpa gpaPage = 0;
        Hpa hpaPage = 0;
        Perms perms = Perms::None;
    };

    std::size_t indexOf(std::uint64_t eptp, Gpa gpa) const;

    std::vector<Entry> entries;
    std::size_t indexMask;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t flushCount = 0;
    std::uint64_t epochCount = 0;

    /** Mirrored interned counters (null when not attached). */
    sim::StatSet *stats = nullptr;
    sim::StatId hitId = 0;
    sim::StatId missId = 0;
    sim::StatId flushId = 0;
};

} // namespace elisa::ept

#endif // ELISA_EPT_TLB_HH
