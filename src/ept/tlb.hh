/**
 * @file
 * EPTP-tagged translation cache.
 *
 * Models the guest-physical mappings cached by the hardware TLB. Entries
 * are tagged with the EPTP they were filled under, mirroring VPID/EPTRTA
 * tagging on real CPUs: a VMFUNC EPTP switch therefore does NOT flush
 * the cache (that is part of why it is cheap), while remap/protect
 * operations require an explicit INVEPT-equivalent flush from the
 * hypervisor.
 */

#ifndef ELISA_EPT_TLB_HH
#define ELISA_EPT_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.hh"
#include "ept/ept_entry.hh"

namespace elisa::ept
{

/**
 * Direct-mapped, EPTP-tagged translation cache.
 */
class Tlb
{
  public:
    /** @param entry_count number of entries; must be a power of two. */
    explicit Tlb(std::size_t entry_count = 1024);

    /**
     * Look up the translation of the page containing @p gpa under
     * @p eptp. Counts a hit or miss.
     */
    std::optional<Translation> lookup(std::uint64_t eptp, Gpa gpa);

    /**
     * Install a translation (called after a successful walk).
     * @param dirty_known true when the walk already set the leaf's
     *        dirty flag (a write access), so later writes through
     *        this entry need no A/D update walk.
     */
    void fill(std::uint64_t eptp, Gpa gpa, const Translation &xlat,
              bool dirty_known = false);

    /** Did the cached entry's fill already propagate the dirty flag? */
    bool dirtyKnown(std::uint64_t eptp, Gpa gpa) const;

    /** Record that the dirty flag is now set in the leaf. */
    void setDirtyKnown(std::uint64_t eptp, Gpa gpa);

    /** Drop every entry (INVEPT global equivalent). */
    void flushAll();

    /** Drop entries filled under @p eptp (INVEPT single-context). */
    void flushEptp(std::uint64_t eptp);

    /** Statistics. */
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }

    /** Number of currently valid entries (for tests). */
    std::size_t validCount() const;

  private:
    struct Entry
    {
        bool valid = false;
        bool dirtyKnown = false;
        std::uint64_t eptp = 0;
        Gpa gpaPage = 0;
        Hpa hpaPage = 0;
        Perms perms = Perms::None;
    };

    std::size_t indexOf(std::uint64_t eptp, Gpa gpa) const;

    std::vector<Entry> entries;
    std::size_t indexMask;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace elisa::ept

#endif // ELISA_EPT_TLB_HH
