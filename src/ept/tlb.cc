#include "ept/tlb.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace elisa::ept
{

Tlb::Tlb(std::size_t entry_count)
    : entries(entry_count), indexMask(entry_count - 1)
{
    fatal_if(!isPowerOf2(entry_count),
             "TLB entry count must be a power of two");
}

void
Tlb::attachStats(sim::StatSet &set)
{
    stats = &set;
    hitId = set.id("tlb_hit");
    missId = set.id("tlb_miss");
    flushId = set.id("tlb_flush");
}

std::size_t
Tlb::indexOf(std::uint64_t eptp, Gpa gpa) const
{
    // Mix the page number with the EPTP so contexts do not collide on
    // identical guest addresses (common: all contexts map GPA 0 region).
    std::uint64_t key = (gpa >> pageShift) ^ (eptp >> pageShift) * 0x9e37ull;
    return static_cast<std::size_t>(key) & indexMask;
}

std::optional<Translation>
Tlb::lookup(std::uint64_t eptp, Gpa gpa)
{
    const Gpa page = pageAlignDown(gpa);
    Entry &e = entries[indexOf(eptp, gpa)];
    if (e.valid && e.eptp == eptp && e.gpaPage == page) {
        ++hitCount;
        if (stats)
            stats->inc(hitId);
        return Translation{e.hpaPage | (gpa & pageMask), e.perms};
    }
    ++missCount;
    if (stats)
        stats->inc(missId);
    return std::nullopt;
}

void
Tlb::fill(std::uint64_t eptp, Gpa gpa, const Translation &xlat,
          bool dirty_known)
{
    Entry &e = entries[indexOf(eptp, gpa)];
    e.valid = true;
    e.dirtyKnown = dirty_known;
    e.eptp = eptp;
    e.gpaPage = pageAlignDown(gpa);
    e.hpaPage = pageAlignDown(xlat.hpa);
    e.perms = xlat.perms;
    // The slot may have held another page's translation: L0 copies of
    // the evicted entry must not survive it.
    ++epochCount;
}

bool
Tlb::dirtyKnown(std::uint64_t eptp, Gpa gpa) const
{
    const Entry &e = entries[indexOf(eptp, gpa)];
    return e.valid && e.eptp == eptp &&
           e.gpaPage == pageAlignDown(gpa) && e.dirtyKnown;
}

void
Tlb::setDirtyKnown(std::uint64_t eptp, Gpa gpa)
{
    Entry &e = entries[indexOf(eptp, gpa)];
    if (e.valid && e.eptp == eptp && e.gpaPage == pageAlignDown(gpa))
        e.dirtyKnown = true;
}

void
Tlb::flushAll()
{
    for (auto &e : entries)
        e.valid = false;
    ++flushCount;
    ++epochCount;
    if (stats)
        stats->inc(flushId);
}

void
Tlb::flushEptp(std::uint64_t eptp)
{
    for (auto &e : entries) {
        if (e.valid && e.eptp == eptp)
            e.valid = false;
    }
    ++flushCount;
    ++epochCount;
    if (stats)
        stats->inc(flushId);
}

std::size_t
Tlb::validCount() const
{
    std::size_t count = 0;
    for (const auto &e : entries)
        count += e.valid ? 1 : 0;
    return count;
}

} // namespace elisa::ept
