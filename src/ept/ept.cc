#include "ept/ept.hh"

#include "base/logging.hh"

namespace elisa::ept
{

namespace
{

/**
 * EPTP low bits per SDM: memory type WB (6) in bits 2:0, page-walk
 * length minus one (3) in bits 5:3.
 */
constexpr std::uint64_t eptpConfigBits = 0x6 | (0x3 << 3);

/** Core translation walk shared by the const and A/D-updating paths. */
struct RawWalk
{
    Hpa slot = 0;       ///< HPA of the leaf entry slot
    EptEntry entry;     ///< the leaf entry
    unsigned level = 0; ///< 0 = 4 KiB leaf, 1 = 2 MiB leaf
};

std::optional<RawWalk>
rawWalk(const mem::HostMemory &memory, std::uint64_t eptp_value, Gpa gpa)
{
    if (gpa > maxGpa)
        return std::nullopt;
    Hpa table = Ept::rootOfEptp(eptp_value);
    for (unsigned level = eptLevels - 1; level > 0; --level) {
        const Hpa slot = table + eptIndex(gpa, level) * 8;
        EptEntry entry(memory.read64(slot));
        if (!entry.present())
            return std::nullopt;
        if (level == 1 && entry.isLarge())
            return RawWalk{slot, entry, 1};
        table = entry.addr();
    }
    const Hpa slot = table + eptIndex(gpa, 0) * 8;
    EptEntry leaf(memory.read64(slot));
    if (!leaf.present())
        return std::nullopt;
    return RawWalk{slot, leaf, 0};
}

Translation
toTranslation(const RawWalk &walk, Gpa gpa)
{
    const std::uint64_t offset_mask =
        walk.level == 1 ? largePageMask : pageMask;
    return Translation{walk.entry.addr() | (gpa & offset_mask),
                       walk.entry.perms()};
}

} // anonymous namespace

std::optional<Translation>
hardwareWalk(const mem::HostMemory &memory, std::uint64_t eptp_value,
             Gpa gpa)
{
    auto walk = rawWalk(memory, eptp_value, gpa);
    if (!walk)
        return std::nullopt;
    return toTranslation(*walk, gpa);
}

std::optional<Translation>
hardwareWalkAd(mem::HostMemory &memory, std::uint64_t eptp_value,
               Gpa gpa, bool is_write)
{
    auto walk = rawWalk(memory, eptp_value, gpa);
    if (!walk)
        return std::nullopt;
    EptEntry entry = walk->entry;
    if (!entry.accessed() || (is_write && !entry.dirty())) {
        entry.setAccessed(true);
        if (is_write)
            entry.setDirty(true);
        memory.write64(walk->slot, entry.raw());
    }
    return toTranslation(*walk, gpa);
}

const char *
accessToString(Access access)
{
    switch (access) {
      case Access::Read:
        return "read";
      case Access::Write:
        return "write";
      case Access::Exec:
        return "exec";
    }
    return "?";
}

std::string
EptViolation::describe() const
{
    return detail::format("EPT violation: %s at GPA %llx (%s)",
                          accessToString(access),
                          (unsigned long long)gpa,
                          notMapped
                              ? "not mapped"
                              : permsToString(present).c_str());
}

Ept::Ept(mem::HostMemory &memory, mem::FrameAllocator &allocator)
    : mem(memory), alloc(allocator)
{
    auto frame = alloc.alloc();
    fatal_if(!frame, "out of physical memory allocating EPT root");
    root = *frame;
    mem.zero(root, pageSize);
    tableCount = 1;
}

Ept::~Ept()
{
    freeTables(root, eptLevels - 1);
}

void
Ept::freeTables(Hpa table, unsigned level)
{
    if (level > 0) {
        for (unsigned i = 0; i < eptEntriesPerTable; ++i) {
            EptEntry entry(mem.read64(table + i * 8));
            // Large-page leaves at level 1 point at data, not tables.
            if (entry.present() && !(level == 1 && entry.isLarge()))
                freeTables(entry.addr(), level - 1);
        }
    }
    alloc.free(table);
}

std::uint64_t
Ept::eptp() const
{
    return root | eptpConfigBits;
}

Hpa
Ept::rootOfEptp(std::uint64_t eptp_value)
{
    return eptp_value & ~pageMask;
}

std::optional<Ept::LeafSlot>
Ept::walkToLeaf(Gpa gpa, bool allocate, unsigned stop_level)
{
    panic_if(gpa > maxGpa, "GPA %llx beyond 48-bit space",
             (unsigned long long)gpa);
    Hpa table = root;
    for (unsigned level = eptLevels - 1; level > stop_level; --level) {
        const Hpa slot = table + eptIndex(gpa, level) * 8;
        EptEntry entry(mem.read64(slot));
        if (level == 1 && entry.present() && entry.isLarge())
            return LeafSlot{slot, 1};
        if (!entry.present()) {
            if (!allocate)
                return std::nullopt;
            auto frame = alloc.alloc();
            if (!frame)
                return std::nullopt;
            mem.zero(*frame, pageSize);
            ++tableCount;
            // Intermediate entries carry full permissions; access
            // control is enforced at the leaf (simplified from the
            // SDM's AND-of-all-levels semantics, see DESIGN.md).
            entry = EptEntry::make(*frame, Perms::RWX);
            mem.write64(slot, entry.raw());
        }
        table = entry.addr();
    }
    return LeafSlot{table + eptIndex(gpa, stop_level) * 8, stop_level};
}

std::optional<Ept::LeafSlot>
Ept::walkToLeaf(Gpa gpa) const
{
    return const_cast<Ept *>(this)->walkToLeaf(gpa, false);
}

bool
Ept::map(Gpa gpa, Hpa hpa, Perms perms)
{
    panic_if(!isPageAligned(gpa) || !isPageAligned(hpa),
             "EPT map of unaligned address (gpa=%llx hpa=%llx)",
             (unsigned long long)gpa, (unsigned long long)hpa);
    panic_if(perms == Perms::None, "EPT map with empty permissions");
    panic_if(!mem.contains(hpa, pageSize),
             "EPT map target outside physical memory");

    auto slot = walkToLeaf(gpa, true);
    fatal_if(!slot, "out of physical memory for EPT tables");
    if (slot->level == 1)
        return false; // covered by a large page already
    EptEntry existing(mem.read64(slot->slot));
    if (existing.raw() != 0)
        return false; // present, or a swapped/ballooned leaf
    mem.write64(slot->slot, EptEntry::make(hpa, perms).raw());
    ++mappedCount;
    coveredBytes += pageSize;
    return true;
}

bool
Ept::mapLarge(Gpa gpa, Hpa hpa, Perms perms)
{
    panic_if((gpa & largePageMask) != 0 || (hpa & largePageMask) != 0,
             "EPT mapLarge of unaligned address (gpa=%llx hpa=%llx)",
             (unsigned long long)gpa, (unsigned long long)hpa);
    panic_if(perms == Perms::None, "EPT map with empty permissions");
    panic_if(!mem.contains(hpa, largePageSize),
             "EPT mapLarge target outside physical memory");

    auto slot = walkToLeaf(gpa, true, /*stop_level=*/1);
    fatal_if(!slot, "out of physical memory for EPT tables");
    EptEntry existing(mem.read64(slot->slot));
    if (existing.raw() != 0)
        return false; // PT already hanging there, or another leaf
    mem.write64(slot->slot, EptEntry::makeLarge(hpa, perms).raw());
    ++mappedCount;
    coveredBytes += largePageSize;
    return true;
}

bool
Ept::mapRange(Gpa gpa, Hpa hpa, std::uint64_t len, Perms perms)
{
    panic_if(!isPageAligned(len) || len == 0,
             "EPT mapRange length %llx not page-sized",
             (unsigned long long)len);
    // Validate first so a conflict cannot leave a partial mapping.
    for (std::uint64_t off = 0; off < len; off += pageSize) {
        if (occupied(gpa + off))
            return false;
    }
    for (std::uint64_t off = 0; off < len; off += pageSize) {
        const bool ok = map(gpa + off, hpa + off, perms);
        panic_if(!ok, "mapRange collision after validation");
    }
    return true;
}

bool
Ept::mapRangeAuto(Gpa gpa, Hpa hpa, std::uint64_t len, Perms perms)
{
    panic_if(!isPageAligned(len) || len == 0,
             "EPT mapRangeAuto length %llx not page-sized",
             (unsigned long long)len);
    for (std::uint64_t off = 0; off < len; off += pageSize) {
        if (occupied(gpa + off))
            return false;
    }
    std::uint64_t off = 0;
    while (off < len) {
        const Gpa g = gpa + off;
        const Hpa h = hpa + off;
        const bool large_ok = ((g | h) & largePageMask) == 0 &&
                              len - off >= largePageSize;
        if (large_ok) {
            const bool ok = mapLarge(g, h, perms);
            panic_if(!ok, "mapRangeAuto large collision");
            off += largePageSize;
        } else {
            const bool ok = map(g, h, perms);
            panic_if(!ok, "mapRangeAuto collision after validation");
            off += pageSize;
        }
    }
    return true;
}

bool
Ept::mapWindow(Gpa gpa, Hpa obj_hpa, std::uint64_t obj_bytes,
               std::uint64_t window_offset, std::uint64_t len,
               Perms perms)
{
    if (!isPageAligned(window_offset) || !isPageAligned(len) ||
        len == 0) {
        return false;
    }
    // Overflow-safe containment check: the window must end inside the
    // object.
    if (window_offset > obj_bytes || len > obj_bytes - window_offset)
        return false;
    return mapRangeAuto(gpa, obj_hpa + window_offset, len, perms);
}

bool
Ept::unmap(Gpa gpa)
{
    auto slot = walkToLeaf(gpa);
    if (!slot)
        return false;
    EptEntry entry(mem.read64(slot->slot));
    // Swapped/Ballooned leaves still own their slot and are unmapped
    // like present ones; freeing their backing-store slot is the
    // pager's job, not the page table's.
    if (entry.raw() == 0)
        return false;
    mem.write64(slot->slot, 0);
    --mappedCount;
    coveredBytes -= slot->level == 1 ? largePageSize : pageSize;
    ++gen;
    return true;
}

std::uint64_t
Ept::unmapRange(Gpa gpa, std::uint64_t len)
{
    std::uint64_t removed = 0;
    for (std::uint64_t off = 0; off < len; off += pageSize) {
        if (unmap(gpa + off))
            ++removed;
    }
    return removed;
}

bool
Ept::protect(Gpa gpa, Perms perms)
{
    panic_if(perms == Perms::None,
             "use unmap() instead of protect(None)");
    auto slot = walkToLeaf(gpa);
    if (!slot)
        return false;
    EptEntry entry(mem.read64(slot->slot));
    if (!entry.present())
        return false;
    entry.setPerms(perms);
    mem.write64(slot->slot, entry.raw());
    ++gen;
    return true;
}

bool
Ept::occupied(Gpa gpa) const
{
    auto slot = walkToLeaf(gpa);
    if (!slot)
        return false;
    return mem.read64(slot->slot) != 0;
}

bool
Ept::markSwapped(Gpa gpa, std::uint64_t slot_id)
{
    auto slot = walkToLeaf(gpa);
    if (!slot || slot->level != 0)
        return false;
    EptEntry entry(mem.read64(slot->slot));
    if (!entry.present())
        return false;
    mem.write64(slot->slot,
                EptEntry::makeSwapped(slot_id, entry.perms()).raw());
    ++gen;
    return true;
}

bool
Ept::markBallooned(Gpa gpa)
{
    auto slot = walkToLeaf(gpa);
    if (!slot || slot->level != 0)
        return false;
    EptEntry entry(mem.read64(slot->slot));
    if (!entry.present())
        return false;
    mem.write64(slot->slot,
                EptEntry::makeBallooned(entry.perms()).raw());
    ++gen;
    return true;
}

bool
Ept::markPresent(Gpa gpa, Hpa hpa)
{
    panic_if(!isPageAligned(hpa), "markPresent of unaligned HPA %llx",
             (unsigned long long)hpa);
    auto slot = walkToLeaf(gpa);
    if (!slot || slot->level != 0)
        return false;
    EptEntry entry(mem.read64(slot->slot));
    if (entry.presState() == PresState::Normal)
        return false;
    // The fresh mapping starts with clear A/D flags; the faulting
    // access re-walks and sets them like any first touch.
    mem.write64(slot->slot,
                EptEntry::make(hpa, entry.savedPerms()).raw());
    return true;
}

PresState
Ept::entryState(Gpa gpa) const
{
    auto slot = walkToLeaf(gpa);
    if (!slot)
        return PresState::Normal;
    return EptEntry(mem.read64(slot->slot)).presState();
}

std::optional<EptEntry>
Ept::leafEntry(Gpa gpa) const
{
    auto slot = walkToLeaf(gpa);
    if (!slot)
        return std::nullopt;
    return EptEntry(mem.read64(slot->slot));
}

bool
Ept::accessedAndClear(Gpa gpa)
{
    auto slot = walkToLeaf(gpa);
    if (!slot)
        return false;
    EptEntry entry(mem.read64(slot->slot));
    if (!entry.present())
        return false;
    const bool was = entry.accessed();
    if (was) {
        entry.setAccessed(false);
        mem.write64(slot->slot, entry.raw());
    }
    return was;
}

std::optional<Translation>
Ept::translate(Gpa gpa) const
{
    return hardwareWalk(mem, eptp(), gpa);
}

std::optional<Translation>
Ept::translateFor(Gpa gpa, Access access, EptViolation *violation) const
{
    auto result = translate(gpa);
    Perms need = Perms::Read;
    switch (access) {
      case Access::Read:
        need = Perms::Read;
        break;
      case Access::Write:
        need = Perms::Write;
        break;
      case Access::Exec:
        need = Perms::Exec;
        break;
    }
    if (result && permits(result->perms, need))
        return result;
    if (violation) {
        violation->gpa = gpa;
        violation->access = access;
        violation->present = result ? result->perms : Perms::None;
        violation->notMapped = !result.has_value();
    }
    return std::nullopt;
}

std::vector<std::pair<Gpa, std::uint64_t>>
Ept::dirtyRanges(Gpa gpa, std::uint64_t len, bool clear)
{
    std::vector<std::pair<Gpa, std::uint64_t>> dirty;
    std::uint64_t off = 0;
    bool cleared_any = false;
    while (off < len) {
        const Gpa g = gpa + off;
        auto slot = walkToLeaf(g);
        if (!slot) {
            off += pageSize;
            continue;
        }
        EptEntry entry(mem.read64(slot->slot));
        const std::uint64_t span =
            slot->level == 1 ? largePageSize : pageSize;
        if (entry.present() && entry.dirty()) {
            const Gpa base = slot->level == 1
                                 ? (g & ~largePageMask)
                                 : pageAlignDown(g);
            dirty.emplace_back(base, span);
            if (clear) {
                entry.setDirty(false);
                mem.write64(slot->slot, entry.raw());
                cleared_any = true;
            }
        }
        // Jump to the end of this leaf's coverage.
        const std::uint64_t leaf_end =
            slot->level == 1 ? ((g & ~largePageMask) + largePageSize)
                             : (pageAlignDown(g) + pageSize);
        off = leaf_end - gpa;
    }
    if (cleared_any)
        ++gen; // cached (dirty-known) translations must be dropped
    return dirty;
}

} // namespace elisa::ept
