/**
 * @file
 * The monitor guest: an ordinary VM that scrapes the machine's
 * telemetry exit-lessly and re-exports it byte-identically.
 *
 * This is the paper's sharing story applied to observability. The
 * manager VM exports the publication region (hv::TelemetryPublisher's
 * seqlock-fronted double buffer) as an ELISA shared object; the
 * monitor attaches like any client and scrapes over the gate — two
 * header reads, a chunked copy through the exchange buffer, one more
 * header read to close the seqlock — with zero VM exits. For
 * comparison the monitor also speaks the two baseline schemes: a
 * VMCALL marshalling service (one exit per scrape) and a direct-mapped
 * ivshmem window (fast, unisolated).
 *
 * Whatever the scheme, the scraped bytes parse into a
 * sim::SnapshotView whose prometheus()/csvRow() renderers are the very
 * functions the host-side Metrics exporters use — so the monitor's
 * re-export equals the host's export byte-for-byte, which the CI
 * scrape-diff job asserts.
 */

#ifndef ELISA_GUEST_MONITOR_HH
#define ELISA_GUEST_MONITOR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "hv/telemetry_publisher.hh"
#include "sim/slo.hh"
#include "sim/telemetry.hh"

namespace elisa::guest
{

/** Shared-function ids of a telemetry-region export. */
enum TelemetryFn : unsigned
{
    /** (offset) -> little-endian u64 at region[offset]. */
    telemetryFnRead64 = 0,

    /** (src_off, len, dst_off) -> copy region bytes into the
     *  attachment's exchange buffer; returns len. */
    telemetryFnCopy = 1,
};

/**
 * Export the publisher's region from @p manager as an ELISA shared
 * object and register its backing memory as a publisher sink. The
 * object is exported read-only: a scraper cannot corrupt the region
 * (contrast the ivshmem mirror, where it can — see the isolation
 * tests).
 *
 * @param slot_bytes per-slot snapshot capacity of the new sink.
 * @return the export descriptor, or nullopt when the manager VM is out
 *         of RAM or the export was refused.
 */
std::optional<core::ElisaManager::Exported>
exportTelemetryRegion(core::ElisaManager &manager,
                      hv::TelemetryPublisher &publisher,
                      const core::ExportKey &key,
                      std::uint32_t slot_bytes);

/**
 * The monitor guest runtime, bound to one vCPU of an ordinary VM.
 * Scrape methods return false when no *complete* snapshot could be
 * obtained (nothing published yet, seqlock retries exhausted, or a
 * parse rejection); the previous snapshot stays current.
 */
class MonitorGuest
{
  public:
    MonitorGuest(hv::Vm &vm, core::ElisaService &service,
                 unsigned vcpu_index = 0);

    /** Attach to a telemetry export (negotiated via @p manager). */
    bool attach(const core::ExportKey &key,
                core::ElisaManager &manager);

    bool attached() const { return gate.valid(); }

    /**
     * Exit-less scrape over the ELISA gate: seqlock check, chunked
     * copy of the active slot through the exchange buffer, re-check;
     * up to @p max_retries full retries when a publication races.
     */
    bool scrape(unsigned max_retries = 8);

    /**
     * Exit-ful baseline: one VMCALL to the publisher's scrape service
     * (hv::TelemetryPublisher::registerScrapeHypercall), which
     * marshals the latest snapshot into this guest's memory.
     */
    bool scrapeVmcall(std::uint64_t scrape_nr);

    /**
     * Direct-mapped baseline: read the region straight out of an
     * ivshmem window attached at @p region_gpa in this VM's default
     * context (same seqlock protocol, plain loads).
     */
    bool scrapeIvshmem(Gpa region_gpa, unsigned max_retries = 8);

    /** The most recent successfully scraped snapshot. */
    const sim::SnapshotView &snapshot() const { return snap; }

    /** True once any scrape succeeded. */
    bool hasSnapshot() const { return snap.ok(); }

    /** Successful scrapes (any scheme). */
    std::uint64_t scrapes() const { return scrapeCount; }

    /** Scrapes that observed a *new* publication seq. */
    std::uint64_t newSnapshots() const { return freshCount; }

    /** Seqlock retries across all scrapes. */
    std::uint64_t retries() const { return retryCount; }

    /** Scrapes that failed (retries exhausted / bad parse / empty). */
    std::uint64_t failures() const { return failCount; }

    /** Re-export the current snapshot in Prometheus text format. */
    std::string prometheus() const { return snap.prometheus(); }

    /**
     * The accumulated CSV document: header plus one row per distinct
     * publication seq scraped, in scrape order — the guest-side mirror
     * of the host's Metrics::csvRow() sampling loop.
     */
    const std::string &csvDocument() const { return csvDoc; }

    /**
     * Evaluate @p watchdog against every *fresh* snapshot as it is
     * scraped (non-owning; nullptr detaches).
     */
    void setWatchdog(sim::SloWatchdog *watchdog) { dog = watchdog; }

  private:
    /** Parse @p bytes; on success fold into snapshot/CSV/watchdog. */
    bool consume(const std::vector<std::uint8_t> &bytes);

    core::ElisaGuest client;
    core::Gate gate;
    sim::SnapshotView snap;
    sim::SloWatchdog *dog = nullptr;
    std::uint64_t lastSeq = 0;
    std::uint64_t scrapeCount = 0;
    std::uint64_t freshCount = 0;
    std::uint64_t retryCount = 0;
    std::uint64_t failCount = 0;
    std::string csvDoc;
    /** Guest buffer for the VMCALL scheme (lazily allocated). */
    Gpa vmcallBufGpa = 0;
    std::uint64_t vmcallBufBytes = 0;
};

} // namespace elisa::guest

#endif // ELISA_GUEST_MONITOR_HH
