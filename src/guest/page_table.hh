/**
 * @file
 * Guest-virtual paging: x86-64 four-level page tables built by guest
 * software inside its own RAM.
 *
 * This is the layer *underneath* which ELISA operates (ELISA swaps
 * GPA->HPA translations; guest software additionally runs GVA->GPA
 * paging of its own). The workloads address guest-physical memory
 * directly for speed, but the substrate is complete: tests and the
 * VirtView access path exercise full two-dimensional translation,
 * and — because the walker reads PTEs through a GuestView — every
 * guest page-table access is itself EPT-translated and costed, like
 * the nested walks real hardware performs.
 */

#ifndef ELISA_GUEST_PAGE_TABLE_HH
#define ELISA_GUEST_PAGE_TABLE_HH

#include <cstdint>
#include <optional>

#include "cpu/guest_view.hh"
#include "hv/vm.hh"

namespace elisa::guest
{

/** A guest-virtual address. */
using Gva = std::uint64_t;

/** Guest PTE permission bits (subset of x86-64). */
enum class PtPerms : std::uint8_t
{
    None = 0,
    Read = 1 << 0,      ///< present
    Write = 1 << 1,     ///< writable
    Exec = 1 << 2,      ///< NOT no-execute
    RW = Read | Write,
    RX = Read | Exec,
    RWX = Read | Write | Exec,
};

constexpr PtPerms
operator|(PtPerms a, PtPerms b)
{
    return static_cast<PtPerms>(static_cast<std::uint8_t>(a) |
                                static_cast<std::uint8_t>(b));
}

constexpr bool
ptPermits(PtPerms have, PtPerms need)
{
    return (static_cast<std::uint8_t>(have) &
            static_cast<std::uint8_t>(need)) ==
           static_cast<std::uint8_t>(need);
}

/** A guest-level page fault (what the guest OS's #PF handler sees). */
struct GuestPageFault
{
    Gva gva = 0;
    ept::Access access = ept::Access::Read;
    bool notPresent = false;
};

/** Result of a guest-PT walk. */
struct GvaTranslation
{
    Gpa gpa = 0;
    PtPerms perms = PtPerms::None;
};

/**
 * A four-level guest page table rooted in guest RAM.
 *
 * All table manipulation and walking happens through a GuestView of
 * the owning vCPU, so it is EPT-checked and costed like any other
 * guest memory traffic.
 */
class GuestPageTable
{
  public:
    /**
     * Allocate and zero the root table (guest "CR3").
     * @param vm the guest VM (tables live in its RAM).
     * @param vcpu_index the vCPU whose view manipulates the tables.
     */
    GuestPageTable(hv::Vm &vm, unsigned vcpu_index = 0);

    /** Guest-physical address of the root table (CR3 equivalent). */
    Gpa root() const { return rootGpa; }

    /**
     * Map the 4 KiB guest-virtual page at @p gva to @p gpa.
     * @return false if already mapped.
     */
    bool map(Gva gva, Gpa gpa, PtPerms perms);

    /** Remove a mapping. @return false if it was absent. */
    bool unmap(Gva gva);

    /** Change permissions. @return false if unmapped. */
    bool protect(Gva gva, PtPerms perms);

    /**
     * Walk for @p gva (the software walk a guest OS would do).
     * @return the translation, or nullopt when not present.
     */
    std::optional<GvaTranslation> translate(Gva gva);

    /**
     * Walk and check for @p access as the MMU would; fills @p fault
     * on failure.
     */
    std::optional<GvaTranslation>
    translateFor(Gva gva, ept::Access access, GuestPageFault *fault);

    /** Number of mapped 4 KiB pages. */
    std::uint64_t mappedPages() const { return mappedCount; }

  private:
    /** PTE slot GPA for @p gva, allocating tables when asked. */
    std::optional<Gpa> walkToPte(Gva gva, bool allocate);

    hv::Vm &guestVm;
    unsigned vcpuIndex;
    Gpa rootGpa = 0;
    std::uint64_t mappedCount = 0;
};

} // namespace elisa::guest

#endif // ELISA_GUEST_PAGE_TABLE_HH
