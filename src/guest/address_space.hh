/**
 * @file
 * A minimal guest-OS virtual address space: mmap-style allocation of
 * virtual ranges backed by guest-physical pages, and VirtView — the
 * two-dimensional access path (GVA -> GPA via the guest page table,
 * then GPA -> HPA via the active EPT context).
 */

#ifndef ELISA_GUEST_ADDRESS_SPACE_HH
#define ELISA_GUEST_ADDRESS_SPACE_HH

#include <cstdint>
#include <map>

#include "guest/page_table.hh"

namespace elisa::guest
{

/** Exception wrapper thrown by VirtView on a guest page fault. */
class GuestFaultEvent : public std::runtime_error
{
  public:
    explicit GuestFaultEvent(const GuestPageFault &f)
        : std::runtime_error("guest page fault"), pageFault(f)
    {
    }

    const GuestPageFault &fault() const { return pageFault; }

  private:
    GuestPageFault pageFault;
};

/**
 * Virtual-address access path for guest software. Every access first
 * walks the guest page table (each PTE read is EPT-translated and
 * costed), then performs the data access through the vCPU's GuestView
 * under the active EPT context.
 */
class VirtView
{
  public:
    VirtView(cpu::Vcpu &vcpu, GuestPageTable &page_table)
        : view(vcpu), pt(page_table)
    {
    }

    /** Translate @p gva for @p access; throws GuestFaultEvent. */
    Gpa translate(Gva gva, ept::Access access);

    template <typename T>
    T
    read(Gva gva)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        readBytes(gva, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    write(Gva gva, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytes(gva, &value, sizeof(T));
    }

    /** Bulk read/write (may cross pages; each page re-walked). */
    void readBytes(Gva gva, void *dst, std::uint64_t len);
    void writeBytes(Gva gva, const void *src, std::uint64_t len);

  private:
    cpu::GuestView view;
    GuestPageTable &pt;
};

/**
 * mmap-style manager of one virtual address space.
 */
class AddressSpace
{
  public:
    /** Lowest GVA handed out (a classic user-space base). */
    static constexpr Gva mmapBase = 0x400000;

    AddressSpace(hv::Vm &vm, unsigned vcpu_index = 0);

    /**
     * Allocate @p bytes of virtual space backed by fresh guest-
     * physical pages, mapped with @p perms.
     * @return base GVA, or nullopt when guest RAM is exhausted.
     */
    std::optional<Gva> mmap(std::uint64_t bytes,
                            PtPerms perms = PtPerms::RW);

    /** Unmap a previously mmap'd range (whole-range only). */
    bool munmap(Gva base);

    /** Change protections of a previously mmap'd range. */
    bool mprotect(Gva base, PtPerms perms);

    /** The underlying page table. */
    GuestPageTable &pageTable() { return pt; }

    /** An access path bound to this space. */
    VirtView view();

  private:
    hv::Vm &guestVm;
    unsigned vcpuIndex;
    GuestPageTable pt;
    Gva bump = mmapBase;
    std::map<Gva, std::uint64_t> ranges; ///< base -> bytes
};

} // namespace elisa::guest

#endif // ELISA_GUEST_ADDRESS_SPACE_HH
