#include "guest/page_table.hh"

#include "base/logging.hh"

namespace elisa::guest
{

namespace
{

/** PTE bit layout (x86-64 subset): P=0, RW=1, NX=63; addr 51:12. */
constexpr std::uint64_t pteP = 1ull << 0;
constexpr std::uint64_t pteRw = 1ull << 1;
constexpr std::uint64_t pteNx = 1ull << 63;
constexpr std::uint64_t pteAddrMask = 0x000ffffffffff000ull;

std::uint64_t
encodePte(Gpa gpa, PtPerms perms)
{
    std::uint64_t pte = (gpa & pteAddrMask) | pteP;
    if (ptPermits(perms, PtPerms::Write))
        pte |= pteRw;
    if (!ptPermits(perms, PtPerms::Exec))
        pte |= pteNx;
    return pte;
}

PtPerms
decodePerms(std::uint64_t pte)
{
    PtPerms perms = PtPerms::Read;
    if (pte & pteRw)
        perms = perms | PtPerms::Write;
    if (!(pte & pteNx))
        perms = perms | PtPerms::Exec;
    return perms;
}

unsigned
gvaIndex(Gva gva, unsigned level)
{
    return static_cast<unsigned>((gva >> (12 + 9 * level)) & 0x1ff);
}

} // anonymous namespace

GuestPageTable::GuestPageTable(hv::Vm &vm, unsigned vcpu_index)
    : guestVm(vm), vcpuIndex(vcpu_index)
{
    auto root = vm.allocGuestMem(pageSize);
    fatal_if(!root, "VM '%s' out of RAM for guest page tables",
             vm.name().c_str());
    rootGpa = *root;
    cpu::GuestView view(vm.vcpu(vcpu_index));
    view.zeroBytes(rootGpa, pageSize);
}

std::optional<Gpa>
GuestPageTable::walkToPte(Gva gva, bool allocate)
{
    panic_if((gva >> 48) != 0 && (gva >> 48) != 0xffff,
             "non-canonical GVA %llx", (unsigned long long)gva);
    cpu::GuestView view(guestVm.vcpu(vcpuIndex));
    Gpa table = rootGpa;
    for (unsigned level = 3; level > 0; --level) {
        const Gpa slot = table + gvaIndex(gva, level) * 8;
        std::uint64_t entry = view.read<std::uint64_t>(slot);
        if (!(entry & pteP)) {
            if (!allocate)
                return std::nullopt;
            auto frame = guestVm.allocGuestMem(pageSize);
            if (!frame)
                return std::nullopt;
            view.zeroBytes(*frame, pageSize);
            // Intermediate entries: present + writable, execute
            // allowed (leaf controls the effective permissions).
            entry = (*frame & pteAddrMask) | pteP | pteRw;
            view.write(slot, entry);
        }
        table = entry & pteAddrMask;
    }
    return table + gvaIndex(gva, 0) * 8;
}

bool
GuestPageTable::map(Gva gva, Gpa gpa, PtPerms perms)
{
    panic_if(!isPageAligned(gva) || !isPageAligned(gpa),
             "guest map of unaligned address");
    panic_if(perms == PtPerms::None, "guest map without permissions");
    auto slot = walkToPte(gva, true);
    fatal_if(!slot, "guest out of RAM for page tables");
    cpu::GuestView view(guestVm.vcpu(vcpuIndex));
    if (view.read<std::uint64_t>(*slot) & pteP)
        return false;
    view.write(*slot, encodePte(gpa, perms));
    ++mappedCount;
    return true;
}

bool
GuestPageTable::unmap(Gva gva)
{
    auto slot = walkToPte(gva, false);
    if (!slot)
        return false;
    cpu::GuestView view(guestVm.vcpu(vcpuIndex));
    if (!(view.read<std::uint64_t>(*slot) & pteP))
        return false;
    view.write(*slot, std::uint64_t{0});
    --mappedCount;
    return true;
}

bool
GuestPageTable::protect(Gva gva, PtPerms perms)
{
    panic_if(perms == PtPerms::None, "use unmap() instead");
    auto slot = walkToPte(gva, false);
    if (!slot)
        return false;
    cpu::GuestView view(guestVm.vcpu(vcpuIndex));
    const std::uint64_t entry = view.read<std::uint64_t>(*slot);
    if (!(entry & pteP))
        return false;
    view.write(*slot, encodePte(entry & pteAddrMask, perms));
    return true;
}

std::optional<GvaTranslation>
GuestPageTable::translate(Gva gva)
{
    auto slot = walkToPte(pageAlignDown(gva), false);
    if (!slot)
        return std::nullopt;
    cpu::GuestView view(guestVm.vcpu(vcpuIndex));
    const std::uint64_t entry = view.read<std::uint64_t>(*slot);
    if (!(entry & pteP))
        return std::nullopt;
    return GvaTranslation{(entry & pteAddrMask) | (gva & pageMask),
                          decodePerms(entry)};
}

std::optional<GvaTranslation>
GuestPageTable::translateFor(Gva gva, ept::Access access,
                             GuestPageFault *fault)
{
    auto result = translate(gva);
    PtPerms need = PtPerms::Read;
    switch (access) {
      case ept::Access::Read:
        need = PtPerms::Read;
        break;
      case ept::Access::Write:
        need = PtPerms::Write;
        break;
      case ept::Access::Exec:
        need = PtPerms::Exec;
        break;
    }
    if (result && ptPermits(result->perms, need))
        return result;
    if (fault) {
        fault->gva = gva;
        fault->access = access;
        fault->notPresent = !result.has_value();
    }
    return std::nullopt;
}

} // namespace elisa::guest
