#include "guest/address_space.hh"

#include <algorithm>

#include "base/logging.hh"

namespace elisa::guest
{

Gpa
VirtView::translate(Gva gva, ept::Access access)
{
    GuestPageFault fault;
    auto xlat = pt.translateFor(gva, access, &fault);
    if (!xlat)
        throw GuestFaultEvent(fault);
    return xlat->gpa;
}

void
VirtView::readBytes(Gva gva, void *dst, std::uint64_t len)
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len, pageSize - (gva & pageMask));
        const Gpa gpa = translate(gva, ept::Access::Read);
        view.readBytes(gpa, out, in_page);
        gva += in_page;
        out += in_page;
        len -= in_page;
    }
}

void
VirtView::writeBytes(Gva gva, const void *src, std::uint64_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len, pageSize - (gva & pageMask));
        const Gpa gpa = translate(gva, ept::Access::Write);
        view.writeBytes(gpa, in, in_page);
        gva += in_page;
        in += in_page;
        len -= in_page;
    }
}

AddressSpace::AddressSpace(hv::Vm &vm, unsigned vcpu_index)
    : guestVm(vm), vcpuIndex(vcpu_index), pt(vm, vcpu_index)
{
}

std::optional<Gva>
AddressSpace::mmap(std::uint64_t bytes, PtPerms perms)
{
    const std::uint64_t len = pageAlignUp(bytes);
    if (len == 0)
        return std::nullopt;
    const Gva base = bump;
    for (std::uint64_t off = 0; off < len; off += pageSize) {
        auto frame = guestVm.allocGuestMem(pageSize);
        if (!frame) {
            // Roll back what was mapped.
            for (std::uint64_t undo = 0; undo < off; undo += pageSize)
                pt.unmap(base + undo);
            return std::nullopt;
        }
        const bool ok = pt.map(base + off, *frame, perms);
        panic_if(!ok, "fresh GVA range was already mapped");
    }
    // Leave an unmapped guard page between ranges.
    bump = base + len + pageSize;
    ranges[base] = len;
    return base;
}

bool
AddressSpace::munmap(Gva base)
{
    auto it = ranges.find(base);
    if (it == ranges.end())
        return false;
    for (std::uint64_t off = 0; off < it->second; off += pageSize)
        pt.unmap(base + off);
    ranges.erase(it);
    return true;
}

bool
AddressSpace::mprotect(Gva base, PtPerms perms)
{
    auto it = ranges.find(base);
    if (it == ranges.end())
        return false;
    for (std::uint64_t off = 0; off < it->second; off += pageSize) {
        const bool ok = pt.protect(base + off, perms);
        panic_if(!ok, "tracked range had an unmapped page");
    }
    return true;
}

VirtView
AddressSpace::view()
{
    return VirtView(guestVm.vcpu(vcpuIndex), pt);
}

} // namespace elisa::guest
