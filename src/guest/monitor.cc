#include "guest/monitor.hh"

#include <algorithm>

#include "base/logging.hh"
#include "hv/hypercall.hh"

namespace elisa::guest
{

using Layout = sim::TelemetryRegionLayout;

std::optional<core::ElisaManager::Exported>
exportTelemetryRegion(core::ElisaManager &manager,
                      hv::TelemetryPublisher &publisher,
                      const core::ExportKey &key,
                      std::uint32_t slot_bytes)
{
    panic_if(slot_bytes == 0, "telemetry export with empty slots");
    const std::uint64_t bytes = Layout::regionBytes(slot_bytes);

    // The scrape functions are deliberately dumb: a bounds-violating
    // offset walks off the object window and takes the EPT fault the
    // hardware would deliver — no host-side policy to get wrong.
    core::SharedFnTable fns;
    fns.push_back([](core::SubCallCtx &ctx) {
        return ctx.view.read<std::uint64_t>(ctx.obj + ctx.arg0);
    });
    fns.push_back([](core::SubCallCtx &ctx) {
        ctx.view.copyBytes(ctx.exch + ctx.arg2, ctx.obj + ctx.arg0,
                           ctx.arg1);
        return ctx.arg1;
    });

    auto exported = manager.exportObject(key, bytes, std::move(fns),
                                         ept::Perms::Read);
    if (!exported)
        return std::nullopt;

    // Manager-VM RAM is physically contiguous (ramBase + gpa), so the
    // whole region is one host-physical window the publisher can
    // store into directly — guest reads then need no exit at all.
    const Hpa base = manager.vm().ramGpaToHpa(exported->objectGpa);
    publisher.addSink(base, bytes, key.name());
    return exported;
}

MonitorGuest::MonitorGuest(hv::Vm &vm, core::ElisaService &service,
                           unsigned vcpu_index)
    : client(vm, service, vcpu_index)
{
}

bool
MonitorGuest::attach(const core::ExportKey &key,
                     core::ElisaManager &manager)
{
    core::AttachResult result = client.tryAttach(key, manager);
    if (!result)
        return false;
    gate = result.take();
    return true;
}

bool
MonitorGuest::scrape(unsigned max_retries)
{
    if (!gate.valid()) {
        ++failCount;
        return false;
    }
    for (unsigned attempt = 0; attempt <= max_retries; ++attempt) {
        // Seqlock open: an odd seq means a publication is in flight.
        const std::uint64_t seq0 =
            gate.call(telemetryFnRead64, Layout::offSeq);
        if (seq0 == 0)
            break; // nothing published yet
        if (seq0 & 1) {
            ++retryCount;
            continue;
        }
        // One u64 load covers two adjacent u32 header fields.
        const std::uint64_t act =
            gate.call(telemetryFnRead64, Layout::offActive);
        const auto active = static_cast<std::uint32_t>(act);
        const auto slot_bytes = static_cast<std::uint32_t>(act >> 32);
        const std::uint64_t lens =
            gate.call(telemetryFnRead64, Layout::offLen0);
        const std::uint32_t len =
            active == 0 ? static_cast<std::uint32_t>(lens)
                        : static_cast<std::uint32_t>(lens >> 32);
        if (active > 1 || len == 0 || len > slot_bytes) {
            ++retryCount;
            continue;
        }

        // Chunked copy of the active slot through the exchange buffer.
        std::vector<std::uint8_t> buf(len);
        const std::uint64_t slot_off =
            Layout::slotOffset(active, slot_bytes);
        const std::uint64_t chunk = gate.info().exchangeBytes;
        for (std::uint64_t off = 0; off < len; off += chunk) {
            const std::uint64_t n = std::min<std::uint64_t>(
                chunk, len - off);
            gate.call(telemetryFnCopy, slot_off + off, n, 0);
            gate.readExchange(0, buf.data() + off, n);
        }

        // Seqlock close: any publication since seq0 tore the copy.
        const std::uint64_t seq1 =
            gate.call(telemetryFnRead64, Layout::offSeq);
        if (seq1 != seq0) {
            ++retryCount;
            continue;
        }
        return consume(buf);
    }
    ++failCount;
    return false;
}

bool
MonitorGuest::scrapeVmcall(std::uint64_t scrape_nr)
{
    if (vmcallBufGpa == 0) {
        // One-time guest-side landing buffer for the marshalled copy.
        const std::uint64_t want = 256 * 1024;
        auto gpa = client.vm().allocGuestMem(want);
        if (!gpa) {
            ++failCount;
            return false;
        }
        vmcallBufGpa = *gpa;
        vmcallBufBytes = want;
    }
    cpu::HypercallArgs args;
    args.nr = scrape_nr;
    args.arg0 = vmcallBufGpa;
    args.arg1 = vmcallBufBytes;
    const std::uint64_t rc = client.vcpu().vmcall(args);
    if (rc == hv::hcError || rc == 0 || rc > vmcallBufBytes) {
        ++failCount;
        return false;
    }
    std::vector<std::uint8_t> buf(rc);
    client.view().readBytes(vmcallBufGpa, buf.data(), rc);
    return consume(buf);
}

bool
MonitorGuest::scrapeIvshmem(Gpa region_gpa, unsigned max_retries)
{
    cpu::GuestView view = client.view();
    for (unsigned attempt = 0; attempt <= max_retries; ++attempt) {
        const auto seq0 =
            view.read<std::uint64_t>(region_gpa + Layout::offSeq);
        if (seq0 == 0)
            break;
        if (seq0 & 1) {
            ++retryCount;
            continue;
        }
        const auto active =
            view.read<std::uint32_t>(region_gpa + Layout::offActive);
        const auto slot_bytes = view.read<std::uint32_t>(
            region_gpa + Layout::offSlotBytes);
        const auto len = view.read<std::uint32_t>(
            region_gpa +
            (active == 0 ? Layout::offLen0 : Layout::offLen1));
        if (active > 1 || len == 0 || len > slot_bytes) {
            ++retryCount;
            continue;
        }
        std::vector<std::uint8_t> buf(len);
        view.readBytes(region_gpa +
                           Layout::slotOffset(active, slot_bytes),
                       buf.data(), len);
        const auto seq1 =
            view.read<std::uint64_t>(region_gpa + Layout::offSeq);
        if (seq1 != seq0) {
            ++retryCount;
            continue;
        }
        return consume(buf);
    }
    ++failCount;
    return false;
}

bool
MonitorGuest::consume(const std::vector<std::uint8_t> &bytes)
{
    sim::SnapshotView view;
    if (!view.parse(bytes.data(), bytes.size())) {
        ++failCount;
        return false;
    }
    const bool fresh = view.seq() != lastSeq;
    snap = std::move(view);
    ++scrapeCount;
    if (fresh) {
        ++freshCount;
        lastSeq = snap.seq();
        if (csvDoc.empty())
            csvDoc = snap.csvHeader();
        csvDoc += snap.csvRow();
        if (dog)
            dog->evaluate(snap);
    }
    return true;
}

} // namespace elisa::guest
