#include "mem/frame_allocator.hh"

#include "base/logging.hh"

namespace elisa::mem
{

FrameAllocator::FrameAllocator(std::uint64_t frame_count)
    : totalFrames(frame_count), used(frame_count, false)
{
    fatal_if(frame_count == 0, "frame allocator needs at least 1 frame");
}

std::optional<Hpa>
FrameAllocator::alloc(std::uint64_t count)
{
    panic_if(count == 0, "zero-length frame allocation");
    if (count > freeFrames())
        return std::nullopt;

    // Rotating first-fit: scan from the hint, wrapping once.
    auto scan_from = [this, count](std::uint64_t start,
                                   std::uint64_t end)
        -> std::optional<std::uint64_t> {
        std::uint64_t run = 0;
        for (std::uint64_t i = start; i < end; ++i) {
            if (used[i]) {
                run = 0;
            } else if (++run == count) {
                return i + 1 - count;
            }
        }
        return std::nullopt;
    };

    std::optional<std::uint64_t> base = scan_from(searchHint, totalFrames);
    if (!base)
        base = scan_from(0, totalFrames);
    if (!base)
        return std::nullopt;

    for (std::uint64_t i = *base; i < *base + count; ++i)
        used[i] = true;
    allocatedFrames += count;
    searchHint = *base + count;
    if (searchHint >= totalFrames)
        searchHint = 0;
    return *base * pageSize;
}

std::optional<Hpa>
FrameAllocator::allocAligned(std::uint64_t count,
                             std::uint64_t align_frames)
{
    panic_if(count == 0, "zero-length frame allocation");
    panic_if(align_frames == 0, "zero alignment");
    if (count > freeFrames())
        return std::nullopt;

    for (std::uint64_t base = 0; base + count <= totalFrames;
         base += align_frames) {
        bool fits = true;
        for (std::uint64_t i = base; i < base + count; ++i) {
            if (used[i]) {
                fits = false;
                break;
            }
        }
        if (!fits)
            continue;
        for (std::uint64_t i = base; i < base + count; ++i)
            used[i] = true;
        allocatedFrames += count;
        return base * pageSize;
    }
    return std::nullopt;
}

void
FrameAllocator::free(Hpa base, std::uint64_t count)
{
    panic_if(!isPageAligned(base), "freeing unaligned HPA %llx",
             (unsigned long long)base);
    const std::uint64_t first = base / pageSize;
    panic_if(first + count > totalFrames,
             "freeing frames beyond physical memory");
    for (std::uint64_t i = first; i < first + count; ++i) {
        panic_if(!used[i], "double free of frame %llu",
                 (unsigned long long)i);
        used[i] = false;
    }
    allocatedFrames -= count;
}

bool
FrameAllocator::isAllocated(Hpa hpa) const
{
    const std::uint64_t frame = hpa / pageSize;
    panic_if(frame >= totalFrames, "HPA outside physical memory");
    return used[frame];
}

void
FrameAllocator::noteOwner(std::uint32_t owner, const std::string &name,
                          std::uint64_t reserved_frames)
{
    OwnerEntry &entry = owners[owner];
    entry.name = name;
    entry.usage.reservedFrames = reserved_frames;
    if (metricsPtr && !entry.gaugesRegistered)
        registerOwnerGauges(owner, entry);
}

void
FrameAllocator::dropOwner(std::uint32_t owner)
{
    // Registered gauges stay in the registry (a registry never forgets
    // a family); the entry just stops being sampled.
    owners.erase(owner);
}

void
FrameAllocator::addResident(std::uint32_t owner, std::int64_t delta)
{
    auto it = owners.find(owner);
    panic_if(it == owners.end(), "resident charge for unknown owner %u",
             owner);
    const auto next = static_cast<std::int64_t>(
                          it->second.usage.residentFrames) + delta;
    panic_if(next < 0, "resident frames of owner %u under-run", owner);
    it->second.usage.residentFrames = static_cast<std::uint64_t>(next);
}

void
FrameAllocator::addSwapped(std::uint32_t owner, std::int64_t delta)
{
    auto it = owners.find(owner);
    panic_if(it == owners.end(), "swapped charge for unknown owner %u",
             owner);
    const auto next = static_cast<std::int64_t>(
                          it->second.usage.swappedFrames) + delta;
    panic_if(next < 0, "swapped frames of owner %u under-run", owner);
    it->second.usage.swappedFrames = static_cast<std::uint64_t>(next);
}

void
FrameAllocator::setBalloonTarget(std::uint32_t owner,
                                 std::uint64_t frames)
{
    auto it = owners.find(owner);
    panic_if(it == owners.end(), "balloon target for unknown owner %u",
             owner);
    it->second.usage.balloonTargetFrames = frames;
}

const FrameAllocator::OwnerUsage *
FrameAllocator::ownerUsage(std::uint32_t owner) const
{
    auto it = owners.find(owner);
    return it == owners.end() ? nullptr : &it->second.usage;
}

void
FrameAllocator::attachGauges(sim::Metrics &metrics)
{
    metricsPtr = &metrics;
    freeGauge = metrics.gauge("mem_frames_free");
    allocatedGauge = metrics.gauge("mem_frames_allocated");
    for (auto &[owner, entry] : owners) {
        if (!entry.gaugesRegistered)
            registerOwnerGauges(owner, entry);
    }
}

void
FrameAllocator::registerOwnerGauges(std::uint32_t owner,
                                    OwnerEntry &entry)
{
    (void)owner;
    const sim::Labels labels = {{"vm", entry.name}};
    entry.residentGauge =
        metricsPtr->gauge("mem_resident_frames", labels);
    entry.swappedGauge =
        metricsPtr->gauge("mem_swapped_frames", labels);
    entry.targetGauge =
        metricsPtr->gauge("mem_balloon_target_frames", labels);
    entry.gaugesRegistered = true;
}

void
FrameAllocator::sampleGauges()
{
    if (!metricsPtr)
        return;
    metricsPtr->set(freeGauge, static_cast<double>(freeFrames()));
    metricsPtr->set(allocatedGauge,
                    static_cast<double>(allocated()));
    for (auto &[owner, entry] : owners) {
        (void)owner;
        if (!entry.gaugesRegistered)
            continue;
        metricsPtr->set(entry.residentGauge,
                        static_cast<double>(entry.usage.residentFrames));
        metricsPtr->set(entry.swappedGauge,
                        static_cast<double>(entry.usage.swappedFrames));
        metricsPtr->set(
            entry.targetGauge,
            static_cast<double>(entry.usage.balloonTargetFrames));
    }
}

} // namespace elisa::mem
