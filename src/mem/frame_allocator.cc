#include "mem/frame_allocator.hh"

#include "base/logging.hh"

namespace elisa::mem
{

FrameAllocator::FrameAllocator(std::uint64_t frame_count)
    : totalFrames(frame_count), used(frame_count, false)
{
    fatal_if(frame_count == 0, "frame allocator needs at least 1 frame");
}

std::optional<Hpa>
FrameAllocator::alloc(std::uint64_t count)
{
    panic_if(count == 0, "zero-length frame allocation");
    if (count > freeFrames())
        return std::nullopt;

    // Rotating first-fit: scan from the hint, wrapping once.
    auto scan_from = [this, count](std::uint64_t start,
                                   std::uint64_t end)
        -> std::optional<std::uint64_t> {
        std::uint64_t run = 0;
        for (std::uint64_t i = start; i < end; ++i) {
            if (used[i]) {
                run = 0;
            } else if (++run == count) {
                return i + 1 - count;
            }
        }
        return std::nullopt;
    };

    std::optional<std::uint64_t> base = scan_from(searchHint, totalFrames);
    if (!base)
        base = scan_from(0, totalFrames);
    if (!base)
        return std::nullopt;

    for (std::uint64_t i = *base; i < *base + count; ++i)
        used[i] = true;
    allocatedFrames += count;
    searchHint = *base + count;
    if (searchHint >= totalFrames)
        searchHint = 0;
    return *base * pageSize;
}

std::optional<Hpa>
FrameAllocator::allocAligned(std::uint64_t count,
                             std::uint64_t align_frames)
{
    panic_if(count == 0, "zero-length frame allocation");
    panic_if(align_frames == 0, "zero alignment");
    if (count > freeFrames())
        return std::nullopt;

    for (std::uint64_t base = 0; base + count <= totalFrames;
         base += align_frames) {
        bool fits = true;
        for (std::uint64_t i = base; i < base + count; ++i) {
            if (used[i]) {
                fits = false;
                break;
            }
        }
        if (!fits)
            continue;
        for (std::uint64_t i = base; i < base + count; ++i)
            used[i] = true;
        allocatedFrames += count;
        return base * pageSize;
    }
    return std::nullopt;
}

void
FrameAllocator::free(Hpa base, std::uint64_t count)
{
    panic_if(!isPageAligned(base), "freeing unaligned HPA %llx",
             (unsigned long long)base);
    const std::uint64_t first = base / pageSize;
    panic_if(first + count > totalFrames,
             "freeing frames beyond physical memory");
    for (std::uint64_t i = first; i < first + count; ++i) {
        panic_if(!used[i], "double free of frame %llu",
                 (unsigned long long)i);
        used[i] = false;
    }
    allocatedFrames -= count;
}

bool
FrameAllocator::isAllocated(Hpa hpa) const
{
    const std::uint64_t frame = hpa / pageSize;
    panic_if(frame >= totalFrames, "HPA outside physical memory");
    return used[frame];
}

} // namespace elisa::mem
