#include "mem/host_memory.hh"

namespace elisa::mem
{

HostMemory::HostMemory(std::uint64_t bytes)
{
    fatal_if(bytes == 0 || !isPageAligned(bytes),
             "physical memory size must be a non-zero multiple of 4 KiB");
    data.assign(bytes, 0);
}

} // namespace elisa::mem
