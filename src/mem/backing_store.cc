#include "mem/backing_store.hh"

#include <cstring>

#include "base/logging.hh"

namespace elisa::mem
{

BackingStore::BackingStore(std::uint64_t slot_count)
    : totalSlots(slot_count), used(slot_count, false),
      data(slot_count * pageSize, 0)
{
    fatal_if(slot_count == 0, "empty backing store");
}

std::optional<std::uint64_t>
BackingStore::alloc()
{
    if (allocatedSlots == totalSlots)
        return std::nullopt;
    for (std::uint64_t probe = 0; probe < totalSlots; ++probe) {
        const std::uint64_t slot =
            (searchHint + probe) % totalSlots;
        if (used[slot])
            continue;
        used[slot] = true;
        ++allocatedSlots;
        searchHint = (slot + 1) % totalSlots;
        return slot;
    }
    return std::nullopt;
}

void
BackingStore::free(std::uint64_t slot)
{
    panic_if(slot >= totalSlots, "backing-store slot %llu out of range",
             (unsigned long long)slot);
    panic_if(!used[slot], "double free of backing-store slot %llu",
             (unsigned long long)slot);
    used[slot] = false;
    --allocatedSlots;
    // Scrub so a buggy read of a freed slot cannot leak stale bytes.
    std::memset(data.data() + slot * pageSize, 0, pageSize);
}

void
BackingStore::write(std::uint64_t slot, const std::uint8_t *src)
{
    panic_if(slot >= totalSlots || !used[slot],
             "write to unallocated backing-store slot %llu",
             (unsigned long long)slot);
    std::memcpy(data.data() + slot * pageSize, src, pageSize);
}

void
BackingStore::read(std::uint64_t slot, std::uint8_t *dst) const
{
    panic_if(slot >= totalSlots || !used[slot],
             "read from unallocated backing-store slot %llu",
             (unsigned long long)slot);
    std::memcpy(dst, data.data() + slot * pageSize, pageSize);
}

bool
BackingStore::isAllocated(std::uint64_t slot) const
{
    return slot < totalSlots && used[slot];
}

} // namespace elisa::mem
