/**
 * @file
 * Simulated swap device backing demand-paged frames.
 *
 * A BackingStore is a fixed array of 4 KiB slots on a pretend NVMe
 * device: the pager writes a victim frame's bytes into a slot on
 * eviction and reads them back on the resolving EPT-violation fault.
 * The device itself is pure storage — latency is charged by the pager
 * from the CostModel (swapInNs/swapOutNs), and failures are injected
 * through sim::FaultPlan's PageIn site, so this file stays at the
 * bottom of the layering next to HostMemory.
 */

#ifndef ELISA_MEM_BACKING_STORE_HH
#define ELISA_MEM_BACKING_STORE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.hh"

namespace elisa::mem
{

/**
 * Slot-granular swap storage (one slot = one 4 KiB page).
 */
class BackingStore
{
  public:
    /** Create a device of @p slot_count page slots (zero-filled). */
    explicit BackingStore(std::uint64_t slot_count);

    BackingStore(const BackingStore &) = delete;
    BackingStore &operator=(const BackingStore &) = delete;

    /**
     * Reserve one free slot (rotating first fit, deterministic).
     * @return the slot id, or std::nullopt when the device is full.
     */
    std::optional<std::uint64_t> alloc();

    /** Release @p slot (panics on double free). */
    void free(std::uint64_t slot);

    /** Copy one page of bytes into @p slot. */
    void write(std::uint64_t slot, const std::uint8_t *src);

    /** Copy one page of bytes out of @p slot. */
    void read(std::uint64_t slot, std::uint8_t *dst) const;

    /** Total slots on the device. */
    std::uint64_t capacity() const { return totalSlots; }

    /** Slots currently holding a swapped-out page. */
    std::uint64_t usedSlots() const { return allocatedSlots; }

    /** Slots still free. */
    std::uint64_t freeSlots() const
    {
        return totalSlots - allocatedSlots;
    }

    /** True when @p slot is currently allocated. */
    bool isAllocated(std::uint64_t slot) const;

  private:
    std::uint64_t totalSlots;
    std::uint64_t allocatedSlots = 0;
    std::uint64_t searchHint = 0;
    std::vector<bool> used;
    std::vector<std::uint8_t> data;
};

} // namespace elisa::mem

#endif // ELISA_MEM_BACKING_STORE_HH
