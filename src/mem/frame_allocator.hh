/**
 * @file
 * Physical frame allocator for the simulated machine.
 *
 * A bitmap allocator over 4 KiB frames with first-fit contiguous
 * allocation. The hypervisor uses it for guest memory, EPT tables,
 * EPTP-list pages, NIC rings, and shared regions.
 */

#ifndef ELISA_MEM_FRAME_ALLOCATOR_HH
#define ELISA_MEM_FRAME_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.hh"

namespace elisa::mem
{

/**
 * Bitmap allocator handing out host-physical frames.
 */
class FrameAllocator
{
  public:
    /** Manage @p frame_count frames starting at HPA 0. */
    explicit FrameAllocator(std::uint64_t frame_count);

    /**
     * Allocate @p count physically contiguous frames.
     * @return base HPA of the run, or std::nullopt when no run fits.
     */
    std::optional<Hpa> alloc(std::uint64_t count = 1);

    /**
     * Allocate @p count contiguous frames whose base frame index is a
     * multiple of @p align_frames (e.g. 512 for a 2 MiB-aligned base).
     * @return base HPA, or std::nullopt when no such run fits.
     */
    std::optional<Hpa> allocAligned(std::uint64_t count,
                                    std::uint64_t align_frames);

    /**
     * Free @p count frames starting at @p base (must exactly match a
     * previous allocation's frames; panics on double free).
     */
    void free(Hpa base, std::uint64_t count = 1);

    /** Frames currently allocated. */
    std::uint64_t allocated() const { return allocatedFrames; }

    /** Frames currently free. */
    std::uint64_t freeFrames() const
    {
        return totalFrames - allocatedFrames;
    }

    /** Total managed frames. */
    std::uint64_t total() const { return totalFrames; }

    /** True if the frame containing @p hpa is allocated. */
    bool isAllocated(Hpa hpa) const;

  private:
    std::uint64_t totalFrames;
    std::uint64_t allocatedFrames = 0;
    /** Next frame index to start searching from (rotating first fit). */
    std::uint64_t searchHint = 0;
    std::vector<bool> used;
};

} // namespace elisa::mem

#endif // ELISA_MEM_FRAME_ALLOCATOR_HH
