/**
 * @file
 * Physical frame allocator for the simulated machine.
 *
 * A bitmap allocator over 4 KiB frames with first-fit contiguous
 * allocation. The hypervisor uses it for guest memory, EPT tables,
 * EPTP-list pages, NIC rings, and shared regions.
 *
 * The allocator additionally keeps the machine's memory-occupancy
 * book for demand paging: per-owner (per-VM) resident/swapped frame
 * counts and balloon targets, updated by the hv::Pager and exported
 * as labeled sim::Metrics gauges (attachGauges + sampleGauges, wired
 * to the engine's periodic sampler by paging scenarios).
 */

#ifndef ELISA_MEM_FRAME_ALLOCATOR_HH
#define ELISA_MEM_FRAME_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/metrics.hh"

namespace elisa::mem
{

/**
 * Bitmap allocator handing out host-physical frames.
 */
class FrameAllocator
{
  public:
    /** Manage @p frame_count frames starting at HPA 0. */
    explicit FrameAllocator(std::uint64_t frame_count);

    /**
     * Allocate @p count physically contiguous frames.
     * @return base HPA of the run, or std::nullopt when no run fits.
     */
    std::optional<Hpa> alloc(std::uint64_t count = 1);

    /**
     * Allocate @p count contiguous frames whose base frame index is a
     * multiple of @p align_frames (e.g. 512 for a 2 MiB-aligned base).
     * @return base HPA, or std::nullopt when no such run fits.
     */
    std::optional<Hpa> allocAligned(std::uint64_t count,
                                    std::uint64_t align_frames);

    /**
     * Free @p count frames starting at @p base (must exactly match a
     * previous allocation's frames; panics on double free).
     */
    void free(Hpa base, std::uint64_t count = 1);

    /** Frames currently allocated. */
    std::uint64_t allocated() const { return allocatedFrames; }

    /** Frames currently free. */
    std::uint64_t freeFrames() const
    {
        return totalFrames - allocatedFrames;
    }

    /** Total managed frames. */
    std::uint64_t total() const { return totalFrames; }

    /** True if the frame containing @p hpa is allocated. */
    bool isAllocated(Hpa hpa) const;

    // ---- per-owner occupancy book (demand paging) -------------------

    /** Occupancy of one owner (a VM) under demand paging. */
    struct OwnerUsage
    {
        /** Frames of the owner's contiguous RAM reservation. */
        std::uint64_t reservedFrames = 0;

        /** Pager-managed frames currently resident in RAM. */
        std::uint64_t residentFrames = 0;

        /** Pager-managed frames swapped out to the backing store. */
        std::uint64_t swappedFrames = 0;

        /** Balloon target: max resident frames (0 = unconstrained). */
        std::uint64_t balloonTargetFrames = 0;
    };

    /**
     * Register owner @p owner (a VM id) with a display @p name and its
     * RAM reservation size. Idempotent; re-registering updates the
     * reservation.
     */
    void noteOwner(std::uint32_t owner, const std::string &name,
                   std::uint64_t reserved_frames);

    /** Forget owner @p owner (VM destroyed). */
    void dropOwner(std::uint32_t owner);

    /** Adjust the resident-frame count of @p owner. */
    void addResident(std::uint32_t owner, std::int64_t delta);

    /** Adjust the swapped-frame count of @p owner. */
    void addSwapped(std::uint32_t owner, std::int64_t delta);

    /** Set the balloon target of @p owner (0 = unconstrained). */
    void setBalloonTarget(std::uint32_t owner, std::uint64_t frames);

    /** Occupancy of @p owner, or nullptr when unknown. */
    const OwnerUsage *ownerUsage(std::uint32_t owner) const;

    /**
     * Export the occupancy book as gauges on @p metrics:
     * machine-level mem_frames_free/mem_frames_allocated plus
     * per-owner mem_resident_frames/mem_swapped_frames/
     * mem_balloon_target_frames labeled vm="<name>" (layer prefix in
     * the family, identity in labels — see the naming rules in
     * DESIGN.md §15). Owners registered later are picked up on
     * their noteOwner(). Call sampleGauges() to publish values (pair
     * with Engine::setSampler for periodic simulated-time sampling).
     */
    void attachGauges(sim::Metrics &metrics);

    /** Publish current occupancy into the attached gauges. */
    void sampleGauges();

  private:
    struct OwnerEntry
    {
        std::string name;
        OwnerUsage usage;
        sim::MetricId residentGauge = 0;
        sim::MetricId swappedGauge = 0;
        sim::MetricId targetGauge = 0;
        bool gaugesRegistered = false;
    };

    /** Register one owner's gauges (when metrics are attached). */
    void registerOwnerGauges(std::uint32_t owner, OwnerEntry &entry);

    sim::Metrics *metricsPtr = nullptr;
    sim::MetricId freeGauge = 0;
    sim::MetricId allocatedGauge = 0;
    std::map<std::uint32_t, OwnerEntry> owners;

    std::uint64_t totalFrames;
    std::uint64_t allocatedFrames = 0;
    /** Next frame index to start searching from (rotating first fit). */
    std::uint64_t searchHint = 0;
    std::vector<bool> used;
};

} // namespace elisa::mem

#endif // ELISA_MEM_FRAME_ALLOCATOR_HH
