/**
 * @file
 * Simulated host physical memory.
 *
 * The machine's physical address space is one contiguous range starting
 * at HPA 0, backed by a host allocation. Raw access is reserved to
 * "hardware" and hypervisor code (EPT walker, NIC DMA, host-interposition
 * handlers); guest software must go through cpu::GuestView, which applies
 * the EPT translation and permission checks.
 */

#ifndef ELISA_MEM_HOST_MEMORY_HH
#define ELISA_MEM_HOST_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace elisa::mem
{

/**
 * The physical memory of the simulated machine.
 */
class HostMemory
{
  public:
    /** Create @p bytes of physical memory (page aligned, zeroed). */
    explicit HostMemory(std::uint64_t bytes);

    HostMemory(const HostMemory &) = delete;
    HostMemory &operator=(const HostMemory &) = delete;

    /** Total size in bytes. */
    std::uint64_t size() const { return data.size(); }

    /** Total size in frames. */
    std::uint64_t frameCount() const { return size() / pageSize; }

    /** True if [hpa, hpa+len) lies inside physical memory. */
    bool
    contains(Hpa hpa, std::uint64_t len = 1) const
    {
        return len != 0 && hpa < size() && len <= size() - hpa;
    }

    /**
     * Raw pointer to host bytes backing @p hpa (privileged access).
     * Panics when the range escapes physical memory: simulated hardware
     * and the hypervisor are trusted and must not emit wild addresses.
     */
    std::uint8_t *
    raw(Hpa hpa, std::uint64_t len = 1)
    {
        panic_if(!contains(hpa, len),
                 "HPA range [%llx, +%llx) outside physical memory",
                 (unsigned long long)hpa, (unsigned long long)len);
        return data.data() + hpa;
    }

    /** Const overload of raw(). */
    const std::uint8_t *
    raw(Hpa hpa, std::uint64_t len = 1) const
    {
        panic_if(!contains(hpa, len),
                 "HPA range [%llx, +%llx) outside physical memory",
                 (unsigned long long)hpa, (unsigned long long)len);
        return data.data() + hpa;
    }

    /** Read a little-endian 64-bit word at @p hpa. */
    std::uint64_t
    read64(Hpa hpa) const
    {
        std::uint64_t v;
        std::memcpy(&v, raw(hpa, 8), 8);
        return v;
    }

    /** Write a little-endian 64-bit word at @p hpa. */
    void
    write64(Hpa hpa, std::uint64_t value)
    {
        std::memcpy(raw(hpa, 8), &value, 8);
    }

    /** Copy @p len bytes out of physical memory. */
    void
    read(Hpa hpa, void *dst, std::uint64_t len) const
    {
        std::memcpy(dst, raw(hpa, len), len);
    }

    /** Copy @p len bytes into physical memory. */
    void
    write(Hpa hpa, const void *src, std::uint64_t len)
    {
        std::memcpy(raw(hpa, len), src, len);
    }

    /** Zero-fill a physical range. */
    void
    zero(Hpa hpa, std::uint64_t len)
    {
        std::memset(raw(hpa, len), 0, len);
    }

  private:
    std::vector<std::uint8_t> data;
};

} // namespace elisa::mem

#endif // ELISA_MEM_HOST_MEMORY_HH
