/**
 * @file
 * A guest virtual machine: RAM, default EPT context, vCPUs.
 */

#ifndef ELISA_HV_VM_HH
#define ELISA_HV_VM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "cpu/exit.hh"
#include "cpu/guest_view.hh"
#include "cpu/vcpu.hh"
#include "ept/ept.hh"

namespace elisa::hv
{

class Hypervisor;

/** Copyable description of a faulting VM exit. */
struct ExitInfo
{
    cpu::ExitReason reason = cpu::ExitReason::Hlt;
    std::uint64_t qualification = 0;
    ept::EptViolation violation;
};

/** Result of running a slice of guest code. */
struct GuestRunResult
{
    /** True when the code ran to completion without a faulting exit. */
    bool ok = true;

    /** Populated when ok is false. */
    ExitInfo exit;
};

/**
 * One guest VM. Created via Hypervisor::createVm().
 */
class Vm
{
  public:
    /**
     * @param hv owning hypervisor.
     * @param id VM id.
     * @param name human-readable name.
     * @param ram_bytes guest RAM size (page multiple).
     * @param vcpu_count number of vCPUs.
     */
    Vm(Hypervisor &hv, VmId id, std::string name, std::uint64_t ram_bytes,
       unsigned vcpu_count);

    ~Vm();

    Vm(const Vm &) = delete;
    Vm &operator=(const Vm &) = delete;

    /** VM id. */
    VmId id() const { return vmId; }

    /** VM name. */
    const std::string &name() const { return vmName; }

    /** Guest RAM size in bytes. */
    std::uint64_t ramBytes() const { return ramSize; }

    /** The VM's default EPT context. */
    ept::Ept &defaultEpt() { return *defaultContext; }
    const ept::Ept &defaultEpt() const { return *defaultContext; }

    /** Number of vCPUs. */
    unsigned vcpuCount() const
    {
        return static_cast<unsigned>(vcpus.size());
    }

    /** Access vCPU @p index. */
    cpu::Vcpu &vcpu(unsigned index = 0);

    /**
     * Allocate @p bytes of guest physical address space from this VM's
     * RAM (bump allocation). The returned region is already mapped
     * RW(X) in the default context. Guest RAM is 2 MiB-aligned in
     * host-physical space, so a 2 MiB-aligned GPA here is also 2 MiB
     * aligned physically — eligible for large-page EPT mappings.
     *
     * @param align GPA alignment (power of two, >= pageSize).
     * @return base GPA, or nullopt when RAM is exhausted.
     */
    std::optional<Gpa> allocGuestMem(std::uint64_t bytes,
                                     std::uint64_t align = pageSize);

    /**
     * Host-physical address backing guest RAM @p gpa (privileged;
     * tests and host-interposition handlers use this).
     */
    Hpa ramGpaToHpa(Gpa gpa) const;

    /**
     * Run @p guest_code on vCPU @p vcpu_index, converting any faulting
     * VM exit (EPT violation, bad VMFUNC) into a GuestRunResult. After
     * a faulting exit the vCPU is restored to its default EPT context,
     * as the hypervisor's fault policy would do before any fix-up.
     */
    GuestRunResult run(unsigned vcpu_index,
                       const std::function<void()> &guest_code);

    /** The owning hypervisor. */
    Hypervisor &hypervisor() { return hyper; }

    /**
     * Engine shard this VM's actors schedule on (default 0). A VM and
     * all its vCPUs always share one shard; every VM of one
     * Hypervisor instance must share it too (they interact through
     * the hypervisor's stats, the EPT sharing services and any common
     * NIC). Cluster-scale scenarios that want parallelism therefore
     * model one Hypervisor ("machine") per shard and connect them
     * through Engine::post() (see DESIGN.md §11).
     */
    ShardId shard() const { return shardId; }

    /** Tag this VM (and all its vCPUs) with @p shard. */
    void setShard(ShardId shard);

  private:
    Hypervisor &hyper;
    VmId vmId;
    std::string vmName;
    std::uint64_t ramSize;
    ShardId shardId = 0;
    Hpa ramBase = 0;
    std::uint64_t ramBump = 0;
    std::unique_ptr<ept::Ept> defaultContext;
    std::vector<std::unique_ptr<cpu::Vcpu>> vcpus;
};

} // namespace elisa::hv

#endif // ELISA_HV_VM_HH
