#include "hv/telemetry_publisher.hh"

#include <cstring>

#include "base/logging.hh"
#include "cpu/guest_view.hh"

namespace elisa::hv
{

namespace
{

using Layout = sim::TelemetryRegionLayout;

void
write32(mem::HostMemory &pm, Hpa hpa, std::uint32_t value)
{
    std::memcpy(pm.raw(hpa, 4), &value, 4);
}

std::uint32_t
read32(const mem::HostMemory &pm, Hpa hpa)
{
    std::uint32_t v;
    std::memcpy(&v, pm.raw(hpa, 4), 4);
    return v;
}

} // anonymous namespace

TelemetryPublisher::TelemetryPublisher(Hypervisor &hv,
                                       const sim::Metrics &metrics)
    : hyper(hv), metricsRef(metrics)
{
    publishedId = hv.stats().id("telemetry_published");
    overflowId = hv.stats().id("telemetry_publish_overflow");
    scrapeId = hv.stats().id("telemetry_vmcall_scrapes");
}

std::size_t
TelemetryPublisher::addSink(Hpa base, std::uint64_t bytes,
                            std::string name)
{
    panic_if(bytes <= Layout::headerBytes + 2,
             "telemetry sink '%s' too small (%llu bytes)", name.c_str(),
             (unsigned long long)bytes);
    const std::uint64_t slot = (bytes - Layout::headerBytes) / 2;
    panic_if(slot > ~std::uint32_t{0},
             "telemetry sink '%s' slot exceeds u32", name.c_str());
    // Fail fast on a wild window rather than at the first publish.
    hyper.memory().raw(base, Layout::regionBytes(
                                 static_cast<std::uint32_t>(slot)));
    Sink sink{base, static_cast<std::uint32_t>(slot), std::move(name)};
    initRegion(sink);
    sinks.push_back(std::move(sink));
    return sinks.size() - 1;
}

std::uint32_t
TelemetryPublisher::slotBytes(std::size_t index) const
{
    panic_if(index >= sinks.size(), "bad sink index %zu", index);
    return sinks[index].slotBytes;
}

Hpa
TelemetryPublisher::sinkBase(std::size_t index) const
{
    panic_if(index >= sinks.size(), "bad sink index %zu", index);
    return sinks[index].base;
}

void
TelemetryPublisher::initRegion(const Sink &sink)
{
    mem::HostMemory &pm = hyper.memory();
    pm.zero(sink.base, Layout::regionBytes(sink.slotBytes));
    write32(pm, sink.base + Layout::offMagic, Layout::magic);
    std::uint16_t version = sim::snapshotVersion;
    std::memcpy(pm.raw(sink.base + Layout::offVersion, 2), &version, 2);
    write32(pm, sink.base + Layout::offSlotBytes, sink.slotBytes);
}

std::uint64_t
TelemetryPublisher::publish(SimNs now)
{
    // Keep the per-VM flight-recorder rings current at every
    // publication boundary; a VM killed between publications then
    // loses at most one cadence of spans to the global ring.
    if (hyper.flightRecorder() && hyper.tracer())
        hyper.flightRecorder()->observe(*hyper.tracer());

    const std::uint64_t seq = ++pubCount;
    const sim::TelemetrySources sources{&metricsRef, hyper.ledger(),
                                        hyper.tracer()};
    last = sim::serializeTelemetrySnapshot(sources, seq, now, traceTail);
    hyper.stats().inc(publishedId);

    mem::HostMemory &pm = hyper.memory();
    for (const Sink &sink : sinks) {
        if (last.size() > sink.slotBytes) {
            // Leave the sink on its previous snapshot: stale beats
            // truncated.
            ++overflowCount;
            hyper.stats().inc(overflowId);
            continue;
        }
        // Seqlock write: odd seq while the flip is in flight, even
        // once the region is consistent again.
        const std::uint64_t lock = pm.read64(sink.base + Layout::offSeq);
        pm.write64(sink.base + Layout::offSeq, lock + 1);
        const std::uint32_t target =
            read32(pm, sink.base + Layout::offActive) ^ 1u;
        pm.write(sink.base + Layout::slotOffset(target, sink.slotBytes),
                 last.data(), last.size());
        write32(pm,
                sink.base + (target == 0 ? Layout::offLen0
                                         : Layout::offLen1),
                static_cast<std::uint32_t>(last.size()));
        write32(pm, sink.base + Layout::offActive, target);
        pm.write64(sink.base + Layout::offPubCount, seq);
        pm.write64(sink.base + Layout::offLastPubNs, now);
        pm.write64(sink.base + Layout::offSeq, lock + 2);
    }
    return seq;
}

std::uint64_t
TelemetryPublisher::registerScrapeHypercall()
{
    if (scrapeNr != 0)
        return scrapeNr;
    scrapeNr = hyper.allocServiceNr();
    hyper.setHypercallName(scrapeNr, "hc_telemetry_scrape");
    hyper.registerHypercall(
        scrapeNr,
        [this](cpu::Vcpu &vcpu, const cpu::HypercallArgs &args) {
            // (dest_gpa, capacity) -> snapshot length | hcError.
            if (last.empty() || args.arg1 < last.size())
                return hcError;
            hyper.stats().inc(scrapeId);
            cpu::GuestView view(vcpu);
            view.writeBytes(args.arg0, last.data(), last.size());
            return static_cast<std::uint64_t>(last.size());
        });
    return scrapeNr;
}

} // namespace elisa::hv
