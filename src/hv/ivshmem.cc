#include "hv/ivshmem.hh"

#include "base/logging.hh"
#include "hv/hypervisor.hh"

namespace elisa::hv
{

IvshmemRegion::IvshmemRegion(Hypervisor &hv, std::string name,
                             std::uint64_t size_bytes)
    : hyper(hv), regionName(std::move(name)),
      bytes(pageAlignUp(size_bytes))
{
    fatal_if(bytes == 0, "empty ivshmem region");
    auto base = hv.allocator().alloc(bytes / pageSize);
    fatal_if(!base, "out of physical memory for ivshmem region '%s'",
             regionName.c_str());
    hpaBase = *base;
    hv.memory().zero(hpaBase, bytes);
}

IvshmemRegion::~IvshmemRegion()
{
    if (attachments != 0)
        warn("ivshmem region '%s' destroyed with %u live attachments",
             regionName.c_str(), attachments);
    hyper.allocator().free(hpaBase, bytes / pageSize);
}

bool
IvshmemRegion::attach(Vm &vm, Gpa gpa, ept::Perms perms)
{
    if (!vm.defaultEpt().mapRange(gpa, hpaBase, bytes, perms))
        return false;
    // Under demand paging the region's frames may be managed (a
    // scenario put them under manageRange); register this mapping so
    // its leaves stay in lock-step with the frame states.
    if (Pager *pager = hyper.pager())
        pager->addMirror(vm.defaultEpt(), gpa, hpaBase, bytes);
    ++attachments;
    hyper.stats().inc("ivshmem_attach");
    return true;
}

void
IvshmemRegion::detach(Vm &vm, Gpa gpa)
{
    if (Pager *pager = hyper.pager())
        pager->dropMirror(vm.defaultEpt().eptp(), gpa);
    const std::uint64_t removed = vm.defaultEpt().unmapRange(gpa, bytes);
    panic_if(removed != bytes / pageSize,
             "ivshmem detach did not match an attach");
    hyper.inveptAll(vm.defaultEpt().eptp());
    panic_if(attachments == 0, "detach without attach");
    --attachments;
}

} // namespace elisa::hv
