#include "hv/grant_table.hh"

#include "base/logging.hh"

namespace elisa::hv
{

CapId
GrantTable::create(CapId parent, VmId holder)
{
    std::uint32_t depth = 0;
    if (parent != invalidCapId) {
        auto it = nodes.find(parent);
        panic_if(it == nodes.end(),
                 "grant created under unknown parent %llu",
                 (unsigned long long)parent);
        depth = it->second.depth + 1;
    }
    const CapId id = nextId++;
    GrantNode node;
    node.id = id;
    node.parent = parent;
    node.holder = holder;
    node.depth = depth;
    nodes.emplace(id, std::move(node));
    if (parent != invalidCapId)
        nodes[parent].children.push_back(id);
    return id;
}

const GrantNode *
GrantTable::find(CapId id) const
{
    auto it = nodes.find(id);
    return it == nodes.end() ? nullptr : &it->second;
}

void
GrantTable::collect(CapId id, std::vector<CapId> &out) const
{
    auto it = nodes.find(id);
    if (it == nodes.end())
        return;
    for (const CapId child : it->second.children)
        collect(child, out);
    out.push_back(id);
}

std::vector<CapId>
GrantTable::subtree(CapId id) const
{
    std::vector<CapId> out;
    collect(id, out);
    return out;
}

bool
GrantTable::erase(CapId id)
{
    auto it = nodes.find(id);
    if (it == nodes.end())
        return false;
    panic_if(!it->second.children.empty(),
             "grant %llu erased with %zu live children",
             (unsigned long long)id, it->second.children.size());
    const CapId parent = it->second.parent;
    nodes.erase(it);
    if (parent != invalidCapId) {
        auto pit = nodes.find(parent);
        if (pit != nodes.end()) {
            auto &kids = pit->second.children;
            for (auto k = kids.begin(); k != kids.end(); ++k) {
                if (*k == id) {
                    kids.erase(k);
                    break;
                }
            }
        }
    }
    return true;
}

std::uint32_t
GrantTable::depthOf(CapId id) const
{
    const GrantNode *node = find(id);
    return node ? node->depth : 0;
}

} // namespace elisa::hv
