/**
 * @file
 * The hypervisor: machine resources, VM lifecycle, hypercall dispatch,
 * EPTP-list management, INVEPT, and inter-VM channels.
 */

#ifndef ELISA_HV_HYPERVISOR_HH
#define ELISA_HV_HYPERVISOR_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "cpu/exit.hh"
#include "cpu/vcpu.hh"
#include "hv/grant_table.hh"
#include "hv/hypercall.hh"
#include "hv/paging.hh"
#include "hv/vm.hh"
#include "mem/frame_allocator.hh"
#include "mem/host_memory.hh"
#include "sim/cost_model.hh"
#include "sim/exit_ledger.hh"
#include "sim/fault.hh"
#include "sim/flight_recorder.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "sim/tracer.hh"

namespace elisa::hv
{

/** Identifier of an inter-VM channel. */
using ChannelId = std::uint32_t;

/**
 * The machine + hypervisor. Owns physical memory, the frame allocator,
 * the cost model, and every VM.
 */
class Hypervisor : public cpu::HypercallSink, public cpu::EptFaultSink
{
  public:
    /**
     * @param phys_mem_bytes machine physical memory size.
     * @param cost timing parameters (copied).
     */
    explicit Hypervisor(std::uint64_t phys_mem_bytes,
                        const sim::CostModel &cost = sim::CostModel{});

    ~Hypervisor() override;

    // ---- machine resources ----------------------------------------
    mem::HostMemory &memory() { return physMem; }
    mem::FrameAllocator &allocator() { return frames; }
    const sim::CostModel &cost() const { return costModel; }
    sim::StatSet &stats() { return statSet; }

    /** Interned id of the per-reason "exit_*" counter (fault path). */
    sim::StatId
    exitStatId(cpu::ExitReason reason) const
    {
        return exitIds[static_cast<unsigned>(reason)];
    }

    /**
     * Engine shard this machine's actors schedule on (default 0).
     * One Hypervisor is one simulated machine, and everything inside
     * a machine shares mutable state (the global StatSet, the EPT
     * sharing services, VM channels), so the machine is the natural
     * sharding unit: setShard() tags the hypervisor and every
     * existing and future VM/vCPU. Multi-machine scenarios give each
     * machine its own shard and connect them with Engine::post().
     */
    ShardId shard() const { return machineShard; }

    /** Move this machine — all its VMs and vCPUs — to @p shard. */
    void setShard(ShardId shard);

    // ---- VM lifecycle ----------------------------------------------
    /** Create a VM (inheriting the machine shard); the hypervisor
     *  keeps ownership. */
    Vm &createVm(const std::string &name, std::uint64_t ram_bytes,
                 unsigned vcpu_count = 1);

    /** Look up a VM by id (panics on bad id). */
    Vm &vm(VmId id);

    /** True when VM @p id exists (services probe before touching). */
    bool hasVm(VmId id) const { return vms.contains(id); }

    /** Destroy a VM, releasing its RAM, EPT contexts and vCPUs.
     *  Registered destroy hooks run first (while the VM still
     *  exists), letting services revoke state tied to it. */
    void destroyVm(VmId id);

    /** Callback invoked at the start of destroyVm(). */
    using VmDestroyHook = std::function<void(VmId)>;

    /** Register a VM-teardown observer (services use this). */
    void addVmDestroyHook(VmDestroyHook hook);

    /** Number of live VMs. */
    std::size_t vmCount() const { return vms.size(); }

    // ---- demand paging ---------------------------------------------
    /**
     * Turn on demand paging: creates the machine Pager and registers
     * its VM-teardown hook. Call once, before putting any memory under
     * management and before building attachments whose windows should
     * fault (pre-existing attachments are not retro-managed). With
     * paging never enabled every translation behaves exactly as
     * before — the only added work is one pointer test on the
     * EPT-violation path.
     */
    Pager &enablePaging(const PagingConfig &config = {});

    /** The machine pager, or nullptr when paging is not enabled. */
    Pager *pager() { return pagerPtr.get(); }

    /** cpu::EptFaultSink: forward an EPT violation to the pager. */
    bool resolveEptViolation(
        cpu::Vcpu &vcpu, const ept::EptViolation &violation) override;

    // ---- capability grants -----------------------------------------
    /**
     * The machine-wide grant table: the tree shape of every live
     * capability grant. Sharing services (ELISA) mint nodes here and
     * key their own payload by the returned CapId; teardown order is
     * always derived from this table (see grant_table.hh).
     */
    GrantTable &grants() { return grantTable; }
    const GrantTable &grants() const { return grantTable; }

    // ---- fault injection -------------------------------------------
    /**
     * Install (or with nullptr remove) a fault plan. Non-owning: the
     * plan must outlive its installation. With no plan installed the
     * hooked paths cost one pointer test and nothing else.
     */
    void setFaultPlan(sim::FaultPlan *plan) { faults = plan; }

    /** The installed fault plan, or nullptr. */
    sim::FaultPlan *faultPlan() const { return faults; }

    // ---- tracing ---------------------------------------------------
    /**
     * Install (or with nullptr remove) a trace collector. Non-owning,
     * same contract as setFaultPlan: the tracer must outlive its
     * installation, and with none installed every trace point is one
     * pointer test. Propagates to every existing and future vCPU.
     */
    void setTracer(sim::Tracer *tracer);

    /** The installed tracer, or nullptr. */
    sim::Tracer *tracer() const { return tracerPtr; }

    // ---- exit-cost ledger ------------------------------------------
    /**
     * Install (or with nullptr remove) the exit-cost ledger. Same
     * contract as setTracer: non-owning, propagated to every existing
     * and future vCPU, one pointer test per charge point when absent.
     * Registers display names for every exit reason and every named
     * hypercall so ExitLedger::report() renders symbolically.
     */
    void setLedger(sim::ExitLedger *ledger);

    /** The installed ledger, or nullptr. */
    sim::ExitLedger *ledger() const { return ledgerPtr; }

    // ---- flight recorder -------------------------------------------
    /**
     * Install (or with nullptr remove) the per-VM flight recorder.
     * Non-owning, same contract as setTracer. The hypervisor installs
     * its track resolver (vCPU track → owning VM, remembered across VM
     * death), baselines it against the installed ledger, and on every
     * destroyVm() drains the tracer one final time and freezes the
     * dying VM's post-mortem before teardown hooks run. Install after
     * setLedger()/setTracer() for a full-history baseline.
     */
    void setFlightRecorder(sim::FlightRecorder *recorder);

    /** The installed flight recorder, or nullptr. */
    sim::FlightRecorder *flightRecorder() const { return recorderPtr; }

    /**
     * Attach this machine's StatSets to @p metrics as labeled counter
     * families: the hypervisor set as {layer="hv"} with prefix "hv_",
     * every vCPU set as {vm, vcpu} with prefix "vcpu_". Call after the
     * VMs of interest exist (attachment is by StatSet, and Metrics
     * holds non-owning pointers — re-call after creating more VMs).
     * destroyVm() detaches the dying VM's vCPU sets automatically, so
     * killing a VM mid-flight leaves the registry safe to collect.
     */
    void attachMetrics(sim::Metrics &metrics);

    /**
     * Give hypercall @p nr a human-readable span name (services call
     * this next to registerHypercall). Unnamed hypercalls trace as
     * "hc_0x<nr>".
     */
    void setHypercallName(std::uint64_t nr, std::string name);

    /** Convenience overload for the Hc enum. */
    void
    setHypercallName(Hc nr, std::string name)
    {
        setHypercallName(static_cast<std::uint64_t>(nr),
                         std::move(name));
    }

    /**
     * Destroy VMs whose injected death happened inside their own
     * hypercall (the teardown is deferred past the unwinding guest
     * frames). Runs automatically at the next hypercall dispatch;
     * tests may call it directly.
     * @param except VM id to leave alone (a VM whose frames are still
     *        live on the stack); invalidVmId reaps everything.
     * @return number of VMs reaped.
     */
    unsigned reapKilledVms(VmId except = invalidVmId);

    // ---- hypercalls --------------------------------------------------
    /**
     * Register @p handler for hypercall @p nr; replaces any previous
     * registration (tests use that to interpose).
     */
    void registerHypercall(std::uint64_t nr, HypercallHandler handler);

    /** Convenience overload for the Hc enum. */
    void
    registerHypercall(Hc nr, HypercallHandler handler)
    {
        registerHypercall(static_cast<std::uint64_t>(nr),
                          std::move(handler));
    }

    /** cpu::HypercallSink: dispatch a VMCALL exit. */
    std::uint64_t handleHypercall(cpu::Vcpu &vcpu,
                                  const cpu::HypercallArgs &args) override;

    /**
     * Hand out a fresh hypercall number in the service range, for
     * host-interposition services that register per-instance handlers.
     */
    std::uint64_t
    allocServiceNr()
    {
        return nextServiceNr++;
    }

    // ---- EPTP-list management (the ELISA enabler) --------------------
    /**
     * Install @p eptp into @p vcpu's EPTP list.
     * @return the chosen index, or nullopt when the list is full.
     */
    std::optional<EptpIndex> installEptp(cpu::Vcpu &vcpu,
                                         std::uint64_t eptp);

    /**
     * Remove entry @p index from @p vcpu's list and flush its cached
     * translations (INVEPT single-context).
     */
    void removeEptp(cpu::Vcpu &vcpu, EptpIndex index);

    /** INVEPT single-context across every vCPU of every VM. */
    void inveptAll(std::uint64_t eptp);

    /** INVEPT global across every vCPU. */
    void inveptGlobal();

    // ---- inter-VM channels (negotiation slow path) -------------------
    /**
     * Create a message channel.
     * @param capacity maximum queued messages.
     */
    ChannelId createChannel(std::size_t capacity = 64);

    /** Host-side: push a message (no cost accounting). */
    bool channelPush(ChannelId id, std::vector<std::uint8_t> msg);

    /** Host-side: pop a message if available. */
    std::optional<std::vector<std::uint8_t>> channelPop(ChannelId id);

    /** Messages currently queued in @p id. */
    std::size_t channelDepth(ChannelId id) const;

  private:
    struct Channel
    {
        std::size_t capacity;
        std::deque<std::vector<std::uint8_t>> queue;
    };

    /** Install the Nop/GetVmId/Chan* base handlers. */
    void registerBaseHypercalls();

    sim::CostModel costModel;
    mem::HostMemory physMem;
    mem::FrameAllocator frames;
    sim::StatSet statSet;
    GrantTable grantTable;
    std::map<VmId, std::unique_ptr<Vm>> vms;
    ShardId machineShard = 0;
    VmId nextVmId = 0;
    VcpuId nextVcpuId = 0;
    std::map<std::uint64_t, HypercallHandler> hypercalls;
    std::vector<Channel> channels;
    std::uint64_t nextServiceNr =
        static_cast<std::uint64_t>(Hc::ServiceBase);
    std::vector<VmDestroyHook> destroyHooks;

    /** Installed fault plan (nullptr = fault injection off). */
    sim::FaultPlan *faults = nullptr;

    /** Installed tracer (nullptr = tracing off). */
    sim::Tracer *tracerPtr = nullptr;

    /** Installed exit ledger (nullptr = accounting off). */
    sim::ExitLedger *ledgerPtr = nullptr;

    /** Installed flight recorder (nullptr = post-mortems off). */
    sim::FlightRecorder *recorderPtr = nullptr;

    /**
     * Registry attachMetrics() last exported into — destroyVm()
     * detaches the dying VM's vCPU StatSets from it so collection
     * never walks freed memory.
     */
    sim::Metrics *metricsPtr = nullptr;

    /**
     * vCPU id → owning VM, kept after the VM dies: the flight
     * recorder's resolver must still attribute a dead VM's final
     * spans when its dump is built during teardown.
     */
    std::map<VcpuId, VmId> vcpuOwner;

    /** Resolve the dispatch-span name for hypercall @p nr (lazily
     *  interned into the installed tracer). */
    sim::TraceNameId hcSpanName(std::uint64_t nr);

    /** Registered hypercall display names (nr -> name). */
    std::map<std::uint64_t, std::string> hcNames;
    /** Per-tracer cache of interned hypercall span names. */
    std::map<std::uint64_t, sim::TraceNameId> hcNameIds;
    // Interned fault-annotation names, resolved at setTracer().
    sim::TraceNameId faultDropName = 0;
    sim::TraceNameId faultErrorName = 0;
    sim::TraceNameId faultDelayName = 0;
    sim::TraceNameId faultDupName = 0;
    sim::TraceNameId faultKillName = 0;

    /** VMs killed mid-own-hypercall, awaiting a safe teardown point. */
    std::vector<VmId> doomedVms;

    /** The demand pager (nullptr = paging off). */
    std::unique_ptr<Pager> pagerPtr;

    // Interned hot/fault-path counter ids (resolved at construction).
    sim::StatId hypercallsId = 0;
    sim::StatId hypercallUnknownId = 0;
    sim::StatId faultInjectedId = 0;
    sim::StatId faultDroppedId = 0;
    sim::StatId faultDelayedId = 0;
    sim::StatId faultDuplicatedId = 0;
    sim::StatId faultErrorsId = 0;
    sim::StatId faultVmKillsId = 0;
    sim::StatId exitIds[cpu::exitReasonCount] = {};

    friend class Vm;    // Vm construction pulls frames/vcpu ids.
    friend class Pager; // the pager is the hypervisor's paging half.
};

} // namespace elisa::hv

#endif // ELISA_HV_HYPERVISOR_HH
