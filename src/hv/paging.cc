#include "hv/paging.hh"

#include <cstring>

#include "base/logging.hh"
#include "base/trace.hh"
#include "hv/hypervisor.hh"

namespace elisa::hv
{

namespace
{

/** Poison pattern written over non-resident frame bytes: anything that
 *  dodges the fault path reads garbage instead of silently working. */
constexpr int poisonByte = 0x5a;

} // anonymous namespace

Pager::Pager(Hypervisor &hypervisor, const PagingConfig &config)
    : hv(hypervisor), backing(config.swapSlots),
      residentLimitFrames(config.residentLimitFrames)
{
    sim::StatSet &stats = hv.stats();
    faultsId = stats.id("pager_faults");
    pagesInId = stats.id("pager_pages_swapped_in");
    pagesOutId = stats.id("pager_pages_swapped_out");
    zeroFillsId = stats.id("pager_zero_fills");
    hostTouchesId = stats.id("pager_host_touches");
    pageInErrorsId = stats.id("pager_page_in_errors");
    pageInDelaysId = stats.id("pager_page_in_delays");
    pageInKillsId = stats.id("pager_page_in_kills");
}

void
Pager::refreshTraceNames()
{
    if (hv.tracerPtr == namesFor)
        return;
    namesFor = hv.tracerPtr;
    if (!namesFor)
        return;
    pageInName = namesFor->intern("page_in");
    zeroFillName = namesFor->intern("zero_fill");
    pageOutName = namesFor->intern("page_out");
    pageErrorName = namesFor->intern("fault_page_in_error");
    pageDelayName = namesFor->intern("fault_page_in_delay");
    pageKillName = namesFor->intern("fault_kill_vm");
}

void
Pager::manageRange(VmId owner, ept::Ept &ept, Gpa gpa, Hpa hpa,
                   std::uint64_t len, bool demand_zero)
{
    panic_if(!isPageAligned(gpa) || !isPageAligned(hpa) ||
                 !isPageAligned(len) || len == 0,
             "managed range must be page-aligned and non-empty");

    const std::uint64_t eptp = ept.eptp();
    auto [range_it, fresh_range] =
        rangesByEptp[eptp].try_emplace(gpa, Range{gpa, hpa, len});
    panic_if(!fresh_range, "managed range at GPA %llx registered twice",
             (unsigned long long)gpa);

    for (std::uint64_t off = 0; off < len; off += pageSize) {
        const Hpa frame_hpa = hpa + off;
        const Gpa page_gpa = gpa + off;
        auto [it, fresh] = framesByHpa.try_emplace(frame_hpa);
        Frame &frame = it->second;
        if (fresh) {
            frame.owner = owner;
            if (demand_zero) {
                frame.state = FrameState::ZeroPending;
                const bool ok = ept.markBallooned(page_gpa);
                panic_if(!ok,
                         "managing GPA %llx without a present 4 KiB "
                         "leaf",
                         (unsigned long long)page_gpa);
                std::memset(hv.physMem.raw(frame_hpa, pageSize),
                            poisonByte, pageSize);
            } else {
                frame.state = FrameState::Resident;
                ++residentCount;
                hv.frames.addResident(owner, 1);
            }
        } else if (frame.state != FrameState::Resident) {
            // The frame is already managed (another range of the same
            // object); demote this context's fresh leaf to match.
            const bool ok =
                frame.state == FrameState::Swapped
                    ? ept.markSwapped(page_gpa, frame.slot)
                    : ept.markBallooned(page_gpa);
            panic_if(!ok,
                     "managing GPA %llx without a present 4 KiB leaf",
                     (unsigned long long)page_gpa);
        }
        frame.mappings.push_back({eptp, &ept, page_gpa});
    }
    // Demoted leaves may be cached; flush the context once.
    hv.inveptAll(eptp);
    ELISA_TRACE(Hv,
                "pager manages %llu pages of VM %u at HPA %llx (%s)",
                (unsigned long long)(len / pageSize), owner,
                (unsigned long long)hpa,
                demand_zero ? "demand-zero" : "resident");
}

void
Pager::manageVmRam(Vm &vm, bool demand_zero)
{
    manageRange(vm.id(), vm.defaultEpt(), 0, vm.ramGpaToHpa(0),
                vm.ramBytes(), demand_zero);
}

void
Pager::manageObject(Vm &owner_vm, Hpa obj_hpa, std::uint64_t len,
                    bool demand_zero)
{
    const Hpa ram_base = owner_vm.ramGpaToHpa(0);
    panic_if(obj_hpa < ram_base ||
                 obj_hpa + len > ram_base + owner_vm.ramBytes(),
             "object outside VM '%s' RAM", owner_vm.name().c_str());
    manageRange(owner_vm.id(), owner_vm.defaultEpt(),
                obj_hpa - ram_base, obj_hpa, len, demand_zero);
}

void
Pager::addMirror(ept::Ept &ept, Gpa gpa, Hpa hpa, std::uint64_t len)
{
    panic_if(!isPageAligned(gpa) || !isPageAligned(hpa) ||
                 !isPageAligned(len) || len == 0,
             "mirror range must be page-aligned and non-empty");

    const std::uint64_t eptp = ept.eptp();
    bool any = false;
    for (std::uint64_t off = 0; off < len; off += pageSize) {
        auto it = framesByHpa.find(hpa + off);
        if (it == framesByHpa.end())
            continue;
        any = true;
        Frame &frame = it->second;
        const Gpa page_gpa = gpa + off;
        if (frame.state != FrameState::Resident) {
            const bool ok =
                frame.state == FrameState::Swapped
                    ? ept.markSwapped(page_gpa, frame.slot)
                    : ept.markBallooned(page_gpa);
            panic_if(!ok,
                     "mirroring GPA %llx without a present 4 KiB leaf",
                     (unsigned long long)page_gpa);
        }
        frame.mappings.push_back({eptp, &ept, page_gpa});
    }
    if (any) {
        rangesByEptp[eptp].insert_or_assign(gpa, Range{gpa, hpa, len});
        hv.inveptAll(eptp);
    }
}

void
Pager::dropContext(std::uint64_t eptp)
{
    rangesByEptp.erase(eptp);
    for (auto &[hpa, frame] : framesByHpa) {
        (void)hpa;
        std::erase_if(frame.mappings, [eptp](const Mapping &m) {
            return m.eptp == eptp;
        });
    }
}

void
Pager::dropMirror(std::uint64_t eptp, Gpa gpa)
{
    auto ctx = rangesByEptp.find(eptp);
    if (ctx == rangesByEptp.end())
        return;
    auto it = ctx->second.find(gpa);
    if (it == ctx->second.end())
        return;
    const Range range = it->second;
    ctx->second.erase(it);
    if (ctx->second.empty())
        rangesByEptp.erase(ctx);
    for (std::uint64_t off = 0; off < range.len; off += pageSize) {
        auto fit = framesByHpa.find(range.hpa + off);
        if (fit == framesByHpa.end())
            continue;
        const Gpa page_gpa = range.gpa + off;
        std::erase_if(fit->second.mappings,
                      [eptp, page_gpa](const Mapping &m) {
                          return m.eptp == eptp && m.gpa == page_gpa;
                      });
    }
}

void
Pager::onVmDestroy(VmId vm)
{
    // Runs while the VM still exists (destroyVm hook).
    dropContext(hv.vm(vm).defaultEpt().eptp());
    for (auto it = framesByHpa.begin(); it != framesByHpa.end();) {
        Frame &frame = it->second;
        if (frame.owner != vm) {
            ++it;
            continue;
        }
        switch (frame.state) {
          case FrameState::Resident:
            --residentCount;
            break;
          case FrameState::Swapped:
            backing.free(frame.slot);
            --swappedCount;
            break;
          case FrameState::ZeroPending:
            break;
        }
        // Mirrors in other VMs' contexts are revoked by the sharing
        // service's own teardown (it drops those contexts); the pager
        // only forgets. Per-owner resident/swapped book entries die
        // with the allocator's dropOwner.
        it = framesByHpa.erase(it);
    }
}

void
Pager::setResidentLimit(std::uint64_t frames)
{
    residentLimitFrames = frames;
}

void
Pager::setBalloonTarget(VmId vm, std::uint64_t frames)
{
    hv.frames.setBalloonTarget(vm, frames);
}

std::optional<Pager::FrameState>
Pager::frameState(Hpa hpa) const
{
    auto it = framesByHpa.find(hpa);
    if (it == framesByHpa.end())
        return std::nullopt;
    return it->second.state;
}

std::optional<Hpa>
Pager::findFrame(std::uint64_t eptp, Gpa gpa) const
{
    auto ctx = rangesByEptp.find(eptp);
    if (ctx == rangesByEptp.end())
        return std::nullopt;
    const Gpa page = pageAlignDown(gpa);
    auto it = ctx->second.upper_bound(page);
    if (it == ctx->second.begin())
        return std::nullopt;
    --it;
    const Range &range = it->second;
    if (page < range.gpa || page >= range.gpa + range.len)
        return std::nullopt;
    const Hpa hpa = range.hpa + (page - range.gpa);
    return framesByHpa.contains(hpa) ? std::optional<Hpa>(hpa)
                                     : std::nullopt;
}

bool
Pager::ownerOverTarget(VmId owner) const
{
    const mem::FrameAllocator::OwnerUsage *usage =
        hv.frames.ownerUsage(owner);
    return usage && usage->balloonTargetFrames != 0 &&
           usage->residentFrames > usage->balloonTargetFrames;
}

std::optional<Hpa>
Pager::pickVictim(Hpa except)
{
    const std::size_t n = framesByHpa.size();
    // Two laps suffice: the first clears every accessed flag, the
    // second then finds an unreferenced frame (or nothing is resident
    // but `except`). +1 covers an unaligned starting hand.
    for (std::size_t scanned = 0; scanned < 2 * n + 1; ++scanned) {
        auto it = framesByHpa.lower_bound(clockHand);
        if (it == framesByHpa.end())
            it = framesByHpa.begin();
        const Hpa hpa = it->first;
        Frame &frame = it->second;
        clockHand = hpa + pageSize;
        if (frame.state != FrameState::Resident || hpa == except)
            continue;
        if (ownerOverTarget(frame.owner))
            return hpa; // balloon pressure: no second chance
        bool referenced = false;
        for (const Mapping &m : frame.mappings)
            referenced |= m.ept->accessedAndClear(m.gpa);
        if (!referenced)
            return hpa;
    }
    return std::nullopt;
}

bool
Pager::evictFrame(Hpa hpa)
{
    Frame &frame = framesByHpa.at(hpa);
    panic_if(frame.state != FrameState::Resident,
             "evicting non-resident frame %llx",
             (unsigned long long)hpa);
    auto slot = backing.alloc();
    if (!slot)
        return false; // swap device full
    backing.write(*slot, hv.physMem.raw(hpa, pageSize));
    for (const Mapping &m : frame.mappings) {
        const bool ok = m.ept->markSwapped(m.gpa, *slot);
        panic_if(!ok, "swap-out of GPA %llx found no present leaf",
                 (unsigned long long)m.gpa);
    }
    // Flush each affected context once: kills shared-TLB entries and
    // bumps the epochs guarding every GuestView L0 micro-cache.
    std::uint64_t flushed = 0;
    for (const Mapping &m : frame.mappings) {
        if (m.eptp == flushed)
            continue;
        hv.inveptAll(m.eptp);
        flushed = m.eptp;
    }
    std::memset(hv.physMem.raw(hpa, pageSize), poisonByte, pageSize);
    frame.state = FrameState::Swapped;
    frame.slot = *slot;
    --residentCount;
    ++swappedCount;
    hv.frames.addResident(frame.owner, -1);
    hv.frames.addSwapped(frame.owner, 1);
    hv.statSet.inc(pagesOutId);
    return true;
}

std::optional<unsigned>
Pager::makeRoom(Hpa except)
{
    unsigned evicted = 0;
    while (residentLimitFrames != 0 &&
           residentCount + 1 > residentLimitFrames) {
        auto victim = pickVictim(except);
        if (!victim || !evictFrame(*victim))
            return std::nullopt;
        ++evicted;
    }
    return evicted;
}

std::optional<Pager::ServiceResult>
Pager::bringIn(Hpa hpa, SimNs delay)
{
    Frame &frame = framesByHpa.at(hpa);
    panic_if(frame.state == FrameState::Resident,
             "paging in a resident frame %llx", (unsigned long long)hpa);
    const bool zero_fill = frame.state == FrameState::ZeroPending;

    // Free the faulting page's slot before making room, so an almost-
    // full swap device can recycle it for a victim; restore it if no
    // room can be made after all.
    std::vector<std::uint8_t> buf;
    if (!zero_fill) {
        buf.resize(pageSize);
        backing.read(frame.slot, buf.data());
        backing.free(frame.slot);
    }
    auto evicted = makeRoom(hpa);
    if (!evicted) {
        if (!zero_fill) {
            auto slot = backing.alloc();
            panic_if(!slot, "freed swap slot vanished");
            backing.write(*slot, buf.data());
            frame.slot = *slot;
        }
        return std::nullopt;
    }

    if (zero_fill) {
        hv.physMem.zero(hpa, pageSize);
        hv.statSet.inc(zeroFillsId);
    } else {
        std::memcpy(hv.physMem.raw(hpa, pageSize), buf.data(),
                    pageSize);
        --swappedCount;
        hv.frames.addSwapped(frame.owner, -1);
        hv.statSet.inc(pagesInId);
    }
    for (const Mapping &m : frame.mappings) {
        const bool ok = m.ept->markPresent(m.gpa, hpa);
        panic_if(!ok, "page-in of GPA %llx found no paged leaf",
                 (unsigned long long)m.gpa);
    }
    frame.state = FrameState::Resident;
    frame.slot = 0;
    ++residentCount;
    hv.frames.addResident(frame.owner, 1);

    const sim::CostModel &cost = hv.costModel;
    ServiceResult result;
    result.zeroFill = zero_fill;
    result.evicted = *evicted;
    result.pageNs = cost.pageFaultHandleNs + delay +
                    (zero_fill ? cost.zeroFillNs : cost.swapInNs);
    return result;
}

std::optional<SimNs>
Pager::pageInHook(cpu::Vcpu &vcpu, Gpa gpa)
{
    sim::FaultPlan *plan = hv.faults;
    if (!plan)
        return SimNs{0};
    // Tear down VMs whose injected death was deferred out of their own
    // frames (mirrors the hypercall dispatcher).
    if (!hv.doomedVms.empty())
        hv.reapKilledVms(vcpu.vm());

    const sim::FaultDecision fault = plan->onPageIn(vcpu.vm());
    if (fault.action == sim::FaultAction::None)
        return SimNs{0};
    refreshTraceNames();
    switch (fault.action) {
      case sim::FaultAction::Error:
        // The swap device fails the read; the page stays out and the
        // guest sees the EPT-violation exit. Nothing is lost — a later
        // touch pages in normally.
        hv.statSet.inc(hv.faultInjectedId);
        hv.statSet.inc(hv.faultErrorsId);
        hv.statSet.inc(pageInErrorsId);
        if (hv.tracerPtr) {
            hv.tracerPtr->instant(sim::SpanCat::Fault, pageErrorName,
                                  vcpu.id(), vcpu.clock().now(), gpa);
        }
        return std::nullopt;
      case sim::FaultAction::Delay:
        // Swap-device contention: the page-in takes longer.
        hv.statSet.inc(hv.faultInjectedId);
        hv.statSet.inc(hv.faultDelayedId);
        hv.statSet.inc(pageInDelaysId);
        if (hv.tracerPtr) {
            hv.tracerPtr->instant(sim::SpanCat::Fault, pageDelayName,
                                  vcpu.id(), vcpu.clock().now(), gpa,
                                  fault.param);
        }
        return static_cast<SimNs>(fault.param);
      case sim::FaultAction::KillVm: {
        hv.statSet.inc(hv.faultInjectedId);
        hv.statSet.inc(hv.faultVmKillsId);
        hv.statSet.inc(pageInKillsId);
        const VmId victim = static_cast<VmId>(fault.param);
        if (hv.tracerPtr) {
            hv.tracerPtr->instant(sim::SpanCat::Fault, pageKillName,
                                  vcpu.id(), vcpu.clock().now(), gpa,
                                  victim);
        }
        if (hv.recorderPtr)
            hv.recorderPtr->noteKill(victim, "fault_kill@page_in");
        if (victim == vcpu.vm()) {
            // The faulting VM dies mid-page-in: its frames (the
            // faulting access, the gate call above it) still reference
            // the vCPU, so defer teardown and unwind with the exit the
            // hardware would deliver.
            hv.doomedVms.push_back(victim);
            throw cpu::VmExitEvent(cpu::ExitReason::VmKilled, victim);
        }
        if (hv.vms.contains(victim))
            hv.destroyVm(victim);
        return SimNs{0};
      }
      default:
        return SimNs{0};
    }
}

bool
Pager::resolve(cpu::Vcpu &vcpu, const ept::EptViolation &violation)
{
    // Only translation faults are ours; a permission violation on a
    // present leaf is the guest's own problem.
    if (!violation.notMapped)
        return false;
    const std::uint64_t eptp = vcpu.activeEptp();
    auto frame_hpa = findFrame(eptp, violation.gpa);
    if (!frame_hpa)
        return false;

    hv.statSet.inc(faultsId);

    auto delay = pageInHook(vcpu, violation.gpa);
    if (!delay)
        return false;
    // A third-party kill may have torn down the object (and with it
    // the faulting range) underneath us; re-resolve.
    frame_hpa = findFrame(eptp, violation.gpa);
    if (!frame_hpa)
        return false;

    Frame &frame = framesByHpa.at(*frame_hpa);
    if (frame.state == FrameState::Resident) {
        // Lock-step invariant says this cannot happen; restore the
        // leaves defensively and let the access retry.
        for (const Mapping &m : frame.mappings)
            m.ept->markPresent(m.gpa, *frame_hpa);
        return true;
    }

    const SimNs t0 = vcpu.clock().now();
    auto service = bringIn(*frame_hpa, *delay);
    if (!service)
        return false; // budget unreachable / swap full: surface it

    // Charge the full round trip to the *faulting* guest: the exit,
    // the handler + device work (plus any evictions it forced), the
    // re-entry. The ledger rows partition the same nanoseconds.
    const sim::CostModel &cost = hv.costModel;
    sim::SimClock &clk = vcpu.clock();
    const SimNs evict_ns = SimNs{service->evicted} * cost.swapOutNs;
    clk.advance(cost.vmexitNs);
    hv.statSet.inc(hv.exitStatId(cpu::ExitReason::EptViolation));
    clk.advance(evict_ns + service->pageNs);
    clk.advance(cost.vmentryNs);

    if (sim::ExitLedger *led = vcpu.ledger()) {
        const auto vm = static_cast<std::uint32_t>(vcpu.vm());
        const auto vc = static_cast<std::uint32_t>(vcpu.id());
        led->charge(
            led->slot(vm, vc, sim::CostKind::Exit,
                      static_cast<std::uint32_t>(
                          cpu::ExitReason::EptViolation)),
            cost.vmexitNs + cost.vmentryNs);
        if (service->evicted > 0) {
            led->chargeN(
                led->slot(vm, vc, sim::CostKind::Page,
                          static_cast<std::uint32_t>(
                              sim::PageCost::PageOut)),
                cost.swapOutNs, service->evicted);
        }
        led->charge(
            led->slot(vm, vc, sim::CostKind::Page,
                      static_cast<std::uint32_t>(
                          service->zeroFill ? sim::PageCost::ZeroFill
                                            : sim::PageCost::PageIn)),
            service->pageNs);
    }
    if (hv.tracerPtr) {
        refreshTraceNames();
        const sim::TraceNameId name =
            service->zeroFill ? zeroFillName : pageInName;
        hv.tracerPtr->begin(sim::SpanCat::Page, name, vcpu.id(), t0,
                            violation.gpa, service->evicted);
        hv.tracerPtr->end(sim::SpanCat::Page, name, vcpu.id(),
                          clk.now(), violation.gpa, service->evicted);
    }
    return true;
}

bool
Pager::hostTouch(cpu::Vcpu &billed, Hpa hpa, std::uint64_t len)
{
    panic_if(len == 0, "empty host touch");
    hv.statSet.inc(hostTouchesId);
    const Hpa first = pageAlignDown(hpa);
    const Hpa last = pageAlignDown(hpa + len - 1);
    for (Hpa page = first;; page += pageSize) {
        auto it = framesByHpa.find(page);
        if (it != framesByHpa.end() &&
            it->second.state != FrameState::Resident) {
            hv.statSet.inc(faultsId);
            auto delay = pageInHook(billed, page);
            if (!delay)
                return false;
            // The kill may have dropped this very frame.
            auto again = framesByHpa.find(page);
            if (again != framesByHpa.end() &&
                again->second.state != FrameState::Resident) {
                const SimNs t0 = billed.clock().now();
                auto service = bringIn(page, *delay);
                if (!service)
                    return false;
                // Host-side service: no exit happened (the caller
                // already paid for its own VMCALL), so only the
                // handler + device work is charged.
                const sim::CostModel &cost = hv.costModel;
                const SimNs evict_ns =
                    SimNs{service->evicted} * cost.swapOutNs;
                billed.clock().advance(evict_ns + service->pageNs);
                if (sim::ExitLedger *led = billed.ledger()) {
                    const auto vm =
                        static_cast<std::uint32_t>(billed.vm());
                    const auto vc =
                        static_cast<std::uint32_t>(billed.id());
                    if (service->evicted > 0) {
                        led->chargeN(
                            led->slot(vm, vc, sim::CostKind::Page,
                                      static_cast<std::uint32_t>(
                                          sim::PageCost::PageOut)),
                            cost.swapOutNs, service->evicted);
                    }
                    led->charge(
                        led->slot(vm, vc, sim::CostKind::Page,
                                  static_cast<std::uint32_t>(
                                      service->zeroFill
                                          ? sim::PageCost::ZeroFill
                                          : sim::PageCost::PageIn)),
                        service->pageNs);
                }
                if (hv.tracerPtr) {
                    refreshTraceNames();
                    const sim::TraceNameId name = service->zeroFill
                                                      ? zeroFillName
                                                      : pageInName;
                    hv.tracerPtr->begin(sim::SpanCat::Page, name,
                                        billed.id(), t0, page,
                                        service->evicted);
                    hv.tracerPtr->end(sim::SpanCat::Page, name,
                                      billed.id(),
                                      billed.clock().now(), page,
                                      service->evicted);
                }
            }
        }
        if (page == last)
            break;
    }
    return true;
}

} // namespace elisa::hv
