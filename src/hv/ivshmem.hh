/**
 * @file
 * Direct-mapped shared memory device (ivshmem-style baseline).
 *
 * This is the paper's *direct-mapping* scheme: one host-physical region
 * mapped straight into the default EPT context of every attached VM.
 * Fast (no transition at all on access) but unisolated — any attached
 * guest can trash the region and, with it, every peer; the isolation
 * tests demonstrate exactly that.
 */

#ifndef ELISA_HV_IVSHMEM_HH
#define ELISA_HV_IVSHMEM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "ept/ept_entry.hh"
#include "hv/vm.hh"

namespace elisa::hv
{

class Hypervisor;

/**
 * A shared host-physical region that VMs may direct-map.
 */
class IvshmemRegion
{
  public:
    /**
     * Allocate @p bytes of host memory for the region.
     * @param hv the machine.
     * @param name region name (diagnostics).
     */
    IvshmemRegion(Hypervisor &hv, std::string name, std::uint64_t bytes);

    /** Release the backing frames (attached mappings must be gone). */
    ~IvshmemRegion();

    IvshmemRegion(const IvshmemRegion &) = delete;
    IvshmemRegion &operator=(const IvshmemRegion &) = delete;

    /** Region name. */
    const std::string &name() const { return regionName; }

    /** Host-physical base of the region. */
    Hpa base() const { return hpaBase; }

    /** Region size in bytes. */
    std::uint64_t size() const { return bytes; }

    /**
     * Map the whole region into @p vm's default context at @p gpa.
     * @param perms typically RW; Read for a read-only consumer.
     * @return false if the GPA range is already occupied.
     */
    bool attach(Vm &vm, Gpa gpa, ept::Perms perms = ept::Perms::RW);

    /** Unmap the region from @p vm (must match a previous attach). */
    void detach(Vm &vm, Gpa gpa);

    /** Number of current attachments. */
    unsigned attachCount() const { return attachments; }

  private:
    Hypervisor &hyper;
    std::string regionName;
    Hpa hpaBase = 0;
    std::uint64_t bytes;
    unsigned attachments = 0;
};

} // namespace elisa::hv

#endif // ELISA_HV_IVSHMEM_HH
