/**
 * @file
 * The hypervisor's demand pager: presence-aware memory management over
 * the EPT-violation path.
 *
 * The Pager turns the machine's flat "RAM is always there" model into
 * a paged hierarchy: managed guest frames may be Resident (mapped
 * present, bytes in RAM), Swapped (leaf demoted to a non-present
 * ept::PresState::Swapped entry recording a mem::BackingStore slot) or
 * ZeroPending (demand-zero, leaf Ballooned, first touch zero-fills).
 * A guest touching a non-present page raises an EPT violation; the CPU
 * consults its cpu::EptFaultSink (the Hypervisor, which forwards here)
 * before converting the violation into a guest-visible exit. resolve()
 * services the fault — evicting victims when the machine is over its
 * resident budget, reading the page back from the swap device or
 * zero-filling it — charges every simulated nanosecond to the faulting
 * vCPU (vmexit + handler + swap I/O + vmentry), ledgers the work as
 * Exit/EptViolation plus Page/{PageIn,PageOut,ZeroFill} rows, and lets
 * the CPU re-execute the access (VMRESUME semantics).
 *
 * Overcommit: the resident budget (PagingConfig::residentLimitFrames)
 * caps how many managed frames may be resident at once, independent of
 * how many are managed — managed-to-budget ratios above 1.0 model an
 * overcommitted machine. Reclaim is clock second-chance over the leaf
 * accessed flags (Ept::accessedAndClear), with per-VM balloon targets:
 * frames of VMs over their target are evicted without a second chance.
 *
 * Sharing: one physical frame may be mapped by several EPT contexts
 * (the owner's default context plus ELISA sub-context windows or
 * ivshmem attachments). The Pager tracks every mapping of a managed
 * frame and keeps their leaves in lock-step — a swap-out demotes all
 * of them (followed by INVEPT of each affected context, which also
 * bumps the TLB epochs that guard per-GuestView L0 micro-caches), a
 * page-in promotes all of them. A fault on a shared object page
 * mid-gate-call is therefore serviced transparently and billed to the
 * *faulting* guest, not the object's owner.
 *
 * Honesty: swap-out poisons the frame bytes (0x5a) after writing them
 * to the store, and demand-zero management poisons at registration, so
 * any path that dodges the fault machinery reads garbage instead of
 * silently working.
 */

#ifndef ELISA_HV_PAGING_HH
#define ELISA_HV_PAGING_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "base/types.hh"
#include "cpu/vcpu.hh"
#include "ept/ept.hh"
#include "mem/backing_store.hh"
#include "sim/stats.hh"
#include "sim/tracer.hh"

namespace elisa::hv
{

class Hypervisor;
class Vm;

/** Pager construction parameters. */
struct PagingConfig
{
    /**
     * Maximum managed frames resident at once (0 = no cap). Managed
     * frames beyond this budget live in the backing store; the ratio
     * managed/limit is the machine's overcommit factor.
     */
    std::uint64_t residentLimitFrames = 0;

    /** Swap-device capacity in page slots. */
    std::uint64_t swapSlots = 1u << 14;
};

/**
 * The demand pager. Created via Hypervisor::enablePaging(); holds
 * references into the hypervisor (frames, physical memory, stats), so
 * it never outlives it.
 */
class Pager
{
  public:
    /** Lifecycle state of one managed frame. */
    enum class FrameState : std::uint8_t
    {
        Resident,    ///< bytes in RAM, leaves present
        Swapped,     ///< bytes in the store, leaves Swapped(slot)
        ZeroPending, ///< never touched, leaves Ballooned
    };

    Pager(Hypervisor &hv, const PagingConfig &config);

    Pager(const Pager &) = delete;
    Pager &operator=(const Pager &) = delete;

    // ---- management registration -----------------------------------
    /**
     * Put a page range under pager management. @p ept must currently
     * map every page of [@p gpa, @p gpa + @p len) as a present 4 KiB
     * leaf onto [@p hpa, @p hpa + @p len) (large pages are never
     * managed — map managed ranges 4 KiB-granular). With
     * @p demand_zero the pages start ZeroPending: leaves are demoted
     * to Ballooned, the frames are poisoned, and the first touch
     * faults in a zero page — any bytes previously there are lost, so
     * only demand-zero fresh memory. Without it they start Resident
     * (contents kept) and become candidates for eviction.
     */
    void manageRange(VmId owner, ept::Ept &ept, Gpa gpa, Hpa hpa,
                     std::uint64_t len, bool demand_zero);

    /**
     * Manage a VM's entire RAM through its default context.
     * Demand-zero management must happen before the guest stores
     * anything (right after createVm).
     */
    void manageVmRam(Vm &vm, bool demand_zero);

    /**
     * Manage an object living inside @p owner_vm's RAM, given its
     * host-physical base (as ELISA's Export records it). Registers the
     * owner's default-context mapping of those pages.
     */
    void manageObject(Vm &owner_vm, Hpa obj_hpa, std::uint64_t len,
                      bool demand_zero);

    /**
     * Register an additional mapping of already-managed frames
     * (a sub-context object window, an ivshmem attachment). Pages of
     * [@p hpa, @p hpa + @p len) that are not managed are skipped.
     * Leaves of non-resident frames are immediately demoted to match
     * the frame state (the caller just mapped them present).
     */
    void addMirror(ept::Ept &ept, Gpa gpa, Hpa hpa, std::uint64_t len);

    /**
     * Forget every range and mapping registered under @p eptp (the
     * context is being destroyed or its window unmapped). Idempotent.
     */
    void dropContext(std::uint64_t eptp);

    /**
     * Forget the single range registered at (@p eptp, @p gpa) and its
     * page mappings, leaving the context's other ranges managed (an
     * ivshmem detach from a default context whose RAM stays paged).
     * Idempotent.
     */
    void dropMirror(std::uint64_t eptp, Gpa gpa);

    /**
     * VM-teardown hook: forget the VM's default context and release
     * every frame it owns (freeing swap slots). Wired by
     * Hypervisor::enablePaging() via addVmDestroyHook.
     */
    void onVmDestroy(VmId vm);

    // ---- policy ------------------------------------------------------
    /** Change the machine resident budget (0 = no cap). Takes effect
     *  at the next page-in; resident frames are not evicted eagerly. */
    void setResidentLimit(std::uint64_t frames);

    /**
     * Set VM @p vm's balloon target (max resident frames, 0 = none):
     * the clock reclaimer evicts frames of over-target VMs first,
     * without granting them a second chance.
     */
    void setBalloonTarget(VmId vm, std::uint64_t frames);

    // ---- fault path --------------------------------------------------
    /**
     * Resolve an EPT violation raised under @p vcpu's active context.
     * Returns true when the faulting page was brought in (the CPU
     * re-executes the access), false when the fault is not the pager's
     * (not a managed page, a permission violation, swap exhausted, an
     * injected page-in error). May throw cpu::VmExitEvent when an
     * injected KillVm dooms the faulting VM mid-page-in.
     */
    bool resolve(cpu::Vcpu &vcpu, const ept::EptViolation &violation);

    /**
     * Host-privileged touch (the VMCALL servicing scheme): page in
     * every managed frame covering [@p hpa, @p hpa + @p len) without
     * an exit, billing the service cost (fault handler + swap I/O +
     * any evictions, but no vmexit/vmentry — the caller already paid
     * for its exit) to @p billed.
     * @return false when any page-in fails (swap exhausted, injected
     *         error); earlier pages stay resident.
     */
    bool hostTouch(cpu::Vcpu &billed, Hpa hpa, std::uint64_t len);

    // ---- introspection ----------------------------------------------
    /** Managed frames currently resident. */
    std::uint64_t residentFrames() const { return residentCount; }

    /** Managed frames currently swapped out. */
    std::uint64_t swappedFrames() const { return swappedCount; }

    /** Total managed frames (any state). */
    std::uint64_t managedFrames() const { return framesByHpa.size(); }

    /** Current resident budget (0 = no cap). */
    std::uint64_t residentLimit() const { return residentLimitFrames; }

    /** The simulated swap device. */
    const mem::BackingStore &store() const { return backing; }

    /** State of the managed frame at @p hpa, nullopt when unmanaged. */
    std::optional<FrameState> frameState(Hpa hpa) const;

  private:
    /** One registered mapping of a managed frame. */
    struct Mapping
    {
        std::uint64_t eptp;
        ept::Ept *ept;
        Gpa gpa;
    };

    /** One managed physical frame. */
    struct Frame
    {
        VmId owner = invalidVmId;
        FrameState state = FrameState::Resident;
        std::uint64_t slot = 0; ///< store slot when Swapped
        std::vector<Mapping> mappings;
    };

    /** One managed GPA range of a context (fault lookup). */
    struct Range
    {
        Gpa gpa;
        Hpa hpa;
        std::uint64_t len;
    };

    /** Managed frame backing @p gpa under @p eptp, or nullopt. */
    std::optional<Hpa> findFrame(std::uint64_t eptp, Gpa gpa) const;

    /**
     * Clock second-chance victim selection: first resident frame that
     * is over its owner's balloon target, else first whose accessed
     * flags (across every mapping) are already clear; referenced
     * frames get their flags cleared and one more lap. Never returns
     * @p except.
     */
    std::optional<Hpa> pickVictim(Hpa except);

    /** True when @p owner is over its balloon target. */
    bool ownerOverTarget(VmId owner) const;

    /**
     * Swap @p hpa out: write the store, demote every mapping's leaf,
     * INVEPT the affected contexts, poison the frame.
     * @return false when the store is full (frame stays resident).
     */
    bool evictFrame(Hpa hpa);

    /**
     * Evict until a page-in fits under the resident budget.
     * @return number of evictions, or nullopt when no victim fits.
     */
    std::optional<unsigned> makeRoom(Hpa except);

    /** What one page-in actually did (bringIn result). */
    struct ServiceResult
    {
        SimNs pageNs = 0;     ///< handler + swap-in/zero-fill + delay
        unsigned evicted = 0; ///< victims swapped out to make room
        bool zeroFill = false;
    };

    /**
     * Commit one page-in of the managed frame at @p hpa: make room
     * under the resident budget, restore the bytes (store read or
     * zero fill), promote every mapping's leaf and update the books.
     * @return the costs incurred, or nullopt when the page-in is
     *         impossible (budget unreachable, swap device full) — the
     *         frame is left exactly as it was.
     */
    std::optional<ServiceResult> bringIn(Hpa hpa, SimNs delay);

    /**
     * Consult the fault plan's PageIn hook for a fault of @p vcpu's
     * VM. Returns the injected delay (0 normally) or nullopt when an
     * injected error aborts the page-in; throws cpu::VmExitEvent when
     * an injected KillVm dooms the faulting VM itself. Killing a third
     * party tears it down immediately, exactly like the hypercall
     * dispatcher's KillVm.
     */
    std::optional<SimNs> pageInHook(cpu::Vcpu &vcpu, Gpa gpa);

    /** Re-intern trace names when the installed tracer changes. */
    void refreshTraceNames();

    Hypervisor &hv;
    mem::BackingStore backing;
    std::uint64_t residentLimitFrames;
    std::uint64_t residentCount = 0;
    std::uint64_t swappedCount = 0;

    std::map<Hpa, Frame> framesByHpa;
    /** eptp -> managed ranges of that context, keyed by base GPA. */
    std::map<std::uint64_t, std::map<Gpa, Range>> rangesByEptp;
    /** Next HPA the clock hand considers. */
    Hpa clockHand = 0;

    // Interned pager counters (hv stats).
    sim::StatId faultsId;
    sim::StatId pagesInId;
    sim::StatId pagesOutId;
    sim::StatId zeroFillsId;
    sim::StatId hostTouchesId;
    sim::StatId pageInErrorsId;
    sim::StatId pageInDelaysId;
    sim::StatId pageInKillsId;

    // Trace names, re-interned when the hypervisor's tracer changes.
    sim::Tracer *namesFor = nullptr;
    sim::TraceNameId pageInName = 0;
    sim::TraceNameId zeroFillName = 0;
    sim::TraceNameId pageOutName = 0;
    sim::TraceNameId pageErrorName = 0;
    sim::TraceNameId pageDelayName = 0;
    sim::TraceNameId pageKillName = 0;
};

} // namespace elisa::hv

#endif // ELISA_HV_PAGING_HH
