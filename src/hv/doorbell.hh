/**
 * @file
 * Doorbells: cross-VM notification without shared-memory polling.
 *
 * ELISA's data paths poll (that is where the exit-less advantage
 * shows); a production deployment still needs a way for a consumer
 * vCPU to sleep until a producer signals. A Doorbell models the
 * posted-interrupt path: any party rings it at its own simulated
 * time, and the waiting vCPU observes the signal one IPI-delivery
 * latency later. Signals are counted, not queued: like an interrupt
 * line, multiple rings before a wait collapse into one wake-up with
 * a pending count.
 */

#ifndef ELISA_HV_DOORBELL_HH
#define ELISA_HV_DOORBELL_HH

#include <cstdint>

#include "base/types.hh"
#include "sim/clock.hh"
#include "sim/cost_model.hh"

namespace elisa::hv
{

/**
 * One notification line between producers and a single waiting vCPU.
 */
class Doorbell
{
  public:
    explicit Doorbell(const sim::CostModel &cost_model)
        : cost(cost_model)
    {
    }

    /**
     * Ring at @p now (the producer's clock).
     * @return the time the signal becomes observable at the receiver.
     */
    SimNs
    ring(SimNs now)
    {
        const SimNs deliver = now + cost.ipiDeliverNs;
        if (pendingCount == 0 || deliver < firstDeliverNs)
            firstDeliverNs = deliver;
        if (deliver > lastDeliverNs)
            lastDeliverNs = deliver;
        ++pendingCount;
        ++ringTotal;
        return deliver;
    }

    /** Signals rung but not yet consumed. */
    std::uint64_t pending() const { return pendingCount; }

    /** Total rings ever (stats). */
    std::uint64_t total() const { return ringTotal; }

    /**
     * Block the receiver until at least one signal is deliverable:
     * advances @p clock to the earliest delivery time if needed and
     * consumes ALL pending signals (interrupt-coalescing semantics).
     *
     * @return the number of signals consumed; 0 if none are pending
     *         (the receiver would sleep forever — callers decide what
     *         that means, e.g. end of stream).
     */
    std::uint64_t
    wait(sim::SimClock &clock)
    {
        if (pendingCount == 0)
            return 0;
        clock.syncTo(firstDeliverNs);
        const std::uint64_t consumed = pendingCount;
        pendingCount = 0;
        return consumed;
    }

    /**
     * Non-blocking poll at the receiver's current time: consumes the
     * signals already delivered by @p clock.now().
     */
    std::uint64_t
    poll(const sim::SimClock &clock)
    {
        if (pendingCount == 0 || clock.now() < firstDeliverNs)
            return 0;
        // Consume the ones whose delivery time has passed; with
        // counted semantics we approximate by draining all when the
        // last has been delivered, else just the first.
        if (clock.now() >= lastDeliverNs) {
            const std::uint64_t consumed = pendingCount;
            pendingCount = 0;
            return consumed;
        }
        --pendingCount;
        return 1;
    }

  private:
    const sim::CostModel &cost;
    std::uint64_t pendingCount = 0;
    std::uint64_t ringTotal = 0;
    SimNs firstDeliverNs = 0;
    SimNs lastDeliverNs = 0;
};

} // namespace elisa::hv

#endif // ELISA_HV_DOORBELL_HH
