#include "hv/vm.hh"

#include "base/logging.hh"
#include "base/trace.hh"
#include "hv/hypervisor.hh"

namespace elisa::hv
{

Vm::Vm(Hypervisor &hv, VmId id, std::string name, std::uint64_t ram_bytes,
       unsigned vcpu_count)
    : hyper(hv), vmId(id), vmName(std::move(name)), ramSize(ram_bytes)
{
    fatal_if(ram_bytes == 0 || !isPageAligned(ram_bytes),
             "VM RAM must be a non-zero page multiple");
    fatal_if(vcpu_count == 0, "VM needs at least one vCPU");

    // Guest RAM: one contiguous host-physical run, mapped 1:1 into the
    // guest-physical range [0, ramSize) of the default context. The
    // run is 2 MiB-aligned so large-page EPT mappings of guest memory
    // are possible (GPA and HPA alignment then coincide).
    auto base = hv.frames.allocAligned(ram_bytes / pageSize,
                                       ept::largePageSize / pageSize);
    fatal_if(!base, "out of physical memory for VM '%s' RAM",
             vmName.c_str());
    ramBase = *base;
    hv.physMem.zero(ramBase, ram_bytes);

    defaultContext = std::make_unique<ept::Ept>(hv.physMem, hv.frames);
    const bool mapped = defaultContext->mapRange(
        0, ramBase, ram_bytes, ept::Perms::RWX);
    panic_if(!mapped, "fresh default EPT had mappings");

    for (unsigned i = 0; i < vcpu_count; ++i) {
        auto vcpu = std::make_unique<cpu::Vcpu>(
            hv.nextVcpuId++, vmId, hv.physMem, hv.frames, hv.costModel,
            &hv);
        // EPTP-list slot 0 always holds the default context.
        vcpu->eptpList().set(0, defaultContext->eptp());
        vcpu->activateEptp(0);
        vcpu->setTracer(hv.tracerPtr);
        vcpu->setLedger(hv.ledgerPtr);
        // The hypervisor resolves EPT violations (demand paging); with
        // paging off it declines in one virtual call, and the sink is
        // only consulted on the violation path anyway.
        vcpu->setFaultSink(&hv);
        vcpus.push_back(std::move(vcpu));
    }
}

Vm::~Vm()
{
    // vCPUs (and their EPTP-list pages) and the default EPT free
    // themselves; guest RAM frames go back to the machine allocator.
    vcpus.clear();
    defaultContext.reset();
    hyper.frames.free(ramBase, ramSize / pageSize);
}

void
Vm::setShard(ShardId shard)
{
    shardId = shard;
    for (auto &vcpu : vcpus)
        vcpu->setShard(shard);
}

cpu::Vcpu &
Vm::vcpu(unsigned index)
{
    panic_if(index >= vcpus.size(), "vCPU index %u out of range (VM %s)",
             index, vmName.c_str());
    return *vcpus[index];
}

std::optional<Gpa>
Vm::allocGuestMem(std::uint64_t bytes, std::uint64_t align)
{
    panic_if(align < pageSize || (align & (align - 1)) != 0,
             "bad guest allocation alignment %llu",
             (unsigned long long)align);
    const std::uint64_t start = (ramBump + align - 1) & ~(align - 1);
    const std::uint64_t aligned = pageAlignUp(bytes);
    if (aligned == 0 || start + aligned > ramSize)
        return std::nullopt;
    ramBump = start + aligned;
    return start;
}

Hpa
Vm::ramGpaToHpa(Gpa gpa) const
{
    panic_if(gpa >= ramSize, "GPA %llx outside VM '%s' RAM",
             (unsigned long long)gpa, vmName.c_str());
    return ramBase + gpa;
}

GuestRunResult
Vm::run(unsigned vcpu_index, const std::function<void()> &guest_code)
{
    cpu::Vcpu &cpu = vcpu(vcpu_index);
    try {
        guest_code();
        return GuestRunResult{};
    } catch (const cpu::VmExitEvent &exit) {
        // Fault policy: charge the exit, record it, and park the vCPU
        // back in its default context.
        cpu.clock().advance(hyper.costModel.vmexitNs);
        hyper.statSet.inc(hyper.exitStatId(exit.reason()));
        ELISA_TRACE(VmExit, "VM %u vCPU %u: %s (qual=%llx)", vmId,
                    cpu.id(), cpu::exitReasonToString(exit.reason()),
                    (unsigned long long)exit.qualification());
        cpu.activateEptp(0);
        cpu.clock().advance(hyper.costModel.vmentryNs);
        if (sim::ExitLedger *led = cpu.ledger()) {
            // Cold path (faulting exits only): resolving the slot per
            // catch is fine, and keeps this file free of caches.
            led->charge(
                led->slot(vmId, cpu.id(), sim::CostKind::Exit,
                          static_cast<std::uint32_t>(exit.reason())),
                hyper.costModel.vmexitNs + hyper.costModel.vmentryNs);
        }

        GuestRunResult result;
        result.ok = false;
        result.exit.reason = exit.reason();
        result.exit.qualification = exit.qualification();
        result.exit.violation = exit.violation();
        return result;
    }
}

} // namespace elisa::hv
