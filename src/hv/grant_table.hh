/**
 * @file
 * The hypervisor's capability grant table.
 *
 * Every shared-memory grant — the root grant a manager approves and
 * every narrowed delegation derived from it — is registered here as a
 * node of a tree rooted at the original export. The table records only
 * the *shape* of the grant graph (parent, holder, depth, children);
 * the ELISA service layers its own payload (window, permissions,
 * expiry, attachment) on top, keyed by the same CapId. Keeping the
 * tree in the hypervisor makes it the single revocation authority:
 * teardown walks the table, not service-specific maps, so the subtree
 * order is identical no matter which path (detach, revoke, VM death,
 * expiry) initiated it.
 *
 * Determinism: children are kept in creation order and subtree() walks
 * them depth-first, children before their parent, so the teardown
 * order of a grant subtree is a pure function of the creation order.
 */

#ifndef ELISA_HV_GRANT_TABLE_HH
#define ELISA_HV_GRANT_TABLE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "base/types.hh"

namespace elisa::hv
{

/** One node of the grant tree. */
struct GrantNode
{
    CapId id = invalidCapId;

    /** Parent grant, or invalidCapId for a root (manager-approved). */
    CapId parent = invalidCapId;

    /** The VM holding (allowed to redeem/use) this grant. */
    VmId holder = invalidVmId;

    /** Root = 0; each delegation hop adds one. */
    std::uint32_t depth = 0;

    /** Child grants, in creation order. */
    std::vector<CapId> children;
};

/**
 * Registry of every live grant, owned by the Hypervisor.
 */
class GrantTable
{
  public:
    /**
     * Mint a new grant held by @p holder. With @p parent set, the new
     * node becomes its child (depth parent+1); the parent must exist.
     * Ids increase monotonically and are never reused.
     */
    CapId create(CapId parent, VmId holder);

    /** Look up a node (nullptr when unknown or already erased). */
    const GrantNode *find(CapId id) const;

    /** True when @p id is a live grant. */
    bool contains(CapId id) const { return nodes.contains(id); }

    /**
     * Every grant of the subtree rooted at @p id, deepest first
     * (children before their parent, recursively), ending with @p id
     * itself — the teardown order. Empty when @p id is unknown.
     */
    std::vector<CapId> subtree(CapId id) const;

    /**
     * Erase one node, unlinking it from its parent. The node must be
     * childless — teardown consumes subtree() leaves-first, so a
     * populated child list here is a bookkeeping bug.
     * @return false when @p id is unknown (idempotent erase).
     */
    bool erase(CapId id);

    /** Number of live grants. */
    std::size_t size() const { return nodes.size(); }

    /** Delegation depth of @p id (0 for roots/unknown). */
    std::uint32_t depthOf(CapId id) const;

  private:
    void collect(CapId id, std::vector<CapId> &out) const;

    std::map<CapId, GrantNode> nodes;
    CapId nextId = 1;
};

} // namespace elisa::hv

#endif // ELISA_HV_GRANT_TABLE_HH
