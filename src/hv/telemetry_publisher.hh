/**
 * @file
 * Host-side telemetry publisher: serializes the machine's observability
 * state (Metrics + ExitLedger + Tracer tail, see sim/telemetry.hh) and
 * publishes it through seqlock-fronted double-buffered regions that
 * guests scrape exit-lessly.
 *
 * The publisher is deliberately sink-agnostic: a sink is any
 * host-physical window large enough for the region layout — the
 * backing pages of an ELISA shared object (the exit-less scheme), an
 * IvshmemRegion (the direct-mapped baseline), or plain hypervisor
 * memory a test inspects from the host. All sinks receive the same
 * snapshot bytes at every publish(), so the three access schemes of
 * the paper read one wire format and can be compared byte-for-byte.
 *
 * A VMCALL marshalling service (registerScrapeHypercall) provides the
 * exit-ful baseline: the guest traps, the host copies the latest
 * snapshot into guest memory. Same bytes, one vmexit per scrape.
 *
 * Publication is host-side bookkeeping and costs no simulated time;
 * the *scrape* side is where the schemes differ (see bench_telemetry).
 */

#ifndef ELISA_HV_TELEMETRY_PUBLISHER_HH
#define ELISA_HV_TELEMETRY_PUBLISHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "hv/hypervisor.hh"
#include "sim/telemetry.hh"

namespace elisa::hv
{

class TelemetryPublisher
{
  public:
    /**
     * @param hv the machine; ledger/tracer/flight recorder are read
     *        from whatever is installed there at each publish().
     * @param metrics the registry snapshots are built from.
     */
    TelemetryPublisher(Hypervisor &hv, const sim::Metrics &metrics);

    /**
     * Register a publication region at [@p base, @p base + @p bytes).
     * The window is formatted in place (header + two slots); it must
     * hold the 64-byte header plus two non-empty slots. Returns the
     * sink index.
     */
    std::size_t addSink(Hpa base, std::uint64_t bytes, std::string name);

    std::size_t sinkCount() const { return sinks.size(); }

    /** Per-slot capacity of sink @p index. */
    std::uint32_t slotBytes(std::size_t index) const;

    /** Host-physical base of sink @p index. */
    Hpa sinkBase(std::size_t index) const;

    /** Cap on tracer-tail events per snapshot (default 256; 0 omits
     *  the trace section entirely). */
    void setTraceTail(std::size_t events) { traceTail = events; }

    /**
     * Serialize one snapshot at simulated instant @p now and publish
     * it to every sink (seqlock protocol). Also drains the flight
     * recorder, when one is installed, so per-VM rings are current at
     * every publication boundary. Returns the publication seq.
     *
     * A snapshot larger than a sink's slot leaves that sink on its
     * previous snapshot and counts an overflow — truncated telemetry
     * is worse than stale telemetry.
     */
    std::uint64_t publish(SimNs now);

    /** Publications so far (the seq of the latest snapshot). */
    std::uint64_t publications() const { return pubCount; }

    /** Sink-publications skipped because the snapshot outgrew a slot. */
    std::uint64_t overflows() const { return overflowCount; }

    /** The latest serialized snapshot ("" before the first publish). */
    const std::vector<std::uint8_t> &lastSnapshot() const { return last; }

    /**
     * Register the VMCALL scrape service. Guest calls
     * (nr, dest_gpa, capacity) and the host copies the latest snapshot
     * into guest memory, returning its length (hcError when nothing
     * was published yet or capacity is too small). Idempotent.
     */
    std::uint64_t registerScrapeHypercall();

    /** The scrape hypercall number (0 = not registered). */
    std::uint64_t scrapeHypercallNr() const { return scrapeNr; }

  private:
    struct Sink
    {
        Hpa base;
        std::uint32_t slotBytes;
        std::string name;
    };

    /** Format a fresh region header in place. */
    void initRegion(const Sink &sink);

    Hypervisor &hyper;
    const sim::Metrics &metricsRef;
    std::vector<Sink> sinks;
    std::size_t traceTail = 256;
    std::uint64_t pubCount = 0;
    std::uint64_t overflowCount = 0;
    std::vector<std::uint8_t> last;
    std::uint64_t scrapeNr = 0;
    sim::StatId publishedId = 0;
    sim::StatId overflowId = 0;
    sim::StatId scrapeId = 0;
};

} // namespace elisa::hv

#endif // ELISA_HV_TELEMETRY_PUBLISHER_HH
