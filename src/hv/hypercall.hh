/**
 * @file
 * Hypercall numbering and handler plumbing.
 *
 * The hypervisor exposes a dispatch table keyed by hypercall number.
 * Core numbers live in the Hc enum below; subsystems (ELISA negotiation,
 * host-interposition services for the KVS and networking baselines)
 * register their own handlers in dedicated ranges.
 */

#ifndef ELISA_HV_HYPERCALL_HH
#define ELISA_HV_HYPERCALL_HH

#include <cstdint>
#include <functional>

#include "cpu/vcpu.hh"

namespace elisa::hv
{

/** Well-known hypercall numbers. */
enum class Hc : std::uint64_t
{
    /** No-op: measures the naked VMCALL round trip. */
    Nop = 0,

    /** Returns the calling VM's id. */
    GetVmId = 1,

    /** Send a message on a channel: (chan, buf_gpa, len). */
    ChanSend = 2,

    /** Receive from a channel: (chan, buf_gpa, cap) -> len | ~0. */
    ChanRecv = 3,

    /** First number of the ELISA negotiation range. */
    ElisaBase = 0x100,

    /** First number of the host-interposition service range. */
    ServiceBase = 0x200,
};

/** Returned by handlers / hypercalls to signal failure. */
inline constexpr std::uint64_t hcError = ~std::uint64_t{0};

/**
 * Returned by handlers whose request queue is full: the call was
 * *refused*, not failed — the caller should back off and retry.
 */
inline constexpr std::uint64_t hcBusy = ~std::uint64_t{0} - 1;

/** A host-side hypercall handler. */
using HypercallHandler =
    std::function<std::uint64_t(cpu::Vcpu &, const cpu::HypercallArgs &)>;

/** Convenience: build HypercallArgs. */
inline cpu::HypercallArgs
hcArgs(Hc nr, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
       std::uint64_t a2 = 0, std::uint64_t a3 = 0)
{
    return cpu::HypercallArgs{static_cast<std::uint64_t>(nr), a0, a1, a2,
                              a3};
}

} // namespace elisa::hv

#endif // ELISA_HV_HYPERCALL_HH
