#include "hv/hypervisor.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "base/trace.hh"
#include "cpu/guest_view.hh"

namespace elisa::hv
{

Hypervisor::Hypervisor(std::uint64_t phys_mem_bytes,
                       const sim::CostModel &cost)
    : costModel(cost), physMem(phys_mem_bytes),
      frames(phys_mem_bytes / pageSize)
{
    // Intern hot/fault-path counter names once; per-event code indexes
    // by id instead of hashing strings.
    hypercallsId = statSet.id("hypercalls");
    hypercallUnknownId = statSet.id("hypercall_unknown");
    faultInjectedId = statSet.id("fault_injected");
    faultDroppedId = statSet.id("fault_dropped");
    faultDelayedId = statSet.id("fault_delayed");
    faultDuplicatedId = statSet.id("fault_duplicated");
    faultErrorsId = statSet.id("fault_errors");
    faultVmKillsId = statSet.id("fault_vm_kills");
    for (unsigned r = 0; r < cpu::exitReasonCount; ++r) {
        exitIds[r] = statSet.id(
            std::string("exit_") +
            cpu::exitReasonToString(static_cast<cpu::ExitReason>(r)));
    }
    registerBaseHypercalls();
}

Hypervisor::~Hypervisor() = default;

Vm &
Hypervisor::createVm(const std::string &name, std::uint64_t ram_bytes,
                     unsigned vcpu_count)
{
    const VmId id = nextVmId++;
    // Occupancy book entry (reservation size); gauges only exist when
    // a scenario attaches them (FrameAllocator::attachGauges).
    frames.noteOwner(id, name, ram_bytes / pageSize);
    auto vm = std::make_unique<Vm>(*this, id, name, ram_bytes, vcpu_count);
    Vm &ref = *vm;
    ref.setShard(machineShard);
    for (unsigned i = 0; i < ref.vcpuCount(); ++i)
        vcpuOwner[ref.vcpu(i).id()] = id;
    vms.emplace(id, std::move(vm));
    statSet.inc("vm_created");
    ELISA_TRACE(Hv, "created VM %u '%s' (%llu MiB RAM)", id,
                ref.name().c_str(),
                (unsigned long long)(ram_bytes >> 20));
    return ref;
}

void
Hypervisor::setShard(ShardId shard)
{
    machineShard = shard;
    for (auto &[id, vm] : vms)
        vm->setShard(shard);
}

Vm &
Hypervisor::vm(VmId id)
{
    auto it = vms.find(id);
    panic_if(it == vms.end(), "no VM with id %u", id);
    return *it->second;
}

void
Hypervisor::destroyVm(VmId id)
{
    auto it = vms.find(id);
    panic_if(it == vms.end(), "destroying unknown VM %u", id);
    if (recorderPtr != nullptr) {
        // Drain the dying VM's final spans into its ring, then freeze
        // the post-mortem before teardown hooks mutate the world. The
        // death instant is the furthest-advanced vCPU clock of the VM.
        if (tracerPtr)
            recorderPtr->observe(*tracerPtr);
        Vm &dying = *it->second;
        SimNs death = 0;
        for (unsigned i = 0; i < dying.vcpuCount(); ++i)
            death = std::max(death, dying.vcpu(i).clock().now());
        recorderPtr->dump(id, death, ledgerPtr);
    }
    for (auto &hook : destroyHooks)
        hook(id);
    if (metricsPtr != nullptr) {
        // The registry holds non-owning StatSet pointers: detach the
        // dying vCPUs' sets or the next collect() walks freed memory.
        Vm &dying = *it->second;
        for (unsigned i = 0; i < dying.vcpuCount(); ++i)
            metricsPtr->detachStatSet(dying.vcpu(i).stats());
    }
    vms.erase(it);
    frames.dropOwner(id);
    statSet.inc("vm_destroyed");
    ELISA_TRACE(Hv, "destroyed VM %u", id);
}

void
Hypervisor::addVmDestroyHook(VmDestroyHook hook)
{
    panic_if(!hook, "registering empty destroy hook");
    destroyHooks.push_back(std::move(hook));
}

void
Hypervisor::registerHypercall(std::uint64_t nr, HypercallHandler handler)
{
    panic_if(!handler, "registering empty hypercall handler");
    hypercalls[nr] = std::move(handler);
}

void
Hypervisor::setTracer(sim::Tracer *tracer)
{
    tracerPtr = tracer;
    hcNameIds.clear();
    if (tracerPtr) {
        faultDropName = tracerPtr->intern("fault_drop");
        faultErrorName = tracerPtr->intern("fault_error");
        faultDelayName = tracerPtr->intern("fault_delay");
        faultDupName = tracerPtr->intern("fault_duplicate");
        faultKillName = tracerPtr->intern("fault_kill_vm");
    }
    for (auto &[id, vm] : vms) {
        for (unsigned i = 0; i < vm->vcpuCount(); ++i)
            vm->vcpu(i).setTracer(tracer);
    }
}

void
Hypervisor::setLedger(sim::ExitLedger *ledger)
{
    ledgerPtr = ledger;
    if (ledgerPtr) {
        for (unsigned r = 0; r < cpu::exitReasonCount; ++r) {
            ledgerPtr->setCodeName(
                sim::CostKind::Exit, r,
                cpu::exitReasonToString(static_cast<cpu::ExitReason>(r)));
        }
        for (const auto &[nr, name] : hcNames) {
            ledgerPtr->setCodeName(sim::CostKind::Hypercall,
                                   static_cast<std::uint32_t>(nr), name);
        }
        ledgerPtr->setCodeName(
            sim::CostKind::Page,
            static_cast<std::uint32_t>(sim::PageCost::PageIn),
            "page_in");
        ledgerPtr->setCodeName(
            sim::CostKind::Page,
            static_cast<std::uint32_t>(sim::PageCost::PageOut),
            "page_out");
        ledgerPtr->setCodeName(
            sim::CostKind::Page,
            static_cast<std::uint32_t>(sim::PageCost::ZeroFill),
            "zero_fill");
    }
    for (auto &[id, vm] : vms) {
        for (unsigned i = 0; i < vm->vcpuCount(); ++i)
            vm->vcpu(i).setLedger(ledger);
    }
}

void
Hypervisor::setFlightRecorder(sim::FlightRecorder *recorder)
{
    recorderPtr = recorder;
    if (recorderPtr == nullptr)
        return;
    recorderPtr->setTrackResolver([this](std::uint32_t track) {
        const auto it = vcpuOwner.find(track);
        return it == vcpuOwner.end() ? sim::FlightRecorder::noVm
                                     : it->second;
    });
    if (ledgerPtr)
        recorderPtr->baseline(*ledgerPtr);
}

void
Hypervisor::attachMetrics(sim::Metrics &metrics)
{
    metricsPtr = &metrics;
    metrics.attachStatSet(statSet, {{"layer", "hv"}}, "hv_");
    for (auto &[id, vm] : vms) {
        for (unsigned i = 0; i < vm->vcpuCount(); ++i) {
            cpu::Vcpu &vcpu = vm->vcpu(i);
            metrics.attachStatSet(
                vcpu.stats(),
                {{"vm", detail::format("%u", id)},
                 {"vcpu", detail::format("%u", vcpu.id())}},
                "vcpu_");
        }
    }
}

void
Hypervisor::setHypercallName(std::uint64_t nr, std::string name)
{
    if (ledgerPtr) {
        ledgerPtr->setCodeName(sim::CostKind::Hypercall,
                               static_cast<std::uint32_t>(nr), name);
    }
    hcNames[nr] = std::move(name);
    hcNameIds.erase(nr);
}

sim::TraceNameId
Hypervisor::hcSpanName(std::uint64_t nr)
{
    auto it = hcNameIds.find(nr);
    if (it != hcNameIds.end())
        return it->second;
    auto named = hcNames.find(nr);
    const sim::TraceNameId id =
        named != hcNames.end()
            ? tracerPtr->intern(named->second)
            : tracerPtr->intern(
                  detail::format("hc_0x%llx", (unsigned long long)nr));
    hcNameIds.emplace(nr, id);
    return id;
}

Pager &
Hypervisor::enablePaging(const PagingConfig &config)
{
    panic_if(pagerPtr != nullptr, "paging already enabled");
    pagerPtr = std::make_unique<Pager>(*this, config);
    addVmDestroyHook([this](VmId id) { pagerPtr->onVmDestroy(id); });
    statSet.inc("paging_enabled");
    return *pagerPtr;
}

bool
Hypervisor::resolveEptViolation(cpu::Vcpu &vcpu,
                                const ept::EptViolation &violation)
{
    return pagerPtr != nullptr && pagerPtr->resolve(vcpu, violation);
}

unsigned
Hypervisor::reapKilledVms(VmId except)
{
    unsigned reaped = 0;
    std::vector<VmId> deferred;
    while (!doomedVms.empty()) {
        const VmId victim = doomedVms.back();
        doomedVms.pop_back();
        if (victim == except) {
            deferred.push_back(victim);
            continue;
        }
        if (!vms.contains(victim))
            continue;
        destroyVm(victim);
        ++reaped;
    }
    doomedVms = std::move(deferred);
    return reaped;
}

std::uint64_t
Hypervisor::handleHypercall(cpu::Vcpu &vcpu,
                            const cpu::HypercallArgs &args)
{
    statSet.inc(hypercallsId);

    // One span per hypercall, named after the call, closed even when
    // an injected KillVm unwinds this frame with a VmExitEvent.
    sim::ScopedSpan span(tracerPtr, sim::SpanCat::Hypercall,
                         tracerPtr ? hcSpanName(args.nr) : 0, vcpu.id(),
                         vcpu.clock(), args.nr, args.arg0);

    if (faults != nullptr) {
        // Tear down VMs whose injected death was deferred out of their
        // own hypercall frames; the caller's own VM (whose vCPU is on
        // the stack right now) is never touched here.
        if (!doomedVms.empty())
            reapKilledVms(vcpu.vm());

        const sim::FaultDecision fault =
            faults->onHypercall(vcpu.vm(), args.nr);
        switch (fault.action) {
          case sim::FaultAction::None:
            break;
          case sim::FaultAction::Drop:
            // The request never reaches a handler; the caller sees
            // the same error a lost message would produce.
            statSet.inc(faultInjectedId);
            statSet.inc(faultDroppedId);
            if (tracerPtr) {
                tracerPtr->instant(sim::SpanCat::Fault, faultDropName,
                                   vcpu.id(), vcpu.clock().now(),
                                   args.nr);
            }
            span.setEndArgs(hcError, 1);
            return hcError;
          case sim::FaultAction::Error:
            // The handler fails outright.
            statSet.inc(faultInjectedId);
            statSet.inc(faultErrorsId);
            if (tracerPtr) {
                tracerPtr->instant(sim::SpanCat::Fault, faultErrorName,
                                   vcpu.id(), vcpu.clock().now(),
                                   args.nr);
            }
            span.setEndArgs(hcError, 1);
            return hcError;
          case sim::FaultAction::Delay:
            // Host-side stall (contention, scheduling) before the
            // handler runs; charged to the caller.
            statSet.inc(faultInjectedId);
            statSet.inc(faultDelayedId);
            vcpu.clock().advance(fault.param);
            if (tracerPtr) {
                tracerPtr->instant(sim::SpanCat::Fault, faultDelayName,
                                   vcpu.id(), vcpu.clock().now(),
                                   args.nr, fault.param);
            }
            break;
          case sim::FaultAction::Duplicate: {
            // The message is replayed: the handler runs twice and the
            // caller observes the *second* outcome — exactly the case
            // idempotent Detach/Revoke must survive.
            statSet.inc(faultInjectedId);
            statSet.inc(faultDuplicatedId);
            if (tracerPtr) {
                tracerPtr->instant(sim::SpanCat::Fault, faultDupName,
                                   vcpu.id(), vcpu.clock().now(),
                                   args.nr);
            }
            auto dup = hypercalls.find(args.nr);
            if (dup == hypercalls.end()) {
                statSet.inc(hypercallUnknownId);
                span.setEndArgs(hcError, 1);
                return hcError;
            }
            dup->second(vcpu, args);
            const std::uint64_t rc = dup->second(vcpu, args);
            span.setEndArgs(rc, 1);
            return rc;
          }
          case sim::FaultAction::KillVm: {
            statSet.inc(faultInjectedId);
            statSet.inc(faultVmKillsId);
            const VmId victim = static_cast<VmId>(fault.param);
            if (tracerPtr) {
                tracerPtr->instant(sim::SpanCat::Fault, faultKillName,
                                   vcpu.id(), vcpu.clock().now(),
                                   args.nr, victim);
            }
            if (recorderPtr)
                recorderPtr->noteKill(victim, "fault_kill@hypercall");
            if (victim == vcpu.vm()) {
                // The caller dies mid-hypercall. Its frames (this
                // dispatch, the vmcall below it) still reference the
                // vCPU, so defer the actual teardown and unwind with
                // the exit the hardware would deliver.
                doomedVms.push_back(victim);
                throw cpu::VmExitEvent(cpu::ExitReason::VmKilled,
                                       victim);
            }
            // A third party (e.g. the manager serving this caller)
            // dies right now; the handler then runs against a world
            // where the peer is gone.
            if (vms.contains(victim))
                destroyVm(victim);
            break;
          }
          default:
            // Site-specific actions (GateStale, Shm*) are no-ops at
            // the dispatcher.
            break;
        }
    }

    auto it = hypercalls.find(args.nr);
    if (it == hypercalls.end()) {
        statSet.inc(hypercallUnknownId);
        span.setEndArgs(hcError);
        return hcError;
    }
    const std::uint64_t rc = it->second(vcpu, args);
    span.setEndArgs(rc);
    return rc;
}

std::optional<EptpIndex>
Hypervisor::installEptp(cpu::Vcpu &vcpu, std::uint64_t eptp)
{
    auto index = vcpu.eptpList().findFree();
    if (!index)
        return std::nullopt;
    vcpu.eptpList().set(*index, eptp);
    statSet.inc("eptp_installed");
    return index;
}

void
Hypervisor::removeEptp(cpu::Vcpu &vcpu, EptpIndex index)
{
    panic_if(index == 0, "refusing to remove the default EPTP");
    auto eptp = vcpu.eptpList().lookup(index);
    if (!eptp)
        return;
    vcpu.eptpList().clear(index);
    vcpu.tlb().flushEptp(*eptp);
    statSet.inc("eptp_removed");
}

void
Hypervisor::inveptAll(std::uint64_t eptp)
{
    for (auto &[id, vm] : vms) {
        for (unsigned i = 0; i < vm->vcpuCount(); ++i)
            vm->vcpu(i).tlb().flushEptp(eptp);
    }
}

void
Hypervisor::inveptGlobal()
{
    for (auto &[id, vm] : vms) {
        for (unsigned i = 0; i < vm->vcpuCount(); ++i)
            vm->vcpu(i).tlb().flushAll();
    }
}

ChannelId
Hypervisor::createChannel(std::size_t capacity)
{
    fatal_if(capacity == 0, "channel capacity must be positive");
    channels.push_back(Channel{capacity, {}});
    return static_cast<ChannelId>(channels.size() - 1);
}

bool
Hypervisor::channelPush(ChannelId id, std::vector<std::uint8_t> msg)
{
    panic_if(id >= channels.size(), "bad channel id %u", id);
    Channel &chan = channels[id];
    if (chan.queue.size() >= chan.capacity)
        return false;
    chan.queue.push_back(std::move(msg));
    return true;
}

std::optional<std::vector<std::uint8_t>>
Hypervisor::channelPop(ChannelId id)
{
    panic_if(id >= channels.size(), "bad channel id %u", id);
    Channel &chan = channels[id];
    if (chan.queue.empty())
        return std::nullopt;
    std::vector<std::uint8_t> msg = std::move(chan.queue.front());
    chan.queue.pop_front();
    return msg;
}

std::size_t
Hypervisor::channelDepth(ChannelId id) const
{
    panic_if(id >= channels.size(), "bad channel id %u", id);
    return channels[id].queue.size();
}

void
Hypervisor::registerBaseHypercalls()
{
    setHypercallName(Hc::Nop, "hc_nop");
    setHypercallName(Hc::GetVmId, "hc_get_vm_id");
    setHypercallName(Hc::ChanSend, "hc_chan_send");
    setHypercallName(Hc::ChanRecv, "hc_chan_recv");

    registerHypercall(Hc::Nop,
                      [](cpu::Vcpu &, const cpu::HypercallArgs &) {
                          return std::uint64_t{0};
                      });

    registerHypercall(Hc::GetVmId,
                      [](cpu::Vcpu &vcpu, const cpu::HypercallArgs &) {
                          return std::uint64_t{vcpu.vm()};
                      });

    // ChanSend(chan, buf_gpa, len): copy out of the calling guest.
    registerHypercall(
        Hc::ChanSend,
        [this](cpu::Vcpu &vcpu, const cpu::HypercallArgs &args) {
            const auto chan = static_cast<ChannelId>(args.arg0);
            if (chan >= channels.size())
                return hcError;
            std::vector<std::uint8_t> buf(args.arg2);
            cpu::GuestView view(vcpu);
            if (!buf.empty())
                view.readBytes(args.arg1, buf.data(), buf.size());
            return channelPush(chan, std::move(buf)) ? std::uint64_t{0}
                                                     : hcError;
        });

    // ChanRecv(chan, buf_gpa, cap) -> length received, or hcError when
    // the channel is empty.
    registerHypercall(
        Hc::ChanRecv,
        [this](cpu::Vcpu &vcpu, const cpu::HypercallArgs &args) {
            const auto chan = static_cast<ChannelId>(args.arg0);
            if (chan >= channels.size())
                return hcError;
            auto msg = channelPop(chan);
            if (!msg)
                return hcError;
            const std::uint64_t len =
                std::min<std::uint64_t>(msg->size(), args.arg2);
            cpu::GuestView view(vcpu);
            if (len > 0)
                view.writeBytes(args.arg1, msg->data(), len);
            return len;
        });
}

} // namespace elisa::hv
