#include "net/packet.hh"

#include <cstring>

#include "base/logging.hh"

namespace elisa::net
{

void
fillPattern(std::uint8_t *dst, std::uint32_t seq, std::uint32_t len)
{
    // First word carries the sequence number (the "header"), the rest
    // is a cheap rolling byte pattern derived from it.
    panic_if(len < 8, "packet below minimum pattern size");
    std::memcpy(dst, &seq, 4);
    std::memcpy(dst + 4, &len, 4);
    for (std::uint32_t i = 8; i < len; ++i)
        dst[i] = static_cast<std::uint8_t>((seq * 131 + i) & 0xff);
}

bool
checkPattern(const std::uint8_t *data, std::uint32_t seq,
             std::uint32_t len)
{
    std::uint32_t got_seq = 0, got_len = 0;
    std::memcpy(&got_seq, data, 4);
    std::memcpy(&got_len, data + 4, 4);
    if (got_seq != seq || got_len != len)
        return false;
    // Spot-check a few pattern bytes rather than the whole payload
    // (the copies themselves are already exercised functionally).
    for (std::uint32_t i = 8; i < len; i += 97) {
        if (data[i] !=
            static_cast<std::uint8_t>((seq * 131 + i) & 0xff)) {
            return false;
        }
    }
    return true;
}

Packet
makePacket(std::uint32_t seq, std::uint32_t len)
{
    Packet p;
    p.len = len;
    p.seq = seq;
    p.data.resize(len);
    fillPattern(p.data.data(), seq, len);
    return p;
}

} // namespace elisa::net
