/**
 * @file
 * Packet staging buffer and payload patterns.
 *
 * Packets are identified by a sequence number baked into the payload,
 * so every datapath's functional correctness (bytes actually moved
 * through the rings in simulated memory) is checkable at the sink.
 */

#ifndef ELISA_NET_PACKET_HH
#define ELISA_NET_PACKET_HH

#include <cstdint>
#include <vector>

namespace elisa::net
{

/** Minimum / maximum modelled frame sizes (Ethernet payload range). */
inline constexpr std::uint32_t minPacketBytes = 64;
inline constexpr std::uint32_t maxPacketBytes = 2048;

/**
 * A host-side staging packet (outside simulated memory; used by
 * generators and sinks).
 */
struct Packet
{
    std::uint32_t len = 0;
    std::uint32_t seq = 0;
    std::vector<std::uint8_t> data;
};

/** Build a packet of @p len bytes carrying @p seq in its pattern. */
Packet makePacket(std::uint32_t seq, std::uint32_t len);

/** Fill @p dst (len bytes) with the pattern for @p seq. */
void fillPattern(std::uint8_t *dst, std::uint32_t seq,
                 std::uint32_t len);

/** Verify that @p data carries the pattern for @p seq. */
bool checkPattern(const std::uint8_t *data, std::uint32_t seq,
                  std::uint32_t len);

} // namespace elisa::net

#endif // ELISA_NET_PACKET_HH
