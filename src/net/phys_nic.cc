#include "net/phys_nic.hh"

// PhysNic is header-only; see phys_nic.hh.
