/**
 * @file
 * The three networking workloads of the evaluation (RX over NIC, TX
 * over NIC, VM to VM), runnable against any NetPath.
 *
 * Workloads are exact pipeline recurrences in simulated time: each
 * packet's availability/backpressure point is computed from wire,
 * backend, and guest clocks, so throughput reflects whichever resource
 * saturates first (guest CPU, backend thread, or line rate).
 */

#ifndef ELISA_NET_WORKLOADS_HH
#define ELISA_NET_WORKLOADS_HH

#include <cstdint>
#include <vector>

#include "net/paths.hh"
#include "net/phys_nic.hh"

namespace elisa::net
{

/** Result of one workload run. */
struct NetResult
{
    /** Packets moved. */
    std::uint64_t packets = 0;

    /** Simulated duration of the run. */
    SimNs elapsed = 0;

    /** Packets that failed payload verification (must be 0). */
    std::uint64_t corrupt = 0;

    /** Throughput in packets/second. */
    double
    pps() const
    {
        return elapsed == 0
                   ? 0.0
                   : (double)packets * 1e9 / (double)elapsed;
    }

    /** Throughput in Mpps (the figures' unit). */
    double mpps() const { return pps() / 1e6; }

    /** Goodput in Gbit/s for @p len-byte packets. */
    double
    gbps(std::uint32_t len) const
    {
        return pps() * len * 8 / 1e9;
    }
};

/**
 * RX over NIC: a saturating external sender; the guest receives
 * @p count packets of @p len bytes through @p path.
 */
NetResult runRx(NetPath &path, PhysNic &nic, std::uint32_t len,
                std::uint64_t count);

/**
 * TX over NIC: the guest transmits @p count packets of @p len bytes;
 * the ring-slot backpressure of the line-rate wire applies.
 */
NetResult runTx(NetPath &path, PhysNic &nic, std::uint32_t len,
                std::uint64_t count);

/**
 * VM to VM: @p tx_path (VM A) sends to @p rx_path (VM B) through the
 * software switch (or, when @p through_wire, through the NIC's
 * hardware switch as SR-IOV must).
 */
NetResult runVm2Vm(NetPath &tx_path, NetPath &rx_path, PhysNic &nic,
                   bool through_wire, std::uint32_t len,
                   std::uint64_t count);

/**
 * Shared-NIC RX: @p paths (one per VM, same scheme) all receive their
 * own flows from one saturated physical port. The NIC demultiplexes
 * per-VM queues; the single wire serializes all arrivals, so the
 * aggregate can never exceed line rate — the question is how many
 * VMs (vCPUs) each scheme needs to get there.
 *
 * @return aggregate result (packets = sum, elapsed = max span).
 */
NetResult runRxShared(const std::vector<NetPath *> &paths,
                      PhysNic &nic, std::uint32_t len,
                      std::uint64_t count_per_vm);

} // namespace elisa::net

#endif // ELISA_NET_WORKLOADS_HH
