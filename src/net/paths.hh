/**
 * @file
 * The five VM networking datapaths of the evaluation, behind one
 * interface:
 *
 *   SriovPath    VF rings in guest RAM, hardware switching
 *                (direct device assignment; no isolation problem
 *                 because the IOMMU partitions the device).
 *   DirectPath   NIC rings direct-mapped into the guest (ivshmem):
 *                fastest software path, no isolation.
 *   ElisaPath    rings live in a manager VM's exported object; the
 *                guest's per-packet work runs in the sub EPT context
 *                behind a 196 ns gate call. Isolated AND exit-less.
 *   VmcallPath   rings hidden in the host; every packet costs a full
 *                699 ns VMCALL round trip (host-interposition).
 *   VhostPath    virtio rings + host backend thread (vhost-net-style):
 *                isolated, but pays notifications and a backend hop.
 *
 * Timing contract: per-packet guest work is charged as calibrated
 * lumps (netPerPacketNs + optional vswitchNs + payload beats) while
 * ring bytes move functionally through simulated memory via uncharged
 * but EPT-checked accesses; transition costs (gate call / VMCALL /
 * kick) come from the respective mechanisms themselves.
 */

#ifndef ELISA_NET_PATHS_HH
#define ELISA_NET_PATHS_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "elisa/gate.hh"
#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "hv/hypervisor.hh"
#include "hv/ivshmem.hh"
#include "net/desc_ring.hh"
#include "net/packet.hh"
#include "sim/resource.hh"
#include "sim/stats.hh"

namespace elisa::net
{

/** Ring region size rounded to whole pages. */
inline constexpr std::uint64_t ringRegionPaged =
    pageAlignUp(DescRing::regionBytes);

/** Guest GPA where direct-mapped NIC ring regions appear. */
inline constexpr Gpa nicRegionGpa = 0x500000000000ull;

/**
 * Abstract datapath bound to one guest vCPU.
 */
class NetPath
{
  public:
    virtual ~NetPath() = default;

    /** Scheme name as it appears in the paper's figures. */
    virtual const char *name() const = 0;

    /** The guest vCPU whose clock this path charges. */
    virtual cpu::Vcpu &vcpu() = 0;

    /**
     * Guest-side transmit of packet (@p seq, @p len): charges guest
     * cost and leaves the payload in the TX ring.
     * @return the guest-clock "handoff" time after the produce.
     */
    virtual SimNs guestTx(std::uint32_t seq, std::uint32_t len) = 0;

    /**
     * Guest-side receive (ring guaranteed non-empty by the workload):
     * charges guest cost.
     * @return (seq, len) of the consumed packet.
     */
    virtual std::pair<std::uint32_t, std::uint32_t> guestRx() = 0;

    /**
     * Hardware/host ingress: a frame finished arriving at @p wire_done;
     * place it into the RX ring.
     * @return the time it becomes visible to the guest (later than
     *         @p wire_done only for backend paths).
     */
    virtual SimNs hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                                SimNs wire_done) = 0;

    /**
     * Hardware/host egress: drain one packet from the TX ring.
     * @param handoff guest time the packet was produced.
     * @return the packet and the time it is ready for the wire.
     */
    virtual std::pair<Packet, SimNs> hostCollectTx(SimNs handoff) = 0;

    /**
     * The calibrated per-packet guest work: driver/descriptor handling
     * plus (for software-switched paths) the forwarding decision plus
     * payload movement at one 8-byte beat per memAccessNs. Public so
     * workload extensions (e.g. the NF-chain bench) can charge the
     * identical base cost.
     */
    static SimNs perPacketNs(const sim::CostModel &cost,
                             std::uint32_t len, bool soft_switch);

  protected:
    /**
     * Intern the per-packet counters once at construction; per-packet
     * code increments by id (no string hashing on the data path).
     */
    void
    internCounters(sim::StatSet &stats)
    {
        pathStats = &stats;
        txPktsId = stats.id("net_tx_pkts");
        rxPktsId = stats.id("net_rx_pkts");
    }

    /** Count one transmit; emits a per-packet trace instant when the
     *  machine has a tracer installed (one pointer test otherwise). */
    void
    countTx(cpu::Vcpu &cpu, std::uint32_t seq, std::uint32_t len)
    {
        pathStats->inc(txPktsId);
        if (sim::Tracer *tr = cpu.tracer()) {
            tr->instant(sim::SpanCat::Net, txName.get(*tr), cpu.id(),
                        cpu.clock().now(), seq, len);
        }
    }

    /** Count one receive (traced like countTx). */
    void
    countRx(cpu::Vcpu &cpu, std::uint32_t seq, std::uint32_t len)
    {
        pathStats->inc(rxPktsId);
        if (sim::Tracer *tr = cpu.tracer()) {
            tr->instant(sim::SpanCat::Net, rxName.get(*tr), cpu.id(),
                        cpu.clock().now(), seq, len);
        }
    }

  private:
    sim::StatSet *pathStats = nullptr;
    sim::StatId txPktsId = 0;
    sim::StatId rxPktsId = 0;
    sim::TraceNameCache txName{"net_tx"};
    sim::TraceNameCache rxName{"net_rx"};
};

/** Direct device assignment (SR-IOV VF). */
class SriovPath : public NetPath
{
  public:
    SriovPath(hv::Hypervisor &hv, hv::Vm &vm, unsigned vcpu_index = 0);

    const char *name() const override { return "SR-IOV"; }
    cpu::Vcpu &vcpu() override { return guestVm.vcpu(vcpuIndex); }
    SimNs guestTx(std::uint32_t seq, std::uint32_t len) override;
    std::pair<std::uint32_t, std::uint32_t> guestRx() override;
    SimNs hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                        SimNs wire_done) override;
    std::pair<Packet, SimNs> hostCollectTx(SimNs handoff) override;

  private:
    hv::Hypervisor &hyper;
    hv::Vm &guestVm;
    unsigned vcpuIndex;
    Gpa ringsGpa; ///< rx ring at +0, tx ring at +ringRegionPaged
    std::unique_ptr<GuestRegionIo> guestRxIo, guestTxIo;
    std::unique_ptr<HostRegionIo> hostRxIo, hostTxIo;
};

/** Direct-mapped shared NIC rings (ivshmem). */
class DirectPath : public NetPath
{
  public:
    DirectPath(hv::Hypervisor &hv, hv::Vm &vm, unsigned vcpu_index = 0);
    ~DirectPath() override;

    const char *name() const override { return "ivshmem"; }
    cpu::Vcpu &vcpu() override { return guestVm.vcpu(vcpuIndex); }
    SimNs guestTx(std::uint32_t seq, std::uint32_t len) override;
    std::pair<std::uint32_t, std::uint32_t> guestRx() override;
    SimNs hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                        SimNs wire_done) override;
    std::pair<Packet, SimNs> hostCollectTx(SimNs handoff) override;

  private:
    hv::Hypervisor &hyper;
    hv::Vm &guestVm;
    unsigned vcpuIndex;
    std::unique_ptr<hv::IvshmemRegion> region;
    std::unique_ptr<GuestRegionIo> guestRxIo, guestTxIo;
    std::unique_ptr<HostRegionIo> hostRxIo, hostTxIo;
};

/** ELISA: rings in a manager-VM export, per-packet work in the sub
 *  context behind a gate call. */
class ElisaPath : public NetPath
{
  public:
    /**
     * @param manager the manager-VM runtime that will own the rings.
     * @param guest the client runtime on the consuming VM.
     * @param export_name unique name for this path's ring object.
     */
    ElisaPath(hv::Hypervisor &hv, core::ElisaManager &manager,
              core::ElisaGuest &guest, const std::string &export_name);

    const char *name() const override { return "ELISA"; }
    cpu::Vcpu &vcpu() override;
    SimNs guestTx(std::uint32_t seq, std::uint32_t len) override;
    std::pair<std::uint32_t, std::uint32_t> guestRx() override;
    SimNs hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                        SimNs wire_done) override;
    std::pair<Packet, SimNs> hostCollectTx(SimNs handoff) override;

  private:
    hv::Hypervisor &hyper;
    core::ElisaGuest &guestRt;
    core::Gate gate;
    std::unique_ptr<HostRegionIo> hostRxIo, hostTxIo;
};

/** Host-interposition: one VMCALL per packet. */
class VmcallPath : public NetPath
{
  public:
    VmcallPath(hv::Hypervisor &hv, hv::Vm &vm, unsigned vcpu_index = 0);
    ~VmcallPath() override;

    const char *name() const override { return "VMCALL"; }
    cpu::Vcpu &vcpu() override { return guestVm.vcpu(vcpuIndex); }
    SimNs guestTx(std::uint32_t seq, std::uint32_t len) override;
    std::pair<std::uint32_t, std::uint32_t> guestRx() override;
    SimNs hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                        SimNs wire_done) override;
    std::pair<Packet, SimNs> hostCollectTx(SimNs handoff) override;

  private:
    hv::Hypervisor &hyper;
    hv::Vm &guestVm;
    unsigned vcpuIndex;
    Hpa ringsHpa; ///< host-private rings
    std::uint64_t hcTxNr, hcRxNr;
    std::unique_ptr<HostRegionIo> hostRxIo, hostTxIo;
};

/** vhost-net-style virtio path with a host backend thread. */
class VhostPath : public NetPath
{
  public:
    VhostPath(hv::Hypervisor &hv, hv::Vm &vm, unsigned vcpu_index = 0);

    const char *name() const override { return "vhost-net"; }
    cpu::Vcpu &vcpu() override { return guestVm.vcpu(vcpuIndex); }
    SimNs guestTx(std::uint32_t seq, std::uint32_t len) override;
    std::pair<std::uint32_t, std::uint32_t> guestRx() override;
    SimNs hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                        SimNs wire_done) override;
    std::pair<Packet, SimNs> hostCollectTx(SimNs handoff) override;

    /** Backend utilization inspection (tests). */
    const sim::SimResource &backendThread() const { return backend; }

  private:
    /** Per-packet backend service time (copy + virtio handling). */
    SimNs backendServiceNs(std::uint32_t len) const;

    hv::Hypervisor &hyper;
    hv::Vm &guestVm;
    unsigned vcpuIndex;
    Gpa ringsGpa; ///< virtio rings in guest RAM
    std::unique_ptr<GuestRegionIo> guestRxIo, guestTxIo;
    std::unique_ptr<HostRegionIo> hostRxIo, hostTxIo;
    sim::SimResource backend;
};

} // namespace elisa::net

#endif // ELISA_NET_PATHS_HH
