/**
 * @file
 * The physical NIC model: a line-rate-limited wire per direction.
 *
 * Frame serialization occupies the wire for
 * (frame + preamble/IFG/CRC overhead) * 8 / line_rate seconds; the
 * wire is a FIFO SimResource, so saturating senders experience exactly
 * the line-rate ceiling the paper's large-packet results show.
 */

#ifndef ELISA_NET_PHYS_NIC_HH
#define ELISA_NET_PHYS_NIC_HH

#include <cstdint>

#include "base/types.hh"
#include "sim/cost_model.hh"
#include "sim/resource.hh"

namespace elisa::net
{

/**
 * One physical port: RX and TX wires.
 */
class PhysNic
{
  public:
    explicit PhysNic(const sim::CostModel &cost_model)
        : cost(cost_model)
    {
    }

    /** Wire time for one frame of @p len bytes, in integer ns. */
    SimNs
    wireTime(std::uint32_t len) const
    {
        const double ns = cost.wireTimeNs(len);
        const SimNs whole = static_cast<SimNs>(ns);
        return whole == 0 ? 1 : whole;
    }

    /**
     * An ingress frame hits the wire back-to-back with its
     * predecessors, no earlier than @p not_before (the observation
     * window start); returns the time its last bit arrives (i.e.,
     * when DMA into a posted buffer can complete).
     */
    SimNs
    rxArrive(SimNs not_before, std::uint32_t len)
    {
        return rxWire.submit(not_before, wireTime(len));
    }

    /**
     * An egress frame starts serializing no earlier than @p ready;
     * returns the time its last bit leaves.
     */
    SimNs
    txDepart(SimNs ready, std::uint32_t len)
    {
        return txWire.submit(ready, wireTime(len));
    }

    /** Frames that crossed each wire (stats). */
    std::uint64_t rxFrames() const { return rxWire.count(); }
    std::uint64_t txFrames() const { return txWire.count(); }

    /** Reset wire occupancy between experiment points. */
    void
    reset()
    {
        rxWire.reset();
        txWire.reset();
    }

  private:
    const sim::CostModel &cost;
    sim::SimResource rxWire;
    sim::SimResource txWire;
};

} // namespace elisa::net

#endif // ELISA_NET_PHYS_NIC_HH
