/**
 * @file
 * Network-function chains (the HyperNF-class workload of the paper's
 * motivation).
 *
 * A chain is a sequence of stateful NFs — firewall, NAT, load
 * balancer, counter — whose rule tables and state live inside a
 * shared memory region and are manipulated through a RegionIo, so
 * chain processing is real memory traffic under whichever isolation
 * scheme hosts the region. Each NF additionally charges nfWorkNs of
 * matching/lookup compute to the processing vCPU.
 *
 * This is what turns the intro's "-49 % from exits" observation into
 * an emergent result: with a ~4-NF chain of per-packet work, adding a
 * 699 ns VMCALL per packet costs host interposition about half of the
 * direct-mapping throughput (see bench_nf_chain).
 */

#ifndef ELISA_NET_NF_HH
#define ELISA_NET_NF_HH

#include <cstdint>
#include <vector>

#include "cpu/vcpu.hh"
#include "net/desc_ring.hh"
#include "sim/cost_model.hh"

namespace elisa::net
{

/** The NF types of the chain. */
enum class NfKind : std::uint32_t
{
    Firewall = 1,     ///< drops packets matching a deny rule
    Nat = 2,          ///< rewrites the header address field
    LoadBalancer = 3, ///< picks a backend, round robin per flow
    Counter = 4,      ///< per-chain packet/byte accounting
};

/** Render an NF kind. */
const char *nfKindToString(NfKind kind);

/**
 * Chain state in shared memory. Layout at @p off within the region:
 *
 *   [0]     chain length (u32) + magic (u32)
 *   [8]     per-NF blocks of 64 B:
 *             { kind u32, param u32, hits u64, drops u64,
 *               bytes u64, aux u64[4] }
 *
 * For the firewall, `param` is the deny modulus (seq % param == 0 is
 * denied; 0 = allow all). For the LB, `param` is the backend count.
 */
class NfChain
{
  public:
    /** Bytes of state needed for @p nf_count NFs. */
    static std::uint64_t stateBytes(std::size_t nf_count);

    /**
     * Write a fresh chain's state into the region.
     * @param deny_modulus firewall rule (0 = pass everything).
     * @param backends LB backend count.
     */
    static void build(RegionIo &io, std::uint64_t off,
                      const std::vector<NfKind> &kinds,
                      std::uint32_t deny_modulus = 0,
                      std::uint32_t backends = 4);

    /** True when @p off holds a valid chain. */
    static bool valid(RegionIo &io, std::uint64_t off);

    /**
     * Run one packet through the chain: every NF reads/updates its
     * state through @p io and charges nfWorkNs to @p vcpu.
     * @return false when the firewall dropped the packet.
     */
    static bool process(cpu::Vcpu &vcpu, RegionIo &io,
                        std::uint64_t off, std::uint32_t seq,
                        std::uint32_t len);

    /** Read one NF's hit counter (stats/verification). */
    static std::uint64_t hits(RegionIo &io, std::uint64_t off,
                              std::size_t nf_index);

    /** Read one NF's drop counter. */
    static std::uint64_t drops(RegionIo &io, std::uint64_t off,
                               std::size_t nf_index);

    /** Read one NF's byte counter. */
    static std::uint64_t bytes(RegionIo &io, std::uint64_t off,
                               std::size_t nf_index);

    /** Chain length stored in the region. */
    static std::uint32_t length(RegionIo &io, std::uint64_t off);

  private:
    struct NfState
    {
        std::uint32_t kind;
        std::uint32_t param;
        std::uint64_t hits;
        std::uint64_t drops;
        std::uint64_t bytes;
        std::uint64_t aux[4];
    };
    static_assert(sizeof(NfState) == 64);

    static constexpr std::uint32_t magic = 0x4e46u; // "NF"
};

} // namespace elisa::net

#endif // ELISA_NET_NF_HH
