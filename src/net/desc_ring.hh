/**
 * @file
 * Descriptor rings in simulated memory.
 *
 * A ring occupies one contiguous region with this layout:
 *
 *   [0]           producer index (u32, monotonically increasing)
 *   [4]           consumer index (u32)
 *   [64 ...]      ringEntries descriptors of 16 B each:
 *                   { bufOffset u64, len u32, seq u32 }
 *   [bufAreaOff.] ringEntries fixed buffers of bufBytes each
 *
 * Producers/consumers address the region through a RegionIo, which is
 * either privileged host access (NIC DMA engine, host backends) or a
 * guest view (drivers) — in the latter case every access is still
 * EPT-checked. Time is charged by the datapaths as calibrated lumps,
 * so RegionIo accesses themselves are uncharged (see paths.hh).
 */

#ifndef ELISA_NET_DESC_RING_HH
#define ELISA_NET_DESC_RING_HH

#include <cstdint>
#include <optional>

#include "base/types.hh"
#include "cpu/guest_view.hh"
#include "mem/host_memory.hh"
#include "net/packet.hh"

namespace elisa::net
{

/** Byte-level access to a ring region from one party's address space. */
class RegionIo
{
  public:
    virtual ~RegionIo() = default;

    /** Read @p len bytes at region offset @p off. */
    virtual void read(std::uint64_t off, void *dst,
                      std::uint64_t len) = 0;

    /** Write @p len bytes at region offset @p off. */
    virtual void write(std::uint64_t off, const void *src,
                       std::uint64_t len) = 0;

    std::uint32_t
    read32(std::uint64_t off)
    {
        std::uint32_t v;
        read(off, &v, 4);
        return v;
    }

    void
    write32(std::uint64_t off, std::uint32_t v)
    {
        write(off, &v, 4);
    }
};

/** Privileged access (simulated hardware / hypervisor backends). */
class HostRegionIo : public RegionIo
{
  public:
    HostRegionIo(mem::HostMemory &memory, Hpa base)
        : mem(memory), baseHpa(base)
    {
    }

    void
    read(std::uint64_t off, void *dst, std::uint64_t len) override
    {
        mem.read(baseHpa + off, dst, len);
    }

    void
    write(std::uint64_t off, const void *src, std::uint64_t len) override
    {
        mem.write(baseHpa + off, src, len);
    }

  private:
    mem::HostMemory &mem;
    Hpa baseHpa;
};

/**
 * Guest access through the active EPT context (checked, uncharged —
 * datapaths charge calibrated lumps instead).
 */
class GuestRegionIo : public RegionIo
{
  public:
    GuestRegionIo(cpu::Vcpu &vcpu, Gpa base)
        : view(vcpu, /*charge_time=*/false), baseGpa(base)
    {
    }

    void
    read(std::uint64_t off, void *dst, std::uint64_t len) override
    {
        view.readBytes(baseGpa + off, dst, len);
    }

    void
    write(std::uint64_t off, const void *src, std::uint64_t len) override
    {
        view.writeBytes(baseGpa + off, src, len);
    }

  private:
    cpu::GuestView view;
    Gpa baseGpa;
};

/**
 * Ring geometry + producer/consumer operations over a RegionIo.
 */
class DescRing
{
  public:
    /** Entries per ring (power of two). */
    static constexpr std::uint32_t ringEntries = 256;

    /** Fixed per-entry buffer size. */
    static constexpr std::uint32_t bufBytes = maxPacketBytes;

    /** Offset of the descriptor array. */
    static constexpr std::uint64_t descOff = 64;

    /** Offset of the buffer area. */
    static constexpr std::uint64_t bufAreaOff =
        descOff + 16ull * ringEntries;

    /** Total region bytes needed for one ring. */
    static constexpr std::uint64_t regionBytes =
        bufAreaOff + std::uint64_t{ringEntries} * bufBytes;

    /** Zero the indices (producer == consumer == 0). */
    static void init(RegionIo &io);

    /** Number of filled slots. */
    static std::uint32_t count(RegionIo &io);

    /** Number of free slots. */
    static std::uint32_t
    freeSlots(RegionIo &io)
    {
        return ringEntries - count(io);
    }

    /**
     * Produce one packet: copy the payload into the next slot's buffer
     * and publish its descriptor.
     * @return false when the ring is full.
     */
    static bool push(RegionIo &io, const std::uint8_t *payload,
                     std::uint32_t len, std::uint32_t seq);

    /**
     * Produce one packet whose payload is generated in place from the
     * sequence pattern (what a sub-context NF does: the bytes never
     * exist outside the ring region).
     */
    static bool pushPattern(RegionIo &io, std::uint32_t seq,
                            std::uint32_t len);

    /**
     * Consume one packet: read the descriptor and payload.
     * @return the packet, or nullopt when the ring is empty.
     */
    static std::optional<Packet> pop(RegionIo &io);

    /**
     * Consume one packet, reading only the descriptor + header word
     * (what forwarding NFs do); payload bytes stay in the ring.
     * @return {seq, len}, or nullopt when empty.
     */
    static std::optional<std::pair<std::uint32_t, std::uint32_t>>
    popHeader(RegionIo &io);
};

} // namespace elisa::net

#endif // ELISA_NET_DESC_RING_HH
