#include "net/desc_ring.hh"

#include "base/logging.hh"

namespace elisa::net
{

namespace
{

struct Desc
{
    std::uint64_t bufOffset;
    std::uint32_t len;
    std::uint32_t seq;
};

std::uint64_t
descSlotOff(std::uint32_t index)
{
    return DescRing::descOff +
           16ull * (index & (DescRing::ringEntries - 1));
}

std::uint64_t
bufSlotOff(std::uint32_t index)
{
    return DescRing::bufAreaOff +
           std::uint64_t{DescRing::bufBytes} *
               (index & (DescRing::ringEntries - 1));
}

} // anonymous namespace

void
DescRing::init(RegionIo &io)
{
    io.write32(0, 0);
    io.write32(4, 0);
}

std::uint32_t
DescRing::count(RegionIo &io)
{
    const std::uint32_t prod = io.read32(0);
    const std::uint32_t cons = io.read32(4);
    return prod - cons;
}

bool
DescRing::push(RegionIo &io, const std::uint8_t *payload,
               std::uint32_t len, std::uint32_t seq)
{
    panic_if(len > bufBytes, "packet larger than ring buffer");
    const std::uint32_t prod = io.read32(0);
    const std::uint32_t cons = io.read32(4);
    if (prod - cons >= ringEntries)
        return false;

    const std::uint64_t buf = bufSlotOff(prod);
    io.write(buf, payload, len);

    Desc d{buf, len, seq};
    io.write(descSlotOff(prod), &d, sizeof(d));
    io.write32(0, prod + 1);
    return true;
}

bool
DescRing::pushPattern(RegionIo &io, std::uint32_t seq, std::uint32_t len)
{
    std::uint8_t staging[bufBytes];
    fillPattern(staging, seq, len);
    return push(io, staging, len, seq);
}

std::optional<Packet>
DescRing::pop(RegionIo &io)
{
    const std::uint32_t prod = io.read32(0);
    const std::uint32_t cons = io.read32(4);
    if (prod == cons)
        return std::nullopt;

    Desc d;
    io.read(descSlotOff(cons), &d, sizeof(d));
    panic_if(d.len > bufBytes, "corrupt descriptor length");

    Packet p;
    p.len = d.len;
    p.seq = d.seq;
    p.data.resize(d.len);
    io.read(d.bufOffset, p.data.data(), d.len);
    io.write32(4, cons + 1);
    return p;
}

std::optional<std::pair<std::uint32_t, std::uint32_t>>
DescRing::popHeader(RegionIo &io)
{
    const std::uint32_t prod = io.read32(0);
    const std::uint32_t cons = io.read32(4);
    if (prod == cons)
        return std::nullopt;

    Desc d;
    io.read(descSlotOff(cons), &d, sizeof(d));
    // Touch the header word of the payload (forwarding decision).
    std::uint64_t header;
    io.read(d.bufOffset, &header, sizeof(header));
    io.write32(4, cons + 1);
    return std::make_pair(d.seq, d.len);
}

} // namespace elisa::net
