#include "net/nf.hh"

#include "base/logging.hh"

namespace elisa::net
{

const char *
nfKindToString(NfKind kind)
{
    switch (kind) {
      case NfKind::Firewall:
        return "firewall";
      case NfKind::Nat:
        return "nat";
      case NfKind::LoadBalancer:
        return "lb";
      case NfKind::Counter:
        return "counter";
    }
    return "?";
}

std::uint64_t
NfChain::stateBytes(std::size_t nf_count)
{
    return 8 + nf_count * sizeof(NfState);
}

void
NfChain::build(RegionIo &io, std::uint64_t off,
               const std::vector<NfKind> &kinds,
               std::uint32_t deny_modulus, std::uint32_t backends)
{
    panic_if(kinds.empty(), "empty NF chain");
    io.write32(off, static_cast<std::uint32_t>(kinds.size()));
    io.write32(off + 4, magic);
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        NfState state{};
        state.kind = static_cast<std::uint32_t>(kinds[i]);
        switch (kinds[i]) {
          case NfKind::Firewall:
            state.param = deny_modulus;
            break;
          case NfKind::LoadBalancer:
            state.param = backends == 0 ? 1 : backends;
            break;
          default:
            state.param = 0;
            break;
        }
        io.write(off + 8 + i * sizeof(NfState), &state,
                 sizeof(state));
    }
}

bool
NfChain::valid(RegionIo &io, std::uint64_t off)
{
    return io.read32(off + 4) == magic && io.read32(off) > 0;
}

bool
NfChain::process(cpu::Vcpu &vcpu, RegionIo &io, std::uint64_t off,
                 std::uint32_t seq, std::uint32_t len)
{
    const std::uint32_t count = io.read32(off);
    panic_if(io.read32(off + 4) != magic, "corrupt NF chain state");
    const sim::CostModel &cost = vcpu.costModel();

    // The packet "header": flow id derived from the sequence number,
    // as our synthetic traffic generator encodes it.
    std::uint32_t flow = seq * 2654435761u;

    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t nf_off = off + 8 + i * sizeof(NfState);
        NfState state;
        io.read(nf_off, &state, sizeof(state));
        vcpu.clock().advance(cost.nfWorkNs);

        bool dropped = false;
        switch (static_cast<NfKind>(state.kind)) {
          case NfKind::Firewall:
            if (state.param != 0 && flow % state.param == 0) {
                ++state.drops;
                dropped = true;
            }
            break;
          case NfKind::Nat:
            // Rewrite the flow id (the "address field") and remember
            // the translation in the aux words (tiny NAT table).
            state.aux[flow & 3] = flow;
            flow ^= 0x5a5a5a5au;
            break;
          case NfKind::LoadBalancer:
            // Round-robin backend pick, remembered per chain.
            state.aux[0] = (state.aux[0] + 1) % state.param;
            flow = (flow & ~0xfu) |
                   static_cast<std::uint32_t>(state.aux[0]);
            break;
          case NfKind::Counter:
            state.bytes += len;
            break;
          default:
            panic("unknown NF kind %u", state.kind);
        }
        if (!dropped)
            ++state.hits;
        io.write(nf_off, &state, sizeof(state));
        if (dropped)
            return false;
    }
    return true;
}

std::uint64_t
NfChain::hits(RegionIo &io, std::uint64_t off, std::size_t nf_index)
{
    NfState state;
    io.read(off + 8 + nf_index * sizeof(NfState), &state,
            sizeof(state));
    return state.hits;
}

std::uint64_t
NfChain::drops(RegionIo &io, std::uint64_t off, std::size_t nf_index)
{
    NfState state;
    io.read(off + 8 + nf_index * sizeof(NfState), &state,
            sizeof(state));
    return state.drops;
}

std::uint64_t
NfChain::bytes(RegionIo &io, std::uint64_t off, std::size_t nf_index)
{
    NfState state;
    io.read(off + 8 + nf_index * sizeof(NfState), &state,
            sizeof(state));
    return state.bytes;
}

std::uint32_t
NfChain::length(RegionIo &io, std::uint64_t off)
{
    return io.read32(off);
}

} // namespace elisa::net
