#include "net/workloads.hh"

#include <memory>
#include <vector>

#include "base/logging.hh"
#include "sim/engine.hh"

namespace elisa::net
{

namespace
{

/** One receiving VM in the shared-NIC workload. */
class SharedRxActor : public sim::Actor
{
  public:
    SharedRxActor(NetPath &path, PhysNic &nic, std::uint32_t len,
                  std::uint64_t count, SimNs start)
        : path(path), nic(nic), len(len), remaining(count),
          startNs(start)
    {
    }

    SimNs actorNow() const override { return path.vcpu().clock().now(); }

    bool
    step() override
    {
        // This VM's next frame serializes on the shared wire after
        // whatever any VM received before it.
        const SimNs wire_done = nic.rxArrive(startNs, len);
        const SimNs ready =
            path.hostDeliverRx(seq, len, wire_done);
        path.vcpu().clock().syncTo(ready);
        const auto [got_seq, got_len] = path.guestRx();
        if (got_seq != seq || got_len != len)
            ++corrupt;
        ++seq;
        return --remaining > 0;
    }

    std::uint64_t corrupt = 0;

  private:
    NetPath &path;
    PhysNic &nic;
    std::uint32_t len;
    std::uint64_t remaining;
    std::uint32_t seq = 0;
    SimNs startNs;
};

} // anonymous namespace

NetResult
runRx(NetPath &path, PhysNic &nic, std::uint32_t len,
      std::uint64_t count)
{
    panic_if(len < minPacketBytes || len > maxPacketBytes,
             "packet size %u out of range", len);
    cpu::Vcpu &cpu = path.vcpu();
    const SimNs t0 = cpu.clock().now();

    NetResult result;
    for (std::uint64_t i = 0; i < count; ++i) {
        // The next frame finishes arriving on the (saturated) wire...
        const SimNs wire_done = nic.rxArrive(t0, len);
        // ...is placed into the RX ring (plus backend, if any)...
        const SimNs ready = path.hostDeliverRx(
            static_cast<std::uint32_t>(i), len, wire_done);
        // ...and the guest consumes it as soon as both it and the
        // packet are ready.
        cpu.clock().syncTo(ready);
        const auto [seq, got_len] = path.guestRx();
        if (seq != i || got_len != len)
            ++result.corrupt;
    }
    result.packets = count;
    result.elapsed = cpu.clock().now() - t0;
    return result;
}

NetResult
runTx(NetPath &path, PhysNic &nic, std::uint32_t len,
      std::uint64_t count)
{
    panic_if(len < minPacketBytes || len > maxPacketBytes,
             "packet size %u out of range", len);
    cpu::Vcpu &cpu = path.vcpu();
    const SimNs t0 = cpu.clock().now();

    // Ring-slot backpressure: descriptor i reuses the slot of
    // descriptor i - ringEntries, which the NIC releases only once
    // that frame has left the wire.
    std::vector<SimNs> wire_done(DescRing::ringEntries, 0);

    NetResult result;
    SimNs last_wire = t0;
    for (std::uint64_t i = 0; i < count; ++i) {
        cpu.clock().syncTo(wire_done[i % DescRing::ringEntries]);
        const SimNs handoff =
            path.guestTx(static_cast<std::uint32_t>(i), len);
        auto [pkt, ready] = path.hostCollectTx(handoff);
        if (!checkPattern(pkt.data.data(),
                          static_cast<std::uint32_t>(i), len)) {
            ++result.corrupt;
        }
        last_wire = nic.txDepart(ready, len);
        wire_done[i % DescRing::ringEntries] = last_wire;
    }
    result.packets = count;
    const SimNs end =
        cpu.clock().now() > last_wire ? cpu.clock().now() : last_wire;
    result.elapsed = end - t0;
    return result;
}

NetResult
runRxShared(const std::vector<NetPath *> &paths, PhysNic &nic,
            std::uint32_t len, std::uint64_t count_per_vm)
{
    panic_if(paths.empty(), "shared RX needs at least one VM");
    panic_if(len < minPacketBytes || len > maxPacketBytes,
             "packet size %u out of range", len);

    // Align the observation window: arrivals start no earlier than
    // the latest receiver's clock.
    SimNs start = 0;
    for (NetPath *p : paths)
        start = std::max(start, p->vcpu().clock().now());

    std::vector<std::unique_ptr<SharedRxActor>> actors;
    std::vector<SimNs> t0(paths.size());
    sim::Engine engine;
    engine.setLookahead(
        paths.front()->vcpu().costModel().minCrossShardLatencyNs());
    // Every receiver contends on the one physical NIC (a SimResource),
    // so they must schedule on one shard; mixed tags would let two
    // host threads race on the wire.
    const ShardId shard = paths.front()->vcpu().shard();
    for (std::size_t i = 0; i < paths.size(); ++i) {
        panic_if(paths[i]->vcpu().shard() != shard,
                 "shared-NIC receivers must share an engine shard");
        paths[i]->vcpu().clock().syncTo(start);
        t0[i] = paths[i]->vcpu().clock().now();
        actors.push_back(std::make_unique<SharedRxActor>(
            *paths[i], nic, len, count_per_vm, start));
        engine.add(actors.back().get(), shard);
    }
    engine.run();

    NetResult result;
    SimNs end = start;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        result.packets += count_per_vm;
        result.corrupt += actors[i]->corrupt;
        end = std::max(end, paths[i]->vcpu().clock().now());
    }
    result.elapsed = end - start;
    return result;
}

NetResult
runVm2Vm(NetPath &tx_path, NetPath &rx_path, PhysNic &nic,
         bool through_wire, std::uint32_t len, std::uint64_t count)
{
    panic_if(len < minPacketBytes || len > maxPacketBytes,
             "packet size %u out of range", len);
    cpu::Vcpu &tx_cpu = tx_path.vcpu();
    cpu::Vcpu &rx_cpu = rx_path.vcpu();
    panic_if(&tx_cpu == &rx_cpu, "VM-to-VM needs two distinct vCPUs");

    const SimNs t0 = rx_cpu.clock().now();

    // Receiver-completion backpressure: the sender may run at most
    // one ring of packets ahead of the receiver.
    std::vector<SimNs> rx_done(DescRing::ringEntries, 0);

    NetResult result;
    for (std::uint64_t i = 0; i < count; ++i) {
        tx_cpu.clock().syncTo(rx_done[i % DescRing::ringEntries]);
        const SimNs handoff =
            tx_path.guestTx(static_cast<std::uint32_t>(i), len);
        auto [pkt, ready] = tx_path.hostCollectTx(handoff);

        // The switch hop: hardware (wire-limited) for SR-IOV,
        // memory-to-memory for software paths.
        const SimNs forwarded =
            through_wire ? nic.txDepart(ready, len) : ready;
        const SimNs visible = rx_path.hostDeliverRx(
            pkt.seq, pkt.len, forwarded);

        rx_cpu.clock().syncTo(visible);
        const auto [seq, got_len] = rx_path.guestRx();
        if (seq != i || got_len != len)
            ++result.corrupt;
        rx_done[i % DescRing::ringEntries] = rx_cpu.clock().now();
    }
    result.packets = count;
    result.elapsed = rx_cpu.clock().now() - t0;
    return result;
}

} // namespace elisa::net
