#include "net/paths.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace elisa::net
{

namespace
{

/** Pack (seq, len) into the single return register of rx calls. */
std::uint64_t
packSeqLen(std::uint32_t seq, std::uint32_t len)
{
    return (std::uint64_t{seq} << 32) | len;
}

std::pair<std::uint32_t, std::uint32_t>
unpackSeqLen(std::uint64_t packed)
{
    return {static_cast<std::uint32_t>(packed >> 32),
            static_cast<std::uint32_t>(packed & 0xffffffffull)};
}

} // anonymous namespace

SimNs
NetPath::perPacketNs(const sim::CostModel &cost, std::uint32_t len,
                     bool soft_switch)
{
    return cost.netPerPacketNs + (soft_switch ? cost.vswitchNs : 0) +
           cost.memAccessNs * divCeil(len, 8);
}

// ---- SriovPath -------------------------------------------------------

SriovPath::SriovPath(hv::Hypervisor &hv, hv::Vm &vm, unsigned vcpu_index)
    : hyper(hv), guestVm(vm), vcpuIndex(vcpu_index)
{
    internCounters(hv.stats());
    auto gpa = vm.allocGuestMem(2 * ringRegionPaged);
    fatal_if(!gpa, "VM '%s' out of RAM for VF rings", vm.name().c_str());
    ringsGpa = *gpa;

    const Hpa hpa = vm.ramGpaToHpa(ringsGpa);
    hostRxIo = std::make_unique<HostRegionIo>(hv.memory(), hpa);
    hostTxIo = std::make_unique<HostRegionIo>(hv.memory(),
                                              hpa + ringRegionPaged);
    guestRxIo = std::make_unique<GuestRegionIo>(vcpu(), ringsGpa);
    guestTxIo = std::make_unique<GuestRegionIo>(
        vcpu(), ringsGpa + ringRegionPaged);
    DescRing::init(*hostRxIo);
    DescRing::init(*hostTxIo);
}

SimNs
SriovPath::guestTx(std::uint32_t seq, std::uint32_t len)
{
    cpu::Vcpu &cpu = vcpu();
    cpu.clock().advance(perPacketNs(hyper.cost(), len, false));
    const bool ok = DescRing::pushPattern(*guestTxIo, seq, len);
    panic_if(!ok, "VF TX ring overflow (workload pacing bug)");
    countTx(cpu, seq, len);
    return cpu.clock().now();
}

std::pair<std::uint32_t, std::uint32_t>
SriovPath::guestRx()
{
    auto pkt = DescRing::pop(*guestRxIo);
    panic_if(!pkt, "VF RX ring empty (workload pacing bug)");
    vcpu().clock().advance(perPacketNs(hyper.cost(), pkt->len, false));
    countRx(vcpu(), pkt->seq, pkt->len);
    return {pkt->seq, pkt->len};
}

SimNs
SriovPath::hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                         SimNs wire_done)
{
    const bool ok = DescRing::pushPattern(*hostRxIo, seq, len);
    panic_if(!ok, "VF RX ring overflow");
    return wire_done;
}

std::pair<Packet, SimNs>
SriovPath::hostCollectTx(SimNs handoff)
{
    auto pkt = DescRing::pop(*hostTxIo);
    panic_if(!pkt, "VF TX ring empty");
    return {std::move(*pkt), handoff};
}

// ---- DirectPath ------------------------------------------------------

DirectPath::DirectPath(hv::Hypervisor &hv, hv::Vm &vm,
                       unsigned vcpu_index)
    : hyper(hv), guestVm(vm), vcpuIndex(vcpu_index)
{
    internCounters(hv.stats());
    region = std::make_unique<hv::IvshmemRegion>(
        hv, "nic-rings-" + vm.name(), 2 * ringRegionPaged);
    fatal_if(!region->attach(vm, nicRegionGpa),
             "NIC ring window collision in VM '%s'", vm.name().c_str());

    hostRxIo = std::make_unique<HostRegionIo>(hv.memory(),
                                              region->base());
    hostTxIo = std::make_unique<HostRegionIo>(
        hv.memory(), region->base() + ringRegionPaged);
    guestRxIo = std::make_unique<GuestRegionIo>(vcpu(), nicRegionGpa);
    guestTxIo = std::make_unique<GuestRegionIo>(
        vcpu(), nicRegionGpa + ringRegionPaged);
    DescRing::init(*hostRxIo);
    DescRing::init(*hostTxIo);
}

DirectPath::~DirectPath()
{
    region->detach(guestVm, nicRegionGpa);
}

SimNs
DirectPath::guestTx(std::uint32_t seq, std::uint32_t len)
{
    cpu::Vcpu &cpu = vcpu();
    cpu.clock().advance(perPacketNs(hyper.cost(), len, true));
    const bool ok = DescRing::pushPattern(*guestTxIo, seq, len);
    panic_if(!ok, "direct TX ring overflow (workload pacing bug)");
    countTx(cpu, seq, len);
    return cpu.clock().now();
}

std::pair<std::uint32_t, std::uint32_t>
DirectPath::guestRx()
{
    auto pkt = DescRing::pop(*guestRxIo);
    panic_if(!pkt, "direct RX ring empty (workload pacing bug)");
    vcpu().clock().advance(perPacketNs(hyper.cost(), pkt->len, true));
    countRx(vcpu(), pkt->seq, pkt->len);
    return {pkt->seq, pkt->len};
}

SimNs
DirectPath::hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                          SimNs wire_done)
{
    const bool ok = DescRing::pushPattern(*hostRxIo, seq, len);
    panic_if(!ok, "direct RX ring overflow");
    return wire_done;
}

std::pair<Packet, SimNs>
DirectPath::hostCollectTx(SimNs handoff)
{
    auto pkt = DescRing::pop(*hostTxIo);
    panic_if(!pkt, "direct TX ring empty");
    return {std::move(*pkt), handoff};
}

// ---- ElisaPath -------------------------------------------------------

ElisaPath::ElisaPath(hv::Hypervisor &hv, core::ElisaManager &manager,
                     core::ElisaGuest &guest,
                     const std::string &export_name)
    : hyper(hv), guestRt(guest)
{
    internCounters(hv.stats());
    const sim::CostModel &cost = hv.cost();

    // The shared code: per-packet NF work executed inside the sub EPT
    // context. RX ring at object+0, TX ring at object+ringRegionPaged.
    core::SharedFnTable fns;
    fns.push_back([&cost](core::SubCallCtx &ctx) { // 0: tx(seq, len)
        GuestRegionIo io(ctx.view.vcpu(), ctx.obj + ringRegionPaged);
        const auto seq = static_cast<std::uint32_t>(ctx.arg0);
        const auto len = static_cast<std::uint32_t>(ctx.arg1);
        ctx.view.vcpu().clock().advance(perPacketNs(cost, len, true));
        return DescRing::pushPattern(io, seq, len) ? std::uint64_t{1}
                                                   : std::uint64_t{0};
    });
    fns.push_back([&cost](core::SubCallCtx &ctx) { // 1: rx()
        GuestRegionIo io(ctx.view.vcpu(), ctx.obj);
        auto pkt = DescRing::pop(io);
        if (!pkt)
            return ~std::uint64_t{0};
        ctx.view.vcpu().clock().advance(
            perPacketNs(cost, pkt->len, true));
        return packSeqLen(pkt->seq, pkt->len);
    });

    auto exported = manager.exportObject(core::ExportKey(export_name),
                                         2 * ringRegionPaged,
                                         std::move(fns));
    fatal_if(!exported, "exporting NIC rings '%s' failed",
             export_name.c_str());

    const Hpa obj_hpa =
        manager.vm().ramGpaToHpa(exported->objectGpa);
    hostRxIo = std::make_unique<HostRegionIo>(hv.memory(), obj_hpa);
    hostTxIo = std::make_unique<HostRegionIo>(hv.memory(),
                                              obj_hpa + ringRegionPaged);
    DescRing::init(*hostRxIo);
    DescRing::init(*hostTxIo);

    core::AttachResult attached = guest.tryAttach(core::ExportKey(export_name), manager);
    fatal_if(!attached, "attach to NIC rings '%s' failed: %s",
             export_name.c_str(), attached.reason().c_str());
    gate = attached.take();
}

cpu::Vcpu &
ElisaPath::vcpu()
{
    return guestRt.vcpu();
}

SimNs
ElisaPath::guestTx(std::uint32_t seq, std::uint32_t len)
{
    const std::uint64_t ok = gate.call(0, seq, len);
    panic_if(ok != 1, "ELISA TX ring overflow (workload pacing bug)");
    countTx(vcpu(), seq, len);
    return vcpu().clock().now();
}

std::pair<std::uint32_t, std::uint32_t>
ElisaPath::guestRx()
{
    const std::uint64_t packed = gate.call(1);
    panic_if(packed == ~std::uint64_t{0},
             "ELISA RX ring empty (workload pacing bug)");
    const auto seq_len = unpackSeqLen(packed);
    countRx(vcpu(), seq_len.first, seq_len.second);
    return seq_len;
}

SimNs
ElisaPath::hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                         SimNs wire_done)
{
    const bool ok = DescRing::pushPattern(*hostRxIo, seq, len);
    panic_if(!ok, "ELISA RX ring overflow");
    return wire_done;
}

std::pair<Packet, SimNs>
ElisaPath::hostCollectTx(SimNs handoff)
{
    auto pkt = DescRing::pop(*hostTxIo);
    panic_if(!pkt, "ELISA TX ring empty");
    return {std::move(*pkt), handoff};
}

// ---- VmcallPath ------------------------------------------------------

VmcallPath::VmcallPath(hv::Hypervisor &hv, hv::Vm &vm,
                       unsigned vcpu_index)
    : hyper(hv), guestVm(vm), vcpuIndex(vcpu_index)
{
    internCounters(hv.stats());
    auto frames =
        hv.allocator().alloc(2 * ringRegionPaged / pageSize);
    fatal_if(!frames, "out of memory for host NIC rings");
    ringsHpa = *frames;

    hostRxIo = std::make_unique<HostRegionIo>(hv.memory(), ringsHpa);
    hostTxIo = std::make_unique<HostRegionIo>(
        hv.memory(), ringsHpa + ringRegionPaged);
    DescRing::init(*hostRxIo);
    DescRing::init(*hostTxIo);

    hcTxNr = hv.allocServiceNr();
    hcRxNr = hv.allocServiceNr();
    const sim::CostModel &cost = hv.cost();

    // Host-interposition handlers: the host does the ring work on the
    // guest's behalf, charging the guest's clock for it.
    hv.registerHypercall(
        hcTxNr, [this, &cost](cpu::Vcpu &vcpu,
                              const cpu::HypercallArgs &args) {
            const auto seq = static_cast<std::uint32_t>(args.arg0);
            const auto len = static_cast<std::uint32_t>(args.arg1);
            vcpu.clock().advance(perPacketNs(cost, len, true));
            return DescRing::pushPattern(*hostTxIo, seq, len)
                       ? std::uint64_t{1}
                       : std::uint64_t{0};
        });
    hv.registerHypercall(
        hcRxNr, [this, &cost](cpu::Vcpu &vcpu,
                              const cpu::HypercallArgs &) {
            auto pkt = DescRing::pop(*hostRxIo);
            if (!pkt)
                return ~std::uint64_t{0};
            vcpu.clock().advance(perPacketNs(cost, pkt->len, true));
            return packSeqLen(pkt->seq, pkt->len);
        });
}

VmcallPath::~VmcallPath()
{
    hyper.allocator().free(ringsHpa, 2 * ringRegionPaged / pageSize);
}

SimNs
VmcallPath::guestTx(std::uint32_t seq, std::uint32_t len)
{
    cpu::HypercallArgs args;
    args.nr = hcTxNr;
    args.arg0 = seq;
    args.arg1 = len;
    const std::uint64_t ok = vcpu().vmcall(args);
    panic_if(ok != 1, "VMCALL TX ring overflow (workload pacing bug)");
    countTx(vcpu(), seq, len);
    return vcpu().clock().now();
}

std::pair<std::uint32_t, std::uint32_t>
VmcallPath::guestRx()
{
    cpu::HypercallArgs args;
    args.nr = hcRxNr;
    const std::uint64_t packed = vcpu().vmcall(args);
    panic_if(packed == ~std::uint64_t{0},
             "VMCALL RX ring empty (workload pacing bug)");
    const auto seq_len = unpackSeqLen(packed);
    countRx(vcpu(), seq_len.first, seq_len.second);
    return seq_len;
}

SimNs
VmcallPath::hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                          SimNs wire_done)
{
    const bool ok = DescRing::pushPattern(*hostRxIo, seq, len);
    panic_if(!ok, "VMCALL RX ring overflow");
    return wire_done;
}

std::pair<Packet, SimNs>
VmcallPath::hostCollectTx(SimNs handoff)
{
    auto pkt = DescRing::pop(*hostTxIo);
    panic_if(!pkt, "VMCALL TX ring empty");
    return {std::move(*pkt), handoff};
}

// ---- VhostPath --------------------------------------------------

VhostPath::VhostPath(hv::Hypervisor &hv, hv::Vm &vm, unsigned vcpu_index)
    : hyper(hv), guestVm(vm), vcpuIndex(vcpu_index)
{
    internCounters(hv.stats());
    auto gpa = vm.allocGuestMem(2 * ringRegionPaged);
    fatal_if(!gpa, "VM '%s' out of RAM for virtio rings",
             vm.name().c_str());
    ringsGpa = *gpa;

    const Hpa hpa = vm.ramGpaToHpa(ringsGpa);
    hostRxIo = std::make_unique<HostRegionIo>(hv.memory(), hpa);
    hostTxIo = std::make_unique<HostRegionIo>(hv.memory(),
                                              hpa + ringRegionPaged);
    guestRxIo = std::make_unique<GuestRegionIo>(vcpu(), ringsGpa);
    guestTxIo = std::make_unique<GuestRegionIo>(
        vcpu(), ringsGpa + ringRegionPaged);
    DescRing::init(*hostRxIo);
    DescRing::init(*hostTxIo);
}

SimNs
VhostPath::backendServiceNs(std::uint32_t len) const
{
    const sim::CostModel &cost = hyper.cost();
    return cost.vhostBackendNs +
           static_cast<SimNs>(cost.netPerByteNs * len);
}

SimNs
VhostPath::guestTx(std::uint32_t seq, std::uint32_t len)
{
    const sim::CostModel &cost = hyper.cost();
    cpu::Vcpu &cpu = vcpu();
    cpu.clock().advance(cost.virtioGuestNs + cost.virtioKickNs +
                        cost.memAccessNs * divCeil(len, 8));
    const bool ok = DescRing::pushPattern(*guestTxIo, seq, len);
    panic_if(!ok, "virtio TX ring overflow (workload pacing bug)");
    countTx(cpu, seq, len);
    return cpu.clock().now();
}

std::pair<std::uint32_t, std::uint32_t>
VhostPath::guestRx()
{
    const sim::CostModel &cost = hyper.cost();
    auto pkt = DescRing::pop(*guestRxIo);
    panic_if(!pkt, "virtio RX ring empty (workload pacing bug)");
    vcpu().clock().advance(cost.virtioGuestNs + cost.virtioKickNs +
                           cost.memAccessNs * divCeil(pkt->len, 8));
    countRx(vcpu(), pkt->seq, pkt->len);
    return {pkt->seq, pkt->len};
}

SimNs
VhostPath::hostDeliverRx(std::uint32_t seq, std::uint32_t len,
                         SimNs wire_done)
{
    // The backend thread copies the frame into the virtio ring.
    const SimNs ready = backend.submit(wire_done, backendServiceNs(len));
    const bool ok = DescRing::pushPattern(*hostRxIo, seq, len);
    panic_if(!ok, "virtio RX ring overflow");
    return ready;
}

std::pair<Packet, SimNs>
VhostPath::hostCollectTx(SimNs handoff)
{
    auto pkt = DescRing::pop(*hostTxIo);
    panic_if(!pkt, "virtio TX ring empty");
    const SimNs ready =
        backend.submit(handoff, backendServiceNs(pkt->len));
    return {std::move(*pkt), ready};
}

} // namespace elisa::net
