#include "kvs/cluster.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "base/units.hh"
#include "cpu/exit.hh"
#include "cpu/guest_view.hh"
#include "sim/rng.hh"
#include "sim/zipf.hh"

namespace elisa::kvs
{

namespace
{

// Exchange/marshalling-buffer ABI of the store calls (same shape as
// the flat-table clients: key first, value one cache line later).
constexpr std::uint64_t keyOff = 0;
constexpr std::uint64_t valueOff = 64;

/**
 * The shared functions a store node loads into its sub EPT context:
 * 0 = get, 1 = put (log append), 2 = remove (tombstone append). No
 * write locks: a shard has exactly one executor vCPU, so operations
 * are already serialized on its clock.
 */
core::SharedFnTable
makeLogStoreFns(const sim::CostModel &cost)
{
    core::SharedFnTable fns;
    fns.push_back([&cost](core::SubCallCtx &ctx) { // 0: get
        net::GuestRegionIo obj(ctx.view.vcpu(), ctx.obj);
        net::GuestRegionIo exch(ctx.view.vcpu(), ctx.exch);
        Key key;
        exch.read(keyOff, key.data(), keyBytes);
        ctx.view.vcpu().clock().advance(cost.kvsGetCoreNs);
        auto value = LogKvs::get(obj, key);
        if (!value)
            return std::uint64_t{0};
        exch.write(valueOff, value->data(), valueBytes);
        return std::uint64_t{1};
    });
    fns.push_back([&cost](core::SubCallCtx &ctx) { // 1: put
        net::GuestRegionIo obj(ctx.view.vcpu(), ctx.obj);
        net::GuestRegionIo exch(ctx.view.vcpu(), ctx.exch);
        Key key;
        Value value;
        exch.read(keyOff, key.data(), keyBytes);
        exch.read(valueOff, value.data(), valueBytes);
        ctx.view.vcpu().clock().advance(cost.kvsPutCoreNs);
        return LogKvs::put(obj, key, value) ? std::uint64_t{1}
                                            : std::uint64_t{0};
    });
    fns.push_back([&cost](core::SubCallCtx &ctx) { // 2: remove
        net::GuestRegionIo obj(ctx.view.vcpu(), ctx.obj);
        net::GuestRegionIo exch(ctx.view.vcpu(), ctx.exch);
        Key key;
        exch.read(keyOff, key.data(), keyBytes);
        ctx.view.vcpu().clock().advance(cost.kvsPutCoreNs);
        return LogKvs::remove(obj, key) ? std::uint64_t{1}
                                        : std::uint64_t{0};
    });
    return fns;
}

/** Direct-scheme GPA window of store node @p n (1 GiB apart). */
Gpa
directWindowGpa(unsigned n)
{
    return 0x540000000000ull + std::uint64_t{n} * 0x40000000ull;
}

} // namespace

const char *
clusterSchemeToString(ClusterScheme scheme)
{
    switch (scheme) {
      case ClusterScheme::Elisa:
        return "ELISA";
      case ClusterScheme::Vmcall:
        return "VMCALL";
      case ClusterScheme::Direct:
        return "ivshmem";
    }
    return "?";
}

// ---- one store node --------------------------------------------------

struct KvsCluster::Node
{
    /** Privileged access (prepopulation, recovery, fingerprints). */
    std::unique_ptr<net::HostRegionIo> host;

    /** ELISA: the manager VM owning this copy, and the server's gate. */
    VmId vmId = invalidVmId;
    std::unique_ptr<core::ElisaManager> manager;
    core::Gate gate;

    /** VMCALL: per-node service numbers + host-private backing. */
    std::uint64_t hcGet = 0, hcPut = 0, hcRemove = 0;
    Hpa base = 0;
    std::uint64_t pages = 0;

    /** Direct: ivshmem region mapped into the server VM. */
    std::unique_ptr<hv::IvshmemRegion> region;
    std::unique_ptr<net::GuestRegionIo> guestIo;

    bool alive = true;
};

// ---- one server machine (== one engine shard) ------------------------

struct KvsCluster::ServerMachine
{
    ServerMachine(const ClusterConfig &config, unsigned index);
    ~ServerMachine();

    cpu::Vcpu &vcpu() { return serverVm.vcpu(0); }

    /** Protocol-step beacon: one hypercall per injection site, only
     *  when a fault plan is installed (a pointer test otherwise). */
    void stepCall();

    std::optional<Value> serveGet(const Key &key);
    bool servePut(const Key &key, const Value &value);

    std::optional<Value> readFrom(Node &node, const Key &key);
    bool appendTo(Node &node, const Key &key, const Value &value);

    /** Fail over any role whose VM is already gone (sync-point kill
     *  detection, before the op touches a store). */
    void recoverDeadNodes();

    void failoverPrimary();
    void failoverReplica();
    void reseedStandby();

    ClusterScheme scheme;
    std::uint64_t buckets;
    std::uint64_t logSlots;
    std::uint64_t storeBytes;
    hv::Hypervisor hv;
    core::ElisaService svc;
    hv::Vm &serverVm;
    std::unique_ptr<core::ElisaGuest> guest; ///< ELISA scheme only
    std::array<Node, 3> nodes;

    /** Role -> node index. */
    unsigned primary = 0, replica = 1, standby = 2;
    bool hasReplica = true, hasStandby = true;

    std::uint64_t stepHc = 0;
    Gpa bufGpa = 0; ///< VMCALL marshalling buffer

    // Recovery bookkeeping (see failoverPrimary).
    std::uint64_t dyingFp = 0;
    bool dyingFpValid = false;
    std::uint64_t lastDyingFp = 0;
    std::uint64_t lastPromotedFp = 0;
    unsigned failoverCount = 0;
};

KvsCluster::ServerMachine::ServerMachine(const ClusterConfig &config,
                                         unsigned index)
    : scheme(config.scheme), buckets(config.buckets),
      logSlots(config.logSlots),
      storeBytes(
          pageAlignUp(LogKvs::regionBytesFor(buckets, logSlots))),
      hv(192 * MiB), svc(hv),
      serverVm(hv.createVm("server" + std::to_string(index), 32 * MiB))
{
    hv.setShard(index);

    stepHc = hv.allocServiceNr();
    hv.registerHypercall(
        stepHc, [](cpu::Vcpu &, const cpu::HypercallArgs &) {
            return std::uint64_t{0};
        });
    hv.setHypercallName(stepHc, "cluster_step");

    // Fingerprint a dying store before its RAM is freed: the destroy
    // hook runs while the VM still exists, so recovery can later prove
    // the replica replay reconstructed identical logical content.
    hv.addVmDestroyHook([this](VmId id) {
        for (Node &node : nodes) {
            if (node.vmId != id || !node.host)
                continue;
            node.alive = false;
            if (LogKvs::formatted(*node.host)) {
                dyingFp = LogKvs::fingerprint(*node.host);
                dyingFpValid = true;
            }
        }
    });

    switch (scheme) {
      case ClusterScheme::Elisa: {
        guest = std::make_unique<core::ElisaGuest>(serverVm, svc);
        for (unsigned n = 0; n < nodes.size(); ++n) {
            Node &node = nodes[n];
            hv::Vm &vm = hv.createVm("store" + std::to_string(index) +
                                         "-" + std::to_string(n),
                                     32 * MiB);
            node.vmId = vm.id();
            node.manager = std::make_unique<core::ElisaManager>(vm, svc);
            const std::string name =
                "log" + std::to_string(index) + "-" + std::to_string(n);
            auto exported = node.manager->exportObject(
                core::ExportKey(name), storeBytes, makeLogStoreFns(hv.cost()));
            fatal_if(!exported, "exporting store '%s' failed",
                     name.c_str());
            node.host = std::make_unique<net::HostRegionIo>(
                hv.memory(), vm.ramGpaToHpa(exported->objectGpa));
            LogKvs::format(*node.host, buckets, logSlots);
            auto attach = guest->tryAttach(core::ExportKey(name), *node.manager);
            fatal_if(!attach, "attach to store '%s' failed: %s",
                     name.c_str(), attach.reason().c_str());
            node.gate = attach.take();
        }
        break;
      }
      case ClusterScheme::Vmcall: {
        auto buf = serverVm.allocGuestMem(pageSize);
        fatal_if(!buf, "server VM out of RAM for the VMCALL buffer");
        bufGpa = *buf;
        const sim::CostModel &cost = hv.cost();
        for (unsigned n = 0; n < nodes.size(); ++n) {
            Node &node = nodes[n];
            node.pages = storeBytes / pageSize;
            auto frames = hv.allocator().alloc(node.pages);
            fatal_if(!frames, "out of host memory for store node");
            node.base = *frames;
            node.host = std::make_unique<net::HostRegionIo>(hv.memory(),
                                                            node.base);
            LogKvs::format(*node.host, buckets, logSlots);
            node.hcGet = hv.allocServiceNr();
            node.hcPut = hv.allocServiceNr();
            node.hcRemove = hv.allocServiceNr();
            net::HostRegionIo *io = node.host.get();
            hv.registerHypercall(
                node.hcGet,
                [io, &cost](cpu::Vcpu &vcpu,
                            const cpu::HypercallArgs &args) {
                    cpu::GuestView view(vcpu);
                    Key key;
                    view.readBytes(args.arg0, key.data(), keyBytes);
                    vcpu.clock().advance(cost.kvsGetCoreNs);
                    auto value = LogKvs::get(*io, key);
                    if (!value)
                        return std::uint64_t{0};
                    view.writeBytes(args.arg0 + valueOff, value->data(),
                                    valueBytes);
                    return std::uint64_t{1};
                });
            hv.registerHypercall(
                node.hcPut,
                [io, &cost](cpu::Vcpu &vcpu,
                            const cpu::HypercallArgs &args) {
                    cpu::GuestView view(vcpu);
                    Key key;
                    Value value;
                    view.readBytes(args.arg0, key.data(), keyBytes);
                    view.readBytes(args.arg0 + valueOff, value.data(),
                                   valueBytes);
                    vcpu.clock().advance(cost.kvsPutCoreNs);
                    return LogKvs::put(*io, key, value)
                               ? std::uint64_t{1}
                               : std::uint64_t{0};
                });
            hv.registerHypercall(
                node.hcRemove,
                [io, &cost](cpu::Vcpu &vcpu,
                            const cpu::HypercallArgs &args) {
                    cpu::GuestView view(vcpu);
                    Key key;
                    view.readBytes(args.arg0, key.data(), keyBytes);
                    vcpu.clock().advance(cost.kvsPutCoreNs);
                    return LogKvs::remove(*io, key)
                               ? std::uint64_t{1}
                               : std::uint64_t{0};
                });
        }
        break;
      }
      case ClusterScheme::Direct: {
        for (unsigned n = 0; n < nodes.size(); ++n) {
            Node &node = nodes[n];
            const std::string name = "log" + std::to_string(index) +
                                     "-" + std::to_string(n);
            node.region = std::make_unique<hv::IvshmemRegion>(
                hv, name, storeBytes);
            fatal_if(!node.region->attach(serverVm, directWindowGpa(n)),
                     "store window collision for '%s'", name.c_str());
            node.guestIo = std::make_unique<net::GuestRegionIo>(
                vcpu(), directWindowGpa(n));
            node.host = std::make_unique<net::HostRegionIo>(
                hv.memory(), node.region->base());
            LogKvs::format(*node.host, buckets, logSlots);
        }
        break;
      }
    }
}

KvsCluster::ServerMachine::~ServerMachine()
{
    if (scheme == ClusterScheme::Direct) {
        for (unsigned n = 0; n < nodes.size(); ++n)
            if (nodes[n].region)
                nodes[n].region->detach(serverVm, directWindowGpa(n));
    }
    if (scheme == ClusterScheme::Vmcall) {
        for (Node &node : nodes)
            if (node.pages)
                hv.allocator().free(node.base, node.pages);
    }
}

void
KvsCluster::ServerMachine::stepCall()
{
    if (!hv.faultPlan())
        return;
    cpu::HypercallArgs args;
    args.nr = stepHc;
    vcpu().vmcall(args);
}

std::optional<Value>
KvsCluster::ServerMachine::readFrom(Node &node, const Key &key)
{
    switch (scheme) {
      case ClusterScheme::Elisa: {
        node.gate.writeExchange(keyOff, key.data(), keyBytes);
        if (node.gate.call(0) == 0)
            return std::nullopt;
        Value value;
        node.gate.readExchange(valueOff, value.data(), valueBytes);
        return value;
      }
      case ClusterScheme::Vmcall: {
        cpu::GuestView view(vcpu());
        view.writeBytes(bufGpa, key.data(), keyBytes);
        cpu::HypercallArgs args;
        args.nr = node.hcGet;
        args.arg0 = bufGpa;
        if (vcpu().vmcall(args) == 0)
            return std::nullopt;
        Value value;
        view.readBytes(bufGpa + valueOff, value.data(), valueBytes);
        return value;
      }
      case ClusterScheme::Direct: {
        vcpu().clock().advance(hv.cost().kvsGetCoreNs);
        return LogKvs::get(*node.guestIo, key);
      }
    }
    return std::nullopt;
}

bool
KvsCluster::ServerMachine::appendTo(Node &node, const Key &key,
                                    const Value &value)
{
    switch (scheme) {
      case ClusterScheme::Elisa: {
        node.gate.writeExchange(keyOff, key.data(), keyBytes);
        node.gate.writeExchange(valueOff, value.data(), valueBytes);
        return node.gate.call(1) == 1;
      }
      case ClusterScheme::Vmcall: {
        cpu::GuestView view(vcpu());
        view.writeBytes(bufGpa, key.data(), keyBytes);
        view.writeBytes(bufGpa + valueOff, value.data(), valueBytes);
        cpu::HypercallArgs args;
        args.nr = node.hcPut;
        args.arg0 = bufGpa;
        return vcpu().vmcall(args) == 1;
      }
      case ClusterScheme::Direct: {
        vcpu().clock().advance(hv.cost().kvsPutCoreNs);
        return LogKvs::put(*node.guestIo, key, value);
      }
    }
    return false;
}

void
KvsCluster::ServerMachine::recoverDeadNodes()
{
    // Only the ELISA scheme puts store copies into killable VMs, and
    // without a fault plan nothing ever dies.
    if (scheme != ClusterScheme::Elisa || !hv.faultPlan())
        return;
    if (!hv.hasVm(nodes[primary].vmId)) {
        // Detected at a sync point: no append raced the kill, so the
        // promoted replay must reconstruct the dying table exactly.
        failoverPrimary();
    }
    if (hasReplica && !hv.hasVm(nodes[replica].vmId))
        failoverReplica();
}

std::optional<Value>
KvsCluster::ServerMachine::serveGet(const Key &key)
{
    stepCall();
    recoverDeadNodes();
    for (int attempt = 0; attempt < 2; ++attempt) {
        Node &p = nodes[primary];
        try {
            return readFrom(p, key);
        } catch (const cpu::VmExitEvent &) {
            // Only a dead store VM is recoverable; anything else (a
            // kill aimed at the server VM itself, say) unwinds.
            if (attempt == 1 || hv.hasVm(p.vmId))
                throw;
            failoverPrimary();
        }
    }
    panic("KVS shard GET retry exhausted after failover");
    return std::nullopt;
}

bool
KvsCluster::ServerMachine::servePut(const Key &key, const Value &value)
{
    stepCall(); // injection site 1: the PUT was admitted
    recoverDeadNodes();
    if (hasReplica) {
        for (int attempt = 0; attempt < 2 && hasReplica; ++attempt) {
            Node &r = nodes[replica];
            try {
                appendTo(r, key, value);
                break;
            } catch (const cpu::VmExitEvent &) {
                if (attempt == 1 || hv.hasVm(r.vmId))
                    throw;
                failoverReplica();
            }
        }
        stepCall(); // injection site 2: the replica append is durable
    }
    bool ok = false;
    for (int attempt = 0; attempt < 2; ++attempt) {
        Node &p = nodes[primary];
        try {
            ok = appendTo(p, key, value);
            break;
        } catch (const cpu::VmExitEvent &) {
            if (attempt == 1 || hv.hasVm(p.vmId))
                throw;
            // The promoted replica already holds this PUT's record
            // (its append preceded the kill); the retry below is an
            // idempotent overwrite.
            failoverPrimary();
        }
    }
    stepCall(); // injection site 3: the ack point
    return ok;
}

void
KvsCluster::ServerMachine::failoverPrimary()
{
    panic_if(!hasReplica,
             "KVS shard lost its primary with no replica to promote");
    panic_if(!dyingFpValid,
             "primary died without a captured fingerprint");
    lastDyingFp = dyingFp;
    dyingFpValid = false;

    // Promote: recovery trusts only the log — rebuild the replica's
    // index by replaying it, exactly what a fresh process attaching
    // the shm region after a crash would do.
    Node &r = nodes[replica];
    const std::uint64_t applied = LogKvs::replay(*r.host);
    vcpu().clock().advance(applied * hv.cost().kvsGetCoreNs);
    lastPromotedFp = LogKvs::fingerprint(*r.host);

    primary = replica;
    hasReplica = false;
    if (hasStandby) {
        reseedStandby();
        replica = standby;
        hasStandby = false;
        hasReplica = true;
    }
    ++failoverCount;
}

void
KvsCluster::ServerMachine::failoverReplica()
{
    if (dyingFpValid) {
        lastDyingFp = dyingFp;
        dyingFpValid = false;
    }
    hasReplica = false;
    if (hasStandby) {
        reseedStandby();
        replica = standby;
        hasStandby = false;
        hasReplica = true;
    }
    ++failoverCount;
}

void
KvsCluster::ServerMachine::reseedStandby()
{
    Node &s = nodes[standby];
    LogKvs::format(*s.host, buckets, logSlots);
    std::uint64_t copied = 0;
    LogKvs::forEachLive(
        *nodes[primary].host,
        [&](const Key &key, const Value &value) {
            const bool ok = LogKvs::put(*s.host, key, value);
            panic_if(!ok, "standby re-seed overflowed the store");
            ++copied;
            return true;
        });
    vcpu().clock().advance(copied * hv.cost().kvsPutCoreNs);
}

// ---- client actors ---------------------------------------------------

/**
 * One open-loop Poisson arrival process homed on a machine. The actor
 * clock is the *arrival* clock: requests are issued at their arrival
 * time regardless of completion (open loop), local operations execute
 * synchronously on the home shard's server vCPU, and remote ones
 * travel through Engine::post with a network hop each way — responses
 * land as events even after the actor stopped stepping.
 */
class KvsCluster::ClientActor : public sim::Actor
{
  public:
    ClientActor(KvsCluster &c, unsigned home_shard, double mean_gap_ns,
                std::uint64_t requests, double put_ratio,
                std::uint64_t key_space, double zipf_s,
                std::uint64_t seed, SimNs start)
        : cluster(c), home(home_shard), meanGapNs(mean_gap_ns),
          remaining(requests), putRatio(put_ratio),
          keySpace(key_space), rng(seed)
    {
        if (zipf_s > 0.0)
            zipf = std::make_unique<sim::Zipf>(key_space, zipf_s);
        arrival = (double)start + rng.exponential(meanGapNs);
        current = static_cast<SimNs>(arrival);
        firstIssue = current;
    }

    SimNs actorNow() const override { return current; }

    bool
    step() override
    {
        const SimNs t = current;
        const std::uint64_t id =
            zipf ? sim::Zipf::spreadRank(zipf->sample(rng), keySpace)
                 : rng.below(keySpace);
        const bool is_put = rng.chance(putRatio);
        const unsigned owner = cluster.ownerOf(id);
        if (owner == home) {
            complete(is_put, id, t, cluster.serve(home, is_put, id, t));
        } else {
            ++remote;
            cluster.postRequest(*this, owner, is_put, id, t);
        }
        arrival += rng.exponential(meanGapNs);
        current = static_cast<SimNs>(arrival);
        return --remaining > 0;
    }

    void
    complete(bool is_put, std::uint64_t id, SimNs t0,
             const ServeResult &r)
    {
        ++ops;
        latency.record(r.finish - t0);
        if (r.finish > lastDone)
            lastDone = r.finish;
        if (is_put) {
            if (r.ok) {
                ++acked;
                ackedIds.push_back(id);
            } else {
                ++failed;
            }
        } else if (!r.ok) {
            ++failed; // prepopulated keys must always hit
        } else {
            ++hits;
            const Value want = makeValue(id);
            if (std::memcmp(r.value.data(), want.data(), valueBytes) !=
                0)
                ++corrupt;
        }
    }

    KvsCluster &cluster;
    unsigned home;
    double meanGapNs;
    std::uint64_t remaining;
    double putRatio;
    std::uint64_t keySpace;
    sim::Rng rng;
    std::unique_ptr<sim::Zipf> zipf;
    double arrival = 0.0;
    SimNs current = 0;

    // Results.
    std::uint64_t ops = 0, hits = 0, corrupt = 0, failed = 0;
    std::uint64_t acked = 0, remote = 0;
    std::vector<std::uint64_t> ackedIds;
    sim::Histogram latency{6, 1ull << 40};
    SimNs firstIssue = 0, lastDone = 0;
};

// ---- the cluster -----------------------------------------------------

KvsCluster::KvsCluster(const ClusterConfig &config)
    : cfg(config), hashRing(config.ringSeed)
{
    panic_if(cfg.servers == 0, "a cluster needs at least one server");
    for (unsigned s = 0; s < cfg.servers; ++s) {
        machines.push_back(std::make_unique<ServerMachine>(cfg, s));
        hashRing.addNode(s);
    }
}

KvsCluster::~KvsCluster() = default;

unsigned
KvsCluster::serverCount() const
{
    return static_cast<unsigned>(machines.size());
}

hv::Hypervisor &
KvsCluster::hv(unsigned server)
{
    return machines.at(server)->hv;
}

cpu::Vcpu &
KvsCluster::serverVcpu(unsigned server)
{
    return machines.at(server)->vcpu();
}

unsigned
KvsCluster::ownerOf(std::uint64_t id) const
{
    return hashRing.ownerOf(makeKey(id));
}

SimNs
KvsCluster::hopNs() const
{
    const SimNs prop = machines.front()->hv.cost().netPropagationNs;
    return std::max(prop, eng.lookahead());
}

void
KvsCluster::setFaultPlan(unsigned server, sim::FaultPlan *plan)
{
    machines.at(server)->hv.setFaultPlan(plan);
}

std::uint64_t
KvsCluster::stepNr(unsigned server) const
{
    return machines.at(server)->stepHc;
}

VmId
KvsCluster::primaryVmId(unsigned server) const
{
    const ServerMachine &m = *machines.at(server);
    return m.nodes[m.primary].vmId;
}

VmId
KvsCluster::replicaVmId(unsigned server) const
{
    const ServerMachine &m = *machines.at(server);
    panic_if(!m.hasReplica, "shard has no replica");
    return m.nodes[m.replica].vmId;
}

unsigned
KvsCluster::failovers(unsigned server) const
{
    return machines.at(server)->failoverCount;
}

std::uint64_t
KvsCluster::lastDyingFingerprint(unsigned server) const
{
    return machines.at(server)->lastDyingFp;
}

std::uint64_t
KvsCluster::lastPromotedFingerprint(unsigned server) const
{
    return machines.at(server)->lastPromotedFp;
}

std::uint64_t
KvsCluster::fingerprintOf(unsigned server)
{
    ServerMachine &m = *machines.at(server);
    return LogKvs::fingerprint(*m.nodes[m.primary].host);
}

std::uint64_t
KvsCluster::liveEntriesOf(unsigned server)
{
    ServerMachine &m = *machines.at(server);
    return LogKvs::liveEntries(*m.nodes[m.primary].host);
}

bool
KvsCluster::hostHas(std::uint64_t id)
{
    ServerMachine &m = *machines.at(ownerOf(id));
    return LogKvs::get(*m.nodes[m.primary].host, makeKey(id))
        .has_value();
}

void
KvsCluster::hostPut(unsigned server, const Key &key, const Value &value,
                    bool charge)
{
    ServerMachine &m = *machines.at(server);
    fatal_if(!LogKvs::put(*m.nodes[m.primary].host, key, value),
             "cluster store overflow on server %u (raise the geometry)",
             server);
    if (m.hasReplica)
        fatal_if(!LogKvs::put(*m.nodes[m.replica].host, key, value),
                 "cluster replica overflow on server %u", server);
    if (charge)
        m.vcpu().clock().advance(m.hv.cost().kvsPutCoreNs);
}

void
KvsCluster::prepopulate(std::uint64_t count)
{
    for (std::uint64_t id = 0; id < count; ++id)
        hostPut(ownerOf(id), makeKey(id), makeValue(id),
                /*charge=*/false);
}

KvsCluster::ServeResult
KvsCluster::serve(unsigned server, bool is_put, std::uint64_t id,
                  SimNs ready)
{
    ServerMachine &m = *machines.at(server);
    // Queueing happens here: the shard's single executor picks the
    // request up when both it and the request are ready.
    m.vcpu().clock().syncTo(ready);
    ServeResult result;
    const Key key = makeKey(id);
    if (is_put) {
        result.ok = m.servePut(key, makeValue(id));
    } else {
        auto value = m.serveGet(key);
        result.ok = value.has_value();
        if (value)
            result.value = *value;
    }
    result.finish = m.vcpu().clock().now();
    return result;
}

void
KvsCluster::postRequest(ClientActor &client, unsigned owner,
                        bool is_put, std::uint64_t id, SimNs t0)
{
    ClientActor *cl = &client;
    const unsigned home = client.home;
    eng.post(owner, t0 + hopNs(),
             [this, cl, home, owner, is_put, id, t0](SimNs deliver) {
                 const ServeResult r = serve(owner, is_put, id, deliver);
                 eng.post(home, r.finish + hopNs(),
                          [cl, is_put, id, t0, r](SimNs) {
                              cl->complete(is_put, id, t0, r);
                          });
             });
}

ClusterLoadResult
KvsCluster::runLoad(unsigned clients_per_server,
                    double offered_rps_per_client,
                    std::uint64_t requests_per_client, double put_ratio,
                    std::uint64_t key_space, double zipf_s,
                    std::uint64_t seed)
{
    panic_if(clients_per_server == 0 || requests_per_client == 0 ||
                 key_space == 0,
             "empty cluster load phase");
    panic_if(offered_rps_per_client <= 0.0,
             "offered load must be positive");

    eng.clear();
    eng.setLookahead(
        machines.front()->hv.cost().minCrossShardLatencyNs());

    // Start arrivals at the cluster-wide frontier so consecutive load
    // phases on one cluster compose.
    SimNs start = 0;
    for (auto &m : machines)
        start = std::max(start, m->vcpu().clock().now());

    const double mean_gap_ns = 1e9 / offered_rps_per_client;
    std::vector<std::unique_ptr<ClientActor>> clients;
    unsigned index = 0;
    for (unsigned s = 0; s < machines.size(); ++s) {
        for (unsigned c = 0; c < clients_per_server; ++c, ++index) {
            clients.push_back(std::make_unique<ClientActor>(
                *this, s, mean_gap_ns, requests_per_client, put_ratio,
                key_space, zipf_s,
                seed * 0x9e3779b97f4a7c15ull + index, start));
            eng.add(clients.back().get(), s);
        }
    }
    eng.run();

    ClusterLoadResult result;
    SimNs first = ~SimNs{0}, last = 0;
    for (auto &cl : clients) {
        result.ops += cl->ops;
        result.hits += cl->hits;
        result.corrupt += cl->corrupt;
        result.failed += cl->failed;
        result.acked += cl->acked;
        result.remote += cl->remote;
        result.latency.merge(cl->latency);
        result.ackedPutIds.insert(result.ackedPutIds.end(),
                                  cl->ackedIds.begin(),
                                  cl->ackedIds.end());
        first = std::min(first, cl->firstIssue);
        last = std::max(last, cl->lastDone);
    }
    std::sort(result.ackedPutIds.begin(), result.ackedPutIds.end());
    result.ackedPutIds.erase(std::unique(result.ackedPutIds.begin(),
                                         result.ackedPutIds.end()),
                             result.ackedPutIds.end());
    if (result.ops > 1 && last > first)
        result.achievedRps = (double)(result.ops - 1) * 1e9 /
                             (double)(last - first);
    return result;
}

std::uint64_t
KvsCluster::reshardRemove(unsigned server)
{
    panic_if(!hashRing.hasNode(server), "server is not a ring member");
    panic_if(hashRing.nodeCount() < 2,
             "cannot drain the last ring member");
    hashRing.removeNode(server);

    ServerMachine &m = *machines.at(server);
    std::vector<std::pair<Key, Value>> moved;
    LogKvs::forEachLive(*m.nodes[m.primary].host,
                        [&](const Key &key, const Value &value) {
                            moved.emplace_back(key, value);
                            return true;
                        });
    for (const auto &[key, value] : moved)
        hostPut(hashRing.ownerOf(key), key, value, /*charge=*/true);
    m.vcpu().clock().advance(moved.size() * m.hv.cost().kvsGetCoreNs);

    // The drained shard keeps running (it may rejoin) with empty
    // stores.
    LogKvs::format(*m.nodes[m.primary].host, m.buckets, m.logSlots);
    if (m.hasReplica)
        LogKvs::format(*m.nodes[m.replica].host, m.buckets, m.logSlots);
    return moved.size();
}

std::uint64_t
KvsCluster::reshardAdd(unsigned server)
{
    panic_if(hashRing.hasNode(server), "server already in the ring");
    panic_if(server >= machines.size(), "unknown server");
    hashRing.addNode(server);

    std::uint64_t migrated = 0;
    for (unsigned s = 0; s < machines.size(); ++s) {
        if (s == server)
            continue;
        ServerMachine &src = *machines[s];
        std::vector<std::pair<Key, Value>> moved;
        LogKvs::forEachLive(
            *src.nodes[src.primary].host,
            [&](const Key &key, const Value &value) {
                if (hashRing.ownerOf(key) == server)
                    moved.emplace_back(key, value);
                return true;
            });
        for (const auto &[key, value] : moved) {
            hostPut(server, key, value, /*charge=*/true);
            LogKvs::remove(*src.nodes[src.primary].host, key);
            if (src.hasReplica)
                LogKvs::remove(*src.nodes[src.replica].host, key);
        }
        src.vcpu().clock().advance(moved.size() *
                                   src.hv.cost().kvsPutCoreNs);
        migrated += moved.size();
    }
    return migrated;
}

} // namespace elisa::kvs
