#include "kvs/kv_log.hh"

#include <cstring>

#include "base/logging.hh"

namespace elisa::kvs
{

namespace
{

/** FNV-1a fold of @p len raw bytes into @p h. */
std::uint64_t
fnv1a(std::uint64_t h, const void *bytes, std::uint64_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    for (std::uint64_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;

} // namespace

std::uint64_t
LogKvs::regionBytesFor(std::uint64_t bucket_count,
                       std::uint64_t log_slots)
{
    return indexOff +
           bucket_count * slotsPerBucket * sizeof(IndexSlot) +
           log_slots * recordBytes;
}

void
LogKvs::format(RegionIo &io, std::uint64_t bucket_count,
               std::uint64_t log_slots)
{
    panic_if(bucket_count == 0, "log store needs at least one bucket");
    panic_if(log_slots < 2, "log store needs at least two log slots");
    Header h{magicValue, bucket_count, log_slots, 0, 0, 0, 0};
    io.write(0, &h, sizeof(h));
    IndexSlot empty{};
    for (std::uint64_t b = 0; b < bucket_count; ++b) {
        for (std::uint32_t s = 0; s < slotsPerBucket; ++s)
            io.write(slotOff(b, s), &empty, sizeof(empty));
    }
}

bool
LogKvs::formatted(RegionIo &io)
{
    Header h;
    io.read(0, &h, sizeof(h));
    return h.magic == magicValue;
}

std::uint64_t
LogKvs::liveEntries(RegionIo &io)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");
    return h.entries;
}

std::uint64_t
LogKvs::logDepth(RegionIo &io)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");
    return h.tail - h.head;
}

std::uint64_t
LogKvs::bucketCount(RegionIo &io)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");
    return h.buckets;
}

std::uint64_t
LogKvs::logSlotCount(RegionIo &io)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");
    return h.logSlots;
}

std::uint64_t
LogKvs::bucketOf(RegionIo &io, const Key &key)
{
    return hashKey(key, bucketCount(io));
}

std::uint64_t
LogKvs::recordChecksum(const Record &rec)
{
    std::uint64_t h = fnvOffset;
    h = fnv1a(h, &rec.seq, sizeof(rec.seq));
    h = fnv1a(h, &rec.type, sizeof(rec.type));
    h = fnv1a(h, rec.key, keyBytes);
    h = fnv1a(h, rec.value, valueBytes);
    return h;
}

void
LogKvs::appendRecord(RegionIo &io, Header &h, RecordType type,
                     const Key &key, const Value &value)
{
    panic_if(h.tail - h.head >= h.logSlots,
             "appendRecord without a free log slot");
    Record rec{};
    rec.seq = h.seq;
    rec.type = static_cast<std::uint32_t>(type);
    std::memcpy(rec.key, key.data(), keyBytes);
    std::memcpy(rec.value, value.data(), valueBytes);
    rec.checksum = recordChecksum(rec);
    // Payload first, then the header tail-commit: a crash between the
    // two writes leaves an uncommitted (invisible) record.
    io.write(logOff(h, h.tail), &rec, sizeof(rec));
    ++h.tail;
    ++h.seq;
    io.write(0, &h, sizeof(h));
}

std::optional<std::uint64_t>
LogKvs::indexFind(RegionIo &io, const Header &h, const Key &key)
{
    const std::uint64_t bucket = hashKey(key, h.buckets);
    for (std::uint32_t s = 0; s < slotsPerBucket; ++s) {
        IndexSlot slot;
        io.read(slotOff(bucket, s), &slot, sizeof(slot));
        if ((slot.flags & 1) &&
            std::memcmp(slot.key, key.data(), keyBytes) == 0) {
            return slot.logIdx;
        }
    }
    return std::nullopt;
}

bool
LogKvs::indexPoint(RegionIo &io, const Header &h, const Key &key,
                   std::uint64_t log_idx, bool &was_new)
{
    const std::uint64_t bucket = hashKey(key, h.buckets);
    std::int32_t free_slot = -1;
    for (std::uint32_t s = 0; s < slotsPerBucket; ++s) {
        IndexSlot slot;
        io.read(slotOff(bucket, s), &slot, sizeof(slot));
        if (slot.flags & 1) {
            if (std::memcmp(slot.key, key.data(), keyBytes) == 0) {
                slot.logIdx = log_idx;
                io.write(slotOff(bucket, s), &slot, sizeof(slot));
                was_new = false;
                return true;
            }
        } else if (free_slot < 0) {
            free_slot = static_cast<std::int32_t>(s);
        }
    }
    if (free_slot < 0)
        return false; // bucket full
    IndexSlot slot;
    slot.flags = 1;
    slot.pad = 0;
    slot.logIdx = log_idx;
    std::memcpy(slot.key, key.data(), keyBytes);
    io.write(slotOff(bucket, static_cast<std::uint32_t>(free_slot)),
             &slot, sizeof(slot));
    was_new = true;
    return true;
}

bool
LogKvs::indexClear(RegionIo &io, const Header &h, const Key &key)
{
    const std::uint64_t bucket = hashKey(key, h.buckets);
    for (std::uint32_t s = 0; s < slotsPerBucket; ++s) {
        IndexSlot slot;
        io.read(slotOff(bucket, s), &slot, sizeof(slot));
        if ((slot.flags & 1) &&
            std::memcmp(slot.key, key.data(), keyBytes) == 0) {
            slot.flags = 0;
            io.write(slotOff(bucket, s), &slot, sizeof(slot));
            return true;
        }
    }
    return false;
}

bool
LogKvs::cleanForAppend(RegionIo &io, Header &h)
{
    // Each pass inspects the head record: obsolete records are
    // reclaimed for free; a live record is relocated to the tail —
    // possible only if reclaiming already opened a slot. Worst case,
    // every record is live and the store is genuinely full.
    while (h.tail - h.head >= h.logSlots) {
        if (h.entries >= h.logSlots)
            return false; // every record is live: genuinely full
        Record head_rec;
        io.read(logOff(h, h.head), &head_rec, sizeof(head_rec));
        Key key;
        std::memcpy(key.data(), head_rec.key, keyBytes);
        const auto idx = indexFind(io, h, key);
        const bool live =
            head_rec.type == static_cast<std::uint32_t>(RecordType::Put)
            && idx && *idx == h.head;
        if (!live) {
            // Tombstone, or a Put superseded by a newer record.
            ++h.head;
            io.write(0, &h, sizeof(h));
            continue;
        }
        // Relocate: consume the head slot, re-append at the tail, and
        // repoint the index. Order matters for crash safety — the
        // head advance and the re-append commit through the same
        // header write, so replay sees either the old record (head
        // not yet advanced) or the relocated one, never neither.
        Record rec = head_rec;
        rec.seq = h.seq;
        rec.checksum = recordChecksum(rec);
        io.write(logOff(h, h.tail), &rec, sizeof(rec));
        const std::uint64_t new_idx = h.tail;
        ++h.tail;
        ++h.seq;
        ++h.head;
        io.write(0, &h, sizeof(h));
        bool was_new = false;
        const bool ok = indexPoint(io, h, key, new_idx, was_new);
        panic_if(!ok || was_new,
                 "relocating a live record must repoint its slot");
    }
    return true;
}

bool
LogKvs::put(RegionIo &io, const Key &key, const Value &value)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");

    if (!cleanForAppend(io, h))
        return false; // log full of live records

    // Probe the bucket before appending so a full bucket does not
    // burn a log slot on a record the index can never reference.
    const bool exists = indexFind(io, h, key).has_value();
    if (!exists) {
        const std::uint64_t bucket = hashKey(key, h.buckets);
        bool has_free = false;
        for (std::uint32_t s = 0; s < slotsPerBucket; ++s) {
            IndexSlot slot;
            io.read(slotOff(bucket, s), &slot, sizeof(slot));
            if (!(slot.flags & 1)) {
                has_free = true;
                break;
            }
        }
        if (!has_free)
            return false; // bucket full
    }

    const std::uint64_t log_idx = h.tail;
    appendRecord(io, h, RecordType::Put, key, value);
    bool was_new = false;
    const bool pointed = indexPoint(io, h, key, log_idx, was_new);
    panic_if(!pointed, "bucket filled between probe and point");
    if (was_new) {
        ++h.entries;
        io.write(0, &h, sizeof(h));
    }
    return true;
}

std::optional<Value>
LogKvs::get(RegionIo &io, const Key &key)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");
    const auto idx = indexFind(io, h, key);
    if (!idx)
        return std::nullopt;
    Record rec;
    io.read(logOff(h, *idx), &rec, sizeof(rec));
    Value value;
    std::memcpy(value.data(), rec.value, valueBytes);
    return value;
}

bool
LogKvs::remove(RegionIo &io, const Key &key)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");
    if (!indexFind(io, h, key))
        return false;
    // Unindex first: the key's own Put record becomes obsolete, so
    // the cleaner can always make room for the tombstone, even when
    // every log slot was live. Durability is unaffected — replay
    // rebuilds the index from the log, so the removal only becomes
    // permanent once the tombstone commits (or cleaning reclaims the
    // record); a crash before that recovers the key.
    const bool cleared = indexClear(io, h, key);
    panic_if(!cleared, "tombstoned key vanished from the index");
    --h.entries;
    io.write(0, &h, sizeof(h));
    const bool room = cleanForAppend(io, h);
    panic_if(!room, "no room for a tombstone with entries < logSlots");
    appendRecord(io, h, RecordType::Tombstone, key, Value{});
    return true;
}

std::uint64_t
LogKvs::replay(RegionIo &io)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");

    // Forget the index entirely: recovery trusts only the log.
    IndexSlot empty{};
    for (std::uint64_t b = 0; b < h.buckets; ++b) {
        for (std::uint32_t s = 0; s < slotsPerBucket; ++s)
            io.write(slotOff(b, s), &empty, sizeof(empty));
    }
    h.entries = 0;

    std::uint64_t applied = 0;
    for (std::uint64_t idx = h.head; idx < h.tail; ++idx) {
        Record rec;
        io.read(logOff(h, idx), &rec, sizeof(rec));
        if (rec.checksum != recordChecksum(rec)) {
            // Torn or corrupted: everything from here on is garbage.
            h.tail = idx;
            break;
        }
        Key key;
        std::memcpy(key.data(), rec.key, keyBytes);
        if (rec.type == static_cast<std::uint32_t>(RecordType::Put)) {
            bool was_new = false;
            const bool ok = indexPoint(io, h, key, idx, was_new);
            panic_if(!ok, "replay overflowed a bucket the writer fit");
            if (was_new)
                ++h.entries;
        } else {
            if (indexClear(io, h, key))
                --h.entries;
        }
        ++applied;
    }
    io.write(0, &h, sizeof(h));
    return applied;
}

std::uint64_t
LogKvs::fingerprint(RegionIo &io)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");
    std::uint64_t fold = 0;
    std::uint64_t live = 0;
    for (std::uint64_t b = 0; b < h.buckets; ++b) {
        for (std::uint32_t s = 0; s < slotsPerBucket; ++s) {
            IndexSlot slot;
            io.read(slotOff(b, s), &slot, sizeof(slot));
            if (!(slot.flags & 1))
                continue;
            Record rec;
            io.read(logOff(h, slot.logIdx), &rec, sizeof(rec));
            std::uint64_t e = fnvOffset;
            e = fnv1a(e, rec.key, keyBytes);
            e = fnv1a(e, rec.value, valueBytes);
            fold ^= e; // XOR: independent of slot/log placement
            ++live;
        }
    }
    // Mix in the live count so {} and {k XOR k} cannot collide.
    return fold ^ (live * 0x9e3779b97f4a7c15ull);
}

void
LogKvs::forEachLive(
    RegionIo &io,
    const std::function<bool(const Key &, const Value &)> &visit)
{
    Header h;
    io.read(0, &h, sizeof(h));
    panic_if(h.magic != magicValue, "unformatted log-KVS region");
    for (std::uint64_t b = 0; b < h.buckets; ++b) {
        for (std::uint32_t s = 0; s < slotsPerBucket; ++s) {
            IndexSlot slot;
            io.read(slotOff(b, s), &slot, sizeof(slot));
            if (!(slot.flags & 1))
                continue;
            Record rec;
            io.read(logOff(h, slot.logIdx), &rec, sizeof(rec));
            Key key;
            Value value;
            std::memcpy(key.data(), rec.key, keyBytes);
            std::memcpy(value.data(), rec.value, valueBytes);
            if (!visit(key, value))
                return;
        }
    }
}

} // namespace elisa::kvs
