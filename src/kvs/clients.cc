#include "kvs/clients.hh"

#include "base/logging.hh"

namespace elisa::kvs
{

void
prepopulate(net::RegionIo &host_io, std::uint64_t count)
{
    for (std::uint64_t id = 0; id < count; ++id) {
        const bool ok = ShmKvs::put(host_io, makeKey(id), makeValue(id));
        fatal_if(!ok,
                 "prepopulation overflowed a bucket at key %llu "
                 "(raise the bucket count)",
                 (unsigned long long)id);
    }
}

// ---- direct mapping ---------------------------------------------------

DirectKvsTable::DirectKvsTable(hv::Hypervisor &hv,
                               std::uint64_t bucket_count)
    : hyper(hv), bucketCount(bucket_count),
      locks(std::make_shared<KvsLockTable>())
{
    const std::uint64_t bytes =
        pageAlignUp(ShmKvs::regionBytesFor(bucket_count));
    region = std::make_unique<hv::IvshmemRegion>(hv, "kvs-table", bytes);
    host = std::make_unique<net::HostRegionIo>(hv.memory(),
                                               region->base());
    ShmKvs::format(*host, bucket_count);
}

DirectKvsTable::~DirectKvsTable()
{
    for (VmId id : attached)
        region->detach(hyper.vm(id), kvsWindowGpa);
}

void
DirectKvsTable::ensureAttached(hv::Vm &vm)
{
    if (attached.contains(vm.id()))
        return;
    fatal_if(!region->attach(vm, kvsWindowGpa),
             "KVS window collision in VM '%s'", vm.name().c_str());
    attached.insert(vm.id());
}

DirectKvsClient::DirectKvsClient(DirectKvsTable &table_, hv::Vm &vm,
                                 unsigned vcpu_index)
    : table(table_), guestVm(vm), vcpuIndex(vcpu_index)
{
    table.ensureAttached(vm);
    io = std::make_unique<net::GuestRegionIo>(vcpu(), kvsWindowGpa);
    internCounters(vcpu().stats());
}

std::optional<Value>
DirectKvsClient::get(const Key &key)
{
    countGet(vcpu());
    vcpu().clock().advance(table.hyper.cost().kvsGetCoreNs);
    return ShmKvs::get(*io, key);
}

bool
DirectKvsClient::put(const Key &key, const Value &value)
{
    countPut(vcpu());
    const std::uint64_t bucket = ShmKvs::bucketOf(*io, key);
    sim::SimLock &lock = table.lockTable().forBucket(bucket);
    sim::SimClock &clock = vcpu().clock();
    lock.acquire(clock);
    clock.advance(table.hyper.cost().kvsPutCoreNs);
    const bool ok = ShmKvs::put(*io, key, value);
    lock.release(clock);
    return ok;
}

bool
DirectKvsClient::remove(const Key &key)
{
    countRemove(vcpu());
    const std::uint64_t bucket = ShmKvs::bucketOf(*io, key);
    sim::SimLock &lock = table.lockTable().forBucket(bucket);
    sim::SimClock &clock = vcpu().clock();
    lock.acquire(clock);
    clock.advance(table.hyper.cost().kvsPutCoreNs);
    const bool ok = ShmKvs::remove(*io, key);
    lock.release(clock);
    return ok;
}

bool
DirectKvsClient::cas(const Key &key, const Value &expected,
                     const Value &desired)
{
    countCas(vcpu());
    const std::uint64_t bucket = ShmKvs::bucketOf(*io, key);
    sim::SimLock &lock = table.lockTable().forBucket(bucket);
    sim::SimClock &clock = vcpu().clock();
    lock.acquire(clock);
    clock.advance(table.hyper.cost().kvsPutCoreNs);
    const bool ok = ShmKvs::cas(*io, key, expected, desired);
    lock.release(clock);
    return ok;
}

// ---- ELISA ----------------------------------------------------------

ElisaKvsTable::ElisaKvsTable(hv::Hypervisor &hv,
                             core::ElisaManager &manager,
                             std::string export_name,
                             std::uint64_t bucket_count)
    : exportName(std::move(export_name)), bucketCount(bucket_count),
      locks(std::make_shared<KvsLockTable>())
{
    const sim::CostModel &cost = hv.cost();
    auto lock_table = locks;

    // The shared code running in the sub EPT context. The key (and,
    // for put, the value) arrives in the caller's private exchange
    // buffer; results return the same way.
    core::SharedFnTable fns;
    fns.push_back([&cost](core::SubCallCtx &ctx) { // 0: get
        net::GuestRegionIo obj(ctx.view.vcpu(), ctx.obj);
        net::GuestRegionIo exch(ctx.view.vcpu(), ctx.exch);
        Key key;
        exch.read(ElisaKvsClient::keyOff, key.data(), keyBytes);
        ctx.view.vcpu().clock().advance(cost.kvsGetCoreNs);
        auto value = ShmKvs::get(obj, key);
        if (!value)
            return std::uint64_t{0};
        exch.write(ElisaKvsClient::valueOff, value->data(), valueBytes);
        return std::uint64_t{1};
    });
    fns.push_back([&cost, lock_table](core::SubCallCtx &ctx) { // 1: put
        net::GuestRegionIo obj(ctx.view.vcpu(), ctx.obj);
        net::GuestRegionIo exch(ctx.view.vcpu(), ctx.exch);
        Key key;
        Value value;
        exch.read(ElisaKvsClient::keyOff, key.data(), keyBytes);
        exch.read(ElisaKvsClient::valueOff, value.data(), valueBytes);
        sim::SimClock &clock = ctx.view.vcpu().clock();
        sim::SimLock &lock =
            lock_table->forBucket(ShmKvs::bucketOf(obj, key));
        lock.acquire(clock);
        clock.advance(cost.kvsPutCoreNs);
        const bool ok = ShmKvs::put(obj, key, value);
        lock.release(clock);
        return ok ? std::uint64_t{1} : std::uint64_t{0};
    });
    fns.push_back([&cost, lock_table](core::SubCallCtx &ctx) { // 2: del
        net::GuestRegionIo obj(ctx.view.vcpu(), ctx.obj);
        net::GuestRegionIo exch(ctx.view.vcpu(), ctx.exch);
        Key key;
        exch.read(ElisaKvsClient::keyOff, key.data(), keyBytes);
        sim::SimClock &clock = ctx.view.vcpu().clock();
        sim::SimLock &lock =
            lock_table->forBucket(ShmKvs::bucketOf(obj, key));
        lock.acquire(clock);
        clock.advance(cost.kvsPutCoreNs);
        const bool ok = ShmKvs::remove(obj, key);
        lock.release(clock);
        return ok ? std::uint64_t{1} : std::uint64_t{0};
    });

    fns.push_back([&cost, lock_table](core::SubCallCtx &ctx) { // 3: cas
        net::GuestRegionIo obj(ctx.view.vcpu(), ctx.obj);
        net::GuestRegionIo exch(ctx.view.vcpu(), ctx.exch);
        Key key;
        Value expected;
        Value desired;
        exch.read(ElisaKvsClient::keyOff, key.data(), keyBytes);
        exch.read(ElisaKvsClient::valueOff, expected.data(),
                  valueBytes);
        exch.read(ElisaKvsClient::desiredOff, desired.data(),
                  valueBytes);
        sim::SimClock &clock = ctx.view.vcpu().clock();
        sim::SimLock &lock =
            lock_table->forBucket(ShmKvs::bucketOf(obj, key));
        lock.acquire(clock);
        clock.advance(cost.kvsPutCoreNs);
        const bool ok = ShmKvs::cas(obj, key, expected, desired);
        lock.release(clock);
        return ok ? std::uint64_t{1} : std::uint64_t{0};
    });

    const std::uint64_t bytes =
        pageAlignUp(ShmKvs::regionBytesFor(bucket_count));
    auto exported =
        manager.exportObject(core::ExportKey(exportName), bytes, std::move(fns));
    fatal_if(!exported, "exporting KVS table '%s' failed",
             exportName.c_str());

    host = std::make_unique<net::HostRegionIo>(
        hv.memory(), manager.vm().ramGpaToHpa(exported->objectGpa));
    ShmKvs::format(*host, bucket_count);
}

ElisaKvsClient::ElisaKvsClient(ElisaKvsTable &table,
                               core::ElisaManager &manager,
                               core::ElisaGuest &guest)
    : guestRt(guest)
{
    core::AttachResult attached = guest.tryAttach(core::ExportKey(table.name()), manager);
    fatal_if(!attached, "attach to KVS table '%s' failed: %s",
             table.name().c_str(), attached.reason().c_str());
    gate = attached.take();
    internCounters(vcpu().stats());
}

cpu::Vcpu &
ElisaKvsClient::vcpu()
{
    return guestRt.vcpu();
}

std::optional<Value>
ElisaKvsClient::get(const Key &key)
{
    countGet(vcpu());
    gate.writeExchange(keyOff, key.data(), keyBytes);
    if (gate.call(0) == 0)
        return std::nullopt;
    Value value;
    gate.readExchange(valueOff, value.data(), valueBytes);
    return value;
}

bool
ElisaKvsClient::put(const Key &key, const Value &value)
{
    countPut(vcpu());
    gate.writeExchange(keyOff, key.data(), keyBytes);
    gate.writeExchange(valueOff, value.data(), valueBytes);
    return gate.call(1) == 1;
}

bool
ElisaKvsClient::remove(const Key &key)
{
    countRemove(vcpu());
    gate.writeExchange(keyOff, key.data(), keyBytes);
    return gate.call(2) == 1;
}

bool
ElisaKvsClient::cas(const Key &key, const Value &expected,
                    const Value &desired)
{
    countCas(vcpu());
    gate.writeExchange(keyOff, key.data(), keyBytes);
    gate.writeExchange(valueOff, expected.data(), valueBytes);
    gate.writeExchange(desiredOff, desired.data(), valueBytes);
    return gate.call(3) == 1;
}

// ---- host interposition (VMCALL) --------------------------------------

VmcallKvsTable::VmcallKvsTable(hv::Hypervisor &hv,
                               std::uint64_t bucket_count)
    : hyper(hv), bucketCount(bucket_count),
      locks(std::make_shared<KvsLockTable>())
{
    const std::uint64_t bytes =
        pageAlignUp(ShmKvs::regionBytesFor(bucket_count));
    pages = bytes / pageSize;
    auto frames = hv.allocator().alloc(pages);
    fatal_if(!frames, "out of memory for host KVS table");
    base = *frames;
    host = std::make_unique<net::HostRegionIo>(hv.memory(), base);
    ShmKvs::format(*host, bucket_count);

    const sim::CostModel &cost = hv.cost();
    auto lock_table = locks;
    hcGet = hv.allocServiceNr();
    hcPut = hv.allocServiceNr();
    hcRemove = hv.allocServiceNr();
    hcCas = hv.allocServiceNr();

    // Buffer ABI: key at arg0 GPA, value at arg0 + 64.
    hv.registerHypercall(
        hcGet, [this, &cost](cpu::Vcpu &vcpu,
                             const cpu::HypercallArgs &args) {
            cpu::GuestView view(vcpu);
            Key key;
            view.readBytes(args.arg0, key.data(), keyBytes);
            vcpu.clock().advance(cost.kvsGetCoreNs);
            auto value = ShmKvs::get(*host, key);
            if (!value)
                return std::uint64_t{0};
            view.writeBytes(args.arg0 + 64, value->data(), valueBytes);
            return std::uint64_t{1};
        });
    hv.registerHypercall(
        hcPut, [this, &cost, lock_table](cpu::Vcpu &vcpu,
                                         const cpu::HypercallArgs &args) {
            cpu::GuestView view(vcpu);
            Key key;
            Value value;
            view.readBytes(args.arg0, key.data(), keyBytes);
            view.readBytes(args.arg0 + 64, value.data(), valueBytes);
            sim::SimLock &lock =
                lock_table->forBucket(ShmKvs::bucketOf(*host, key));
            lock.acquire(vcpu.clock());
            vcpu.clock().advance(cost.kvsPutCoreNs);
            const bool ok = ShmKvs::put(*host, key, value);
            lock.release(vcpu.clock());
            return ok ? std::uint64_t{1} : std::uint64_t{0};
        });
    hv.registerHypercall(
        hcRemove,
        [this, &cost, lock_table](cpu::Vcpu &vcpu,
                                  const cpu::HypercallArgs &args) {
            cpu::GuestView view(vcpu);
            Key key;
            view.readBytes(args.arg0, key.data(), keyBytes);
            sim::SimLock &lock =
                lock_table->forBucket(ShmKvs::bucketOf(*host, key));
            lock.acquire(vcpu.clock());
            vcpu.clock().advance(cost.kvsPutCoreNs);
            const bool ok = ShmKvs::remove(*host, key);
            lock.release(vcpu.clock());
            return ok ? std::uint64_t{1} : std::uint64_t{0};
        });

    // Buffer ABI: key at arg0, expected at +64, desired at +128.
    hv.registerHypercall(
        hcCas,
        [this, &cost, lock_table](cpu::Vcpu &vcpu,
                                  const cpu::HypercallArgs &args) {
            cpu::GuestView view(vcpu);
            Key key;
            Value expected;
            Value desired;
            view.readBytes(args.arg0, key.data(), keyBytes);
            view.readBytes(args.arg0 + 64, expected.data(),
                           valueBytes);
            view.readBytes(args.arg0 + 128, desired.data(),
                           valueBytes);
            sim::SimLock &lock =
                lock_table->forBucket(ShmKvs::bucketOf(*host, key));
            lock.acquire(vcpu.clock());
            vcpu.clock().advance(cost.kvsPutCoreNs);
            const bool ok =
                ShmKvs::cas(*host, key, expected, desired);
            lock.release(vcpu.clock());
            return ok ? std::uint64_t{1} : std::uint64_t{0};
        });

}

VmcallKvsTable::~VmcallKvsTable()
{
    hyper.allocator().free(base, pages);
}

VmcallKvsClient::VmcallKvsClient(VmcallKvsTable &table_, hv::Vm &vm,
                                 unsigned vcpu_index)
    : table(table_), guestVm(vm), vcpuIndex(vcpu_index)
{
    auto buf = vm.allocGuestMem(pageSize);
    fatal_if(!buf, "VM '%s' out of RAM for KVS buffer",
             vm.name().c_str());
    bufGpa = *buf;
    internCounters(vcpu().stats());
}

std::optional<Value>
VmcallKvsClient::get(const Key &key)
{
    countGet(vcpu());
    cpu::GuestView view(vcpu());
    view.writeBytes(bufGpa, key.data(), keyBytes);
    cpu::HypercallArgs args;
    args.nr = table.getNr();
    args.arg0 = bufGpa;
    if (vcpu().vmcall(args) == 0)
        return std::nullopt;
    Value value;
    view.readBytes(bufGpa + 64, value.data(), valueBytes);
    return value;
}

bool
VmcallKvsClient::put(const Key &key, const Value &value)
{
    countPut(vcpu());
    cpu::GuestView view(vcpu());
    view.writeBytes(bufGpa, key.data(), keyBytes);
    view.writeBytes(bufGpa + 64, value.data(), valueBytes);
    cpu::HypercallArgs args;
    args.nr = table.putNr();
    args.arg0 = bufGpa;
    return vcpu().vmcall(args) == 1;
}

bool
VmcallKvsClient::cas(const Key &key, const Value &expected,
                     const Value &desired)
{
    countCas(vcpu());
    cpu::GuestView view(vcpu());
    view.writeBytes(bufGpa, key.data(), keyBytes);
    view.writeBytes(bufGpa + 64, expected.data(), valueBytes);
    view.writeBytes(bufGpa + 128, desired.data(), valueBytes);
    cpu::HypercallArgs args;
    args.nr = table.casNr();
    args.arg0 = bufGpa;
    return vcpu().vmcall(args) == 1;
}

bool
VmcallKvsClient::remove(const Key &key)
{
    countRemove(vcpu());
    cpu::GuestView view(vcpu());
    view.writeBytes(bufGpa, key.data(), keyBytes);
    cpu::HypercallArgs args;
    args.nr = table.removeNr();
    args.arg0 = bufGpa;
    return vcpu().vmcall(args) == 1;
}

} // namespace elisa::kvs
