/**
 * @file
 * A log-structured KVS store living inside a shared memory region —
 * the cluster-scale backend (scalio's kv_bucket_log/kv_circular_log
 * idiom, adapted to the ELISA shm layout rules).
 *
 * Layout (offsets in the region):
 *
 *   [0]      header { magic, buckets, logSlots, head, tail, seq,
 *                     entries }
 *   [64]     bucket index: buckets x entriesPerBucket slots of
 *            { flags u32, pad u32, logIdx u64, key[16] } = 32 B
 *   [logOff] circular log: logSlots records of 96 B each
 *            { checksum u64, seq u64, type u32, pad u32,
 *              key[16], value[40], reserved[16] }
 *
 * The *log* is the durable truth: a PUT appends a record (payload
 * first, header tail-commit second) and only then updates the bucket
 * index, so a crash between the two steps loses nothing — replay()
 * rebuilds the index area from the records in [head, tail). GETs walk
 * the bucket index and read the referenced record. DELETEs append a
 * tombstone. When the log wraps, cleaning advances head over obsolete
 * records and relocates live ones to the tail (their index slot is
 * repointed), exactly like a cleaning circular log.
 *
 * Every structural access goes through a RegionIo (EPT-checked when it
 * is a guest view); time is charged by the callers as calibrated
 * lumps, like ShmKvs. Records carry an FNV checksum so replay stops at
 * torn or corrupted records instead of resurrecting garbage.
 */

#ifndef ELISA_KVS_KV_LOG_HH
#define ELISA_KVS_KV_LOG_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "kvs/shm_kvs.hh" // Key/Value/keyBytes/valueBytes/hashKey

namespace elisa::kvs
{

/**
 * The log-structured table operations, stateless over a RegionIo.
 */
class LogKvs
{
  public:
    /** Record kinds in the log. */
    enum class RecordType : std::uint32_t
    {
        Put = 1,
        Tombstone = 2,
    };

    /** Fixed on-log record size. */
    static constexpr std::uint64_t recordBytes = 96;

    /** Index slots per bucket (collision chain bound, like ShmKvs). */
    static constexpr std::uint32_t slotsPerBucket = 8;

    /** Region bytes needed for the given geometry. */
    static std::uint64_t regionBytesFor(std::uint64_t bucket_count,
                                        std::uint64_t log_slots);

    /** Initialize an empty store. */
    static void format(RegionIo &io, std::uint64_t bucket_count,
                       std::uint64_t log_slots);

    /** True when the region holds a formatted log store. */
    static bool formatted(RegionIo &io);

    /** Number of live (non-deleted) keys. */
    static std::uint64_t liveEntries(RegionIo &io);

    /** Records currently occupying the log (tail - head). */
    static std::uint64_t logDepth(RegionIo &io);

    /** Bucket count of a formatted store. */
    static std::uint64_t bucketCount(RegionIo &io);

    /** Log slot count of a formatted store. */
    static std::uint64_t logSlotCount(RegionIo &io);

    /**
     * Insert or update: append a Put record (cleaning the log head
     * first when the circle is full), commit the tail, then point the
     * key's index slot at the new record.
     * @return false when the log stays full after cleaning (all
     *         records live) or the destination bucket overflows.
     */
    static bool put(RegionIo &io, const Key &key, const Value &value);

    /** Look up @p key through the bucket index. */
    static std::optional<Value> get(RegionIo &io, const Key &key);

    /**
     * Delete @p key: append a tombstone and clear the index slot.
     * @return false when the key was absent (no record appended).
     */
    static bool remove(RegionIo &io, const Key &key);

    /**
     * Rebuild the bucket index (and the header's entry count) from
     * the records in [head, tail), applying them in log order — the
     * recovery path after a killed server VM. Stops early at a torn
     * or corrupted record (checksum mismatch) and clamps the tail
     * there, so an interrupted append can never be half-applied.
     * @return the number of records applied.
     */
    static std::uint64_t replay(RegionIo &io);

    /**
     * Order-independent fingerprint of the live table: an XOR fold of
     * one FNV-1a hash per live (key, value) pair, mixed with the live
     * count. Two stores hold byte-identical logical content iff their
     * fingerprints match, regardless of slot placement or log layout.
     */
    static std::uint64_t fingerprint(RegionIo &io);

    /** Bucket index of @p key (lock selection in callers). */
    static std::uint64_t bucketOf(RegionIo &io, const Key &key);

    /**
     * Visit every live (key, value) pair in bucket-slot order (the
     * reshard migration walk). @p visit returns false to stop early.
     */
    static void forEachLive(
        RegionIo &io,
        const std::function<bool(const Key &, const Value &)> &visit);

  private:
    struct Header
    {
        std::uint64_t magic;
        std::uint64_t buckets;
        std::uint64_t logSlots;
        std::uint64_t head; ///< first occupied log slot (monotonic)
        std::uint64_t tail; ///< one past the last committed record
        std::uint64_t seq;  ///< next record sequence number
        std::uint64_t entries; ///< live keys (derived, rebuilt by replay)
    };
    static_assert(sizeof(Header) <= 64);

    struct IndexSlot
    {
        std::uint32_t flags; ///< bit 0: valid
        std::uint32_t pad;
        std::uint64_t logIdx; ///< monotonic log index of the record
        std::uint8_t key[keyBytes];
    };
    static_assert(sizeof(IndexSlot) == 32);

    struct Record
    {
        std::uint64_t checksum;
        std::uint64_t seq;
        std::uint32_t type;
        std::uint32_t pad;
        std::uint8_t key[keyBytes];
        std::uint8_t value[valueBytes];
        std::uint8_t reserved[16];
    };
    static_assert(sizeof(Record) == recordBytes);

    static constexpr std::uint64_t magicValue = 0x454c49534b564c31ull;
    static constexpr std::uint64_t indexOff = 64;

    static std::uint64_t
    slotOff(std::uint64_t bucket, std::uint32_t slot)
    {
        return indexOff +
               (bucket * slotsPerBucket + slot) * sizeof(IndexSlot);
    }

    static std::uint64_t
    logOff(const Header &h, std::uint64_t log_idx)
    {
        return indexOff +
               h.buckets * slotsPerBucket * sizeof(IndexSlot) +
               (log_idx % h.logSlots) * recordBytes;
    }

    /** FNV-1a over the record body (everything but the checksum). */
    static std::uint64_t recordChecksum(const Record &rec);

    /**
     * Append one record at the tail: payload write, then header
     * tail/seq commit. The caller must have ensured a free slot.
     */
    static void appendRecord(RegionIo &io, Header &h, RecordType type,
                             const Key &key, const Value &value);

    /**
     * Point @p key's index slot at @p log_idx, claiming a free slot
     * on first insertion. @return false on bucket overflow.
     */
    static bool indexPoint(RegionIo &io, const Header &h,
                           const Key &key, std::uint64_t log_idx,
                           bool &was_new);

    /** Clear @p key's index slot. @return true when it existed. */
    static bool indexClear(RegionIo &io, const Header &h,
                           const Key &key);

    /**
     * Look up @p key's index slot. @return the slot's log index, or
     * nullopt when absent.
     */
    static std::optional<std::uint64_t>
    indexFind(RegionIo &io, const Header &h, const Key &key);

    /**
     * Make room for one more record when the circle is full: advance
     * head over obsolete records, relocating live ones to the tail.
     * @return false when every record is live (the store is full).
     */
    static bool cleanForAppend(RegionIo &io, Header &h);
};

} // namespace elisa::kvs

#endif // ELISA_KVS_KV_LOG_HH
