/**
 * @file
 * A deterministic consistent-hash ring with virtual nodes.
 *
 * Each cluster node owns `vnodesPerNode` points on a 64-bit ring; a
 * key maps to the node owning the first point at or after the key's
 * hash (wrapping). Point positions are a pure function of
 * (ring seed, node id, vnode index), so two processes building the
 * ring from the same membership agree byte-for-byte on ownership —
 * the property the cluster's clients and servers both rely on, and
 * the one the reshard path exploits: adding or removing one node
 * moves only the keys whose successor point changed, ~1/N of them.
 */

#ifndef ELISA_KVS_HASH_RING_HH
#define ELISA_KVS_HASH_RING_HH

#include <cstdint>
#include <vector>

#include "kvs/shm_kvs.hh" // Key

namespace elisa::kvs
{

/** Consistent-hash ring over small integer node ids. */
class HashRing
{
  public:
    /** Ring points per node. 64 keeps ownership within ~13% of even. */
    static constexpr std::uint32_t vnodesPerNode = 64;

    explicit HashRing(std::uint64_t seed) : ringSeed(seed) {}

    /** Add @p node's virtual points. No-op when already present. */
    void addNode(std::uint32_t node);

    /** Remove @p node's virtual points. No-op when absent. */
    void removeNode(std::uint32_t node);

    /** True when @p node is a member. */
    bool hasNode(std::uint32_t node) const;

    /** Member count. */
    std::uint32_t nodeCount() const;

    /** Owner of a raw 64-bit hash point. Panics on an empty ring. */
    std::uint32_t ownerOfHash(std::uint64_t hash) const;

    /** Owner of @p key. Panics on an empty ring. */
    std::uint32_t ownerOf(const Key &key) const;

    /** The 64-bit point a key hashes to (shared with ownerOf). */
    static std::uint64_t pointOf(const Key &key);

  private:
    struct Point
    {
        std::uint64_t position;
        std::uint32_t node;

        bool
        operator<(const Point &other) const
        {
            // Position ties (astronomically rare) break by node id so
            // ownership never depends on insertion order.
            if (position != other.position)
                return position < other.position;
            return node < other.node;
        }
    };

    std::uint64_t ringSeed;
    std::vector<Point> points;       ///< sorted by (position, node)
    std::vector<std::uint32_t> members;

    std::uint64_t vnodePosition(std::uint32_t node,
                                std::uint32_t vnode) const;
};

} // namespace elisa::kvs

#endif // ELISA_KVS_HASH_RING_HH
