#include "kvs/hash_ring.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace elisa::kvs
{

namespace
{

/** splitmix64 finalizer: the position mixer for ring points. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
HashRing::vnodePosition(std::uint32_t node, std::uint32_t vnode) const
{
    return mix64(mix64(ringSeed ^ (std::uint64_t{node} << 32 | vnode)));
}

void
HashRing::addNode(std::uint32_t node)
{
    if (hasNode(node))
        return;
    members.push_back(node);
    std::sort(members.begin(), members.end());
    for (std::uint32_t v = 0; v < vnodesPerNode; ++v)
        points.push_back(Point{vnodePosition(node, v), node});
    std::sort(points.begin(), points.end());
}

void
HashRing::removeNode(std::uint32_t node)
{
    members.erase(std::remove(members.begin(), members.end(), node),
                  members.end());
    points.erase(std::remove_if(points.begin(), points.end(),
                                [node](const Point &p) {
                                    return p.node == node;
                                }),
                 points.end());
}

bool
HashRing::hasNode(std::uint32_t node) const
{
    return std::find(members.begin(), members.end(), node) !=
           members.end();
}

std::uint32_t
HashRing::nodeCount() const
{
    return static_cast<std::uint32_t>(members.size());
}

std::uint64_t
HashRing::pointOf(const Key &key)
{
    // Same murmur finalizer as hashKey, but over the full 64-bit
    // range instead of a bucket modulus.
    std::uint64_t h;
    std::memcpy(&h, key.data(), 8);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

std::uint32_t
HashRing::ownerOfHash(std::uint64_t hash) const
{
    panic_if(points.empty(), "ownership query on an empty ring");
    auto it = std::lower_bound(
        points.begin(), points.end(), hash,
        [](const Point &p, std::uint64_t h) { return p.position < h; });
    if (it == points.end())
        it = points.begin(); // wrap past the last point
    return it->node;
}

std::uint32_t
HashRing::ownerOf(const Key &key) const
{
    return ownerOfHash(pointOf(key));
}

} // namespace elisa::kvs
