/**
 * @file
 * Multi-VM KVS scaling workload (the paper's Figure "KVS GET/PUT
 * throughput vs number of VMs").
 *
 * Each client VM is an Engine actor performing uniform-random
 * operations over a prepopulated key space; the conservative engine
 * interleaves them so bucket-lock contention is arbitrated in
 * simulated time.
 */

#ifndef ELISA_KVS_WORKLOAD_HH
#define ELISA_KVS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "kvs/clients.hh"

namespace elisa::kvs
{

/** Operation mix. */
enum class Mix
{
    GetOnly,
    PutOnly,
    Mixed9010, ///< 90 % GET / 10 % PUT
};

/** Render a mix name. */
const char *mixToString(Mix mix);

/** Result of one workload run. */
struct KvsRunResult
{
    /** Total operations across all clients. */
    std::uint64_t ops = 0;

    /** GETs that found their key (must equal GET count). */
    std::uint64_t hits = 0;

    /** GETs that returned a wrong value (must be 0). */
    std::uint64_t corrupt = 0;

    /** Operations that failed (bucket overflow; must be 0). */
    std::uint64_t failed = 0;

    /** Aggregate throughput in Mops/s (sum of per-client rates). */
    double totalMops = 0.0;

    /** Per-client rates in Mops/s. */
    std::vector<double> perClientMops;
};

/**
 * Run @p ops_per_client operations on every client concurrently.
 *
 * @param clients one client per VM (any mix of schemes — benches use
 *        a homogeneous set per series).
 * @param mix operation mix.
 * @param key_space keys are uniform over [0, key_space); the caller
 *        must have prepopulated exactly this range.
 * @param ops_per_client operations per client.
 * @param seed workload RNG seed (clients get decorrelated streams).
 * @param sample_period when nonzero, @p sampler fires on every
 *        multiple of this simulated-time period during the run
 *        (Engine::setSampler; pair with sim::MetricsCsvSampler for
 *        a metrics time series of the workload).
 */
KvsRunResult runKvsWorkload(const std::vector<KvsClient *> &clients,
                            Mix mix, std::uint64_t key_space,
                            std::uint64_t ops_per_client,
                            std::uint64_t seed = 42,
                            SimNs sample_period = 0,
                            std::function<void(SimNs)> sampler = {});

} // namespace elisa::kvs

#endif // ELISA_KVS_WORKLOAD_HH
