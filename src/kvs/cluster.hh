/**
 * @file
 * A sharded multi-machine KVS cluster over the log-structured store.
 *
 * Topology: N server machines (one hv::Hypervisor each, pinned to
 * engine shard i — the machine-per-shard doctrine of DESIGN.md §11),
 * joined by a seeded consistent-hash ring. Each machine serves its key
 * range from LogKvs stores held by three *nodes*:
 *
 *   primary   the serving copy; GETs walk its bucket index
 *   replica   synchronously replicated: a PUT appends to the replica
 *             log first, then the primary, and acks only after both
 *   standby   a formatted idle copy, the promotion target
 *
 * Under the ELISA scheme every node is a manager VM exporting its
 * store; the shard's server VM attaches a gate to each, so PUTs append
 * *under the sub-EPT context* and GETs walk the index the same way.
 * The VMCALL scheme serves the same stores host-side behind one
 * hypercall per operation; the direct scheme maps them ivshmem-style
 * into the server VM. One executor (the server VM's vCPU 0) per shard
 * serializes a shard's operations in simulated time, so the stores
 * need no write locks — queueing *is* the shard's latency story.
 *
 * Clients are open-loop Poisson arrival processes (zipfian hot keys)
 * homed on a machine; a key owned elsewhere crosses shards through
 * Engine::post() with one netPropagationNs hop each way, making the
 * whole cluster byte-deterministic at any engine thread count.
 *
 * Failure and recovery, driven by sim::FaultPlan: when a plan is
 * installed the server issues a protocol-step hypercall before the
 * replica append, between the appends, and at the ack point — the
 * cluster kill matrix's injection sites (without a plan the step is a
 * null-pointer test). Killing the primary manager VM auto-revokes its
 * gates; the next call unwinds with a VM exit, the shard *replays the
 * replica's log* to rebuild its index, promotes it, re-seeds the
 * standby as the new replica, and retries the operation. A destroy
 * hook fingerprints the dying primary's table first, so recovery can
 * prove the replay reconstructed byte-identical logical content.
 *
 * Resharding: ring membership changes between load phases migrate
 * exactly the keys whose successor vnode changed (~1/N), live entry by
 * live entry, charged to the involved servers' clocks.
 */

#ifndef ELISA_KVS_CLUSTER_HH
#define ELISA_KVS_CLUSTER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "elisa/guest_api.hh"
#include "elisa/manager.hh"
#include "elisa/negotiation.hh"
#include "hv/hypervisor.hh"
#include "hv/ivshmem.hh"
#include "kvs/hash_ring.hh"
#include "kvs/kv_log.hh"
#include "sim/engine.hh"
#include "sim/histogram.hh"

namespace elisa::kvs
{

/** How a shard's server reaches its stores (the paper's three). */
enum class ClusterScheme
{
    Elisa,  ///< gate calls into manager-VM exports (exit-less)
    Vmcall, ///< one hypercall per op, host-private stores
    Direct, ///< ivshmem-mapped stores, no transition at all
};

/** Render a scheme as it appears in the figures. */
const char *clusterSchemeToString(ClusterScheme scheme);

/** Cluster geometry and behavior knobs. */
struct ClusterConfig
{
    /** Serving machines (== engine shards). */
    unsigned servers = 3;

    ClusterScheme scheme = ClusterScheme::Elisa;

    /** Buckets per store (index capacity ~ buckets x 8 keys). */
    std::uint64_t buckets = 1024;

    /** Circular-log slots per store. */
    std::uint64_t logSlots = 16384;

    /** Seed of the consistent-hash ring's vnode positions. */
    std::uint64_t ringSeed = 0xe115a;
};

/** One load phase's aggregated outcome. */
struct ClusterLoadResult
{
    std::uint64_t ops = 0;     ///< requests completed
    std::uint64_t hits = 0;    ///< GETs that found their key
    std::uint64_t corrupt = 0; ///< GETs returning a wrong value
    std::uint64_t failed = 0;  ///< ops refused (overflow; expect 0)
    std::uint64_t acked = 0;   ///< PUTs acknowledged
    std::uint64_t remote = 0;  ///< ops that crossed shards

    /** Key ids of every acknowledged PUT (sorted, deduplicated) —
     *  the no-lost-acknowledged-PUT obligation set. */
    std::vector<std::uint64_t> ackedPutIds;

    /** End-to-end latency over all clients (arrival -> response). */
    sim::Histogram latency{6, 1ull << 40};

    /** Achieved throughput in requests/second. */
    double achievedRps = 0.0;
};

/**
 * The cluster. Construction builds every machine, store, and (ELISA)
 * gate; the instance then runs load phases, takes kills, and reshards.
 */
class KvsCluster
{
  public:
    explicit KvsCluster(const ClusterConfig &config);
    ~KvsCluster();

    KvsCluster(const KvsCluster &) = delete;
    KvsCluster &operator=(const KvsCluster &) = delete;

    /** Insert keys [0, count) host-side (uncharged warm-up fill). */
    void prepopulate(std::uint64_t count);

    /**
     * One open-loop load phase: @p clients_per_server Poisson arrival
     * processes per machine at @p offered_rps_per_client each, drawing
     * zipfian keys (s = 0, uniform) over [0, key_space).
     */
    ClusterLoadResult runLoad(unsigned clients_per_server,
                              double offered_rps_per_client,
                              std::uint64_t requests_per_client,
                              double put_ratio, std::uint64_t key_space,
                              double zipf_s, std::uint64_t seed);

    // ---- fault wiring ----------------------------------------------
    /** Install @p plan on machine @p server's hypervisor. */
    void setFaultPlan(unsigned server, sim::FaultPlan *plan);

    /** Hypercall nr of @p server's protocol-step beacon (kill rules
     *  hang off its occurrences: 3 per PUT, 1 per GET). */
    std::uint64_t stepNr(unsigned server) const;

    /** VM id of the node currently in the given role. */
    VmId primaryVmId(unsigned server) const;
    VmId replicaVmId(unsigned server) const;

    // ---- recovery introspection ------------------------------------
    /** Failovers (primary or replica promotions) on @p server. */
    unsigned failovers(unsigned server) const;

    /** Fingerprint captured from the dying primary (last failover). */
    std::uint64_t lastDyingFingerprint(unsigned server) const;

    /** Fingerprint of the promoted replica after its log replay. */
    std::uint64_t lastPromotedFingerprint(unsigned server) const;

    /** Current primary-store fingerprint of @p server (host-side). */
    std::uint64_t fingerprintOf(unsigned server);

    /** Live keys on @p server's primary store. */
    std::uint64_t liveEntriesOf(unsigned server);

    /** True when key @p id is present on its owning shard. */
    bool hostHas(std::uint64_t id);

    // ---- resharding -------------------------------------------------
    /**
     * Take @p server out of the ring and migrate its live entries to
     * their new owners. @return entries migrated.
     */
    std::uint64_t reshardRemove(unsigned server);

    /**
     * Put @p server (back) into the ring and pull over the entries it
     * now owns. @return entries migrated.
     */
    std::uint64_t reshardAdd(unsigned server);

    // ---- plumbing ----------------------------------------------------
    unsigned serverCount() const;
    hv::Hypervisor &hv(unsigned server);
    cpu::Vcpu &serverVcpu(unsigned server);
    const HashRing &ring() const { return hashRing; }

    /** Owning shard of key id @p id under the current ring. */
    unsigned ownerOf(std::uint64_t id) const;

  private:
    struct Node;
    struct ServerMachine;
    class ClientActor;
    friend class ClientActor;

    /** Outcome of one served operation. */
    struct ServeResult
    {
        bool ok = false;
        Value value{};  ///< GET payload when ok
        SimNs finish = 0;
    };

    /** Execute one op on @p server no earlier than @p ready. */
    ServeResult serve(unsigned server, bool is_put, std::uint64_t id,
                      SimNs ready);

    /** Route one client request to a remote owner via the engine. */
    void postRequest(ClientActor &client, unsigned owner, bool is_put,
                     std::uint64_t id, SimNs t0);

    /** One-way client<->shard / shard<->shard network hop. */
    SimNs hopNs() const;

    /** Host-side put into @p server's primary + replica (migration /
     *  prepopulation); charges @p server's clock when @p charge. */
    void hostPut(unsigned server, const Key &key, const Value &value,
                 bool charge);

    ClusterConfig cfg;
    HashRing hashRing;
    std::vector<std::unique_ptr<ServerMachine>> machines;
    sim::Engine eng;
};

} // namespace elisa::kvs

#endif // ELISA_KVS_CLUSTER_HH
