#include "kvs/workload.hh"

#include <cstring>

#include "base/logging.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"

namespace elisa::kvs
{

const char *
mixToString(Mix mix)
{
    switch (mix) {
      case Mix::GetOnly:
        return "GET";
      case Mix::PutOnly:
        return "PUT";
      case Mix::Mixed9010:
        return "90/10";
    }
    return "?";
}

namespace
{

/** One client VM issuing operations. */
class ClientActor : public sim::Actor
{
  public:
    ClientActor(KvsClient &client, Mix mix, std::uint64_t key_space,
                std::uint64_t ops, std::uint64_t seed)
        : client(client), mix(mix), keySpace(key_space),
          remaining(ops), rng(seed)
    {
        startNs = client.vcpu().clock().now();
    }

    SimNs
    actorNow() const override
    {
        return client.vcpu().clock().now();
    }

    bool
    step() override
    {
        const std::uint64_t id = rng.below(keySpace);
        bool is_put = false;
        switch (mix) {
          case Mix::GetOnly:
            break;
          case Mix::PutOnly:
            is_put = true;
            break;
          case Mix::Mixed9010:
            is_put = rng.chance(0.1);
            break;
        }

        if (is_put) {
            if (!client.put(makeKey(id), makeValue(id)))
                ++failed;
        } else {
            auto value = client.get(makeKey(id));
            if (!value) {
                // Prepopulated keys must always hit.
                ++failed;
            } else {
                ++hits;
                const Value want = makeValue(id);
                if (std::memcmp(value->data(), want.data(),
                                valueBytes) != 0) {
                    ++corrupt;
                }
            }
        }
        ++done;
        return --remaining > 0;
    }

    std::uint64_t done = 0;
    std::uint64_t hits = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t failed = 0;
    SimNs startNs = 0;

    SimNs
    elapsed() const
    {
        return client.vcpu().clock().now() - startNs;
    }

  private:
    KvsClient &client;
    Mix mix;
    std::uint64_t keySpace;
    std::uint64_t remaining;
    sim::Rng rng;
};

} // anonymous namespace

KvsRunResult
runKvsWorkload(const std::vector<KvsClient *> &clients, Mix mix,
               std::uint64_t key_space, std::uint64_t ops_per_client,
               std::uint64_t seed, SimNs sample_period,
               std::function<void(SimNs)> sampler)
{
    panic_if(clients.empty(), "KVS workload needs at least one client");
    panic_if(key_space == 0 || ops_per_client == 0,
             "empty KVS workload");

    std::vector<std::unique_ptr<ClientActor>> actors;
    sim::Engine engine;
    engine.setLookahead(
        clients.front()->vcpu().costModel().minCrossShardLatencyNs());
    for (std::size_t i = 0; i < clients.size(); ++i) {
        actors.push_back(std::make_unique<ClientActor>(
            *clients[i], mix, key_space, ops_per_client,
            seed * 0x9e3779b97f4a7c15ull + i));
        // All clients of one store share its buckets and locks, so
        // they carry one machine's shard tag; the tag still routes a
        // multi-machine population onto distinct shards.
        engine.add(actors.back().get(), clients[i]->vcpu().shard());
    }
    engine.setSampler(sample_period, std::move(sampler));
    engine.run();

    KvsRunResult result;
    for (const auto &actor : actors) {
        result.ops += actor->done;
        result.hits += actor->hits;
        result.corrupt += actor->corrupt;
        result.failed += actor->failed;
        const double mops =
            actor->elapsed() == 0
                ? 0.0
                : (double)actor->done * 1e3 / (double)actor->elapsed();
        result.perClientMops.push_back(mops);
        result.totalMops += mops;
    }
    return result;
}

} // namespace elisa::kvs
